// Climate-archive scenario (the paper's CESM-ATM motivation): a climate
// model emits several 2-D diagnostic fields per timestep; the archive
// pipeline compresses each field with the scheme a per-field probe
// recommends, writes the archives to disk, and verifies them on read-back.
//
// Shows: multi-field batching, using the sampling probe to pick loose vs
// strict per field, on-disk round-trips, and a summary table.
//
// Run:  ./climate_field_archive [--scale=0.2] [--outdir=climate_archives]
#include <filesystem>
#include <iostream>

#include "core/blocking.h"
#include "core/dpz.h"
#include "core/sampling.h"
#include "data/datasets.h"
#include "dsp/dct.h"
#include "io/file_io.h"
#include "metrics/metrics.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace dpz;
  const CliArgs args(argc, argv, {"scale", "outdir", "seed"});
  const double scale = args.get_double("scale", 0.2);
  const std::string outdir = args.get_string("outdir", "climate_archives");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));
  std::filesystem::create_directories(outdir);

  const std::vector<std::string> fields{"CLDHGH", "CLDLOW", "PHIS",
                                        "FREQSH", "FLDSC"};
  TablePrinter table({"field", "probe VIF", "scheme", "archive", "CR",
                      "PSNR (dB)", "verified"});

  std::uint64_t total_in = 0, total_out = 0;
  for (const std::string& name : fields) {
    const Dataset ds = make_dataset(name, scale, seed);

    // Probe compressibility first (Algorithm 2): high collinearity ->
    // the loose scheme is safe; low -> use strict codes.
    const BlockLayout layout = choose_block_layout(ds.data.size());
    Matrix blocks = to_blocks(ds.data.flat(), layout);
    const DctPlan plan(layout.n);
    parallel_for(0, layout.m, [&](std::size_t i) {
      auto row = blocks.row(i);
      plan.forward(row, row);
    });
    SamplingConfig probe;
    probe.tve = 0.99999;
    probe.seed = seed;
    const SamplingReport report = run_sampling(blocks, probe);

    DpzConfig config =
        report.low_linearity ? DpzConfig::strict() : DpzConfig::loose();
    config.tve = 0.99999;

    DpzStats stats;
    const auto archive = dpz_compress(ds.data, config, &stats);
    const std::string path = outdir + "/" + name + ".dpz";
    write_bytes(path, archive);

    // Read back and verify.
    const auto loaded = read_bytes(path);
    const FloatArray restored = dpz_decompress(loaded);
    const ErrorStats err =
        compute_error_stats(ds.data.flat(), restored.flat());
    const bool verified = restored.shape() == ds.data.shape() &&
                          err.psnr_db > 30.0;

    total_in += ds.data.size() * sizeof(float);
    total_out += archive.size();
    table.add_row({name, fixed(report.vif_median, 1),
                   config.scheme == DpzScheme::kLoose ? "DPZ-l" : "DPZ-s",
                   human_bytes(archive.size()),
                   fixed(stats.cr_archive(), 2), fixed(err.psnr_db, 2),
                   verified ? "yes" : "NO"});
    std::cout << "archived " << name << " -> " << path << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "campaign total: " << human_bytes(total_in) << " -> "
            << human_bytes(total_out) << " ("
            << fixed(compression_ratio(total_in, total_out), 2) << "X)\n";
  return 0;
}
