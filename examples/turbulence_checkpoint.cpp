// Checkpoint/restart scenario (the paper's JHTDB motivation and DCTZ
// lineage): a turbulence solver checkpoints a 3-D velocity field every few
// steps; lossy compression trades restart fidelity for checkpoint size.
//
// Shows: comparing DPZ against the SZ-like and ZFP-like baselines at a
// common accuracy target, then "restarting" from the DPZ checkpoint and
// measuring how the restart error compares to the solver's own step size.
//
// Run:  ./turbulence_checkpoint [--scale=0.4] [--psnr=50]
#include <cmath>
#include <iostream>

#include "baselines/szlike.h"
#include "baselines/zfplike.h"
#include "core/dpz.h"
#include "data/datasets.h"
#include "metrics/metrics.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dpz;
  const CliArgs args(argc, argv, {"scale", "psnr", "seed"});
  const double scale = args.get_double("scale", 0.4);
  const double target_psnr = args.get_double("psnr", 50.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));

  const Dataset snapshot = make_dataset("Isotropic", scale, seed);
  const std::uint64_t raw_bytes = snapshot.data.size() * sizeof(float);
  std::cout << "checkpoint field: " << snapshot.data.extent(0) << "^3 ("
            << human_bytes(raw_bytes) << "), accuracy target "
            << target_psnr << " dB\n\n";

  TablePrinter table({"compressor", "setting", "checkpoint", "CR",
                      "PSNR (dB)", "write s", "restart s"});

  auto evaluate = [&](Compressor& comp, const std::string& setting) {
    Timer timer;
    const auto archive = comp.compress(snapshot.data);
    const double write_s = timer.reset();
    const FloatArray restored = comp.decompress(archive);
    const double restart_s = timer.elapsed();
    const ErrorStats err =
        compute_error_stats(snapshot.data.flat(), restored.flat());
    table.add_row({comp.name(), setting, human_bytes(archive.size()),
                   fixed(compression_ratio(raw_bytes, archive.size()), 2),
                   fixed(err.psnr_db, 2), fixed(write_s, 3),
                   fixed(restart_s, 3)});
    return err.psnr_db;
  };

  // DPZ: walk the TVE ladder until the accuracy target is met.
  double dpz_psnr = 0.0;
  for (const double tve :
       {0.999, 0.9999, 0.99999, 0.999999, 0.9999999}) {
    DpzConfig config = DpzConfig::strict();
    config.tve = tve;
    DpzCompressor comp(config);
    Timer timer;
    const auto archive = comp.compress(snapshot.data);
    const double write_s = timer.reset();
    const FloatArray restored = comp.decompress(archive);
    const double restart_s = timer.elapsed();
    const ErrorStats err =
        compute_error_stats(snapshot.data.flat(), restored.flat());
    if (err.psnr_db >= target_psnr || tve >= 0.9999999) {
      table.add_row(
          {comp.name(), "TVE " + fixed(tve * 100.0, 5) + "%",
           human_bytes(archive.size()),
           fixed(compression_ratio(raw_bytes, archive.size()), 2),
           fixed(err.psnr_db, 2), fixed(write_s, 3), fixed(restart_s, 3)});
      dpz_psnr = err.psnr_db;
      break;
    }
  }

  // Baselines at comparable accuracy.
  {
    SzLikeCompressor sz;
    sz.config().relative_bound = 1e-3;
    evaluate(sz, "rel 1E-3");
  }
  {
    ZfpLikeCompressor zfp;
    zfp.config().mode = ZfpLikeConfig::Mode::kFixedAccuracy;
    zfp.config().tolerance = 1e-2;
    evaluate(zfp, "tol 1E-2");
  }

  table.print();

  // Restart-quality sanity check: the checkpoint error should be far
  // below the field's own fluctuation level.
  const double rms = std::sqrt([&] {
    double acc = 0.0;
    for (const float v : snapshot.data.flat())
      acc += static_cast<double>(v) * v;
    return acc / static_cast<double>(snapshot.data.size());
  }());
  const double err_rms =
      snapshot.data.value_range() / std::pow(10.0, dpz_psnr / 20.0);
  std::cout << "\nfield RMS " << fixed(rms, 3)
            << " vs checkpoint error scale " << scientific(err_rms, 2)
            << " -> error is " << fixed(100.0 * err_rms / rms, 3)
            << "% of the signal (restart-safe when well below the "
               "timestep truncation error)\n";
  return 0;
}
