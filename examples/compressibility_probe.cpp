// Compressibility probe (the paper's "estimate before you compress"
// workflow, SS IV-D): before committing a campaign to DPZ, probe each
// candidate dataset with the sampling strategy — VIF distribution, the
// estimated k_e, and the predicted compression-ratio band CR_p — and get
// a recommendation without running the full pipeline.
//
// Run:  ./compressibility_probe [--scale=0.2] [--tve=0.99999]
#include <iostream>

#include "core/blocking.h"
#include "core/sampling.h"
#include "data/datasets.h"
#include "dsp/dct.h"
#include "stats/descriptive.h"
#include "stats/entropy.h"
#include "stats/vif.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dpz;
  const CliArgs args(argc, argv, {"scale", "tve", "seed"});
  const double scale = args.get_double("scale", 0.2);
  const double tve = args.get_double("tve", 0.99999);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));

  std::cout << "probing " << dataset_names().size()
            << " datasets at TVE " << fixed(tve * 100.0, 4)
            << "% (no full compression is run)\n\n";

  TablePrinter table({"dataset", "blocks MxN", "entropy b/v", "VIF median",
                      "linearity", "k_e", "CR_p band", "probe s",
                      "recommendation"});

  for (const std::string& name : dataset_names()) {
    const Dataset ds = make_dataset(name, scale, seed);

    // Shannon entropy of the raw values: the "inherent information"
    // measure the paper contrasts VIF against. Note HACC-vx has HIGH
    // entropy and LOW VIF — entropy alone cannot predict what k-PCA
    // removes.
    std::vector<double> sample;
    sample.reserve(std::min<std::size_t>(ds.data.size(), 65536));
    const std::size_t stride = std::max<std::size_t>(
        1, ds.data.size() / 65536);
    for (std::size_t i = 0; i < ds.data.size(); i += stride)
      sample.push_back(static_cast<double>(ds.data[i]));
    const double entropy = shannon_entropy(sample, 256);

    Timer timer;
    const BlockLayout layout = choose_block_layout(ds.data.size());
    Matrix blocks = to_blocks(ds.data.flat(), layout);

    // VIF is probed on the raw block-data (Algorithm 2, step 1-2).
    std::vector<double> spatial_vifs;
    {
      Rng vif_rng(seed);
      spatial_vifs = sampled_vif(blocks, 0.01, 256, vif_rng);
    }

    const DctPlan plan(layout.n);
    parallel_for(0, layout.m, [&](std::size_t i) {
      auto row = blocks.row(i);
      plan.forward(row, row);
    });

    SamplingConfig config;
    config.tve = tve;
    config.seed = seed;
    config.precomputed_vifs = spatial_vifs;
    const SamplingReport report = run_sampling(blocks, config);
    const double probe_s = timer.elapsed();

    std::string recommendation;
    if (report.low_linearity) {
      recommendation = "skip DPZ (low VIF)";
    } else if (report.cr_estimate_low > 10.0) {
      recommendation = "DPZ-l, aggressive";
    } else {
      recommendation = "DPZ-s";
    }

    table.add_row(
        {name, std::to_string(layout.m) + "x" + std::to_string(layout.n),
         fixed(entropy, 2), fixed(report.vif_median, 1),
         report.low_linearity ? "LOW" : "high",
         fixed(report.k_estimate, 1),
         fixed(report.cr_estimate_low, 1) + "-" +
             fixed(report.cr_estimate_high, 1) + "X",
         fixed(probe_s, 3), recommendation});
    std::cout << "probed " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(CR_p calibrates the stage-3/zlib factors on the sampled "
               "subsets; the band excludes the stored basis — see "
               "EXPERIMENTS.md. Note HACC-x: highest entropy of all, yet "
               "enormous VIF — value entropy cannot predict what the "
               "k-PCA stage removes.)\n";
  return 0;
}
