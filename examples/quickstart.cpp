// Quickstart: the five-minute tour of the DPZ public API.
//
//   1. build (or load) a float array;
//   2. pick a scheme — DPZ-l (loose, 1e-3) or DPZ-s (strict, 1e-4) — and a
//      k-selection policy (TVE threshold or knee-point);
//   3. dpz_compress -> bytes; dpz_decompress -> array;
//   4. inspect the per-stage accounting.
//
// Run:  ./quickstart [--tve=0.99999]
#include <cmath>
#include <iostream>

#include "core/dpz.h"
#include "metrics/metrics.h"
#include "util/cli.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace dpz;
  const CliArgs args(argc, argv, {"tve"});

  // 1. A smooth 2-D field standing in for your simulation output. Any
  //    rank-1..4 FloatArray works; DPZ flattens it internally.
  FloatArray field({256, 512});
  for (std::size_t i = 0; i < field.extent(0); ++i)
    for (std::size_t j = 0; j < field.extent(1); ++j)
      field(i, j) = static_cast<float>(
          std::sin(0.05 * static_cast<double>(i)) *
          std::cos(0.03 * static_cast<double>(j)));

  // 2. Configure: strict scheme, explained-variance selection.
  DpzConfig config = DpzConfig::strict();
  config.selection = KSelectionMethod::kTveThreshold;
  config.tve = args.get_double("tve", 0.99999);

  // 3. Compress and decompress.
  DpzStats stats;
  const std::vector<std::uint8_t> archive =
      dpz_compress(field, config, &stats);
  const FloatArray restored = dpz_decompress(archive);

  // 4. Report.
  const ErrorStats err = compute_error_stats(field.flat(), restored.flat());
  std::cout << "input:        " << human_bytes(field.size() * 4) << " ("
            << field.extent(0) << " x " << field.extent(1) << ")\n"
            << "archive:      " << human_bytes(archive.size()) << "\n"
            << "ratio:        " << fixed(stats.cr_archive(), 2) << "X ("
            << fixed(bit_rate_f32(stats.cr_archive()), 3)
            << " bits/value)\n"
            << "PSNR:         " << fixed(err.psnr_db, 2) << " dB\n"
            << "max error:    " << scientific(err.max_abs_error, 2) << "\n"
            << "blocks (M*N): " << stats.layout.m << " x " << stats.layout.n
            << ", kept k = " << stats.k << " components\n"
            << "stage CRs:    " << fixed(stats.cr_stage12(), 1)
            << "X (1&2) * " << fixed(stats.cr_stage3(), 2) << "X (3) * "
            << fixed(stats.cr_zlib(), 2) << "X (zlib)\n";
  return 0;
}
