// Campaign time-series scenario: a simulation writes the same diagnostic
// field every few steps; the field's spatial structure is stable while
// its amplitude and mean level drift. The SharedBasisCodec trains DPZ's
// PCA basis once on the first snapshot and then compresses the whole
// series without re-running PCA or re-storing the basis — the dominant
// archive overhead of standalone DPZ.
//
// Run:  ./campaign_timeseries [--snapshots=8] [--rows=360] [--cols=720]
#include <cmath>
#include <iostream>

#include "core/shared_basis.h"
#include "metrics/metrics.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace dpz;

FloatArray snapshot_at(std::size_t rows, std::size_t cols, double t,
                       std::uint64_t seed) {
  Rng rng(seed + static_cast<std::uint64_t>(t * 977));
  FloatArray a({rows, cols});
  for (std::size_t i = 0; i < rows; ++i) {
    const double lat =
        (static_cast<double>(i) / static_cast<double>(rows) - 0.5) * 3.14159;
    for (std::size_t j = 0; j < cols; ++j) {
      const double lon =
          static_cast<double>(j) / static_cast<double>(cols) * 6.28318;
      a(i, j) = static_cast<float>(
          (1.0 + 0.05 * t) *
              (std::cos(lat) * (1.2 + std::sin(3.0 * lon + 0.02 * t)) +
               0.4 * std::sin(2.0 * lat) * std::cos(5.0 * lon)) +
          0.08 * t + 0.003 * rng.normal());
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"snapshots", "rows", "cols", "seed"});
  const auto steps =
      static_cast<std::size_t>(args.get_int("snapshots", 8));
  const auto rows = static_cast<std::size_t>(args.get_int("rows", 360));
  const auto cols = static_cast<std::size_t>(args.get_int("cols", 720));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));

  std::cout << "campaign: " << steps << " snapshots of " << rows << " x "
            << cols << "\n\n";

  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;

  // Train once on the first snapshot.
  const FloatArray reference = snapshot_at(rows, cols, 0.0, seed);
  Timer timer;
  const SharedBasisCodec codec = SharedBasisCodec::train(reference, config);
  const double train_s = timer.elapsed();
  const auto basis_blob = codec.serialize();
  std::cout << "trained basis: k = " << codec.k() << " (incl. DC guard), "
            << human_bytes(basis_blob.size()) << ", " << fixed(train_s, 2)
            << " s\n\n";

  TablePrinter table({"t", "shared bytes", "shared PSNR", "standalone bytes",
                      "standalone PSNR"});

  std::uint64_t shared_total = basis_blob.size();
  std::uint64_t standalone_total = 0;
  std::uint64_t raw_total = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const double t = static_cast<double>(s);
    const FloatArray snap = snapshot_at(rows, cols, t, seed);
    raw_total += snap.size() * sizeof(float);

    const auto shared_archive = codec.compress(snap);
    const FloatArray shared_back = codec.decompress(shared_archive);
    const double shared_psnr =
        compute_error_stats(snap.flat(), shared_back.flat()).psnr_db;
    shared_total += shared_archive.size();

    const auto standalone_archive = dpz_compress(snap, config);
    const FloatArray standalone_back = dpz_decompress(standalone_archive);
    const double standalone_psnr =
        compute_error_stats(snap.flat(), standalone_back.flat()).psnr_db;
    standalone_total += standalone_archive.size();

    table.add_row({fixed(t, 0), human_bytes(shared_archive.size()),
                   fixed(shared_psnr, 2),
                   human_bytes(standalone_archive.size()),
                   fixed(standalone_psnr, 2)});
    std::cout << "snapshot " << s << " done\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "campaign totals (raw " << human_bytes(raw_total) << "):\n"
            << "  shared basis: " << human_bytes(shared_total) << " ("
            << fixed(compression_ratio(raw_total, shared_total), 2)
            << "X, basis stored once)\n"
            << "  standalone:   " << human_bytes(standalone_total) << " ("
            << fixed(compression_ratio(raw_total, standalone_total), 2)
            << "X, basis per snapshot + per-snapshot PCA cost)\n";
  return 0;
}
