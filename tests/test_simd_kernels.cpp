// Kernel-equivalence harness for src/simd: every dispatched kernel must
// be bit-identical to the scalar reference for every ISA available on
// this machine, across randomized sizes (vector-width tails included),
// unaligned pointers, and adversarial values (signed zeros, denormals,
// huge magnitudes; NaN for the quantizer, whose contract includes it).
// Also covers the dispatch layer itself: selection logic over faked CPU
// feature bits, the DPZ_FORCE_ISA override, and the unsupported-ISA
// error path.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "simd/simd.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using dpz::Rng;
using dpz::simd::CpuFeatures;
using dpz::simd::Isa;
using dpz::simd::KernelTable;

// Bitwise comparison: NaNs with the same payload compare equal, +0/-0
// do not — exactly the equality the golden-archive suite relies on.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

::testing::AssertionResult buffers_match(const std::vector<double>& a,
                                         const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!same_bits(a[i], b[i]))
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i]
             << " (bits " << std::bit_cast<std::uint64_t>(a[i]) << " vs "
             << std::bit_cast<std::uint64_t>(b[i]) << ")";
  return ::testing::AssertionSuccess();
}

// Adversarial double stream: mixes ordinary values with signed zeros,
// denormals, and large magnitudes so rounding differences cannot hide.
double random_value(Rng& rng) {
  switch (rng.next_u64() % 16) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return 1e-310;  // denormal
    case 3:
      return -1e308;
    case 4:
      return 1e-8;
    default:
      return rng.normal() * 3.0;
  }
}

std::vector<double> random_buffer(Rng& rng, std::size_t n) {
  std::vector<double> out(n);
  for (double& v : out) v = random_value(rng);
  return out;
}

// The sizes that matter for tail handling: below one vector, exact
// multiples, off-by-one around the 4-lane width, and large.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,
                              15, 16, 17, 31, 64, 100, 255, 1024};

// Offsets 0..3 doubles from a base allocation: offset 1 makes every
// pointer 8 (mod 32) — misaligned for 256-bit lanes.
constexpr std::size_t kMaxOffset = 4;
constexpr std::size_t kPad = 8;

struct Views {
  std::vector<double> storage;
  double* p;
  Views(const std::vector<double>& data, std::size_t offset)
      : storage(data.size() + kMaxOffset + kPad) {
    std::copy(data.begin(), data.end(), storage.begin() + offset);
    p = storage.data() + offset;
  }
  std::vector<double> out(std::size_t n) const {
    return std::vector<double>(p, p + n);
  }
};

class SimdKernelEquivalence : public ::testing::TestWithParam<Isa> {
 protected:
  const KernelTable& ref_ = dpz::simd::kernel_table(Isa::kScalar);
  const KernelTable& isa_ = dpz::simd::kernel_table(GetParam());
};

TEST_P(SimdKernelEquivalence, ReductionsMatchScalarTree) {
  Rng rng(7);
  for (const std::size_t n : kSizes) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      const Views x(random_buffer(rng, n), off);
      const Views y(random_buffer(rng, n), (off + 1) % kMaxOffset);
      const double mx = random_value(rng);
      const double my = random_value(rng);
      EXPECT_TRUE(same_bits(ref_.dot(x.p, y.p, n), isa_.dot(x.p, y.p, n)))
          << "dot n=" << n << " off=" << off;
      EXPECT_TRUE(same_bits(ref_.dot_centered(x.p, mx, y.p, my, n),
                            isa_.dot_centered(x.p, mx, y.p, my, n)))
          << "dot_centered n=" << n << " off=" << off;
    }
  }
}

// The documented reduction contract, written out naively: lane l sums
// terms l, l+16, ...; lanes fold to a_l = (s_l+s_{l+8})+(s_{l+4}+s_{l+12})
// and combine (a0+a2)+(a1+a3); tail appended serially. The scalar table
// must implement exactly this (the other ISAs are then pinned
// transitively by the equivalence tests).
TEST(SimdKernelContract, ScalarDotImplementsDocumentedTree) {
  Rng rng(11);
  for (const std::size_t n : kSizes) {
    const std::vector<double> x = random_buffer(rng, n);
    const std::vector<double> y = random_buffer(rng, n);
    double lanes[16] = {};
    const std::size_t n16 = n & ~std::size_t{15};
    for (std::size_t i = 0; i < n16; ++i) lanes[i % 16] += x[i] * y[i];
    double partial[4];
    for (std::size_t l = 0; l < 4; ++l)
      partial[l] = (lanes[l] + lanes[l + 8]) + (lanes[l + 4] + lanes[l + 12]);
    double expect = (partial[0] + partial[2]) + (partial[1] + partial[3]);
    for (std::size_t i = n16; i < n; ++i) expect += x[i] * y[i];
    EXPECT_TRUE(same_bits(
        expect,
        dpz::simd::kernel_table(Isa::kScalar).dot(x.data(), y.data(), n)))
        << "n=" << n;
  }
}

TEST_P(SimdKernelEquivalence, ElementwiseKernelsMatch) {
  Rng rng(13);
  for (const std::size_t n : kSizes) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      const std::vector<double> xv = random_buffer(rng, n);
      const std::vector<double> yv = random_buffer(rng, n);
      const double a = random_value(rng);
      const double b = random_value(rng);
      const Views x(xv, off);

      {
        Views ry(yv, off), iy(yv, (off + 2) % kMaxOffset);
        ref_.axpy(a, x.p, ry.p, n);
        isa_.axpy(a, x.p, iy.p, n);
        EXPECT_TRUE(buffers_match(ry.out(n), iy.out(n))) << "axpy n=" << n;
      }
      {
        Views ry(yv, off), iy(yv, (off + 2) % kMaxOffset);
        const Views e(random_buffer(rng, n), (off + 1) % kMaxOffset);
        ref_.rank2_update(a, e.p, b, x.p, ry.p, n);
        isa_.rank2_update(a, e.p, b, x.p, iy.p, n);
        EXPECT_TRUE(buffers_match(ry.out(n), iy.out(n)))
            << "rank2_update n=" << n;
      }
      {
        Views ry(yv, off), iy(yv, (off + 2) % kMaxOffset);
        ref_.accum_centered(a, x.p, b, ry.p, n);
        isa_.accum_centered(a, x.p, b, iy.p, n);
        EXPECT_TRUE(buffers_match(ry.out(n), iy.out(n)))
            << "accum_centered n=" << n;
      }
      {
        Views ry(yv, off), iy(yv, (off + 2) % kMaxOffset);
        ref_.center_scale(x.p, a, b, ry.p, n);
        isa_.center_scale(x.p, a, b, iy.p, n);
        EXPECT_TRUE(buffers_match(ry.out(n), iy.out(n)))
            << "center_scale n=" << n;
      }
      {
        Views rx(xv, off), ix(xv, (off + 2) % kMaxOffset);
        ref_.scale_shift(a, b, rx.p, n);
        isa_.scale_shift(a, b, ix.p, n);
        EXPECT_TRUE(buffers_match(rx.out(n), ix.out(n)))
            << "scale_shift n=" << n;
      }
      {
        Views rx(xv, off), ix(xv, (off + 2) % kMaxOffset);
        ref_.scale(a, rx.p, n);
        isa_.scale(a, ix.p, n);
        EXPECT_TRUE(buffers_match(rx.out(n), ix.out(n))) << "scale n=" << n;
      }
      {
        const double s = a == 0.0 ? 3.0 : a;
        Views rx(xv, off), ix(xv, (off + 2) % kMaxOffset);
        ref_.divide(s, rx.p, n);
        isa_.divide(s, ix.p, n);
        EXPECT_TRUE(buffers_match(rx.out(n), ix.out(n))) << "divide n=" << n;
      }
      {
        const double c = std::cos(a);
        const double s = std::sin(a);
        Views ru(xv, off), iu(xv, (off + 2) % kMaxOffset);
        Views rv(yv, off), iv(yv, (off + 2) % kMaxOffset);
        ref_.rot2(c, s, ru.p, rv.p, n);
        isa_.rot2(c, s, iu.p, iv.p, n);
        EXPECT_TRUE(buffers_match(ru.out(n), iu.out(n))) << "rot2 u n=" << n;
        EXPECT_TRUE(buffers_match(rv.out(n), iv.out(n))) << "rot2 v n=" << n;
      }
    }
  }
}

// Complex kernels carry the finite-data contract, so the random stream
// here avoids the extreme magnitudes (products must stay finite).
double random_finite(Rng& rng) { return rng.normal() * 2.0; }

TEST_P(SimdKernelEquivalence, ComplexKernelsMatch) {
  Rng rng(17);
  for (const std::size_t n : kSizes) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      std::vector<double> av(2 * n);
      std::vector<double> bv(2 * n);
      for (double& v : av) v = random_finite(rng);
      for (double& v : bv) v = random_finite(rng);
      const Views a(av, off);
      const Views b(bv, (off + 1) % kMaxOffset);
      {
        Views rout(std::vector<double>(2 * n, 0.0), off);
        Views iout(std::vector<double>(2 * n, 0.0), (off + 2) % kMaxOffset);
        ref_.cmul(a.p, b.p, rout.p, n);
        isa_.cmul(a.p, b.p, iout.p, n);
        EXPECT_TRUE(buffers_match(rout.out(2 * n), iout.out(2 * n)))
            << "cmul n=" << n;
      }
      {
        // cmul matches std::complex multiplication for finite operands.
        std::vector<double> out(2 * n, 0.0);
        ref_.cmul(a.p, b.p, out.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          const std::complex<double> expect =
              std::complex<double>(a.p[2 * i], a.p[2 * i + 1]) *
              std::complex<double>(b.p[2 * i], b.p[2 * i + 1]);
          EXPECT_TRUE(same_bits(expect.real(), out[2 * i]));
          EXPECT_TRUE(same_bits(expect.imag(), out[2 * i + 1]));
        }
      }
      {
        Views rout(std::vector<double>(n, 0.0), off);
        Views iout(std::vector<double>(n, 0.0), (off + 2) % kMaxOffset);
        const double s = random_finite(rng);
        ref_.cmul_real_scale(a.p, b.p, s, rout.p, n);
        isa_.cmul_real_scale(a.p, b.p, s, iout.p, n);
        EXPECT_TRUE(buffers_match(rout.out(n), iout.out(n)))
            << "cmul_real_scale n=" << n;
      }
    }
  }
}

TEST_P(SimdKernelEquivalence, Radix2StagesMatch) {
  Rng rng(19);
  for (const std::size_t n : {std::size_t{2}, std::size_t{8},
                              std::size_t{64}, std::size_t{256}}) {
    for (std::size_t len = 2; len <= n; len <<= 1) {
      std::vector<double> data(2 * n);
      for (double& v : data) v = random_finite(rng);
      std::vector<double> w(len);  // len/2 twiddles
      for (std::size_t k = 0; k < len / 2; ++k) {
        const double ang = -2.0 * 3.14159265358979323846 *
                           static_cast<double>(k) / static_cast<double>(len);
        w[2 * k] = std::cos(ang);
        w[2 * k + 1] = std::sin(ang);
      }
      for (const bool conj : {false, true}) {
        for (std::size_t off = 0; off < kMaxOffset; ++off) {
          Views ra(data, off), ia(data, (off + 1) % kMaxOffset);
          ref_.radix2_stage(ra.p, n, len, w.data(), conj);
          isa_.radix2_stage(ia.p, n, len, w.data(), conj);
          EXPECT_TRUE(buffers_match(ra.out(2 * n), ia.out(2 * n)))
              << "radix2 n=" << n << " len=" << len << " conj=" << conj;
        }
      }
    }
  }
}

TEST_P(SimdKernelEquivalence, QuantizerStripsMatch) {
  Rng rng(23);
  const double p = 1e-3;
  for (const bool wide : {false, true}) {
    const std::uint32_t bins = wide ? 65535U : 255U;
    const double half = p * static_cast<double>(bins);
    for (const std::size_t n : kSizes) {
      std::vector<double> values(n);
      for (double& v : values) {
        switch (rng.next_u64() % 8) {
          case 0:
            v = std::numeric_limits<double>::quiet_NaN();
            break;
          case 1:
            v = 10.0 * half;  // escape
            break;
          case 2:
            v = half;  // boundary: clamps to bins-1
            break;
          case 3:
            v = -half;
            break;
          default:
            v = (rng.uniform() * 2.0 - 1.0) * half * 1.05;
        }
      }
      std::vector<std::uint8_t> ref_codes(n * (wide ? 2 : 1) + 8, 0xAB);
      std::vector<std::uint8_t> isa_codes(ref_codes);
      ref_.quantize_codes(values.data(), n, half, p, bins, wide,
                          ref_codes.data());
      isa_.quantize_codes(values.data(), n, half, p, bins, wide,
                          isa_codes.data());
      EXPECT_EQ(ref_codes, isa_codes) << "quantize n=" << n << " wide="
                                      << wide;

      std::vector<double> ref_out(n, -1.0);
      std::vector<double> isa_out(n, -2.0);
      ref_.dequantize_codes(ref_codes.data(), n, p, half, wide,
                            ref_out.data());
      isa_.dequantize_codes(isa_codes.data(), n, p, half, wide,
                            isa_out.data());
      EXPECT_TRUE(buffers_match(ref_out, isa_out))
          << "dequantize n=" << n << " wide=" << wide;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AvailableIsas, SimdKernelEquivalence,
    ::testing::ValuesIn(dpz::simd::available_isas()),
    [](const ::testing::TestParamInfo<Isa>& param_info) {
      return dpz::simd::isa_name(param_info.param);
    });

// ---- dispatch-layer selection logic (faked CPU feature bits) ----------

TEST(SimdDispatch, SelectsHighestAvailableIsa) {
  CpuFeatures none;
  EXPECT_EQ(dpz::simd::select_isa(none, std::nullopt), Isa::kScalar);
  CpuFeatures avx2;
  avx2.avx2 = true;
  EXPECT_EQ(dpz::simd::select_isa(avx2, std::nullopt), Isa::kAvx2);
  CpuFeatures neon;
  neon.neon = true;
  EXPECT_EQ(dpz::simd::select_isa(neon, std::nullopt), Isa::kNeon);
}

TEST(SimdDispatch, OverrideWinsOverDetection) {
  CpuFeatures avx2;
  avx2.avx2 = true;
  EXPECT_EQ(dpz::simd::select_isa(avx2, Isa::kScalar), Isa::kScalar);
  EXPECT_EQ(dpz::simd::select_isa(avx2, Isa::kAvx2), Isa::kAvx2);
}

TEST(SimdDispatch, ForcingUnsupportedIsaIsACleanError) {
  CpuFeatures none;
  EXPECT_THROW(dpz::simd::select_isa(none, Isa::kAvx2),
               dpz::InvalidArgument);
  EXPECT_THROW(dpz::simd::select_isa(none, Isa::kNeon),
               dpz::InvalidArgument);
  // Scalar is always executable.
  EXPECT_EQ(dpz::simd::select_isa(none, Isa::kScalar), Isa::kScalar);
}

TEST(SimdDispatch, ParseAndNameRoundTrip) {
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon})
    EXPECT_EQ(dpz::simd::parse_isa(dpz::simd::isa_name(isa)), isa);
  EXPECT_EQ(dpz::simd::parse_isa("sse9"), std::nullopt);
  EXPECT_EQ(dpz::simd::parse_isa(""), std::nullopt);
}

TEST(SimdDispatch, SetForceIsaSwitchesAndRestores) {
  const Isa initial = dpz::simd::active_isa();
  dpz::simd::set_force_isa(Isa::kScalar);
  EXPECT_EQ(dpz::simd::active_isa(), Isa::kScalar);
  // The dispatched table is the scalar table while forced.
  EXPECT_EQ(&dpz::simd::kernels(),
            &dpz::simd::kernel_table(Isa::kScalar));
  dpz::simd::set_force_isa(std::nullopt);
  EXPECT_EQ(dpz::simd::active_isa(), initial);
}

TEST(SimdDispatch, AvailableIsasAlwaysIncludesScalar) {
  const std::vector<Isa> isas = dpz::simd::available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (const Isa isa : isas) {
    // Every advertised ISA must dispatch to a real table.
    EXPECT_NE(&dpz::simd::kernel_table(isa), nullptr);
  }
}

TEST(SimdDispatch, KernelTableForUnavailableIsaThrows) {
  const std::vector<Isa> isas = dpz::simd::available_isas();
  for (const Isa isa : {Isa::kAvx2, Isa::kNeon}) {
    const bool available =
        std::find(isas.begin(), isas.end(), isa) != isas.end();
    if (!available) {
      EXPECT_THROW(dpz::simd::kernel_table(isa), dpz::InvalidArgument);
    }
  }
}

}  // namespace
