// Tests for the rate/quality-targeting helpers and the fixed_k config
// path they rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rate_control.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray band_limited_field(std::size_t rows, std::size_t cols,
                              std::uint64_t seed) {
  Rng rng(seed);
  FloatArray a({rows, cols});
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      a(i, j) = static_cast<float>(
          std::sin(0.08 * static_cast<double>(i)) *
              std::cos(0.05 * static_cast<double>(j)) +
          0.4 * std::sin(0.021 * static_cast<double>(i + 2 * j)) +
          0.001 * rng.normal());
  return a;
}

TEST(FixedK, OverridesSelection) {
  const FloatArray data = band_limited_field(64, 128, 1);
  DpzConfig config = DpzConfig::strict();
  config.fixed_k = 5;
  config.tve = 0.9999999;  // would pick a much larger k
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  EXPECT_EQ(stats.k, 5U);
  EXPECT_EQ(dpz_decompress(archive).shape(), data.shape());
}

TEST(FixedK, ClampedToFeatureCount) {
  const FloatArray data = band_limited_field(32, 64, 2);
  DpzConfig config = DpzConfig::strict();
  config.fixed_k = 100000;
  DpzStats stats;
  dpz_compress(data, config, &stats);
  EXPECT_EQ(stats.k, stats.layout.m);
}

TEST(RateControl, TargetRatioIsMetWithMaximalFidelity) {
  const FloatArray data = band_limited_field(64, 128, 3);
  const double target = 20.0;
  const RateTargetResult result =
      dpz_compress_target_ratio(data, target, DpzConfig::strict());
  ASSERT_TRUE(result.target_met);
  EXPECT_GE(result.achieved_cr, target * 0.999);

  // Maximal fidelity under the budget: one more component must break it.
  DpzConfig probe = DpzConfig::strict();
  probe.fixed_k = result.k + 1;
  DpzStats stats;
  dpz_compress(data, probe, &stats);
  EXPECT_LT(stats.cr_archive(), target);
}

TEST(RateControl, ImpossibleRatioReportsNotMet) {
  Rng rng(4);
  FloatArray noise({40, 80});
  for (float& v : noise.flat()) v = static_cast<float>(rng.normal());
  const RateTargetResult result =
      dpz_compress_target_ratio(noise, 500.0, DpzConfig::strict());
  EXPECT_FALSE(result.target_met);
  EXPECT_LT(result.achieved_cr, 500.0);
  EXPECT_EQ(dpz_decompress(result.archive).size(), noise.size());
}

TEST(RateControl, TargetPsnrIsMetWithMinimalCost) {
  const FloatArray data = band_limited_field(64, 128, 5);
  const double target = 45.0;
  const RateTargetResult result =
      dpz_compress_target_psnr(data, target, DpzConfig::strict());
  ASSERT_TRUE(result.target_met);
  EXPECT_GE(result.achieved_psnr_db, target);

  if (result.k > 1) {
    DpzConfig probe = DpzConfig::strict();
    probe.fixed_k = result.k - 1;
    const auto archive = dpz_compress(data, probe);
    const FloatArray back = dpz_decompress(archive);
    EXPECT_LT(compute_error_stats(data.flat(), back.flat()).psnr_db,
              target);
  }
}

TEST(RateControl, UnreachablePsnrReportsBestEffort) {
  const FloatArray data = band_limited_field(48, 96, 6);
  DpzConfig loose = DpzConfig::loose();  // quantizer caps the PSNR
  const RateTargetResult result =
      dpz_compress_target_psnr(data, 140.0, loose);
  EXPECT_FALSE(result.target_met);
  EXPECT_LT(result.achieved_psnr_db, 140.0);
  EXPECT_EQ(result.k, result.stats.layout.m);  // best effort = all of them
}

TEST(RateControl, RatioRejectsTrivialTarget) {
  const FloatArray data = band_limited_field(32, 64, 7);
  EXPECT_THROW(dpz_compress_target_ratio(data, 1.0), InvalidArgument);
}

TEST(RateControl, ResultsAreInternallyConsistent) {
  const FloatArray data = band_limited_field(64, 128, 8);
  const RateTargetResult result =
      dpz_compress_target_ratio(data, 10.0, DpzConfig::strict());
  EXPECT_EQ(result.k, result.stats.k);
  EXPECT_EQ(result.archive.size(), result.stats.archive_bytes);
  EXPECT_NEAR(result.achieved_cr, result.stats.cr_archive(), 1e-12);
}

}  // namespace
}  // namespace dpz
