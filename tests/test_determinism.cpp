// Determinism under the threads knob: every pipeline must produce
// byte-identical archives AND byte-identical reconstructions for every
// worker count. This is the format-level guarantee the parallel rewrite
// promises (static partitioning, disjoint writes, no order-dependent
// reductions) — any ordering bug shows up here as a byte diff long
// before it corrupts a user's data.
//
// The whole suite runs with telemetry recording ON: byte identity
// across thread counts while every span and counter site is live is the
// standing proof that the observability layer (src/obs) never perturbs
// output bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "baselines/dctzlike.h"
#include "core/chunked.h"
#include "core/dpz.h"
#include "core/shared_basis.h"
#include "data/datasets.h"
#include "obs/log.h"
#include "obs/telemetry.h"
#include "simd/simd.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dpz {
namespace {

[[maybe_unused]] const bool g_telemetry_on = [] {
  obs::set_telemetry_enabled(true);
  return true;
}();

// The whole suite also runs with structured logging at its most verbose
// level: every byte-invariance assertion below doubles as proof that the
// flight recorder and log sites never touch the data path.
[[maybe_unused]] const bool g_logging_on = [] {
  obs::set_log_level(obs::LogLevel::kTrace);
  return true;
}();

constexpr unsigned kThreadCounts[] = {1, 2, 8};

FloatArray synthetic_2d(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      values[r * cols + c] = static_cast<float>(
          0.25 * static_cast<double>(r % 17) -
          0.125 * static_cast<double>(c % 13) + rng.uniform(-0.5, 0.5));
  return FloatArray({rows, cols}, std::move(values));
}

std::vector<std::uint8_t> float_bytes(const FloatArray& a) {
  std::vector<std::uint8_t> bytes(a.size() * sizeof(float));
  std::memcpy(bytes.data(), a.flat().data(), bytes.size());
  return bytes;
}

std::vector<std::uint8_t> double_bytes(const DoubleArray& a) {
  std::vector<std::uint8_t> bytes(a.size() * sizeof(double));
  std::memcpy(bytes.data(), a.flat().data(), bytes.size());
  return bytes;
}

TEST(Determinism, DpzLooseArchiveAndDecodeAreThreadCountInvariant) {
  const FloatArray data = synthetic_2d(96, 80, 11);
  DpzConfig config = DpzConfig::loose();
  config.threads = 1;
  const std::vector<std::uint8_t> ref_archive = dpz_compress(data, config);
  const std::vector<std::uint8_t> ref_decode =
      float_bytes(dpz_decompress(ref_archive, 0, 1));
  for (const unsigned threads : kThreadCounts) {
    config.threads = threads;
    EXPECT_EQ(dpz_compress(data, config), ref_archive)
        << "archive differs at threads=" << threads;
    EXPECT_EQ(float_bytes(dpz_decompress(ref_archive, 0, threads)),
              ref_decode)
        << "decode differs at threads=" << threads;
  }
}

TEST(Determinism, DpzStrictArchiveAndDecodeAreThreadCountInvariant) {
  const Dataset ds = make_dataset("CLDHGH", 0.05, 2021);
  DpzConfig config = DpzConfig::strict();
  config.threads = 1;
  const std::vector<std::uint8_t> ref_archive =
      dpz_compress(ds.data, config);
  const std::vector<std::uint8_t> ref_decode =
      float_bytes(dpz_decompress(ref_archive, 0, 1));
  for (const unsigned threads : kThreadCounts) {
    config.threads = threads;
    EXPECT_EQ(dpz_compress(ds.data, config), ref_archive)
        << "archive differs at threads=" << threads;
    EXPECT_EQ(float_bytes(dpz_decompress(ref_archive, 0, threads)),
              ref_decode)
        << "decode differs at threads=" << threads;
  }
}

TEST(Determinism, DpzF64ArchiveAndDecodeAreThreadCountInvariant) {
  Rng rng(7);
  std::vector<double> values(48 * 64);
  for (double& v : values) v = rng.uniform(-2.0, 2.0);
  const DoubleArray data({48, 64}, std::move(values));
  DpzConfig config = DpzConfig::strict();
  config.threads = 1;
  const std::vector<std::uint8_t> ref_archive = dpz_compress(data, config);
  const std::vector<std::uint8_t> ref_decode =
      double_bytes(dpz_decompress_f64(ref_archive, 0, 1));
  for (const unsigned threads : kThreadCounts) {
    config.threads = threads;
    EXPECT_EQ(dpz_compress(data, config), ref_archive)
        << "archive differs at threads=" << threads;
    EXPECT_EQ(double_bytes(dpz_decompress_f64(ref_archive, 0, threads)),
              ref_decode)
        << "decode differs at threads=" << threads;
  }
}

TEST(Determinism, DpzSamplingPathIsThreadCountInvariant) {
  // Algorithm 2 adds the subset estimator and the truncated eigensolver
  // to the parallel surface; the seed pins its subset choice, so bytes
  // must still be invariant.
  const FloatArray data = synthetic_2d(128, 96, 5);
  DpzConfig config = DpzConfig::strict();
  config.use_sampling = true;
  config.threads = 1;
  const std::vector<std::uint8_t> ref_archive = dpz_compress(data, config);
  for (const unsigned threads : kThreadCounts) {
    config.threads = threads;
    EXPECT_EQ(dpz_compress(data, config), ref_archive)
        << "archive differs at threads=" << threads;
  }
}

TEST(Determinism, ChunkedContainerIsThreadCountInvariant) {
  const FloatArray data = synthetic_2d(160, 120, 23);
  ChunkedConfig config;
  config.dpz = DpzConfig::strict();
  config.chunk_values = 2048;  // several frames for the outer fan-out
  config.threads = 1;
  const std::vector<std::uint8_t> ref_archive =
      chunked_compress(data, config);
  const std::vector<std::uint8_t> ref_decode =
      float_bytes(chunked_decompress(ref_archive, 1));
  for (const unsigned threads : kThreadCounts) {
    config.threads = threads;
    EXPECT_EQ(chunked_compress(data, config), ref_archive)
        << "container differs at threads=" << threads;
    EXPECT_EQ(float_bytes(chunked_decompress(ref_archive, threads)),
              ref_decode)
        << "decode differs at threads=" << threads;
  }
}

TEST(Determinism, ChunkedParityContainerIsThreadCountInvariant) {
  // The parity section is derived from the compressed frame payloads, so
  // any thread-count dependence in the frame bytes would surface here too.
  const FloatArray data = synthetic_2d(160, 120, 23);
  ChunkedConfig config;
  config.dpz = DpzConfig::strict();
  config.chunk_values = 2048;
  config.parity_k = 4;
  config.parity_m = 2;
  config.threads = 1;
  const std::vector<std::uint8_t> ref_archive =
      chunked_compress(data, config);
  const std::vector<std::uint8_t> ref_decode =
      float_bytes(chunked_decompress(ref_archive, 1));
  for (const unsigned threads : kThreadCounts) {
    config.threads = threads;
    EXPECT_EQ(chunked_compress(data, config), ref_archive)
        << "container differs at threads=" << threads;
    EXPECT_EQ(float_bytes(chunked_decompress(ref_archive, threads)),
              ref_decode)
        << "decode differs at threads=" << threads;
  }
}

TEST(Determinism, SharedBasisCodecIsThreadCountInvariant) {
  const FloatArray reference = synthetic_2d(96, 96, 31);
  const FloatArray snapshot = synthetic_2d(96, 96, 32);
  DpzConfig config = DpzConfig::strict();
  config.threads = 1;
  const SharedBasisCodec ref_codec =
      SharedBasisCodec::train(reference, config);
  const std::vector<std::uint8_t> ref_blob = ref_codec.serialize();
  const std::vector<std::uint8_t> ref_archive =
      ref_codec.compress(snapshot);
  const std::vector<std::uint8_t> ref_decode =
      float_bytes(ref_codec.decompress(ref_archive));
  for (const unsigned threads : kThreadCounts) {
    config.threads = threads;
    const SharedBasisCodec codec =
        SharedBasisCodec::train(reference, config);
    EXPECT_EQ(codec.serialize(), ref_blob)
        << "basis blob differs at threads=" << threads;
    EXPECT_EQ(codec.compress(snapshot), ref_archive)
        << "archive differs at threads=" << threads;
    SharedBasisCodec reader = SharedBasisCodec::deserialize(ref_blob);
    reader.set_threads(threads);
    EXPECT_EQ(float_bytes(reader.decompress(ref_archive)), ref_decode)
        << "decode differs at threads=" << threads;
  }
}

TEST(Determinism, BaselineUnderScopedPoolIsThreadCountInvariant) {
  // The DCTZ-like baseline reaches the free parallel_for through
  // whatever pool is in scope; its bytes must not depend on the pool
  // either.
  const FloatArray data = synthetic_2d(72, 88, 41);
  DctzLikeConfig config;
  std::vector<std::uint8_t> ref_archive;
  std::vector<std::uint8_t> ref_decode;
  for (const unsigned threads : kThreadCounts) {
    const ScopedThreads scope(threads);
    const std::vector<std::uint8_t> archive =
        dctzlike_compress(data, config);
    const std::vector<std::uint8_t> decode =
        float_bytes(dctzlike_decompress(archive));
    if (ref_archive.empty()) {
      ref_archive = archive;
      ref_decode = decode;
    } else {
      EXPECT_EQ(archive, ref_archive)
          << "archive differs at threads=" << threads;
      EXPECT_EQ(decode, ref_decode)
          << "decode differs at threads=" << threads;
    }
  }
}

TEST(Determinism, ArchiveBytesAreIsaAndThreadCountInvariant) {
  // The sixteen-lane reduction contract (src/simd/simd.h) promises that
  // every ISA's kernels produce bit-identical doubles; this is where that
  // promise meets the format-level one. Sweep every executable ISA
  // crossed with the threads knob — the same sweep the forced-scalar CI
  // job runs via DPZ_FORCE_ISA — and require byte-identical archives and
  // reconstructions everywhere.
  struct ForceGuard {
    ~ForceGuard() { simd::set_force_isa(std::nullopt); }
  } guard;

  const FloatArray dense = synthetic_2d(96, 80, 67);
  const FloatArray frames = synthetic_2d(128, 96, 68);
  DpzConfig config = DpzConfig::strict();
  ChunkedConfig chunked;
  chunked.dpz = DpzConfig::strict();
  chunked.chunk_values = 2048;

  simd::set_force_isa(simd::Isa::kScalar);
  config.threads = 1;
  chunked.threads = 1;
  const std::vector<std::uint8_t> ref_archive = dpz_compress(dense, config);
  const std::vector<std::uint8_t> ref_decode =
      float_bytes(dpz_decompress(ref_archive, 0, 1));
  const std::vector<std::uint8_t> ref_container =
      chunked_compress(frames, chunked);

  for (const simd::Isa isa : simd::available_isas()) {
    simd::set_force_isa(isa);
    for (const unsigned threads : kThreadCounts) {
      config.threads = threads;
      chunked.threads = threads;
      EXPECT_EQ(dpz_compress(dense, config), ref_archive)
          << "archive differs at isa=" << simd::isa_name(isa)
          << " threads=" << threads;
      EXPECT_EQ(float_bytes(dpz_decompress(ref_archive, 0, threads)),
                ref_decode)
          << "decode differs at isa=" << simd::isa_name(isa)
          << " threads=" << threads;
      EXPECT_EQ(chunked_compress(frames, chunked), ref_container)
          << "container differs at isa=" << simd::isa_name(isa)
          << " threads=" << threads;
    }
  }
}

TEST(Determinism, ResourceLimitsAreByteInvisibleAcrossThreadCounts) {
  // Governance checkpoints and memory charges sit inside every stage
  // and strip loop; with limits enabled but never tripping, the bytes
  // must be indistinguishable from an ungoverned run at every worker
  // count (the ResourceLimits design invariant).
  const FloatArray data = synthetic_2d(96, 80, 47);
  DpzConfig plain = DpzConfig::strict();
  plain.threads = 1;
  const std::vector<std::uint8_t> ref_archive = dpz_compress(data, plain);
  const std::vector<std::uint8_t> ref_decode =
      float_bytes(dpz_decompress(ref_archive, 0, 1));

  CancelSource never;
  ResourceLimits limits;
  limits.max_memory_bytes = 1ULL << 30;
  limits.deadline_ns = ResourceLimits::deadline_after_ms(300000.0);
  limits.cancel = never.token();
  DpzConfig governed = plain;
  governed.limits = limits;
  for (const unsigned threads : kThreadCounts) {
    governed.threads = threads;
    EXPECT_EQ(dpz_compress(data, governed), ref_archive)
        << "governed archive differs at threads=" << threads;
    EXPECT_EQ(
        float_bytes(dpz_decompress(ref_archive, 0, threads, limits)),
        ref_decode)
        << "governed decode differs at threads=" << threads;
  }

  ChunkedConfig chunk_plain;
  chunk_plain.chunk_values = 2048;
  chunk_plain.threads = 1;
  const FloatArray flat = synthetic_2d(1, 3 * 2048, 48);
  const std::vector<std::uint8_t> ref_container =
      chunked_compress(flat, chunk_plain);
  ChunkedConfig chunk_governed = chunk_plain;
  chunk_governed.dpz.limits = limits;
  for (const unsigned threads : kThreadCounts) {
    chunk_governed.threads = threads;
    EXPECT_EQ(chunked_compress(flat, chunk_governed), ref_container)
        << "governed container differs at threads=" << threads;
  }
}

TEST(Determinism, ProgressiveDecodeIsThreadCountInvariant) {
  // max_components trims the score streams; the partial reconstruction
  // must be as thread-invariant as the full one.
  const FloatArray data = synthetic_2d(96, 80, 55);
  DpzConfig config = DpzConfig::strict();
  const std::vector<std::uint8_t> archive = dpz_compress(data, config);
  const DpzArchiveInfo info = dpz_inspect(archive);
  const std::size_t partial = info.k > 1 ? info.k / 2 : 1;
  const std::vector<std::uint8_t> ref =
      float_bytes(dpz_decompress(archive, partial, 1));
  for (const unsigned threads : kThreadCounts)
    EXPECT_EQ(float_bytes(dpz_decompress(archive, partial, threads)), ref)
        << "partial decode differs at threads=" << threads;
}

}  // namespace
}  // namespace dpz
