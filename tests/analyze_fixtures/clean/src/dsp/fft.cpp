// Compliant: dsp/fft.cpp is on the reinterpret-cast allowlist for the
// std::complex<double> <-> interleaved-double reinterpretation, which
// rides on the standard's array-oriented access guarantee.
#include <complex>

namespace dpz {

double* as_doubles(std::complex<double>* p) {
  return reinterpret_cast<double*>(p);
}

}  // namespace dpz
