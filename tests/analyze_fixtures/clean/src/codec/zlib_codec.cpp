// Boundary: codec/zlib_codec.cpp is the one reinterpret_cast
// allowlist entry (rule 1), and zlib_decompress is defined here.
#include <cstddef>
#include <vector>

namespace dpz {

std::vector<unsigned char> zlib_decompress(const unsigned char* bytes,
                                           std::size_t size) {
  const char* raw = reinterpret_cast<const char*>(bytes);
  return std::vector<unsigned char>(raw, raw + size);
}

}  // namespace dpz
