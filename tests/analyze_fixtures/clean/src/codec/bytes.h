// Boundary: codec/bytes.h owns memcpy (rule 2); ByteReader throws
// FormatError (rule 3). DPZ_REQUIRE outside the reader class is fine.
#pragma once

#include <cstddef>
#include <cstring>
#include <stdexcept>

#define DPZ_REQUIRE(cond, msg) ((void)0)

namespace dpz {

struct FormatError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class ByteReader {
 public:
  explicit ByteReader(std::size_t size) : size_(size) {}

  void skip(std::size_t n) {
    if (pos_ + n > size_) throw FormatError("skip past end");
    pos_ += n;
  }

 private:
  std::size_t pos_ = 0;
  std::size_t size_;
};

inline void copy_bytes(void* dst, const void* src_bytes, std::size_t n) {
  DPZ_REQUIRE(dst != nullptr, "null destination");
  std::memcpy(dst, src_bytes, n);
}

}  // namespace dpz
