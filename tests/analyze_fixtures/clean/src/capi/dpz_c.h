// Compliant: the C constants mirror every StatusCode value.
#pragma once

typedef enum dpz_status {
  DPZ_OK = 0,
  DPZ_ERR_BOOM = 1,
  DPZ_ERR_LOST = 2,
} dpz_status;
