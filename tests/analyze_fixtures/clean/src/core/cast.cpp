// Compliant: assembles the word from bytes, no reinterpret_cast.
#include <cstdint>

namespace dpz {

std::uint32_t peek_word(const unsigned char* bytes) {
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

}  // namespace dpz
