// Compliant: records through the interned enum, no name literals.

namespace dpz {

enum class Counter { kBytesIn };

void bump_counter(Counter counter, long delta);

void record_input(long bytes) {
  bump_counter(Counter::kBytesIn, bytes);
}

}  // namespace dpz
