// Boundary: src/core/dpz.cpp is the one caller of zlib_decompress in
// src/core (rule 5); the checksum gate lives here.
#include <cstddef>
#include <vector>

namespace dpz {

std::vector<unsigned char> zlib_decompress(const unsigned char*,
                                           std::size_t);

std::vector<unsigned char> get_section(const unsigned char* bytes,
                                       std::size_t size) {
  return zlib_decompress(bytes, size);
}

}  // namespace dpz
