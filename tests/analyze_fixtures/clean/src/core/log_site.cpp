// Compliant: logs through the interned enum, no name literals.

namespace dpz {

enum class Event { kDecodeAbort };

void log_event(Event event, int status);

void abort_decode(int status) {
  log_event(Event::kDecodeAbort, status);
}

}  // namespace dpz
