// Compliant: the hot loop calls through the dispatched kernel table
// instead of spelling intrinsics at the call site.
#include <cstddef>

namespace dpz {

double kernel_dot(const double* x, const double* y, std::size_t n);

double lane_sum(const double* x, const double* ones, std::size_t n) {
  return kernel_dot(x, ones, n);
}

}  // namespace dpz
