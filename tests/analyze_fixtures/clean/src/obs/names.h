// Compliant registry: display names are unique; the repeated "stage"
// category is legal (categories are a separate namespace).
#pragma once

namespace dpz::obs {

struct SpanInfo {
  const char* name;
  const char* category;
};

inline constexpr SpanInfo kSpanInfo[] = {
    {"encode_plan", "stage"},
    {"decode_plan", "stage"},
};

inline constexpr const char* kCounterNames[] = {
    "bytes_in",
};

inline constexpr const char* kHistNames[] = {
    "chunk_ms",
};

inline constexpr const char* kEventNames[] = {
    "decode_abort",
};

}  // namespace dpz::obs
