// Compliant: every StatusCode enumerator is named and mirrored.
#pragma once

namespace dpz {

enum class StatusCode {
  kOk = 0,
  kBoom = 1,
  kLost = 2,
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "status_ok";
    case StatusCode::kBoom: return "status_boom";
    case StatusCode::kLost: return "status_lost";
  }
  return "status_unknown";
}

}  // namespace dpz
