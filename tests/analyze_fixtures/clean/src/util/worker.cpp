// Compliant: concurrency through the annotated wrappers.
#include "util/annotated_mutex.h"

namespace dpz {

Mutex g_m;

void locked_call(void (*fn)()) {
  const MutexLock lock(g_m);
  fn();
}

}  // namespace dpz
