// Boundary: util/annotated_mutex.h is the one home of the std
// concurrency primitives (naked-mutex); everything else wraps them.
#pragma once

#include <condition_variable>
#include <mutex>

namespace dpz {

class Mutex {
 public:
  void lock() { m_.lock(); }
  void unlock() { m_.unlock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& m) : m_(m) { m_.lock(); }
  ~MutexLock() { m_.unlock(); }

 private:
  Mutex& m_;
};

class CondVar {
 public:
  void wait(Mutex& m) {
    std::unique_lock<std::mutex> lock(m.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dpz
