// Boundary: util/thread_pool.cpp is the one home of std::thread
// (raw-thread); workers are joined, never detached.
#include <thread>
#include <vector>

namespace dpz {

void run_joined(void (*fn)(), int n) {
  std::vector<std::thread> workers;
  for (int i = 0; i < n; ++i) workers.emplace_back(fn);
  for (std::thread& worker : workers) worker.join();
}

}  // namespace dpz
