// Compliant: intrinsics are legal here — src/simd/ is the one place the
// simd-isolated check exempts.
#include <immintrin.h>

namespace dpz::simd {

double lane_sum(const double* x) {
  const __m256d v = _mm256_loadu_pd(x);
  double lanes[4];
  _mm256_storeu_pd(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace dpz::simd
