// Compliant: exit_code_for is exhaustive over StatusCode.
#include "util/error.h"

namespace dpz {

int exit_code_for(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kBoom: return 1;
    case StatusCode::kLost: return 3;
  }
  return 1;
}

}  // namespace dpz
