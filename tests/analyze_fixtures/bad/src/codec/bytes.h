#pragma once

#include <cstddef>

#define DPZ_REQUIRE(cond, msg) ((void)0)

namespace dpz {

class ByteReader {
 public:
  explicit ByteReader(std::size_t size) : size_(size) {}

  void skip(std::size_t n) {
    DPZ_REQUIRE(pos_ + n <= size_, "skip past end");  // planted: require-in-reader
    pos_ += n;
  }

 private:
  std::size_t pos_ = 0;
  std::size_t size_;
};

}  // namespace dpz
