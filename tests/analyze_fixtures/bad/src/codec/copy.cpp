#include <cstring>

namespace dpz {

void copy_payload(unsigned char* dst, const unsigned char* src_bytes) {
  std::memcpy(dst, src_bytes, 16);  // planted: raw-memcpy
}

}  // namespace dpz
