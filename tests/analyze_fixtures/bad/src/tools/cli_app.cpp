#include "util/error.h"

namespace dpz {

int exit_code_for(StatusCode code) {
  switch (code) {  // planted: status-exhaustive (kBoom has no case)
    case StatusCode::kOk: return 0;
    case StatusCode::kLost: return 3;
  }
  return 1;
}

}  // namespace dpz
