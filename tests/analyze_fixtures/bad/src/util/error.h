#pragma once

namespace dpz {

enum class StatusCode {
  kOk = 0,
  kBoom = 1,
  kLost = 2,  // planted: status-exhaustive (no status_code_name case)
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "status_ok";
    case StatusCode::kBoom: return "status_boom";
  }
  return "status_unknown";
}

}  // namespace dpz
