#include <mutex>
#include <thread>

namespace dpz {

std::mutex g_m;  // planted: naked-mutex

void spawn_logger(void (*fn)()) {
  std::thread worker(fn);  // planted: raw-thread
  worker.detach();         // planted: raw-thread (.detach)
}

void locked_call(void (*fn)()) {
  const std::lock_guard<std::mutex> lock(g_m);  // planted: naked-mutex (twice)
  fn();
}

}  // namespace dpz
