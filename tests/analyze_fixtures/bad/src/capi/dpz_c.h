#pragma once

typedef enum dpz_status {
  DPZ_OK = 0,
  DPZ_ERR_BOOM = 1,
  DPZ_ERR_STALE = 9,  // planted: status-exhaustive (no StatusCode with 9; kLost unmirrored)
} dpz_status;
