namespace dpz {

void bump_counter(const char* name, long delta);

void record_input(long bytes) {
  bump_counter("bytes_in", bytes);  // planted: telemetry-name
}

}  // namespace dpz
