#include <immintrin.h>  // planted: simd-isolated

namespace dpz {

double lane_sum(const double* x) {
  const __m256d v = _mm256_loadu_pd(x);  // planted: simd-isolated (x2)
  double lanes[4];
  _mm256_storeu_pd(lanes, v);  // planted: simd-isolated
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace dpz
