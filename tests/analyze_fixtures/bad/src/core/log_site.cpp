namespace dpz {

void log_event(const char* name, int status);

void abort_decode(int status) {
  log_event("decode_abort", status);  // planted: telemetry-name
}

}  // namespace dpz
