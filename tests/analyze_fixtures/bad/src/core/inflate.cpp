#include <cstddef>
#include <vector>

#include "codec/zlib_codec.h"

namespace dpz {

std::vector<unsigned char> read_section(const unsigned char* bytes,
                                        std::size_t size) {
  return zlib_decompress(bytes, size);  // planted: unguarded-inflate
}

}  // namespace dpz
