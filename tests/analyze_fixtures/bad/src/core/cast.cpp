#include <cstdint>

namespace dpz {

const std::uint32_t* peek_word(const unsigned char* bytes) {
  return reinterpret_cast<const std::uint32_t*>(bytes);  // planted: reinterpret-cast
}

}  // namespace dpz
