#pragma once

namespace dpz::obs {

struct SpanInfo {
  const char* name;
  const char* category;
};

inline constexpr SpanInfo kSpanInfo[] = {
    {"encode_plan", "stage"},
    {"encode_plan", "frame"},  // planted: telemetry-dup
};

inline constexpr const char* kCounterNames[] = {
    "bytes_in",
};

inline constexpr const char* kHistNames[] = {
    "chunk_ms",
};

inline constexpr const char* kEventNames[] = {
    "decode_abort",
};

}  // namespace dpz::obs
