// Unit and property tests for PCA: covariance correctness, variance
// capture on constructed low-rank data, exact reconstruction at full rank,
// TVE-curve semantics, the DCT-domain identity from SS III-B2 (Eq. 4-6),
// and the truncated fit against the dense one.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/dct.h"
#include "linalg/eigen_sym.h"
#include "linalg/pca.h"
#include "util/rng.h"

namespace dpz {
namespace {

// M x N data with exactly `rank` independent directions plus tiny noise.
Matrix low_rank_data(std::size_t m, std::size_t n, std::size_t rank,
                     std::uint64_t seed, double noise = 1e-6) {
  Rng rng(seed);
  Matrix basis(m, rank);
  for (double& v : basis.flat()) v = rng.normal();
  Matrix weights(rank, n);
  for (double& v : weights.flat()) v = rng.normal();
  Matrix x = basis.multiply(weights);
  for (double& v : x.flat()) v += noise * rng.normal();
  return x;
}

TEST(Covariance, MatchesHandComputed) {
  // Two features, three samples.
  const Matrix x(2, 3, {1, 2, 3, 2, 4, 6});
  const Matrix cov = covariance(x);
  // var(f1) = 2/3, var(f2) = 8/3, cov = 4/3 (population).
  EXPECT_NEAR(cov(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(1, 0), 4.0 / 3.0, 1e-12);
}

TEST(Covariance, SymmetricByConstruction) {
  Rng rng(1);
  Matrix x(6, 40);
  for (double& v : x.flat()) v = rng.normal();
  const Matrix cov = covariance(x);
  EXPECT_LT(cov.max_abs_diff(cov.transposed()), 1e-14);
}

TEST(Pca, EigenvalueSumEqualsTotalVariance) {
  Rng rng(2);
  Matrix x(8, 100);
  for (double& v : x.flat()) v = rng.normal();
  const PcaModel model = fit_pca(x);
  const Matrix cov = covariance(x);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 8; ++i) trace += cov(i, i);
  for (const double l : model.eigenvalues) sum += l;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(Pca, LowRankDataNeedsFewComponents) {
  const Matrix x = low_rank_data(20, 300, 3, 7);
  const PcaModel model = fit_pca(x);
  // Rank-3 data: three components explain essentially everything.
  EXPECT_EQ(model.k_for_tve(0.999), 3U);
  const std::vector<double> tve = model.tve_curve();
  EXPECT_GT(tve[2], 0.99999);
}

TEST(Pca, FullRankRoundTripIsExact) {
  Rng rng(3);
  Matrix x(6, 50);
  for (double& v : x.flat()) v = rng.normal();
  const PcaModel model = fit_pca(x);
  const Matrix scores = model.transform(x, 6);
  const Matrix back = model.inverse_transform(scores);
  EXPECT_LT(back.max_abs_diff(x), 1e-9);
}

TEST(Pca, TruncatedReconstructionErrorMatchesDiscardedVariance) {
  const std::size_t m = 10, n = 400, k = 4;
  Rng rng(4);
  Matrix x(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double s = std::pow(0.4, static_cast<double>(i));
    for (std::size_t c = 0; c < n; ++c) x(i, c) = s * rng.normal();
  }
  const PcaModel model = fit_pca(x);
  const Matrix back = model.inverse_transform(model.transform(x, k));
  double err = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t c = 0; c < n; ++c) {
      const double d = back(i, c) - x(i, c);
      err += d * d;
    }
  err /= static_cast<double>(n);
  double tail = 0.0;
  for (std::size_t j = k; j < m; ++j) tail += model.eigenvalues[j];
  // MSE (summed over features) equals the discarded eigenvalue mass.
  EXPECT_NEAR(err, tail, 1e-6 * std::max(1.0, tail));
}

TEST(Pca, TveCurveIsMonotonicAndEndsAtOne) {
  const Matrix x = low_rank_data(12, 80, 5, 8, 1e-3);
  const PcaModel model = fit_pca(x);
  const std::vector<double> tve = model.tve_curve();
  for (std::size_t i = 1; i < tve.size(); ++i)
    EXPECT_GE(tve[i] + 1e-15, tve[i - 1]);
  EXPECT_DOUBLE_EQ(tve.back(), 1.0);
}

TEST(Pca, ConstantDataDegeneratesGracefully) {
  Matrix x(4, 30);
  for (double& v : x.flat()) v = 2.5;
  const PcaModel model = fit_pca(x);
  EXPECT_EQ(model.k_for_tve(0.999), 1U);
  const Matrix back = model.inverse_transform(model.transform(x, 1));
  EXPECT_LT(back.max_abs_diff(x), 1e-12);
}

TEST(Pca, StandardizationEqualizesFeatureWeight) {
  // One feature has 100x the scale; standardized PCA should not let it
  // dominate the first component the way raw PCA does.
  const std::size_t n = 500;
  Rng rng(5);
  Matrix x(3, n);
  for (std::size_t c = 0; c < n; ++c) {
    x(0, c) = 100.0 * rng.normal();
    x(1, c) = rng.normal();
    x(2, c) = rng.normal();
  }
  const PcaModel raw = fit_pca(x, false);
  const PcaModel std_model = fit_pca(x, true);
  // Raw: first component aligned almost entirely with feature 0.
  EXPECT_GT(std::abs(raw.components(0, 0)), 0.99);
  // Standardized: eigenvalues near 1 each (uncorrelated unit features).
  EXPECT_LT(std_model.eigenvalues[0], 1.5);
  EXPECT_GT(std_model.eigenvalues[2], 0.5);
}

TEST(Pca, KForTveBoundaries) {
  const Matrix x = low_rank_data(10, 60, 2, 9);
  const PcaModel model = fit_pca(x);
  EXPECT_EQ(model.k_for_tve(1e-9), 1U);
  EXPECT_THROW((void)model.k_for_tve(0.0), InvalidArgument);
  EXPECT_THROW((void)model.k_for_tve(1.1), InvalidArgument);
  EXPECT_LE(model.k_for_tve(1.0), 10U);
}

TEST(Pca, TransformRejectsBadK) {
  Rng rng(10);
  Matrix x(5, 20);
  for (double& v : x.flat()) v = rng.normal();
  const PcaModel model = fit_pca(x);
  EXPECT_THROW(model.transform(x, 0), InvalidArgument);
  EXPECT_THROW(model.transform(x, 6), InvalidArgument);
}

// The paper's Eq. 4-6: covariance in the DCT domain is A^T V_X A, so PCA
// can be done directly on DCT coefficients and the eigenvalues coincide.
TEST(Pca, DctDomainEigenvaluesMatchSpatialDomain) {
  const std::size_t m = 16, n = 200;
  Rng rng(11);
  Matrix x(m, n);
  // Correlated features: smooth profiles + noise.
  for (std::size_t c = 0; c < n; ++c) {
    const double phase = rng.uniform(0.0, 6.28);
    for (std::size_t i = 0; i < m; ++i)
      x(i, c) = std::sin(0.3 * static_cast<double>(i) + phase) +
                0.1 * rng.normal();
  }

  // DCT along the feature axis (each column transformed).
  const DctPlan plan(m);
  Matrix z(m, n);
  std::vector<double> col(m), out(m);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < m; ++i) col[i] = x(i, c);
    plan.forward(col, out);
    for (std::size_t i = 0; i < m; ++i) z(i, c) = out[i];
  }

  const PcaModel spatial = fit_pca(x);
  const PcaModel dct_domain = fit_pca(z);
  for (std::size_t j = 0; j < m; ++j)
    EXPECT_NEAR(spatial.eigenvalues[j], dct_domain.eigenvalues[j],
                1e-8 * std::max(1.0, spatial.eigenvalues[0]))
        << "eigenvalue " << j;
}

// ---- Truncated fit -------------------------------------------------------

TEST(PcaTopK, MatchesFullFitOnLeadingComponents) {
  const Matrix x = low_rank_data(80, 400, 6, 12, 1e-4);
  const PcaModel full = fit_pca(x);
  const PcaModel topk = fit_pca_topk(x, 6);
  ASSERT_EQ(topk.eigenvalues.size(), 6U);
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(topk.eigenvalues[j], full.eigenvalues[j],
                1e-5 * std::max(1.0, full.eigenvalues[0]));
}

TEST(PcaTopK, ReconstructionMatchesFullFit) {
  const Matrix x = low_rank_data(60, 300, 4, 13, 1e-5);
  const PcaModel full = fit_pca(x);
  const PcaModel topk = fit_pca_topk(x, 4);
  const Matrix full_rec = full.inverse_transform(full.transform(x, 4));
  const Matrix topk_rec = topk.inverse_transform(topk.transform(x, 4));
  EXPECT_LT(full_rec.max_abs_diff(topk_rec), 1e-4);
}

}  // namespace
}  // namespace dpz
