// Unit and property tests for the SZ-like and ZFP-like baselines: the
// pointwise error-bound contract (SZ), precision monotonicity (ZFP),
// round-trips across ranks and partial blocks, and format validation.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dctzlike.h"
#include "core/dpz.h"
#include "baselines/szlike.h"
#include "baselines/zfplike.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray smooth_field(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray a(shape);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.01) *
                                  10.0 +
                              0.05 * rng.normal());
  return a;
}

// ---- SZ-like ---------------------------------------------------------------

class SzRankTest
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(SzRankTest, ErrorBoundHoldsPointwise) {
  const FloatArray data = smooth_field(GetParam(), 1);
  SzLikeConfig config;
  config.error_bound = 1e-3;
  const auto archive = szlike_compress(data, config);
  const FloatArray back = szlike_decompress(archive);
  ASSERT_EQ(back.shape(), data.shape());
  for (std::size_t i = 0; i < data.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(data[i]) - back[i]),
              config.error_bound * (1.0 + 1e-9))
        << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Ranks, SzRankTest,
    ::testing::Values(std::vector<std::size_t>{2000},
                      std::vector<std::size_t>{40, 60},
                      std::vector<std::size_t>{12, 15, 17}));

TEST(SzLike, SmoothDataCompressesWell) {
  const FloatArray data = smooth_field({64, 64}, 2);
  SzLikeConfig config;
  config.error_bound = 1e-2;
  const auto archive = szlike_compress(data, config);
  EXPECT_GT(compression_ratio(data.size() * 4, archive.size()), 4.0);
}

TEST(SzLike, TighterBoundCostsMoreBits) {
  const FloatArray data = smooth_field({64, 64}, 3);
  SzLikeConfig tight, loose;
  tight.error_bound = 1e-5;
  loose.error_bound = 1e-2;
  EXPECT_GT(szlike_compress(data, tight).size(),
            szlike_compress(data, loose).size());
}

TEST(SzLike, RelativeBoundResolvesAgainstRange) {
  FloatArray data({100});
  for (std::size_t i = 0; i < 100; ++i)
    data[i] = static_cast<float>(i);  // range 99
  SzLikeConfig config;
  config.relative_bound = 1e-2;
  const auto archive = szlike_compress(data, config);
  const FloatArray back = szlike_decompress(archive);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_LE(std::abs(static_cast<double>(data[i]) - back[i]),
              0.99 * (1.0 + 1e-9));
}

TEST(SzLike, WhiteNoiseDegradesToRawStorageGracefully) {
  Rng rng(4);
  FloatArray data({4096});
  for (float& v : data.flat()) v = static_cast<float>(rng.normal() * 1e6);
  SzLikeConfig config;
  config.error_bound = 1e-9;  // effectively lossless demand
  const auto archive = szlike_compress(data, config);
  const FloatArray back = szlike_decompress(archive);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_LE(std::abs(static_cast<double>(data[i]) - back[i]), 1e-9);
}

TEST(SzLike, GarbageArchiveRejected) {
  const std::vector<std::uint8_t> garbage(32, 0xEE);
  EXPECT_THROW(szlike_decompress(garbage), FormatError);
}

TEST(SzLike, Rank4Rejected) {
  FloatArray data({2, 2, 2, 2});
  EXPECT_THROW(szlike_compress(data, SzLikeConfig{}), InvalidArgument);
}

TEST(SzLike, CompressorAdapterName) {
  EXPECT_EQ(SzLikeCompressor().name(), "SZ-like");
}

// ---- DCTZ-like -----------------------------------------------------------

TEST(DctzLike, RoundTripOnSmoothData) {
  const FloatArray data = smooth_field({64, 64}, 21);
  DctzLikeConfig config;
  config.error_bound = 1e-3;
  const auto archive = dctzlike_compress(data, config);
  const FloatArray back = dctzlike_decompress(archive);
  ASSERT_EQ(back.shape(), data.shape());
  const ErrorStats err = compute_error_stats(data.flat(), back.flat());
  // Orthonormal DCT: per-coefficient bound e -> RMS error ~ e/sqrt(3).
  EXPECT_LT(std::sqrt(err.mse), config.error_bound);
  EXPECT_GT(compression_ratio(data.size() * 4, archive.size()), 2.0);
}

TEST(DctzLike, TighterBoundCostsMoreBits) {
  const FloatArray data = smooth_field({64, 64}, 22);
  DctzLikeConfig tight, loose;
  tight.error_bound = 1e-5;
  loose.error_bound = 1e-2;
  EXPECT_GT(dctzlike_compress(data, tight).size(),
            dctzlike_compress(data, loose).size());
}

TEST(DctzLike, NarrowCodesSupported) {
  const FloatArray data = smooth_field({48, 48}, 23);
  DctzLikeConfig config;
  config.wide_codes = false;
  config.error_bound = 1e-2;
  const FloatArray back =
      dctzlike_decompress(dctzlike_compress(data, config));
  EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 40.0);
}

TEST(DctzLike, RelativeBoundSupported) {
  const FloatArray data = smooth_field({2000}, 24);
  DctzLikeConfig config;
  config.relative_bound = 1e-4;
  const FloatArray back =
      dctzlike_decompress(dctzlike_compress(data, config));
  const ErrorStats err = compute_error_stats(data.flat(), back.flat());
  EXPECT_LT(std::sqrt(err.mse), 1e-4 * err.value_range);
}

TEST(DctzLike, DpzBeatsItsPredecessorAtMatchedQuality) {
  // DPZ = DCTZ + the PCA stage; on data with strong cross-block
  // correlation the extra stage should pay for itself (the paper's core
  // claim). Compare paper-accounting CR at roughly matched PSNR.
  FloatArray data({96, 192});
  Rng rng(25);
  for (std::size_t i = 0; i < data.extent(0); ++i)
    for (std::size_t j = 0; j < data.extent(1); ++j)
      data(i, j) = static_cast<float>(
          std::sin(0.1 * static_cast<double>(j)) *
              (1.0 + 0.2 * std::sin(0.05 * static_cast<double>(i))) +
          0.001 * rng.normal());

  DctzLikeConfig dctz_cfg;
  dctz_cfg.error_bound = 3e-4;
  const auto dctz_archive = dctzlike_compress(data, dctz_cfg);
  const FloatArray dctz_back = dctzlike_decompress(dctz_archive);
  const double dctz_psnr =
      compute_error_stats(data.flat(), dctz_back.flat()).psnr_db;
  const double dctz_cr =
      compression_ratio(data.size() * 4, dctz_archive.size());

  DpzConfig dpz_cfg = DpzConfig::strict();
  dpz_cfg.tve = 0.999999;
  DpzStats stats;
  const auto dpz_archive = dpz_compress(data, dpz_cfg, &stats);
  const FloatArray dpz_back = dpz_decompress(dpz_archive);
  const double dpz_psnr =
      compute_error_stats(data.flat(), dpz_back.flat()).psnr_db;
  const double dpz_cr =
      compression_ratio(data.size() * 4, dpz_archive.size());

  EXPECT_GT(dpz_psnr + 20.0, dctz_psnr);  // comparable quality band
  EXPECT_GT(dpz_cr, dctz_cr) << "DPZ " << dpz_psnr << " dB @" << dpz_cr
                             << "X vs DCTZ " << dctz_psnr << " dB @"
                             << dctz_cr << "X";
}

TEST(DctzLike, GarbageArchiveRejected) {
  const std::vector<std::uint8_t> garbage(32, 0x77);
  EXPECT_THROW(dctzlike_decompress(garbage), FormatError);
}

TEST(DctzLike, CompressorAdapterName) {
  EXPECT_EQ(DctzLikeCompressor().name(), "DCTZ-like");
}

// ---- ZFP-like ---------------------------------------------------------------

class ZfpRankTest
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(ZfpRankTest, HighPrecisionRoundTripIsAccurate) {
  const FloatArray data = smooth_field(GetParam(), 5);
  ZfpLikeConfig config;
  config.precision = 30;
  const auto archive = zfplike_compress(data, config);
  const FloatArray back = zfplike_decompress(archive);
  ASSERT_EQ(back.shape(), data.shape());
  const ErrorStats err = compute_error_stats(data.flat(), back.flat());
  EXPECT_GT(err.psnr_db, 90.0);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndPartialBlocks, ZfpRankTest,
    ::testing::Values(std::vector<std::size_t>{256},
                      std::vector<std::size_t>{257},   // partial 1-D block
                      std::vector<std::size_t>{32, 32},
                      std::vector<std::size_t>{33, 35},  // partial 2-D
                      std::vector<std::size_t>{8, 8, 8},
                      std::vector<std::size_t>{9, 10, 11}));  // partial 3-D

TEST(ZfpLike, PrecisionMonotonicallyImprovesQuality) {
  const FloatArray data = smooth_field({64, 64}, 6);
  double last_psnr = -1e9;
  for (const unsigned precision : {8U, 12U, 16U, 24U}) {
    ZfpLikeConfig config;
    config.precision = precision;
    const FloatArray back =
        zfplike_decompress(zfplike_compress(data, config));
    const double psnr =
        compute_error_stats(data.flat(), back.flat()).psnr_db;
    EXPECT_GT(psnr, last_psnr) << "precision " << precision;
    last_psnr = psnr;
  }
}

TEST(ZfpLike, PrecisionControlsRate) {
  const FloatArray data = smooth_field({64, 64}, 7);
  ZfpLikeConfig low, high;
  low.precision = 8;
  high.precision = 24;
  EXPECT_LT(zfplike_compress(data, low).size(),
            zfplike_compress(data, high).size());
}

TEST(ZfpLike, FixedAccuracyModeBoundsError) {
  const FloatArray data = smooth_field({48, 48}, 8);
  ZfpLikeConfig config;
  config.mode = ZfpLikeConfig::Mode::kFixedAccuracy;
  config.tolerance = 1e-3;
  const FloatArray back = zfplike_decompress(zfplike_compress(data, config));
  const ErrorStats err = compute_error_stats(data.flat(), back.flat());
  // ZFP's accuracy mode bounds error to within a small factor of the
  // tolerance; allow the transform's documented headroom.
  EXPECT_LT(err.max_abs_error, 8.0 * config.tolerance);
}

TEST(ZfpLike, AllZeroBlocksAreCheap) {
  FloatArray data({64, 64});  // all zeros
  ZfpLikeConfig config;
  config.precision = 24;
  const auto archive = zfplike_compress(data, config);
  // One flag bit per 4x4 block (+header): far below one byte per value.
  EXPECT_LT(archive.size(), 200U);
  const FloatArray back = zfplike_decompress(archive);
  for (const float v : back.flat()) EXPECT_EQ(v, 0.0F);
}

TEST(ZfpLike, ConstantFieldReconstructsClosely) {
  FloatArray data({32, 32});
  for (float& v : data.flat()) v = 3.25F;
  ZfpLikeConfig config;
  config.precision = 28;
  const FloatArray back = zfplike_decompress(zfplike_compress(data, config));
  for (const float v : back.flat()) EXPECT_NEAR(v, 3.25F, 1e-4F);
}

TEST(ZfpLike, GarbageArchiveRejected) {
  const std::vector<std::uint8_t> garbage(32, 0x11);
  EXPECT_THROW(zfplike_decompress(garbage), FormatError);
}

TEST(ZfpLike, NegativeValuesSurvive) {
  FloatArray data({64});
  for (std::size_t i = 0; i < 64; ++i)
    data[i] = static_cast<float>((i % 2 == 0 ? -1.0 : 1.0) *
                                 (1.0 + static_cast<double>(i)));
  ZfpLikeConfig config;
  config.precision = 30;
  const FloatArray back = zfplike_decompress(zfplike_compress(data, config));
  const ErrorStats err = compute_error_stats(data.flat(), back.flat());
  EXPECT_GT(err.psnr_db, 80.0);
}

TEST(ZfpLike, CompressorAdapterName) {
  EXPECT_EQ(ZfpLikeCompressor().name(), "ZFP-like");
}

}  // namespace
}  // namespace dpz
