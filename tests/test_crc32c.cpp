// CRC32C (Castagnoli) unit tests: the implementation is the integrity
// primitive under every v2 archive, so it is pinned three ways — against
// the published check value, against a bit-at-a-time reference, and
// against its own chaining contract (seeded continuation must equal the
// one-shot digest, which is what lets section CRCs cover the raw-size
// prefix without concatenating buffers).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/rng.h"

namespace dpz {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  std::vector<std::uint8_t> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

// Bit-at-a-time reference over the reflected Castagnoli polynomial.
std::uint32_t reference_crc32c(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = ~std::uint32_t{0};
  for (const std::uint8_t b : bytes) {
    crc ^= b;
    for (int i = 0; i < 8; ++i)
      crc = (crc >> 1) ^ ((crc & 1U) != 0 ? 0x82F63B78U : 0U);
  }
  return ~crc;
}

TEST(Crc32c, PublishedCheckValue) {
  // The canonical CRC-32C check value (RFC 3720 appendix / Williams).
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283U);
}

TEST(Crc32c, EmptyInputIsZero) {
  EXPECT_EQ(crc32c({}), 0U);
  EXPECT_EQ(crc32c({}, 0x12345678U), 0x12345678U)
      << "empty continuation must be the identity";
}

TEST(Crc32c, MatchesBitwiseReference) {
  Rng rng(42);
  // Lengths straddling the slice-by-8 boundaries: tails, one full slice,
  // slice plus tail, and a few KiB.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{63},
        std::size_t{1021}, std::size_t{4096}}) {
    std::vector<std::uint8_t> data(n);
    for (auto& b : data)
      b = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
    EXPECT_EQ(crc32c(data), reference_crc32c(data)) << "length " << n;
  }
}

TEST(Crc32c, ChainingEqualsOneShot) {
  Rng rng(43);
  std::vector<std::uint8_t> data(777);
  for (auto& b : data)
    b = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
  const std::uint32_t whole = crc32c(data);
  for (const std::size_t split :
       {std::size_t{0}, std::size_t{1}, std::size_t{8}, std::size_t{100},
        std::size_t{776}, std::size_t{777}}) {
    const std::span<const std::uint8_t> s(data);
    EXPECT_EQ(crc32c(s.subspan(split), crc32c(s.first(split))), whole)
        << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data = bytes_of("integrity is not optional");
  const std::uint32_t good = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1U << bit);
      EXPECT_NE(crc32c(data), good)
          << "missed flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1U << bit);
    }
  }
  EXPECT_EQ(crc32c(data), good) << "flips were not undone";
}

}  // namespace
}  // namespace dpz
