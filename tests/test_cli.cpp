// Tests for the `dpz` command-line tool: shape parsing and full
// compress / info / decompress / probe flows through run_cli on temp
// files.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "io/file_io.h"
#include "tools/cli_app.h"
#include "util/error.h"

namespace dpz::tools {
namespace {

TEST(ParseShape, AcceptsValidShapes) {
  EXPECT_EQ(parse_shape("100"), (std::vector<std::size_t>{100}));
  EXPECT_EQ(parse_shape("1800x3600"),
            (std::vector<std::size_t>{1800, 3600}));
  EXPECT_EQ(parse_shape("128x128x128"),
            (std::vector<std::size_t>{128, 128, 128}));
  EXPECT_EQ(parse_shape("2x3x4x5"), (std::vector<std::size_t>{2, 3, 4, 5}));
}

TEST(ParseShape, RejectsMalformedShapes) {
  EXPECT_THROW(parse_shape(""), InvalidArgument);
  EXPECT_THROW(parse_shape("12x"), InvalidArgument);
  EXPECT_THROW(parse_shape("x12"), InvalidArgument);
  EXPECT_THROW(parse_shape("12xabc"), InvalidArgument);
  EXPECT_THROW(parse_shape("0x4"), InvalidArgument);
  EXPECT_THROW(parse_shape("2x3x4x5x6"), InvalidArgument);
}

class CliFlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dpz_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    FloatArray field({64, 96});
    for (std::size_t i = 0; i < field.extent(0); ++i)
      for (std::size_t j = 0; j < field.extent(1); ++j)
        field(i, j) = static_cast<float>(
            std::sin(0.1 * static_cast<double>(i)) +
            std::cos(0.07 * static_cast<double>(j)));
    write_f32(path("in.f32"), field);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  int run(std::vector<std::string> args) {
    std::vector<const char*> argv{"dpz"};
    for (const auto& a : args) argv.push_back(a.c_str());
    out_.str("");
    err_.str("");
    return run_cli(static_cast<int>(argv.size()), argv.data(), out_, err_);
  }

  std::filesystem::path dir_;
  std::ostringstream out_, err_;
};

TEST_F(CliFlowTest, CompressInfoDecompressRoundTrip) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("a.dpz"),
                 "--shape=64x96", "--verify"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("verify: PSNR"), std::string::npos);

  ASSERT_EQ(run({"info", path("a.dpz")}), 0) << err_.str();
  EXPECT_NE(out_.str().find("DPZ pipeline"), std::string::npos);
  EXPECT_NE(out_.str().find("64 x 96"), std::string::npos);

  ASSERT_EQ(run({"decompress", path("a.dpz"), path("out.f32")}), 0)
      << err_.str();
  const FloatArray original = read_f32(path("in.f32"), {64, 96});
  const FloatArray restored = read_f32(path("out.f32"), {64, 96});
  double max_err = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i)
    max_err = std::max(max_err, std::abs(static_cast<double>(original[i]) -
                                         restored[i]));
  EXPECT_LT(max_err, 0.05);
}

TEST_F(CliFlowTest, LooseSchemeAndKneeFlags) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("b.dpz"),
                 "--shape=64x96", "--scheme=l", "--knee=polyn"}),
            0)
      << err_.str();
  ASSERT_EQ(run({"info", path("b.dpz")}), 0);
  EXPECT_NE(out_.str().find("1-byte codes"), std::string::npos);
}

TEST_F(CliFlowTest, PartialDecompression) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("c.dpz"),
                 "--shape=64x96", "--tve=0.9999999"}),
            0);
  ASSERT_EQ(run({"decompress", path("c.dpz"), path("partial.f32"),
                 "--components=1"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("first 1 components"), std::string::npos);
  EXPECT_NO_THROW(read_f32(path("partial.f32"), {64, 96}));
}

TEST_F(CliFlowTest, ProbeReportsVifAndEstimate) {
  ASSERT_EQ(run({"probe", path("in.f32"), "--shape=64x96"}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("VIF median"), std::string::npos);
  EXPECT_NE(out_.str().find("CR estimate"), std::string::npos);
}

TEST_F(CliFlowTest, MissingShapeFails) {
  EXPECT_EQ(run({"compress", path("in.f32"), path("x.dpz")}), 1);
  EXPECT_NE(err_.str().find("--shape"), std::string::npos);
}

TEST_F(CliFlowTest, UnknownCommandFails) {
  EXPECT_EQ(run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliFlowTest, HelpPrintsUsage) {
  EXPECT_EQ(run({"compress", "--help"}), 0);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
}

TEST_F(CliFlowTest, MissingInputFileFails) {
  EXPECT_EQ(run({"compress", path("absent.f32"), path("x.dpz"),
                 "--shape=64x96"}),
            1);
  EXPECT_NE(err_.str().find("error:"), std::string::npos);
}

TEST_F(CliFlowTest, DoublePrecisionRoundTrip) {
  DoubleArray field({48, 64});
  for (std::size_t i = 0; i < field.extent(0); ++i)
    for (std::size_t j = 0; j < field.extent(1); ++j)
      field(i, j) = std::sin(0.2 * static_cast<double>(i)) *
                    std::cos(0.15 * static_cast<double>(j));
  write_f64(path("in64.f64"), field);

  ASSERT_EQ(run({"compress", path("in64.f64"), path("d.dpz"),
                 "--shape=48x64", "--dtype=f64", "--verify"}),
            0)
      << err_.str();
  ASSERT_EQ(run({"info", path("d.dpz")}), 0);
  EXPECT_NE(out_.str().find("f64"), std::string::npos);

  ASSERT_EQ(run({"decompress", path("d.dpz"), path("out64.f64")}), 0)
      << err_.str();
  const DoubleArray restored = read_f64(path("out64.f64"), {48, 64});
  double max_err = 0.0;
  for (std::size_t i = 0; i < field.size(); ++i)
    max_err = std::max(max_err, std::abs(field[i] - restored[i]));
  EXPECT_LT(max_err, 0.05);
}

TEST_F(CliFlowTest, UnknownDtypeFails) {
  EXPECT_EQ(run({"compress", path("in.f32"), path("x.dpz"),
                 "--shape=64x96", "--dtype=f16"}),
            1);
  EXPECT_NE(err_.str().find("dtype"), std::string::npos);
}

TEST_F(CliFlowTest, DatasetsSubcommandWritesFilesAndManifest) {
  const std::string outdir = path("datasets");
  ASSERT_EQ(run({"datasets", outdir, "--scale=0.05",
                 "--names=FLDSC,HACC-vx"}),
            0)
      << err_.str();
  EXPECT_TRUE(std::filesystem::exists(outdir + "/FLDSC.f32"));
  EXPECT_TRUE(std::filesystem::exists(outdir + "/HACC-vx.f32"));
  EXPECT_TRUE(std::filesystem::exists(outdir + "/MANIFEST.txt"));
  // The manifest's shape must open the file.
  EXPECT_NO_THROW(read_f32(outdir + "/FLDSC.f32", {90, 180}));
}

TEST_F(CliFlowTest, DatasetsRejectsUnknownName) {
  EXPECT_EQ(run({"datasets", path("ds2"), "--names=NOPE"}), 1);
}

TEST_F(CliFlowTest, TargetRatioFlag) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("rc.dpz"),
                 "--shape=64x96", "--target-cr=10", "--verify"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("ratio 1"), std::string::npos);  // >= 10X
}

TEST_F(CliFlowTest, TargetPsnrFlag) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("rp.dpz"),
                 "--shape=64x96", "--target-psnr=40", "--verify"}),
            0)
      << err_.str();
}

TEST_F(CliFlowTest, ConflictingTargetsRejected) {
  EXPECT_EQ(run({"compress", path("in.f32"), path("x.dpz"),
                 "--shape=64x96", "--target-cr=10", "--target-psnr=40"}),
            1);
  EXPECT_NE(err_.str().find("choose one"), std::string::npos);
}

TEST_F(CliFlowTest, ChunkedContainerRoundTrip) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("ck.dpzc"),
                 "--shape=64x96", "--chunk=2048", "--verify"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("chunked container: 3 frames"),
            std::string::npos);
  ASSERT_EQ(run({"decompress", path("ck.dpzc"), path("ck_out.f32")}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("3 frames"), std::string::npos);
  EXPECT_NO_THROW(read_f32(path("ck_out.f32"), {64, 96}));
}

TEST_F(CliFlowTest, ChunkedAndTargetConflict) {
  EXPECT_EQ(run({"compress", path("in.f32"), path("x.dpz"),
                 "--shape=64x96", "--chunk=2048", "--target-cr=5"}),
            1);
}

TEST_F(CliFlowTest, VerifyReportsIntactAndCorruptArchives) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("v.dpz"),
                 "--shape=64x96"}),
            0)
      << err_.str();

  ASSERT_EQ(run({"verify", path("v.dpz")}), 0) << err_.str();
  EXPECT_NE(out_.str().find("kind:     dpz"), std::string::npos);
  EXPECT_NE(out_.str().find("format:   v2"), std::string::npos);
  EXPECT_NE(out_.str().find("crc ok"), std::string::npos);
  EXPECT_NE(out_.str().find("OK"), std::string::npos);

  // Flip a payload byte: verify must exit 1, name the bad section, and
  // never throw.
  auto bytes = read_bytes(path("v.dpz"));
  bytes[bytes.size() / 2] ^= 0x08;
  write_bytes(path("v_bad.dpz"), bytes);
  EXPECT_EQ(run({"verify", path("v_bad.dpz")}), 1);
  EXPECT_NE(out_.str().find("crc MISMATCH"), std::string::npos);
  EXPECT_NE(out_.str().find("CORRUPT"), std::string::npos);
}

TEST_F(CliFlowTest, VerifyChunkedShowsFrames) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("vc.dpzc"),
                 "--shape=64x96", "--chunk=2048"}),
            0)
      << err_.str();
  ASSERT_EQ(run({"verify", path("vc.dpzc")}), 0) << err_.str();
  EXPECT_NE(out_.str().find("kind:     chunked"), std::string::npos);
  EXPECT_NE(out_.str().find("frame[0]"), std::string::npos);
}

TEST_F(CliFlowTest, InspectDumpsHeaderAndSections) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("i.dpz"),
                 "--shape=64x96"}),
            0)
      << err_.str();
  ASSERT_EQ(run({"inspect", path("i.dpz")}), 0) << err_.str();
  EXPECT_NE(out_.str().find("shape:    64 x 96"), std::string::npos);
  EXPECT_NE(out_.str().find("dtype:    f32"), std::string::npos);
  EXPECT_NE(out_.str().find("sections:"), std::string::npos);
  EXPECT_NE(out_.str().find("k:"), std::string::npos);
}

TEST_F(CliFlowTest, BestEffortDecompressRecoversDamagedContainer) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("be.dpzc"),
                 "--shape=64x96", "--chunk=2048"}),
            0)
      << err_.str();

  auto bytes = read_bytes(path("be.dpzc"));
  bytes[bytes.size() - 24] ^= 0x10;  // damage the last frame
  write_bytes(path("be.dpzc"), bytes);

  // Strict decode refuses.
  EXPECT_EQ(run({"decompress", path("be.dpzc"), path("be_out.f32")}), 1);
  EXPECT_NE(err_.str().find("checksum"), std::string::npos);

  // Best effort exits 3 (partial) and writes the filled reconstruction.
  EXPECT_EQ(run({"decompress", path("be.dpzc"), path("be_out.f32"),
                 "--best-effort", "--fill=0"}),
            3)
      << err_.str();
  EXPECT_NE(out_.str().find("best effort: recovered 2/3 frames"),
            std::string::npos);
  EXPECT_NO_THROW(read_f32(path("be_out.f32"), {64, 96}));
}

TEST_F(CliFlowTest, ParityCompressRepairsDamageTransparently) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("p.dpzc"),
                 "--shape=64x96", "--chunk=2048", "--parity=3+1"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find(", parity 3+1"), std::string::npos);

  ASSERT_EQ(run({"decompress", path("p.dpzc"), path("p_ref.f32")}), 0)
      << err_.str();

  auto bytes = read_bytes(path("p.dpzc"));
  bytes[bytes.size() / 2] ^= 0x10;  // land inside some frame payload
  write_bytes(path("p.dpzc"), bytes);

  // Strict decode heals the frame from parity and reports it.
  ASSERT_EQ(run({"decompress", path("p.dpzc"), path("p_out.f32")}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("parity: repaired 1 damaged frame"),
            std::string::npos)
      << out_.str();
  EXPECT_EQ(read_bytes(path("p_out.f32")), read_bytes(path("p_ref.f32")));
}

TEST_F(CliFlowTest, RepairRewritesArchiveAndScrubJudgesIt) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("r.dpzc"),
                 "--shape=64x96", "--chunk=2048", "--parity=3+1"}),
            0)
      << err_.str();
  const auto pristine = read_bytes(path("r.dpzc"));

  // Intact archive: repair is a no-op, scrub passes.
  ASSERT_EQ(run({"repair", path("r.dpzc")}), 0) << err_.str();
  EXPECT_NE(out_.str().find("intact, nothing to repair"),
            std::string::npos);
  ASSERT_EQ(run({"verify", path("r.dpzc"), "--scrub"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("parity:   3+1"), std::string::npos);
  EXPECT_NE(out_.str().find("OK"), std::string::npos);

  // Damage a frame: scrub flags it, repair restores the exact bytes.
  auto bytes = pristine;
  bytes[bytes.size() / 2] ^= 0x20;
  write_bytes(path("r.dpzc"), bytes);
  EXPECT_EQ(run({"verify", path("r.dpzc"), "--scrub"}), 1);
  ASSERT_EQ(run({"repair", path("r.dpzc")}), 0) << err_.str();
  EXPECT_NE(out_.str().find("rebuilt from parity, checksum ok"),
            std::string::npos)
      << out_.str();
  EXPECT_EQ(read_bytes(path("r.dpzc")), pristine);
  EXPECT_EQ(run({"verify", path("r.dzc"), "--scrub"}), 1);  // absent file
  EXPECT_EQ(run({"verify", path("r.dpzc"), "--scrub"}), 0);
}

TEST_F(CliFlowTest, ParityFlagValidation) {
  // --parity without --chunk is rejected up front.
  EXPECT_EQ(run({"compress", path("in.f32"), path("x.dpzc"),
                 "--shape=64x96", "--parity=4+2"}),
            1);
  EXPECT_NE(err_.str().find("--chunk"), std::string::npos);
  // Malformed geometries.
  for (const char* bad : {"--parity=4", "--parity=0+2", "--parity=4+0",
                          "--parity=300+1", "--parity=a+b"}) {
    EXPECT_EQ(run({"compress", path("in.f32"), path("x.dpzc"),
                   "--shape=64x96", "--chunk=2048", bad}),
              1)
        << bad;
    EXPECT_NE(err_.str().find("parity"), std::string::npos) << bad;
  }
  // Repair of a parity-less container that is damaged must fail loudly.
  ASSERT_EQ(run({"compress", path("in.f32"), path("nl.dpzc"),
                 "--shape=64x96", "--chunk=2048"}),
            0);
  auto bytes = read_bytes(path("nl.dpzc"));
  bytes[bytes.size() - 24] ^= 0x10;
  write_bytes(path("nl.dpzc"), bytes);
  EXPECT_EQ(run({"repair", path("nl.dpzc")}), 1);
}

TEST_F(CliFlowTest, InspectShowsParityGeometry) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("ig.dpzc"),
                 "--shape=64x96", "--chunk=2048", "--parity=3+1"}),
            0)
      << err_.str();
  ASSERT_EQ(run({"inspect", path("ig.dpzc")}), 0) << err_.str();
  EXPECT_NE(out_.str().find("parity:   3+1"), std::string::npos)
      << out_.str();

  ASSERT_EQ(run({"compress", path("in.f32"), path("ig0.dpzc"),
                 "--shape=64x96", "--chunk=2048"}),
            0);
  ASSERT_EQ(run({"inspect", path("ig0.dpzc")}), 0) << err_.str();
  EXPECT_NE(out_.str().find("parity:   none"), std::string::npos)
      << out_.str();
}

TEST_F(CliFlowTest, ResourceLimitFlagsGovernDecompress) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("rl.dpz"),
                 "--shape=64x96"}),
            0)
      << err_.str();

  // Generous limits: the decode succeeds normally.
  EXPECT_EQ(run({"decompress", path("rl.dpz"), path("rl_out.f32"),
                 "--max-memory=256M", "--deadline-ms=60000"}),
            0)
      << err_.str();

  // A budget below the decoded size: pre-flight admission rejects with
  // the dedicated exit code, before any output is written.
  EXPECT_EQ(run({"decompress", path("rl.dpz"), path("rl_tiny.f32"),
                 "--max-memory=1K"}),
            4);
  EXPECT_NE(err_.str().find("memory budget"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(path("rl_tiny.f32")));

  // An effectively expired deadline aborts with its own exit code.
  EXPECT_EQ(run({"decompress", path("rl.dpz"), path("rl_late.f32"),
                 "--deadline-ms=0.000001"}),
            5);
  EXPECT_NE(err_.str().find("deadline"), std::string::npos);
}

TEST_F(CliFlowTest, ResourceLimitFlagsGovernCompress) {
  // Compressing 24 KB of input under a 1 KB budget trips the arena at
  // the first charged allocation.
  EXPECT_EQ(run({"compress", path("in.f32"), path("rc.dpz"),
                 "--shape=64x96", "--max-memory=1K"}),
            4);
  EXPECT_NE(err_.str().find("memory budget"), std::string::npos);
  EXPECT_EQ(run({"compress", path("in.f32"), path("rc.dpz"),
                 "--shape=64x96", "--deadline-ms=0.000001"}),
            5);

  // And generous limits leave the archive byte-identical to a plain run.
  ASSERT_EQ(run({"compress", path("in.f32"), path("rc_plain.dpz"),
                 "--shape=64x96"}),
            0);
  ASSERT_EQ(run({"compress", path("in.f32"), path("rc_gov.dpz"),
                 "--shape=64x96", "--max-memory=1G",
                 "--deadline-ms=60000"}),
            0)
      << err_.str();
  EXPECT_EQ(read_bytes(path("rc_plain.dpz")),
            read_bytes(path("rc_gov.dpz")));
}

TEST_F(CliFlowTest, MalformedResourceFlagsFail) {
  EXPECT_EQ(run({"decompress", path("in.f32"), path("x.f32"),
                 "--max-memory=64Q"}),
            1);
  EXPECT_NE(err_.str().find("byte size"), std::string::npos);
  EXPECT_EQ(run({"decompress", path("in.f32"), path("x.f32"),
                 "--max-memory="}),
            1);
  EXPECT_EQ(run({"decompress", path("in.f32"), path("x.f32"),
                 "--deadline-ms=-5"}),
            1);
}

TEST_F(CliFlowTest, InspectPrintsDecodePreflight) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("pf.dpz"),
                 "--shape=64x96"}),
            0)
      << err_.str();
  ASSERT_EQ(run({"inspect", path("pf.dpz")}), 0) << err_.str();
  // 64 x 96 f32 = 24576 bytes claimed; the peak estimate sits above it.
  EXPECT_NE(out_.str().find("decoded:  24.0 KB (header claim)"),
            std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("peak est:"), std::string::npos);
}

TEST_F(CliFlowTest, VerifyMissingOperandFails) {
  EXPECT_EQ(run({"verify"}), 1);
  EXPECT_EQ(run({"inspect"}), 1);
}

TEST_F(CliFlowTest, WrongShapeSizeFails) {
  EXPECT_EQ(run({"compress", path("in.f32"), path("x.dpz"),
                 "--shape=10x10"}),
            1);
}

}  // namespace
}  // namespace dpz::tools
