// Tests for the shared-basis campaign codec: train/serialize/restore
// round-trips, cross-snapshot reuse, drift tolerance, and format checks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/shared_basis.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

// Snapshot t of a slowly evolving campaign field.
FloatArray campaign_snapshot(std::size_t rows, std::size_t cols, double t,
                             std::uint64_t seed) {
  Rng rng(seed + static_cast<std::uint64_t>(t * 1000));
  FloatArray a({rows, cols});
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      // Amplitude + global-offset drift: the spatial pattern (and hence
      // the basis span) is stable across the campaign; its intensity and
      // mean level are not. The codec's DC guard direction absorbs the
      // offset (see SharedBasisCodec::train).
      a(i, j) = static_cast<float>(
          (1.0 + 0.15 * t) *
              std::sin(2.0 * static_cast<double>(i) / rows * 6.28) *
              std::cos(1.5 * static_cast<double>(j) / cols * 6.28) +
          0.1 * t + 0.002 * rng.normal());
  return a;
}

TEST(SharedBasis, TrainingSnapshotRoundTrips) {
  const FloatArray snap = campaign_snapshot(64, 128, 0.0, 1);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  const SharedBasisCodec codec = SharedBasisCodec::train(snap, config);

  const auto archive = codec.compress(snap);
  const FloatArray back = codec.decompress(archive);
  EXPECT_GT(compute_error_stats(snap.flat(), back.flat()).psnr_db, 45.0);
}

TEST(SharedBasis, DriftedSnapshotsStayAccurate) {
  const FloatArray reference = campaign_snapshot(64, 128, 0.0, 2);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  const SharedBasisCodec codec = SharedBasisCodec::train(reference, config);

  for (const double t : {0.5, 1.0, 2.0}) {
    const FloatArray snap = campaign_snapshot(64, 128, t, 2);
    const FloatArray back = codec.decompress(codec.compress(snap));
    EXPECT_GT(compute_error_stats(snap.flat(), back.flat()).psnr_db, 35.0)
        << "t = " << t;
  }
}

TEST(SharedBasis, SnapshotArchivesOmitTheBasis) {
  const FloatArray snap = campaign_snapshot(64, 128, 0.0, 3);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  const SharedBasisCodec codec = SharedBasisCodec::train(snap, config);

  DpzStats standalone_stats;
  const auto standalone = dpz_compress(snap, config, &standalone_stats);
  DpzStats shared_stats;
  const auto shared = codec.compress(snap, &shared_stats);
  // Per-snapshot archives must be smaller than standalone DPZ ones by
  // roughly the basis size.
  EXPECT_LT(shared.size() + standalone_stats.side_bytes / 2,
            standalone.size());
}

TEST(SharedBasis, SerializeRestoreDecompresses) {
  const FloatArray snap = campaign_snapshot(48, 96, 0.0, 4);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999;
  const SharedBasisCodec codec = SharedBasisCodec::train(snap, config);
  const auto archive = codec.compress(snap);

  const auto blob = codec.serialize();
  const SharedBasisCodec restored = SharedBasisCodec::deserialize(blob);
  EXPECT_EQ(restored.k(), codec.k());
  EXPECT_EQ(restored.layout().m, codec.layout().m);

  const FloatArray direct = codec.decompress(archive);
  const FloatArray via_blob = restored.decompress(archive);
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(direct[i], via_blob[i]);
}

TEST(SharedBasis, ShapeMismatchRejected) {
  const FloatArray snap = campaign_snapshot(48, 96, 0.0, 5);
  const SharedBasisCodec codec =
      SharedBasisCodec::train(snap, DpzConfig::strict());
  const FloatArray wrong = campaign_snapshot(96, 48, 0.0, 5);
  EXPECT_THROW(codec.compress(wrong), InvalidArgument);
}

TEST(SharedBasis, GarbageBlobsRejected) {
  const std::vector<std::uint8_t> garbage(64, 0x5A);
  EXPECT_THROW(SharedBasisCodec::deserialize(garbage), FormatError);

  const FloatArray snap = campaign_snapshot(48, 96, 0.0, 6);
  const SharedBasisCodec codec =
      SharedBasisCodec::train(snap, DpzConfig::strict());
  EXPECT_THROW(codec.decompress(garbage), FormatError);
}

TEST(SharedBasis, SnapshotArchiveNotReadableAsDpz) {
  const FloatArray snap = campaign_snapshot(48, 96, 0.0, 7);
  const SharedBasisCodec codec =
      SharedBasisCodec::train(snap, DpzConfig::strict());
  const auto archive = codec.compress(snap);
  EXPECT_THROW(dpz_decompress(archive), FormatError);
}

TEST(SharedBasis, KneeSelectionSupported) {
  const FloatArray snap = campaign_snapshot(64, 128, 0.0, 8);
  DpzConfig config = DpzConfig::loose();
  config.selection = KSelectionMethod::kKneePoint;
  const SharedBasisCodec codec = SharedBasisCodec::train(snap, config);
  EXPECT_GE(codec.k(), 1U);
  const FloatArray back = codec.decompress(codec.compress(snap));
  EXPECT_EQ(back.shape(), snap.shape());
}

}  // namespace
}  // namespace dpz
