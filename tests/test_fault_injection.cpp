// Deterministic I/O fault-injection suite: every seeded fault driven
// through the file_io syscall wrappers must end in one of exactly two
// outcomes — a byte-exact recovery (for survivable faults: EINTR, short
// transfers) or a clean dpz::Error (for real damage: bit rot,
// truncation, ENOSPC). Never a crash, never a hang, never a silently
// wrong reconstruction. The suite drives 200+ faults through each
// pipeline (DPZ f32/f64, stored-raw, chunked, shared-basis) and runs
// under ASan/UBSan in CI, so an out-of-bounds read on damaged bytes
// fails loudly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/chunked.h"
#include "core/dpz.h"
#include "core/shared_basis.h"
#include "core/verify.h"
#include "io/fault_injection.h"
#include "io/file_io.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/error.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray smooth_f32(std::vector<std::size_t> shape, std::uint64_t seed) {
  FloatArray a(std::move(shape));
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.02) +
                              0.01 * rng.normal());
  return a;
}

FloatArray noise_f32(std::vector<std::size_t> shape, std::uint64_t seed) {
  FloatArray a(std::move(shape));
  Rng rng(seed);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  return a;
}

/// One decode pipeline under test: the committed archive bytes plus a
/// decoder that reduces the reconstruction to raw bytes for exact
/// comparison.
struct Pipeline {
  std::string name;
  std::vector<std::uint8_t> archive;
  std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>)>
      decode;
};

template <typename T>
std::vector<std::uint8_t> value_bytes(const NdArray<T>& a) {
  std::vector<std::uint8_t> bytes(a.size() * sizeof(T));
  std::memcpy(bytes.data(), a.flat().data(), bytes.size());
  return bytes;
}

std::vector<Pipeline> make_pipelines() {
  std::vector<Pipeline> out;

  out.push_back({"dpz-f32",
                 dpz_compress(smooth_f32({64, 96}, 11), DpzConfig::strict()),
                 [](std::span<const std::uint8_t> b) {
                   return value_bytes(dpz_decompress(b));
                 }});

  {
    DoubleArray d({48, 64});
    Rng rng(12);
    for (std::size_t i = 0; i < d.size(); ++i)
      d[i] = std::sin(static_cast<double>(i) * 0.03) + 0.01 * rng.normal();
    out.push_back({"dpz-f64", dpz_compress(d, DpzConfig::strict()),
                   [](std::span<const std::uint8_t> b) {
                     return value_bytes(dpz_decompress_f64(b));
                   }});
  }

  {
    // Incompressible noise trips the stored-raw fallback.
    const std::vector<std::uint8_t> stored =
        dpz_compress(noise_f32({40, 50}, 13), DpzConfig::strict());
    EXPECT_TRUE(dpz_inspect(stored).stored_raw)
        << "noise input no longer triggers the stored-raw path";
    out.push_back({"stored-raw", stored,
                   [](std::span<const std::uint8_t> b) {
                     return value_bytes(dpz_decompress(b));
                   }});
  }

  {
    ChunkedConfig config;
    config.chunk_values = 4096;
    out.push_back({"chunked",
                   chunked_compress(smooth_f32({3 * 4096}, 14), config),
                   [](std::span<const std::uint8_t> b) {
                     return value_bytes(chunked_decompress(b));
                   }});
  }

  {
    auto codec = std::make_shared<SharedBasisCodec>(SharedBasisCodec::train(
        smooth_f32({96, 96}, 15), DpzConfig::strict()));
    out.push_back({"shared-basis",
                   codec->compress(smooth_f32({96, 96}, 16)),
                   [codec](std::span<const std::uint8_t> b) {
                     return value_bytes(codec->decompress(b));
                   }});
  }
  return out;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dpz_fault_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// True when `dir_` holds any leftover atomic-write temp file.
  [[nodiscard]] bool temp_files_left() const {
    for (const auto& entry : std::filesystem::directory_iterator(dir_))
      if (entry.path().filename().string().find(".tmp.") !=
          std::string::npos)
        return true;
    return false;
  }

  std::filesystem::path dir_;
};

/// Drives one read-side fault plan through load + decode and asserts the
/// contract: IoError on the load, OR decode error, OR byte-exact output.
/// Returns a label of which outcome happened (for coverage accounting).
enum class Outcome { kIoError, kDecodeError, kExact };

Outcome drive_read_fault(const Pipeline& p, const std::string& file,
                         const std::vector<std::uint8_t>& reference_out,
                         const io::FaultPlan& plan) {
  std::vector<std::uint8_t> loaded;
  try {
    const io::ScopedFaultPlan guard(plan);
    loaded = read_bytes(file);
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()), "");
    return Outcome::kIoError;
  }
  try {
    const std::vector<std::uint8_t> out = p.decode(loaded);
    // A decode that went through must be the true reconstruction: an
    // undetected fault that alters the output is the one forbidden
    // outcome (silent wrong answer).
    EXPECT_EQ(out, reference_out)
        << p.name << ": decode accepted faulted bytes and produced a "
        << "different reconstruction";
    return Outcome::kExact;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()), "");
    return Outcome::kDecodeError;
  }
  // Any non-dpz exception propagates and fails the test.
}

TEST_F(FaultInjectionTest, EveryReadFaultRecoversOrFailsCleanly) {
  for (const Pipeline& p : make_pipelines()) {
    SCOPED_TRACE(p.name);
    const std::string file = path(p.name + ".dpz");
    write_bytes(file, p.archive);
    const std::vector<std::uint8_t> reference_out = p.decode(p.archive);

    std::size_t faults = 0;
    std::size_t detected = 0;

    // Survivable faults: EINTR storms and short reads must be absorbed
    // by the full_read loop — always byte-exact, never an error.
    for (const int eintr : {1, 2, 5, 17}) {
      for (const int shorts : {0, 1, 3, 9}) {
        io::FaultPlan plan;
        plan.read_eintr = eintr;
        plan.short_reads = shorts;
        EXPECT_EQ(drive_read_fault(p, file, reference_out, plan),
                  Outcome::kExact)
            << "eintr=" << eintr << " shorts=" << shorts;
        ++faults;
      }
    }

    // Bit rot: flip one bit at ~160 positions across the file. Every
    // flip must be detected (v2 seals all bytes) — the undetected-but-
    // exact outcome is impossible for a changed byte, and drive_read_
    // fault already fails the silent-wrong-answer case.
    const std::size_t n = p.archive.size();
    for (std::size_t i = 0; i < 160; ++i) {
      io::FaultPlan plan;
      plan.read_flip_offset = (i * n) / 160;
      plan.read_flip_mask = static_cast<std::uint8_t>(1U << (i % 8));
      const Outcome o = drive_read_fault(p, file, reference_out, plan);
      EXPECT_EQ(o, Outcome::kDecodeError)
          << "flip at byte " << plan.read_flip_offset << " mask "
          << int{plan.read_flip_mask} << " was not detected";
      if (o == Outcome::kDecodeError) ++detected;
      ++faults;
    }

    // Truncation: premature EOF at ~48 cut points, plus the edges. The
    // loader reports these as short reads (IoError).
    for (std::size_t i = 0; i <= 48; ++i) {
      io::FaultPlan plan;
      plan.read_truncate_at = (i * n) / 49;
      if (plan.read_truncate_at >= n) plan.read_truncate_at = n - 1;
      EXPECT_EQ(drive_read_fault(p, file, reference_out, plan),
                Outcome::kIoError)
          << "truncation at " << plan.read_truncate_at;
      ++faults;
    }

    // Compound faults: EINTR + short reads + a flip — the loop recovery
    // must not mask the corruption.
    for (std::size_t i = 0; i < 8; ++i) {
      io::FaultPlan plan;
      plan.read_eintr = 2;
      plan.short_reads = 2;
      plan.read_flip_offset = (i * n) / 8 + i;
      plan.read_flip_mask = 0x80;
      EXPECT_EQ(drive_read_fault(p, file, reference_out, plan),
                Outcome::kDecodeError);
      ++faults;
    }

    EXPECT_GE(faults, 200U) << "fault budget not met for " << p.name;
    EXPECT_GE(detected, 160U);
  }
}

TEST_F(FaultInjectionTest, SurvivableWriteFaultsLandByteExact) {
  const std::vector<std::uint8_t> payload =
      dpz_compress(smooth_f32({64, 96}, 21), DpzConfig::strict());
  int cases = 0;
  for (const int eintr : {1, 3, 11}) {
    for (const int shorts : {0, 2, 7}) {
      const std::string file =
          path("w_" + std::to_string(cases++) + ".dpz");
      {
        io::FaultPlan plan;
        plan.write_eintr = eintr;
        plan.short_writes = shorts;
        const io::ScopedFaultPlan guard(plan);
        write_bytes(file, payload);
      }
      EXPECT_EQ(read_bytes(file), payload)
          << "eintr=" << eintr << " shorts=" << shorts;
    }
  }
  EXPECT_FALSE(temp_files_left());
}

TEST_F(FaultInjectionTest, FailedWriteLeavesDestinationUntouched) {
  const std::vector<std::uint8_t> old_payload{1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> new_payload(4096, 0xAB);
  const std::string file = path("atomic.bin");
  write_bytes(file, old_payload);

  // ENOSPC at assorted offsets, including zero (nothing written at all)
  // and just short of completion.
  for (const std::uint64_t fail_at :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{100},
        std::uint64_t{4095}}) {
    io::FaultPlan plan;
    plan.write_fail_at = fail_at;
    const io::ScopedFaultPlan guard(plan);
    EXPECT_THROW(write_bytes(file, new_payload), IoError)
        << "fail_at=" << fail_at;
  }
  EXPECT_EQ(read_bytes(file), old_payload)
      << "failed writes must not tear the destination";
  EXPECT_FALSE(temp_files_left())
      << "failed writes must unlink their temp file";

  // And a write to a brand-new path that fails must not create the file.
  {
    io::FaultPlan plan;
    plan.write_fail_at = 10;
    const io::ScopedFaultPlan guard(plan);
    EXPECT_THROW(write_bytes(path("never.bin"), new_payload), IoError);
  }
  EXPECT_FALSE(std::filesystem::exists(path("never.bin")));
  EXPECT_FALSE(temp_files_left());
}

TEST_F(FaultInjectionTest, TornWriteIsDetectedOnRead) {
  // A bit that lands flipped on disk (firmware lies, cable rot) is not
  // write_bytes' fault to catch — but the v2 checksums must refuse the
  // bytes at decode time.
  const FloatArray input = smooth_f32({64, 96}, 22);
  const std::vector<std::uint8_t> archive =
      dpz_compress(input, DpzConfig::strict());
  const std::string file = path("torn.dpz");
  std::size_t detected = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    {
      io::FaultPlan plan;
      plan.write_flip_offset = (i * archive.size()) / 24;
      plan.write_flip_mask = static_cast<std::uint8_t>(1U << (i % 8));
      const io::ScopedFaultPlan guard(plan);
      write_bytes(file, archive);
    }
    const std::vector<std::uint8_t> loaded = read_bytes(file);
    ASSERT_EQ(loaded.size(), archive.size());
    EXPECT_NE(loaded, archive) << "flip did not land";
    try {
      (void)dpz_decompress(loaded);
    } catch (const Error&) {
      ++detected;
    }
  }
  EXPECT_EQ(detected, 24U) << "some torn writes decoded silently";
}

TEST_F(FaultInjectionTest, BestEffortRecoversIntactFramesFromDamagedFile) {
  // End to end: a chunked container damaged in exactly one frame, loaded
  // through the faulty reader, must strict-fail but best-effort-recover
  // every other frame byte-exactly.
  ChunkedConfig config;
  config.chunk_values = 4096;
  const FloatArray input = smooth_f32({4 * 4096}, 23);
  const std::vector<std::uint8_t> archive = chunked_compress(input, config);
  const FloatArray reference = chunked_decompress(archive);
  const std::string file = path("frames.dpz");
  write_bytes(file, archive);

  io::FaultPlan plan;
  plan.read_flip_offset = archive.size() / 2;  // inside a middle frame
  plan.read_flip_mask = 0x40;
  std::vector<std::uint8_t> loaded;
  {
    const io::ScopedFaultPlan guard(plan);
    loaded = read_bytes(file);
  }

  EXPECT_THROW((void)chunked_decompress(loaded), ChecksumError);

  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  best.fill_value = -7.5F;
  DecodeReport report;
  const FloatArray out = chunked_decompress(loaded, best, &report);
  ASSERT_EQ(out.shape(), reference.shape());
  EXPECT_EQ(report.frames_total, 4U);
  EXPECT_EQ(report.frames_recovered, 3U);
  ASSERT_EQ(report.lost.size(), 1U);
  const std::size_t lost = report.lost[0].frame;
  EXPECT_NE(std::string(report.lost[0].message), "");

  // Lost frame: all fill. Every other frame: byte-exact.
  for (std::size_t f = 0; f < 4; ++f) {
    const std::size_t begin = f * 4096;
    const std::size_t end = f == 3 ? out.size() : begin + 4096;
    for (std::size_t i = begin; i < end; ++i) {
      if (f == lost) {
        ASSERT_EQ(out[i], -7.5F) << "lost frame not filled at " << i;
      } else {
        ASSERT_EQ(out[i], reference[i])
            << "intact frame " << f << " altered at " << i;
      }
    }
  }
}

// ---- Parity (DZC3) loss sweeps --------------------------------------
//
// The parity pipelines are deliberately NOT in make_pipelines(): the
// generic bit-rot sweep asserts every flip ends in kDecodeError, while a
// parity container turns most frame flips into byte-exact repairs. These
// sweeps assert the stronger contract instead: every loss the geometry
// promises to absorb comes back bit-exactly.

// Byte extents of every frame, read once from the verify section table.
std::vector<std::pair<std::size_t, std::size_t>> frame_extents(
    const std::vector<std::uint8_t>& container) {
  std::vector<std::pair<std::size_t, std::size_t>> extents;
  for (const SectionStatus& s : verify_archive(container).sections)
    if (s.name.rfind("frame[", 0) == 0)
      extents.emplace_back(static_cast<std::size_t>(s.offset),
                           static_cast<std::size_t>(s.size));
  return extents;
}

void wreck_frame(std::vector<std::uint8_t>& bytes,
                 std::pair<std::size_t, std::size_t> extent,
                 std::uint8_t mask) {
  for (std::size_t i = 0; i < extent.second; i += 3)
    bytes[extent.first + i] ^= mask;
}

TEST_F(FaultInjectionTest, ParityEverySingleFrameLossRepairsByteExact) {
  // The acceptance geometry: 16+2. 20 frames -> one full group of 16
  // and a partial tail group of 4.
  ChunkedConfig config;
  config.chunk_values = 2048;
  config.parity_k = 16;
  config.parity_m = 2;
  const FloatArray input = smooth_f32({20 * 2048}, 31);
  const std::vector<std::uint8_t> archive = chunked_compress(input, config);
  const FloatArray reference = chunked_decompress(archive);
  const auto extents = frame_extents(archive);
  ASSERT_EQ(extents.size(), 20u);

  for (std::size_t f = 0; f < extents.size(); ++f) {
    auto damaged = archive;
    wreck_frame(damaged, extents[f], 0x3C);
    DecodeReport report;
    const FloatArray out = chunked_decompress(damaged, config, &report);
    EXPECT_TRUE(report.complete()) << "frame " << f;
    EXPECT_EQ(report.frames_repaired, 1u) << "frame " << f;
    ASSERT_EQ(report.repaired, (std::vector<std::size_t>{f}));
    ASSERT_EQ(value_bytes(out), value_bytes(reference))
        << "repair of frame " << f << " was not byte-exact";
  }
}

TEST_F(FaultInjectionTest, ParityEveryDoubleFrameLossRepairsByteExact) {
  ChunkedConfig config;
  config.chunk_values = 2048;
  config.parity_k = 16;
  config.parity_m = 2;
  const FloatArray input = smooth_f32({20 * 2048}, 32);
  const std::vector<std::uint8_t> archive = chunked_compress(input, config);
  const std::vector<std::uint8_t> reference =
      value_bytes(chunked_decompress(archive));
  const auto extents = frame_extents(archive);
  ASSERT_EQ(extents.size(), 20u);

  // Every pair of lost frames: at most 2 per group, always within the
  // m = 2 budget, so every pattern must reconstruct.
  std::size_t cases = 0;
  for (std::size_t i = 0; i < extents.size(); ++i) {
    for (std::size_t j = i + 1; j < extents.size(); ++j) {
      auto damaged = archive;
      wreck_frame(damaged, extents[i], 0x81);
      wreck_frame(damaged, extents[j], 0x5A);
      DecodeReport report;
      const FloatArray out = chunked_decompress(damaged, config, &report);
      EXPECT_TRUE(report.complete()) << i << "," << j;
      EXPECT_EQ(report.frames_repaired, 2u) << i << "," << j;
      ASSERT_EQ(value_bytes(out), reference)
          << "double loss " << i << "," << j << " not byte-exact";
      ++cases;
    }
  }
  EXPECT_EQ(cases, 190u);
}

TEST_F(FaultInjectionTest, ParityRepairCountersAccountExactlyOnce) {
  using obs::Counter;
  const obs::ScopedTelemetry telemetry(true);

  ChunkedConfig config;
  config.chunk_values = 4096;
  config.parity_k = 4;
  config.parity_m = 2;
  const FloatArray input = smooth_f32({8 * 4096}, 33);
  const std::vector<std::uint8_t> archive = chunked_compress(input, config);
  const auto extents = frame_extents(archive);
  ASSERT_EQ(extents.size(), 8u);

  // Two losses in group 0: both repaired, none failed.
  {
    auto damaged = archive;
    wreck_frame(damaged, extents[0], 0x11);
    wreck_frame(damaged, extents[2], 0x22);
    obs::MetricsRegistry::instance().reset();
    DecodeReport report;
    (void)chunked_decompress(damaged, config, &report);
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counter(Counter::kFramesRepaired), 2u);
    EXPECT_EQ(snap.counter(Counter::kRepairFailed), 0u);
    EXPECT_EQ(report.frames_repaired, 2u);
  }

  // Three losses in group 1 (budget 2): all three counted failed, once
  // each, and none counted repaired.
  {
    auto damaged = archive;
    wreck_frame(damaged, extents[4], 0x11);
    wreck_frame(damaged, extents[5], 0x22);
    wreck_frame(damaged, extents[6], 0x44);
    obs::MetricsRegistry::instance().reset();
    ChunkedConfig best = config;
    best.decode_policy = DecodePolicy::kBestEffort;
    DecodeReport report;
    (void)chunked_decompress(damaged, best, &report);
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counter(Counter::kFramesRepaired), 0u);
    EXPECT_EQ(snap.counter(Counter::kRepairFailed), 3u);
    EXPECT_EQ(snap.counter(Counter::kFramesLost), 3u);
    EXPECT_EQ(report.frames_repaired, 0u);
    EXPECT_EQ(report.lost.size(), 3u);
  }
}

TEST_F(FaultInjectionTest, TelemetryCountsRetriesAndRecoveries) {
  // The metrics registry must account for exactly the faults the plan
  // injected: every absorbed EINTR and short transfer, and — for a
  // damaged container — the CRC mismatch plus the per-frame
  // recovered/lost split of the best-effort decode.
  using obs::Counter;
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();

  const std::vector<std::uint8_t> payload(1024, 0x5A);
  const std::string file = path("telemetry.bin");
  {
    io::FaultPlan plan;
    plan.write_eintr = 3;
    plan.short_writes = 2;
    const io::ScopedFaultPlan guard(plan);
    write_bytes(file, payload);
  }
  obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter(Counter::kIoWriteEintr), 3U);
  EXPECT_EQ(snap.counter(Counter::kIoShortWrites), 2U);

  {
    io::FaultPlan plan;
    plan.read_eintr = 5;
    plan.short_reads = 4;
    const io::ScopedFaultPlan guard(plan);
    EXPECT_EQ(read_bytes(file), payload);
  }
  snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter(Counter::kIoReadEintr), 5U);
  EXPECT_EQ(snap.counter(Counter::kIoShortReads), 4U);

  ChunkedConfig config;
  config.chunk_values = 4096;
  const FloatArray input = smooth_f32({4 * 4096}, 29);
  std::vector<std::uint8_t> archive = chunked_compress(input, config);
  archive[archive.size() / 2] ^= 0x40;  // damage a middle frame

  obs::MetricsRegistry::instance().reset();  // scope to the decode
  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  DecodeReport report;
  (void)chunked_decompress(archive, best, &report);
  snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(report.frames_total, 4U);
  EXPECT_EQ(snap.counter(Counter::kFramesRecovered),
            report.frames_recovered);
  EXPECT_EQ(snap.counter(Counter::kFramesLost), report.lost.size());
  EXPECT_EQ(snap.counter(Counter::kFramesDecoded),
            report.frames_recovered);
  EXPECT_GE(snap.counter(Counter::kCrcFailures), 1U);
  EXPECT_GT(snap.counter(Counter::kCrcChecks),
            snap.counter(Counter::kCrcFailures));
}

}  // namespace
}  // namespace dpz
