// Unit tests for the dense Matrix type: shape checks, multiplication
// identities, transpose composition, and matrix-vector products.
#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace dpz {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (double& v : m.flat()) v = rng.normal();
  return m;
}

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3U);
  EXPECT_EQ(m.cols(), 4U);
  for (const double v : m.flat()) EXPECT_EQ(v, 0.0);
}

TEST(Matrix, RejectsEmptyDimensions) {
  EXPECT_THROW(Matrix(0, 3), InvalidArgument);
  EXPECT_THROW(Matrix(3, 0), InvalidArgument);
}

TEST(Matrix, WrapRejectsSizeMismatch) {
  EXPECT_THROW(Matrix(2, 2, {1.0, 2.0, 3.0}), InvalidArgument);
}

TEST(Matrix, RowAccessIsContiguous) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const auto row = m.row(1);
  EXPECT_EQ(row.size(), 3U);
  EXPECT_EQ(row[0], 4.0);
  EXPECT_EQ(row[2], 6.0);
  EXPECT_THROW((void)m.row(2), InvalidArgument);
}

TEST(Matrix, IdentityMultiplicationIsNeutral) {
  const Matrix a = random_matrix(5, 5, 1);
  const Matrix i = Matrix::identity(5);
  EXPECT_LT(a.multiply(i).max_abs_diff(a), 1e-14);
  EXPECT_LT(i.multiply(a).max_abs_diff(a), 1e-14);
}

TEST(Matrix, MultiplyKnownValues) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MultiplyRejectsBadShapes) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), InvalidArgument);
}

TEST(Matrix, TransposeTwiceIsIdentity) {
  const Matrix a = random_matrix(4, 7, 2);
  EXPECT_EQ(a.transposed().transposed().max_abs_diff(a), 0.0);
}

TEST(Matrix, TransposeMultiplyMatchesExplicit) {
  const Matrix a = random_matrix(6, 4, 3);
  const Matrix b = random_matrix(6, 5, 4);
  const Matrix fused = a.transpose_multiply(b);
  const Matrix explicit_form = a.transposed().multiply(b);
  EXPECT_LT(fused.max_abs_diff(explicit_form), 1e-12);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a(2, 3, {1, 0, 2, 0, 1, -1});
  const std::vector<double> v{3.0, 4.0, 5.0};
  const std::vector<double> out = a.multiply(v);
  ASSERT_EQ(out.size(), 2U);
  EXPECT_DOUBLE_EQ(out[0], 13.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(Matrix, MatrixVectorRejectsBadLength) {
  const Matrix a(2, 3);
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(a.multiply(std::span<const double>(v)), InvalidArgument);
}

TEST(Matrix, AssociativityProperty) {
  const Matrix a = random_matrix(3, 4, 5);
  const Matrix b = random_matrix(4, 5, 6);
  const Matrix c = random_matrix(5, 2, 7);
  const Matrix left = a.multiply(b).multiply(c);
  const Matrix right = a.multiply(b.multiply(c));
  EXPECT_LT(left.max_abs_diff(right), 1e-12);
}

TEST(Matrix, MaxAbsDiffShapeGuard) {
  const Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW((void)a.max_abs_diff(b), InvalidArgument);
}

}  // namespace
}  // namespace dpz
