// Unit and property tests for the orthonormal DCT-II/III: agreement with
// the O(n^2) oracle, orthonormality (Parseval), round-trips, energy
// compaction on smooth signals, and the 2-D separable transform.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "dsp/dct.h"
#include "util/error.h"
#include "util/rng.h"

namespace dpz {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.normal();
  return x;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

class DctLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DctLengthTest, FastForwardMatchesNaive) {
  const std::size_t n = GetParam();
  const std::vector<double> x = random_vector(n, 10 + n);
  const DctPlan plan(n);
  std::vector<double> fast(n);
  plan.forward(x, fast);
  const std::vector<double> slow = dct_naive_forward(x);
  EXPECT_LT(max_abs_diff(fast, slow), 1e-9 * static_cast<double>(n))
      << "length " << n;
}

TEST_P(DctLengthTest, FastInverseMatchesNaive) {
  const std::size_t n = GetParam();
  const std::vector<double> x = random_vector(n, 20 + n);
  const DctPlan plan(n);
  std::vector<double> fast(n);
  plan.inverse(x, fast);
  const std::vector<double> slow = dct_naive_inverse(x);
  EXPECT_LT(max_abs_diff(fast, slow), 1e-9 * static_cast<double>(n))
      << "length " << n;
}

TEST_P(DctLengthTest, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const std::vector<double> x = random_vector(n, 30 + n);
  const DctPlan plan(n);
  std::vector<double> coeffs(n), back(n);
  plan.forward(x, coeffs);
  plan.inverse(coeffs, back);
  EXPECT_LT(max_abs_diff(x, back), 1e-10) << "length " << n;
}

TEST_P(DctLengthTest, ParsevalHolds) {
  // Orthonormal transform preserves the L2 norm exactly — this is what
  // makes the paper's ECR metric (Eq. 1) meaningful on coefficients.
  const std::size_t n = GetParam();
  const std::vector<double> x = random_vector(n, 40 + n);
  const DctPlan plan(n);
  std::vector<double> coeffs(n);
  plan.forward(x, coeffs);
  double ex = 0.0, ec = 0.0;
  for (const double v : x) ex += v * v;
  for (const double v : coeffs) ec += v * v;
  EXPECT_NEAR(ec, ex, 1e-9 * ex);
}

INSTANTIATE_TEST_SUITE_P(VariousLengths, DctLengthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 16, 27, 32,
                                           45, 64, 100, 128, 360, 500, 2048));

TEST(Dct, ConstantSignalCompactsToDc) {
  const std::size_t n = 64;
  std::vector<double> x(n, 3.0);
  const DctPlan plan(n);
  std::vector<double> coeffs(n);
  plan.forward(x, coeffs);
  EXPECT_NEAR(coeffs[0], 3.0 * std::sqrt(static_cast<double>(n)), 1e-10);
  for (std::size_t k = 1; k < n; ++k) EXPECT_NEAR(coeffs[k], 0.0, 1e-10);
}

TEST(Dct, SmoothSignalEnergyConcentratesInLowFrequencies) {
  // The energy-compaction property SS II-B demonstrates on FLDSC.
  const std::size_t n = 256;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                    static_cast<double>(n)) +
           0.5 * std::cos(6.0 * std::numbers::pi * static_cast<double>(i) /
                          static_cast<double>(n));
  const DctPlan plan(n);
  std::vector<double> coeffs(n);
  plan.forward(x, coeffs);
  double low = 0.0, total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += coeffs[k] * coeffs[k];
    if (k < n / 16) low += coeffs[k] * coeffs[k];
  }
  EXPECT_GT(low / total, 0.99);
}

TEST(Dct, InPlaceAliasingWorks) {
  const std::size_t n = 100;
  std::vector<double> x = random_vector(n, 77);
  const std::vector<double> reference = dct_naive_forward(x);
  const DctPlan plan(n);
  plan.forward(x, x);  // in place
  EXPECT_LT(max_abs_diff(x, reference), 1e-9);
}

TEST(Dct, PlanRejectsWrongLength) {
  const DctPlan plan(16);
  std::vector<double> x(8), y(8);
  EXPECT_THROW(plan.forward(x, y), InvalidArgument);
}

TEST(Dct2d, RoundTripIsIdentity) {
  const std::size_t rows = 12, cols = 20;
  const std::vector<double> x = random_vector(rows * cols, 55);
  std::vector<double> coeffs(x.size()), back(x.size());
  dct_2d_forward(x, coeffs, rows, cols);
  dct_2d_inverse(coeffs, back, rows, cols);
  EXPECT_LT(max_abs_diff(x, back), 1e-10);
}

TEST(Dct2d, SeparabilityMatchesRowColumnComposition) {
  // Z = A_M^T X A_N (SS III-B2): transforming rows then columns equals the
  // library's 2-D transform by construction; verify energy preservation
  // and a known constant-field compaction instead of restating the code.
  const std::size_t rows = 8, cols = 8;
  std::vector<double> x(rows * cols, 2.0);
  std::vector<double> coeffs(x.size());
  dct_2d_forward(x, coeffs, rows, cols);
  EXPECT_NEAR(coeffs[0], 2.0 * 8.0, 1e-10);  // 2 * sqrt(64)
  for (std::size_t i = 1; i < coeffs.size(); ++i)
    EXPECT_NEAR(coeffs[i], 0.0, 1e-10);
}

TEST(Dct2d, ParsevalHolds) {
  const std::size_t rows = 15, cols = 9;
  const std::vector<double> x = random_vector(rows * cols, 66);
  std::vector<double> coeffs(x.size());
  dct_2d_forward(x, coeffs, rows, cols);
  double ex = 0.0, ec = 0.0;
  for (const double v : x) ex += v * v;
  for (const double v : coeffs) ec += v * v;
  EXPECT_NEAR(ec, ex, 1e-9 * ex);
}

}  // namespace
}  // namespace dpz
