// Unit and integration tests for the DPZ compressor itself: archive
// round-trips across configurations, scheme semantics, accounting
// invariants, tampering detection, and the analysis evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/dpz.h"
#include "data/datasets.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray smooth_2d(std::size_t rows, std::size_t cols,
                     std::uint64_t seed = 3) {
  Rng rng(seed);
  FloatArray a({rows, cols});
  const double fx = rng.uniform(1.0, 3.0), fy = rng.uniform(1.0, 3.0);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      a(i, j) = static_cast<float>(
          std::sin(fx * static_cast<double>(i) / rows * 6.28) *
              std::cos(fy * static_cast<double>(j) / cols * 6.28) +
          0.002 * rng.normal());
  return a;
}

struct SchemeCase {
  DpzScheme scheme;
  double min_psnr;
};

class DpzSchemeTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(DpzSchemeTest, RoundTripMeetsQualityFloor) {
  const FloatArray data = smooth_2d(48, 96);
  DpzConfig config;
  config.scheme = GetParam().scheme;
  config.tve = 0.9999;

  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  const FloatArray back = dpz_decompress(archive);
  ASSERT_EQ(back.shape(), data.shape());

  const ErrorStats err = compute_error_stats(data.flat(), back.flat());
  EXPECT_GT(err.psnr_db, GetParam().min_psnr);
  EXPECT_GT(stats.cr_archive(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    BothSchemes, DpzSchemeTest,
    ::testing::Values(SchemeCase{DpzScheme::kLoose, 35.0},
                      SchemeCase{DpzScheme::kStrict, 45.0}));

TEST(Dpz, StrictSchemeIsMoreAccurate) {
  const FloatArray data = smooth_2d(48, 96, 5);
  DpzConfig loose = DpzConfig::loose();
  DpzConfig strict = DpzConfig::strict();
  loose.tve = strict.tve = 0.99999;

  const FloatArray back_l = dpz_decompress(dpz_compress(data, loose));
  const FloatArray back_s = dpz_decompress(dpz_compress(data, strict));
  const double psnr_l =
      compute_error_stats(data.flat(), back_l.flat()).psnr_db;
  const double psnr_s =
      compute_error_stats(data.flat(), back_s.flat()).psnr_db;
  EXPECT_GE(psnr_s, psnr_l);
}

TEST(Dpz, TighterTveImprovesAccuracy) {
  const FloatArray data = smooth_2d(40, 80, 7);
  DpzConfig config = DpzConfig::strict();
  std::vector<double> psnrs;
  for (const double tve : {0.999, 0.99999, 0.9999999}) {
    config.tve = tve;
    const FloatArray back = dpz_decompress(dpz_compress(data, config));
    psnrs.push_back(compute_error_stats(data.flat(), back.flat()).psnr_db);
  }
  EXPECT_LE(psnrs[0], psnrs[1] + 1.0);
  EXPECT_LE(psnrs[1], psnrs[2] + 1.0);
}

TEST(Dpz, WorksOn1dAnd3dShapes) {
  Rng rng(11);
  FloatArray one_d({4096});
  for (std::size_t i = 0; i < one_d.size(); ++i)
    one_d[i] = static_cast<float>(
        std::sin(static_cast<double>(i) * 0.01) + 0.002 * rng.normal());
  FloatArray three_d({16, 16, 16});
  for (std::size_t i = 0; i < three_d.size(); ++i)
    three_d[i] = static_cast<float>(
        std::cos(static_cast<double>(i) * 0.002) + 0.002 * rng.normal());

  for (const FloatArray* data : {&one_d, &three_d}) {
    DpzConfig config = DpzConfig::strict();
    config.tve = 0.99999;
    const FloatArray back = dpz_decompress(dpz_compress(*data, config));
    EXPECT_EQ(back.shape(), data->shape());
    EXPECT_GT(compute_error_stats(data->flat(), back.flat()).psnr_db, 30.0);
  }
}

TEST(Dpz, KneePointSelectionRoundTrips) {
  const FloatArray data = smooth_2d(40, 80, 13);
  DpzConfig config = DpzConfig::loose();
  config.selection = KSelectionMethod::kKneePoint;
  for (const KneeFit fit : {KneeFit::kFit1D, KneeFit::kFitPolyn}) {
    config.knee_fit = fit;
    DpzStats stats;
    const auto archive = dpz_compress(data, config, &stats);
    const FloatArray back = dpz_decompress(archive);
    EXPECT_GE(stats.k, 1U);
    EXPECT_LE(stats.k, stats.layout.m);
    EXPECT_EQ(back.size(), data.size());
  }
}

TEST(Dpz, SamplingPathRoundTrips) {
  const FloatArray data = smooth_2d(64, 128, 17);
  DpzConfig config = DpzConfig::strict();
  config.use_sampling = true;
  config.tve = 0.99999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  const FloatArray back = dpz_decompress(archive);
  EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 30.0);
  EXPECT_GT(stats.vif_median, 0.0);  // the probe ran
}

TEST(Dpz, SamplingKTracksFullPipelineK) {
  const FloatArray data = smooth_2d(64, 128, 19);
  DpzConfig full = DpzConfig::strict();
  full.tve = 0.99999;
  DpzConfig sampled = full;
  sampled.use_sampling = true;

  DpzStats full_stats, sampled_stats;
  dpz_compress(data, full, &full_stats);
  dpz_compress(data, sampled, &sampled_stats);
  // The estimate should land within a small factor of the exact k.
  EXPECT_GT(sampled_stats.k * 4, full_stats.k);
  EXPECT_LT(sampled_stats.k, full_stats.k * 4 + 8);
}

TEST(Dpz, StatsAccountingInvariants) {
  const FloatArray data = smooth_2d(48, 96, 23);
  DpzConfig config = DpzConfig::loose();
  config.tve = 0.99999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);

  EXPECT_EQ(stats.original_bytes, data.size() * 4);
  EXPECT_EQ(stats.archive_bytes, archive.size());
  EXPECT_GT(stats.cr_stage12(), 1.0);
  EXPECT_GT(stats.cr_stage3(), 1.0);
  EXPECT_GT(stats.cr_zlib(), 0.5);
  EXPECT_LE(stats.k, stats.layout.m);
  EXPECT_DOUBLE_EQ(
      stats.cr_stage12(),
      static_cast<double>(stats.layout.m) / static_cast<double>(stats.k));
  // Stage timers recorded every stage.
  EXPECT_GT(stats.timers.total("stage1_dct") +
                stats.timers.total("stage2_pca") +
                stats.timers.total("stage3_quantize") +
                stats.timers.total("zlib_encode"),
            0.0);
}

TEST(Dpz, LooseCodesAreSmallerThanStrict) {
  const FloatArray data = smooth_2d(48, 96, 29);
  DpzConfig loose = DpzConfig::loose();
  DpzConfig strict = DpzConfig::strict();
  loose.tve = strict.tve = 0.99999;
  DpzStats ls, ss;
  dpz_compress(data, loose, &ls);
  dpz_compress(data, strict, &ss);
  ASSERT_EQ(ls.k, ss.k);
  // 1-byte codes: stage-3 CR roughly doubles the 2-byte scheme's, minus
  // outlier overhead (Table III's DPZ-l > 2X vs DPZ-s ~ 2X pattern).
  EXPECT_GT(ls.cr_stage3(), ss.cr_stage3());
}

TEST(Dpz, ExplicitOverridesRespected) {
  const FloatArray data = smooth_2d(32, 64, 31);
  DpzConfig config;
  config.error_bound = 5e-3;
  config.wide_codes = 0;
  config.standardize = 1;
  config.tve = 0.9999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  EXPECT_TRUE(stats.standardized);
  const FloatArray back = dpz_decompress(archive);
  EXPECT_EQ(back.size(), data.size());
}

TEST(Dpz, RejectsTinyInput) {
  FloatArray tiny({4});
  EXPECT_THROW(dpz_compress(tiny, DpzConfig{}), InvalidArgument);
}

TEST(Dpz, DecompressRejectsGarbage) {
  const std::vector<std::uint8_t> garbage(64, 0xCD);
  EXPECT_THROW(dpz_decompress(garbage), FormatError);
}

TEST(Dpz, DecompressRejectsTruncatedArchive) {
  const FloatArray data = smooth_2d(32, 64, 37);
  auto archive = dpz_compress(data, DpzConfig::loose());
  archive.resize(archive.size() / 2);
  EXPECT_THROW(dpz_decompress(archive), Error);
}

TEST(Dpz, DecompressRejectsCorruptedPayload) {
  const FloatArray data = smooth_2d(32, 64, 41);
  auto archive = dpz_compress(data, DpzConfig::loose());
  archive[archive.size() - 8] ^= 0xFF;
  EXPECT_THROW(dpz_decompress(archive), Error);
}

TEST(Dpz, CompressorInterfaceAdapter) {
  DpzCompressor comp(DpzConfig::strict());
  EXPECT_EQ(comp.name(), "DPZ-s");
  const FloatArray data = smooth_2d(32, 64, 43);
  const auto archive = comp.compress(data);
  EXPECT_EQ(comp.last_stats().archive_bytes, archive.size());
  const FloatArray back = comp.decompress(archive);
  EXPECT_EQ(back.size(), data.size());
  EXPECT_EQ(DpzCompressor(DpzConfig::loose()).name(), "DPZ-l");
}

// ---- Stored-raw fallback ----------------------------------------------------

TEST(DpzStored, ExpandingPipelineFallsBackToStoredArchive) {
  Rng rng(61);
  FloatArray noise({20000});
  for (float& v : noise.flat()) v = static_cast<float>(rng.normal());

  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999999;   // k ~ M on white noise
  config.error_bound = 1e-12;  // every score escapes: guaranteed expansion
  DpzStats stats;
  const auto archive = dpz_compress(noise, config, &stats);
  EXPECT_TRUE(stats.stored_raw);
  EXPECT_LE(archive.size(), noise.size() * 4 + 128);

  // Stored archives are bit-exact.
  const FloatArray back = dpz_decompress(archive);
  for (std::size_t i = 0; i < noise.size(); ++i)
    EXPECT_EQ(noise[i], back[i]);
}

TEST(DpzStored, InspectIdentifiesStoredArchives) {
  Rng rng(67);
  FloatArray noise({5000});
  for (float& v : noise.flat()) v = static_cast<float>(rng.normal());
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999999;
  config.error_bound = 1e-12;
  const auto archive = dpz_compress(noise, config);
  const DpzArchiveInfo info = dpz_inspect(archive);
  EXPECT_TRUE(info.stored_raw);
  EXPECT_EQ(info.shape, (std::vector<std::size_t>{5000}));
}

// ---- dpz_inspect -------------------------------------------------------------

TEST(DpzInspect, ReportsHeaderFields) {
  const FloatArray data = smooth_2d(48, 96, 71);
  DpzConfig config = DpzConfig::loose();
  config.tve = 0.9999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);

  const DpzArchiveInfo info = dpz_inspect(archive);
  EXPECT_FALSE(info.stored_raw);
  EXPECT_FALSE(info.wide_codes);
  EXPECT_DOUBLE_EQ(info.error_bound, 1e-3);
  EXPECT_EQ(info.shape, (std::vector<std::size_t>{48, 96}));
  EXPECT_EQ(info.layout.m, stats.layout.m);
  EXPECT_EQ(info.layout.n, stats.layout.n);
  EXPECT_EQ(info.k, stats.k);
  EXPECT_EQ(info.outlier_count, stats.outlier_count);
  EXPECT_EQ(info.archive_bytes, archive.size());
}

TEST(DpzInspect, RejectsGarbage) {
  const std::vector<std::uint8_t> garbage(32, 0x3C);
  EXPECT_THROW(dpz_inspect(garbage), FormatError);
}

// ---- Progressive (partial) decompression -------------------------------------

TEST(DpzPartial, FidelityImprovesWithMoreComponents) {
  const FloatArray data = smooth_2d(64, 128, 73);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  ASSERT_GE(stats.k, 3U);

  double last_psnr = -1e300;
  for (const std::size_t k : {std::size_t{1}, stats.k / 2, stats.k}) {
    const FloatArray partial = dpz_decompress(archive, k);
    const double psnr =
        compute_error_stats(data.flat(), partial.flat()).psnr_db;
    EXPECT_GE(psnr, last_psnr - 0.5) << "k = " << k;
    last_psnr = psnr;
  }
}

TEST(DpzPartial, FullAndOversizedRequestsMatchDefault) {
  const FloatArray data = smooth_2d(48, 96, 79);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);

  const FloatArray full = dpz_decompress(archive);
  const FloatArray same = dpz_decompress(archive, stats.k);
  const FloatArray oversized = dpz_decompress(archive, stats.k + 100);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i], same[i]);
    EXPECT_EQ(full[i], oversized[i]);
  }
}

TEST(DpzPartial, SingleComponentStillHasShape) {
  const FloatArray data = smooth_2d(48, 96, 83);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  const auto archive = dpz_compress(data, config);
  const FloatArray partial = dpz_decompress(archive, 1);
  EXPECT_EQ(partial.shape(), data.shape());
}

// ---- DCT truncation (future-work pre-filter) ----------------------------------

TEST(DpzTruncation, ReducesKAtFixedTve) {
  // Zeroing the high-frequency tail means the covariance has less noise
  // to explain, so the same TVE needs fewer components.
  Rng rng(89);
  FloatArray data({64, 128});
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<float>(
        std::sin(static_cast<double>(i) * 0.01) + 0.05 * rng.normal());

  DpzConfig plain = DpzConfig::strict();
  plain.tve = 0.99999;
  DpzConfig truncated = plain;
  truncated.dct_keep_fraction = 0.25;

  DpzStats plain_stats, trunc_stats;
  dpz_compress(data, plain, &plain_stats);
  dpz_compress(data, truncated, &trunc_stats);
  EXPECT_LT(trunc_stats.k, plain_stats.k);
}

TEST(DpzTruncation, RoundTripStaysReasonable) {
  const FloatArray data = smooth_2d(48, 96, 97);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  config.dct_keep_fraction = 0.5;
  const auto archive = dpz_compress(data, config);
  const FloatArray back = dpz_decompress(archive);
  EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 30.0);
}

TEST(DpzTruncation, RejectsInvalidFraction) {
  const FloatArray data = smooth_2d(32, 64, 101);
  DpzConfig config;
  config.dct_keep_fraction = 0.0;
  EXPECT_THROW(dpz_compress(data, config), InvalidArgument);
  config.dct_keep_fraction = 1.5;
  EXPECT_THROW(dpz_compress(data, config), InvalidArgument);
}

// ---- Double-precision pipeline ------------------------------------------------

DoubleArray smooth_2d_f64(std::size_t rows, std::size_t cols,
                          std::uint64_t seed) {
  Rng rng(seed);
  DoubleArray a({rows, cols});
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      a(i, j) = std::sin(2.0 * static_cast<double>(i) / rows * 6.28) *
                    std::cos(1.5 * static_cast<double>(j) / cols * 6.28) +
                1e-4 * rng.normal();
  return a;
}

TEST(DpzF64, RoundTripPreservesShapeAndQuality) {
  const DoubleArray data = smooth_2d_f64(48, 96, 3);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  const DoubleArray back = dpz_decompress_f64(archive);
  ASSERT_EQ(back.shape(), data.shape());
  EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 45.0);
  EXPECT_EQ(stats.original_bytes, data.size() * sizeof(double));
}

TEST(DpzF64, InspectReportsDoublePrecision) {
  const DoubleArray data = smooth_2d_f64(32, 64, 5);
  const auto archive = dpz_compress(data, DpzConfig::strict());
  EXPECT_TRUE(dpz_inspect(archive).double_precision);

  const FloatArray fdata = smooth_2d(32, 64, 5);
  const auto farchive = dpz_compress(fdata, DpzConfig::strict());
  EXPECT_FALSE(dpz_inspect(farchive).double_precision);
}

TEST(DpzF64, PrecisionMismatchRejected) {
  const DoubleArray data = smooth_2d_f64(32, 64, 7);
  const auto archive = dpz_compress(data, DpzConfig::strict());
  EXPECT_THROW(dpz_decompress(archive), FormatError);

  const FloatArray fdata = smooth_2d(32, 64, 7);
  const auto farchive = dpz_compress(fdata, DpzConfig::strict());
  EXPECT_THROW(dpz_decompress_f64(farchive), FormatError);
}

TEST(DpzF64, StoredFallbackIsBitExact) {
  Rng rng(9);
  DoubleArray noise({8192});
  for (double& v : noise.flat()) v = rng.normal();
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999999;
  config.error_bound = 1e-15;  // force the stored fallback
  DpzStats stats;
  const auto archive = dpz_compress(noise, config, &stats);
  ASSERT_TRUE(stats.stored_raw);
  const DoubleArray back = dpz_decompress_f64(archive);
  for (std::size_t i = 0; i < noise.size(); ++i)
    EXPECT_EQ(noise[i], back[i]);
}

TEST(DpzF64, PartialDecodeWorks) {
  const DoubleArray data = smooth_2d_f64(48, 96, 11);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  const DoubleArray partial = dpz_decompress_f64(archive, 1);
  EXPECT_EQ(partial.shape(), data.shape());
}

TEST(DpzF64, PrecisionExceedsSinglePrecisionFloor) {
  // A rank-1 field: k = 1 explains everything, so reconstruction error is
  // purely quantization + stored-precision noise. With a tiny error bound
  // the scores mostly escape as exact f64 outliers, and the PSNR lands
  // far beyond what float-cast outliers (~1e-7 relative) could reach.
  DoubleArray data({48, 96});
  for (std::size_t i = 0; i < 48; ++i)
    for (std::size_t j = 0; j < 96; ++j)
      data(i, j) = (1.0 + std::sin(0.13 * static_cast<double>(i))) *
                   std::cos(0.07 * static_cast<double>(j));

  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99;
  config.error_bound = 1e-9;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  ASSERT_FALSE(stats.stored_raw);
  ASSERT_GT(stats.outlier_count, 0U);
  const DoubleArray back = dpz_decompress_f64(archive);
  const ErrorStats err = compute_error_stats(data.flat(), back.flat());
  EXPECT_GT(err.psnr_db, 120.0);
}

TEST(Dpz, Rank4RoundTrips) {
  Rng rng(103);
  FloatArray data({8, 8, 8, 16});
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<float>(
        std::sin(static_cast<double>(i) * 0.004) + 0.002 * rng.normal());
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999;
  const auto archive = dpz_compress(data, config);
  const FloatArray back = dpz_decompress(archive);
  ASSERT_EQ(back.shape(), data.shape());
  EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 30.0);
  EXPECT_EQ(dpz_inspect(archive).shape,
            (std::vector<std::size_t>{8, 8, 8, 16}));
}

// ---- Ablation hooks ----------------------------------------------------------

TEST(DpzAnalysisHooks, ForcedLayoutIsRespected) {
  const FloatArray data = smooth_2d(48, 96, 107);  // total 4608
  BlockLayout layout;
  layout.m = 36;
  layout.n = 128;
  layout.original_total = data.size();
  layout.padded = false;
  const DpzAnalysis analysis(data, false, layout);
  EXPECT_EQ(analysis.layout().m, 36U);
  EXPECT_EQ(analysis.layout().n, 128U);

  QuantizerConfig qcfg;
  qcfg.error_bound = 1e-4;
  qcfg.wide_codes = true;
  const auto ev = analysis.evaluate(analysis.k_for_tve(0.9999), qcfg);
  EXPECT_GT(ev.stage3_error.psnr_db, 30.0);
}

TEST(DpzAnalysisHooks, ForcedLayoutMustCoverInput) {
  const FloatArray data = smooth_2d(48, 96, 109);
  BlockLayout layout;
  layout.m = 10;
  layout.n = 10;  // 100 << 4608
  layout.original_total = data.size();
  EXPECT_THROW(DpzAnalysis(data, false, layout), InvalidArgument);
}

TEST(DpzAnalysisHooks, SigmaScaleOverrideTradesOutliersForPrecision) {
  const FloatArray data = smooth_2d(64, 128, 113);
  const DpzAnalysis analysis(data);
  const std::size_t k = analysis.k_for_tve(0.99999);
  QuantizerConfig qcfg;
  qcfg.error_bound = 1e-3;
  qcfg.wide_codes = false;

  const auto narrow = analysis.evaluate(k, qcfg, 6, 2.0);
  const auto wide = analysis.evaluate(k, qcfg, 6, 32.0);
  // Narrow coverage escapes more outliers but quantizes finer.
  EXPECT_GT(narrow.accounting.outlier_count,
            wide.accounting.outlier_count);
  EXPECT_GE(narrow.stage3_error.psnr_db, wide.stage3_error.psnr_db);
}

// ---- DpzAnalysis -----------------------------------------------------------

TEST(DpzAnalysis, EvaluationMatchesRealCompressor) {
  const FloatArray data = smooth_2d(48, 96, 47);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  const FloatArray real = dpz_decompress(archive);

  const DpzAnalysis analysis(data);
  QuantizerConfig qcfg;
  qcfg.error_bound = config.effective_error_bound();
  qcfg.wide_codes = config.effective_wide_codes();
  const auto ev = analysis.evaluate(analysis.k_for_tve(config.tve), qcfg);

  EXPECT_EQ(ev.k, stats.k);
  const ErrorStats real_err = compute_error_stats(data.flat(), real.flat());
  EXPECT_NEAR(ev.stage3_error.psnr_db, real_err.psnr_db, 0.2);
  // Accounting within a few header bytes of the real archive.
  EXPECT_NEAR(static_cast<double>(ev.accounting.archive_bytes),
              static_cast<double>(stats.archive_bytes), 64.0);
}

TEST(DpzAnalysis, ExactScoresBeatQuantizedScores) {
  const FloatArray data = smooth_2d(48, 96, 53);
  const DpzAnalysis analysis(data);
  QuantizerConfig qcfg;
  qcfg.error_bound = 1e-3;
  qcfg.wide_codes = false;
  const auto ev = analysis.evaluate(analysis.k_for_tve(0.99999), qcfg);
  EXPECT_GE(ev.stage12_error.psnr_db, ev.stage3_error.psnr_db - 1e-9);
}

TEST(DpzAnalysis, PsnrKneeSelectsValidOperatingPoint) {
  // SS IV-B: knee detection applied to the compression-performance curve
  // instead of the TVE curve (paying a reconstruction per grid point).
  const FloatArray data = smooth_2d(64, 128, 127);
  const DpzAnalysis analysis(data);
  QuantizerConfig qcfg;
  qcfg.error_bound = 1e-4;
  qcfg.wide_codes = true;

  const std::size_t k = analysis.k_for_psnr_knee(qcfg);
  EXPECT_GE(k, 1U);
  EXPECT_LE(k, analysis.layout().m);
  // The knee of a saturating PSNR curve sits well below full rank.
  EXPECT_LT(k, analysis.layout().m / 2);

  const auto ev = analysis.evaluate(k, qcfg);
  EXPECT_GT(ev.stage3_error.psnr_db, 25.0);
}

TEST(DpzAnalysis, PsnrKneeRejectsTinyGrid) {
  const FloatArray data = smooth_2d(32, 64, 131);
  const DpzAnalysis analysis(data);
  QuantizerConfig qcfg;
  EXPECT_THROW((void)analysis.k_for_psnr_knee(qcfg, KneeFit::kFit1D, 2),
               InvalidArgument);
}

TEST(DpzAnalysis, TveCurveDrivesK) {
  const FloatArray data = smooth_2d(48, 96, 59);
  const DpzAnalysis analysis(data);
  EXPECT_LE(analysis.k_for_tve(0.999), analysis.k_for_tve(0.9999999));
  EXPECT_GE(analysis.k_for_knee(KneeFit::kFit1D), 1U);
}

}  // namespace
}  // namespace dpz
