// Unit tests for the synthetic dataset generators: shapes, determinism,
// value-range plausibility, and the compressibility ordering the paper's
// evaluation depends on (CESM smooth >> HACC-vx white).
#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.h"
#include "data/spectral_field.h"
#include "stats/descriptive.h"

namespace dpz {
namespace {

TEST(Datasets, AllNamesGenerate) {
  for (const std::string& name : dataset_names()) {
    const Dataset d = make_dataset(name, 0.05);
    EXPECT_EQ(d.name, name);
    EXPECT_FALSE(d.data.empty()) << name;
  }
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("NOPE", 0.1), InvalidArgument);
}

TEST(Datasets, ScaleOneMatchesPaperShapes) {
  // Only check the cheap 1-D case at full size; 2-D/3-D shapes are scaled
  // versions of the same formulas.
  const Dataset hacc = make_dataset("HACC-vx", 1.0);
  EXPECT_EQ(hacc.data.size(), 2097152U);
  EXPECT_EQ(hacc.data.rank(), 1U);
}

TEST(Datasets, ShapesByFamily) {
  const Dataset cesm = make_dataset("CLDHGH", 0.1);
  EXPECT_EQ(cesm.data.rank(), 2U);
  EXPECT_EQ(cesm.source, "CESM");
  const Dataset jhtdb = make_dataset("Isotropic", 0.25);
  EXPECT_EQ(jhtdb.data.rank(), 3U);
  EXPECT_EQ(jhtdb.source, "JHTDB");
  const Dataset hacc = make_dataset("HACC-x", 0.05);
  EXPECT_EQ(hacc.data.rank(), 1U);
  EXPECT_EQ(hacc.source, "HACC");
}

TEST(Datasets, DeterministicInSeed) {
  const Dataset a = make_dataset("FLDSC", 0.05, 99);
  const Dataset b = make_dataset("FLDSC", 0.05, 99);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); ++i)
    EXPECT_EQ(a.data[i], b.data[i]);
}

TEST(Datasets, DifferentSeedsDiffer) {
  const Dataset a = make_dataset("FLDSC", 0.05, 1);
  const Dataset b = make_dataset("FLDSC", 0.05, 2);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.data.size(); ++i)
    diff += std::abs(static_cast<double>(a.data[i]) - b.data[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(Datasets, CloudFractionsBounded) {
  for (const char* name : {"CLDHGH", "CLDLOW", "FREQSH"}) {
    const Dataset d = make_dataset(name, 0.05);
    const auto [lo, hi] = d.data.min_max();
    EXPECT_GE(lo, 0.0F) << name;
    EXPECT_LE(hi, 1.0F) << name;
    EXPECT_GT(hi - lo, 0.5F) << name;  // actually uses the range
  }
}

TEST(Datasets, FldscNonNegativeWithLatitudeTrend) {
  const Dataset d = make_dataset("FLDSC", 0.1);
  const auto [lo, hi] = d.data.min_max();
  EXPECT_GE(lo, 0.0F);
  EXPECT_GT(hi, 100.0F);
}

TEST(Datasets, HaccXInBox) {
  const Dataset d = make_dataset("HACC-x", 0.02);
  const auto [lo, hi] = d.data.min_max();
  EXPECT_GE(lo, 0.0F);
  EXPECT_LT(hi, 256.0F);
}

TEST(Datasets, HaccVxNearlyWhite) {
  // Lag-1 autocorrelation ~ 0: the low-VIF hard case.
  const Dataset d = make_dataset("HACC-vx", 0.02);
  std::vector<double> a, b;
  for (std::size_t i = 0; i + 1 < d.data.size(); ++i) {
    a.push_back(d.data[i]);
    b.push_back(d.data[i + 1]);
  }
  EXPECT_LT(std::abs(pearson_correlation(a, b)), 0.05);
}

TEST(Datasets, SmoothFieldsHaveHighNeighborCorrelation) {
  // CESM-class fields must be strongly locally correlated, which is what
  // gives their block decomposition the high VIF the paper measures.
  const Dataset d = make_dataset("FLDSC", 0.05);
  std::vector<double> a, b;
  const std::size_t cols = d.data.extent(1);
  for (std::size_t i = 0; i < d.data.extent(0); ++i)
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      a.push_back(d.data(i, j));
      b.push_back(d.data(i, j + 1));
    }
  EXPECT_GT(pearson_correlation(a, b), 0.9);
}

TEST(Datasets, ChannelHasParabolicMeanProfile) {
  const Dataset d = make_dataset("Channel", 0.25);
  const std::size_t ny = d.data.extent(1);
  auto mean_at = [&](std::size_t y) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t x = 0; x < d.data.extent(0); ++x)
      for (std::size_t z = 0; z < d.data.extent(2); ++z, ++count)
        sum += static_cast<double>(d.data(x, y, z));
    return sum / static_cast<double>(count);
  };
  const double center = mean_at(ny / 2);
  const double wall = mean_at(0);
  EXPECT_GT(center, wall + 5.0);  // streamwise velocity peaks mid-channel
}

TEST(SpectralField, ZeroMeanUnitVariance) {
  const FloatArray f = gaussian_random_field({64, 64}, 3.0, 42);
  std::vector<double> v(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) v[i] = f[i];
  EXPECT_NEAR(mean_of(v), 0.0, 1e-6);
  EXPECT_NEAR(variance_of(v), 1.0, 1e-6);
}

TEST(SpectralField, LargerBetaIsSmoother) {
  // Smoothness measured by mean squared first difference: a steeper
  // spectrum concentrates power at low frequency -> smaller differences.
  auto roughness = [](const FloatArray& f) {
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < f.size(); ++i) {
      const double d = static_cast<double>(f[i + 1]) - f[i];
      acc += d * d;
    }
    return acc / static_cast<double>(f.size());
  };
  const FloatArray smooth = gaussian_random_field({4096}, 3.5, 1);
  const FloatArray rough = gaussian_random_field({4096}, 1.0, 1);
  EXPECT_LT(roughness(smooth), roughness(rough));
}

TEST(SpectralField, RejectsUnsupportedRank) {
  EXPECT_THROW(gaussian_random_field({2, 2, 2, 2}, 3.0, 1), InvalidArgument);
}

}  // namespace
}  // namespace dpz
