// Unit tests for src/util: CLI parsing, deterministic RNG, the thread
// pool's parallel_for contract, timers, and formatting helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/stage_clock.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dpz {
namespace {

// ---- CliArgs -----------------------------------------------------------

TEST(CliArgs, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--alpha=3", "--name=hello"};
  const CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_string("name", ""), "hello");
}

TEST(CliArgs, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--count", "42"};
  const CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("count", 0), 42);
}

TEST(CliArgs, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  const CliArgs args(2, argv);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
  const CliArgs args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", -7), -7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, PositionalArgumentsPreserved) {
  const char* argv[] = {"prog", "one", "--k=2", "two"};
  const CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
}

TEST(CliArgs, UnknownFlagRejectedWhenListed) {
  const char* argv[] = {"prog", "--oops=1"};
  EXPECT_THROW(CliArgs(2, argv, {"expected"}), InvalidArgument);
}

TEST(CliArgs, KnownFlagAcceptedWhenListed) {
  const char* argv[] = {"prog", "--expected=1"};
  const CliArgs args(2, argv, {"expected"});
  EXPECT_EQ(args.get_int("expected", 0), 1);
}

TEST(CliArgs, DoubleParsing) {
  const char* argv[] = {"prog", "--tve=0.99999"};
  const CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("tve", 0.0), 0.99999);
}

// ---- Rng ----------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  const ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  const ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  const ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 57) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, SingleThreadFallback) {
  const ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  auto run = [](unsigned threads) {
    const ThreadPool pool(threads);
    std::vector<double> out(257, 0.0);
    pool.parallel_for(0, out.size(), [&](std::size_t i) {
      out[i] = std::sin(static_cast<double>(i));
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  const ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  pool.parallel_for(0, 64, [&](std::size_t outer) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // The nested call must not deadlock or oversubscribe: it runs
    // serially on this worker.
    pool.parallel_for(0, 16, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, NestedCallOnDifferentPoolRunsInline) {
  const ThreadPool outer(3);
  const ThreadPool inner(3);
  std::vector<std::atomic<int>> hits(32 * 8);
  outer.parallel_for(0, 32, [&](std::size_t i) {
    inner.parallel_for(0, 8,
                       [&](std::size_t j) { hits[i * 8 + j].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentTopLevelCallsAreSerialized) {
  // Multiple plain threads hammer the same pool; every loop must still
  // cover its range exactly once. This is the documented multi-caller
  // contract (top-level calls serialize internally).
  const ThreadPool pool(4);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kRange = 512;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    std::vector<std::atomic<int>> fresh(kRange);
    v.swap(fresh);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c)
    callers.emplace_back([&, c] {
      for (int repeat = 0; repeat < 8; ++repeat)
        pool.parallel_for(0, kRange,
                          [&](std::size_t i) { hits[c][i].fetch_add(1); });
    });
  for (auto& t : callers) t.join();
  for (const auto& caller : hits)
    for (const auto& h : caller) EXPECT_EQ(h.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  const ThreadPool pool(4);
  std::vector<int> out(100, 0);
  for (int round = 0; round < 200; ++round)
    pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] += 1; });
  for (const int v : out) EXPECT_EQ(v, 200);
}

TEST(PoolScope, FreeParallelForRoutesThroughActivePool) {
  // A 1-thread scoped pool keeps everything on the calling thread; the
  // free parallel_for must pick it up instead of the global pool.
  const ThreadPool solo(1);
  const std::thread::id caller = std::this_thread::get_id();
  {
    const PoolScope scope(solo);
    EXPECT_EQ(&PoolScope::current(), &solo);
    parallel_for(0, 32, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
  }
  EXPECT_EQ(&PoolScope::current(), &ThreadPool::global());
}

TEST(PoolScope, ScopesNestAndRestore) {
  const ThreadPool a(2);
  const ThreadPool b(3);
  {
    const PoolScope outer(a);
    EXPECT_EQ(PoolScope::current().thread_count(), 2U);
    {
      const PoolScope inner(b);
      EXPECT_EQ(PoolScope::current().thread_count(), 3U);
    }
    EXPECT_EQ(PoolScope::current().thread_count(), 2U);
  }
}

TEST(ScopedThreads, ZeroKeepsAmbientPoolNonzeroOwnsOne) {
  const ThreadPool ambient(2);
  const PoolScope scope(ambient);
  {
    const ScopedThreads keep(0);
    EXPECT_EQ(&PoolScope::current(), &ambient);
  }
  {
    const ScopedThreads own(5);
    EXPECT_EQ(PoolScope::current().thread_count(), 5U);
    EXPECT_NE(&PoolScope::current(), &ambient);
  }
  EXPECT_EQ(&PoolScope::current(), &ambient);
}

// ---- Timers ----------------------------------------------------------------

TEST(Timer, ElapsedIsMonotonic) {
  Timer t;
  const double a = t.elapsed();
  const double b = t.elapsed();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(StageTimer, AccumulatesBuckets) {
  StageTimer st;
  st.add("a", 1.0);
  st.add("a", 0.5);
  st.add("b", 2.0);
  EXPECT_DOUBLE_EQ(st.total("a"), 1.5);
  EXPECT_DOUBLE_EQ(st.total("b"), 2.0);
  EXPECT_DOUBLE_EQ(st.total("absent"), 0.0);
  EXPECT_DOUBLE_EQ(st.grand_total(), 3.5);
}

TEST(StageTimer, StageSpanAccumulatesIntoBuckets) {
  obs::StageAccumulator acc;
  {
    const obs::StageSpan scope(acc, obs::Span::kStage1Dct);
  }
  StageTimer st;
  for (const auto& [name, secs] : acc.buckets()) st.add(name, secs);
  EXPECT_GE(st.total("stage1_dct"), 0.0);
  EXPECT_EQ(st.buckets().size(), 1U);
}

// ---- Format -----------------------------------------------------------------

TEST(Format, FixedAndScientific) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(scientific(0.000194, 2), "1.94E-04");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KB");
  EXPECT_EQ(human_bytes(5ULL * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(Format, TablePrinterRendersAllRows) {
  TablePrinter t({"col1", "col2"});
  t.add_row({"a", "bbbb"});
  t.add_row({"cc", "d"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("bbbb"), std::string::npos);
  EXPECT_NE(s.find("cc"), std::string::npos);
}

TEST(Format, TablePrinterCsv) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

}  // namespace
}  // namespace dpz
