// Structure-aware decode fuzzing (deterministic, in-process).
//
// Every case compresses known-good data, then feeds >= 1000 seeded
// mutations of the archive (util/mutator.h: bit flips, truncations,
// length-field/section-header forgeries, table corruption) to the
// decoder and requires one of exactly two outcomes:
//
//   1. a recoverable dpz::Error whose StatusCode is not kOk — the
//      "clean status" contract for untrusted bytes; or
//   2. a successful decode whose result is shape-consistent (mutations
//      that only perturb payload values are allowed to succeed).
//
// Anything else — a crash, an uncaught foreign exception, a bad_alloc
// from an unvalidated allocation size, or (under -DDPZ_SANITIZE) any
// sanitizer report — fails the suite. Seeds derive from GTest-visible
// constants so a failure reproduces bit-exactly from its test name.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "baselines/dctzlike.h"
#include "baselines/mgard_like.h"
#include "baselines/szlike.h"
#include "baselines/tthresh_like.h"
#include "baselines/zfplike.h"
#include "capi/dpz_c.h"
#include "codec/huffman.h"
#include "core/chunked.h"
#include "core/dpz.h"
#include "core/shared_basis.h"
#include "util/mutator.h"
#include "util/rng.h"

namespace dpz {
namespace {

constexpr std::size_t kMutationsPerShape = 1000;

FloatArray wave(std::vector<std::size_t> shape, std::uint64_t seed) {
  FloatArray a(shape);
  Rng rng(seed);
  const double f = rng.uniform(1.0, 4.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(f * static_cast<double>(i) * 0.01) +
                              0.01 * rng.normal());
  return a;
}

DoubleArray wave_f64(std::vector<std::size_t> shape, std::uint64_t seed) {
  const FloatArray f = wave(std::move(shape), seed);
  DoubleArray a(f.shape());
  for (std::size_t i = 0; i < f.size(); ++i)
    a[i] = static_cast<double>(f[i]);
  return a;
}

/// Core fuzz loop: mutate `archive` kMutationsPerShape times and demand a
/// clean dpz::Error status or a decode the validator accepts.
void fuzz_decode(std::span<const std::uint8_t> archive, std::uint64_t seed,
                 const std::function<void(std::span<const std::uint8_t>)>&
                     decode_and_validate) {
  ASSERT_FALSE(archive.empty());
  std::size_t clean_errors = 0;
  std::size_t survivals = 0;
  for (std::size_t i = 0; i < kMutationsPerShape; ++i) {
    ArchiveMutator mutator(seed * 1000003ULL + i);
    const std::vector<std::uint8_t> mutated = mutator.mutate(archive);
    try {
      decode_and_validate(mutated);
      ++survivals;
    } catch (const Error& e) {
      // The recoverable-status contract: classified, message-bearing.
      EXPECT_NE(e.code(), StatusCode::kOk)
          << "mutation " << i << " (" << mutator.trace() << ")";
      EXPECT_NE(std::string(e.what()), "")
          << "mutation " << i << " (" << mutator.trace() << ")";
      ++clean_errors;
    }
    // Any other exception type escapes and fails the test: decoders may
    // only fail through the dpz::Error hierarchy.
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Sanity on the harness itself: mutations must actually be corrupting
  // (an all-survive run means the decoder was never really exercised).
  // Payload-only corruption may legitimately decode — e.g. Huffman bit
  // flips resynchronize — so the floor is deliberately low.
  EXPECT_GT(clean_errors, kMutationsPerShape / 20)
      << "survivals: " << survivals;
}

TEST(FuzzDecode, Dpz1D) {
  const auto archive = dpz_compress(wave({4096}, 11), DpzConfig::loose());
  fuzz_decode(archive, 101, [](std::span<const std::uint8_t> bytes) {
    const FloatArray out = dpz_decompress(bytes);
    ASSERT_GE(out.size(), 1U);
  });
}

TEST(FuzzDecode, Dpz2D) {
  const auto archive = dpz_compress(wave({64, 96}, 12), DpzConfig::strict());
  fuzz_decode(archive, 102, [](std::span<const std::uint8_t> bytes) {
    const FloatArray out = dpz_decompress(bytes);
    std::size_t product = 1;
    for (const std::size_t d : out.shape()) product *= d;
    ASSERT_EQ(product, out.size());
  });
}

TEST(FuzzDecode, Dpz3D) {
  const auto archive = dpz_compress(wave({16, 16, 24}, 13),
                                    DpzConfig::strict());
  fuzz_decode(archive, 103, [](std::span<const std::uint8_t> bytes) {
    (void)dpz_decompress(bytes);
  });
}

TEST(FuzzDecode, Dpz2DDouble) {
  const auto archive =
      dpz_compress(wave_f64({48, 64}, 14), DpzConfig::loose());
  fuzz_decode(archive, 104, [](std::span<const std::uint8_t> bytes) {
    (void)dpz_decompress_f64(bytes);
  });
}

TEST(FuzzDecode, DpzProgressive) {
  const auto archive = dpz_compress(wave({64, 64}, 15), DpzConfig::strict());
  fuzz_decode(archive, 105, [](std::span<const std::uint8_t> bytes) {
    (void)dpz_decompress(bytes, /*max_components=*/2);
  });
}

TEST(FuzzDecode, DpzInspect) {
  const auto archive = dpz_compress(wave({4096}, 16), DpzConfig::loose());
  fuzz_decode(archive, 106, [](std::span<const std::uint8_t> bytes) {
    const DpzArchiveInfo info = dpz_inspect(bytes);
    ASSERT_LE(info.shape.size(), 4U);
  });
}

TEST(FuzzDecode, Chunked) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  const auto container = chunked_compress(wave({3 * 4096 + 100}, 17),
                                          config);
  fuzz_decode(container, 107, [](std::span<const std::uint8_t> bytes) {
    (void)chunked_decompress(bytes);
  });
}

TEST(FuzzDecode, ChunkedFrameAccess) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  const auto container = chunked_compress(wave({2 * 4096}, 18), config);
  fuzz_decode(container, 108, [](std::span<const std::uint8_t> bytes) {
    const std::size_t frames = chunked_frame_count(bytes);
    if (frames > 0) (void)chunked_decompress_frame(bytes, 0);
  });
}

TEST(FuzzDecode, CApi) {
  const auto archive = dpz_compress(wave({48, 64}, 19), DpzConfig::loose());
  fuzz_decode(archive, 109, [](std::span<const std::uint8_t> bytes) {
    float* out = nullptr;
    std::size_t count = 0;
    const int rc = dpz_decompress_float(bytes.data(), bytes.size(), &out,
                                        &count);
    if (rc == DPZ_OK) {
      ASSERT_NE(out, nullptr);
      ASSERT_GE(count, 1U);
      dpz_free(out);
    } else {
      // No exception may cross the C boundary; instead the status code and
      // the per-thread message must classify the failure.
      ASSERT_NE(std::string(dpz_last_error()), "");
      ASSERT_NE(std::string(dpz_status_name(rc)), "ok");
      // Re-throw as a dpz::Error so the harness counts it as clean.
      throw FormatError(dpz_last_error());
    }
  });
}

TEST(FuzzDecode, SharedBasisBlob) {
  const FloatArray reference = wave({64, 64}, 20);
  const SharedBasisCodec codec =
      SharedBasisCodec::train(reference, DpzConfig::strict());
  const auto blob = codec.serialize();
  fuzz_decode(blob, 110, [](std::span<const std::uint8_t> bytes) {
    (void)SharedBasisCodec::deserialize(bytes);
  });
}

TEST(FuzzDecode, SharedBasisSnapshot) {
  const FloatArray reference = wave({64, 64}, 21);
  const SharedBasisCodec codec =
      SharedBasisCodec::train(reference, DpzConfig::strict());
  const auto snapshot = codec.compress(reference);
  fuzz_decode(snapshot, 111, [&](std::span<const std::uint8_t> bytes) {
    (void)codec.decompress(bytes);
  });
}

TEST(FuzzDecode, Huffman) {
  // The Huffman container (alphabet, count, plaintext length table, bit
  // payload) is fuzzed unwrapped so table corruption reaches the decoder
  // directly instead of dying inside zlib first.
  Rng rng(22);
  std::vector<std::uint32_t> symbols(4096);
  for (auto& s : symbols)
    s = static_cast<std::uint32_t>(rng.uniform_index(300));
  const auto encoded = huffman_encode(symbols, 512);
  fuzz_decode(encoded, 112, [](std::span<const std::uint8_t> bytes) {
    const auto decoded = huffman_decode(bytes);
    ASSERT_LE(decoded.size(), bytes.size() * 8);
  });
}

TEST(FuzzDecode, SzLike) {
  const auto archive = szlike_compress(wave({48, 64}, 23), SzLikeConfig{});
  fuzz_decode(archive, 113, [](std::span<const std::uint8_t> bytes) {
    (void)szlike_decompress(bytes);
  });
}

TEST(FuzzDecode, ZfpLike) {
  const auto archive = zfplike_compress(wave({24, 24, 24}, 24),
                                        ZfpLikeConfig{});
  fuzz_decode(archive, 114, [](std::span<const std::uint8_t> bytes) {
    (void)zfplike_decompress(bytes);
  });
}

TEST(FuzzDecode, DctzLike) {
  const auto archive = dctzlike_compress(wave({64, 64}, 25),
                                         DctzLikeConfig{});
  fuzz_decode(archive, 115, [](std::span<const std::uint8_t> bytes) {
    (void)dctzlike_decompress(bytes);
  });
}

TEST(FuzzDecode, MgardLike) {
  const auto archive = mgard_like_compress(wave({48, 48}, 26),
                                           MgardLikeConfig{});
  fuzz_decode(archive, 116, [](std::span<const std::uint8_t> bytes) {
    (void)mgard_like_decompress(bytes);
  });
}

TEST(FuzzDecode, TthreshLike) {
  const auto archive = tthresh_like_compress(wave({24, 32}, 27),
                                             TthreshLikeConfig{});
  fuzz_decode(archive, 117, [](std::span<const std::uint8_t> bytes) {
    (void)tthresh_like_decompress(bytes);
  });
}

// Degenerate inputs every decoder must survive without an archive at all.
TEST(FuzzDecode, EmptyAndTinyInputs) {
  const std::vector<std::uint8_t> empty;
  std::vector<std::uint8_t> tiny = {0x44, 0x50};
  for (const auto& bytes : {empty, tiny}) {
    EXPECT_THROW((void)dpz_decompress(bytes), Error);
    EXPECT_THROW((void)dpz_inspect(bytes), Error);
    EXPECT_THROW((void)chunked_decompress(bytes), Error);
    EXPECT_THROW((void)SharedBasisCodec::deserialize(bytes), Error);
    EXPECT_THROW((void)szlike_decompress(bytes), Error);
    EXPECT_THROW((void)zfplike_decompress(bytes), Error);
    EXPECT_THROW((void)dctzlike_decompress(bytes), Error);
    EXPECT_THROW((void)mgard_like_decompress(bytes), Error);
    EXPECT_THROW((void)tthresh_like_decompress(bytes), Error);
    EXPECT_THROW((void)huffman_decode(bytes), Error);
  }
}

}  // namespace
}  // namespace dpz
