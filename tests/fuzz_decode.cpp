// Structure-aware decode fuzzing (deterministic, in-process).
//
// Every case compresses known-good data, then feeds >= 1000 seeded
// mutations of the archive (util/mutator.h: bit flips, truncations,
// length-field/section-header forgeries, table corruption) to the
// decoder and requires one of exactly two outcomes:
//
//   1. a recoverable dpz::Error whose StatusCode is not kOk — the
//      "clean status" contract for untrusted bytes; or
//   2. a successful decode whose result is shape-consistent (mutations
//      that only perturb payload values are allowed to succeed).
//
// Anything else — a crash, an uncaught foreign exception, a bad_alloc
// from an unvalidated allocation size, or (under -DDPZ_SANITIZE) any
// sanitizer report — fails the suite. Seeds derive from GTest-visible
// constants so a failure reproduces bit-exactly from its test name.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "baselines/dctzlike.h"
#include "baselines/mgard_like.h"
#include "baselines/szlike.h"
#include "baselines/tthresh_like.h"
#include "baselines/zfplike.h"
#include "capi/dpz_c.h"
#include "codec/huffman.h"
#include "core/chunked.h"
#include "core/dpz.h"
#include "core/shared_basis.h"
#include "core/verify.h"
#include "io/file_io.h"
#include "util/mutator.h"
#include "util/rng.h"

namespace dpz {
namespace {

constexpr std::size_t kMutationsPerShape = 1000;

FloatArray wave(std::vector<std::size_t> shape, std::uint64_t seed) {
  FloatArray a(shape);
  Rng rng(seed);
  const double f = rng.uniform(1.0, 4.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(f * static_cast<double>(i) * 0.01) +
                              0.01 * rng.normal());
  return a;
}

DoubleArray wave_f64(std::vector<std::size_t> shape, std::uint64_t seed) {
  const FloatArray f = wave(std::move(shape), seed);
  DoubleArray a(f.shape());
  for (std::size_t i = 0; i < f.size(); ++i)
    a[i] = static_cast<double>(f[i]);
  return a;
}

/// Core fuzz loop: mutate `archive` kMutationsPerShape times and demand a
/// clean dpz::Error status or a decode the validator accepts.
void fuzz_decode(std::span<const std::uint8_t> archive, std::uint64_t seed,
                 const std::function<void(std::span<const std::uint8_t>)>&
                     decode_and_validate) {
  ASSERT_FALSE(archive.empty());
  std::size_t clean_errors = 0;
  std::size_t survivals = 0;
  for (std::size_t i = 0; i < kMutationsPerShape; ++i) {
    ArchiveMutator mutator(seed * 1000003ULL + i);
    const std::vector<std::uint8_t> mutated = mutator.mutate(archive);
    try {
      decode_and_validate(mutated);
      ++survivals;
    } catch (const Error& e) {
      // The recoverable-status contract: classified, message-bearing.
      EXPECT_NE(e.code(), StatusCode::kOk)
          << "mutation " << i << " (" << mutator.trace() << ")";
      EXPECT_NE(std::string(e.what()), "")
          << "mutation " << i << " (" << mutator.trace() << ")";
      ++clean_errors;
    }
    // Any other exception type escapes and fails the test: decoders may
    // only fail through the dpz::Error hierarchy.
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Sanity on the harness itself: mutations must actually be corrupting
  // (an all-survive run means the decoder was never really exercised).
  // Payload-only corruption may legitimately decode — e.g. Huffman bit
  // flips resynchronize — so the floor is deliberately low.
  EXPECT_GT(clean_errors, kMutationsPerShape / 20)
      << "survivals: " << survivals;
}

TEST(FuzzDecode, Dpz1D) {
  const auto archive = dpz_compress(wave({4096}, 11), DpzConfig::loose());
  fuzz_decode(archive, 101, [](std::span<const std::uint8_t> bytes) {
    const FloatArray out = dpz_decompress(bytes);
    ASSERT_GE(out.size(), 1U);
  });
}

TEST(FuzzDecode, Dpz2D) {
  const auto archive = dpz_compress(wave({64, 96}, 12), DpzConfig::strict());
  fuzz_decode(archive, 102, [](std::span<const std::uint8_t> bytes) {
    const FloatArray out = dpz_decompress(bytes);
    std::size_t product = 1;
    for (const std::size_t d : out.shape()) product *= d;
    ASSERT_EQ(product, out.size());
  });
}

TEST(FuzzDecode, Dpz3D) {
  const auto archive = dpz_compress(wave({16, 16, 24}, 13),
                                    DpzConfig::strict());
  fuzz_decode(archive, 103, [](std::span<const std::uint8_t> bytes) {
    (void)dpz_decompress(bytes);
  });
}

TEST(FuzzDecode, Dpz2DDouble) {
  const auto archive =
      dpz_compress(wave_f64({48, 64}, 14), DpzConfig::loose());
  fuzz_decode(archive, 104, [](std::span<const std::uint8_t> bytes) {
    (void)dpz_decompress_f64(bytes);
  });
}

TEST(FuzzDecode, DpzProgressive) {
  const auto archive = dpz_compress(wave({64, 64}, 15), DpzConfig::strict());
  fuzz_decode(archive, 105, [](std::span<const std::uint8_t> bytes) {
    (void)dpz_decompress(bytes, /*max_components=*/2);
  });
}

TEST(FuzzDecode, DpzInspect) {
  const auto archive = dpz_compress(wave({4096}, 16), DpzConfig::loose());
  fuzz_decode(archive, 106, [](std::span<const std::uint8_t> bytes) {
    const DpzArchiveInfo info = dpz_inspect(bytes);
    ASSERT_LE(info.shape.size(), 4U);
  });
}

TEST(FuzzDecode, Chunked) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  const auto container = chunked_compress(wave({3 * 4096 + 100}, 17),
                                          config);
  fuzz_decode(container, 107, [](std::span<const std::uint8_t> bytes) {
    (void)chunked_decompress(bytes);
  });
}

TEST(FuzzDecode, ChunkedFrameAccess) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  const auto container = chunked_compress(wave({2 * 4096}, 18), config);
  fuzz_decode(container, 108, [](std::span<const std::uint8_t> bytes) {
    const std::size_t frames = chunked_frame_count(bytes);
    if (frames > 0) (void)chunked_decompress_frame(bytes, 0);
  });
}

TEST(FuzzDecode, CApi) {
  const auto archive = dpz_compress(wave({48, 64}, 19), DpzConfig::loose());
  fuzz_decode(archive, 109, [](std::span<const std::uint8_t> bytes) {
    float* out = nullptr;
    std::size_t count = 0;
    const int rc = dpz_decompress_float(bytes.data(), bytes.size(), &out,
                                        &count);
    if (rc == DPZ_OK) {
      ASSERT_NE(out, nullptr);
      ASSERT_GE(count, 1U);
      dpz_free(out);
    } else {
      // No exception may cross the C boundary; instead the status code and
      // the per-thread message must classify the failure.
      ASSERT_NE(std::string(dpz_last_error()), "");
      ASSERT_NE(std::string(dpz_status_name(rc)), "ok");
      // Re-throw as a dpz::Error so the harness counts it as clean.
      throw FormatError(dpz_last_error());
    }
  });
}

TEST(FuzzDecode, SharedBasisBlob) {
  const FloatArray reference = wave({64, 64}, 20);
  const SharedBasisCodec codec =
      SharedBasisCodec::train(reference, DpzConfig::strict());
  const auto blob = codec.serialize();
  fuzz_decode(blob, 110, [](std::span<const std::uint8_t> bytes) {
    (void)SharedBasisCodec::deserialize(bytes);
  });
}

TEST(FuzzDecode, SharedBasisSnapshot) {
  const FloatArray reference = wave({64, 64}, 21);
  const SharedBasisCodec codec =
      SharedBasisCodec::train(reference, DpzConfig::strict());
  const auto snapshot = codec.compress(reference);
  fuzz_decode(snapshot, 111, [&](std::span<const std::uint8_t> bytes) {
    (void)codec.decompress(bytes);
  });
}

TEST(FuzzDecode, Huffman) {
  // The Huffman container (alphabet, count, plaintext length table, bit
  // payload) is fuzzed unwrapped so table corruption reaches the decoder
  // directly instead of dying inside zlib first.
  Rng rng(22);
  std::vector<std::uint32_t> symbols(4096);
  for (auto& s : symbols)
    s = static_cast<std::uint32_t>(rng.uniform_index(300));
  const auto encoded = huffman_encode(symbols, 512);
  fuzz_decode(encoded, 112, [](std::span<const std::uint8_t> bytes) {
    const auto decoded = huffman_decode(bytes);
    ASSERT_LE(decoded.size(), bytes.size() * 8);
  });
}

TEST(FuzzDecode, SzLike) {
  const auto archive = szlike_compress(wave({48, 64}, 23), SzLikeConfig{});
  fuzz_decode(archive, 113, [](std::span<const std::uint8_t> bytes) {
    (void)szlike_decompress(bytes);
  });
}

TEST(FuzzDecode, ZfpLike) {
  const auto archive = zfplike_compress(wave({24, 24, 24}, 24),
                                        ZfpLikeConfig{});
  fuzz_decode(archive, 114, [](std::span<const std::uint8_t> bytes) {
    (void)zfplike_decompress(bytes);
  });
}

TEST(FuzzDecode, DctzLike) {
  const auto archive = dctzlike_compress(wave({64, 64}, 25),
                                         DctzLikeConfig{});
  fuzz_decode(archive, 115, [](std::span<const std::uint8_t> bytes) {
    (void)dctzlike_decompress(bytes);
  });
}

TEST(FuzzDecode, MgardLike) {
  const auto archive = mgard_like_compress(wave({48, 48}, 26),
                                           MgardLikeConfig{});
  fuzz_decode(archive, 116, [](std::span<const std::uint8_t> bytes) {
    (void)mgard_like_decompress(bytes);
  });
}

TEST(FuzzDecode, TthreshLike) {
  const auto archive = tthresh_like_compress(wave({24, 32}, 27),
                                             TthreshLikeConfig{});
  fuzz_decode(archive, 117, [](std::span<const std::uint8_t> bytes) {
    (void)tthresh_like_decompress(bytes);
  });
}

TEST(FuzzDecode, ChunkedBestEffort) {
  // Best effort may convert frame damage into a partial success, but a
  // success must keep its books consistent: every frame is accounted for
  // either as recovered or as lost, and the output covers the full shape.
  ChunkedConfig config;
  config.chunk_values = 4096;
  const auto container = chunked_compress(wave({3 * 4096 + 100}, 32),
                                          config);
  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  best.fill_value = -1.0F;
  fuzz_decode(container, 121, [&](std::span<const std::uint8_t> bytes) {
    DecodeReport report;
    const FloatArray out = chunked_decompress(bytes, best, &report);
    ASSERT_EQ(report.frames_recovered + report.lost.size(),
              report.frames_total);
    std::size_t product = 1;
    for (const std::size_t d : out.shape()) product *= d;
    ASSERT_EQ(product, out.size());
  });
}

TEST(FuzzDecode, ChunkedWithParity) {
  // A DZC3 container under the full mutation mix (including the
  // parity-section kind). Repair makes many frame corruptions decode
  // successfully, so the clean-error floor is carried by header/table
  // damage; a success must hand back a complete, consistently
  // accounted reconstruction — never bytes rebuilt from forged parity.
  ChunkedConfig config;
  config.chunk_values = 4096;
  config.parity_k = 2;
  config.parity_m = 1;
  const auto container = chunked_compress(wave({4 * 4096 + 64}, 36),
                                          config);
  fuzz_decode(container, 123, [&](std::span<const std::uint8_t> bytes) {
    DecodeReport report;
    const FloatArray out = chunked_decompress(bytes, config, &report);
    ASSERT_TRUE(report.complete());
    ASSERT_GE(report.frames_recovered, report.frames_repaired);
    std::size_t product = 1;
    for (const std::size_t d : out.shape()) product *= d;
    ASSERT_EQ(product, out.size());
  });
}

TEST(FuzzDecode, ChunkedWithParityBestEffort) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  config.parity_k = 2;
  config.parity_m = 1;
  const auto container = chunked_compress(wave({4 * 4096 + 64}, 37),
                                          config);
  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  best.fill_value = -1.0;
  fuzz_decode(container, 124, [&](std::span<const std::uint8_t> bytes) {
    DecodeReport report;
    const FloatArray out = chunked_decompress(bytes, best, &report);
    ASSERT_EQ(report.frames_recovered + report.lost.size(),
              report.frames_total);
    ASSERT_LE(report.frames_repaired, report.frames_recovered);
    std::size_t product = 1;
    for (const std::size_t d : out.shape()) product *= d;
    ASSERT_EQ(product, out.size());
  });
}

TEST(FuzzDecode, ChunkedRepairAndScrubNeverCrash) {
  // The repair and scrub entry points walk the same untrusted geometry
  // as the decoder; they must uphold the same clean-status contract.
  ChunkedConfig config;
  config.chunk_values = 4096;
  config.parity_k = 2;
  config.parity_m = 1;
  const auto container = chunked_compress(wave({4 * 4096}, 38), config);
  fuzz_decode(container, 125, [](std::span<const std::uint8_t> bytes) {
    const std::vector<std::uint8_t> copy(bytes.begin(), bytes.end());
    const ScrubReport scrub = chunked_scrub(copy);
    ASSERT_LE(scrub.frames_damaged, scrub.frames_total);
    const std::vector<std::uint8_t> healed = chunked_repair(copy, nullptr);
    // A successful repair must produce a container that scrubs clean.
    ASSERT_TRUE(chunked_scrub(healed).ok());
  });
}

TEST(FuzzDecode, VerifyArchiveNeverThrows) {
  // verify_archive is the no-throw pre-flight check: for any input,
  // however mangled, it must return a report (never raise) whose ok bit
  // agrees with the problem list.
  std::vector<std::vector<std::uint8_t>> archives;
  archives.push_back(dpz_compress(wave({64, 96}, 33), DpzConfig::strict()));
  ChunkedConfig config;
  config.chunk_values = 4096;
  archives.push_back(chunked_compress(wave({2 * 4096 + 500}, 34), config));
  const SharedBasisCodec codec =
      SharedBasisCodec::train(wave({64, 64}, 35), DpzConfig::strict());
  archives.push_back(codec.serialize());

  std::uint64_t seed = 122;
  for (const auto& archive : archives) {
    ASSERT_TRUE(verify_archive(archive).ok);
    std::size_t detected = 0;
    for (std::size_t i = 0; i < kMutationsPerShape; ++i) {
      ArchiveMutator mutator(seed * 1000003ULL + i);
      const std::vector<std::uint8_t> mutated = mutator.mutate(archive);
      VerifyReport rep;
      ASSERT_NO_THROW(rep = verify_archive(mutated)) << mutator.trace();
      EXPECT_EQ(rep.ok, rep.problems.empty()) << mutator.trace();
      if (!rep.ok) ++detected;
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_GT(detected, kMutationsPerShape / 20);
    ++seed;
  }
}

// Truncation sweep over the committed golden fixtures (both the frozen v1
// generation and the current v2 one): cut every archive at each section
// boundary and one byte either side, then require a clean dpz::Error from
// the decoder and an !ok verify report. A partial download must never
// decode silently, whichever format generation it came from.
TEST(FuzzDecode, TruncationSweepOverGoldenFixtures) {
  const std::string dir = DPZ_GOLDEN_DIR;
  // The committed blob and its v2 regeneration train on identical data,
  // so one codec can host the snapshot decode for both generations (the
  // golden suite pins that equivalence).
  const SharedBasisCodec codec = SharedBasisCodec::deserialize(
      read_bytes(dir + "/shared_basis_2d_f32_strict.blob"));

  struct Fixture {
    std::string file;
    std::function<void(std::span<const std::uint8_t>)> decode;
  };
  const auto f32 = [](std::span<const std::uint8_t> b) {
    (void)dpz_decompress(b);
  };
  std::vector<Fixture> fixtures;
  for (const std::string& gen : {std::string(), std::string(".v2")}) {
    fixtures.push_back({"dpz_1d_f32_loose" + gen + ".dpz", f32});
    fixtures.push_back({"dpz_2d_f32_strict" + gen + ".dpz", f32});
    fixtures.push_back({"dpz_3d_f32_strict" + gen + ".dpz", f32});
    fixtures.push_back({"dpz_2d_f64_strict" + gen + ".dpz",
                        [](std::span<const std::uint8_t> b) {
                          (void)dpz_decompress_f64(b);
                        }});
    fixtures.push_back({"chunked_2d_f32_strict" + gen + ".dpz",
                        [](std::span<const std::uint8_t> b) {
                          (void)chunked_decompress(b);
                        }});
    fixtures.push_back({"shared_basis_2d_f32_strict" + gen + ".blob",
                        [](std::span<const std::uint8_t> b) {
                          (void)SharedBasisCodec::deserialize(b);
                        }});
    fixtures.push_back({"shared_basis_2d_f32_strict" + gen + ".dpz",
                        [&codec](std::span<const std::uint8_t> b) {
                          (void)codec.decompress(b);
                        }});
  }

  std::size_t total_cuts = 0;
  for (const Fixture& fixture : fixtures) {
    const std::vector<std::uint8_t> bytes =
        read_bytes(dir + "/" + fixture.file);
    const VerifyReport pristine = verify_archive(bytes);
    ASSERT_TRUE(pristine.ok) << fixture.file;
    ASSERT_FALSE(pristine.sections.empty()) << fixture.file;

    std::set<std::size_t> cuts;
    for (const SectionStatus& s : pristine.sections) {
      for (const std::uint64_t edge : {s.offset, s.offset + s.size}) {
        if (edge > 0) cuts.insert(static_cast<std::size_t>(edge - 1));
        cuts.insert(static_cast<std::size_t>(edge));
        cuts.insert(static_cast<std::size_t>(edge + 1));
      }
    }
    for (const std::size_t cut : cuts) {
      if (cut >= bytes.size()) continue;  // full archive is not a cut
      const std::vector<std::uint8_t> truncated(bytes.begin(),
                                                bytes.begin() + cut);
      EXPECT_THROW(fixture.decode(truncated), Error)
          << fixture.file << " cut at " << cut;
      const VerifyReport rep = verify_archive(truncated);
      EXPECT_FALSE(rep.ok) << fixture.file << " cut at " << cut;
      ++total_cuts;
    }
  }
  // Harness sanity: the sweep must actually have covered boundaries.
  EXPECT_GE(total_cuts, 100U);
}

// Degenerate inputs every decoder must survive without an archive at all.
TEST(FuzzDecode, EmptyAndTinyInputs) {
  const std::vector<std::uint8_t> empty;
  std::vector<std::uint8_t> tiny = {0x44, 0x50};
  for (const auto& bytes : {empty, tiny}) {
    EXPECT_THROW((void)dpz_decompress(bytes), Error);
    EXPECT_THROW((void)dpz_inspect(bytes), Error);
    EXPECT_THROW((void)chunked_decompress(bytes), Error);
    EXPECT_THROW((void)SharedBasisCodec::deserialize(bytes), Error);
    EXPECT_THROW((void)szlike_decompress(bytes), Error);
    EXPECT_THROW((void)zfplike_decompress(bytes), Error);
    EXPECT_THROW((void)dctzlike_decompress(bytes), Error);
    EXPECT_THROW((void)mgard_like_decompress(bytes), Error);
    EXPECT_THROW((void)tthresh_like_decompress(bytes), Error);
    EXPECT_THROW((void)huffman_decode(bytes), Error);
  }
}

}  // namespace
}  // namespace dpz
