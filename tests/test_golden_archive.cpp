// Golden-archive format stability: committed archives under tests/golden/
// must (a) be reproduced byte for byte when the same input is re-encoded
// with the same configuration, and (b) decode to a reconstruction that
// matches a fresh encode/decode round trip exactly. Together these pin
// both directions of the format: an encoder change that alters bytes and
// a decoder change that alters reconstructions each fail one arm.
//
// Two generations are committed per case. <name>.v2.dpz is the CURRENT
// format (CRC32C-checksummed, version 2): the encoder must reproduce it.
// <name>.dpz is the FROZEN v1 fixture from before checksums existed: the
// current encoder can no longer produce it, but the reader must keep
// decoding it to byte-for-byte the reconstruction recorded in
// golden_common.h (v1_reconstruction_fnv1a) — that digest is the
// backward-compatibility contract. The v1 and v2 reconstructions are
// additionally required to agree to within the configured error bound:
// encoder numerics may evolve (a kernel rewrite moves eigenvector bits
// at the 1e-11 level), but both generations must describe the same data.
//
// After a DELIBERATE format change, regenerate the .v2 files with
// tests/make_golden and commit the new bytes alongside a docs/FORMAT.md
// version note. Never regenerate or delete the plain v1 fixtures; the
// v1 digests change only with a deliberate DECODER change, in which case
// make_golden prints the fresh values.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "golden_common.h"
#include "io/file_io.h"
#include "metrics/metrics.h"

namespace dpz {
namespace {

using namespace dpz::golden;

std::string golden_path(const std::string& name, const char* ext) {
  return std::string(DPZ_GOLDEN_DIR) + "/" + name + ext;
}

std::vector<std::uint8_t> float_bytes(const FloatArray& a) {
  std::vector<std::uint8_t> bytes(a.size() * sizeof(float));
  std::memcpy(bytes.data(), a.flat().data(), bytes.size());
  return bytes;
}

std::vector<std::uint8_t> double_bytes(const DoubleArray& a) {
  std::vector<std::uint8_t> bytes(a.size() * sizeof(double));
  std::memcpy(bytes.data(), a.flat().data(), bytes.size());
  return bytes;
}

GoldenCase find_case(const std::string& name) {
  for (const GoldenCase& c : golden_cases())
    if (c.name == name) return c;
  ADD_FAILURE() << "unknown golden case " << name;
  return {};
}

// The frozen v1 fixture must decode to exactly the bytes recorded when it
// was frozen — the reader-side half of the compatibility contract.
void expect_v1_digest(const std::string& name,
                      const std::vector<std::uint8_t>& reconstruction) {
  EXPECT_EQ(fnv1a_bytes(reconstruction.data(), reconstruction.size()),
            v1_reconstruction_fnv1a(name))
      << "v1 fixture " << name
      << " no longer decodes to its recorded reconstruction";
}

// Both generations encode the same input under the same bound, so their
// reconstructions may differ only by re-quantization noise: at most one
// bin width (2P) per element, and in practice last-bit rounding.
template <typename Span>
void expect_within_bound(const std::string& name, Span a, Span b,
                         double error_bound) {
  ASSERT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::abs(static_cast<double>(a[i]) -
                              static_cast<double>(b[i]));
    if (d > max_diff) max_diff = d;
  }
  EXPECT_LE(max_diff, 2.0 * error_bound)
      << "v1/v2 reconstructions of " << name << " disagree beyond the bound";
}

void check_dpz_f32(const std::string& name) {
  const GoldenCase c = find_case(name);
  const FloatArray input = golden_f32(c);
  const std::vector<std::uint8_t> v1 =
      read_bytes(golden_path(c.name, ".dpz"));
  const std::vector<std::uint8_t> v2 =
      read_bytes(golden_path(c.name, ".v2.dpz"));

  EXPECT_EQ(dpz_compress(input, golden_config(c)), v2)
      << "re-encoding no longer reproduces " << c.name
      << " — format drift; see tests/make_golden.cpp";
  EXPECT_EQ(dpz_inspect(v1).version, 1);
  EXPECT_EQ(dpz_inspect(v2).version, 2);

  const FloatArray from_v2 = dpz_decompress(v2);
  EXPECT_EQ(from_v2.shape(), input.shape());
  const ErrorStats err =
      compute_error_stats(input.flat(), from_v2.flat());
  EXPECT_GT(err.psnr_db, 30.0) << c.name << " decodes to garbage";

  // Backward compatibility: the legacy archive still decodes to its
  // recorded bytes, and both generations agree to within the bound.
  const FloatArray from_v1 = dpz_decompress(v1);
  EXPECT_EQ(from_v1.shape(), from_v2.shape());
  expect_v1_digest(c.name, float_bytes(from_v1));
  expect_within_bound(c.name, from_v1.flat(), from_v2.flat(),
                      golden_config(c).effective_error_bound());
}

TEST(GoldenArchive, Dpz1DF32Loose) { check_dpz_f32("dpz_1d_f32_loose"); }
TEST(GoldenArchive, Dpz2DF32Strict) { check_dpz_f32("dpz_2d_f32_strict"); }
TEST(GoldenArchive, Dpz3DF32Strict) { check_dpz_f32("dpz_3d_f32_strict"); }

TEST(GoldenArchive, Dpz2DF64Strict) {
  const GoldenCase c = find_case("dpz_2d_f64_strict");
  const DoubleArray input = golden_f64(c);
  const std::vector<std::uint8_t> v1 =
      read_bytes(golden_path(c.name, ".dpz"));
  const std::vector<std::uint8_t> v2 =
      read_bytes(golden_path(c.name, ".v2.dpz"));

  EXPECT_EQ(dpz_compress(input, golden_config(c)), v2)
      << "re-encoding no longer reproduces " << c.name;
  EXPECT_EQ(dpz_inspect(v1).version, 1);
  EXPECT_EQ(dpz_inspect(v2).version, 2);

  const DoubleArray from_v2 = dpz_decompress_f64(v2);
  EXPECT_EQ(from_v2.shape(), input.shape());
  const ErrorStats err =
      compute_error_stats(input.flat(), from_v2.flat());
  EXPECT_GT(err.psnr_db, 30.0) << c.name << " decodes to garbage";

  const DoubleArray from_v1 = dpz_decompress_f64(v1);
  EXPECT_EQ(from_v1.shape(), from_v2.shape());
  expect_v1_digest(c.name, double_bytes(from_v1));
  expect_within_bound(c.name, from_v1.flat(), from_v2.flat(),
                      golden_config(c).effective_error_bound());
}

TEST(GoldenArchive, Chunked2DF32Strict) {
  const GoldenCase c = find_case("chunked_2d_f32_strict");
  const FloatArray input = golden_f32(c);
  const std::vector<std::uint8_t> v1 =
      read_bytes(golden_path(c.name, ".dpz"));
  const std::vector<std::uint8_t> v2 =
      read_bytes(golden_path(c.name, ".v2.dpz"));

  EXPECT_EQ(chunked_compress(input, golden_chunked_config(c)), v2)
      << "re-encoding no longer reproduces " << c.name;
  EXPECT_GT(chunked_frame_count(v2), std::size_t{1})
      << "golden container should hold several frames";
  EXPECT_EQ(chunked_frame_count(v1), chunked_frame_count(v2));

  const FloatArray from_v2 = chunked_decompress(v2);
  EXPECT_EQ(from_v2.shape(), input.shape());
  const ErrorStats err =
      compute_error_stats(input.flat(), from_v2.flat());
  EXPECT_GT(err.psnr_db, 30.0) << c.name << " decodes to garbage";

  const FloatArray from_v1 = chunked_decompress(v1);
  EXPECT_EQ(from_v1.shape(), from_v2.shape());
  expect_v1_digest(c.name, float_bytes(from_v1));
  expect_within_bound(c.name, from_v1.flat(), from_v2.flat(),
                      golden_config(c).effective_error_bound());
}

TEST(GoldenArchive, SharedBasis2DF32Strict) {
  const GoldenCase c = find_case("shared_basis_2d_f32_strict");
  const FloatArray reference = golden_f32(c);
  const FloatArray snapshot = golden_snapshot(c);
  const std::vector<std::uint8_t> v1_blob =
      read_bytes(golden_path(c.name, ".blob"));
  const std::vector<std::uint8_t> v1_archive =
      read_bytes(golden_path(c.name, ".dpz"));
  const std::vector<std::uint8_t> v2_blob =
      read_bytes(golden_path(c.name, ".v2.blob"));
  const std::vector<std::uint8_t> v2_archive =
      read_bytes(golden_path(c.name, ".v2.dpz"));

  const SharedBasisCodec trained =
      SharedBasisCodec::train(reference, golden_config(c));
  EXPECT_EQ(trained.serialize(), v2_blob)
      << "re-training no longer reproduces the golden basis blob";
  EXPECT_EQ(trained.compress(snapshot), v2_archive)
      << "re-encoding no longer reproduces the golden snapshot archive";

  // The committed blob alone must be able to open the committed archive.
  const SharedBasisCodec restored =
      SharedBasisCodec::deserialize(v2_blob);
  const FloatArray decoded = restored.decompress(v2_archive);
  EXPECT_EQ(decoded.shape(), snapshot.shape());
  const ErrorStats err =
      compute_error_stats(snapshot.flat(), decoded.flat());
  EXPECT_GT(err.psnr_db, 30.0) << c.name << " decodes to garbage";
  // And it must agree byte for byte with the trainer's own decode.
  EXPECT_EQ(float_bytes(decoded),
            float_bytes(trained.decompress(v2_archive)));

  // Backward compatibility: the frozen v1 blob still opens the frozen v1
  // snapshot to its recorded bytes, and both generations reconstruct the
  // same data to within the bound.
  const SharedBasisCodec legacy = SharedBasisCodec::deserialize(v1_blob);
  const FloatArray legacy_decoded = legacy.decompress(v1_archive);
  expect_v1_digest(c.name, float_bytes(legacy_decoded));
  expect_within_bound(c.name, legacy_decoded.flat(), decoded.flat(),
                      golden_config(c).effective_error_bound());
  // Cross-generation: a v2 reader holding the v1 basis opens the v2
  // archive (the section framing is per-container, not per-codec). The
  // trained bases differ in their last bits, so compare within bound.
  const FloatArray cross = legacy.decompress(v2_archive);
  expect_within_bound(c.name, cross.flat(), decoded.flat(),
                      golden_config(c).effective_error_bound());
}

TEST(GoldenArchive, HeadersParseAsRecorded) {
  // Header-level invariants the format promises, checked on the
  // committed bytes (no re-encode involved).
  const std::vector<std::uint8_t> loose =
      read_bytes(golden_path("dpz_1d_f32_loose", ".dpz"));
  const DpzArchiveInfo li = dpz_inspect(loose);
  EXPECT_FALSE(li.double_precision);
  EXPECT_FALSE(li.wide_codes);
  EXPECT_DOUBLE_EQ(li.error_bound, 1e-3);
  EXPECT_EQ(li.shape, std::vector<std::size_t>{4096});
  EXPECT_EQ(li.version, 1);

  const std::vector<std::uint8_t> wide =
      read_bytes(golden_path("dpz_2d_f64_strict", ".v2.dpz"));
  const DpzArchiveInfo wi = dpz_inspect(wide);
  EXPECT_TRUE(wi.double_precision);
  EXPECT_TRUE(wi.wide_codes);
  EXPECT_DOUBLE_EQ(wi.error_bound, 1e-4);
  EXPECT_EQ(wi.shape, (std::vector<std::size_t>{64, 72}));
  EXPECT_EQ(wi.version, 2);
}

}  // namespace
}  // namespace dpz
