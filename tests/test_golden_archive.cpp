// Golden-archive format stability: committed archives under tests/golden/
// must (a) be reproduced byte for byte when the same input is re-encoded
// with the same configuration, and (b) decode to a reconstruction that
// matches a fresh encode/decode round trip exactly. Together these pin
// both directions of the format: an encoder change that alters bytes and
// a decoder change that alters reconstructions each fail one arm.
//
// After a DELIBERATE format change, regenerate with tests/make_golden and
// commit the new bytes alongside a docs/FORMAT.md version note.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "golden_common.h"
#include "io/file_io.h"
#include "metrics/metrics.h"

namespace dpz {
namespace {

using namespace dpz::golden;

std::string golden_path(const std::string& name, const char* ext) {
  return std::string(DPZ_GOLDEN_DIR) + "/" + name + ext;
}

std::vector<std::uint8_t> float_bytes(const FloatArray& a) {
  std::vector<std::uint8_t> bytes(a.size() * sizeof(float));
  std::memcpy(bytes.data(), a.flat().data(), bytes.size());
  return bytes;
}

GoldenCase find_case(const std::string& name) {
  for (const GoldenCase& c : golden_cases())
    if (c.name == name) return c;
  ADD_FAILURE() << "unknown golden case " << name;
  return {};
}

void check_dpz_f32(const std::string& name) {
  const GoldenCase c = find_case(name);
  const FloatArray input = golden_f32(c);
  const std::vector<std::uint8_t> committed =
      read_bytes(golden_path(c.name, ".dpz"));

  EXPECT_EQ(dpz_compress(input, golden_config(c)), committed)
      << "re-encoding no longer reproduces " << c.name
      << " — format drift; see tests/make_golden.cpp";

  const FloatArray decoded = dpz_decompress(committed);
  EXPECT_EQ(decoded.shape(), input.shape());
  const ErrorStats err =
      compute_error_stats(input.flat(), decoded.flat());
  EXPECT_GT(err.psnr_db, 30.0) << c.name << " decodes to garbage";
}

TEST(GoldenArchive, Dpz1DF32Loose) { check_dpz_f32("dpz_1d_f32_loose"); }
TEST(GoldenArchive, Dpz2DF32Strict) { check_dpz_f32("dpz_2d_f32_strict"); }
TEST(GoldenArchive, Dpz3DF32Strict) { check_dpz_f32("dpz_3d_f32_strict"); }

TEST(GoldenArchive, Dpz2DF64Strict) {
  const GoldenCase c = find_case("dpz_2d_f64_strict");
  const DoubleArray input = golden_f64(c);
  const std::vector<std::uint8_t> committed =
      read_bytes(golden_path(c.name, ".dpz"));

  EXPECT_EQ(dpz_compress(input, golden_config(c)), committed)
      << "re-encoding no longer reproduces " << c.name;

  const DoubleArray decoded = dpz_decompress_f64(committed);
  EXPECT_EQ(decoded.shape(), input.shape());
  const ErrorStats err =
      compute_error_stats(input.flat(), decoded.flat());
  EXPECT_GT(err.psnr_db, 30.0) << c.name << " decodes to garbage";
}

TEST(GoldenArchive, Chunked2DF32Strict) {
  const GoldenCase c = find_case("chunked_2d_f32_strict");
  const FloatArray input = golden_f32(c);
  const std::vector<std::uint8_t> committed =
      read_bytes(golden_path(c.name, ".dpz"));

  EXPECT_EQ(chunked_compress(input, golden_chunked_config(c)), committed)
      << "re-encoding no longer reproduces " << c.name;
  EXPECT_GT(chunked_frame_count(committed), std::size_t{1})
      << "golden container should hold several frames";

  const FloatArray decoded = chunked_decompress(committed);
  EXPECT_EQ(decoded.shape(), input.shape());
  const ErrorStats err =
      compute_error_stats(input.flat(), decoded.flat());
  EXPECT_GT(err.psnr_db, 30.0) << c.name << " decodes to garbage";
}

TEST(GoldenArchive, SharedBasis2DF32Strict) {
  const GoldenCase c = find_case("shared_basis_2d_f32_strict");
  const FloatArray reference = golden_f32(c);
  const FloatArray snapshot = golden_snapshot(c);
  const std::vector<std::uint8_t> committed_blob =
      read_bytes(golden_path(c.name, ".blob"));
  const std::vector<std::uint8_t> committed_archive =
      read_bytes(golden_path(c.name, ".dpz"));

  const SharedBasisCodec trained =
      SharedBasisCodec::train(reference, golden_config(c));
  EXPECT_EQ(trained.serialize(), committed_blob)
      << "re-training no longer reproduces the golden basis blob";
  EXPECT_EQ(trained.compress(snapshot), committed_archive)
      << "re-encoding no longer reproduces the golden snapshot archive";

  // The committed blob alone must be able to open the committed archive.
  const SharedBasisCodec restored =
      SharedBasisCodec::deserialize(committed_blob);
  const FloatArray decoded = restored.decompress(committed_archive);
  EXPECT_EQ(decoded.shape(), snapshot.shape());
  const ErrorStats err =
      compute_error_stats(snapshot.flat(), decoded.flat());
  EXPECT_GT(err.psnr_db, 30.0) << c.name << " decodes to garbage";
  // And it must agree byte for byte with the trainer's own decode.
  EXPECT_EQ(float_bytes(decoded),
            float_bytes(trained.decompress(committed_archive)));
}

TEST(GoldenArchive, HeadersParseAsRecorded) {
  // Header-level invariants the format promises, checked on the
  // committed bytes (no re-encode involved).
  const std::vector<std::uint8_t> loose =
      read_bytes(golden_path("dpz_1d_f32_loose", ".dpz"));
  const DpzArchiveInfo li = dpz_inspect(loose);
  EXPECT_FALSE(li.double_precision);
  EXPECT_FALSE(li.wide_codes);
  EXPECT_DOUBLE_EQ(li.error_bound, 1e-3);
  EXPECT_EQ(li.shape, std::vector<std::size_t>{4096});

  const std::vector<std::uint8_t> wide =
      read_bytes(golden_path("dpz_2d_f64_strict", ".dpz"));
  const DpzArchiveInfo wi = dpz_inspect(wide);
  EXPECT_TRUE(wi.double_precision);
  EXPECT_TRUE(wi.wide_codes);
  EXPECT_DOUBLE_EQ(wi.error_bound, 1e-4);
  EXPECT_EQ(wi.shape, (std::vector<std::size_t>{64, 72}));
}

}  // namespace
}  // namespace dpz
