// Test-failure flight dump: when DPZ_FLIGHT_DUMP_DIR is set, any failed
// test writes the flight-recorder ring to
// $DPZ_FLIGHT_DUMP_DIR/<suite>.<test>.flight.jsonl before the next test
// clears it. The sanitizer CI job sets the variable and uploads the
// directory as an artifact, so a red run ships its own breadcrumbs.
// Linked into every test binary (tests/CMakeLists.txt); inert without
// the environment variable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/log.h"

namespace dpz {
namespace {

class FlightDumpListener : public ::testing::EmptyTestEventListener {
 public:
  explicit FlightDumpListener(std::string dir) : dir_(std::move(dir)) {}

 private:
  void OnTestEnd(const ::testing::TestInfo& info) override {
    const ::testing::TestResult* result = info.result();
    if (result == nullptr || result->Passed()) return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    const std::string path = dir_ + "/" + info.test_suite_name() + "." +
                             info.name() + ".flight.jsonl";
    std::ofstream out(path);
    if (out.is_open()) obs::FlightRecorder::instance().write_jsonl(out);
  }

  std::string dir_;
};

[[maybe_unused]] const bool g_registered = [] {
  const char* dir = std::getenv("DPZ_FLIGHT_DUMP_DIR");
  if (dir == nullptr || dir[0] == '\0') return false;
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new FlightDumpListener(dir));
  return true;
}();

}  // namespace
}  // namespace dpz
