// Property-based sweeps over the full compressor grid: every combination
// of (shape class, scheme, selection method, sampling) must round-trip
// with a self-consistent archive, monotone quality behavior, and intact
// invariants. These tests are deliberately broad rather than deep — each
// configuration exercises a different combination of code paths (layout
// divisor vs padding, knee vs TVE, full vs truncated eigensolver, 1- vs
// 2-byte codes).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/dctzlike.h"
#include "baselines/szlike.h"
#include "baselines/zfplike.h"
#include "core/dpz.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

enum class ShapeClass {
  k1dPowerOfTwo,   // 4096
  k1dOddDivisor,   // 6000 (divisor-pair path)
  k1dPadded,       // 5003 (prime: padding fallback)
  k2dRect,         // 48 x 112
  k3dCube,         // 18 x 18 x 18
};

FloatArray make_field(ShapeClass shape_class, std::uint64_t seed) {
  std::vector<std::size_t> shape;
  switch (shape_class) {
    case ShapeClass::k1dPowerOfTwo: shape = {4096}; break;
    case ShapeClass::k1dOddDivisor: shape = {6000}; break;
    case ShapeClass::k1dPadded: shape = {5003}; break;
    case ShapeClass::k2dRect: shape = {48, 112}; break;
    case ShapeClass::k3dCube: shape = {18, 18, 18}; break;
  }
  FloatArray a(shape);
  Rng rng(seed);
  const double f = rng.uniform(0.005, 0.02);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(f * static_cast<double>(i)) +
                              0.5 * std::cos(3.1 * f * static_cast<double>(i)) +
                              0.003 * rng.normal());
  return a;
}

using PipelineParams =
    std::tuple<ShapeClass, DpzScheme, KSelectionMethod, bool /*sampling*/>;

class PipelineGridTest : public ::testing::TestWithParam<PipelineParams> {};

TEST_P(PipelineGridTest, RoundTripInvariantsHold) {
  const auto [shape_class, scheme, selection, sampling] = GetParam();
  const FloatArray data = make_field(shape_class, 42);

  DpzConfig config;
  config.scheme = scheme;
  config.selection = selection;
  config.tve = 0.9999;
  config.use_sampling = sampling;

  DpzStats stats;
  const auto archive = dpz_compress(data, config, &stats);
  const FloatArray back = dpz_decompress(archive);

  // Shape and size invariants.
  ASSERT_EQ(back.shape(), data.shape());
  EXPECT_EQ(stats.archive_bytes, archive.size());
  EXPECT_EQ(stats.original_bytes, data.size() * sizeof(float));

  if (!stats.stored_raw) {
    EXPECT_GE(stats.k, 1U);
    EXPECT_LE(stats.k, stats.layout.m);
    EXPECT_LT(stats.layout.m, stats.layout.n);
    EXPECT_GE(stats.layout.padded_total(), data.size());
    // Never expands the input (the fallback guarantees this).
  }
  EXPECT_LE(archive.size(), data.size() * sizeof(float) + 256);

  // Quality floor: sinusoid + small noise must reconstruct reasonably.
  const ErrorStats err = compute_error_stats(data.flat(), back.flat());
  EXPECT_GT(err.psnr_db, 25.0);

  // The archive header must agree with the stats.
  const DpzArchiveInfo info = dpz_inspect(archive);
  EXPECT_EQ(info.stored_raw, stats.stored_raw);
  if (!info.stored_raw) {
    EXPECT_EQ(info.k, stats.k);
    EXPECT_EQ(info.layout.m, stats.layout.m);
  }
}

TEST_P(PipelineGridTest, ArchiveIsDeterministic) {
  const auto [shape_class, scheme, selection, sampling] = GetParam();
  const FloatArray data = make_field(shape_class, 7);
  DpzConfig config;
  config.scheme = scheme;
  config.selection = selection;
  config.tve = 0.999;
  config.use_sampling = sampling;
  EXPECT_EQ(dpz_compress(data, config), dpz_compress(data, config));
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, PipelineGridTest,
    ::testing::Combine(
        ::testing::Values(ShapeClass::k1dPowerOfTwo,
                          ShapeClass::k1dOddDivisor, ShapeClass::k1dPadded,
                          ShapeClass::k2dRect, ShapeClass::k3dCube),
        ::testing::Values(DpzScheme::kLoose, DpzScheme::kStrict),
        ::testing::Values(KSelectionMethod::kTveThreshold,
                          KSelectionMethod::kKneePoint),
        ::testing::Values(false, true)));

// ---- cross-compressor properties -------------------------------------------

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, EveryCompressorRoundTripsRandomSmoothFields) {
  const FloatArray data = make_field(ShapeClass::k2dRect, GetParam());

  {
    const auto archive = dpz_compress(data, DpzConfig::strict());
    EXPECT_EQ(dpz_decompress(archive).shape(), data.shape());
  }
  {
    SzLikeConfig config;
    config.relative_bound = 1e-3;
    const FloatArray back =
        szlike_decompress(szlike_compress(data, config));
    const double eb = config.resolve_bound(data.value_range());
    EXPECT_LE(compute_error_stats(data.flat(), back.flat()).max_abs_error,
              eb * (1.0 + 1e-9));
  }
  {
    DctzLikeConfig config;
    config.relative_bound = 1e-4;
    const FloatArray back =
        dctzlike_decompress(dctzlike_compress(data, config));
    EXPECT_EQ(back.shape(), data.shape());
  }
  {
    ZfpLikeConfig config;
    config.precision = 20;
    const FloatArray back =
        zfplike_decompress(zfplike_compress(data, config));
    EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 60.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- header fuzzing -----------------------------------------------------------

TEST(ArchiveFuzz, SingleByteHeaderCorruptionNeverCrashes) {
  const FloatArray data = make_field(ShapeClass::k2dRect, 99);
  const auto archive = dpz_compress(data, DpzConfig::strict());

  // Flip each byte of the header region in turn; decompression must either
  // succeed (benign flip) or throw a dpz::Error — never crash or hang.
  const std::size_t header_span = std::min<std::size_t>(64, archive.size());
  for (std::size_t pos = 0; pos < header_span; ++pos) {
    auto corrupted = archive;
    corrupted[pos] ^= 0xFF;
    try {
      const FloatArray out = dpz_decompress(corrupted);
      EXPECT_LE(out.size(), data.size() * 4 + 1024);
    } catch (const Error&) {
      // expected for most flips
    }
  }
}

TEST(ArchiveFuzz, TruncationAtEveryQuarterThrows) {
  const FloatArray data = make_field(ShapeClass::k1dPowerOfTwo, 98);
  const auto archive = dpz_compress(data, DpzConfig::loose());
  for (const double frac : {0.1, 0.25, 0.5, 0.75, 0.95}) {
    auto truncated = archive;
    truncated.resize(static_cast<std::size_t>(
        frac * static_cast<double>(archive.size())));
    EXPECT_THROW(dpz_decompress(truncated), Error) << "fraction " << frac;
  }
}

}  // namespace
}  // namespace dpz
