// Unit tests for the byte-shuffle filter: round-trips, layout, and the
// compressibility gain it exists for.
#include <gtest/gtest.h>

#include <cstring>

#include "codec/shuffle.h"
#include "codec/zlib_codec.h"
#include "util/rng.h"

namespace dpz {
namespace {

TEST(Shuffle, KnownLayoutStride4) {
  const std::vector<std::uint8_t> data{0, 1, 2, 3, 10, 11, 12, 13};
  const auto shuffled = shuffle_bytes(data, 4);
  const std::vector<std::uint8_t> expected{0, 10, 1, 11, 2, 12, 3, 13};
  EXPECT_EQ(shuffled, expected);
}

TEST(Shuffle, RoundTripVariousStrides) {
  Rng rng(1);
  for (const std::size_t stride : {1UL, 2UL, 4UL, 8UL}) {
    std::vector<std::uint8_t> data(stride * 257);
    for (auto& b : data)
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    EXPECT_EQ(unshuffle_bytes(shuffle_bytes(data, stride), stride), data)
        << "stride " << stride;
  }
}

TEST(Shuffle, StrideOneIsIdentity) {
  const std::vector<std::uint8_t> data{5, 4, 3, 2, 1};
  EXPECT_EQ(shuffle_bytes(data, 1), data);
}

TEST(Shuffle, EmptyInput) {
  EXPECT_TRUE(shuffle_bytes({}, 4).empty());
  EXPECT_TRUE(unshuffle_bytes({}, 4).empty());
}

TEST(Shuffle, RejectsPartialElements) {
  const std::vector<std::uint8_t> data(10, 0);
  EXPECT_THROW(shuffle_bytes(data, 4), InvalidArgument);
  EXPECT_THROW(unshuffle_bytes(data, 3), InvalidArgument);
}

TEST(Shuffle, ImprovesZlibOnSmoothFloats) {
  // The reason the filter exists: floats with similar magnitude share
  // exponent bytes, which zlib can only exploit once they are contiguous.
  std::vector<float> values(4096);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = 0.001F * static_cast<float>(i) + 0.5F;
  std::vector<std::uint8_t> raw(values.size() * sizeof(float));
  std::memcpy(raw.data(), values.data(), raw.size());

  const auto plain = zlib_compress(raw);
  const auto shuffled = zlib_compress(shuffle_bytes(raw, sizeof(float)));
  EXPECT_LT(shuffled.size(), plain.size());
}

}  // namespace
}  // namespace dpz
