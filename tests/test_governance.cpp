// Resource-governance suite: memory budgets, deadlines, and cooperative
// cancellation across every pipeline (util/resource.h).
//
// The contract under test, end to end:
//   * MemoryArena accounts and rejects; governors nest and charge the
//     whole chain; all-default limits install nothing.
//   * A forged archive claiming ~1 TB decoded is rejected by the decode
//     pre-flight admission check under a 64 MB budget — with
//     kResourceExhausted and exactly one admission_rejected count —
//     before any allocation of that size is attempted.
//   * Cancellation requested mid-compress aborts within 250 ms; an
//     expired deadline aborts at the first checkpoint. Each trip is
//     counted exactly once regardless of worker count.
//   * A seeded sweep failing the Nth charged allocation with
//     std::bad_alloc proves every pipeline either completes byte-exactly
//     or fails clean (no leaks under ASan, no torn state).
//   * Limits that never trip change nothing: archives and
//     reconstructions are byte-identical with and without a governor.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "codec/bytes.h"
#include "core/chunked.h"
#include "core/dpz.h"
#include "core/shared_basis.h"
#include "core/verify.h"
#include "io/fault_injection.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/crc32c.h"
#include "util/error.h"
#include "util/resource.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray smooth_f32(std::vector<std::size_t> shape, std::uint64_t seed) {
  FloatArray a(std::move(shape));
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.02) +
                              0.01 * rng.normal());
  return a;
}

// ---------------------------------------------------------------------------
// MemoryArena

TEST(MemoryArena, AccountsChargesAndReleases) {
  MemoryArena arena(1000);
  arena.charge(400);
  EXPECT_EQ(arena.in_use(), 400U);
  arena.charge(500);
  EXPECT_EQ(arena.in_use(), 900U);
  EXPECT_EQ(arena.peak(), 900U);
  arena.release(500);
  EXPECT_EQ(arena.in_use(), 400U);
  EXPECT_EQ(arena.peak(), 900U) << "peak is a high-water mark";
  arena.release(400);
  EXPECT_EQ(arena.in_use(), 0U);
}

TEST(MemoryArena, RejectsOverBudgetWithoutCorruptingState) {
  MemoryArena arena(1000);
  arena.charge(900);
  EXPECT_THROW(arena.charge(101), ResourceExhausted);
  EXPECT_EQ(arena.in_use(), 900U) << "failed charge must not stick";
  arena.charge(100);  // exactly to the brim is fine
  EXPECT_EQ(arena.in_use(), 1000U);
  arena.release(1000);
}

TEST(MemoryArena, ZeroBudgetOnlyAccounts) {
  MemoryArena arena(0);
  arena.charge(1ULL << 40);  // would dwarf any real budget
  EXPECT_EQ(arena.peak(), 1ULL << 40);
  arena.release(1ULL << 40);
}

// ---------------------------------------------------------------------------
// CancelToken / CancelSource

TEST(CancelToken, DefaultTokenIsInertAndInvalid) {
  const CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancel_requested());
}

TEST(CancelToken, CopiesShareTheSourceFlag) {
  CancelSource source;
  const CancelToken a = source.token();
  const CancelToken b = a;
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(b.cancel_requested());
  source.request_cancel();
  EXPECT_TRUE(a.cancel_requested());
  EXPECT_TRUE(b.cancel_requested());
  EXPECT_TRUE(source.cancel_requested());
}

// ---------------------------------------------------------------------------
// GovernorScope installation and nesting

TEST(GovernorScope, AllDefaultLimitsInstallNothing) {
  EXPECT_EQ(current_governor(), nullptr);
  const ResourceLimits none;
  EXPECT_FALSE(none.enabled());
  const GovernorScope scope(none);
  EXPECT_EQ(current_governor(), nullptr)
      << "ungoverned scopes must not shadow (chunked frames rely on it)";
}

TEST(GovernorScope, InstallsAndRestoresOnExit) {
  ResourceLimits limits;
  limits.max_memory_bytes = 1 << 20;
  {
    const GovernorScope scope(limits);
    ASSERT_NE(current_governor(), nullptr);
    EXPECT_EQ(current_governor()->limits().max_memory_bytes,
              std::uint64_t{1} << 20);
  }
  EXPECT_EQ(current_governor(), nullptr);
}

TEST(GovernorScope, NestedScopesChargeTheWholeChain) {
  ResourceLimits outer;
  outer.max_memory_bytes = 1000;
  ResourceLimits inner;
  inner.max_memory_bytes = 600;

  const GovernorScope outer_scope(outer);
  const ResourceGovernor* outer_gov = current_governor();
  // A reservation made before the inner scope exists: only the outer
  // arena sees it, which is what lets the chain check below diverge.
  const ScopedCharge preexisting(500);
  {
    const GovernorScope inner_scope(inner);
    const ResourceGovernor* inner_gov = current_governor();
    ASSERT_NE(inner_gov, outer_gov);

    const ScopedCharge charge(450);
    EXPECT_EQ(inner_gov->arena().in_use(), 450U);
    EXPECT_EQ(outer_gov->arena().in_use(), 950U)
        << "a nested charge must land on every arena in the chain";

    // Fits the inner budget (450+100 <= 600) but busts the outer one
    // (950+100 > 1000): the tightest chain member wins.
    EXPECT_THROW(ScopedCharge(100), ResourceExhausted)
        << "inner headroom must not override the outer budget";
    EXPECT_EQ(inner_gov->arena().in_use(), 450U)
        << "rejected chain charges must roll back completely";
    EXPECT_EQ(outer_gov->arena().in_use(), 950U);
  }
  EXPECT_EQ(outer_gov->arena().in_use(), 500U);
  EXPECT_EQ(current_governor(), outer_gov);
}

TEST(ScopedCharge, CopyRechargesAndMoveTransfers) {
  ResourceLimits limits;
  limits.max_memory_bytes = 1000;
  const GovernorScope scope(limits);
  const ResourceGovernor* gov = current_governor();

  ScopedCharge a(600);
  EXPECT_EQ(gov->arena().in_use(), 600U);
  EXPECT_THROW(ScopedCharge{a}, ResourceExhausted)
      << "a copy is a second allocation and must be charged as one";

  ScopedCharge b(std::move(a));
  EXPECT_EQ(gov->arena().in_use(), 600U)
      << "a move transfers the reservation without re-charging";
  b.reset();
  EXPECT_EQ(gov->arena().in_use(), 0U);
  b.reset();  // idempotent
}

TEST(ScopedCharge, ReservationOutlivesItsScope) {
  ResourceLimits limits;
  limits.max_memory_bytes = 1000;
  ScopedCharge escaped;
  {
    const GovernorScope scope(limits);
    escaped = ScopedCharge(200);
  }
  // The charge keeps its governor alive past the scope's death; releasing
  // it now must not touch freed memory (ASan would object).
  escaped.reset();
}

// ---------------------------------------------------------------------------
// Pre-flight admission: the zip-bomb rejection

// Forges a structurally valid v2 DPZ header claiming a 2^38-element
// (1 TiB decoded) single-precision pipeline archive, with a correct
// header CRC and empty sections. The geometry satisfies every invariant
// the decoder checks, so only the admission check stands between the
// header and terabyte-sized allocations.
std::vector<std::uint8_t> forge_terabyte_claim() {
  ByteWriter w;
  w.put_u32(0x315A5044);  // "DPZ1"
  w.put_u8(2);            // format v2
  w.put_u8(0);            // flags: f32, narrow codes, not stored
  w.put_f64(1e-3);        // error bound
  w.put_u8(1);            // rank
  w.put_u64(1ULL << 38);  // one extent: 2^38 values = 1 TiB of f32
  w.put_u64(1ULL << 18);  // m
  w.put_u64(1ULL << 20);  // n (m < n, m * n == total)
  w.put_u64(1ULL << 38);  // original total
  w.put_u32(1);           // k
  w.put_u64(0);           // outlier count
  w.put_u32(crc32c(w.bytes()));  // reseal the forged header
  // Three empty sections (side/codes/outliers): raw size, section CRC,
  // zero-length blob. Admission fires before any of them is read.
  for (int s = 0; s < 3; ++s) {
    ByteWriter section;
    section.put_u64(0);
    const std::uint32_t crc =
        crc32c(std::span<const std::uint8_t>{}, crc32c(section.bytes()));
    w.put_u64(0);
    w.put_u32(crc);
    w.put_u64(0);
  }
  return w.take();
}

TEST(Admission, TerabyteClaimIsRejectedUnderSmallBudget) {
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();

  const std::vector<std::uint8_t> bomb = forge_terabyte_claim();
  ASSERT_LT(bomb.size(), 1024U) << "the bomb itself must be tiny";

  // The claim prices at >= 1 TiB decoded output alone.
  const std::optional<DecodePreflight> pf = decode_preflight(bomb);
  ASSERT_TRUE(pf.has_value());
  EXPECT_GE(pf->decoded_bytes, 1ULL << 40);
  EXPECT_GE(pf->peak_bytes, pf->decoded_bytes);

  ResourceLimits limits;
  limits.max_memory_bytes = 64ULL << 20;  // 64 MB
  try {
    (void)dpz_decompress(bomb, 0, 1, limits);
    FAIL() << "a terabyte claim decoded under a 64 MB budget";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kResourceExhausted) << e.what();
  }

  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kAdmissionRejected), 1U);
  EXPECT_EQ(snap.counter(obs::Counter::kCancelledOps), 0U);
  EXPECT_EQ(snap.counter(obs::Counter::kDeadlineExceededOps), 0U);
}

TEST(Admission, GenuineArchiveAdmittedWhenItFitsRejectedWhenNot) {
  const FloatArray input = smooth_f32({64, 96}, 31);
  const std::vector<std::uint8_t> archive =
      dpz_compress(input, DpzConfig::strict());

  const std::optional<DecodePreflight> pf = decode_preflight(archive);
  ASSERT_TRUE(pf.has_value());
  EXPECT_EQ(pf->decoded_bytes, input.size() * sizeof(float));

  ResourceLimits generous;
  generous.max_memory_bytes = 256ULL << 20;
  const FloatArray out = dpz_decompress(archive, 0, 1, generous);
  ASSERT_EQ(out.shape(), input.shape());

  ResourceLimits tiny;
  tiny.max_memory_bytes = 1024;  // smaller than the output alone
  try {
    (void)dpz_decompress(archive, 0, 1, tiny);
    FAIL() << "decode fit in a 1 KB budget";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kResourceExhausted);
  }
}

TEST(Admission, ChunkedContainerIsPricedBeforeFrameDecode) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  const FloatArray input = smooth_f32({3 * 4096}, 32);
  const std::vector<std::uint8_t> container =
      chunked_compress(input, config);

  const std::optional<DecodePreflight> pf = decode_preflight(container);
  ASSERT_TRUE(pf.has_value());
  EXPECT_EQ(pf->decoded_bytes, input.size() * sizeof(float));
  EXPECT_GT(pf->peak_bytes, pf->decoded_bytes);

  ChunkedConfig governed = config;
  governed.dpz.limits.max_memory_bytes = 4096;  // output alone is 48 KB
  try {
    (void)chunked_decompress(container, governed);
    FAIL() << "container decode fit in a 4 KB budget";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kResourceExhausted);
  }

  // Best-effort must not downgrade a governance abort to "lost frames".
  governed.decode_policy = DecodePolicy::kBestEffort;
  EXPECT_THROW((void)chunked_decompress(container, governed),
               ResourceExhausted);
}

TEST(Admission, PreflightReturnsNulloptForUnpriceableBytes) {
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  EXPECT_FALSE(decode_preflight(garbage).has_value());
  EXPECT_FALSE(decode_preflight({}).has_value());
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation

TEST(Deadline, ExpiredDeadlineAbortsAtFirstCheckpoint) {
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();

  DpzConfig config = DpzConfig::strict();
  config.limits.deadline_ns = 1;  // epoch + 1ns: expired long ago
  config.threads = 2;             // workers poll too; count stays 1
  try {
    (void)dpz_compress(smooth_f32({64, 96}, 41), config);
    FAIL() << "compress ran past an expired deadline";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded) << e.what();
  }
  EXPECT_EQ(obs::MetricsRegistry::instance().snapshot().counter(
                obs::Counter::kDeadlineExceededOps),
            1U)
      << "a tripped deadline is reported exactly once per operation";
}

TEST(Cancel, PreCancelledTokenAbortsImmediately) {
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();

  CancelSource source;
  source.request_cancel();
  DpzConfig config = DpzConfig::strict();
  config.limits.cancel = source.token();
  try {
    (void)dpz_compress(smooth_f32({64, 96}, 42), config);
    FAIL() << "compress ran with a pre-cancelled token";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled) << e.what();
  }
  EXPECT_EQ(obs::MetricsRegistry::instance().snapshot().counter(
                obs::Counter::kCancelledOps),
            1U);
}

TEST(Cancel, MidCompressCancelReturnsWithinLatencyBound) {
  // The acceptance bound: a cancel requested while a compress is in
  // flight must surface within 250 ms. The input is sized so the
  // pipeline is still working when the cancel lands; if the machine is
  // fast enough to finish first, the run proves nothing and is retried
  // with a doubled input (never a spurious failure).
  using clock = std::chrono::steady_clock;
  std::size_t side = 512;
  for (int attempt = 0; attempt < 4; ++attempt, side *= 2) {
    const FloatArray input = smooth_f32({side, side}, 43);
    CancelSource source;
    DpzConfig config = DpzConfig::strict();
    config.limits.cancel = source.token();

    clock::time_point cancelled_at;
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      cancelled_at = clock::now();
      source.request_cancel();
    });
    bool aborted = false;
    try {
      (void)dpz_compress(input, config);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), StatusCode::kCancelled) << e.what();
      aborted = true;
    }
    const clock::time_point returned_at = clock::now();
    canceller.join();
    if (!aborted) continue;  // finished before the cancel landed

    const auto latency =
        std::chrono::duration_cast<std::chrono::milliseconds>(returned_at -
                                                              cancelled_at);
    EXPECT_LE(latency.count(), 250)
        << "cancel-to-return latency out of bound at side " << side;
    return;
  }
  FAIL() << "compress always outran a 15 ms cancel; input sizing is broken";
}

TEST(Cancel, SharedBasisPipelineHonoursCancellation) {
  const FloatArray train_input = smooth_f32({96, 96}, 44);
  SharedBasisCodec codec =
      SharedBasisCodec::train(train_input, DpzConfig::strict());

  CancelSource source;
  source.request_cancel();
  ResourceLimits limits;
  limits.cancel = source.token();
  codec.set_limits(limits);
  try {
    (void)codec.compress(smooth_f32({96, 96}, 45));
    FAIL() << "shared-basis compress ignored its cancel token";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
  codec.set_limits(ResourceLimits{});
  EXPECT_FALSE(codec.limits().enabled());
}

// ---------------------------------------------------------------------------
// Allocation-fault sweep: fail the Nth charged allocation

// Sweeps alloc_fail_at over every charged allocation the operation
// makes (threads = 1 so charges land on this thread), asserting each
// run either throws std::bad_alloc cleanly or completes byte-exactly.
// Returns how many allocation points the sweep covered.
std::uint64_t sweep_alloc_faults(
    const std::function<std::vector<std::uint8_t>()>& op,
    const std::vector<std::uint8_t>& reference) {
  for (std::uint64_t nth = 1; nth <= 10000; ++nth) {
    io::FaultPlan plan;
    plan.alloc_fail_at = nth;
    const io::ScopedFaultPlan guard(plan);
    try {
      const std::vector<std::uint8_t> out = op();
      EXPECT_EQ(out, reference)
          << "a surviving run diverged at fault index " << nth;
      return nth - 1;  // ran out of allocation points: sweep complete
    } catch (const std::bad_alloc&) {
      // Clean failure at this allocation point; ASan verifies no leak.
    }
  }
  ADD_FAILURE() << "pipeline made more than 10000 charged allocations";
  return 0;
}

template <typename T>
std::vector<std::uint8_t> value_bytes(const NdArray<T>& a) {
  std::vector<std::uint8_t> bytes(a.size() * sizeof(T));
  std::memcpy(bytes.data(), a.flat().data(), bytes.size());
  return bytes;
}

TEST(AllocFaults, DpzPipelineFailsCleanAtEveryAllocationPoint) {
  ResourceLimits limits;
  limits.max_memory_bytes = 1ULL << 30;  // governed, never the constraint
  DpzConfig config = DpzConfig::strict();
  config.limits = limits;
  config.threads = 1;
  const FloatArray input = smooth_f32({48, 64}, 51);

  const std::vector<std::uint8_t> archive = dpz_compress(input, config);
  const std::uint64_t compress_points =
      sweep_alloc_faults([&] { return dpz_compress(input, config); },
                         archive);
  EXPECT_GT(compress_points, 0U) << "compress charges no allocations";

  const std::vector<std::uint8_t> decoded =
      value_bytes(dpz_decompress(archive, 0, 1, limits));
  const std::uint64_t decode_points = sweep_alloc_faults(
      [&] { return value_bytes(dpz_decompress(archive, 0, 1, limits)); },
      decoded);
  EXPECT_GT(decode_points, 0U) << "decode charges no allocations";
}

TEST(AllocFaults, ChunkedPipelineFailsCleanAtEveryAllocationPoint) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  config.threads = 1;
  config.dpz.threads = 1;
  config.dpz.limits.max_memory_bytes = 1ULL << 30;
  const FloatArray input = smooth_f32({2 * 4096}, 52);

  const std::vector<std::uint8_t> container =
      chunked_compress(input, config);
  EXPECT_GT(sweep_alloc_faults(
                [&] { return chunked_compress(input, config); }, container),
            0U);

  const std::vector<std::uint8_t> decoded =
      value_bytes(chunked_decompress(container, config));
  EXPECT_GT(
      sweep_alloc_faults(
          [&] { return value_bytes(chunked_decompress(container, config)); },
          decoded),
      0U);
}

TEST(AllocFaults, SharedBasisPipelineFailsCleanAtEveryAllocationPoint) {
  ResourceLimits limits;
  limits.max_memory_bytes = 1ULL << 30;
  DpzConfig train_config = DpzConfig::strict();
  train_config.threads = 1;
  const FloatArray train_input = smooth_f32({96, 96}, 53);
  const FloatArray snapshot_input = smooth_f32({96, 96}, 54);

  SharedBasisCodec codec =
      SharedBasisCodec::train(train_input, train_config);
  codec.set_limits(limits);

  const std::vector<std::uint8_t> snapshot =
      codec.compress(snapshot_input);
  EXPECT_GT(sweep_alloc_faults([&] { return codec.compress(snapshot_input); },
                               snapshot),
            0U);

  const std::vector<std::uint8_t> decoded =
      value_bytes(codec.decompress(snapshot));
  EXPECT_GT(sweep_alloc_faults(
                [&] { return value_bytes(codec.decompress(snapshot)); },
                decoded),
            0U);
}

// ---------------------------------------------------------------------------
// Determinism: limits that never trip change nothing

TEST(GovernedDeterminism, UnexercisedLimitsAreByteInvisible) {
  const FloatArray input = smooth_f32({64, 96}, 61);

  const std::vector<std::uint8_t> plain =
      dpz_compress(input, DpzConfig::strict());

  CancelSource never_cancelled;
  DpzConfig governed = DpzConfig::strict();
  governed.limits.max_memory_bytes = 1ULL << 30;
  governed.limits.deadline_ns = ResourceLimits::deadline_after_ms(60000.0);
  governed.limits.cancel = never_cancelled.token();
  const std::vector<std::uint8_t> limited = dpz_compress(input, governed);

  EXPECT_EQ(plain, limited)
      << "resource limits must never change archive bytes";
  EXPECT_EQ(value_bytes(dpz_decompress(plain)),
            value_bytes(dpz_decompress(limited, 0, 0, governed.limits)))
      << "resource limits must never change reconstruction bytes";
}

TEST(GovernedDeterminism, ChunkedContainerBytesUnchangedUnderLimits) {
  const FloatArray input = smooth_f32({3 * 4096}, 62);
  ChunkedConfig plain;
  plain.chunk_values = 4096;
  ChunkedConfig governed = plain;
  governed.dpz.limits.max_memory_bytes = 1ULL << 30;
  EXPECT_EQ(chunked_compress(input, plain),
            chunked_compress(input, governed));
}

}  // namespace
}  // namespace dpz
