// Regenerates the committed golden archives under tests/golden/.
//
// Run after a DELIBERATE format change, from the build directory:
//   ./tests/make_golden <repo>/tests/golden
// then commit the new bytes together with the format change and a
// docs/FORMAT.md version note. test_golden_archive.cpp fails loudly when
// the bytes drift without this step.
//
// The generator writes the CURRENT format as <name>.v2.dpz (and .v2.blob
// for the shared basis). The plain <name>.dpz / <name>.blob files are
// FROZEN v1 fixtures from before checksums existed — the current encoder
// cannot reproduce them, and they must never be regenerated or deleted:
// they are the backward-compatibility evidence that v1 archives keep
// decoding byte-exactly. After writing, the tool decodes each frozen v1
// fixture and prints its reconstruction digest; those must match the
// table in golden_common.h (v1_reconstruction_fnv1a) and only ever
// change with a deliberate DECODER change.
#include <iostream>

#include "golden_common.h"
#include "io/file_io.h"

int main(int argc, char** argv) {
  using namespace dpz;
  using namespace dpz::golden;
  if (argc != 2) {
    std::cerr << "usage: make_golden <output-dir>\n";
    return 2;
  }
  const std::string dir = argv[1];
  for (const GoldenCase& c : golden_cases()) {
    switch (c.kind) {
      case Kind::kDpzF32:
        write_bytes(dir + "/" + c.name + ".v2.dpz",
                    dpz_compress(golden_f32(c), golden_config(c)));
        break;
      case Kind::kDpzF64:
        write_bytes(dir + "/" + c.name + ".v2.dpz",
                    dpz_compress(golden_f64(c), golden_config(c)));
        break;
      case Kind::kChunked:
        write_bytes(dir + "/" + c.name + ".v2.dpz",
                    chunked_compress(golden_f32(c),
                                     golden_chunked_config(c)));
        break;
      case Kind::kSharedBasis: {
        const SharedBasisCodec codec =
            SharedBasisCodec::train(golden_f32(c), golden_config(c));
        write_bytes(dir + "/" + c.name + ".v2.blob", codec.serialize());
        write_bytes(dir + "/" + c.name + ".v2.dpz",
                    codec.compress(golden_snapshot(c)));
        break;
      }
    }
    std::cout << "wrote " << dir << "/" << c.name << "\n";
  }

  // Reader-side digests of the frozen v1 fixtures, for cross-checking
  // (and, after a deliberate decoder change, updating) the table in
  // golden_common.h.
  for (const GoldenCase& c : golden_cases()) {
    const std::string v1_path = dir + "/" + c.name + ".dpz";
    std::uint64_t digest = 0;
    switch (c.kind) {
      case Kind::kDpzF32: {
        const FloatArray a = dpz_decompress(read_bytes(v1_path));
        digest = fnv1a_bytes(a.flat().data(), a.size() * sizeof(float));
        break;
      }
      case Kind::kDpzF64: {
        const DoubleArray a = dpz_decompress_f64(read_bytes(v1_path));
        digest = fnv1a_bytes(a.flat().data(), a.size() * sizeof(double));
        break;
      }
      case Kind::kChunked: {
        const FloatArray a = chunked_decompress(read_bytes(v1_path));
        digest = fnv1a_bytes(a.flat().data(), a.size() * sizeof(float));
        break;
      }
      case Kind::kSharedBasis: {
        const SharedBasisCodec legacy = SharedBasisCodec::deserialize(
            read_bytes(dir + "/" + c.name + ".blob"));
        const FloatArray a = legacy.decompress(read_bytes(v1_path));
        digest = fnv1a_bytes(a.flat().data(), a.size() * sizeof(float));
        break;
      }
    }
    const bool match = digest == v1_reconstruction_fnv1a(c.name);
    std::cout << "v1 digest " << c.name << " = " << digest << "ULL"
              << (match ? " (matches golden_common.h)"
                        : " (MISMATCH vs golden_common.h)")
              << "\n";
  }
  return 0;
}
