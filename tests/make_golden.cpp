// Regenerates the committed golden archives under tests/golden/.
//
// Run after a DELIBERATE format change, from the build directory:
//   ./tests/make_golden <repo>/tests/golden
// then commit the new bytes together with the format change and a
// docs/FORMAT.md version note. test_golden_archive.cpp fails loudly when
// the bytes drift without this step.
//
// The generator writes the CURRENT format as <name>.v2.dpz (and .v2.blob
// for the shared basis). The plain <name>.dpz / <name>.blob files are
// FROZEN v1 fixtures from before checksums existed — the current encoder
// cannot reproduce them, and they must never be regenerated or deleted:
// they are the backward-compatibility evidence that v1 archives keep
// decoding byte-exactly.
#include <iostream>

#include "golden_common.h"
#include "io/file_io.h"

int main(int argc, char** argv) {
  using namespace dpz;
  using namespace dpz::golden;
  if (argc != 2) {
    std::cerr << "usage: make_golden <output-dir>\n";
    return 2;
  }
  const std::string dir = argv[1];
  for (const GoldenCase& c : golden_cases()) {
    switch (c.kind) {
      case Kind::kDpzF32:
        write_bytes(dir + "/" + c.name + ".v2.dpz",
                    dpz_compress(golden_f32(c), golden_config(c)));
        break;
      case Kind::kDpzF64:
        write_bytes(dir + "/" + c.name + ".v2.dpz",
                    dpz_compress(golden_f64(c), golden_config(c)));
        break;
      case Kind::kChunked:
        write_bytes(dir + "/" + c.name + ".v2.dpz",
                    chunked_compress(golden_f32(c),
                                     golden_chunked_config(c)));
        break;
      case Kind::kSharedBasis: {
        const SharedBasisCodec codec =
            SharedBasisCodec::train(golden_f32(c), golden_config(c));
        write_bytes(dir + "/" + c.name + ".v2.blob", codec.serialize());
        write_bytes(dir + "/" + c.name + ".v2.dpz",
                    codec.compress(golden_snapshot(c)));
        break;
      }
    }
    std::cout << "wrote " << dir << "/" << c.name << "\n";
  }
  return 0;
}
