// Unit tests for the statistics substrate: descriptive stats, histograms,
// polynomial/linear fitting, knee-point detection, ECR curves, and VIF.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/ecr.h"
#include "stats/entropy.h"
#include "stats/fit.h"
#include "stats/histogram.h"
#include "stats/knee.h"
#include "stats/vif.h"
#include "util/rng.h"

namespace dpz {
namespace {

// ---- descriptive ---------------------------------------------------------

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 5.0);
  EXPECT_DOUBLE_EQ(variance_of(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev_of(v), 2.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_of(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_of(v, 0.5), 2.5);
  EXPECT_THROW(quantile_of(v, 1.5), InvalidArgument);
}

TEST(Descriptive, BoxStatsOrdering) {
  Rng rng(1);
  std::vector<double> v(1000);
  for (double& x : v) x = rng.normal();
  const BoxStats b = box_stats(v);
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
  EXPECT_NEAR(b.median, 0.0, 0.1);
}

TEST(Descriptive, PearsonCorrelationKnownCases) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 4, 6, 8, 10};
  std::vector<double> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, c), -1.0, 1e-12);
  const std::vector<double> constant(5, 3.0);
  EXPECT_DOUBLE_EQ(pearson_correlation(a, constant), 0.0);
}

// ---- histogram -------------------------------------------------------------

TEST(Histogram, CountsFallIntoCorrectBins) {
  const std::vector<double> v{0.1, 0.1, 0.5, 0.9};
  const Histogram h(v, 2, 0.0, 1.0);
  EXPECT_EQ(h.count(0), 2U);  // 0.1, 0.1 (0.5 goes to bin 1)
  EXPECT_EQ(h.count(1), 2U);
  EXPECT_EQ(h.total(), 4U);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.5);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  const std::vector<double> v{-5.0, 5.0};
  const Histogram h(v, 4, 0.0, 1.0);
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(3), 1U);
}

TEST(Histogram, AutoRangedCoversData) {
  Rng rng(2);
  std::vector<double> v(500);
  for (double& x : v) x = rng.uniform(-3.0, 7.0);
  const Histogram h = Histogram::auto_ranged(v, 10);
  std::size_t total = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.count(b);
  EXPECT_EQ(total, v.size());
}

TEST(Histogram, BinCenters) {
  const std::vector<double> v{0.5};
  const Histogram h(v, 4, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
}

TEST(Histogram, AsciiRenderingNonEmpty) {
  const std::vector<double> v{1.0, 2.0, 2.0, 3.0};
  const Histogram h(v, 3, 1.0, 3.0);
  EXPECT_FALSE(h.render_ascii().empty());
}

// ---- fitting ----------------------------------------------------------------

TEST(PolynomialFit, RecoversExactPolynomial) {
  // y = 2 - 3x + 0.5x^2 sampled on [0, 10].
  std::vector<double> xs, ys;
  for (int i = 0; i <= 20; ++i) {
    const double x = 0.5 * i;
    xs.push_back(x);
    ys.push_back(2.0 - 3.0 * x + 0.5 * x * x);
  }
  const PolynomialFit fit(xs, ys, 2);
  for (const double x : {0.3, 4.7, 9.2})
    EXPECT_NEAR(fit(x), 2.0 - 3.0 * x + 0.5 * x * x, 1e-8);
}

TEST(PolynomialFit, DerivativesMatchAnalytic) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 30; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(x * x * x);  // y' = 3x^2, y'' = 6x
  }
  const PolynomialFit fit(xs, ys, 3);
  EXPECT_NEAR(fit.derivative(1.0), 3.0, 1e-6);
  EXPECT_NEAR(fit.second_derivative(1.0), 6.0, 1e-5);
}

TEST(PolynomialFit, RejectsUnderdeterminedFit) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(PolynomialFit(xs, ys, 2), InvalidArgument);
}

TEST(LinearInterpolant, ExactAtKnotsLinearBetween) {
  const std::vector<double> xs{0.0, 1.0, 3.0};
  const std::vector<double> ys{0.0, 2.0, 0.0};
  const LinearInterpolant f(xs, ys);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f(2.0), 1.0);
  EXPECT_DOUBLE_EQ(f(-1.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(f(9.0), 0.0);   // clamped
}

TEST(LinearInterpolant, RequiresIncreasingX) {
  const std::vector<double> xs{0.0, 0.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(LinearInterpolant(xs, ys), InvalidArgument);
}

TEST(LinearInterpolant, ResampleEndpoints) {
  const std::vector<double> xs{0.0, 2.0};
  const std::vector<double> ys{1.0, 5.0};
  const LinearInterpolant f(xs, ys);
  const std::vector<double> r = f.resample(5);
  ASSERT_EQ(r.size(), 5U);
  EXPECT_DOUBLE_EQ(r.front(), 1.0);
  EXPECT_DOUBLE_EQ(r.back(), 5.0);
  EXPECT_DOUBLE_EQ(r[2], 3.0);
}

// ---- knee detection ----------------------------------------------------------

std::vector<double> saturating_curve(std::size_t m, double rate) {
  // 1 - exp(-rate * k): a classic diminishing-returns curve whose knee
  // sits near 1/rate.
  std::vector<double> c(m);
  for (std::size_t i = 0; i < m; ++i)
    c[i] = 1.0 - std::exp(-rate * static_cast<double>(i + 1));
  return c;
}

TEST(Knee, DetectsKneeOfSaturatingCurve) {
  const std::vector<double> curve = saturating_curve(100, 0.15);
  const KneeResult r = detect_knee(curve, KneeFit::kFit1D);
  // Knee of 1-exp(-0.15k) is around k ~ 7-20 (curvature max region).
  EXPECT_GE(r.k, 3U);
  EXPECT_LE(r.k, 30U);
}

TEST(Knee, PolynomialFitDetectsLaterOrEqualKnee) {
  // Table II: polyn fitting trades CR (smaller k) for accuracy (larger k).
  const std::vector<double> curve = saturating_curve(100, 0.1);
  const std::size_t k_1d = detect_knee(curve, KneeFit::kFit1D).k;
  const std::size_t k_poly = detect_knee(curve, KneeFit::kFitPolyn).k;
  EXPECT_GE(k_poly + 10, k_1d);  // not wildly earlier
  EXPECT_LE(k_poly, 60U);
}

TEST(Knee, FlatCurveReturnsOne) {
  const std::vector<double> curve(50, 1.0);
  EXPECT_EQ(detect_knee(curve).k, 1U);
}

TEST(Knee, TinyCurveReturnsOne) {
  const std::vector<double> curve{0.5, 1.0};
  EXPECT_EQ(detect_knee(curve).k, 1U);
}

TEST(Knee, LinearCurveHasNoEarlyKnee) {
  // A perfectly linear curve has no curvature: the detector should not
  // pick an aggressive early knee.
  std::vector<double> curve(100);
  for (std::size_t i = 0; i < 100; ++i)
    curve[i] = static_cast<double>(i + 1) / 100.0;
  const KneeResult r = detect_knee(curve, KneeFit::kFit1D);
  EXPECT_GE(r.k, 1U);
  EXPECT_LE(r.k, 100U);
}

TEST(Knee, SharperCurveGivesSmallerK) {
  const std::size_t k_sharp = detect_knee(saturating_curve(200, 0.5)).k;
  const std::size_t k_soft = detect_knee(saturating_curve(200, 0.05)).k;
  EXPECT_LT(k_sharp, k_soft);
}

// ---- ECR ------------------------------------------------------------------

TEST(Ecr, CurveIsSortedByMagnitude) {
  const std::vector<double> coeffs{0.1, 3.0, -4.0, 0.2};
  const std::vector<double> curve = ecr_curve(coeffs);
  // Energies sorted: 16, 9, 0.04, 0.01; total 25.05.
  EXPECT_NEAR(curve[0], 16.0 / 25.05, 1e-12);
  EXPECT_NEAR(curve[1], 25.0 / 25.05, 1e-12);
  EXPECT_DOUBLE_EQ(curve[3], 1.0);
}

TEST(Ecr, KForEcrThreshold) {
  const std::vector<double> coeffs{10.0, 1.0, 0.1, 0.01};
  EXPECT_EQ(k_for_ecr(coeffs, 0.9), 1U);
  EXPECT_EQ(k_for_ecr(coeffs, 0.999), 2U);
  EXPECT_EQ(k_for_ecr(coeffs, 1.0), 4U);
}

TEST(Ecr, ZeroInputGivesAllOnes) {
  const std::vector<double> coeffs(5, 0.0);
  const std::vector<double> curve = ecr_curve(coeffs);
  for (const double v : curve) EXPECT_DOUBLE_EQ(v, 1.0);
}

// ---- entropy ----------------------------------------------------------------

TEST(Entropy, ConstantAndEmptyAreZero) {
  const std::vector<double> constant(100, 3.0);
  EXPECT_DOUBLE_EQ(shannon_entropy(constant), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy({}), 0.0);
}

TEST(Entropy, UniformApproachesLogBins) {
  Rng rng(11);
  std::vector<double> v(200000);
  for (double& x : v) x = rng.uniform();
  EXPECT_NEAR(shannon_entropy(v, 256), 8.0, 0.05);
  EXPECT_NEAR(shannon_entropy(v, 16), 4.0, 0.02);
}

TEST(Entropy, TwoValueDistributionIsOneBit) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 2 == 0 ? 0.0 : 1.0);
  EXPECT_NEAR(shannon_entropy(v, 64), 1.0, 1e-9);
}

TEST(Entropy, ConcentratedDistributionHasLowEntropy) {
  Rng rng(12);
  std::vector<double> narrow(50000), wide(50000);
  for (std::size_t i = 0; i < narrow.size(); ++i) {
    narrow[i] = rng.normal(0.0, 0.01);
    wide[i] = rng.normal(0.0, 1.0);
  }
  // Same bin count over each distribution's own range: the Gaussian shape
  // is scale-invariant, so compare against a genuinely flatter reference.
  std::vector<double> uniform(50000);
  for (double& x : uniform) x = rng.uniform(-3.0, 3.0);
  EXPECT_LT(shannon_entropy(wide, 128), shannon_entropy(uniform, 128));
}

TEST(Entropy, HighEntropyDoesNotImplyLowVif) {
  // The paper's point: HACC-vx-like data has near-maximal value entropy
  // yet no cross-feature collinearity — entropy cannot predict what the
  // k-PCA stage removes.
  Rng rng(13);
  Matrix collinear(8, 2000);
  for (std::size_t c = 0; c < 2000; ++c) {
    const double base = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < 8; ++i)
      collinear(i, c) = base + 0.01 * rng.normal();
  }
  std::vector<double> values(collinear.flat().begin(),
                             collinear.flat().end());
  EXPECT_GT(shannon_entropy(values, 128), 5.0);  // high entropy...
  const std::vector<double> vifs = vif_of_features(collinear);
  EXPECT_GT(vifs[0], kVifCutoff);  // ...and yet highly compressible by PCA
}

// ---- VIF ------------------------------------------------------------------

TEST(Vif, IndependentFeaturesHaveVifNearOne) {
  Rng rng(3);
  Matrix x(5, 2000);
  for (double& v : x.flat()) v = rng.normal();
  const std::vector<double> vifs = vif_of_features(x);
  for (const double v : vifs) {
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 1.2);
  }
}

TEST(Vif, CollinearFeaturesHaveHighVif) {
  Rng rng(4);
  Matrix x(3, 1000);
  for (std::size_t c = 0; c < 1000; ++c) {
    const double base = rng.normal();
    x(0, c) = base;
    x(1, c) = base + 0.01 * rng.normal();  // nearly identical to feature 0
    x(2, c) = rng.normal();
  }
  const std::vector<double> vifs = vif_of_features(x);
  EXPECT_GT(vifs[0], kVifCutoff);
  EXPECT_GT(vifs[1], kVifCutoff);
  EXPECT_LT(vifs[2], 2.0);
}

TEST(Vif, ConstantFeatureReportsNeutralVif) {
  Rng rng(5);
  Matrix x(3, 500);
  for (std::size_t c = 0; c < 500; ++c) {
    x(0, c) = 7.0;  // constant
    x(1, c) = rng.normal();
    x(2, c) = rng.normal();
  }
  const std::vector<double> vifs = vif_of_features(x);
  EXPECT_DOUBLE_EQ(vifs[0], 1.0);
}

TEST(Vif, PerfectCollinearityStaysFinite) {
  Matrix x(2, 100);
  for (std::size_t c = 0; c < 100; ++c) {
    x(0, c) = static_cast<double>(c);
    x(1, c) = 2.0 * static_cast<double>(c);
  }
  const std::vector<double> vifs = vif_of_features(x);
  for (const double v : vifs) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, kVifCutoff);
  }
}

TEST(Vif, SampledVifRespectsRate) {
  Rng data_rng(6);
  Matrix x(1000, 400);
  for (double& v : x.flat()) v = data_rng.normal();
  Rng rng(7);
  const std::vector<double> vifs = sampled_vif(x, 0.05, 64, rng);
  EXPECT_EQ(vifs.size(), 50U);  // ceil(0.05 * 1000)
}

TEST(Vif, SampledVifFloorsAtSixteenFeatures) {
  // Tiny rates still probe a meaningful regression (16 features), like
  // the paper's 1% of 1800 blocks ~ 18 regressors.
  Rng data_rng(16);
  Matrix x(100, 300);
  for (double& v : x.flat()) v = data_rng.normal();
  Rng rng(17);
  EXPECT_EQ(sampled_vif(x, 0.01, 64, rng).size(), 16U);
}

TEST(Vif, SampledVifIsDeterministicInSeed) {
  Rng data_rng(8);
  Matrix x(50, 300);
  for (double& v : x.flat()) v = data_rng.normal();
  Rng a(9), b(9);
  EXPECT_EQ(sampled_vif(x, 0.1, 32, a), sampled_vif(x, 0.1, 32, b));
}

}  // namespace
}  // namespace dpz
