// Unit and property tests for the symmetric eigensolvers: analytic 2x2/3x3
// cases, orthonormality of eigenvectors, A = V diag(l) V^T reconstruction,
// agreement between the QL and Jacobi solvers, and the truncated
// subspace-iteration solver against the dense one.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen_sym.h"
#include "linalg/subspace_iteration.h"
#include "util/rng.h"

namespace dpz {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

// SPD matrix with controlled spectral decay (like a covariance matrix).
Matrix random_spd(std::size_t n, std::uint64_t seed, double decay = 0.5) {
  Rng rng(seed);
  Matrix q(n, n);
  for (double& v : q.flat()) v = rng.normal();
  // A = Q^T D Q with decaying positive diagonal.
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    d(i, i) = std::pow(decay, static_cast<double>(i)) + 1e-6;
  return q.transpose_multiply(d.multiply(q));
}

double reconstruction_error(const Matrix& a, const SymmetricEigen& eig) {
  const std::size_t n = a.rows();
  const std::size_t k = eig.values.size();
  Matrix rec(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t c = 0; c < k; ++c)
        sum += eig.vectors(i, c) * eig.values[c] * eig.vectors(j, c);
      rec(i, j) = sum;
    }
  return rec.max_abs_diff(a);
}

double orthonormality_error(const Matrix& v) {
  double worst = 0.0;
  for (std::size_t a = 0; a < v.cols(); ++a)
    for (std::size_t b = a; b < v.cols(); ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < v.rows(); ++i) dot += v(i, a) * v(i, b);
      worst = std::max(worst, std::abs(dot - (a == b ? 1.0 : 0.0)));
    }
  return worst;
}

TEST(EigenSym, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix a(2, 2, {2, 1, 1, 2});
  const SymmetricEigen eig = eigen_sym(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  EXPECT_LT(reconstruction_error(a, eig), 1e-12);
}

TEST(EigenSym, KnownDiagonal) {
  Matrix a(4, 4);
  a(0, 0) = -1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 2.0;
  a(3, 3) = 0.0;
  const SymmetricEigen eig = eigen_sym(a);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 0.0, 1e-12);
  EXPECT_NEAR(eig.values[3], -1.0, 1e-12);
}

TEST(EigenSym, OneByOne) {
  const Matrix a(1, 1, {7.0});
  const SymmetricEigen eig = eigen_sym(a);
  ASSERT_EQ(eig.values.size(), 1U);
  EXPECT_DOUBLE_EQ(eig.values[0], 7.0);
  EXPECT_DOUBLE_EQ(eig.vectors(0, 0), 1.0);
}

TEST(EigenSym, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_THROW(eigen_sym(a), InvalidArgument);
}

class EigenSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSizeTest, ReconstructsInput) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 500 + n);
  const SymmetricEigen eig = eigen_sym(a);
  EXPECT_LT(reconstruction_error(a, eig), 1e-9 * static_cast<double>(n));
}

TEST_P(EigenSizeTest, EigenvectorsOrthonormal) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 600 + n);
  const SymmetricEigen eig = eigen_sym(a);
  EXPECT_LT(orthonormality_error(eig.vectors), 1e-10);
}

TEST_P(EigenSizeTest, ValuesSortedDescending) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 700 + n);
  const SymmetricEigen eig = eigen_sym(a);
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_GE(eig.values[i - 1], eig.values[i]);
}

TEST_P(EigenSizeTest, QlMatchesJacobi) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 800 + n);
  const SymmetricEigen ql = eigen_sym(a);
  const SymmetricEigen jacobi = eigen_sym_jacobi(a);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(ql.values[i], jacobi.values[i], 1e-9)
        << "eigenvalue " << i << " at n=" << n;
}

INSTANTIATE_TEST_SUITE_P(VariousSizes, EigenSizeTest,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

TEST(EigenSym, TraceEqualsEigenvalueSum) {
  const std::size_t n = 20;
  const Matrix a = random_symmetric(n, 31);
  const SymmetricEigen eig = eigen_sym(a);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += eig.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(EigenSym, HandlesRepeatedEigenvalues) {
  // Identity: all eigenvalues 1; eigenvectors must still be orthonormal.
  const Matrix a = Matrix::identity(10);
  const SymmetricEigen eig = eigen_sym(a);
  for (const double v : eig.values) EXPECT_NEAR(v, 1.0, 1e-12);
  EXPECT_LT(orthonormality_error(eig.vectors), 1e-12);
}

// ---- Truncated subspace iteration ---------------------------------------

TEST(EigenTopK, MatchesDenseOnLeadingPairs) {
  const std::size_t n = 120, k = 6;
  const Matrix a = random_spd(n, 41);
  const SymmetricEigen full = eigen_sym(a);
  const SymmetricEigen topk = eigen_sym_topk(a, k);
  ASSERT_EQ(topk.values.size(), k);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(topk.values[j], full.values[j],
                1e-6 * std::max(1.0, std::abs(full.values[j])))
        << "eigenvalue " << j;
    // Eigenvectors match up to sign.
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      dot += topk.vectors(i, j) * full.vectors(i, j);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-5) << "eigenvector " << j;
  }
}

TEST(EigenTopK, SmallMatrixDelegatesToDense) {
  const Matrix a = random_spd(12, 43);
  const SymmetricEigen full = eigen_sym(a);
  const SymmetricEigen topk = eigen_sym_topk(a, 3);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(topk.values[j], full.values[j], 1e-10);
}

TEST(EigenTopK, VectorsOrthonormal) {
  const Matrix a = random_spd(150, 44);
  const SymmetricEigen topk = eigen_sym_topk(a, 8);
  EXPECT_LT(orthonormality_error(topk.vectors), 1e-8);
}

TEST(EigenTopK, RejectsBadK) {
  const Matrix a = random_spd(10, 45);
  EXPECT_THROW(eigen_sym_topk(a, 0), InvalidArgument);
  EXPECT_THROW(eigen_sym_topk(a, 11), InvalidArgument);
}

// eigen_topk_from (inverse iteration on a shared tridiagonal reduction,
// the Stage-2 hot path in fit_pca_spectrum/attach_top_components) gets
// its own coverage: residuals against the original matrix, agreement
// with the dense accumulation, and orthonormality on a clustered
// spectrum where inverse iteration is most fragile.

TEST(EigenTopKFrom, ResidualsSmallAgainstOriginal) {
  const std::size_t n = 120;
  const std::size_t k = 11;
  const Matrix a = random_spd(n, 46);
  const TridiagonalReduction r = tridiagonalize(a);
  const SymmetricEigen topk = eigen_topk_from(r, k);
  ASSERT_EQ(topk.values.size(), k);
  ASSERT_EQ(topk.vectors.cols(), k);
  for (std::size_t j = 0; j < k; ++j) {
    // ||A v - lambda v||_inf per eigenpair.
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t c = 0; c < n; ++c) av += a(i, c) * topk.vectors(c, j);
      worst = std::max(worst,
                       std::abs(av - topk.values[j] * topk.vectors(i, j)));
    }
    EXPECT_LT(worst, 1e-8) << "eigenpair " << j;
  }
}

TEST(EigenTopKFrom, MatchesDenseAccumulationOnLeadingPairs) {
  const Matrix a = random_spd(90, 47);
  const TridiagonalReduction r = tridiagonalize(a);
  const SymmetricEigen full = eigen_sym_from(r);
  const SymmetricEigen topk = eigen_topk_from(r, 7);
  for (std::size_t j = 0; j < 7; ++j) {
    EXPECT_NEAR(topk.values[j], full.values[j], 1e-9 + 1e-9 * full.values[0]);
    double dot = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
      dot += topk.vectors(i, j) * full.vectors(i, j);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-6) << "eigenvector " << j;
  }
}

TEST(EigenTopKFrom, ClusteredSpectrumStaysOrthonormal) {
  // V D V^T with an exactly repeated leading eigenvalue (V is a true
  // orthonormal basis, taken from a dense solve of a random symmetric
  // matrix): inverse iteration must return an orthonormal basis of the
  // cluster's eigenspace, not three copies of one direction.
  const std::size_t n = 80;
  const SymmetricEigen basis = eigen_sym(random_symmetric(n, 48));
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = i < 3 ? 2.0 : 1.0 / static_cast<double>(i + 1);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t c = 0; c < n; ++c)
        sum += basis.vectors(i, c) * d[c] * basis.vectors(j, c);
      a(i, j) = sum;
    }
  const TridiagonalReduction r = tridiagonalize(a);
  const SymmetricEigen topk = eigen_topk_from(r, 6);
  ASSERT_NEAR(topk.values[0], 2.0, 1e-9);
  ASSERT_NEAR(topk.values[2], 2.0, 1e-9);
  EXPECT_LT(orthonormality_error(topk.vectors), 1e-8);
}

}  // namespace
}  // namespace dpz
