// Unit and property tests for the FFT substrate: analytic DFTs,
// linearity, Parseval's identity, round-trips across power-of-two and
// Bluestein paths, and cross-validation against a direct O(n^2) DFT.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <thread>
#include <vector>

#include "dsp/fft.h"
#include "util/error.h"
#include "util/rng.h"

namespace dpz {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> naive_dft(const std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, {0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * j) /
                           static_cast<double>(n);
      out[k] += x[j] * Complex(std::cos(angle), std::sin(angle));
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  // The naive inverse divides per element inside the loop above.
  return out;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  return x;
}

double max_abs_diff(const std::vector<Complex>& a,
                    const std::vector<Complex>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

TEST(Fft, LengthOneIsIdentity) {
  std::vector<Complex> x{{3.0, -2.0}};
  fft(x);
  EXPECT_DOUBLE_EQ(x[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(x[0].imag(), -2.0);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantSignalConcentratesInDc) {
  std::vector<Complex> x(16, {2.0, 0.0});
  fft(x);
  EXPECT_NEAR(x[0].real(), 32.0, 1e-12);
  for (std::size_t k = 1; k < x.size(); ++k)
    EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 32;
  std::vector<Complex> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * std::numbers::pi * 5.0 * static_cast<double>(i) /
        static_cast<double>(n);
    x[i] = {std::cos(angle), 0.0};
  }
  fft(x);
  // cos splits between bins 5 and n-5 with weight n/2.
  EXPECT_NEAR(std::abs(x[5]), 16.0, 1e-10);
  EXPECT_NEAR(std::abs(x[n - 5]), 16.0, 1e-10);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == 5 || k == n - 5) continue;
    EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-10);
  }
}

class FftLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftLengthTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const std::vector<Complex> x = random_signal(n, 100 + n);
  std::vector<Complex> fast = x;
  fft(fast);
  const std::vector<Complex> slow = naive_dft(x, false);
  EXPECT_LT(max_abs_diff(fast, slow), 1e-8 * static_cast<double>(n))
      << "length " << n;
}

TEST_P(FftLengthTest, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const std::vector<Complex> x = random_signal(n, 200 + n);
  std::vector<Complex> y = x;
  fft(y, false);
  fft(y, true);
  EXPECT_LT(max_abs_diff(x, y), 1e-10) << "length " << n;
}

TEST_P(FftLengthTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  std::vector<Complex> x = random_signal(n, 300 + n);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoAndBluestein, FftLengthTest,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 17, 30,
                                           32, 45, 64, 100, 127, 128, 360,
                                           1000));

TEST(Fft, PlanIsReusable) {
  const FftPlan plan(64);
  const std::vector<Complex> x = random_signal(64, 9);
  std::vector<Complex> a = x, b = x;
  plan.execute(a, false);
  plan.execute(b, false);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Fft, PlanRejectsWrongLength) {
  const FftPlan plan(16);
  std::vector<Complex> x(8);
  EXPECT_THROW(plan.execute(x, false), InvalidArgument);
}

TEST(Fft, LinearityProperty) {
  const std::size_t n = 48;  // Bluestein path
  const auto a = random_signal(n, 1), b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  std::vector<Complex> fa = a, fb = b, fsum = sum;
  fft(fa);
  fft(fb);
  fft(fsum);
  std::vector<Complex> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = 2.0 * fa[i] + 3.0 * fb[i];
  EXPECT_LT(max_abs_diff(fsum, expect), 1e-9);
}

TEST(Fft, PlanIsThreadSafeForConcurrentExecute) {
  // Plans are shared across the DCT worker threads; concurrent execute()
  // calls on distinct buffers must not interfere.
  const std::size_t n = 256;
  const FftPlan plan(n);
  const std::vector<Complex> input = random_signal(n, 999);
  std::vector<Complex> reference = input;
  plan.execute(reference, false);

  std::vector<std::vector<Complex>> buffers(8, input);
  std::vector<std::thread> threads;
  threads.reserve(buffers.size());
  for (auto& buffer : buffers)
    threads.emplace_back([&plan, &buffer] { plan.execute(buffer, false); });
  for (auto& t : threads) t.join();

  for (const auto& buffer : buffers)
    EXPECT_EQ(max_abs_diff(buffer, reference), 0.0);
}

TEST(Fft, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(1), 1U);
  EXPECT_EQ(next_power_of_two(2), 2U);
  EXPECT_EQ(next_power_of_two(3), 4U);
  EXPECT_EQ(next_power_of_two(1000), 1024U);
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

}  // namespace
}  // namespace dpz
