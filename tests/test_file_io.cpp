// Unit tests for io/file_io and io/image: binary round-trips and the
// PGM/PPM writers' headers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "io/file_io.h"
#include "io/image.h"
#include "util/rng.h"

namespace dpz {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dpz_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(FileIoTest, F32RoundTrip) {
  FloatArray a({4, 8});
  Rng rng(3);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  write_f32(path("a.bin"), a);
  const FloatArray b = read_f32(path("a.bin"), {4, 8});
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(FileIoTest, ReadRejectsWrongShape) {
  FloatArray a({16});
  write_f32(path("b.bin"), a);
  EXPECT_THROW(read_f32(path("b.bin"), {17}), IoError);
}

TEST_F(FileIoTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_f32(path("missing.bin"), {4}), IoError);
}

TEST_F(FileIoTest, BytesRoundTrip) {
  const std::vector<std::uint8_t> payload{0, 1, 255, 128, 7};
  write_bytes(path("c.bin"), payload);
  EXPECT_EQ(read_bytes(path("c.bin")), payload);
  EXPECT_EQ(file_size(path("c.bin")), payload.size());
}

TEST_F(FileIoTest, EmptyBytesRoundTrip) {
  write_bytes(path("empty.bin"), {});
  EXPECT_TRUE(read_bytes(path("empty.bin")).empty());
}

TEST_F(FileIoTest, PgmHasValidHeaderAndSize) {
  FloatArray field({10, 20});
  for (std::size_t i = 0; i < field.size(); ++i)
    field[i] = static_cast<float>(i);
  write_pgm(path("img.pgm"), field);
  const auto bytes = read_bytes(path("img.pgm"));
  const std::string head(bytes.begin(),
                         bytes.begin() + std::min<std::size_t>(2, bytes.size()));
  EXPECT_EQ(head, "P5");
  // Header "P5\n20 10\n255\n" + 200 pixel bytes.
  EXPECT_EQ(bytes.size(), 13U + 200U);
}

TEST_F(FileIoTest, PgmRejectsNon2d) {
  FloatArray field({8});
  EXPECT_THROW(write_pgm(path("bad.pgm"), field), InvalidArgument);
}

TEST_F(FileIoTest, ErrorPpmHasValidHeader) {
  FloatArray field({4, 4});
  field(0, 0) = -1.0F;
  field(3, 3) = 1.0F;
  write_error_ppm(path("err.ppm"), field);
  const auto bytes = read_bytes(path("err.ppm"));
  const std::string head(bytes.begin(), bytes.begin() + 2);
  EXPECT_EQ(head, "P6");
  EXPECT_EQ(bytes.size(), 11U + 48U);  // "P6\n4 4\n255\n" + 16*3
}

TEST_F(FileIoTest, PgmConstantFieldDoesNotDivideByZero) {
  FloatArray field({3, 3});
  for (float& v : field.flat()) v = 5.0F;
  EXPECT_NO_THROW(write_pgm(path("const.pgm"), field));
}

}  // namespace
}  // namespace dpz
