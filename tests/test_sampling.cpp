// Unit tests for the Algorithm 2 sampling strategy: subset picking,
// k estimation on data with known rank, the VIF gate, and the CR_p band.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sampling.h"
#include "util/rng.h"

namespace dpz {
namespace {

// Block-feature matrix with a shared low-rank structure, so every subset
// sees approximately the same k.
Matrix shared_rank_data(std::size_t m, std::size_t n, std::size_t rank,
                        std::uint64_t seed) {
  Rng rng(seed);
  Matrix basis(m, rank);
  for (double& v : basis.flat()) v = rng.normal();
  Matrix weights(rank, n);
  for (double& v : weights.flat()) v = rng.normal();
  Matrix x = basis.multiply(weights);
  for (double& v : x.flat()) v += 1e-5 * rng.normal();
  return x;
}

Matrix white_noise_data(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(m, n);
  for (double& v : x.flat()) v = rng.normal();
  return x;
}

TEST(Sampling, DeterministicPicksAreFirstMiddleLast) {
  const Matrix x = shared_rank_data(100, 300, 3, 1);
  SamplingConfig cfg;
  cfg.subset_count = 10;
  cfg.sample_subset_count = 3;
  const SamplingReport report = run_sampling(x, cfg);
  ASSERT_EQ(report.picked_subsets.size(), 3U);
  EXPECT_EQ(report.picked_subsets[0], 0U);
  EXPECT_EQ(report.picked_subsets[1], 4U);  // (S-1)/2 with S=10
  EXPECT_EQ(report.picked_subsets[2], 9U);
}

TEST(Sampling, EstimatesKOnSharedRankData) {
  // Rank-3 shared structure: every 10-feature subset needs ~3 components,
  // so full_k ~ 30 out of M=100.
  const Matrix x = shared_rank_data(100, 400, 3, 2);
  SamplingConfig cfg;
  cfg.tve = 0.9999;
  const SamplingReport report = run_sampling(x, cfg);
  for (const std::size_t k : report.subset_ks) {
    EXPECT_GE(k, 3U);
    EXPECT_LE(k, 5U);
  }
  EXPECT_GE(report.full_k, 30U);
  EXPECT_LE(report.full_k, 50U);
}

TEST(Sampling, VifGateDistinguishesLinearity) {
  // Correlated features -> high VIF -> no standardization; white noise ->
  // low VIF -> standardization (Algorithm 2 step 2).
  const Matrix correlated = shared_rank_data(80, 500, 2, 3);
  const Matrix noise = white_noise_data(80, 500, 4);
  SamplingConfig cfg;
  cfg.vif_sampling_rate = 0.15;
  EXPECT_FALSE(run_sampling(correlated, cfg).low_linearity);
  EXPECT_TRUE(run_sampling(noise, cfg).low_linearity);
}

TEST(Sampling, CrBandUsesPaperFactorsWhenCalibrationOff) {
  const Matrix x = shared_rank_data(100, 300, 4, 5);
  SamplingConfig cfg;
  cfg.calibrate_factors = false;
  const SamplingReport report = run_sampling(x, cfg);
  const double cr12 =
      100.0 / static_cast<double>(report.full_k);
  EXPECT_NEAR(report.cr_estimate_low, cr12 * 1.9 * 1.25, 1e-9);
  EXPECT_NEAR(report.cr_estimate_high, cr12 * 2.5 * 1.25, 1e-9);
  EXPECT_LT(report.cr_estimate_low, report.cr_estimate_high);
  EXPECT_EQ(report.stage3_factor, 0.0);  // calibration did not run
}

TEST(Sampling, CalibrationMeasuresRealFactors) {
  const Matrix x = shared_rank_data(100, 300, 4, 5);
  SamplingConfig cfg;  // calibrate_factors defaults to true
  const SamplingReport report = run_sampling(x, cfg);
  // 2-byte codes: stage-3 factor pinned near 2 (f32 -> u16 + outliers).
  EXPECT_GT(report.stage3_factor, 1.5);
  EXPECT_LE(report.stage3_factor, 2.0 + 1e-9);
  EXPECT_GE(report.zlib_factor, 0.9);
  EXPECT_LT(report.cr_estimate_low, report.cr_estimate_high);
}

TEST(Sampling, CalibratedBandPredictsAchievedRatio) {
  // End-to-end: the calibrated CR_p band should bracket the ratio the
  // full pipeline actually achieves in the paper's accounting.
  Rng rng(55);
  const std::size_t m = 120, n = 360;
  Matrix basis(m, 3);
  for (double& v : basis.flat()) v = rng.normal();
  Matrix weights(3, n);
  for (double& v : weights.flat()) v = rng.normal();
  Matrix x = basis.multiply(weights);
  for (double& v : x.flat()) v += 1e-4 * rng.normal();

  SamplingConfig cfg;
  cfg.tve = 0.99999;
  const SamplingReport report = run_sampling(x, cfg);
  EXPECT_GT(report.cr_estimate_high, report.cr_estimate_low);
  EXPECT_GT(report.cr_estimate_low, 1.0);
}

TEST(Sampling, RandomPicksAreValidAndUnique) {
  const Matrix x = shared_rank_data(100, 300, 3, 6);
  SamplingConfig cfg;
  cfg.deterministic_picks = false;
  cfg.sample_subset_count = 4;
  const SamplingReport report = run_sampling(x, cfg);
  EXPECT_EQ(report.picked_subsets.size(), 4U);
  for (std::size_t i = 0; i < report.picked_subsets.size(); ++i) {
    EXPECT_LT(report.picked_subsets[i], cfg.subset_count);
    if (i > 0) {
      EXPECT_GT(report.picked_subsets[i], report.picked_subsets[i - 1]);
    }
  }
}

TEST(Sampling, WhiteNoiseNeedsNearlyAllComponents) {
  const Matrix x = white_noise_data(60, 600, 7);
  SamplingConfig cfg;
  cfg.tve = 0.99999;
  const SamplingReport report = run_sampling(x, cfg);
  // Each 6-feature subset of white noise needs ~all its components.
  EXPECT_GT(report.k_estimate, 4.0);
}

TEST(Sampling, RejectsTooFewFeatures) {
  const Matrix x = white_noise_data(10, 50, 8);
  SamplingConfig cfg;
  cfg.subset_count = 10;  // needs >= 20 features
  EXPECT_THROW(run_sampling(x, cfg), InvalidArgument);
}

TEST(Sampling, KneeModeProducesValidK) {
  const Matrix x = shared_rank_data(100, 300, 3, 9);
  SamplingConfig cfg;
  cfg.use_knee = true;
  const SamplingReport report = run_sampling(x, cfg);
  EXPECT_GE(report.full_k, 1U);
  EXPECT_LE(report.full_k, 100U);
}

TEST(Sampling, DeterministicForSameSeed) {
  const Matrix x = shared_rank_data(100, 300, 3, 10);
  SamplingConfig cfg;
  cfg.deterministic_picks = false;
  const SamplingReport a = run_sampling(x, cfg);
  const SamplingReport b = run_sampling(x, cfg);
  EXPECT_EQ(a.picked_subsets, b.picked_subsets);
  EXPECT_EQ(a.full_k, b.full_k);
  EXPECT_EQ(a.vifs, b.vifs);
}

}  // namespace
}  // namespace dpz
