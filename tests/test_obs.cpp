// Telemetry subsystem tests (src/obs): the trace output must be valid
// Chrome trace-event JSON (checked with the in-repo reader, no external
// deps), metrics must match the compressor's own ground-truth stats,
// the concurrency contracts must hold under an 8-thread pool (the TSan
// CI job runs this binary), and the disabled path must stay at
// single-relaxed-load cost.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/chunked.h"
#include "core/dpz.h"
#include "data/datasets.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/stage_clock.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/json_mini.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dpz {
namespace {

using obs::Counter;
using obs::Hist;
using obs::Span;

const json::Value* require(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  EXPECT_NE(v, nullptr) << "missing key: " << key;
  return v;
}

// ---- json_mini ----------------------------------------------------------

TEST(ObsJsonMini, ParsesTheFullValueGrammar) {
  const json::Value doc = json::parse(
      R"({"a": [1, -2.5, 1e3], "b": {"nested": true}, "s": "x\n\"y\"",)"
      R"( "none": null, "off": false})");
  ASSERT_TRUE(doc.is_object());
  const json::Value* a = doc.find("a");
  ASSERT_TRUE(a != nullptr && a->is_array());
  ASSERT_EQ(a->items.size(), 3U);
  EXPECT_DOUBLE_EQ(a->items[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->items[1].number, -2.5);
  EXPECT_DOUBLE_EQ(a->items[2].number, 1000.0);
  const json::Value* nested = doc.find("b")->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_TRUE(nested->boolean);
  EXPECT_EQ(doc.find("s")->text, "x\n\"y\"");
  EXPECT_EQ(doc.find("none")->type, json::Value::Type::kNull);
  EXPECT_FALSE(doc.find("off")->boolean);
}

TEST(ObsJsonMini, RejectsMalformedDocuments) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("tru"), std::runtime_error);
  EXPECT_THROW(json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::parse("01x"), std::runtime_error);
}

// ---- histogram bucketing ------------------------------------------------

TEST(ObsMetrics, BucketOfIsLog2WithZeroBucket) {
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(0), 0U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(1), 1U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(2), 2U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(3), 2U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(4), 3U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(1023), 10U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(1024), 11U);
  // The top bucket is open-ended: huge values clamp instead of indexing
  // out of the fixed array.
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(~0ULL), obs::kHistBuckets - 1);
}

TEST(ObsMetrics, BucketOfAtEveryPowerOfTwoBoundary) {
  // Exact powers of two open a new bucket; the value just below each
  // boundary stays in the previous one. Sweep every representable
  // boundary so an off-by-one in the bit scan cannot hide.
  for (unsigned b = 1; b < 40; ++b) {
    const std::uint64_t boundary = 1ULL << b;
    EXPECT_EQ(obs::MetricsRegistry::bucket_of(boundary - 1), b)
        << "below boundary 2^" << b;
    EXPECT_EQ(obs::MetricsRegistry::bucket_of(boundary),
              std::min<std::size_t>(b + 1, obs::kHistBuckets - 1))
        << "at boundary 2^" << b;
  }
  // Everything at and beyond 2^39 lands deterministically in the open
  // top bucket (index 40), however extreme.
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(1ULL << 39),
            obs::kHistBuckets - 1);
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(1ULL << 40),
            obs::kHistBuckets - 1);
  EXPECT_EQ(obs::MetricsRegistry::bucket_of(1ULL << 63),
            obs::kHistBuckets - 1);
}

TEST(ObsMetrics, SnapshotAndResetAreRaceFreeUnderEightThreads) {
  // Writers hammer a counter and a histogram while other participants
  // snapshot, render, and reset concurrently. There is no exact count
  // to assert (resets race with increments by design); the TSan job
  // proves the absence of data races, and the renderers must never
  // crash on a half-advanced registry.
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();

  const ScopedThreads scope(8);
  parallel_for(0, 8, [](std::size_t lane) {
    for (int i = 0; i < 2000; ++i) {
      if (lane < 6) {
        obs::count(Counter::kCrcChecks);
        obs::observe(Hist::kFrameBytes,
                     static_cast<std::uint64_t>(i % 4096));
      } else if (lane == 6) {
        const obs::MetricsSnapshot snap =
            obs::MetricsRegistry::instance().snapshot();
        EXPECT_LE(snap.hist_count(Hist::kFrameBytes),
                  snap.hist_sum(Hist::kFrameBytes) + 6 * 2000ULL);
        EXPECT_FALSE(snap.to_prometheus().empty());
      } else {
        obs::MetricsRegistry::instance().reset();
      }
    }
  });
}

// ---- trace format -------------------------------------------------------

TEST(ObsTrace, CompressDecodeEmitsValidChromeTraceWithPoolSpans) {
  const obs::ScopedTelemetry telemetry(true);
  obs::TraceRecorder::instance().clear();

  // 3-D f32 input through a 4-participant pool: stage spans, decode
  // spans, and pool_task spans with queue-wait attribution must all
  // appear even on a single-core host (explicit thread counts always
  // spawn workers).
  const Dataset ds = make_dataset("Isotropic", 0.05, 2021);
  DpzConfig config = DpzConfig::strict();
  config.threads = 4;
  const std::uint64_t t0 = obs::TraceRecorder::now_ns();
  const std::vector<std::uint8_t> archive = dpz_compress(ds.data, config);
  const FloatArray back = dpz_decompress(archive, 0, 4);
  const std::uint64_t t1 = obs::TraceRecorder::now_ns();
  ASSERT_EQ(back.size(), ds.data.size());

  const json::Value doc = json::parse(obs::TraceRecorder::instance().json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(require(doc, "displayTimeUnit")->text, "ms");
  const json::Value* events = require(doc, "traceEvents");
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->items.empty());

  std::map<std::string, int> by_name;
  int waits = 0;
  for (const json::Value& e : events->items) {
    ASSERT_TRUE(e.is_object());
    EXPECT_EQ(require(e, "ph")->text, "X");
    const json::Value* name = require(e, "name");
    const json::Value* ts = require(e, "ts");
    const json::Value* dur = require(e, "dur");
    ASSERT_TRUE(name->is_string());
    ASSERT_TRUE(ts->is_number());
    ASSERT_TRUE(dur->is_number());
    EXPECT_TRUE(require(e, "cat")->is_string());
    EXPECT_TRUE(require(e, "pid")->is_number());
    EXPECT_TRUE(require(e, "tid")->is_number());
    // The one-time simd_dispatch span fires at the process's first
    // kernel use — possibly during dataset synthesis above, outside the
    // [t0, t1] window — so it is exempt from the window check.
    if (name->text == "simd_dispatch") continue;
    // Timestamps are µs since the recorder epoch; every span recorded
    // here must fall inside the [t0, t1] recording window.
    EXPECT_GE(ts->number * 1000.0, static_cast<double>(t0) - 1000.0);
    EXPECT_LE((ts->number + dur->number) * 1000.0,
              static_cast<double>(t1) + 1000.0);
    ++by_name[name->text];
    if (name->text == "pool_task") {
      const json::Value* args = e.find("args");
      if (args != nullptr) {
        const json::Value* wait = args->find("queue_wait_us");
        if (wait != nullptr && wait->is_number()) {
          EXPECT_GE(wait->number, 0.0);
          ++waits;
        }
      }
    }
  }
  for (const char* stage :
       {"stage1_dct", "stage2_pca", "stage3_quantize", "zlib_encode",
        "decode_sections", "decode_dequantize", "decode_backproject",
        "decode_idct"})
    EXPECT_GE(by_name[stage], 1) << "missing span: " << stage;
  EXPECT_GE(by_name["pool_task"], 1);
  EXPECT_GE(waits, 1) << "no pool span carried queue-wait attribution";
}

TEST(ObsTrace, NestedParallelForSpansStayInsideTheRecordingWindow) {
  const obs::ScopedTelemetry telemetry(true);
  obs::TraceRecorder::instance().clear();

  const std::uint64_t t0 = obs::TraceRecorder::now_ns();
  {
    const ScopedThreads scope(4);
    parallel_for(0, 16, [](std::size_t) {
      const obs::ScopedSpan outer(Span::kFrameEncode);
      // Nested calls run inline by contract; their spans must still
      // land in the same recorder with consistent timestamps.
      parallel_for(0, 4, [](std::size_t) {
        const obs::ScopedSpan inner(Span::kCrcCheck);
      });
    });
  }
  const std::uint64_t t1 = obs::TraceRecorder::now_ns();

  const json::Value doc = json::parse(obs::TraceRecorder::instance().json());
  const json::Value* events = require(doc, "traceEvents");
  ASSERT_TRUE(events->is_array());
  int outer = 0;
  int inner = 0;
  for (const json::Value& e : events->items) {
    const std::string& name = require(e, "name")->text;
    const double ts_ns = require(e, "ts")->number * 1000.0;
    const double end_ns = ts_ns + require(e, "dur")->number * 1000.0;
    EXPECT_GE(ts_ns, static_cast<double>(t0) - 1000.0) << name;
    EXPECT_LE(end_ns, static_cast<double>(t1) + 1000.0) << name;
    if (name == "frame_encode") ++outer;
    if (name == "crc_check") ++inner;
  }
  EXPECT_EQ(outer, 16);
  EXPECT_EQ(inner, 16 * 4);
}

// ---- metrics ground truth -----------------------------------------------

TEST(ObsMetrics, CompressionCountersMatchStats) {
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();

  const Dataset ds = make_dataset("CLDHGH", 0.05, 2021);
  const DpzConfig config = DpzConfig::strict();
  DpzStats st;
  const std::vector<std::uint8_t> archive =
      dpz_compress(ds.data, config, &st);
  ASSERT_FALSE(st.stored_raw);

  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter(Counter::kCompressCalls), 1U);
  EXPECT_EQ(snap.counter(Counter::kBytesIn), st.original_bytes);
  EXPECT_EQ(snap.counter(Counter::kBytesArchive), st.archive_bytes);
  EXPECT_EQ(snap.counter(Counter::kBytesArchive), archive.size());
  EXPECT_EQ(snap.counter(Counter::kBytesStage12), st.stage12_bytes);
  EXPECT_EQ(snap.counter(Counter::kBytesStage3), st.stage3_bytes);
  EXPECT_EQ(snap.counter(Counter::kBytesZlibPayload),
            st.zlib_payload_bytes);
  EXPECT_EQ(snap.counter(Counter::kBytesSide), st.side_bytes);
  EXPECT_EQ(snap.counter(Counter::kOutliers), st.outlier_count);
  EXPECT_EQ(snap.counter(Counter::kQuantSaturated), st.outlier_count);
  EXPECT_GE(snap.counter(Counter::kQuantValues),
            snap.counter(Counter::kQuantSaturated));
  EXPECT_EQ(snap.hist_count(Hist::kSelectedK), 1U);

  const FloatArray back = dpz_decompress(archive, 0, 1);
  const obs::MetricsSnapshot snap2 =
      obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap2.counter(Counter::kDecompressCalls), 1U);
  EXPECT_EQ(snap2.counter(Counter::kBytesDecoded),
            back.size() * sizeof(float));
  EXPECT_EQ(snap2.counter(Counter::kBytesDecoded), st.original_bytes);
  // Strict archives are format v2: the decode verifies section CRCs.
  EXPECT_GT(snap2.counter(Counter::kCrcChecks), 0U);
  EXPECT_EQ(snap2.counter(Counter::kCrcFailures), 0U);
}

TEST(ObsMetrics, ChunkedFrameCountersMatchTheContainer) {
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();

  const Dataset ds = make_dataset("HACC-x", 0.05, 2021);
  ChunkedConfig config;
  config.dpz = DpzConfig::strict();
  config.chunk_values = ds.data.size() / 4;
  const std::vector<std::uint8_t> container =
      chunked_compress(ds.data, config);
  const std::size_t frames = chunked_frame_count(container);
  ASSERT_GE(frames, 2U);

  obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter(Counter::kFramesEncoded), frames);
  EXPECT_EQ(snap.hist_count(Hist::kFrameBytes), frames);

  const FloatArray back = chunked_decompress(container, 2U);
  ASSERT_EQ(back.size(), ds.data.size());
  snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter(Counter::kFramesDecoded), frames);
}

TEST(ObsMetrics, SnapshotJsonParsesAndCoversEveryName) {
  const obs::ScopedTelemetry telemetry(true);
  obs::count(Counter::kCompressCalls);
  obs::observe(Hist::kSelectedK, 12);

  const json::Value doc = json::parse(
      obs::MetricsRegistry::instance().snapshot().to_json());
  const json::Value* counters = require(doc, "counters");
  ASSERT_TRUE(counters->is_object());
  EXPECT_EQ(counters->members.size(), obs::kCounterCount);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i)
    EXPECT_NE(counters->find(obs::counter_name(static_cast<Counter>(i))),
              nullptr);
  const json::Value* hists = require(doc, "histograms");
  ASSERT_TRUE(hists->is_object());
  EXPECT_EQ(hists->members.size(), obs::kHistCount);
  for (std::size_t i = 0; i < obs::kHistCount; ++i) {
    const json::Value* h =
        hists->find(obs::hist_name(static_cast<Hist>(i)));
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(require(*h, "count")->is_number());
    EXPECT_TRUE(require(*h, "buckets")->is_array());
  }
}

// ---- concurrency (the TSan job runs this binary) ------------------------

TEST(ObsMetrics, CountersAreExactUnderAnEightThreadPool) {
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();

  const ScopedThreads scope(8);
  parallel_for(0, 10000,
               [](std::size_t) { obs::count(Counter::kCrcChecks); });
  EXPECT_EQ(
      obs::MetricsRegistry::instance().snapshot().counter(
          Counter::kCrcChecks),
      10000U);
}

TEST(ObsStageClock, AccumulatorIsRaceFreeAcrossEightThreads) {
  // The direct replacement for the old StageTimer hot path: many
  // workers timing into one accumulator while the trace recorder also
  // runs. TSan verifies the absence of the map data race this design
  // removed.
  const obs::ScopedTelemetry telemetry(true);
  obs::StageAccumulator acc;
  std::vector<double> sink(256, 0.0);
  const ScopedThreads scope(8);
  parallel_for(0, sink.size(), [&](std::size_t i) {
    const obs::StageSpan span(acc, Span::kStage1Dct);
    for (int r = 0; r < 100; ++r)
      sink[i] += static_cast<double>(i * r) * 1e-9;
  });
  EXPECT_GT(acc.seconds(Span::kStage1Dct), 0.0);
  const std::map<std::string, double> buckets = acc.buckets();
  ASSERT_EQ(buckets.size(), 1U);
  EXPECT_EQ(buckets.begin()->first, "stage1_dct");
}

// ---- repair visibility (trace spans on the recovery paths) --------------

TEST(ObsTrace, RepairAndScrubEmitASpanPerRepairedFrame) {
  const obs::ScopedTelemetry telemetry(true);

  const Dataset ds = make_dataset("Isotropic", 0.05, 2021);
  ChunkedConfig config;
  config.dpz = DpzConfig::strict();
  config.chunk_values = ds.data.size() / 4;
  config.parity_k = 4;
  config.parity_m = 2;
  std::vector<std::uint8_t> container = chunked_compress(ds.data, config);

  // Damage two frame payloads (within the parity budget).
  container[container.size() / 3] ^= 0xFF;
  container[2 * container.size() / 3] ^= 0xFF;

  auto spans_named = [](const char* wanted) {
    const json::Value doc =
        json::parse(obs::TraceRecorder::instance().json());
    const json::Value* events = doc.find("traceEvents");
    int n = 0;
    for (const json::Value& e : events->items)
      if (e.find("name")->text == wanted) ++n;
    return n;
  };

  // chunked_repair rewrites the damaged frames: one archive_repair span
  // for the operation, at least one frame_repair span per rebuilt frame.
  obs::TraceRecorder::instance().clear();
  RepairReport report;
  const std::vector<std::uint8_t> healed =
      chunked_repair(container, &report);
  ASSERT_EQ(report.frames_repaired.size(), 2U);
  EXPECT_GE(spans_named("archive_repair"), 1);
  EXPECT_GE(spans_named("frame_repair"),
            static_cast<int>(report.frames_repaired.size()));

  // chunked_scrub recomputes parity per group under the same spans.
  obs::TraceRecorder::instance().clear();
  const ScrubReport scrub = chunked_scrub(healed);
  EXPECT_TRUE(scrub.ok());
  ASSERT_GE(scrub.groups, 1U);
  EXPECT_GE(spans_named("archive_repair"), 1);
  EXPECT_GE(spans_named("frame_repair"), static_cast<int>(scrub.groups));

  // And a strict decode of the damaged container self-heals under
  // per-frame repair spans too.
  obs::TraceRecorder::instance().clear();
  const FloatArray back = chunked_decompress(container);
  ASSERT_EQ(back.size(), ds.data.size());
  EXPECT_GE(spans_named("frame_repair"), 2);
}

// ---- disabled-path cost -------------------------------------------------

TEST(ObsOverhead, DisabledSitesCostNanosecondsPerCall) {
  const obs::ScopedTelemetry telemetry(false);
  ASSERT_FALSE(obs::telemetry_enabled());
  // Pin the log threshold at the always-on default: the kInfo site in
  // the loop below must stay disarmed.
  const obs::ScopedLogLevel quiet(obs::LogLevel::kWarn);
  ASSERT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));

  constexpr std::size_t kIters = 1000000;
  Timer timer;
  for (std::size_t i = 0; i < kIters; ++i) {
    const obs::ScopedSpan span(Span::kCrcCheck);
    obs::count(Counter::kCrcChecks);
    obs::log_event(obs::Event::kCommandStart, obs::LogLevel::kInfo,
                   StatusCode::kOk);
  }
  const double ns_per_call = timer.elapsed() * 1e9 /
                             static_cast<double>(kIters);
  // A disarmed site is one relaxed load + branch; 500 ns is orders of
  // magnitude above that even for unoptimized builds on a loaded CI
  // box, while still catching an accidental clock read or lock.
  EXPECT_LT(ns_per_call, 500.0);

  // And it must record nothing.
  obs::TraceRecorder::instance().clear();
  {
    const obs::ScopedSpan span(Span::kCrcCheck);
  }
  EXPECT_EQ(obs::TraceRecorder::instance().event_count(), 0U);
}

}  // namespace
}  // namespace dpz
