// Table-driven malformed-archive tests: every targeted corruption of a
// valid archive must surface as a recoverable FormatError (StatusCode
// kFormat) — never a crash, never an unclassified exception — across the
// C++ DPZ decoder, the chunked container, and the C API.
//
// Unlike the randomized harness in fuzz_decode.cpp, each row here forges a
// *specific* header or section field at a known offset, so a regression in
// one validation check fails one named row.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "capi/dpz_c.h"
#include "core/chunked.h"
#include "core/dpz.h"
#include "util/crc32c.h"
#include "util/error.h"
#include "util/mutator.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray wave(std::vector<std::size_t> shape, std::uint64_t seed) {
  FloatArray a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.02) +
                              0.01 * rng.normal());
  return a;
}

std::uint32_t read_u32_at(const std::vector<std::uint8_t>& bytes,
                          std::size_t offset) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(bytes[offset + i]) << (8 * i);
  return v;
}

void write_u32_at(std::vector<std::uint8_t>& bytes, std::size_t offset,
                  std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i)
    bytes[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

struct CorruptionCase {
  const char* name;
  std::function<void(std::vector<std::uint8_t>&)> corrupt;
  const char* expect_substring;  // nullptr = any FormatError message
};

// DPZ rank-2 v2 archive layout (see docs/FORMAT.md): magic u32 @0,
// version u8 @4, flags u8 @5, error bound f64 @6, rank u8 @14,
// dims 2*u64 @15, m u64 @31, n u64 @39, original_total u64 @47,
// k u32 @55, outlier_count u64 @59, header CRC32C u32 @67, side section
// raw_size u64 @71 (followed by the side section's own crc u32 @79).
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffFlags = 5;
constexpr std::size_t kOffRank = 14;
constexpr std::size_t kOffDim0 = 15;
constexpr std::size_t kOffM = 31;
constexpr std::size_t kOffN = 39;
constexpr std::size_t kOffK = 55;
constexpr std::size_t kOffOutliers = 59;
constexpr std::size_t kOffHeaderCrc = 67;
constexpr std::size_t kOffSideRawSize = 71;

// Recomputes the header seal after a deliberate field forgery, so the row
// exercises the deep validation layer (geometry, section sizes) instead
// of stopping at the checksum. Rows WITHOUT this reseal prove the seal
// itself fires.
void reseal_dpz_header(std::vector<std::uint8_t>& bytes) {
  write_u32_at(bytes, kOffHeaderCrc,
               crc32c(std::span(bytes.data(), kOffHeaderCrc)));
}

void run_cases(const std::vector<std::uint8_t>& valid,
               const std::vector<CorruptionCase>& cases,
               const std::function<void(std::span<const std::uint8_t>)>&
                   decode) {
  // The pristine archive must decode — otherwise the table tests nothing.
  ASSERT_NO_THROW(decode(valid));
  for (const CorruptionCase& c : cases) {
    SCOPED_TRACE(c.name);
    std::vector<std::uint8_t> bytes = valid;
    c.corrupt(bytes);
    try {
      decode(bytes);
      FAIL() << "corrupted archive decoded without error";
    } catch (const FormatError& e) {
      // kChecksum is the v2 refinement of kFormat (ChecksumError derives
      // from FormatError); both are the recoverable malformed-bytes class.
      EXPECT_TRUE(e.code() == StatusCode::kFormat ||
                  e.code() == StatusCode::kChecksum)
          << "code " << static_cast<int>(e.code());
      EXPECT_NE(std::string(e.what()), "");
      if (c.expect_substring != nullptr) {
        EXPECT_NE(std::string(e.what()).find(c.expect_substring),
                  std::string::npos)
            << "message: " << e.what();
      }
    }
    // Any non-FormatError exception propagates out of the try and fails
    // the test: malformed bytes may only produce the recoverable status.
  }
}

class CorruptDpzArchive : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = dpz_compress(wave({64, 96}, 7), DpzConfig::strict());
    // The offset table above assumes a regular (non-stored) rank-2
    // archive; bail loudly if the encoder ever changes that for this
    // input rather than silently corrupting the wrong fields.
    ASSERT_GT(archive_.size(), kOffSideRawSize + 12);
    ASSERT_EQ(archive_[kOffVersion], 2);
    ASSERT_EQ(archive_[kOffRank], 2);
    ASSERT_EQ(archive_[kOffFlags] & 0x04, 0) << "unexpected stored-raw";
  }

  std::vector<std::uint8_t> archive_;
};

TEST_F(CorruptDpzArchive, TableDriven) {
  const std::vector<CorruptionCase> cases = {
      {"empty", [](auto& b) { b.clear(); }, nullptr},
      {"truncated-header", [](auto& b) { b.resize(10); }, nullptr},
      {"truncated-half", [](auto& b) { b.resize(b.size() / 2); }, nullptr},
      {"truncated-in-side-section",
       [](auto& b) { b.resize(kOffSideRawSize + 3); }, nullptr},
      {"bad-magic", [](auto& b) { b[0] ^= 0xFF; }, "not a DPZ archive"},
      {"bad-version", [](auto& b) { b[kOffVersion] = 9; }, "version"},
      {"zero-rank", [](auto& b) { b[kOffRank] = 0; }, "rank"},
      {"rank-5", [](auto& b) { b[kOffRank] = 5; }, "rank"},
      {"zero-dim", [](auto& b) { write_u64_at(b, kOffDim0, 0); },
       "extent"},
      {"huge-dim",
       [](auto& b) { write_u64_at(b, kOffDim0, std::uint64_t{1} << 50); },
       nullptr},
      // Resealed forgeries: the header CRC is recomputed so the geometry
      // invariants (not the seal) must reject the row.
      {"zero-m",
       [](auto& b) {
         write_u64_at(b, kOffM, 0);
         reseal_dpz_header(b);
       },
       "geometry"},
      {"m-equals-n",
       [](auto& b) {
         write_u64_at(b, kOffM, read_u64_at(b, kOffN));
         reseal_dpz_header(b);
       },
       "geometry"},
      {"zero-k",
       [](auto& b) {
         write_u32_at(b, kOffK, 0);
         reseal_dpz_header(b);
       },
       "geometry"},
      {"huge-outlier-count",
       [](auto& b) {
         write_u64_at(b, kOffOutliers, ~std::uint64_t{0});
         reseal_dpz_header(b);
       },
       "geometry"},
      // Unsealed forgery: the same field flip without the reseal must be
      // reported as header corruption by the CRC.
      {"forged-m-unsealed", [](auto& b) { write_u64_at(b, kOffM, 0); },
       "header checksum mismatch"},
      {"oversized-section-length",
       [](auto& b) {
         write_u64_at(b, kOffSideRawSize, std::uint64_t{1} << 40);
       },
       nullptr},
      {"zero-section-length",
       [](auto& b) { write_u64_at(b, kOffSideRawSize, 0); }, nullptr},
      // Section-body damage is caught by the section's own CRC before
      // the blob reaches the inflater.
      // raw_size u64 + crc u32 + blob_len u64 = 20 bytes of framing, so
      // +20 lands on the first byte of the side section's zlib blob.
      {"flipped-side-section-byte",
       [](auto& b) { b[kOffSideRawSize + 20] ^= 0x10; },
       "section checksum mismatch"},
      {"forged-side-section-crc",
       [](auto& b) { b[kOffSideRawSize + 8] ^= 0xFF; },
       "section checksum mismatch"},
  };
  run_cases(archive_, cases, [](std::span<const std::uint8_t> bytes) {
    (void)dpz_decompress(bytes);
  });
}

TEST_F(CorruptDpzArchive, InspectRejectsHeaderCorruption) {
  // dpz_inspect parses only the header, so the header rows must fail the
  // same way there (section corruption may legitimately pass inspection).
  const std::vector<CorruptionCase> cases = {
      {"empty", [](auto& b) { b.clear(); }, nullptr},
      {"bad-magic", [](auto& b) { b[0] ^= 0xFF; }, "not a DPZ archive"},
      {"bad-version", [](auto& b) { b[kOffVersion] = 9; }, "version"},
      {"zero-rank", [](auto& b) { b[kOffRank] = 0; }, "rank"},
      {"zero-dim", [](auto& b) { write_u64_at(b, kOffDim0, 0); },
       "extent"},
      // Inspection verifies the header seal too: a flipped geometry
      // field is corruption even to a header-only reader.
      {"forged-m-unsealed", [](auto& b) { write_u64_at(b, kOffM, 0); },
       "header checksum mismatch"},
  };
  run_cases(archive_, cases, [](std::span<const std::uint8_t> bytes) {
    (void)dpz_inspect(bytes);
  });
}

// Satellite regression: a side section whose byte count disagrees with the
// (m, k, standardized) the header claims must be rejected by the exact-size
// precheck in deserialize_side — before any partial parse or allocation.
TEST_F(CorruptDpzArchive, TruncatedSideSectionIsRejected) {
  std::vector<std::uint8_t> bytes = archive_;
  const std::uint32_t k = read_u32_at(bytes, kOffK);
  const std::uint64_t m = read_u64_at(bytes, kOffM);
  ASSERT_GE(k, 1U);
  // Nudge k by one (staying inside the geometry envelope k in [1, m]) so
  // every header invariant still holds but the side payload no longer
  // matches the m*k-determined layout.
  const std::uint32_t forged_k = (k + 1 <= m) ? k + 1 : k - 1;
  ASSERT_GE(forged_k, 1U);
  write_u32_at(bytes, kOffK, forged_k);
  reseal_dpz_header(bytes);  // past the seal, into deserialize_side
  try {
    (void)dpz_decompress(bytes);
    FAIL() << "inconsistent side section decoded without error";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("side section size"),
              std::string::npos)
        << "message: " << e.what();
  }
}

// Chunked v2 container layout ("DZC2", rank-1): magic u32 @0,
// version u8 @4, rank u8 @5, dim0 u64 @6, chunk_values u64 @14,
// frame_count u64 @22, then per-frame (offset u64, size u64, crc u32)
// triples from @30, header CRC32C u32 after the table.
constexpr std::size_t kChkOffVersion = 4;
constexpr std::size_t kChkOffRank = 5;
constexpr std::size_t kChkOffDim0 = 6;
constexpr std::size_t kChkOffCount = 22;
constexpr std::size_t kChkOffTable = 30;
constexpr std::size_t kChkEntryBytes = 20;

// Reseal for a 2-frame rank-1 container (the fixture below): the header
// CRC sits right after the two 20-byte table entries.
void reseal_chunked_header(std::vector<std::uint8_t>& bytes) {
  const std::size_t crc_off = kChkOffTable + 2 * kChkEntryBytes;
  write_u32_at(bytes, crc_off, crc32c(std::span(bytes.data(), crc_off)));
}

TEST(CorruptChunkedContainer, TableDriven) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  const std::vector<std::uint8_t> valid =
      chunked_compress(wave({2 * 4096}, 8), config);
  ASSERT_GE(valid.size(), kChkOffTable + 2 * kChkEntryBytes + 4);
  ASSERT_EQ(valid[kChkOffVersion], 2);
  ASSERT_EQ(valid[kChkOffRank], 1);
  const std::vector<CorruptionCase> cases = {
      {"empty", [](auto& b) { b.clear(); }, nullptr},
      {"truncated-header", [](auto& b) { b.resize(8); }, nullptr},
      {"truncated-half", [](auto& b) { b.resize(b.size() / 2); }, nullptr},
      {"bad-magic", [](auto& b) { b[0] ^= 0xFF; }, nullptr},
      {"bad-version", [](auto& b) { b[kChkOffVersion] = 9; }, "version"},
      {"zero-rank", [](auto& b) { b[kChkOffRank] = 0; }, nullptr},
      {"zero-dim", [](auto& b) { write_u64_at(b, kChkOffDim0, 0); },
       nullptr},
      {"huge-frame-count",
       [](auto& b) {
         write_u64_at(b, kChkOffCount, std::uint64_t{1} << 50);
       },
       "inconsistent chunking"},
      // Resealed table forgeries: the contiguity/bounds checks (not the
      // seal) must reject them.
      {"oversized-frame-size",
       [](auto& b) {
         write_u64_at(b, kChkOffTable + 8, std::uint64_t{1} << 40);
         reseal_chunked_header(b);
       },
       nullptr},
      {"frame-overlap-forged-offset",
       [](auto& b) {
         write_u64_at(b, kChkOffTable + kChkEntryBytes, ~std::uint64_t{0});
         reseal_chunked_header(b);
       },
       nullptr},
      // The same offset forgery without the reseal is header corruption:
      // v2 seals the frame table too.
      {"forged-table-unsealed",
       [](auto& b) {
         write_u64_at(b, kChkOffTable + kChkEntryBytes, ~std::uint64_t{0});
       },
       "header checksum mismatch"},
      // A flipped frame byte fails that frame's CRC before its bytes
      // reach the DPZ decoder.
      {"frame-payload-bit-flip",
       [](auto& b) { b[b.size() - 100] ^= 0x01; }, "checksum mismatch"},
      // Shape forgeries must be rejected by the header-only pre-pass,
      // i.e. with the shape-mismatch message even when a frame payload
      // byte is also corrupted — decoding a frame before the claimed
      // sizes are reconciled would surface a frame decode error instead.
      // The forged totals keep expected_frame_count at 2 (the tail-merge
      // envelope is [chunk + 8, 2 * chunk] for two frames, plus the
      // merged (2 * chunk, 2 * chunk + 8) tail) so the exact-chunking
      // check passes and the deeper pre-pass does the rejecting.
      {"shape-smaller-than-frames",
       [](auto& b) {
         write_u64_at(b, kChkOffDim0, 4096 + 8);
         b[b.size() / 2] ^= 0xFF;
         reseal_chunked_header(b);
       },
       "frames exceed the shape"},
      {"shape-larger-than-frames",
       [](auto& b) {
         write_u64_at(b, kChkOffDim0, 2 * 4096 + 3);
         reseal_chunked_header(b);
       },
       "frames do not cover the shape"},
  };
  run_cases(valid, cases, [](std::span<const std::uint8_t> bytes) {
    (void)chunked_decompress(bytes);
  });
}

// Chunked v3 layout for the 4-frame, rank-1, parity-4+2 fixture below:
// the v2 prefix (magic, version, rank, dim0, chunk_values, frame_count,
// 4 x 20-byte table entries) ends at 110, then parity_k u8 @110,
// parity_m u8 @111, the single group's shard_size u64 @112 and two
// parity CRC32Cs @120, header CRC u32 @128.
constexpr std::size_t kV3OffParityK = 110;
constexpr std::size_t kV3OffParityM = 111;
constexpr std::size_t kV3OffShardSize = 112;
constexpr std::size_t kV3OffParityCrc = 120;
constexpr std::size_t kV3OffHeaderCrc = 128;

void reseal_v3_header(std::vector<std::uint8_t>& bytes) {
  write_u32_at(bytes, kV3OffHeaderCrc,
               crc32c(std::span(bytes.data(), kV3OffHeaderCrc)));
}

TEST(CorruptChunkedContainer, ParityGeometryTableDriven) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  config.parity_k = 4;
  config.parity_m = 2;
  const std::vector<std::uint8_t> valid =
      chunked_compress(wave({4 * 4096}, 18), config);
  ASSERT_EQ(valid[kChkOffVersion], 3);
  ASSERT_EQ(valid[kV3OffParityK], 4);
  ASSERT_EQ(valid[kV3OffParityM], 2);
  const std::vector<CorruptionCase> cases = {
      // Resealed geometry forgeries: the parity validation (not the
      // header seal) must reject them.
      {"zero-parity-k",
       [](auto& b) {
         b[kV3OffParityK] = 0;
         reseal_v3_header(b);
       },
       "parity"},
      {"zero-parity-m",
       [](auto& b) {
         b[kV3OffParityM] = 0;
         reseal_v3_header(b);
       },
       "parity"},
      {"parity-geometry-overflow",
       [](auto& b) {
         b[kV3OffParityK] = 255;
         b[kV3OffParityM] = 255;
         reseal_v3_header(b);
       },
       "parity"},
      {"huge-shard-size",
       [](auto& b) {
         write_u64_at(b, kV3OffShardSize, std::uint64_t{1} << 50);
         reseal_v3_header(b);
       },
       nullptr},
      {"shard-smaller-than-frame",
       [](auto& b) {
         write_u64_at(b, kV3OffShardSize, 8);
         reseal_v3_header(b);
       },
       nullptr},
      // Unsealed forgery: the parity CRCs live under the header seal, so
      // flipping one is header corruption, never a trusted field.
      {"forged-parity-crc-unsealed",
       [](auto& b) { b[kV3OffParityCrc] ^= 0xFF; },
       "header checksum mismatch"},
      {"truncated-into-parity-area",
       [](auto& b) { b.resize(b.size() - 10); }, nullptr},
      {"v2-magic-on-v3-body", [](auto& b) { b[3] = 0x32; }, "version"},
  };
  run_cases(valid, cases, [](std::span<const std::uint8_t> bytes) {
    (void)chunked_decompress(bytes);
  });
}

// A forged DZC3 header whose per-group parity sizes sum to 2^64 + 252:
// the accumulator wraps to 252, which fits the trailing 252 bytes this
// forgery appends, so every post-wrap bound check passes and shard reads
// go out of bounds. The parser must reject the accumulation before it
// wraps. 66052 single-frame groups (k=1, m=254) at the 2^40 shard
// plausibility cap leave the sum 8*2^40 short of 2^64; the final group's
// shard of (2^43 + 252) / 254 bytes crosses it exactly.
TEST(CorruptChunkedContainer, ParityBytesOverflowRejected) {
  std::vector<std::uint8_t> b;
  auto put_u8 = [&](std::uint8_t v) { b.push_back(v); };
  auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  constexpr std::uint64_t kFullGroups = 66052;
  constexpr std::uint64_t kGroups = kFullGroups + 1;
  constexpr std::uint64_t kLastShard = ((std::uint64_t{1} << 43) + 252) / 254;
  static_assert(kFullGroups * 254 * (std::uint64_t{1} << 40) +
                        254 * kLastShard ==
                    std::uint64_t{252},  // wrapped: 2^64 + 252
                "forgery must wrap the parity accumulator to 252");
  b.reserve((70u << 20));
  put_u32(0x33435A44u);  // "DZC3"
  put_u8(3);             // version
  put_u8(1);             // rank
  put_u64(kGroups * 8);  // dim0: one 8-value frame per group
  put_u64(8);            // chunk_values
  put_u64(kGroups);      // frame_count
  for (std::uint64_t f = 0; f < kGroups; ++f) {
    put_u64(0);  // offset: all-empty frames are trivially contiguous
    put_u64(0);  // size: frame area is exactly the 252 post-wrap bytes
    put_u32(0);  // crc
  }
  put_u8(1);    // parity_k
  put_u8(254);  // parity_m
  for (std::uint64_t g = 0; g < kFullGroups; ++g) {
    put_u64(std::uint64_t{1} << 40);  // shard size at the cap
    for (int j = 0; j < 254; ++j) put_u32(0);
  }
  put_u64(kLastShard);
  for (int j = 0; j < 254; ++j) put_u32(0);
  put_u32(crc32c(std::span(b.data(), b.size())));  // sealed forgery
  b.resize(b.size() + 252, 0);  // the area the wrapped sum points into

  try {
    (void)chunked_decompress(b);
    FAIL() << "overflowing parity geometry must be rejected";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("parity exceeds the container"),
              std::string::npos);
  }
}

TEST(CorruptChunkedContainer, DamagedParityNeverCorruptsIntactDecode) {
  // The redundancy must be strictly additive: any corruption confined to
  // the parity shard payloads leaves the data decode byte-identical to
  // the pristine container's.
  ChunkedConfig config;
  config.chunk_values = 4096;
  config.parity_k = 4;
  config.parity_m = 2;
  const std::vector<std::uint8_t> valid =
      chunked_compress(wave({4 * 4096}, 19), config);
  const FloatArray reference = chunked_decompress(valid);

  const std::size_t shard = read_u64_at(valid, kV3OffShardSize);
  const std::size_t parity_bytes = 2 * shard;
  const std::size_t parity_begin = valid.size() - parity_bytes;

  Rng rng(20);
  for (int round = 0; round < 32; ++round) {
    std::vector<std::uint8_t> bytes = valid;
    const std::size_t hits = 1 + rng.uniform_index(64);
    for (std::size_t h = 0; h < hits; ++h)
      bytes[parity_begin + rng.uniform_index(parity_bytes)] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    DecodeReport report;
    const FloatArray out = chunked_decompress(bytes, config, &report);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.frames_repaired, 0u);
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], reference[i]) << "round " << round;
  }
}

// The same corruptions through the C boundary: status codes instead of
// exceptions, message via dpz_last_error().
TEST(CorruptArchiveCApi, StatusCodesAndMessages) {
  const std::vector<std::uint8_t> valid =
      dpz_compress(wave({48, 64}, 9), DpzConfig::loose());

  struct CApiCase {
    const char* name;
    std::function<void(std::vector<std::uint8_t>&)> corrupt;
    // Whether dpz_inspect-based entry points (shape, is_double) can see
    // the corruption: they parse only the header, so a truncation that
    // leaves the header intact legitimately passes inspection.
    bool header_detectable;
  };
  const std::vector<CApiCase> cases = {
      {"bad-magic", [](auto& b) { b[0] ^= 0xFF; }, true},
      {"truncated", [](auto& b) { b.resize(b.size() / 2); }, false},
      {"bad-version", [](auto& b) { b[kOffVersion] = 77; }, true},
      {"zero-dim", [](auto& b) { write_u64_at(b, kOffDim0, 0); }, true},
  };
  for (const CApiCase& c : cases) {
    SCOPED_TRACE(c.name);
    std::vector<std::uint8_t> bytes = valid;
    c.corrupt(bytes);

    float* out = nullptr;
    std::size_t count = 0;
    const int rc =
        dpz_decompress_float(bytes.data(), bytes.size(), &out, &count);
    EXPECT_EQ(rc, DPZ_ERR_FORMAT);
    EXPECT_EQ(std::string(dpz_status_name(rc)), "format");
    EXPECT_NE(std::string(dpz_last_error()), "");
    EXPECT_EQ(out, nullptr) << "output must be untouched on error";

    if (c.header_detectable) {
      std::size_t dims[4] = {0, 0, 0, 0};
      std::size_t rank = 0;
      EXPECT_EQ(dpz_archive_shape(bytes.data(), bytes.size(), dims, &rank),
                DPZ_ERR_FORMAT);
      EXPECT_LT(dpz_archive_is_double(bytes.data(), bytes.size()), 0);
    }
  }

  // A flipped payload byte is classified as the checksum refinement of
  // the format error, with its own stable status name.
  {
    std::vector<std::uint8_t> bytes = valid;
    bytes[bytes.size() / 2] ^= 0x01;
    float* out = nullptr;
    std::size_t count = 0;
    const int rc =
        dpz_decompress_float(bytes.data(), bytes.size(), &out, &count);
    EXPECT_EQ(rc, DPZ_ERR_CHECKSUM);
    EXPECT_EQ(std::string(dpz_status_name(rc)), "checksum");
    EXPECT_NE(std::string(dpz_last_error()).find("checksum mismatch"),
              std::string::npos);
    EXPECT_EQ(out, nullptr) << "output must be untouched on error";
  }
  EXPECT_EQ(std::string(dpz_status_name(DPZ_PARTIAL)), "partial");

  // Contract-violation arguments are classified as invalid-argument, not
  // format, and never touch the archive bytes.
  float* out = nullptr;
  std::size_t count = 0;
  EXPECT_EQ(dpz_decompress_float(nullptr, 0, &out, &count),
            DPZ_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(dpz_decompress_float(valid.data(), valid.size(), nullptr,
                                 &count),
            DPZ_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(std::string(dpz_status_name(DPZ_ERR_INVALID_ARGUMENT)),
            "invalid_argument");
  EXPECT_EQ(std::string(dpz_status_name(DPZ_OK)), "ok");
}

}  // namespace
}  // namespace dpz
