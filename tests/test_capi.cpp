// Tests for the C API shim: option defaults, f32/f64 round-trips through
// the C surface, shape/precision introspection, error-code translation,
// and the no-exceptions-across-the-boundary contract.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "capi/dpz_c.h"

namespace {

std::vector<float> smooth_values(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.01));
  return v;
}

TEST(CApi, OptionsDefaultMatchesStrictScheme) {
  dpz_options opt;
  dpz_options_default(&opt);
  EXPECT_EQ(opt.scheme, DPZ_SCHEME_STRICT);
  EXPECT_EQ(opt.selection, DPZ_SELECT_TVE);
  EXPECT_DOUBLE_EQ(opt.tve, 0.99999);
  EXPECT_EQ(opt.use_sampling, 0);
  EXPECT_DOUBLE_EQ(opt.dct_keep_fraction, 1.0);
  EXPECT_EQ(opt.zlib_level, 6);
  dpz_options_default(nullptr);  // must not crash
}

TEST(CApi, FloatRoundTrip) {
  const std::vector<float> data = smooth_values(64 * 96);
  const size_t dims[2] = {64, 96};
  dpz_options opt;
  dpz_options_default(&opt);

  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 2, &opt, &archive,
                               &archive_size),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_NE(archive, nullptr);
  EXPECT_LT(archive_size, data.size() * sizeof(float));

  size_t shape[4] = {0, 0, 0, 0};
  size_t rank = 0;
  ASSERT_EQ(dpz_archive_shape(archive, archive_size, shape, &rank), DPZ_OK);
  EXPECT_EQ(rank, 2U);
  EXPECT_EQ(shape[0], 64U);
  EXPECT_EQ(shape[1], 96U);
  EXPECT_EQ(dpz_archive_is_double(archive, archive_size), 0);

  float* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(dpz_decompress_float(archive, archive_size, &out, &out_count),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_EQ(out_count, data.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < out_count; ++i)
    max_err = std::max(max_err,
                       std::abs(static_cast<double>(data[i]) - out[i]));
  EXPECT_LT(max_err, 0.05);

  dpz_free(archive);
  dpz_free(out);
}

TEST(CApi, DoubleRoundTrip) {
  std::vector<double> data(48 * 64);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::cos(static_cast<double>(i) * 0.02);
  const size_t dims[2] = {48, 64};
  dpz_options opt;
  dpz_options_default(&opt);

  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_double(data.data(), dims, 2, &opt, &archive,
                                &archive_size),
            DPZ_OK)
      << dpz_last_error();
  EXPECT_EQ(dpz_archive_is_double(archive, archive_size), 1);

  double* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(dpz_decompress_double(archive, archive_size, &out, &out_count),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_EQ(out_count, data.size());
  dpz_free(archive);
  dpz_free(out);
}

TEST(CApi, PrecisionMismatchGivesFormatError) {
  const std::vector<float> data = smooth_values(4096);
  const size_t dims[1] = {4096};
  dpz_options opt;
  dpz_options_default(&opt);
  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 1, &opt, &archive,
                               &archive_size),
            DPZ_OK);

  double* out = nullptr;
  size_t out_count = 0;
  EXPECT_EQ(dpz_decompress_double(archive, archive_size, &out, &out_count),
            DPZ_ERR_FORMAT);
  EXPECT_NE(std::string(dpz_last_error()).find("dpz_decompress"),
            std::string::npos);
  EXPECT_EQ(out, nullptr);  // outputs untouched on error
  dpz_free(archive);
}

TEST(CApi, NullArgumentsRejected) {
  dpz_options opt;
  dpz_options_default(&opt);
  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  const size_t dims[1] = {16};
  EXPECT_EQ(dpz_compress_float(nullptr, dims, 1, &opt, &archive,
                               &archive_size),
            DPZ_ERR_INVALID_ARGUMENT);
  float dummy = 0.0F;
  EXPECT_EQ(dpz_compress_float(&dummy, dims, 0, &opt, &archive,
                               &archive_size),
            DPZ_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(dpz_decompress_float(nullptr, 0, nullptr, nullptr),
            DPZ_ERR_INVALID_ARGUMENT);
}

TEST(CApi, GarbageArchiveGivesFormatErrorNotCrash) {
  std::vector<unsigned char> garbage(64, 0xAA);
  float* out = nullptr;
  size_t out_count = 0;
  EXPECT_EQ(dpz_decompress_float(garbage.data(), garbage.size(), &out,
                                 &out_count),
            DPZ_ERR_FORMAT);
  EXPECT_NE(dpz_last_error()[0], '\0');
  size_t shape[4];
  size_t rank = 0;
  EXPECT_EQ(dpz_archive_shape(garbage.data(), garbage.size(), shape, &rank),
            DPZ_ERR_FORMAT);
  EXPECT_LT(dpz_archive_is_double(garbage.data(), garbage.size()), 0);
}

TEST(CApi, KneeSelectionViaOptions) {
  const std::vector<float> data = smooth_values(128 * 64);
  const size_t dims[2] = {128, 64};
  dpz_options opt;
  dpz_options_default(&opt);
  opt.scheme = DPZ_SCHEME_LOOSE;
  opt.selection = DPZ_SELECT_KNEE_1D;

  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 2, &opt, &archive,
                               &archive_size),
            DPZ_OK)
      << dpz_last_error();
  float* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(dpz_decompress_float(archive, archive_size, &out, &out_count),
            DPZ_OK);
  EXPECT_EQ(out_count, data.size());
  dpz_free(archive);
  dpz_free(out);
}

}  // namespace
