// Tests for the C API shim: option defaults, f32/f64 round-trips through
// the C surface, shape/precision introspection, error-code translation,
// and the no-exceptions-across-the-boundary contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "capi/dpz_c.h"
#include "core/chunked.h"

namespace {

std::vector<float> smooth_values(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.01));
  return v;
}

TEST(CApi, OptionsDefaultMatchesStrictScheme) {
  dpz_options opt;
  dpz_options_default(&opt);
  EXPECT_EQ(opt.scheme, DPZ_SCHEME_STRICT);
  EXPECT_EQ(opt.selection, DPZ_SELECT_TVE);
  EXPECT_DOUBLE_EQ(opt.tve, 0.99999);
  EXPECT_EQ(opt.use_sampling, 0);
  EXPECT_DOUBLE_EQ(opt.dct_keep_fraction, 1.0);
  EXPECT_EQ(opt.zlib_level, 6);
  EXPECT_EQ(opt.best_effort, 0);
  EXPECT_DOUBLE_EQ(opt.fill_value, 0.0);
  EXPECT_EQ(opt.parity_k, 16);
  EXPECT_EQ(opt.parity_m, 0);  // parity is opt-in
  dpz_options_default(nullptr);  // must not crash
}

TEST(CApi, StatusNamesCoverIntegrityCodes) {
  EXPECT_EQ(std::string(dpz_status_name(DPZ_ERR_CHECKSUM)), "checksum");
  EXPECT_EQ(std::string(dpz_status_name(DPZ_PARTIAL)), "partial");
  EXPECT_EQ(std::string(dpz_status_name(DPZ_OK)), "ok");
}

// A chunked container for the C-surface tests; built through the C++
// encoder so these rows stay independent of dpz_chunked_compress_float
// (which has its own coverage below).
std::vector<unsigned char> chunked_fixture(std::vector<float>* values) {
  *values = smooth_values(3 * 4096);
  const dpz::FloatArray data({values->size()},
                             std::vector<float>(*values));
  dpz::ChunkedConfig config;
  config.chunk_values = 4096;
  return dpz::chunked_compress(data, config);
}

TEST(CApi, ChunkedStrictDecodeRoundTrips) {
  std::vector<float> values;
  const std::vector<unsigned char> container = chunked_fixture(&values);

  float* out = nullptr;
  size_t out_count = 0;
  dpz_decode_report report;
  ASSERT_EQ(dpz_chunked_decompress_float(container.data(),
                                         container.size(), nullptr, &out,
                                         &out_count, &report),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_EQ(out_count, values.size());
  EXPECT_EQ(report.frames_total, 3U);
  EXPECT_EQ(report.frames_recovered, 3U);
  EXPECT_EQ(report.frames_lost, 0U);
  EXPECT_EQ(report.first_lost_frame, static_cast<size_t>(-1));
  EXPECT_EQ(report.first_error[0], '\0');
  dpz_free(out);
}

TEST(CApi, ChunkedDamageStrictFailsBestEffortGoesPartial) {
  std::vector<float> values;
  std::vector<unsigned char> container = chunked_fixture(&values);

  // Reference reconstruction from the intact container.
  float* ref = nullptr;
  size_t ref_count = 0;
  ASSERT_EQ(dpz_chunked_decompress_float(container.data(),
                                         container.size(), nullptr, &ref,
                                         &ref_count, nullptr),
            DPZ_OK);

  container[container.size() - 32] ^= 0x20;  // damage the last frame

  // Strict: the checksum refinement of the format error.
  float* out = nullptr;
  size_t out_count = 0;
  EXPECT_EQ(dpz_chunked_decompress_float(container.data(),
                                         container.size(), nullptr, &out,
                                         &out_count, nullptr),
            DPZ_ERR_CHECKSUM);
  EXPECT_EQ(out, nullptr) << "output must be untouched on error";
  EXPECT_NE(std::string(dpz_last_error()).find("checksum"),
            std::string::npos);

  // Best effort: partial result, lost frame filled and reported.
  dpz_options opt;
  dpz_options_default(&opt);
  opt.best_effort = 1;
  opt.fill_value = -3.0;
  dpz_decode_report report;
  ASSERT_EQ(dpz_chunked_decompress_float(container.data(),
                                         container.size(), &opt, &out,
                                         &out_count, &report),
            DPZ_PARTIAL);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out_count, ref_count);
  EXPECT_EQ(report.frames_total, 3U);
  EXPECT_EQ(report.frames_recovered, 2U);
  EXPECT_EQ(report.frames_lost, 1U);
  EXPECT_EQ(report.first_lost_frame, 2U);
  EXPECT_NE(std::string(report.first_error).find("checksum"),
            std::string::npos);
  for (size_t i = 0; i < out_count; ++i) {
    if (i < 2 * 4096) {
      ASSERT_EQ(out[i], ref[i]) << "intact frame altered at " << i;
    } else {
      ASSERT_EQ(out[i], -3.0F) << "lost frame not filled at " << i;
    }
  }
  dpz_free(ref);
  dpz_free(out);
}

TEST(CApi, ChunkedDoubleDecompressMatchesFloatVariant) {
  std::vector<float> values;
  const std::vector<unsigned char> container = chunked_fixture(&values);

  float* f_out = nullptr;
  size_t f_count = 0;
  ASSERT_EQ(dpz_chunked_decompress_float(container.data(),
                                         container.size(), nullptr, &f_out,
                                         &f_count, nullptr),
            DPZ_OK);
  double* d_out = nullptr;
  size_t d_count = 0;
  dpz_decode_report report;
  ASSERT_EQ(dpz_chunked_decompress_double(container.data(),
                                          container.size(), nullptr,
                                          &d_out, &d_count, &report),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_EQ(d_count, f_count);
  EXPECT_EQ(report.frames_total, 3U);
  EXPECT_EQ(report.frames_recovered, 3U);
  EXPECT_EQ(report.frames_repaired, 0U);
  for (size_t i = 0; i < d_count; ++i)
    ASSERT_EQ(d_out[i], static_cast<double>(f_out[i])) << "value " << i;
  dpz_free(f_out);
  dpz_free(d_out);
}

TEST(CApi, ChunkedDoubleBestEffortFillsWithDoubleFill) {
  std::vector<float> values;
  std::vector<unsigned char> container = chunked_fixture(&values);
  container[container.size() - 32] ^= 0x20;  // damage the last frame

  double* out = nullptr;
  size_t out_count = 0;
  EXPECT_EQ(dpz_chunked_decompress_double(container.data(),
                                          container.size(), nullptr, &out,
                                          &out_count, nullptr),
            DPZ_ERR_CHECKSUM);
  EXPECT_EQ(out, nullptr);

  dpz_options opt;
  dpz_options_default(&opt);
  opt.best_effort = 1;
  opt.fill_value = 0.1;  // exactly representable only as double
  dpz_decode_report report;
  ASSERT_EQ(dpz_chunked_decompress_double(container.data(),
                                          container.size(), &opt, &out,
                                          &out_count, &report),
            DPZ_PARTIAL);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(report.frames_lost, 1U);
  EXPECT_EQ(report.first_lost_frame, 2U);
  // The double pipeline must not round the fill through float.
  for (size_t i = 2 * 4096; i < out_count; ++i)
    ASSERT_EQ(out[i], 0.1) << "fill at " << i;
  dpz_free(out);
}

TEST(CApi, ChunkedCompressWithParityRepairsAcrossTheBoundary) {
  const std::vector<float> data = smooth_values(6 * 4096);
  const size_t dims[1] = {6 * 4096};
  dpz_options opt;
  dpz_options_default(&opt);
  opt.parity_k = 3;
  opt.parity_m = 1;

  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_chunked_compress_float(data.data(), dims, 1, 4096, &opt,
                                       &archive, &archive_size),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_NE(archive, nullptr);

  // Reference reconstruction from the intact container.
  float* ref = nullptr;
  size_t ref_count = 0;
  ASSERT_EQ(dpz_chunked_decompress_float(archive, archive_size, nullptr,
                                         &ref, &ref_count, nullptr),
            DPZ_OK);
  ASSERT_EQ(ref_count, data.size());

  // Damage one frame's payload; parity must absorb it: strict decode
  // still returns DPZ_OK with the repair reported, bytes unchanged.
  archive[archive_size / 2] ^= 0x40;
  float* out = nullptr;
  size_t out_count = 0;
  dpz_decode_report report;
  ASSERT_EQ(dpz_chunked_decompress_float(archive, archive_size, nullptr,
                                         &out, &out_count, &report),
            DPZ_OK)
      << dpz_last_error();
  EXPECT_EQ(report.frames_total, 6U);
  EXPECT_EQ(report.frames_repaired, 1U);
  EXPECT_EQ(report.frames_lost, 0U);
  EXPECT_EQ(report.frames_recovered, 6U);
  ASSERT_EQ(out_count, ref_count);
  for (size_t i = 0; i < out_count; ++i)
    ASSERT_EQ(out[i], ref[i]) << "repair not byte-exact at " << i;

  dpz_free(archive);
  dpz_free(ref);
  dpz_free(out);
}

TEST(CApi, ChunkedCompressRejectsBadParityGeometry) {
  const std::vector<float> data = smooth_values(4096);
  const size_t dims[1] = {4096};
  dpz_options opt;
  dpz_options_default(&opt);
  opt.parity_k = 254;
  opt.parity_m = 2;  // k + m > 255
  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  EXPECT_EQ(dpz_chunked_compress_float(data.data(), dims, 1, 4096, &opt,
                                       &archive, &archive_size),
            DPZ_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(archive, nullptr);
  EXPECT_EQ(dpz_chunked_compress_float(nullptr, dims, 1, 4096, &opt,
                                       &archive, &archive_size),
            DPZ_ERR_INVALID_ARGUMENT);
}

TEST(CApi, MetricsExposeRepairCounters) {
  dpz_telemetry_enable(1);
  dpz_metrics_reset();

  const std::vector<float> data = smooth_values(4 * 4096);
  const size_t dims[1] = {4 * 4096};
  dpz_options opt;
  dpz_options_default(&opt);
  opt.parity_k = 4;
  opt.parity_m = 1;
  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_chunked_compress_float(data.data(), dims, 1, 4096, &opt,
                                       &archive, &archive_size),
            DPZ_OK);
  archive[archive_size / 2] ^= 0x08;

  float* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(dpz_chunked_decompress_float(archive, archive_size, nullptr,
                                         &out, &out_count, nullptr),
            DPZ_OK)
      << dpz_last_error();

  dpz_metrics metrics;
  ASSERT_EQ(dpz_metrics_snapshot(&metrics), DPZ_OK);
  EXPECT_EQ(metrics.frames_repaired, 1U);
  EXPECT_EQ(metrics.repair_failed, 0U);

  dpz_free(archive);
  dpz_free(out);
  dpz_telemetry_enable(0);
}

TEST(CApi, FloatRoundTrip) {
  const std::vector<float> data = smooth_values(64 * 96);
  const size_t dims[2] = {64, 96};
  dpz_options opt;
  dpz_options_default(&opt);

  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 2, &opt, &archive,
                               &archive_size),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_NE(archive, nullptr);
  EXPECT_LT(archive_size, data.size() * sizeof(float));

  size_t shape[4] = {0, 0, 0, 0};
  size_t rank = 0;
  ASSERT_EQ(dpz_archive_shape(archive, archive_size, shape, &rank), DPZ_OK);
  EXPECT_EQ(rank, 2U);
  EXPECT_EQ(shape[0], 64U);
  EXPECT_EQ(shape[1], 96U);
  EXPECT_EQ(dpz_archive_is_double(archive, archive_size), 0);

  float* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(dpz_decompress_float(archive, archive_size, &out, &out_count),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_EQ(out_count, data.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < out_count; ++i)
    max_err = std::max(max_err,
                       std::abs(static_cast<double>(data[i]) - out[i]));
  EXPECT_LT(max_err, 0.05);

  dpz_free(archive);
  dpz_free(out);
}

TEST(CApi, DoubleRoundTrip) {
  std::vector<double> data(48 * 64);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::cos(static_cast<double>(i) * 0.02);
  const size_t dims[2] = {48, 64};
  dpz_options opt;
  dpz_options_default(&opt);

  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_double(data.data(), dims, 2, &opt, &archive,
                                &archive_size),
            DPZ_OK)
      << dpz_last_error();
  EXPECT_EQ(dpz_archive_is_double(archive, archive_size), 1);

  double* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(dpz_decompress_double(archive, archive_size, &out, &out_count),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_EQ(out_count, data.size());
  dpz_free(archive);
  dpz_free(out);
}

TEST(CApi, PrecisionMismatchGivesFormatError) {
  const std::vector<float> data = smooth_values(4096);
  const size_t dims[1] = {4096};
  dpz_options opt;
  dpz_options_default(&opt);
  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 1, &opt, &archive,
                               &archive_size),
            DPZ_OK);

  double* out = nullptr;
  size_t out_count = 0;
  EXPECT_EQ(dpz_decompress_double(archive, archive_size, &out, &out_count),
            DPZ_ERR_FORMAT);
  EXPECT_NE(std::string(dpz_last_error()).find("dpz_decompress"),
            std::string::npos);
  EXPECT_EQ(out, nullptr);  // outputs untouched on error
  dpz_free(archive);
}

TEST(CApi, NullArgumentsRejected) {
  dpz_options opt;
  dpz_options_default(&opt);
  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  const size_t dims[1] = {16};
  EXPECT_EQ(dpz_compress_float(nullptr, dims, 1, &opt, &archive,
                               &archive_size),
            DPZ_ERR_INVALID_ARGUMENT);
  float dummy = 0.0F;
  EXPECT_EQ(dpz_compress_float(&dummy, dims, 0, &opt, &archive,
                               &archive_size),
            DPZ_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(dpz_decompress_float(nullptr, 0, nullptr, nullptr),
            DPZ_ERR_INVALID_ARGUMENT);
}

TEST(CApi, GarbageArchiveGivesFormatErrorNotCrash) {
  std::vector<unsigned char> garbage(64, 0xAA);
  float* out = nullptr;
  size_t out_count = 0;
  EXPECT_EQ(dpz_decompress_float(garbage.data(), garbage.size(), &out,
                                 &out_count),
            DPZ_ERR_FORMAT);
  EXPECT_NE(dpz_last_error()[0], '\0');
  size_t shape[4];
  size_t rank = 0;
  EXPECT_EQ(dpz_archive_shape(garbage.data(), garbage.size(), shape, &rank),
            DPZ_ERR_FORMAT);
  EXPECT_LT(dpz_archive_is_double(garbage.data(), garbage.size()), 0);
}

TEST(CApi, CancelTokenLifecycleAndSemantics) {
  dpz_cancel_token* token = dpz_cancel_token_new();
  ASSERT_NE(token, nullptr);
  EXPECT_EQ(dpz_cancel_requested(token), 0);
  dpz_cancel(token);
  EXPECT_EQ(dpz_cancel_requested(token), 1);
  dpz_cancel(token);  // idempotent
  EXPECT_EQ(dpz_cancel_requested(token), 1);
  dpz_cancel_token_free(token);
  // Null handles are inert everywhere.
  dpz_cancel(nullptr);
  EXPECT_EQ(dpz_cancel_requested(nullptr), 0);
  dpz_cancel_token_free(nullptr);
}

TEST(CApi, ResourceLimitOptionsGovernCompressAndDecompress) {
  const std::vector<float> data = smooth_values(64 * 96);
  const size_t dims[2] = {64, 96};
  dpz_options opt;
  dpz_options_default(&opt);
  EXPECT_EQ(opt.max_memory_bytes, 0U);
  EXPECT_DOUBLE_EQ(opt.deadline_ms, 0.0);
  EXPECT_EQ(opt.cancel, nullptr);

  // Generous limits: everything succeeds and bytes match the ungoverned
  // archive (limits are byte-invisible when they never trip).
  unsigned char* plain = nullptr;
  size_t plain_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 2, &opt, &plain,
                               &plain_size),
            DPZ_OK);
  opt.max_memory_bytes = 1ULL << 30;
  opt.deadline_ms = 60000.0;
  unsigned char* governed = nullptr;
  size_t governed_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 2, &opt, &governed,
                               &governed_size),
            DPZ_OK)
      << dpz_last_error();
  ASSERT_EQ(governed_size, plain_size);
  EXPECT_EQ(std::memcmp(governed, plain, plain_size), 0);

  float* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(dpz_decompress_float_ex(governed, governed_size, &opt, &out,
                                    &out_count),
            DPZ_OK)
      << dpz_last_error();
  EXPECT_EQ(out_count, data.size());
  dpz_free(out);
  out = nullptr;

  // A budget smaller than the decoded output: pre-flight admission
  // rejects with the dedicated status, outputs untouched.
  dpz_options tiny;
  dpz_options_default(&tiny);
  tiny.max_memory_bytes = 1024;
  EXPECT_EQ(dpz_decompress_float_ex(governed, governed_size, &tiny, &out,
                                    &out_count),
            DPZ_ERR_RESOURCE);
  EXPECT_EQ(out, nullptr);
  EXPECT_EQ(std::string(dpz_status_name(DPZ_ERR_RESOURCE)),
            "resource_exhausted");

  // An expired deadline aborts at the first checkpoint.
  dpz_options late;
  dpz_options_default(&late);
  late.deadline_ms = 1e-6;
  EXPECT_EQ(dpz_decompress_float_ex(governed, governed_size, &late, &out,
                                    &out_count),
            DPZ_ERR_DEADLINE);
  EXPECT_EQ(std::string(dpz_status_name(DPZ_ERR_DEADLINE)),
            "deadline_exceeded");

  // A pre-cancelled token aborts compress and decompress alike.
  dpz_cancel_token* token = dpz_cancel_token_new();
  ASSERT_NE(token, nullptr);
  dpz_cancel(token);
  dpz_options cancelled;
  dpz_options_default(&cancelled);
  cancelled.cancel = token;
  unsigned char* never = nullptr;
  size_t never_size = 0;
  EXPECT_EQ(dpz_compress_float(data.data(), dims, 2, &cancelled, &never,
                               &never_size),
            DPZ_ERR_CANCELLED);
  EXPECT_EQ(never, nullptr);
  EXPECT_EQ(dpz_decompress_float_ex(governed, governed_size, &cancelled,
                                    &out, &out_count),
            DPZ_ERR_CANCELLED);
  EXPECT_EQ(std::string(dpz_status_name(DPZ_ERR_CANCELLED)), "cancelled");
  dpz_cancel_token_free(token);

  dpz_free(plain);
  dpz_free(governed);
}

TEST(CApi, MetricsExposeGovernanceCounters) {
  dpz_telemetry_enable(1);
  dpz_metrics_reset();

  const std::vector<float> data = smooth_values(64 * 96);
  const size_t dims[2] = {64, 96};
  dpz_options defaults;
  dpz_options_default(&defaults);
  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 2, &defaults, &archive,
                               &archive_size),
            DPZ_OK);

  dpz_options tiny;
  dpz_options_default(&tiny);
  tiny.max_memory_bytes = 1024;
  float* out = nullptr;
  size_t out_count = 0;
  EXPECT_EQ(dpz_decompress_float_ex(archive, archive_size, &tiny, &out,
                                    &out_count),
            DPZ_ERR_RESOURCE);

  dpz_options late;
  dpz_options_default(&late);
  late.deadline_ms = 1e-6;
  EXPECT_EQ(dpz_decompress_float_ex(archive, archive_size, &late, &out,
                                    &out_count),
            DPZ_ERR_DEADLINE);

  dpz_cancel_token* token = dpz_cancel_token_new();
  dpz_cancel(token);
  dpz_options cancelled;
  dpz_options_default(&cancelled);
  cancelled.cancel = token;
  EXPECT_EQ(dpz_decompress_float_ex(archive, archive_size, &cancelled,
                                    &out, &out_count),
            DPZ_ERR_CANCELLED);
  dpz_cancel_token_free(token);

  dpz_metrics metrics;
  ASSERT_EQ(dpz_metrics_snapshot(&metrics), DPZ_OK);
  EXPECT_EQ(metrics.admission_rejected, 1U);
  EXPECT_EQ(metrics.deadline_exceeded, 1U);
  EXPECT_EQ(metrics.cancelled, 1U);

  dpz_free(archive);
  dpz_telemetry_enable(0);
}

TEST(CApi, KneeSelectionViaOptions) {
  const std::vector<float> data = smooth_values(128 * 64);
  const size_t dims[2] = {128, 64};
  dpz_options opt;
  dpz_options_default(&opt);
  opt.scheme = DPZ_SCHEME_LOOSE;
  opt.selection = DPZ_SELECT_KNEE_1D;

  unsigned char* archive = nullptr;
  size_t archive_size = 0;
  ASSERT_EQ(dpz_compress_float(data.data(), dims, 2, &opt, &archive,
                               &archive_size),
            DPZ_OK)
      << dpz_last_error();
  float* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(dpz_decompress_float(archive, archive_size, &out, &out_count),
            DPZ_OK);
  EXPECT_EQ(out_count, data.size());
  dpz_free(archive);
  dpz_free(out);
}

}  // namespace
