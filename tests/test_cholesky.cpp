// Unit tests for the Cholesky factorization: known factors, solve
// correctness, full inverse, the inverse-diagonal fast path (VIF), and
// rejection of indefinite matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "util/rng.h"

namespace dpz {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix q(n, n);
  for (double& v : q.flat()) v = rng.normal();
  Matrix a = q.transpose_multiply(q);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Cholesky, KnownFactor) {
  // A = [[4,2],[2,3]] = L L^T with L = [[2,0],[1,sqrt(2)]].
  const Matrix a(2, 2, {4, 2, 2, 3});
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->lower()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol->lower()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol->lower()(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3 and -1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_THROW(Cholesky::factor(a), InvalidArgument);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const std::size_t n = 25;
  const Matrix a = random_spd(n, 5);
  Rng rng(6);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.normal();
  const std::vector<double> b = a.multiply(x_true);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const std::vector<double> x = chol->solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, SolveRejectsBadLength) {
  const auto chol = Cholesky::factor(random_spd(4, 7));
  ASSERT_TRUE(chol.has_value());
  const std::vector<double> b(3, 1.0);
  EXPECT_THROW(chol->solve(b), InvalidArgument);
}

TEST(Cholesky, InverseTimesOriginalIsIdentity) {
  const std::size_t n = 15;
  const Matrix a = random_spd(n, 8);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix prod = a.multiply(chol->inverse());
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(n)), 1e-8);
}

TEST(Cholesky, InverseDiagonalMatchesFullInverse) {
  const std::size_t n = 30;
  const Matrix a = random_spd(n, 9);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix inv = chol->inverse();
  const std::vector<double> diag = chol->inverse_diagonal();
  ASSERT_EQ(diag.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(diag[i], inv(i, i), 1e-10);
}

TEST(Cholesky, IdentityFactorsToItself) {
  const Matrix i5 = Matrix::identity(5);
  const auto chol = Cholesky::factor(i5);
  ASSERT_TRUE(chol.has_value());
  EXPECT_LT(chol->lower().max_abs_diff(i5), 1e-15);
  const std::vector<double> diag = chol->inverse_diagonal();
  for (const double d : diag) EXPECT_NEAR(d, 1.0, 1e-15);
}

}  // namespace
}  // namespace dpz
