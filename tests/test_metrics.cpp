// Unit tests for the compression-quality metrics (PSNR, MSE, theta,
// bit-rate) against hand-computed values.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/metrics.h"
#include "util/error.h"

namespace dpz {
namespace {

TEST(Metrics, PerfectReconstructionIsInfinitePsnr) {
  const std::vector<float> a{1.0F, 2.0F, 3.0F};
  const ErrorStats s = compute_error_stats(std::span<const float>(a),
                                             std::span<const float>(a));
  EXPECT_EQ(s.mse, 0.0);
  EXPECT_TRUE(std::isinf(s.psnr_db));
  EXPECT_EQ(s.max_abs_error, 0.0);
  EXPECT_EQ(s.mean_rel_error, 0.0);
}

TEST(Metrics, HandComputedStats) {
  const std::vector<float> orig{0.0F, 1.0F, 2.0F, 3.0F};
  const std::vector<float> rec{0.5F, 1.0F, 2.0F, 2.0F};
  const ErrorStats s = compute_error_stats(std::span<const float>(orig),
                                           std::span<const float>(rec));
  // Diffs: -0.5, 0, 0, 1 -> MSE = (0.25 + 1)/4 = 0.3125.
  EXPECT_NEAR(s.mse, 0.3125, 1e-12);
  EXPECT_DOUBLE_EQ(s.max_abs_error, 1.0);
  EXPECT_DOUBLE_EQ(s.value_range, 3.0);
  // theta = mean(|d|)/range = (1.5/4)/3 = 0.125.
  EXPECT_NEAR(s.mean_rel_error, 0.125, 1e-12);
  EXPECT_NEAR(s.psnr_db, 20.0 * std::log10(3.0) - 10.0 * std::log10(0.3125),
              1e-9);
}

TEST(Metrics, DoubleOverloadAgreesWithFloat) {
  const std::vector<float> of{1.0F, 5.0F};
  const std::vector<float> rf{2.0F, 4.0F};
  const std::vector<double> od{1.0, 5.0};
  const std::vector<double> rd{2.0, 4.0};
  const ErrorStats sf = compute_error_stats(std::span<const float>(of),
                                            std::span<const float>(rf));
  const ErrorStats sd = compute_error_stats(std::span<const double>(od),
                                            std::span<const double>(rd));
  EXPECT_DOUBLE_EQ(sf.mse, sd.mse);
  EXPECT_DOUBLE_EQ(sf.psnr_db, sd.psnr_db);
}

TEST(Metrics, LengthMismatchThrows) {
  const std::vector<float> a{1.0F, 2.0F};
  const std::vector<float> b{1.0F};
  EXPECT_THROW(compute_error_stats(std::span<const float>(a),
                                   std::span<const float>(b)),
               InvalidArgument);
}

TEST(Metrics, ConstantDataUsesUnitRange) {
  const std::vector<float> orig{5.0F, 5.0F};
  const std::vector<float> rec{5.5F, 4.5F};
  const ErrorStats s = compute_error_stats(std::span<const float>(orig),
                                           std::span<const float>(rec));
  EXPECT_DOUBLE_EQ(s.value_range, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_rel_error, 0.5);  // relative to fallback range 1
}

TEST(Metrics, CompressionRatioAndBitRate) {
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 100), 10.0);
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 0), 0.0);
  EXPECT_DOUBLE_EQ(bit_rate_f32(8.0), 4.0);
  EXPECT_DOUBLE_EQ(bit_rate_f32(0.0), 32.0);
}

TEST(Metrics, PsnrFromMseKnownValue) {
  // range 1, MSE 1e-6 -> 60 dB.
  EXPECT_NEAR(psnr_from_mse(1e-6, 1.0), 60.0, 1e-9);
  EXPECT_TRUE(std::isinf(psnr_from_mse(0.0, 1.0)));
}

TEST(Metrics, HigherNoiseLowersPsnr) {
  std::vector<float> orig(100);
  for (std::size_t i = 0; i < orig.size(); ++i)
    orig[i] = static_cast<float>(i);
  std::vector<float> small = orig, large = orig;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    small[i] += 0.01F;
    large[i] += 1.0F;
  }
  const double psnr_small =
      compute_error_stats(std::span<const float>(orig),
                          std::span<const float>(small))
          .psnr_db;
  const double psnr_large =
      compute_error_stats(std::span<const float>(orig),
                          std::span<const float>(large))
          .psnr_db;
  EXPECT_GT(psnr_small, psnr_large);
}

}  // namespace
}  // namespace dpz
