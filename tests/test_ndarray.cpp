// Unit tests for io/ndarray.h: shape bookkeeping, indexing, reshaping,
// and range helpers.
#include <gtest/gtest.h>

#include "io/ndarray.h"
#include "util/error.h"

namespace dpz {
namespace {

TEST(NdArray, ZeroInitialized) {
  FloatArray a({3, 4});
  EXPECT_EQ(a.size(), 12U);
  EXPECT_EQ(a.rank(), 2U);
  for (const float v : a.flat()) EXPECT_EQ(v, 0.0F);
}

TEST(NdArray, ExtentAccess) {
  FloatArray a({2, 3, 5});
  EXPECT_EQ(a.extent(0), 2U);
  EXPECT_EQ(a.extent(1), 3U);
  EXPECT_EQ(a.extent(2), 5U);
  EXPECT_THROW((void)a.extent(3), InvalidArgument);
}

TEST(NdArray, RowMajor2dIndexing) {
  FloatArray a({2, 3});
  a(1, 2) = 7.0F;
  EXPECT_EQ(a[1 * 3 + 2], 7.0F);
  a(0, 0) = 1.0F;
  EXPECT_EQ(a[0], 1.0F);
}

TEST(NdArray, RowMajor3dIndexing) {
  FloatArray a({2, 3, 4});
  a(1, 2, 3) = 9.0F;
  EXPECT_EQ(a[(1 * 3 + 2) * 4 + 3], 9.0F);
}

TEST(NdArray, WrapExistingData) {
  std::vector<float> data{1, 2, 3, 4, 5, 6};
  FloatArray a({2, 3}, data);
  EXPECT_EQ(a(0, 2), 3.0F);
  EXPECT_EQ(a(1, 0), 4.0F);
}

TEST(NdArray, WrapRejectsSizeMismatch) {
  std::vector<float> data{1, 2, 3};
  EXPECT_THROW(FloatArray({2, 3}, data), InvalidArgument);
}

TEST(NdArray, RejectsZeroExtent) {
  EXPECT_THROW(FloatArray({0, 3}), InvalidArgument);
}

TEST(NdArray, BoundsCheckedAt) {
  FloatArray a({4});
  EXPECT_NO_THROW((void)a.at(3));
  EXPECT_THROW((void)a.at(4), InvalidArgument);
}

TEST(NdArray, ReshapePreservesData) {
  FloatArray a({2, 6});
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(i);
  const FloatArray b = a.reshaped({3, 4});
  EXPECT_EQ(b.rank(), 2U);
  EXPECT_EQ(b.extent(0), 3U);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_EQ(b[i], static_cast<float>(i));
}

TEST(NdArray, ReshapeRejectsCountChange) {
  FloatArray a({2, 6});
  EXPECT_THROW(a.reshaped({5}), InvalidArgument);
}

TEST(NdArray, MinMaxAndRange) {
  FloatArray a({5}, {3.0F, -1.0F, 4.0F, 1.0F, 5.0F});
  const auto [lo, hi] = a.min_max();
  EXPECT_EQ(lo, -1.0F);
  EXPECT_EQ(hi, 5.0F);
  EXPECT_DOUBLE_EQ(a.value_range(), 6.0);
}

TEST(NdArray, ConvertChangesElementType) {
  FloatArray a({3}, {1.5F, 2.5F, -3.0F});
  const DoubleArray d = convert<double>(a);
  EXPECT_DOUBLE_EQ(d[0], 1.5);
  EXPECT_DOUBLE_EQ(d[2], -3.0);
  const FloatArray back = convert<float>(d);
  EXPECT_EQ(back[1], 2.5F);
}

}  // namespace
}  // namespace dpz
