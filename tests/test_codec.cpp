// Unit and property tests for the codec substrate: byte/bit streams,
// zlib, canonical Huffman (incl. Kraft equality), and the DPZ quantizer's
// error-bound contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "codec/bitstream.h"
#include "codec/bytes.h"
#include "codec/huffman.h"
#include "codec/quantizer.h"
#include "codec/zlib_codec.h"
#include "util/rng.h"

namespace dpz {
namespace {

// ---- bytes ----------------------------------------------------------------

TEST(Bytes, PrimitiveRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_f32(3.5F);
  w.put_f64(-2.25);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFU);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_f32(), 3.5F);
  EXPECT_EQ(r.get_f64(), -2.25);
  EXPECT_EQ(r.remaining(), 0U);
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  const auto& b = w.bytes();
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Bytes, FloatBitPatternPreserved) {
  ByteWriter w;
  w.put_f32(std::numeric_limits<float>::quiet_NaN());
  w.put_f32(-0.0F);
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.get_f32()));
  EXPECT_EQ(std::signbit(r.get_f32()), true);
}

TEST(Bytes, BlobRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  w.put_blob(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_blob(), payload);
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.put_u16(7);
  ByteReader r(w.bytes());
  r.get_u8();
  EXPECT_THROW(r.get_u32(), FormatError);
}

TEST(Bytes, OversizedBlobLengthThrows) {
  ByteWriter w;
  w.put_u64(1ULL << 40);  // blob header promising a petabyte
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_blob(), Error);
}

// ---- bitstream ----------------------------------------------------------------

TEST(BitStream, SingleBits) {
  BitWriter w;
  const std::vector<unsigned> bits{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (const unsigned b : bits) w.put_bit(b);
  EXPECT_EQ(w.bit_count(), bits.size());
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const unsigned b : bits) EXPECT_EQ(r.get_bit(), b);
}

TEST(BitStream, MultiBitFields) {
  BitWriter w;
  w.put_bits(0b101, 3);
  w.put_bits(0xFFFF, 16);
  w.put_bits(0, 5);
  w.put_bits(0x123456789ULL, 36);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(3), 0b101U);
  EXPECT_EQ(r.get_bits(16), 0xFFFFU);
  EXPECT_EQ(r.get_bits(5), 0U);
  EXPECT_EQ(r.get_bits(36), 0x123456789ULL);
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter w;
  w.put_bits(0b11, 2);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.get_bits(8);  // padding bits readable within the final byte
  EXPECT_THROW(r.get_bit(), FormatError);
}

TEST(BitStream, RandomRoundTrip) {
  Rng rng(1);
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  BitWriter w;
  for (int i = 0; i < 1000; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.uniform_index(64));
    const std::uint64_t value =
        width == 64 ? rng.next_u64() : rng.next_u64() & ((1ULL << width) - 1);
    fields.emplace_back(value, width);
    w.put_bits(value, width);
  }
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const auto& [value, width] : fields)
    EXPECT_EQ(r.get_bits(width), value);
}

// ---- zlib ----------------------------------------------------------------

TEST(Zlib, RoundTrip) {
  Rng rng(2);
  std::vector<std::uint8_t> data(10000);
  for (auto& b : data)
    b = static_cast<std::uint8_t>(rng.uniform_index(16));  // compressible
  const auto z = zlib_compress(data);
  EXPECT_LT(z.size(), data.size());
  EXPECT_EQ(zlib_decompress(z, data.size()), data);
}

TEST(Zlib, EmptyInput) {
  const auto z = zlib_compress({});
  EXPECT_TRUE(zlib_decompress(z, 0).empty());
}

TEST(Zlib, WrongExpectedSizeThrows) {
  const std::vector<std::uint8_t> data{1, 2, 3};
  const auto z = zlib_compress(data);
  EXPECT_THROW(zlib_decompress(z, 2), FormatError);
}

TEST(Zlib, CorruptedStreamThrows) {
  std::vector<std::uint8_t> data(100, 42);
  auto z = zlib_compress(data);
  z[z.size() / 2] ^= 0xFF;
  EXPECT_THROW(zlib_decompress(z, data.size()), FormatError);
}

TEST(Zlib, LevelBoundsChecked) {
  const std::vector<std::uint8_t> data{1};
  EXPECT_THROW(zlib_compress(data, 0), InvalidArgument);
  EXPECT_THROW(zlib_compress(data, 10), InvalidArgument);
}

// ---- Huffman ----------------------------------------------------------------

TEST(Huffman, RoundTripSkewedDistribution) {
  Rng rng(3);
  std::vector<std::uint32_t> symbols(20000);
  for (auto& s : symbols) {
    const double u = rng.uniform();
    s = u < 0.7 ? 0 : (u < 0.9 ? 1 : static_cast<std::uint32_t>(
                                         rng.uniform_index(100)));
  }
  const auto encoded = huffman_encode(symbols, 100);
  EXPECT_EQ(huffman_decode(encoded), symbols);
  // Skewed distribution: clearly below 1 byte/symbol even with the table.
  EXPECT_LT(encoded.size(), symbols.size());
}

TEST(Huffman, SingleDistinctSymbol) {
  const std::vector<std::uint32_t> symbols(100, 7);
  const auto encoded = huffman_encode(symbols, 16);
  EXPECT_EQ(huffman_decode(encoded), symbols);
}

TEST(Huffman, EmptyInput) {
  const std::vector<std::uint32_t> symbols;
  const auto encoded = huffman_encode(symbols, 4);
  EXPECT_TRUE(huffman_decode(encoded).empty());
}

TEST(Huffman, SymbolOutsideAlphabetRejected) {
  const std::vector<std::uint32_t> symbols{5};
  EXPECT_THROW(huffman_encode(symbols, 5), InvalidArgument);
}

TEST(Huffman, KraftEqualityForFullTrees) {
  std::vector<std::uint64_t> counts{10, 7, 3, 3, 1, 1};
  const auto lengths = huffman_code_lengths(counts);
  double kraft = 0.0;
  for (const auto len : lengths)
    if (len != 0) kraft += std::ldexp(1.0, -static_cast<int>(len));
  EXPECT_NEAR(kraft, 1.0, 1e-12);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> counts{1000, 100, 10, 1};
  const auto lengths = huffman_code_lengths(counts);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

TEST(Huffman, NearOptimalOnUniformData) {
  Rng rng(4);
  std::vector<std::uint32_t> symbols(8192);
  for (auto& s : symbols)
    s = static_cast<std::uint32_t>(rng.uniform_index(256));
  const auto encoded = huffman_encode(symbols, 256);
  // Uniform over 256 symbols: ~8 bits each; allow table + slack.
  EXPECT_LT(encoded.size(), symbols.size() + 1024);
  EXPECT_EQ(huffman_decode(encoded), symbols);
}

TEST(Huffman, TruncatedStreamThrows) {
  const std::vector<std::uint32_t> symbols(100, 3);
  auto encoded = huffman_encode(symbols, 8);
  encoded.resize(encoded.size() / 2);
  EXPECT_THROW(huffman_decode(encoded), FormatError);
}

// ---- quantizer ----------------------------------------------------------------

class QuantizerSchemeTest : public ::testing::TestWithParam<bool> {};

TEST_P(QuantizerSchemeTest, InRangeErrorBounded) {
  QuantizerConfig cfg;
  cfg.wide_codes = GetParam();
  cfg.error_bound = cfg.wide_codes ? 1e-4 : 1e-3;

  Rng rng(5);
  std::vector<double> values(5000);
  const double half = cfg.half_range();
  for (double& v : values) v = rng.uniform(-half, half);

  const QuantizedStream qs = quantize(values, cfg);
  EXPECT_TRUE(qs.outliers.empty());
  std::vector<double> back(values.size());
  dequantize(qs, cfg, back);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_LE(std::abs(back[i] - values[i]), cfg.error_bound + 1e-15)
        << "index " << i;
}

TEST_P(QuantizerSchemeTest, OutOfRangeStoredVerbatim) {
  QuantizerConfig cfg;
  cfg.wide_codes = GetParam();
  cfg.error_bound = 1e-3;
  const double half = cfg.half_range();

  const std::vector<double> values{0.0, half * 2.0, -half * 3.0, 0.5 * half};
  const QuantizedStream qs = quantize(values, cfg);
  EXPECT_EQ(qs.outliers.size(), 2U);
  std::vector<double> back(values.size());
  dequantize(qs, cfg, back);
  // Outliers keep full double precision inside the stream (the archive
  // serializer casts them to the input's element width).
  EXPECT_EQ(back[1], half * 2.0);
  EXPECT_EQ(back[2], -half * 3.0);
  EXPECT_LE(std::abs(back[3] - values[3]), cfg.error_bound);
}

TEST_P(QuantizerSchemeTest, CodeBytesMatchScheme) {
  QuantizerConfig cfg;
  cfg.wide_codes = GetParam();
  const std::vector<double> values(100, 0.0);
  const QuantizedStream qs = quantize(values, cfg);
  EXPECT_EQ(qs.codes.size(), values.size() * cfg.code_bytes());
}

INSTANTIATE_TEST_SUITE_P(NarrowAndWide, QuantizerSchemeTest,
                         ::testing::Values(false, true));

TEST(Quantizer, BoundaryValuesStayInRange) {
  QuantizerConfig cfg;
  cfg.error_bound = 1e-3;
  const double half = cfg.half_range();
  const std::vector<double> values{-half, half, 0.0,
                                   std::nextafter(half, 0.0)};
  const QuantizedStream qs = quantize(values, cfg);
  EXPECT_TRUE(qs.outliers.empty());
  std::vector<double> back(values.size());
  dequantize(qs, cfg, back);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_LE(std::abs(back[i] - values[i]), cfg.error_bound + 1e-15);
}

TEST(Quantizer, NanRoutesToOutliers) {
  QuantizerConfig cfg;
  const std::vector<double> values{std::nan(""), 0.0};
  const QuantizedStream qs = quantize(values, cfg);
  EXPECT_EQ(qs.outliers.size(), 1U);
  std::vector<double> back(2);
  dequantize(qs, cfg, back);
  EXPECT_TRUE(std::isnan(back[0]));
}

TEST(Quantizer, SymmetryAroundZero) {
  QuantizerConfig cfg;
  cfg.error_bound = 1e-3;
  const std::vector<double> values{0.0417, -0.0417};
  const QuantizedStream qs = quantize(values, cfg);
  std::vector<double> back(2);
  dequantize(qs, cfg, back);
  EXPECT_NEAR(back[0], -back[1], 1e-12);
}

TEST(Quantizer, RejectsNonPositiveBound) {
  QuantizerConfig cfg;
  cfg.error_bound = 0.0;
  const std::vector<double> values{1.0};
  EXPECT_THROW(quantize(values, cfg), InvalidArgument);
}

TEST(Quantizer, DequantizeValidatesSizes) {
  QuantizerConfig cfg;
  const std::vector<double> values{0.0, 0.0};
  const QuantizedStream qs = quantize(values, cfg);
  std::vector<double> wrong(3);
  EXPECT_THROW(dequantize(qs, cfg, wrong), InvalidArgument);
}

TEST(Quantizer, MissingOutlierDetected) {
  QuantizerConfig cfg;
  cfg.error_bound = 1e-3;
  const std::vector<double> values{cfg.half_range() * 5.0};
  QuantizedStream qs = quantize(values, cfg);
  qs.outliers.clear();
  std::vector<double> back(1);
  EXPECT_THROW(dequantize(qs, cfg, back), FormatError);
}

}  // namespace
}  // namespace dpz
