// Tests for dpz_analyze (tools/analyze/): the planted-violation corpus
// in tests/analyze_fixtures/bad must produce exactly the expected
// file:line diagnostics, the compliant counterparts in clean/ must
// produce none, and the real tree must scan clean. The lexer tests pin
// the parts malformed input is most likely to break (comments, raw
// strings, line accounting).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/checks.h"
#include "analyze/lexer.h"

namespace {

using dpz::analyze::Finding;
using dpz::analyze::Options;
using dpz::analyze::run_checks;

std::vector<Finding> analyze(const std::string& root, bool golden) {
  Options options;
  options.root = root;
  options.golden_check = golden;
  std::string fatal;
  std::vector<Finding> findings = run_checks(options, &fatal);
  EXPECT_EQ(fatal, "") << "run_checks failed on root " << root;
  return findings;
}

std::string describe(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings)
    out << "  " << f.file << ":" << f.line << ": [" << f.check << "] "
        << f.message << "\n";
  return out.str();
}

struct Expected {
  const char* check;
  const char* file;
  int line;
  // A distinctive fragment of the message, so the test survives
  // wording tweaks but still pins which contract fired.
  const char* fragment;
};

TEST(Analyze, BadTreeEveryPlantedViolationFlagged) {
  // Sorted by (file, line, check), matching run_checks output order.
  const Expected expected[] = {
      {"status-exhaustive", "src/capi/dpz_c.h", 1, "StatusCode::kLost"},
      {"status-exhaustive", "src/capi/dpz_c.h", 6, "DPZ_ERR_STALE"},
      {"require-in-reader", "src/codec/bytes.h", 14, "inside ByteReader"},
      {"raw-memcpy", "src/codec/copy.cpp", 6, "memcpy"},
      {"reinterpret-cast", "src/core/cast.cpp", 6, "reinterpret_cast"},
      {"unguarded-inflate", "src/core/inflate.cpp", 10, "zlib_decompress"},
      {"telemetry-name", "src/core/log_site.cpp", 6,
       "\"decode_abort\""},
      {"telemetry-name", "src/core/record.cpp", 6, "\"bytes_in\""},
      {"simd-isolated", "src/core/vector.cpp", 1, "immintrin"},
      {"simd-isolated", "src/core/vector.cpp", 6, "__m256d"},
      {"simd-isolated", "src/core/vector.cpp", 6, "_mm256_loadu_pd"},
      {"simd-isolated", "src/core/vector.cpp", 8, "_mm256_storeu_pd"},
      {"telemetry-dup", "src/obs/names.h", 12, "\"encode_plan\""},
      {"status-exhaustive", "src/tools/cli_app.cpp", 6,
       "StatusCode::kBoom"},
      {"status-exhaustive", "src/util/error.h", 8, "StatusCode::kLost"},
      {"naked-mutex", "src/util/worker.cpp", 6, "std::mutex"},
      {"raw-thread", "src/util/worker.cpp", 9, "std::thread"},
      {"raw-thread", "src/util/worker.cpp", 10, ".detach()"},
      {"naked-mutex", "src/util/worker.cpp", 14, "std::lock_guard"},
      {"naked-mutex", "src/util/worker.cpp", 14, "std::mutex"},
  };

  const std::vector<Finding> findings =
      analyze(std::string(DPZ_ANALYZE_FIXTURES) + "/bad", false);
  ASSERT_EQ(findings.size(), std::size(expected))
      << "findings were:\n"
      << describe(findings);
  for (std::size_t i = 0; i < findings.size(); ++i) {
    SCOPED_TRACE("finding " + std::to_string(i));
    EXPECT_EQ(findings[i].check, expected[i].check);
    EXPECT_EQ(findings[i].file, expected[i].file);
    EXPECT_EQ(findings[i].line, expected[i].line);
    EXPECT_NE(findings[i].message.find(expected[i].fragment),
              std::string::npos)
        << "message was: " << findings[i].message;
  }
}

TEST(Analyze, CleanTreeHasNoFindings) {
  const std::vector<Finding> findings =
      analyze(std::string(DPZ_ANALYZE_FIXTURES) + "/clean", false);
  EXPECT_TRUE(findings.empty()) << "findings were:\n"
                                << describe(findings);
}

// The gate CI enforces: the real tree must stay clean. If this fails,
// fix the violation (or, for a deliberate new exemption, adjust the
// check in tools/analyze/checks.cpp and document it in
// docs/STATIC_ANALYSIS.md).
TEST(Analyze, RealTreeIsClean) {
  const std::vector<Finding> findings =
      analyze(DPZ_ANALYZE_SOURCE_DIR, true);
  EXPECT_TRUE(findings.empty()) << "findings were:\n"
                                << describe(findings);
}

TEST(Analyze, CheckRegistryNamesAreUniqueAndExercised) {
  std::set<std::string> registered;
  for (const dpz::analyze::CheckInfo& check : dpz::analyze::kChecks)
    EXPECT_TRUE(registered.insert(check.name).second)
        << "duplicate check name " << check.name;

  // Every check except the git-backed golden-tracked one fires in the
  // bad tree; a check that can never fire is dead weight.
  std::set<std::string> fired;
  for (const Finding& f :
       analyze(std::string(DPZ_ANALYZE_FIXTURES) + "/bad", false))
    fired.insert(f.check);
  for (const std::string& name : registered) {
    if (name == "golden-tracked") continue;
    EXPECT_TRUE(fired.count(name) != 0)
        << "check " << name << " never fires in the bad fixture tree";
  }
}

TEST(Analyze, MissingRootIsFatalNotEmpty) {
  Options options;
  options.root = std::string(DPZ_ANALYZE_FIXTURES) + "/no_such_tree";
  options.golden_check = false;
  std::string fatal;
  const std::vector<Finding> findings = run_checks(options, &fatal);
  EXPECT_TRUE(findings.empty());
  EXPECT_NE(fatal.find("no src/ directory"), std::string::npos)
      << "fatal was: " << fatal;
}

TEST(AnalyzeLexer, StripsCommentsAndTracksLines) {
  const dpz::analyze::SourceFile file = dpz::analyze::lex(
      "t.cpp",
      "int a; // reinterpret_cast in a comment\n"
      "/* memcpy\n   spanning lines */\n"
      "int b;\n");
  std::vector<std::string> idents;
  for (const dpz::analyze::Token& t : file.tokens)
    if (t.kind == dpz::analyze::TokKind::kIdent)
      idents.push_back(t.text + ":" + std::to_string(t.line));
  EXPECT_EQ(idents,
            (std::vector<std::string>{"int:1", "a:1", "int:4", "b:4"}));
}

TEST(AnalyzeLexer, RawStringsAndEscapesStayOneToken) {
  const dpz::analyze::SourceFile file = dpz::analyze::lex(
      "t.cpp",
      "const char* a = R\"(no \"memcpy\" here)\";\n"
      "const char* b = \"esc\\\"aped\";\n");
  std::vector<std::string> strings;
  for (const dpz::analyze::Token& t : file.tokens)
    if (t.kind == dpz::analyze::TokKind::kString)
      strings.push_back(t.text);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "no \"memcpy\" here");
  EXPECT_NE(strings[1].find("esc"), std::string::npos);
}

}  // namespace
