// Shared definitions for the golden-archive format-stability suite.
//
// The generator (make_golden.cpp) and the test (test_golden_archive.cpp)
// both include this header so the inputs and configurations can never
// drift apart. Golden inputs are built from Rng::uniform() and plain
// arithmetic only — no libm transcendentals — so regenerating them is
// bit-exact on every platform; the archives they produce are committed
// under tests/golden/ and re-encoding must reproduce them byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/chunked.h"
#include "core/dpz.h"
#include "core/shared_basis.h"
#include "util/rng.h"

namespace dpz::golden {

enum class Kind { kDpzF32, kDpzF64, kChunked, kSharedBasis };

struct GoldenCase {
  std::string name;          ///< file stem under tests/golden/
  Kind kind = Kind::kDpzF32;
  std::vector<std::size_t> shape;
  std::uint64_t seed = 0;
  DpzScheme scheme = DpzScheme::kStrict;
};

/// The committed corpus: one case per rank/width/container combination
/// the format supports. Adding a case here (plus its generated files) is
/// how a deliberate format change gets recorded; an accidental change
/// fails the byte comparison instead.
inline std::vector<GoldenCase> golden_cases() {
  return {
      {"dpz_1d_f32_loose", Kind::kDpzF32, {4096}, 101, DpzScheme::kLoose},
      {"dpz_2d_f32_strict", Kind::kDpzF32, {96, 80}, 102,
       DpzScheme::kStrict},
      {"dpz_3d_f32_strict", Kind::kDpzF32, {24, 20, 16}, 103,
       DpzScheme::kStrict},
      {"dpz_2d_f64_strict", Kind::kDpzF64, {64, 72}, 104,
       DpzScheme::kStrict},
      {"chunked_2d_f32_strict", Kind::kChunked, {128, 96}, 105,
       DpzScheme::kStrict},
      {"shared_basis_2d_f32_strict", Kind::kSharedBasis, {96, 96}, 106,
       DpzScheme::kStrict},
  };
}

inline DpzConfig golden_config(const GoldenCase& c) {
  DpzConfig config = c.scheme == DpzScheme::kLoose ? DpzConfig::loose()
                                                   : DpzConfig::strict();
  config.threads = 1;  // the knob must not matter; pin it anyway
  return config;
}

/// Smooth-plus-noise field from exact arithmetic: a separable ramp mixed
/// with uniform noise. Collinear enough for a small k, noisy enough to
/// exercise the outlier escape path.
inline std::vector<double> golden_values(const std::vector<std::size_t>& shape,
                                         std::uint64_t seed) {
  std::size_t total = 1;
  for (const std::size_t d : shape) total *= d;
  Rng rng(seed);
  std::vector<double> values(total);
  const std::size_t inner = shape.back();
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t row = i / inner;
    const std::size_t col = i % inner;
    values[i] = 0.5 * static_cast<double>(row % 29) -
                0.25 * static_cast<double>(col % 23) +
                rng.uniform(-1.0, 1.0);
  }
  return values;
}

inline FloatArray golden_f32(const GoldenCase& c) {
  const std::vector<double> d = golden_values(c.shape, c.seed);
  std::vector<float> v(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) v[i] = static_cast<float>(d[i]);
  return FloatArray(c.shape, std::move(v));
}

inline DoubleArray golden_f64(const GoldenCase& c) {
  return DoubleArray(c.shape, golden_values(c.shape, c.seed));
}

inline ChunkedConfig golden_chunked_config(const GoldenCase& c) {
  ChunkedConfig config;
  config.dpz = golden_config(c);
  config.chunk_values = 2048;
  config.threads = 1;
  return config;
}

/// A second snapshot for the shared-basis case (same statistics,
/// different seed) so the golden archive exercises the
/// compress-with-frozen-basis path, not just training.
inline FloatArray golden_snapshot(const GoldenCase& c) {
  GoldenCase shifted = c;
  shifted.seed = c.seed + 1000;
  return golden_f32(shifted);
}

/// FNV-1a over raw bytes — the same digest bench_regression records for
/// decode outputs, reproduced here so the tests stay dependency-free.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Committed digests of the reconstructions the FROZEN v1 fixtures decode
/// to. This pins the READER bit-exactly: the decode path is elementwise
/// (dequantize, inverse transform, inverse DCT), so these bytes must never
/// move unless the decoder itself deliberately changes. The digests are
/// tied to the CI platform's libm (the inverse DCT's twiddle factors),
/// exactly like the re-encode byte comparison above them; after a
/// deliberate decoder change, tests/make_golden prints the fresh values
/// to paste here.
inline std::uint64_t v1_reconstruction_fnv1a(const std::string& name) {
  if (name == "dpz_1d_f32_loose") return 12702031586422114287ULL;
  if (name == "dpz_2d_f32_strict") return 17925043515637843999ULL;
  if (name == "dpz_3d_f32_strict") return 10252479896664810560ULL;
  if (name == "dpz_2d_f64_strict") return 2712614664726065383ULL;
  if (name == "chunked_2d_f32_strict") return 11548042134086490847ULL;
  if (name == "shared_basis_2d_f32_strict") return 18244997559596584113ULL;
  return 0ULL;
}

}  // namespace dpz::golden
