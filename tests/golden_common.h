// Shared definitions for the golden-archive format-stability suite.
//
// The generator (make_golden.cpp) and the test (test_golden_archive.cpp)
// both include this header so the inputs and configurations can never
// drift apart. Golden inputs are built from Rng::uniform() and plain
// arithmetic only — no libm transcendentals — so regenerating them is
// bit-exact on every platform; the archives they produce are committed
// under tests/golden/ and re-encoding must reproduce them byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/chunked.h"
#include "core/dpz.h"
#include "core/shared_basis.h"
#include "util/rng.h"

namespace dpz::golden {

enum class Kind { kDpzF32, kDpzF64, kChunked, kSharedBasis };

struct GoldenCase {
  std::string name;          ///< file stem under tests/golden/
  Kind kind = Kind::kDpzF32;
  std::vector<std::size_t> shape;
  std::uint64_t seed = 0;
  DpzScheme scheme = DpzScheme::kStrict;
};

/// The committed corpus: one case per rank/width/container combination
/// the format supports. Adding a case here (plus its generated files) is
/// how a deliberate format change gets recorded; an accidental change
/// fails the byte comparison instead.
inline std::vector<GoldenCase> golden_cases() {
  return {
      {"dpz_1d_f32_loose", Kind::kDpzF32, {4096}, 101, DpzScheme::kLoose},
      {"dpz_2d_f32_strict", Kind::kDpzF32, {96, 80}, 102,
       DpzScheme::kStrict},
      {"dpz_3d_f32_strict", Kind::kDpzF32, {24, 20, 16}, 103,
       DpzScheme::kStrict},
      {"dpz_2d_f64_strict", Kind::kDpzF64, {64, 72}, 104,
       DpzScheme::kStrict},
      {"chunked_2d_f32_strict", Kind::kChunked, {128, 96}, 105,
       DpzScheme::kStrict},
      {"shared_basis_2d_f32_strict", Kind::kSharedBasis, {96, 96}, 106,
       DpzScheme::kStrict},
  };
}

inline DpzConfig golden_config(const GoldenCase& c) {
  DpzConfig config = c.scheme == DpzScheme::kLoose ? DpzConfig::loose()
                                                   : DpzConfig::strict();
  config.threads = 1;  // the knob must not matter; pin it anyway
  return config;
}

/// Smooth-plus-noise field from exact arithmetic: a separable ramp mixed
/// with uniform noise. Collinear enough for a small k, noisy enough to
/// exercise the outlier escape path.
inline std::vector<double> golden_values(const std::vector<std::size_t>& shape,
                                         std::uint64_t seed) {
  std::size_t total = 1;
  for (const std::size_t d : shape) total *= d;
  Rng rng(seed);
  std::vector<double> values(total);
  const std::size_t inner = shape.back();
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t row = i / inner;
    const std::size_t col = i % inner;
    values[i] = 0.5 * static_cast<double>(row % 29) -
                0.25 * static_cast<double>(col % 23) +
                rng.uniform(-1.0, 1.0);
  }
  return values;
}

inline FloatArray golden_f32(const GoldenCase& c) {
  const std::vector<double> d = golden_values(c.shape, c.seed);
  std::vector<float> v(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) v[i] = static_cast<float>(d[i]);
  return FloatArray(c.shape, std::move(v));
}

inline DoubleArray golden_f64(const GoldenCase& c) {
  return DoubleArray(c.shape, golden_values(c.shape, c.seed));
}

inline ChunkedConfig golden_chunked_config(const GoldenCase& c) {
  ChunkedConfig config;
  config.dpz = golden_config(c);
  config.chunk_values = 2048;
  config.threads = 1;
  return config;
}

/// A second snapshot for the shared-basis case (same statistics,
/// different seed) so the golden archive exercises the
/// compress-with-frozen-basis path, not just training.
inline FloatArray golden_snapshot(const GoldenCase& c) {
  GoldenCase shifted = c;
  shifted.seed = c.seed + 1000;
  return golden_f32(shifted);
}

}  // namespace dpz::golden
