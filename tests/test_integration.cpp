// Cross-module integration tests: the full dataset -> compressor ->
// reconstruction pipeline for all three compressors on the synthetic
// dataset families, plus the qualitative orderings the paper's evaluation
// rests on (CESM-class data far more compressible than HACC-vx; DPZ
// competitive at medium-high accuracy on smooth data).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/szlike.h"
#include "baselines/zfplike.h"
#include "core/dpz.h"
#include "data/datasets.h"
#include "metrics/metrics.h"

namespace dpz {
namespace {

// Small-scale datasets keep the suite fast; the full-scale sweeps live in
// the bench harnesses.
constexpr double kScale = 0.06;

class DatasetRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetRoundTripTest, DpzRoundTripsEveryDataset) {
  const Dataset ds = make_dataset(GetParam(), kScale);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  DpzStats stats;
  const auto archive = dpz_compress(ds.data, config, &stats);
  const FloatArray back = dpz_decompress(archive);
  ASSERT_EQ(back.shape(), ds.data.shape());
  const ErrorStats err = compute_error_stats(ds.data.flat(), back.flat());
  EXPECT_GT(err.psnr_db, 20.0) << ds.name;
  EXPECT_GT(stats.cr_archive(), 0.9) << ds.name;
}

TEST_P(DatasetRoundTripTest, SzLikeBoundsErrorOnEveryDataset) {
  const Dataset ds = make_dataset(GetParam(), kScale);
  SzLikeConfig config;
  config.relative_bound = 1e-3;
  const double eb = config.resolve_bound(ds.data.value_range());
  const FloatArray back =
      szlike_decompress(szlike_compress(ds.data, config));
  const ErrorStats err = compute_error_stats(ds.data.flat(), back.flat());
  EXPECT_LE(err.max_abs_error, eb * (1.0 + 1e-9)) << ds.name;
}

TEST_P(DatasetRoundTripTest, ZfpLikeRoundTripsEveryDataset) {
  const Dataset ds = make_dataset(GetParam(), kScale);
  ZfpLikeConfig config;
  config.precision = 24;
  const FloatArray back =
      zfplike_decompress(zfplike_compress(ds.data, config));
  const ErrorStats err = compute_error_stats(ds.data.flat(), back.flat());
  EXPECT_GT(err.psnr_db, 60.0) << ds.name;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetRoundTripTest,
                         ::testing::ValuesIn(dataset_names()));

TEST(Integration, SmoothDataFarMoreCompressibleThanWhite) {
  // The paper's central compressibility ordering (Fig 6, Table III):
  // CESM-class smooth fields compress far better under DPZ than HACC-vx.
  const Dataset smooth = make_dataset("CLDHGH", kScale);
  const Dataset white = make_dataset("HACC-vx", kScale);

  DpzConfig config = DpzConfig::strict();
  config.tve = 0.999;
  DpzStats smooth_stats, white_stats;
  dpz_compress(smooth.data, config, &smooth_stats);
  dpz_compress(white.data, config, &white_stats);

  EXPECT_GT(smooth_stats.cr_stage12(), 4.0 * white_stats.cr_stage12());
}

TEST(Integration, DpzBeatsBaselinesOnSmoothDataAtMatchedQuality) {
  // On a CESM-class field at medium accuracy, DPZ's archive CR should be
  // at least competitive with the SZ-like baseline at similar PSNR and
  // clearly ahead of fixed-precision ZFP-like (Fig 6's shape).
  const Dataset ds = make_dataset("PHIS", 0.15);

  DpzConfig dpz_cfg = DpzConfig::strict();
  dpz_cfg.tve = 0.9999;
  DpzStats stats;
  const auto dpz_archive = dpz_compress(ds.data, dpz_cfg, &stats);
  const FloatArray dpz_back = dpz_decompress(dpz_archive);
  const double dpz_psnr =
      compute_error_stats(ds.data.flat(), dpz_back.flat()).psnr_db;
  const double dpz_cr =
      compression_ratio(ds.data.size() * 4, dpz_archive.size());

  // Tune the ZFP-like precision to roughly match DPZ's PSNR.
  double zfp_cr = 0.0;
  for (unsigned precision = 4; precision <= 32; ++precision) {
    ZfpLikeConfig zcfg;
    zcfg.precision = precision;
    const auto archive = zfplike_compress(ds.data, zcfg);
    const FloatArray back = zfplike_decompress(archive);
    const double psnr =
        compute_error_stats(ds.data.flat(), back.flat()).psnr_db;
    if (psnr >= dpz_psnr) {
      zfp_cr = compression_ratio(ds.data.size() * 4, archive.size());
      break;
    }
  }

  ASSERT_GT(zfp_cr, 0.0) << "ZFP-like never reached DPZ's PSNR";
  EXPECT_GT(dpz_cr, zfp_cr)
      << "DPZ PSNR " << dpz_psnr << " CR " << dpz_cr << " vs ZFP CR "
      << zfp_cr;
}

TEST(Integration, AllCompressorsPreserveShape) {
  const Dataset ds = make_dataset("Isotropic", 0.15);
  std::vector<std::unique_ptr<Compressor>> comps;
  comps.push_back(std::make_unique<DpzCompressor>(DpzConfig::loose()));
  comps.push_back(std::make_unique<SzLikeCompressor>());
  comps.push_back(std::make_unique<ZfpLikeCompressor>());
  for (const auto& comp : comps) {
    const auto archive = comp->compress(ds.data);
    const FloatArray back = comp->decompress(archive);
    EXPECT_EQ(back.shape(), ds.data.shape()) << comp->name();
  }
}

TEST(Integration, ArchivesAreMutuallyUnreadable) {
  const Dataset ds = make_dataset("FLDSC", kScale);
  const auto dpz_archive = dpz_compress(ds.data, DpzConfig::loose());
  const auto sz_archive = szlike_compress(ds.data, SzLikeConfig{});
  EXPECT_THROW(szlike_decompress(dpz_archive), FormatError);
  EXPECT_THROW(zfplike_decompress(sz_archive), FormatError);
  EXPECT_THROW(dpz_decompress(sz_archive), FormatError);
}

TEST(Integration, DpzArchiveIsDeterministic) {
  const Dataset ds = make_dataset("FREQSH", kScale);
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.9999;
  const auto a = dpz_compress(ds.data, config);
  const auto b = dpz_compress(ds.data, config);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dpz
