// Tests for the related-work baselines the paper's taxonomy describes:
// TTHRESH-like (tensor/HOSVD) and MGARD-like (multilevel). Each gets
// round-trips, its characteristic control knob (energy target vs
// pointwise error bound), monotonicity, and format validation.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/mgard_like.h"
#include "baselines/tthresh_like.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray smooth_tensor(std::vector<std::size_t> shape,
                         std::uint64_t seed) {
  Rng rng(seed);
  FloatArray a(shape);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(
        std::sin(static_cast<double>(i) * 0.013) * 5.0 +
        std::cos(static_cast<double>(i) * 0.0021) * 3.0 +
        0.01 * rng.normal());
  return a;
}

// ---- TTHRESH-like ----------------------------------------------------------

class TthreshShapeTest
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(TthreshShapeTest, RoundTripsAtHighEnergy) {
  const FloatArray data = smooth_tensor(GetParam(), 1);
  TthreshLikeConfig config;
  config.energy = 0.99999999;
  const auto archive = tthresh_like_compress(data, config);
  const FloatArray back = tthresh_like_decompress(archive);
  ASSERT_EQ(back.shape(), data.shape());
  EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 60.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TthreshShapeTest,
    ::testing::Values(std::vector<std::size_t>{32, 48},
                      std::vector<std::size_t>{16, 16, 16},
                      std::vector<std::size_t>{12, 20, 9}));

TEST(TthreshLike, EnergyKnobControlsRateAndDistortion) {
  const FloatArray data = smooth_tensor({24, 24, 24}, 2);
  double last_psnr = -1e300;
  std::size_t last_size = 0;
  for (const double energy : {0.99, 0.9999, 0.999999}) {
    TthreshLikeConfig config;
    config.energy = energy;
    const auto archive = tthresh_like_compress(data, config);
    const FloatArray back = tthresh_like_decompress(archive);
    const double psnr =
        compute_error_stats(data.flat(), back.flat()).psnr_db;
    EXPECT_GE(psnr, last_psnr) << "energy " << energy;
    EXPECT_GE(archive.size(), last_size) << "energy " << energy;
    last_psnr = psnr;
    last_size = archive.size();
  }
}

TEST(TthreshLike, DiscardedEnergyPredictsError) {
  // Orthonormal HOSVD: kept-energy fraction e gives relative Frobenius
  // error sqrt(1 - e) of the *energy* (not the variance). Verify within
  // a factor (the f32 factor/value storage adds a little).
  const FloatArray data = smooth_tensor({20, 20, 20}, 3);
  TthreshLikeConfig config;
  config.energy = 0.999;
  const auto archive = tthresh_like_compress(data, config);
  const FloatArray back = tthresh_like_decompress(archive);

  double signal = 0.0, err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    signal += static_cast<double>(data[i]) * data[i];
    const double d = static_cast<double>(data[i]) - back[i];
    err += d * d;
  }
  const double discarded = err / signal;
  EXPECT_LT(discarded, (1.0 - config.energy) * 1.5 + 1e-6);
}

TEST(TthreshLike, Rank1Rejected) {
  FloatArray data({64});
  EXPECT_THROW(tthresh_like_compress(data, TthreshLikeConfig{}),
               InvalidArgument);
}

TEST(TthreshLike, GarbageRejected) {
  const std::vector<std::uint8_t> garbage(64, 0x99);
  EXPECT_THROW(tthresh_like_decompress(garbage), FormatError);
}

TEST(TthreshLike, AdapterName) {
  EXPECT_EQ(TthreshLikeCompressor().name(), "TTHRESH-like");
}

// ---- MGARD-like -------------------------------------------------------------

TEST(MgardLike, HierarchicalTransformRoundTripsExactly) {
  Rng rng(4);
  for (const std::size_t n : {2UL, 3UL, 5UL, 8UL, 17UL, 64UL, 100UL}) {
    std::vector<double> x(n), original(n);
    for (std::size_t i = 0; i < n; ++i) original[i] = x[i] = rng.normal();
    hierarchical_forward_1d(x, n, 1);
    hierarchical_inverse_1d(x, n, 1);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], original[i], 1e-12) << "n=" << n << " i=" << i;
  }
}

TEST(MgardLike, SmoothSignalsProduceSmallDetailCoefficients) {
  const std::size_t n = 257;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(static_cast<double>(i) * 0.05);
  hierarchical_forward_1d(x, n, 1);
  // Finest-level details (odd indices) are second-difference sized.
  for (std::size_t i = 1; i < n - 1; i += 2)
    EXPECT_LT(std::abs(x[i]), 2e-3) << "i=" << i;
}

class MgardShapeTest
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(MgardShapeTest, PointwiseErrorBoundHolds) {
  const FloatArray data = smooth_tensor(GetParam(), 5);
  MgardLikeConfig config;
  config.error_bound = 1e-2;
  const auto archive = mgard_like_compress(data, config);
  const FloatArray back = mgard_like_decompress(archive);
  ASSERT_EQ(back.shape(), data.shape());
  for (std::size_t i = 0; i < data.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(data[i]) - back[i]),
              config.error_bound * (1.0 + 1e-6))
        << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MgardShapeTest,
    ::testing::Values(std::vector<std::size_t>{3000},
                      std::vector<std::size_t>{50, 70},
                      std::vector<std::size_t>{14, 15, 16}));

TEST(MgardLike, TighterBoundCostsMoreBits) {
  const FloatArray data = smooth_tensor({64, 64}, 6);
  MgardLikeConfig tight, loose;
  tight.error_bound = 1e-5;
  loose.error_bound = 1e-2;
  EXPECT_GT(mgard_like_compress(data, tight).size(),
            mgard_like_compress(data, loose).size());
}

TEST(MgardLike, SmoothDataCompressesWell) {
  const FloatArray data = smooth_tensor({96, 96}, 7);
  MgardLikeConfig config;
  config.relative_bound = 1e-3;
  const auto archive = mgard_like_compress(data, config);
  EXPECT_GT(compression_ratio(data.size() * 4, archive.size()), 3.0);
}

TEST(MgardLike, GarbageRejected) {
  const std::vector<std::uint8_t> garbage(48, 0x21);
  EXPECT_THROW(mgard_like_decompress(garbage), FormatError);
}

TEST(MgardLike, AdapterName) {
  EXPECT_EQ(MgardLikeCompressor().name(), "MGARD-like");
}

}  // namespace
}  // namespace dpz
