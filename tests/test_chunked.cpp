// Tests for the chunked container: round-trips across chunk sizes, tail
// handling, random frame access, per-frame isolation of corruption, and
// header validation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/chunked.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray long_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray a({n});
  for (std::size_t i = 0; i < n; ++i)
    a[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.003) +
                              0.3 * std::cos(static_cast<double>(i) * 0.011) +
                              0.002 * rng.normal());
  return a;
}

class ChunkSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkSizeTest, RoundTripsAtEveryChunkSize) {
  const FloatArray data = long_signal(50000, 1);
  ChunkedConfig config;
  config.chunk_values = GetParam();
  config.dpz = DpzConfig::strict();
  config.dpz.tve = 0.9999;

  ChunkedStats stats;
  const auto container = chunked_compress(data, config, &stats);
  EXPECT_EQ(stats.frame_count,
            chunked_frame_count(container));
  const FloatArray back = chunked_decompress(container);
  ASSERT_EQ(back.shape(), data.shape());
  EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 30.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkSizeTest,
                         ::testing::Values(4096, 10000, 16384, 49999,
                                           1 << 20));

TEST(Chunked, TailSmallerThanMinimumMergesIntoLastChunk) {
  // 50000 = 6*8192 + 848 tail (fine), but 8197: 8192 + 5 -> the 5-value
  // tail must merge into the previous frame rather than form its own.
  const FloatArray data = long_signal(8197, 2);
  ChunkedConfig config;
  config.chunk_values = 8192;
  ChunkedStats stats;
  const auto container = chunked_compress(data, config, &stats);
  EXPECT_EQ(stats.frame_count, 1U);
  const FloatArray back = chunked_decompress(container);
  EXPECT_EQ(back.size(), data.size());
}

TEST(Chunked, MultidimensionalShapeSurvives) {
  Rng rng(3);
  FloatArray data({40, 50, 30});
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.01));
  ChunkedConfig config;
  config.chunk_values = 16384;
  const auto container = chunked_compress(data, config);
  const FloatArray back = chunked_decompress(container);
  EXPECT_EQ(back.shape(), data.shape());
}

TEST(Chunked, RandomFrameAccessMatchesFullDecode) {
  const FloatArray data = long_signal(60000, 4);
  ChunkedConfig config;
  config.chunk_values = 16384;
  const auto container = chunked_compress(data, config);
  const FloatArray full = chunked_decompress(container);

  const std::size_t frames = chunked_frame_count(container);
  ASSERT_GE(frames, 3U);
  for (std::size_t f = 0; f < frames; ++f) {
    const ChunkView view = chunked_decompress_frame(container, f);
    EXPECT_EQ(view.value_offset, f * config.chunk_values);
    for (std::size_t i = 0; i < view.values.size(); ++i)
      EXPECT_EQ(view.values[i], full[view.value_offset + i])
          << "frame " << f << " value " << i;
  }
}

TEST(Chunked, FrameIndexOutOfRangeRejected) {
  const FloatArray data = long_signal(20000, 5);
  ChunkedConfig config;
  config.chunk_values = 8192;
  const auto container = chunked_compress(data, config);
  const std::size_t frames = chunked_frame_count(container);
  EXPECT_THROW(chunked_decompress_frame(container, frames),
               InvalidArgument);
}

TEST(Chunked, CorruptionIsContainedToOneFrame) {
  const FloatArray data = long_signal(60000, 6);
  ChunkedConfig config;
  config.chunk_values = 16384;
  auto container = chunked_compress(data, config);

  // Flip a byte deep inside the last frame's payload.
  container[container.size() - 16] ^= 0xFF;
  const std::size_t frames = chunked_frame_count(container);
  // Earlier frames still decode.
  EXPECT_NO_THROW(chunked_decompress_frame(container, 0));
  EXPECT_NO_THROW(chunked_decompress_frame(container, 1));
  // The damaged frame (and hence the full decode) fails loudly.
  EXPECT_THROW(chunked_decompress_frame(container, frames - 1), Error);
  EXPECT_THROW(chunked_decompress(container), Error);
}

TEST(Chunked, BestEffortRecoversEveryIntactFrame) {
  const FloatArray data = long_signal(60000, 9);
  ChunkedConfig config;
  config.chunk_values = 16384;
  auto container = chunked_compress(data, config);
  const FloatArray reference = chunked_decompress(container);
  const std::size_t frames = chunked_frame_count(container);
  ASSERT_GE(frames, 3U);

  container[container.size() - 16] ^= 0xFF;  // damage the last frame

  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  best.fill_value = 42.0F;
  DecodeReport report;
  const FloatArray out = chunked_decompress(container, best, &report);

  EXPECT_EQ(report.frames_total, frames);
  EXPECT_EQ(report.frames_recovered, frames - 1);
  ASSERT_EQ(report.lost.size(), 1U);
  EXPECT_EQ(report.lost[0].frame, frames - 1);
  EXPECT_FALSE(report.complete());
  EXPECT_NE(report.lost[0].message.find("checksum"), std::string::npos);

  // 100% of the uncorrupted frames must come back byte-exact; the lost
  // tail must be wall-to-wall fill.
  const std::size_t lost_begin = (frames - 1) * config.chunk_values;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i < lost_begin) {
      ASSERT_EQ(out[i], reference[i]) << "intact value altered at " << i;
    } else {
      ASSERT_EQ(out[i], 42.0F) << "lost frame not filled at " << i;
    }
  }
}

TEST(Chunked, BestEffortOnIntactContainerIsCompleteAndExact) {
  const FloatArray data = long_signal(40000, 10);
  ChunkedConfig config;
  config.chunk_values = 10000;
  const auto container = chunked_compress(data, config);
  const FloatArray reference = chunked_decompress(container);

  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  DecodeReport report;
  const FloatArray out = chunked_decompress(container, best, &report);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.frames_recovered, report.frames_total);
  EXPECT_TRUE(report.lost.empty());
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], reference[i]);
}

TEST(Chunked, BestEffortCannotSurviveHeaderDamage) {
  // Best effort isolates FRAME damage; the sealed header is the recovery
  // map, so header corruption still fails the whole decode.
  const FloatArray data = long_signal(30000, 11);
  ChunkedConfig config;
  config.chunk_values = 10000;
  auto container = chunked_compress(data, config);
  container[8] ^= 0x01;  // inside dim0, under the header seal

  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  EXPECT_THROW(chunked_decompress(container, best, nullptr), FormatError);
}

TEST(Chunked, BestEffortStrictPolicyMatchesLegacyOverload) {
  // The config overload with kStrict must behave exactly like the
  // original entry point, including the report on success.
  const FloatArray data = long_signal(30000, 12);
  ChunkedConfig config;
  config.chunk_values = 10000;
  const auto container = chunked_compress(data, config);
  DecodeReport report;
  const FloatArray a = chunked_decompress(container, config, &report);
  const FloatArray b = chunked_decompress(container);
  EXPECT_TRUE(report.complete());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);

  auto damaged = container;
  damaged[damaged.size() - 10] ^= 0x04;
  EXPECT_THROW(chunked_decompress(damaged, config, nullptr),
               ChecksumError);
}

TEST(Chunked, GarbageContainerRejected) {
  const std::vector<std::uint8_t> garbage(128, 0x42);
  EXPECT_THROW(chunked_decompress(garbage), FormatError);
  EXPECT_THROW(chunked_frame_count(garbage), FormatError);
}

TEST(Chunked, StatsAccounting) {
  const FloatArray data = long_signal(40000, 7);
  ChunkedConfig config;
  config.chunk_values = 10000;
  ChunkedStats stats;
  const auto container = chunked_compress(data, config, &stats);
  EXPECT_EQ(stats.original_bytes, data.size() * 4);
  EXPECT_EQ(stats.archive_bytes, container.size());
  EXPECT_EQ(stats.frame_count, 4U);
  EXPECT_GT(stats.cr(), 1.0);
}

TEST(Chunked, WhiteNoiseFramesFallBackWithoutBreakingContainer) {
  Rng rng(8);
  FloatArray data({30000});
  for (float& v : data.flat()) v = static_cast<float>(rng.normal());
  ChunkedConfig config;
  config.chunk_values = 10000;
  config.dpz.tve = 0.9999999;
  config.dpz.error_bound = 1e-12;  // force per-frame stored fallback
  ChunkedStats stats;
  const auto container = chunked_compress(data, config, &stats);
  EXPECT_EQ(stats.stored_raw_frames, stats.frame_count);
  const FloatArray back = chunked_decompress(container);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(data[i], back[i]);  // stored frames are bit-exact
}

}  // namespace
}  // namespace dpz
