// Tests for the chunked container: round-trips across chunk sizes, tail
// handling, random frame access, per-frame isolation of corruption, and
// header validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/chunked.h"
#include "core/verify.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray long_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray a({n});
  for (std::size_t i = 0; i < n; ++i)
    a[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.003) +
                              0.3 * std::cos(static_cast<double>(i) * 0.011) +
                              0.002 * rng.normal());
  return a;
}

class ChunkSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkSizeTest, RoundTripsAtEveryChunkSize) {
  const FloatArray data = long_signal(50000, 1);
  ChunkedConfig config;
  config.chunk_values = GetParam();
  config.dpz = DpzConfig::strict();
  config.dpz.tve = 0.9999;

  ChunkedStats stats;
  const auto container = chunked_compress(data, config, &stats);
  EXPECT_EQ(stats.frame_count,
            chunked_frame_count(container));
  const FloatArray back = chunked_decompress(container);
  ASSERT_EQ(back.shape(), data.shape());
  EXPECT_GT(compute_error_stats(data.flat(), back.flat()).psnr_db, 30.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkSizeTest,
                         ::testing::Values(4096, 10000, 16384, 49999,
                                           1 << 20));

TEST(Chunked, TailSmallerThanMinimumMergesIntoLastChunk) {
  // 50000 = 6*8192 + 848 tail (fine), but 8197: 8192 + 5 -> the 5-value
  // tail must merge into the previous frame rather than form its own.
  const FloatArray data = long_signal(8197, 2);
  ChunkedConfig config;
  config.chunk_values = 8192;
  ChunkedStats stats;
  const auto container = chunked_compress(data, config, &stats);
  EXPECT_EQ(stats.frame_count, 1U);
  const FloatArray back = chunked_decompress(container);
  EXPECT_EQ(back.size(), data.size());
}

TEST(Chunked, MultidimensionalShapeSurvives) {
  Rng rng(3);
  FloatArray data({40, 50, 30});
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.01));
  ChunkedConfig config;
  config.chunk_values = 16384;
  const auto container = chunked_compress(data, config);
  const FloatArray back = chunked_decompress(container);
  EXPECT_EQ(back.shape(), data.shape());
}

TEST(Chunked, RandomFrameAccessMatchesFullDecode) {
  const FloatArray data = long_signal(60000, 4);
  ChunkedConfig config;
  config.chunk_values = 16384;
  const auto container = chunked_compress(data, config);
  const FloatArray full = chunked_decompress(container);

  const std::size_t frames = chunked_frame_count(container);
  ASSERT_GE(frames, 3U);
  for (std::size_t f = 0; f < frames; ++f) {
    const ChunkView view = chunked_decompress_frame(container, f);
    EXPECT_EQ(view.value_offset, f * config.chunk_values);
    for (std::size_t i = 0; i < view.values.size(); ++i)
      EXPECT_EQ(view.values[i], full[view.value_offset + i])
          << "frame " << f << " value " << i;
  }
}

TEST(Chunked, FrameIndexOutOfRangeRejected) {
  const FloatArray data = long_signal(20000, 5);
  ChunkedConfig config;
  config.chunk_values = 8192;
  const auto container = chunked_compress(data, config);
  const std::size_t frames = chunked_frame_count(container);
  EXPECT_THROW(chunked_decompress_frame(container, frames),
               InvalidArgument);
}

TEST(Chunked, CorruptionIsContainedToOneFrame) {
  const FloatArray data = long_signal(60000, 6);
  ChunkedConfig config;
  config.chunk_values = 16384;
  auto container = chunked_compress(data, config);

  // Flip a byte deep inside the last frame's payload.
  container[container.size() - 16] ^= 0xFF;
  const std::size_t frames = chunked_frame_count(container);
  // Earlier frames still decode.
  EXPECT_NO_THROW(chunked_decompress_frame(container, 0));
  EXPECT_NO_THROW(chunked_decompress_frame(container, 1));
  // The damaged frame (and hence the full decode) fails loudly.
  EXPECT_THROW(chunked_decompress_frame(container, frames - 1), Error);
  EXPECT_THROW(chunked_decompress(container), Error);
}

TEST(Chunked, BestEffortRecoversEveryIntactFrame) {
  const FloatArray data = long_signal(60000, 9);
  ChunkedConfig config;
  config.chunk_values = 16384;
  auto container = chunked_compress(data, config);
  const FloatArray reference = chunked_decompress(container);
  const std::size_t frames = chunked_frame_count(container);
  ASSERT_GE(frames, 3U);

  container[container.size() - 16] ^= 0xFF;  // damage the last frame

  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  best.fill_value = 42.0F;
  DecodeReport report;
  const FloatArray out = chunked_decompress(container, best, &report);

  EXPECT_EQ(report.frames_total, frames);
  EXPECT_EQ(report.frames_recovered, frames - 1);
  ASSERT_EQ(report.lost.size(), 1U);
  EXPECT_EQ(report.lost[0].frame, frames - 1);
  EXPECT_FALSE(report.complete());
  EXPECT_NE(report.lost[0].message.find("checksum"), std::string::npos);

  // 100% of the uncorrupted frames must come back byte-exact; the lost
  // tail must be wall-to-wall fill.
  const std::size_t lost_begin = (frames - 1) * config.chunk_values;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i < lost_begin) {
      ASSERT_EQ(out[i], reference[i]) << "intact value altered at " << i;
    } else {
      ASSERT_EQ(out[i], 42.0F) << "lost frame not filled at " << i;
    }
  }
}

TEST(Chunked, BestEffortOnIntactContainerIsCompleteAndExact) {
  const FloatArray data = long_signal(40000, 10);
  ChunkedConfig config;
  config.chunk_values = 10000;
  const auto container = chunked_compress(data, config);
  const FloatArray reference = chunked_decompress(container);

  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  DecodeReport report;
  const FloatArray out = chunked_decompress(container, best, &report);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.frames_recovered, report.frames_total);
  EXPECT_TRUE(report.lost.empty());
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], reference[i]);
}

TEST(Chunked, BestEffortCannotSurviveHeaderDamage) {
  // Best effort isolates FRAME damage; the sealed header is the recovery
  // map, so header corruption still fails the whole decode.
  const FloatArray data = long_signal(30000, 11);
  ChunkedConfig config;
  config.chunk_values = 10000;
  auto container = chunked_compress(data, config);
  container[8] ^= 0x01;  // inside dim0, under the header seal

  ChunkedConfig best = config;
  best.decode_policy = DecodePolicy::kBestEffort;
  EXPECT_THROW(chunked_decompress(container, best, nullptr), FormatError);
}

TEST(Chunked, BestEffortStrictPolicyMatchesLegacyOverload) {
  // The config overload with kStrict must behave exactly like the
  // original entry point, including the report on success.
  const FloatArray data = long_signal(30000, 12);
  ChunkedConfig config;
  config.chunk_values = 10000;
  const auto container = chunked_compress(data, config);
  DecodeReport report;
  const FloatArray a = chunked_decompress(container, config, &report);
  const FloatArray b = chunked_decompress(container);
  EXPECT_TRUE(report.complete());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);

  auto damaged = container;
  damaged[damaged.size() - 10] ^= 0x04;
  EXPECT_THROW(chunked_decompress(damaged, config, nullptr),
               ChecksumError);
}

TEST(Chunked, GarbageContainerRejected) {
  const std::vector<std::uint8_t> garbage(128, 0x42);
  EXPECT_THROW(chunked_decompress(garbage), FormatError);
  EXPECT_THROW(chunked_frame_count(garbage), FormatError);
}

TEST(Chunked, StatsAccounting) {
  const FloatArray data = long_signal(40000, 7);
  ChunkedConfig config;
  config.chunk_values = 10000;
  ChunkedStats stats;
  const auto container = chunked_compress(data, config, &stats);
  EXPECT_EQ(stats.original_bytes, data.size() * 4);
  EXPECT_EQ(stats.archive_bytes, container.size());
  EXPECT_EQ(stats.frame_count, 4U);
  EXPECT_GT(stats.cr(), 1.0);
}

// ---- DZC3 parity ----------------------------------------------------

// Locates frame f's byte extent via the verify section table, so the
// tests damage exactly the frame they claim to.
std::pair<std::size_t, std::size_t> frame_extent(
    const std::vector<std::uint8_t>& container, std::size_t f) {
  const VerifyReport rep = verify_archive(container);
  const std::string name = "frame[" + std::to_string(f) + "]";
  for (const SectionStatus& s : rep.sections)
    if (s.name == name)
      return {static_cast<std::size_t>(s.offset),
              static_cast<std::size_t>(s.size)};
  ADD_FAILURE() << "no section " << name;
  return {0, 0};
}

void damage_frame(std::vector<std::uint8_t>& container, std::size_t f) {
  const auto [offset, size] = frame_extent(container, f);
  for (std::size_t i = 0; i < std::min<std::size_t>(size, 24); ++i)
    container[offset + size / 2 - i] ^= 0xA5;
}

ChunkedConfig parity_config(unsigned k, unsigned m) {
  ChunkedConfig config;
  config.chunk_values = 4096;
  config.parity_k = k;
  config.parity_m = m;
  return config;
}

TEST(ChunkedParity, ParityContainerDecodesLikeParityLess) {
  const FloatArray data = long_signal(60000, 20);
  ChunkedConfig plain;
  plain.chunk_values = 4096;
  const auto without = chunked_compress(data, plain);
  const auto with = chunked_compress(data, parity_config(4, 2));

  EXPECT_GT(with.size(), without.size());  // parity costs bytes
  const ParityInfo info = chunked_parity_info(with);
  EXPECT_TRUE(info.enabled());
  EXPECT_EQ(info.parity_k, 4u);
  EXPECT_EQ(info.parity_m, 2u);
  EXPECT_EQ(info.groups,
            (chunked_frame_count(with) + 3) / 4);
  EXPECT_FALSE(chunked_parity_info(without).enabled());

  const FloatArray a = chunked_decompress(without);
  const FloatArray b = chunked_decompress(with);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(ChunkedParity, StrictDecodeRepairsDamageWithinBudget) {
  const FloatArray data = long_signal(60000, 21);
  auto container = chunked_compress(data, parity_config(4, 2));
  const FloatArray reference = chunked_decompress(container);

  damage_frame(container, 1);
  damage_frame(container, 2);  // two losses in group 0, m = 2

  DecodeReport report;
  const FloatArray out =
      chunked_decompress(container, parity_config(4, 2), &report);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.frames_repaired, 2u);
  EXPECT_EQ(report.repaired, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(report.frames_recovered, report.frames_total);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], reference[i]) << "repair not byte-exact at " << i;
}

TEST(ChunkedParity, StrictDecodeBeyondBudgetThrows) {
  const FloatArray data = long_signal(60000, 22);
  auto container = chunked_compress(data, parity_config(4, 1));
  damage_frame(container, 0);
  damage_frame(container, 3);  // two losses in group 0, m = 1
  try {
    chunked_decompress(container, parity_config(4, 1), nullptr);
    FAIL() << "strict decode of unrecoverable damage must throw";
  } catch (const ChecksumError& e) {
    EXPECT_NE(std::string(e.what()).find("beyond the parity budget"),
              std::string::npos);
  }
}

TEST(ChunkedParity, RandomAccessRepairsDamagedFrame) {
  const FloatArray data = long_signal(60000, 30);
  auto container = chunked_compress(data, parity_config(4, 2));
  const ChunkView reference = chunked_decompress_frame(container, 2);

  damage_frame(container, 1);
  damage_frame(container, 2);  // two losses in group 0, m = 2
  const ChunkView repaired = chunked_decompress_frame(container, 2);
  EXPECT_EQ(repaired.value_offset, reference.value_offset);
  ASSERT_EQ(repaired.values.size(), reference.values.size());
  for (std::size_t i = 0; i < repaired.values.size(); ++i)
    ASSERT_EQ(repaired.values[i], reference.values[i])
        << "random-access repair not byte-exact at " << i;

  damage_frame(container, 0);  // third loss in group 0 exceeds m = 2
  try {
    chunked_decompress_frame(container, 2);
    FAIL() << "random access beyond the parity budget must throw";
  } catch (const ChecksumError& e) {
    EXPECT_NE(std::string(e.what()).find("beyond the parity budget"),
              std::string::npos);
  }
  // A frame in an undamaged group is untouched by group 0's losses.
  EXPECT_NO_THROW(chunked_decompress_frame(container, 5));
}

TEST(ChunkedParity, BestEffortRepairsOneGroupFillsAnother) {
  const FloatArray data = long_signal(60000, 23);
  auto container = chunked_compress(data, parity_config(4, 1));
  const FloatArray reference = chunked_decompress(container);
  const std::size_t frames = chunked_frame_count(container);
  ASSERT_GE(frames, 8u);

  damage_frame(container, 0);
  damage_frame(container, 1);  // group 0: beyond its m = 1 budget
  damage_frame(container, 5);  // group 1: within budget

  ChunkedConfig best = parity_config(4, 1);
  best.decode_policy = DecodePolicy::kBestEffort;
  best.fill_value = 7.0;
  DecodeReport report;
  const FloatArray out = chunked_decompress(container, best, &report);

  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.frames_repaired, 1u);
  EXPECT_EQ(report.repaired, (std::vector<std::size_t>{5}));
  ASSERT_EQ(report.lost.size(), 2u);
  EXPECT_EQ(report.lost[0].frame, 0u);
  EXPECT_EQ(report.lost[1].frame, 1u);
  EXPECT_EQ(report.frames_recovered, frames - 2);

  const std::size_t chunk = 4096;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i < 2 * chunk) {
      ASSERT_EQ(out[i], 7.0F) << "lost frame not filled at " << i;
    } else {
      ASSERT_EQ(out[i], reference[i]) << "value altered at " << i;
    }
  }
}

TEST(ChunkedParity, RepairRewritesByteIdentical) {
  const FloatArray data = long_signal(60000, 24);
  const auto pristine = chunked_compress(data, parity_config(4, 2));

  auto damaged = pristine;
  damage_frame(damaged, 4);
  damage_frame(damaged, 6);
  ASSERT_NE(damaged, pristine);

  RepairReport report;
  const auto healed = chunked_repair(damaged, &report);
  EXPECT_EQ(healed, pristine);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.frames_repaired, (std::vector<std::size_t>{4, 6}));
  EXPECT_EQ(report.parity_shards_repaired, 0u);
}

TEST(ChunkedParity, RepairOfIntactContainerIsIdentityAndClean) {
  const FloatArray data = long_signal(30000, 25);
  const auto pristine = chunked_compress(data, parity_config(4, 1));
  RepairReport report;
  EXPECT_EQ(chunked_repair(pristine, &report), pristine);
  EXPECT_TRUE(report.clean());
}

TEST(ChunkedParity, RepairHealsDamagedParityShards) {
  const FloatArray data = long_signal(60000, 26);
  const auto pristine = chunked_compress(data, parity_config(4, 2));
  const ParityInfo info = chunked_parity_info(pristine);

  // Corrupt parity bytes only (the trailing parity area).
  auto damaged = pristine;
  for (std::size_t i = 1; i <= 32; ++i)
    damaged[damaged.size() - i] ^= 0x5C;

  // Damaged redundancy must never poison an intact decode.
  const FloatArray reference = chunked_decompress(pristine);
  DecodeReport report;
  const FloatArray out =
      chunked_decompress(damaged, parity_config(4, 2), &report);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.frames_repaired, 0u);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], reference[i]);

  RepairReport rrep;
  const auto healed = chunked_repair(damaged, &rrep);
  EXPECT_EQ(healed, pristine);
  EXPECT_TRUE(rrep.frames_repaired.empty());
  EXPECT_GE(rrep.parity_shards_repaired, 1u);
  (void)info;
}

TEST(ChunkedParity, ScrubJudgesWithoutDecoding) {
  const FloatArray data = long_signal(60000, 27);
  const auto pristine = chunked_compress(data, parity_config(4, 2));

  const ScrubReport clean = chunked_scrub(pristine);
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(clean.parity_k, 4u);
  EXPECT_EQ(clean.parity_m, 2u);
  EXPECT_EQ(clean.frames_damaged, 0u);
  EXPECT_EQ(clean.parity_mismatches, 0u);

  auto frame_damage = pristine;
  damage_frame(frame_damage, 2);
  const ScrubReport fd = chunked_scrub(frame_damage);
  EXPECT_FALSE(fd.ok());
  EXPECT_EQ(fd.frames_damaged, 1u);

  auto parity_damage = pristine;
  parity_damage[parity_damage.size() - 8] ^= 0xFF;
  const ScrubReport pd = chunked_scrub(parity_damage);
  EXPECT_FALSE(pd.ok());
  EXPECT_GE(pd.parity_shards_damaged, 1u);

  const ScrubReport plain =
      chunked_scrub(chunked_compress(data, ChunkedConfig{}));
  EXPECT_TRUE(plain.ok());
  EXPECT_EQ(plain.parity_m, 0u);
}

TEST(ChunkedParity, ParityLessRepairOfDamageThrows) {
  const FloatArray data = long_signal(30000, 28);
  ChunkedConfig plain;
  plain.chunk_values = 8192;
  auto container = chunked_compress(data, plain);
  damage_frame(container, 0);
  EXPECT_THROW(chunked_repair(container, nullptr), ChecksumError);
}

TEST(Chunked, WhiteNoiseFramesFallBackWithoutBreakingContainer) {
  Rng rng(8);
  FloatArray data({30000});
  for (float& v : data.flat()) v = static_cast<float>(rng.normal());
  ChunkedConfig config;
  config.chunk_values = 10000;
  config.dpz.tve = 0.9999999;
  config.dpz.error_bound = 1e-12;  // force per-frame stored fallback
  ChunkedStats stats;
  const auto container = chunked_compress(data, config, &stats);
  EXPECT_EQ(stats.stored_raw_frames, stats.frame_count);
  const FloatArray back = chunked_decompress(container);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(data[i], back[i]);  // stored frames are bit-exact
}

}  // namespace
}  // namespace dpz
