// GF(2^8) arithmetic and the systematic Reed-Solomon codec behind the
// DZC3 parity section (src/ecc/). The sweeps are exhaustive where the
// field is small enough to allow it: every element for the algebraic
// identities, every erasure pattern up to m losses for reconstruction.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/gf256.h"
#include "ecc/reed_solomon.h"
#include "util/error.h"
#include "util/rng.h"

namespace dpz::ecc {
namespace {

TEST(Gf256, AdditionIsXorAndSelfInverse) {
  EXPECT_EQ(gf_add(0x53, 0xCA), 0x53 ^ 0xCA);
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_add(x, x), 0);
    EXPECT_EQ(gf_add(x, 0), x);
  }
}

TEST(Gf256, MultiplicationIdentitiesAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(x, 1), x);
    EXPECT_EQ(gf_mul(1, x), x);
    EXPECT_EQ(gf_mul(x, 0), 0);
    EXPECT_EQ(gf_mul(0, x), 0);
  }
  // Known product under the 0x11D polynomial (AES-adjacent textbooks
  // use 0x11B; this field is the storage-codec convention).
  EXPECT_EQ(gf_mul(2, 0x80), 0x1D);
}

TEST(Gf256, MultiplicationIsCommutativeAndAssociative) {
  Rng rng(2021);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64());
    const auto b = static_cast<std::uint8_t>(rng.next_u64());
    const auto c = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
    EXPECT_EQ(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
    EXPECT_EQ(gf_mul(a, gf_add(b, c)),
              gf_add(gf_mul(a, b), gf_mul(a, c)));
  }
}

TEST(Gf256, EveryNonzeroElementHasAnInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(x, gf_inv(x)), 1) << "element " << a;
    EXPECT_EQ(gf_div(x, x), 1);
  }
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (unsigned base = 0; base < 16; ++base) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 12; ++e) {
      EXPECT_EQ(gf_pow(static_cast<std::uint8_t>(base), e), acc);
      acc = gf_mul(acc, static_cast<std::uint8_t>(base));
    }
  }
}

// -------------------------------------------------------------------------

std::vector<std::vector<std::uint8_t>> random_shards(std::size_t k,
                                                     std::size_t size,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> shards(k);
  for (auto& s : shards) {
    s.resize(size);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return shards;
}

std::vector<std::span<const std::uint8_t>> views(
    const std::vector<std::vector<std::uint8_t>>& shards) {
  std::vector<std::span<const std::uint8_t>> v;
  v.reserve(shards.size());
  for (const auto& s : shards) v.emplace_back(s);
  return v;
}

TEST(ReedSolomon, RejectsBadGeometry) {
  EXPECT_THROW(RsCodec(0, 2), Error);
  EXPECT_THROW(RsCodec(4, 0), Error);
  EXPECT_THROW(RsCodec(200, 56), Error);  // k + m > 255
  EXPECT_NO_THROW(RsCodec(253, 2));
  EXPECT_NO_THROW(RsCodec(1, 1));
}

TEST(ReedSolomon, EncodeIsDeterministic) {
  const RsCodec codec(5, 3);
  const auto data = random_shards(5, 64, 7);
  const auto p1 = codec.encode(views(data));
  const auto p2 = codec.encode(views(data));
  ASSERT_EQ(p1.size(), 3u);
  EXPECT_EQ(p1, p2);
  for (const auto& shard : p1) EXPECT_EQ(shard.size(), 64u);
}

// Reconstruction, exhaustively: for every way of erasing up to m
// shards (data or parity alike), the decoder must return the original
// data shards bit-exactly.
void sweep_erasures(std::size_t k, std::size_t m, std::size_t size) {
  const RsCodec codec(k, m);
  const auto data = random_shards(k, size, 1000 * k + m);
  const auto parity = codec.encode(views(data));

  std::vector<std::vector<std::uint8_t>> all(data);
  all.insert(all.end(), parity.begin(), parity.end());

  const std::size_t n = k + m;
  // Every single and (when m >= 2) every pair of erasures.
  std::vector<std::vector<std::size_t>> patterns;
  for (std::size_t i = 0; i < n; ++i) patterns.push_back({i});
  if (m >= 2)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) patterns.push_back({i, j});

  for (const auto& erased : patterns) {
    std::vector<std::uint8_t> present(n, 1);
    auto shards = views(all);
    for (const std::size_t e : erased) {
      present[e] = 0;
      shards[e] = {};
    }
    const auto rebuilt = codec.reconstruct(shards, present);
    ASSERT_EQ(rebuilt.size(), k);
    for (std::size_t i = 0; i < k; ++i)
      EXPECT_EQ(rebuilt[i], data[i]) << "k=" << k << " m=" << m
                                     << " erased " << erased.front();
  }
}

TEST(ReedSolomon, AllSingleAndDoubleErasuresReconstruct) {
  sweep_erasures(4, 2, 96);
  sweep_erasures(16, 2, 64);
  sweep_erasures(3, 3, 33);
  sweep_erasures(1, 1, 17);
  sweep_erasures(10, 4, 40);
}

TEST(ReedSolomon, LossBeyondBudgetThrows) {
  const std::size_t k = 4, m = 2;
  const RsCodec codec(k, m);
  const auto data = random_shards(k, 32, 99);
  const auto parity = codec.encode(views(data));

  std::vector<std::vector<std::uint8_t>> all(data);
  all.insert(all.end(), parity.begin(), parity.end());
  std::vector<std::uint8_t> present(k + m, 1);
  auto shards = views(all);
  for (const std::size_t e : {0u, 2u, 5u}) {  // three losses, m = 2
    present[e] = 0;
    shards[e] = {};
  }
  EXPECT_THROW(codec.reconstruct(shards, present), Error);
}

TEST(ReedSolomon, ParityShardsAreLinearlyIndependent) {
  // Erase ALL data shards of a k <= m code: parity alone must carry the
  // message. This is the strongest MDS check a 2+2 geometry allows.
  const RsCodec codec(2, 2);
  const auto data = random_shards(2, 48, 5);
  const auto parity = codec.encode(views(data));

  std::vector<std::span<const std::uint8_t>> shards = {
      {}, {}, parity[0], parity[1]};
  const std::vector<std::uint8_t> present = {0, 0, 1, 1};
  const auto rebuilt = codec.reconstruct(shards, present);
  ASSERT_EQ(rebuilt.size(), 2u);
  EXPECT_EQ(rebuilt[0], data[0]);
  EXPECT_EQ(rebuilt[1], data[1]);
}

TEST(ReedSolomon, MismatchedShardLengthsRejected) {
  const RsCodec codec(3, 1);
  auto data = random_shards(3, 32, 11);
  data[1].resize(31);
  EXPECT_THROW(codec.encode(views(data)), Error);
}

}  // namespace
}  // namespace dpz::ecc
