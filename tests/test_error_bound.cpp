// Error-bound conformance: DPZ's bound P is "designed only for
// approximation on k-PCA" (SS IV-C) — every NORMALIZED score must be
// reconstructed to within P, or escape verbatim as an outlier. The test
// replicates stages 1–2 of the compressor bit for bit (the pipeline is
// deterministic) to recover the exact quantizer input, parses the code
// and outlier sections out of the real archive, and checks the bound
// value by value across schemes, selection methods, and ranks. A second
// group asserts the schemes order as documented: DPZ-s (P = 1e-4) never
// reconstructs worse than DPZ-l (P = 1e-3).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "codec/bytes.h"
#include "codec/quantizer.h"
#include "core/archive_detail.h"
#include "core/blocking.h"
#include "core/dpz.h"
#include "data/datasets.h"
#include "dsp/dct.h"
#include "linalg/pca.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace dpz {
namespace {

FloatArray synthetic(const std::vector<std::size_t>& shape,
                     std::uint64_t seed) {
  std::size_t total = 1;
  for (const std::size_t d : shape) total *= d;
  Rng rng(seed);
  std::vector<float> values(total);
  const std::size_t inner = shape.back();
  for (std::size_t i = 0; i < total; ++i)
    values[i] = static_cast<float>(
        0.4 * static_cast<double>((i / inner) % 19) -
        0.2 * static_cast<double>(i % 11) + rng.uniform(-1.0, 1.0));
  return FloatArray(shape, std::move(values));
}

/// The archive's stage-3 payload, parsed with the same framing the
/// decoder uses.
struct Payload {
  QuantizerConfig qcfg;
  std::size_t k = 0;
  std::size_t n = 0;
  double score_scale = 0.0;
  QuantizedStream stream;
};

Payload parse_payload(std::span<const std::uint8_t> archive) {
  Payload p;
  ByteReader r(archive);
  EXPECT_EQ(r.get_u32(), 0x315A5044U);  // "DPZ1"
  const std::uint8_t version = r.get_u8();
  EXPECT_EQ(version, detail::kFormatVersion);
  const std::uint8_t flags = r.get_u8();
  EXPECT_EQ(flags & 0x04, 0) << "stored-raw fallback fired unexpectedly";
  p.qcfg.wide_codes = (flags & 0x01) != 0;
  const bool standardized = (flags & 0x02) != 0;
  p.qcfg.error_bound = r.get_f64();
  const std::uint8_t rank = r.get_u8();
  for (std::uint8_t d = 0; d < rank; ++d) r.get_u64();
  const auto m = static_cast<std::size_t>(r.get_u64());
  p.n = static_cast<std::size_t>(r.get_u64());
  r.get_u64();  // original_total
  p.k = r.get_u32();
  const std::uint64_t outlier_count = r.get_u64();
  r.get_u32();  // header_crc (v2)

  const detail::SideData side = detail::deserialize_side(
      detail::get_section(r, version), m, p.k, standardized);
  p.score_scale = side.score_scale;

  p.stream.count = p.k * p.n;
  p.stream.codes = detail::get_section(r, version);
  EXPECT_EQ(p.stream.codes.size(), p.stream.count * p.qcfg.code_bytes());

  const std::vector<std::uint8_t> outlier_raw =
      detail::get_section(r, version);
  EXPECT_EQ(outlier_raw.size(), outlier_count * sizeof(float));
  ByteReader outlier_reader(outlier_raw);
  p.stream.outliers.resize(static_cast<std::size_t>(outlier_count));
  for (double& v : p.stream.outliers)
    v = static_cast<double>(outlier_reader.get_f32());
  return p;
}

/// Replays stages 1–2 exactly as compress_impl runs them (deterministic
/// pipeline, so this reproduces the quantizer's input bit for bit).
std::vector<double> replicate_normalized_scores(const FloatArray& data,
                                                const Payload& p,
                                                bool standardized) {
  const BlockLayout layout = choose_block_layout(data.size());
  Matrix blocks = to_blocks(data.flat(), layout);
  const DctPlan plan(layout.n);
  for (std::size_t i = 0; i < layout.m; ++i) {
    auto row = blocks.row(i);
    plan.forward(row, row);
  }
  // compress_impl's non-sampling branch fits spectrum-first and then
  // attaches only the k leading eigenvectors; replicate that exactly —
  // the subspace-iteration basis differs (in bits and, beyond the dense
  // fallback sizes, in value) from a truncated dense eigen_sym basis.
  PcaSpectrum spec = fit_pca_spectrum(blocks, standardized);
  const PcaModel model = attach_top_components(std::move(spec), p.k);
  Matrix scores = model.transform(blocks, p.k);
  EXPECT_DOUBLE_EQ(detail::component_scale(scores.row(0)), p.score_scale);
  const double inv = 1.0 / p.score_scale;
  for (double& v : scores.flat()) v *= inv;
  return {scores.flat().begin(), scores.flat().end()};
}

void check_bound(const DpzConfig& config,
                 const std::vector<std::size_t>& shape,
                 std::uint64_t seed) {
  const FloatArray data = synthetic(shape, seed);
  const std::vector<std::uint8_t> archive = dpz_compress(data, config);
  const DpzArchiveInfo info = dpz_inspect(archive);
  ASSERT_FALSE(info.stored_raw);

  const Payload p = parse_payload(archive);
  EXPECT_DOUBLE_EQ(p.qcfg.error_bound, config.effective_error_bound());
  const std::vector<double> s =
      replicate_normalized_scores(data, p, info.standardized);
  ASSERT_EQ(s.size(), p.stream.count);

  std::vector<double> q(p.stream.count);
  dequantize(p.stream, p.qcfg, q);

  const double bound = p.qcfg.error_bound;
  const std::uint32_t escape = p.qcfg.bin_count();
  const std::size_t code_bytes = p.qcfg.code_bytes();
  std::size_t escapes = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::uint32_t code = p.stream.codes[i * code_bytes];
    if (p.qcfg.wide_codes)
      code |= static_cast<std::uint32_t>(
                  p.stream.codes[i * code_bytes + 1])
              << 8;
    if (code == escape) {
      ++escapes;
      // Outliers travel verbatim at the element width: the only loss is
      // the f32 cast.
      EXPECT_EQ(q[i], static_cast<double>(static_cast<float>(s[i])))
          << "outlier not verbatim at index " << i;
    } else {
      // In-range values land on a bin center at most P away. Allow one
      // part in 10^12 for the bin-center arithmetic's own rounding.
      EXPECT_LE(std::abs(s[i] - q[i]), bound * (1.0 + 1e-12))
          << "bound violated at index " << i << " (|s|=" << std::abs(s[i])
          << ")";
    }
  }
  EXPECT_EQ(escapes, p.stream.outliers.size());
  EXPECT_EQ(escapes, static_cast<std::size_t>(info.outlier_count));
  // Normalized scores live within ~1 (they are divided by 8 sigma of the
  // dominant component), so only schemes whose covered band is narrower
  // than that can see escapes at all. DPZ-l (half-range 0.255) must; the
  // DPZ-s band (6.55) is unreachable by construction.
  if (p.qcfg.half_range() < 0.5) {
    EXPECT_GT(escapes, 0U)
        << "input too tame: the outlier escape path was never exercised";
  }
}

DpzConfig with_selection(DpzConfig config, KSelectionMethod method) {
  config.selection = method;
  return config;
}

TEST(ErrorBound, Loose1DTve) {
  check_bound(DpzConfig::loose(), {4096}, 301);
}
TEST(ErrorBound, Loose2DTve) {
  check_bound(DpzConfig::loose(), {96, 80}, 302);
}
TEST(ErrorBound, Loose3DKnee) {
  check_bound(with_selection(DpzConfig::loose(),
                             KSelectionMethod::kKneePoint),
              {24, 20, 16}, 303);
}
TEST(ErrorBound, Strict1DKnee) {
  check_bound(with_selection(DpzConfig::strict(),
                             KSelectionMethod::kKneePoint),
              {4096}, 304);
}
TEST(ErrorBound, Strict2DTve) {
  check_bound(DpzConfig::strict(), {96, 80}, 305);
}
TEST(ErrorBound, Strict3DTve) {
  // Bigger than the loose 3-D case: at 2-byte codes a tiny grid loses to
  // plain zlib and trips the stored-raw fallback, which has no stage 3.
  check_bound(DpzConfig::strict(), {40, 32, 24}, 306);
}
TEST(ErrorBound, CustomBoundIsHonored) {
  DpzConfig config = DpzConfig::strict();
  config.error_bound = 5e-4;
  check_bound(config, {96, 80}, 307);
}

double psnr_for(const FloatArray& data, const DpzConfig& config) {
  const std::vector<std::uint8_t> archive = dpz_compress(data, config);
  const FloatArray back = dpz_decompress(archive);
  return compute_error_stats(data.flat(), back.flat()).psnr_db;
}

TEST(ErrorBound, StrictSchemeNeverReconstructsWorseThanLoose) {
  // P = 1e-4 with 2-byte codes both tightens each bin and widens the
  // covered range, so DPZ-s must dominate DPZ-l in PSNR (0.01 dB slack
  // for metric arithmetic).
  const std::vector<std::vector<std::size_t>> shapes = {
      {4096}, {96, 80}, {24, 20, 16}};
  for (const auto& shape : shapes) {
    const FloatArray data = synthetic(shape, 401 + shape.size());
    const double loose = psnr_for(data, DpzConfig::loose());
    const double strict = psnr_for(data, DpzConfig::strict());
    EXPECT_GE(strict, loose - 0.01)
        << "DPZ-s lost to DPZ-l on rank " << shape.size();
  }
  const Dataset ds = make_dataset("CLDHGH", 0.05, 2021);
  EXPECT_GE(psnr_for(ds.data, DpzConfig::strict()),
            psnr_for(ds.data, DpzConfig::loose()) - 0.01);
}

TEST(ErrorBound, TighterCustomBoundImprovesPsnr) {
  const FloatArray data = synthetic({96, 80}, 501);
  DpzConfig wide = DpzConfig::strict();
  wide.error_bound = 1e-3;
  DpzConfig tight = DpzConfig::strict();
  tight.error_bound = 1e-4;
  EXPECT_GE(psnr_for(data, tight), psnr_for(data, wide) - 0.01);
}

}  // namespace
}  // namespace dpz
