// Unit tests for the block decomposition policy (SS IV-A): divisor-pair
// selection, the paper's power-of-two example, padding fallback, locality
// preservation, and round-trips.
#include <gtest/gtest.h>

#include "core/blocking.h"
#include "util/rng.h"

namespace dpz {
namespace {

TEST(BlockLayout, PaperPowerOfTwoExample) {
  // 128^3 = 2^21 -> M = 1024, N = 2048 (SS IV-A).
  const BlockLayout layout = choose_block_layout(128UL * 128 * 128);
  EXPECT_EQ(layout.m, 1024U);
  EXPECT_EQ(layout.n, 2048U);
  EXPECT_FALSE(layout.padded);
}

TEST(BlockLayout, CesmShapeUsesExactDivisorPair) {
  // 1800 x 3600 -> M = 1800, N = 3600 (ratio 2).
  const BlockLayout layout = choose_block_layout(1800UL * 3600);
  EXPECT_EQ(layout.m, 1800U);
  EXPECT_EQ(layout.n, 3600U);
  EXPECT_FALSE(layout.padded);
}

TEST(BlockLayout, HaccSize) {
  const BlockLayout layout = choose_block_layout(2097152);
  EXPECT_EQ(layout.m, 1024U);
  EXPECT_EQ(layout.n, 2048U);
}

TEST(BlockLayout, MAlwaysLessThanN) {
  for (const std::size_t total :
       {64UL, 100UL, 1000UL, 4096UL, 65536UL, 123456UL, 999983UL}) {
    const BlockLayout layout = choose_block_layout(total);
    EXPECT_LT(layout.m, layout.n) << "total " << total;
    EXPECT_GE(layout.padded_total(), total) << "total " << total;
  }
}

TEST(BlockLayout, PrimeTotalsFallBackToPadding) {
  const BlockLayout layout = choose_block_layout(999983);  // prime
  EXPECT_TRUE(layout.padded);
  EXPECT_GE(layout.padded_total(), 999983U);
  EXPECT_LT(layout.m, layout.n);
}

TEST(BlockLayout, EvenPowerOfTwoPicksRatioFour) {
  // 2^18: ratio 2 is impossible for a square-free split, so M=256, N=1024.
  const BlockLayout layout = choose_block_layout(1UL << 18);
  EXPECT_EQ(layout.m, 256U);
  EXPECT_EQ(layout.n, 1024U);
}

TEST(BlockLayout, RejectsTinyInputs) {
  EXPECT_THROW(choose_block_layout(4), InvalidArgument);
}

TEST(Blocking, RoundTripExactSize) {
  const std::size_t total = 1800;
  const BlockLayout layout = choose_block_layout(total);
  std::vector<float> flat(total);
  Rng rng(1);
  for (float& v : flat) v = static_cast<float>(rng.normal());

  const Matrix blocks = to_blocks<float>(flat, layout);
  std::vector<float> back(total);
  from_blocks<float>(blocks, layout, back);
  EXPECT_EQ(flat, back);
}

TEST(Blocking, RoundTripPaddedSize) {
  const std::size_t total = 1009;  // prime -> padding fallback
  const BlockLayout layout = choose_block_layout(total);
  ASSERT_TRUE(layout.padded);
  std::vector<float> flat(total);
  Rng rng(2);
  for (float& v : flat) v = static_cast<float>(rng.normal());

  const Matrix blocks = to_blocks<float>(flat, layout);
  std::vector<float> back(total);
  from_blocks<float>(blocks, layout, back);
  EXPECT_EQ(flat, back);
}

TEST(Blocking, PreservesOriginalOrder) {
  // Locality preservation: block i holds the i-th contiguous slice.
  const std::size_t total = 128;
  const BlockLayout layout = choose_block_layout(total);
  std::vector<float> flat(total);
  for (std::size_t i = 0; i < total; ++i) flat[i] = static_cast<float>(i);
  const Matrix blocks = to_blocks<float>(flat, layout);
  for (std::size_t i = 0; i < layout.m; ++i)
    for (std::size_t j = 0; j < layout.n; ++j)
      EXPECT_EQ(blocks(i, j), static_cast<float>(i * layout.n + j));
}

TEST(Blocking, PaddingReplicatesLastValue) {
  const std::size_t total = 1009;
  const BlockLayout layout = choose_block_layout(total);
  std::vector<float> flat(total, 0.0F);
  flat.back() = 42.0F;
  const Matrix blocks = to_blocks<float>(flat, layout);
  // Every slot past the original total holds the last value.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < layout.m; ++i)
    for (std::size_t j = 0; j < layout.n; ++j, ++idx) {
      if (idx >= total) {
        EXPECT_EQ(blocks(i, j), 42.0F);
      }
    }
}

TEST(Blocking, SizeMismatchThrows) {
  const BlockLayout layout = choose_block_layout(64);
  std::vector<float> wrong(65);
  EXPECT_THROW(to_blocks<float>(wrong, layout), InvalidArgument);
}

}  // namespace
}  // namespace dpz
