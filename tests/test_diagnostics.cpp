// Diagnostics-layer tests: error breadcrumbs from the flight recorder
// (core, C API, and CLI --diagnose), JSONL log-sink validity, the
// Prometheus text exposition (checked with a strict in-test parser),
// the metrics JSON round trip including histogram sums, and the
// trace-report command over a real --trace file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "capi/dpz_c.h"
#include "core/chunked.h"
#include "core/dpz.h"
#include "data/datasets.h"
#include "io/file_io.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tools/cli_app.h"
#include "util/error.h"
#include "util/json_mini.h"

namespace dpz {
namespace {

using obs::Counter;
using obs::Event;
using obs::FlightRecorder;
using obs::Hist;
using obs::LogContext;
using obs::LogLevel;

// A parity-protected chunked container whose frames we can damage.
std::vector<std::uint8_t> parity_container() {
  const Dataset ds = make_dataset("Isotropic", 0.05, 2021);
  ChunkedConfig config;
  config.dpz = DpzConfig::strict();
  config.chunk_values = ds.data.size() / 4;
  config.parity_k = 4;
  config.parity_m = 1;
  return chunked_compress(ds.data, config);
}

// Flips a burst of payload bytes at `fraction` of the container.
void damage_at(std::vector<std::uint8_t>& bytes, double fraction) {
  const std::size_t base =
      static_cast<std::size_t>(static_cast<double>(bytes.size()) * fraction);
  for (std::size_t i = 0; i < 32 && base + i < bytes.size(); ++i)
    bytes[base + i] ^= 0xFF;
}

// ---- error breadcrumbs --------------------------------------------------

TEST(Diagnostics, CorruptDecodeLeavesSectionOffsetFrameBreadcrumbs) {
  std::vector<std::uint8_t> bad = parity_container();
  // Three damaged frames exceed the one-shard parity budget.
  damage_at(bad, 0.30);
  damage_at(bad, 0.55);
  damage_at(bad, 0.80);

  FlightRecorder::instance().clear();
  ASSERT_FALSE(FlightRecorder::instance().has_last_error());
  EXPECT_THROW(chunked_decompress(bad), ChecksumError);
  ASSERT_TRUE(FlightRecorder::instance().has_last_error());

  // The ring must hold a checksum_mismatch record carrying the failing
  // frame index, its archive byte offset, and the section name.
  bool found = false;
  for (const FlightRecorder::Record& r :
       FlightRecorder::instance().snapshot()) {
    if (r.event != Event::kChecksumMismatch) continue;
    EXPECT_NE(r.frame, LogContext::kNoValue);
    EXPECT_NE(r.offset, LogContext::kNoValue);
    EXPECT_LT(r.offset, bad.size());
    EXPECT_STREQ(r.section, "frame");
    found = true;
  }
  EXPECT_TRUE(found) << "no checksum_mismatch breadcrumb was recorded";

  const std::string report = FlightRecorder::instance().last_error_report();
  EXPECT_NE(report.find("checksum_mismatch"), std::string::npos);
  EXPECT_NE(report.find("section=frame"), std::string::npos);
  EXPECT_NE(report.find("frame="), std::string::npos);
  EXPECT_NE(report.find("offset="), std::string::npos);
  EXPECT_NE(report.find("flight recorder"), std::string::npos);
}

TEST(Diagnostics, LastErrorReportCrossesTheCApi) {
  std::vector<std::uint8_t> bad = parity_container();
  damage_at(bad, 0.30);
  damage_at(bad, 0.55);
  damage_at(bad, 0.80);

  FlightRecorder::instance().clear();
  float* out = nullptr;
  size_t count = 0;
  const int rc = dpz_chunked_decompress_float(
      bad.data(), bad.size(), nullptr, &out, &count, nullptr);
  ASSERT_NE(rc, DPZ_OK);
  ASSERT_EQ(out, nullptr);

  const std::string report = dpz_last_error_report();
  EXPECT_NE(report.find("error_raised"), std::string::npos);
  EXPECT_NE(report.find("checksum"), std::string::npos);
  EXPECT_NE(report.find("section=frame"), std::string::npos);
}

// ---- CLI: --diagnose, --log, metrics export, trace-report ---------------

class DiagnosticsCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dpz_diag_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    constexpr std::size_t kValues = 4096;
    std::vector<float> values(kValues);
    for (std::size_t i = 0; i < kValues; ++i)
      values[i] =
          static_cast<float>(std::sin(0.06 * static_cast<double>(i)));
    write_f32(path("in.f32"), FloatArray({kValues}, std::move(values)));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  int run(std::vector<std::string> args) {
    std::vector<const char*> argv{"dpz"};
    for (const auto& a : args) argv.push_back(a.c_str());
    out_.str("");
    err_.str("");
    return tools::run_cli(static_cast<int>(argv.size()), argv.data(), out_,
                          err_);
  }

  std::filesystem::path dir_;
  std::ostringstream out_, err_;
};

TEST_F(DiagnosticsCliTest, DiagnoseFlagDumpsBreadcrumbsOnFailure) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("a.dpz"), "--shape=4096",
                 "--chunk=1024", "--parity=4+1"}),
            0)
      << err_.str();

  // Damage three frames: beyond the single-shard parity budget.
  std::vector<std::uint8_t> bytes = read_bytes(path("a.dpz"));
  damage_at(bytes, 0.30);
  damage_at(bytes, 0.55);
  damage_at(bytes, 0.80);
  write_bytes(path("a.dpz"), bytes);

  FlightRecorder::instance().clear();
  const int rc = run({"decompress", path("a.dpz"), path("out.f32"),
                      "--diagnose=1"});
  EXPECT_NE(rc, 0);
  const std::string err = err_.str();
  EXPECT_NE(err.find("error:"), std::string::npos);
  EXPECT_NE(err.find("flight recorder"), std::string::npos);
  EXPECT_NE(err.find("checksum_mismatch"), std::string::npos);
  EXPECT_NE(err.find("section=frame"), std::string::npos) << err;

  // Without the flag the same failure prints only the error line.
  FlightRecorder::instance().clear();
  EXPECT_NE(run({"decompress", path("a.dpz"), path("out.f32")}), 0);
  EXPECT_EQ(err_.str().find("flight recorder"), std::string::npos);
}

TEST_F(DiagnosticsCliTest, LogSinkStreamsValidJsonLines) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("a.dpz"), "--shape=4096",
                 "--log=" + path("log.jsonl")}),
            0)
      << err_.str();

  std::ifstream in(path("log.jsonl"));
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  bool saw_command_start = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const json::Value rec = json::parse(line);
    ASSERT_TRUE(rec.is_object()) << line;
    const json::Value* ts = rec.find("ts_us");
    const json::Value* tid = rec.find("tid");
    const json::Value* level = rec.find("level");
    const json::Value* event = rec.find("event");
    ASSERT_TRUE(ts != nullptr && ts->is_number()) << line;
    ASSERT_TRUE(tid != nullptr && tid->is_number()) << line;
    ASSERT_TRUE(level != nullptr && level->is_string()) << line;
    ASSERT_TRUE(event != nullptr && event->is_string()) << line;
    if (event->text == "command_start") saw_command_start = true;
  }
  EXPECT_GE(lines, 1U);
  EXPECT_TRUE(saw_command_start);
}

TEST_F(DiagnosticsCliTest, TraceReportSummarizesStagesAndQueueWait) {
  ASSERT_EQ(run({"compress", path("in.f32"), path("a.dpz"), "--shape=4096",
                 "--threads=4", "--trace=" + path("trace.json")}),
            0)
      << err_.str();
  ASSERT_EQ(run({"trace-report", path("trace.json")}), 0) << err_.str();

  const std::string text = out_.str();
  EXPECT_NE(text.find("stage"), std::string::npos);
  EXPECT_NE(text.find("self ms"), std::string::npos);
  EXPECT_NE(text.find("stage1_dct"), std::string::npos) << text;
  EXPECT_NE(text.find("zlib_encode"), std::string::npos) << text;
  EXPECT_NE(text.find("pool:"), std::string::npos) << text;
  EXPECT_NE(text.find("queue-wait"), std::string::npos) << text;
  EXPECT_NE(text.find("critical path:"), std::string::npos) << text;
}

TEST_F(DiagnosticsCliTest, TraceReportRejectsMalformedInput) {
  write_bytes(path("junk.json"), {'n', 'o', 'p', 'e'});
  EXPECT_NE(run({"trace-report", path("junk.json")}), 0);
  EXPECT_NE(err_.str().find("trace-report"), std::string::npos);
}

// ---- Prometheus exposition ----------------------------------------------

// Strict subset-of-Prometheus text parser: families introduced by
// `# HELP <name> <text>` then `# TYPE <name> <type>`, followed by that
// family's samples only. Returns samples keyed by full series name
// (with the label part kept verbatim).
struct PromFamily {
  std::string type;
  std::vector<std::pair<std::string, double>> samples;  // series, value
};

std::map<std::string, PromFamily> parse_prometheus(const std::string& text) {
  std::map<std::string, PromFamily> families;
  std::string help_pending;  // family name from the last HELP line
  std::string open_family;   // family whose samples may follow
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      EXPECT_NE(space, std::string::npos) << line;
      help_pending = rest.substr(0, space);
      EXPECT_FALSE(rest.substr(space + 1).empty()) << "empty help text";
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      EXPECT_NE(space, std::string::npos) << line;
      const std::string name = rest.substr(0, space);
      const std::string type = rest.substr(space + 1);
      EXPECT_EQ(name, help_pending) << "TYPE without a preceding HELP";
      EXPECT_TRUE(type == "counter" || type == "histogram") << line;
      EXPECT_EQ(families.count(name), 0U) << "family repeated: " << name;
      families[name].type = type;
      open_family = name;
      continue;
    }
    EXPECT_NE(line[0], '#') << "unknown comment: " << line;
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) return families;
    const std::string series = line.substr(0, space);
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "bad sample value: " << line;
    // A sample belongs to the open family: its name is the family name
    // optionally followed by a label set or a _sum/_count/_bucket
    // suffix.
    EXPECT_FALSE(open_family.empty()) << "sample before any TYPE line";
    if (open_family.empty()) return families;
    EXPECT_EQ(series.rfind(open_family, 0), 0U)
        << "sample " << series << " outside family " << open_family;
    families[open_family].samples.emplace_back(series, value);
  }
  return families;
}

TEST(Diagnostics, PrometheusExpositionPassesAStrictParser) {
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();
  obs::count(Counter::kCompressCalls);
  obs::count(Counter::kBytesIn, 4096);
  obs::observe(Hist::kSelectedK, 0);
  obs::observe(Hist::kSelectedK, 7);
  obs::observe(Hist::kSelectedK, 1024);

  const std::string text =
      obs::MetricsRegistry::instance().snapshot().to_prometheus();
  const std::map<std::string, PromFamily> families =
      parse_prometheus(text);

  // Every counter appears as dpz_<name>_total, every histogram as
  // dpz_<name> — nothing missing, nothing extra.
  ASSERT_EQ(families.size(), obs::kCounterCount + obs::kHistCount);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const std::string family =
        std::string("dpz_") +
        obs::counter_name(static_cast<Counter>(i)) + "_total";
    const auto it = families.find(family);
    ASSERT_NE(it, families.end()) << family;
    EXPECT_EQ(it->second.type, "counter");
    ASSERT_EQ(it->second.samples.size(), 1U);
    EXPECT_EQ(it->second.samples[0].first, family);
  }
  for (std::size_t h = 0; h < obs::kHistCount; ++h) {
    const std::string family =
        std::string("dpz_") + obs::hist_name(static_cast<Hist>(h));
    const auto it = families.find(family);
    ASSERT_NE(it, families.end()) << family;
    EXPECT_EQ(it->second.type, "histogram");

    // Bucket ladder: cumulative counts must be non-decreasing, close
    // with le="+Inf", and match the _count sample.
    double last_bucket = -1.0;
    double inf_bucket = -1.0;
    double count = -1.0;
    double sum = -1.0;
    for (const auto& [series, value] : it->second.samples) {
      if (series.rfind(family + "_bucket{le=\"", 0) == 0) {
        EXPECT_GE(value, last_bucket) << series;
        last_bucket = value;
        if (series.find("+Inf") != std::string::npos) inf_bucket = value;
      } else if (series == family + "_count") {
        count = value;
      } else if (series == family + "_sum") {
        sum = value;
      } else {
        ADD_FAILURE() << "unexpected series: " << series;
      }
    }
    EXPECT_GE(inf_bucket, 0.0) << family << " lacks an +Inf bucket";
    EXPECT_EQ(inf_bucket, count) << family;
    EXPECT_GE(sum, 0.0) << family << " lacks a _sum sample";
  }

  // Spot-check the seeded values.
  EXPECT_EQ(families.at("dpz_compress_calls_total").samples[0].second, 1.0);
  EXPECT_EQ(families.at("dpz_bytes_in_total").samples[0].second, 4096.0);
  const PromFamily& k = families.at("dpz_selected_k");
  for (const auto& [series, value] : k.samples) {
    if (series == "dpz_selected_k_count") {
      EXPECT_EQ(value, 3.0);
    }
    if (series == "dpz_selected_k_sum") {
      EXPECT_EQ(value, 1031.0);
    }
  }
}

// ---- metrics JSON round trip --------------------------------------------

TEST(Diagnostics, MetricsJsonRoundTripsHistogramSumsAndBuckets) {
  const obs::ScopedTelemetry telemetry(true);
  obs::MetricsRegistry::instance().reset();
  obs::observe(Hist::kSelectedK, 0);     // bucket 0
  obs::observe(Hist::kSelectedK, 1);     // bucket 1
  obs::observe(Hist::kSelectedK, 1);     // bucket 1 again
  obs::observe(Hist::kSelectedK, 4096);  // bucket 13

  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.hist_count(Hist::kSelectedK), 4U);
  EXPECT_EQ(snap.hist_sum(Hist::kSelectedK), 4098U);

  const json::Value doc = json::parse(snap.to_json());
  const json::Value* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* h = hists->find("selected_k");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 4.0);
  EXPECT_DOUBLE_EQ(h->find("sum")->number, 4098.0);

  // Sparse [bucket, count] pairs must reconstruct the exact counts.
  const json::Value* buckets = h->find("buckets");
  ASSERT_TRUE(buckets != nullptr && buckets->is_array());
  std::map<int, double> by_bucket;
  for (const json::Value& pair : buckets->items) {
    ASSERT_TRUE(pair.is_array());
    ASSERT_EQ(pair.items.size(), 2U);
    by_bucket[static_cast<int>(pair.items[0].number)] =
        pair.items[1].number;
  }
  EXPECT_EQ(by_bucket.size(), 3U);
  EXPECT_DOUBLE_EQ(by_bucket[0], 1.0);
  EXPECT_DOUBLE_EQ(by_bucket[1], 2.0);
  EXPECT_DOUBLE_EQ(by_bucket[13], 1.0);
}

// ---- determinism with diagnostics on ------------------------------------

TEST(Diagnostics, LoggingAndSinkNeverChangeArchiveBytes) {
  const Dataset ds = make_dataset("CLDHGH", 0.05, 2021);
  const DpzConfig config = DpzConfig::strict();

  const std::vector<std::uint8_t> quiet = dpz_compress(ds.data, config);

  const std::filesystem::path sink_path =
      std::filesystem::temp_directory_path() /
      ("dpz_diag_sink_" + std::to_string(::getpid()) + ".jsonl");
  std::vector<std::uint8_t> loud;
  {
    const obs::ScopedLogLevel verbose(LogLevel::kTrace);
    const obs::LogSinkScope sink(sink_path.string());
    ASSERT_TRUE(sink.ok());
    loud = dpz_compress(ds.data, config);
  }
  std::filesystem::remove(sink_path);

  EXPECT_EQ(quiet, loud)
      << "structured logging must never change output bytes";
}

}  // namespace
}  // namespace dpz
