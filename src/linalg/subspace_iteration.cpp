#include "linalg/subspace_iteration.h"

#include <cmath>

#include "simd/simd.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

// The iteration keeps the basis TRANSPOSED — qt is b x M with row j
// holding basis vector j — so every inner product and update below runs
// over contiguous memory through the kernel table. The column-major
// original spent most of its time striding M x b columns.

// Orthonormalizes the rows of qt in place (modified Gram-Schmidt). Rows
// that collapse numerically are replaced by fresh random directions and
// re-orthogonalized, so the basis never degenerates.
void orthonormalize_rows(Matrix& qt, Rng& rng) {
  const std::size_t b = qt.rows();
  const std::size_t m = qt.cols();
  const simd::KernelTable& ops = simd::kernels();
  for (std::size_t j = 0; j < b; ++j) {
    double* row_j = qt.row(j).data();
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        const double* row_p = qt.row(prev).data();
        ops.axpy(-ops.dot(row_p, row_j, m), row_p, row_j, m);
      }
      const double norm2 = ops.dot(row_j, row_j, m);
      if (norm2 > 1e-24) {
        ops.scale(1.0 / std::sqrt(norm2), row_j, m);
        break;
      }
      for (std::size_t i = 0; i < m; ++i) row_j[i] = rng.normal();
    }
  }
}

// zt = qt * A for symmetric A, as long dots against A's rows (row i ==
// column i). Blocks of four qt rows share each streamed A row out of L1.
Matrix apply_symmetric(const Matrix& a, const Matrix& qt) {
  const std::size_t b = qt.rows();
  const std::size_t m = qt.cols();
  const simd::KernelTable& ops = simd::kernels();
  constexpr std::size_t kRowBlock = 4;
  Matrix zt(b, m);
  parallel_for(0, (b + kRowBlock - 1) / kRowBlock, [&](std::size_t bj) {
    const std::size_t j0 = bj * kRowBlock;
    const std::size_t j1 = std::min(b, j0 + kRowBlock);
    for (std::size_t i = 0; i < m; ++i) {
      const double* ai = a.row(i).data();
      for (std::size_t j = j0; j < j1; ++j)
        zt(j, i) = ops.dot(qt.row(j).data(), ai, m);
    }
  });
  return zt;
}

// Rayleigh quotient small(j, l) = (A q_j) . q_l from the transposed
// factors (b x b, symmetric up to rounding like the original).
Matrix rayleigh_quotient(const Matrix& zt, const Matrix& qt) {
  const std::size_t b = qt.rows();
  const std::size_t m = qt.cols();
  const simd::KernelTable& ops = simd::kernels();
  Matrix small(b, b);
  for (std::size_t j = 0; j < b; ++j)
    for (std::size_t l = 0; l < b; ++l)
      small(j, l) = ops.dot(zt.row(j).data(), qt.row(l).data(), m);
  return small;
}

}  // namespace

SymmetricEigen eigen_sym_topk(const Matrix& a, std::size_t k,
                              std::uint64_t seed,
                              std::size_t max_iterations, double tolerance) {
  DPZ_REQUIRE(a.rows() == a.cols(), "eigen_sym_topk needs a square matrix");
  const std::size_t m = a.rows();
  DPZ_REQUIRE(k >= 1 && k <= m, "k must be in [1, M]");

  // Small problems: the dense solver is both faster and exact.
  if (m <= 64 || k * 2 >= m) {
    SymmetricEigen full = eigen_sym(a);
    SymmetricEigen out;
    out.values.assign(full.values.begin(),
                      full.values.begin() + static_cast<std::ptrdiff_t>(k));
    out.vectors = Matrix(m, k);
    for (std::size_t j = 0; j < k; ++j)
      for (std::size_t i = 0; i < m; ++i)
        out.vectors(i, j) = full.vectors(i, j);
    return out;
  }

  const std::size_t block = std::min(m, k + 8);  // oversampling margin
  Rng rng(seed);
  Matrix qt(block, m);
  for (double& v : qt.flat()) v = rng.normal();
  orthonormalize_rows(qt, rng);

  std::vector<double> prev_values(k, 0.0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const Matrix zt = apply_symmetric(a, qt);          // b x M
    const SymmetricEigen ritz = eigen_sym(rayleigh_quotient(zt, qt));

    // Rotate the basis onto the Ritz directions (power step included:
    // rows of S^T zt are Ritz combinations of the A q_j images) and
    // re-orthonormalize.
    qt = ritz.vectors.transposed().multiply(zt);
    orthonormalize_rows(qt, rng);

    double delta = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double scale = std::max(1.0, std::abs(ritz.values[j]));
      delta = std::max(delta,
                       std::abs(ritz.values[j] - prev_values[j]) / scale);
      prev_values[j] = ritz.values[j];
    }
    if (delta < tolerance) break;
  }

  // Final Rayleigh-Ritz on the converged basis for clean eigenpairs.
  const Matrix zt = apply_symmetric(a, qt);
  const SymmetricEigen ritz = eigen_sym(rayleigh_quotient(zt, qt));
  const Matrix vt = ritz.vectors.transposed().multiply(qt);  // b x M

  SymmetricEigen out;
  out.values.assign(ritz.values.begin(),
                    ritz.values.begin() + static_cast<std::ptrdiff_t>(k));
  out.vectors = Matrix(m, k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < m; ++i) out.vectors(i, j) = vt(j, i);
  return out;
}

}  // namespace dpz
