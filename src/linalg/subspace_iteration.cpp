#include "linalg/subspace_iteration.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace dpz {

namespace {

// Orthonormalizes the columns of q in place (modified Gram-Schmidt).
// Columns that collapse numerically are replaced by fresh random
// directions and re-orthogonalized, so the basis never degenerates.
void orthonormalize_columns(Matrix& q, Rng& rng) {
  const std::size_t m = q.rows();
  const std::size_t b = q.cols();
  for (std::size_t j = 0; j < b; ++j) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        double dot = 0.0;
        for (std::size_t i = 0; i < m; ++i) dot += q(i, prev) * q(i, j);
        for (std::size_t i = 0; i < m; ++i) q(i, j) -= dot * q(i, prev);
      }
      double norm2 = 0.0;
      for (std::size_t i = 0; i < m; ++i) norm2 += q(i, j) * q(i, j);
      if (norm2 > 1e-24) {
        const double inv = 1.0 / std::sqrt(norm2);
        for (std::size_t i = 0; i < m; ++i) q(i, j) *= inv;
        break;
      }
      for (std::size_t i = 0; i < m; ++i) q(i, j) = rng.normal();
    }
  }
}

}  // namespace

SymmetricEigen eigen_sym_topk(const Matrix& a, std::size_t k,
                              std::uint64_t seed,
                              std::size_t max_iterations, double tolerance) {
  DPZ_REQUIRE(a.rows() == a.cols(), "eigen_sym_topk needs a square matrix");
  const std::size_t m = a.rows();
  DPZ_REQUIRE(k >= 1 && k <= m, "k must be in [1, M]");

  // Small problems: the dense solver is both faster and exact.
  if (m <= 64 || k * 2 >= m) {
    SymmetricEigen full = eigen_sym(a);
    SymmetricEigen out;
    out.values.assign(full.values.begin(),
                      full.values.begin() + static_cast<std::ptrdiff_t>(k));
    out.vectors = Matrix(m, k);
    for (std::size_t j = 0; j < k; ++j)
      for (std::size_t i = 0; i < m; ++i)
        out.vectors(i, j) = full.vectors(i, j);
    return out;
  }

  const std::size_t block = std::min(m, k + 8);  // oversampling margin
  Rng rng(seed);
  Matrix q(m, block);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < block; ++j) q(i, j) = rng.normal();
  orthonormalize_columns(q, rng);

  std::vector<double> prev_values(k, 0.0);
  Matrix ritz_vectors(m, block);
  std::vector<double> ritz_values(block, 0.0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    Matrix z = a.multiply(q);                  // M x b
    Matrix small = q.transpose_multiply(z);    // b x b Rayleigh quotient
    const SymmetricEigen ritz = eigen_sym(small);

    // Rotate the basis onto the Ritz directions and re-orthonormalize.
    ritz_vectors = z.multiply(ritz.vectors);   // A Q S: power step included
    q = ritz_vectors;
    orthonormalize_columns(q, rng);
    ritz_values = ritz.values;

    double delta = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double scale = std::max(1.0, std::abs(ritz.values[j]));
      delta = std::max(delta,
                       std::abs(ritz.values[j] - prev_values[j]) / scale);
      prev_values[j] = ritz.values[j];
    }
    if (delta < tolerance) break;
  }

  // Final Rayleigh-Ritz on the converged basis for clean eigenpairs.
  Matrix z = a.multiply(q);
  Matrix small = q.transpose_multiply(z);
  const SymmetricEigen ritz = eigen_sym(small);
  Matrix vectors = q.multiply(ritz.vectors);

  SymmetricEigen out;
  out.values.assign(ritz.values.begin(),
                    ritz.values.begin() + static_cast<std::ptrdiff_t>(k));
  out.vectors = Matrix(m, k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < m; ++i) out.vectors(i, j) = vectors(i, j);
  return out;
}

}  // namespace dpz
