// Truncated symmetric eigendecomposition by blocked subspace iteration.
//
// The paper's sampling strategy (SS IV-D) exists to avoid paying the full
// O(M^3) eigenanalysis when only k << M components will survive
// selection: once k_e is estimated from subsets, the leading eigenpairs
// can be computed at O(M^2 k) per iteration. This is the production path
// DPZ takes when sampling is enabled.
#pragma once

#include "linalg/eigen_sym.h"

namespace dpz {

/// Computes the `k` leading eigenpairs (largest eigenvalues) of the
/// symmetric matrix `a` by orthogonal (subspace) iteration with
/// Rayleigh-Ritz extraction. Deterministic: the starting block is seeded
/// from `seed`. Converges fast when there is any spectral decay; the
/// iteration cap keeps worst cases bounded.
///
/// Returned values/vectors are sorted descending like eigen_sym; only k
/// pairs are present (vectors is an M x k matrix).
SymmetricEigen eigen_sym_topk(const Matrix& a, std::size_t k,
                              std::uint64_t seed = 7,
                              std::size_t max_iterations = 200,
                              double tolerance = 1e-10);

}  // namespace dpz
