#include "linalg/pca.h"

#include <cmath>

#include "linalg/eigen_sym.h"
#include "linalg/subspace_iteration.h"
#include "simd/simd.h"
#include "util/thread_pool.h"

namespace dpz {

std::vector<double> PcaModel::tve_curve() const {
  const std::size_t m = eigenvalues.size();
  std::vector<double> tve(m, 1.0);
  double total = 0.0;
  for (const double l : eigenvalues) total += l;
  if (total <= 0.0) return tve;  // degenerate (constant data): all-ones
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    acc += eigenvalues[i];
    tve[i] = acc / total;
  }
  tve[m - 1] = 1.0;  // guard against rounding drift
  return tve;
}

std::size_t PcaModel::k_for_tve(double threshold) const {
  DPZ_REQUIRE(threshold > 0.0 && threshold <= 1.0,
              "TVE threshold must be in (0, 1]");
  const std::vector<double> tve = tve_curve();
  for (std::size_t k = 0; k < tve.size(); ++k)
    if (tve[k] >= threshold) return k + 1;
  return tve.size();
}

Matrix PcaModel::transform(const Matrix& x, std::size_t k) const {
  const std::size_t m = feature_count();
  DPZ_REQUIRE(x.rows() == m, "PCA transform feature-count mismatch");
  DPZ_REQUIRE(k >= 1 && k <= m, "k must be in [1, M]");
  const std::size_t n = x.cols();
  const simd::KernelTable& ops = simd::kernels();

  // Row tiles keep a slab of x cache-resident while every component
  // accumulates from it; untiled, each of the k components re-streams
  // the whole M x N matrix from memory. Each component still sums its
  // rows in ascending-i order, so the scores are bit-identical to the
  // untiled loop and independent of the thread count.
  Matrix scores(k, n);
  constexpr std::size_t kTileRows = 64;
  for (std::size_t i0 = 0; i0 < m; i0 += kTileRows) {
    const std::size_t i1 = std::min(m, i0 + kTileRows);
    parallel_for(0, k, [&](std::size_t j) {
      double* out = scores.row(j).data();
      for (std::size_t i = i0; i < i1; ++i) {
        const double d = components(i, j) / scale[i];
        if (d == 0.0) continue;
        ops.accum_centered(d, x.row(i).data(), mean[i], out, n);
      }
    });
  }
  return scores;
}

Matrix PcaModel::inverse_transform(const Matrix& scores) const {
  const std::size_t m = feature_count();
  const std::size_t k = scores.rows();
  DPZ_REQUIRE(k >= 1 && k <= m, "score rank must be in [1, M]");
  const std::size_t n = scores.cols();
  const simd::KernelTable& ops = simd::kernels();

  Matrix x(m, n);
  parallel_for(0, m, [&](std::size_t i) {
    double* out = x.row(i).data();
    for (std::size_t j = 0; j < k; ++j) {
      const double d = components(i, j);
      if (d == 0.0) continue;
      ops.axpy(d, scores.row(j).data(), out, n);
    }
    ops.scale_shift(scale[i], mean[i], out, n);
  });
  return x;
}

Matrix covariance(const Matrix& x) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  DPZ_REQUIRE(n >= 1, "covariance needs at least one sample");
  const simd::KernelTable& ops = simd::kernels();

  std::vector<double> mean(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = x.row(i).data();
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) sum += row[c];
    mean[i] = sum / static_cast<double>(n);
  }

  // Center once up front so the O(m^2 n) pair loop runs plain dots
  // instead of re-subtracting the means per element. (x - mu) * 1.0 is
  // exact for every double, and dot and dot_centered share the same
  // sixteen-lane reduction tree, so this is bit-identical to the fused
  // form.
  Matrix centered(m, n);
  parallel_for(0, m, [&](std::size_t i) {
    ops.center_scale(x.row(i).data(), mean[i], 1.0, centered.row(i).data(),
                     n);
  });

  // Blocks of four i-rows share each streamed j-row: the first dot pulls
  // it out of L2, the next three hit L1. Every (i, j) dot is the same
  // call in either order, so the entries are bit-identical to the
  // row-at-a-time loop.
  constexpr std::size_t kRowBlock = 4;
  Matrix cov(m, m);
  parallel_for(0, (m + kRowBlock - 1) / kRowBlock, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    const std::size_t i1 = std::min(m, i0 + kRowBlock);
    for (std::size_t j = i0; j < m; ++j) {
      const double* cj = centered.row(j).data();
      for (std::size_t i = i0; i < i1 && i <= j; ++i)
        cov(i, j) = ops.dot(centered.row(i).data(), cj, n) /
                    static_cast<double>(n);
    }
  });
  // Mirror the upper triangle (disjoint writes above, so safe afterwards).
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < i; ++j) cov(i, j) = cov(j, i);
  return cov;
}

namespace {

// Fills mean/scale and returns the centered (optionally standardized)
// working copy shared by the full and truncated fits.
Matrix prepare_centered(const Matrix& x, bool standardize, PcaModel& model) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  DPZ_REQUIRE(n >= 2, "PCA needs at least two samples per feature");
  const simd::KernelTable& ops = simd::kernels();

  model.mean.resize(m);
  model.scale.assign(m, 1.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = x.row(i).data();
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) sum += row[c];
    model.mean[i] = sum / static_cast<double>(n);
  }

  Matrix centered(m, n);
  if (standardize) {
    for (std::size_t i = 0; i < m; ++i) {
      const double mu = model.mean[i];
      const double var =
          ops.dot_centered(x.row(i).data(), mu, x.row(i).data(), mu, n) /
          static_cast<double>(n);
      if (var > 0.0) model.scale[i] = std::sqrt(var);
    }
  }
  parallel_for(0, m, [&](std::size_t i) {
    ops.center_scale(x.row(i).data(), model.mean[i], 1.0 / model.scale[i],
                     centered.row(i).data(), n);
  });
  return centered;
}

}  // namespace

PcaModel fit_pca(const Matrix& x, bool standardize) {
  PcaModel model;
  const Matrix centered = prepare_centered(x, standardize, model);

  // Covariance of the prepared matrix (means are now ~0, but recompute to
  // stay exact) and its eigendecomposition.
  const Matrix cov = covariance(centered);
  SymmetricEigen eig = eigen_sym(cov);

  for (double& v : eig.values)
    if (v < 0.0) v = 0.0;  // clamp tiny negative rounding residue
  model.eigenvalues = std::move(eig.values);
  model.components = std::move(eig.vectors);
  return model;
}

PcaModel fit_pca_topk(const Matrix& x, std::size_t k, bool standardize) {
  DPZ_REQUIRE(k >= 1 && k <= x.rows(), "k must be in [1, M]");
  PcaModel model;
  const Matrix centered = prepare_centered(x, standardize, model);
  const Matrix cov = covariance(centered);
  SymmetricEigen eig = eigen_sym_topk(cov, k);

  for (double& v : eig.values)
    if (v < 0.0) v = 0.0;
  model.eigenvalues = std::move(eig.values);
  model.components = std::move(eig.vectors);
  return model;
}

PcaSpectrum fit_pca_spectrum(const Matrix& x, bool standardize) {
  PcaSpectrum spec;
  const Matrix centered = prepare_centered(x, standardize, spec.model);
  spec.cov = covariance(centered);
  spec.tridiag = tridiagonalize(spec.cov);
  spec.model.eigenvalues = eigen_values_from(spec.tridiag);
  for (double& v : spec.model.eigenvalues)
    if (v < 0.0) v = 0.0;  // clamp tiny negative rounding residue
  return spec;
}

PcaModel attach_top_components(PcaSpectrum&& spec, std::size_t k) {
  const std::size_t m = spec.cov.rows();
  DPZ_REQUIRE(k >= 1 && k <= m, "k must be in [1, M]");
  PcaModel model = std::move(spec.model);
  // Keep the full values-only spectrum (already clamped): it drove the
  // TVE-based k choice and stays exact for the whole curve, while the
  // solve below contributes only the vectors.
  //
  // Small or near-full-rank problems take the dense QL accumulation: at
  // these sizes it costs about the same as k rounds of inverse iteration
  // and its vectors carry none of the inverse-iteration restart
  // machinery. Large skinny problems (the Stage-2 hot path) switch to
  // inverse iteration on the cached tridiagonal: O(M^2 k) with the
  // reduction already paid for, versus O(M^3) for the dense
  // accumulation.
  if (m <= 64 || 2 * k >= m) {
    SymmetricEigen eig = eigen_sym_from(spec.tridiag);
    model.components = Matrix(m, k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < k; ++j)
        model.components(i, j) = eig.vectors(i, j);
    return model;
  }
  SymmetricEigen eig = eigen_topk_from(spec.tridiag, k);
  model.components = std::move(eig.vectors);
  return model;
}

}  // namespace dpz
