#include "linalg/pca.h"

#include <cmath>

#include "linalg/eigen_sym.h"
#include "linalg/subspace_iteration.h"
#include "util/thread_pool.h"

namespace dpz {

std::vector<double> PcaModel::tve_curve() const {
  const std::size_t m = eigenvalues.size();
  std::vector<double> tve(m, 1.0);
  double total = 0.0;
  for (const double l : eigenvalues) total += l;
  if (total <= 0.0) return tve;  // degenerate (constant data): all-ones
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    acc += eigenvalues[i];
    tve[i] = acc / total;
  }
  tve[m - 1] = 1.0;  // guard against rounding drift
  return tve;
}

std::size_t PcaModel::k_for_tve(double threshold) const {
  DPZ_REQUIRE(threshold > 0.0 && threshold <= 1.0,
              "TVE threshold must be in (0, 1]");
  const std::vector<double> tve = tve_curve();
  for (std::size_t k = 0; k < tve.size(); ++k)
    if (tve[k] >= threshold) return k + 1;
  return tve.size();
}

Matrix PcaModel::transform(const Matrix& x, std::size_t k) const {
  const std::size_t m = feature_count();
  DPZ_REQUIRE(x.rows() == m, "PCA transform feature-count mismatch");
  DPZ_REQUIRE(k >= 1 && k <= m, "k must be in [1, M]");
  const std::size_t n = x.cols();

  Matrix scores(k, n);
  parallel_for(0, k, [&](std::size_t j) {
    double* out = scores.row(j).data();
    for (std::size_t i = 0; i < m; ++i) {
      const double d = components(i, j) / scale[i];
      if (d == 0.0) continue;
      const double* xi = x.row(i).data();
      const double mu = mean[i];
      for (std::size_t c = 0; c < n; ++c) out[c] += d * (xi[c] - mu);
    }
  });
  return scores;
}

Matrix PcaModel::inverse_transform(const Matrix& scores) const {
  const std::size_t m = feature_count();
  const std::size_t k = scores.rows();
  DPZ_REQUIRE(k >= 1 && k <= m, "score rank must be in [1, M]");
  const std::size_t n = scores.cols();

  Matrix x(m, n);
  parallel_for(0, m, [&](std::size_t i) {
    double* out = x.row(i).data();
    for (std::size_t j = 0; j < k; ++j) {
      const double d = components(i, j);
      if (d == 0.0) continue;
      const double* y = scores.row(j).data();
      for (std::size_t c = 0; c < n; ++c) out[c] += d * y[c];
    }
    const double s = scale[i];
    const double mu = mean[i];
    for (std::size_t c = 0; c < n; ++c) out[c] = out[c] * s + mu;
  });
  return x;
}

Matrix covariance(const Matrix& x) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  DPZ_REQUIRE(n >= 1, "covariance needs at least one sample");

  std::vector<double> mean(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = x.row(i).data();
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) sum += row[c];
    mean[i] = sum / static_cast<double>(n);
  }

  Matrix cov(m, m);
  parallel_for(0, m, [&](std::size_t i) {
    const double* xi = x.row(i).data();
    const double mi = mean[i];
    for (std::size_t j = i; j < m; ++j) {
      const double* xj = x.row(j).data();
      const double mj = mean[j];
      double sum = 0.0;
      for (std::size_t c = 0; c < n; ++c)
        sum += (xi[c] - mi) * (xj[c] - mj);
      cov(i, j) = sum / static_cast<double>(n);
    }
  });
  // Mirror the upper triangle (disjoint writes above, so safe afterwards).
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < i; ++j) cov(i, j) = cov(j, i);
  return cov;
}

namespace {

// Fills mean/scale and returns the centered (optionally standardized)
// working copy shared by the full and truncated fits.
Matrix prepare_centered(const Matrix& x, bool standardize, PcaModel& model) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  DPZ_REQUIRE(n >= 2, "PCA needs at least two samples per feature");

  model.mean.resize(m);
  model.scale.assign(m, 1.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = x.row(i).data();
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) sum += row[c];
    model.mean[i] = sum / static_cast<double>(n);
  }

  Matrix centered(m, n);
  if (standardize) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* row = x.row(i).data();
      const double mu = model.mean[i];
      double var = 0.0;
      for (std::size_t c = 0; c < n; ++c)
        var += (row[c] - mu) * (row[c] - mu);
      var /= static_cast<double>(n);
      if (var > 0.0) model.scale[i] = std::sqrt(var);
    }
  }
  parallel_for(0, m, [&](std::size_t i) {
    const double* row = x.row(i).data();
    double* out = centered.row(i).data();
    const double mu = model.mean[i];
    const double inv_s = 1.0 / model.scale[i];
    for (std::size_t c = 0; c < n; ++c) out[c] = (row[c] - mu) * inv_s;
  });
  return centered;
}

}  // namespace

PcaModel fit_pca(const Matrix& x, bool standardize) {
  PcaModel model;
  const Matrix centered = prepare_centered(x, standardize, model);

  // Covariance of the prepared matrix (means are now ~0, but recompute to
  // stay exact) and its eigendecomposition.
  const Matrix cov = covariance(centered);
  SymmetricEigen eig = eigen_sym(cov);

  for (double& v : eig.values)
    if (v < 0.0) v = 0.0;  // clamp tiny negative rounding residue
  model.eigenvalues = std::move(eig.values);
  model.components = std::move(eig.vectors);
  return model;
}

PcaModel fit_pca_topk(const Matrix& x, std::size_t k, bool standardize) {
  DPZ_REQUIRE(k >= 1 && k <= x.rows(), "k must be in [1, M]");
  PcaModel model;
  const Matrix centered = prepare_centered(x, standardize, model);
  const Matrix cov = covariance(centered);
  SymmetricEigen eig = eigen_sym_topk(cov, k);

  for (double& v : eig.values)
    if (v < 0.0) v = 0.0;
  model.eigenvalues = std::move(eig.values);
  model.components = std::move(eig.vectors);
  return model;
}

}  // namespace dpz
