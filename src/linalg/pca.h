// Principal component analysis over block-feature matrices.
//
// DPZ's Stage 2 (SS IV-B): the decomposed blocks form the feature matrix
// X in R^{M x N} (M block-features, N datapoints per block). PCA
// eigenanalyzes the M x M covariance of X's columns; the paper's key
// result (Eq. 3-6) is that this may be done directly on the DCT
// coefficients. Scores of the leading k components, Y = D_k^T (X - mean),
// are what later stages quantize and encode; reconstruction is
// X_hat = D_k Y + mean.
//
// Standardization (dividing features by their standard deviation) is
// optional and applied only to low-linearity data — the paper notes that
// scaling would redistribute the variance weight of unit-norm DCT block
// features (SS IV-B), so the compressor gates it on the VIF probe.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"

namespace dpz {

/// A fitted PCA basis.
struct PcaModel {
  std::vector<double> mean;         ///< per-feature mean, length M
  std::vector<double> scale;        ///< per-feature std (1.0 when not standardized)
  std::vector<double> eigenvalues;  ///< descending, clamped at 0, length M
  Matrix components;                ///< M x M; column j = eigenvector j

  [[nodiscard]] std::size_t feature_count() const { return mean.size(); }

  /// Cumulative total variance explained: tve[k-1] = sum(l_1..l_k)/sum(all).
  /// This is Eq. 2 of the paper and the curve both k-selection methods read.
  [[nodiscard]] std::vector<double> tve_curve() const;

  /// Smallest k whose TVE reaches `threshold` (Method 2, Algorithm 1).
  [[nodiscard]] std::size_t k_for_tve(double threshold) const;

  /// Scores of the first k components: Y = D_k^T (X - mean)/scale, k x N.
  [[nodiscard]] Matrix transform(const Matrix& x, std::size_t k) const;

  /// Reconstruction from k scores: X_hat = (D_k Y) * scale + mean, M x N.
  [[nodiscard]] Matrix inverse_transform(const Matrix& scores) const;
};

/// Fits PCA on X (M features x N samples). When `standardize` is set,
/// features are scaled to unit variance before eigenanalysis (features with
/// zero variance keep scale 1 to avoid dividing by zero).
PcaModel fit_pca(const Matrix& x, bool standardize = false);

/// Truncated fit: computes only the `k` leading eigenpairs by subspace
/// iteration (O(M^2 k) per sweep instead of the dense solver's O(M^3)).
/// The returned model has `components` of shape M x k and k eigenvalues;
/// tve_curve()/k_for_tve() are not meaningful on a truncated model. This
/// is the fast path the sampling strategy unlocks once k_e is known.
PcaModel fit_pca_topk(const Matrix& x, std::size_t k,
                      bool standardize = false);

/// A spectrum-first fit: mean/scale and the FULL eigenvalue spectrum of
/// the covariance (via the values-only solver, ~3x cheaper than the
/// dense eigendecomposition), plus the covariance itself so the leading
/// eigenvectors can be solved for afterwards without re-streaming X.
/// This splits Stage 2's k-selection (which needs every eigenvalue for
/// the TVE curve) from the basis solve (which needs only k columns).
struct PcaSpectrum {
  PcaModel model;  ///< mean/scale/eigenvalues filled; components empty
  Matrix cov;      ///< covariance of the centered working copy
  /// Cached Householder reduction of `cov` — the O(M^3) half of the
  /// eigenvalue pass. When attach_top_components takes the dense route
  /// it accumulates eigenvectors straight from this instead of reducing
  /// the covariance a second time.
  TridiagonalReduction tridiag;
};

/// Phase one: center/standardize, covariance, full eigenvalue spectrum.
PcaSpectrum fit_pca_spectrum(const Matrix& x, bool standardize = false);

/// Phase two: attaches the k leading eigenvectors (subspace iteration on
/// the cached covariance; dense fallback for small problems) to the
/// spectrum's model. The model keeps the full eigenvalue list, so
/// tve_curve()/k_for_tve() remain exact on the result.
PcaModel attach_top_components(PcaSpectrum&& spec, std::size_t k);

/// Covariance matrix of X's rows: C = (Xc Xc^T)/N with Xc row-centered
/// (population normalization, matching the eigenvalue/variance accounting
/// in Eq. 2). Exposed separately for tests and for the DCT-domain identity
/// check (Eq. 4: V_Z = A^T V_X A).
Matrix covariance(const Matrix& x);

}  // namespace dpz
