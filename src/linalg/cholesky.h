// Cholesky factorization and SPD inverse.
//
// The sampling strategy's compressibility probe needs the diagonal of the
// inverse correlation matrix (VIF_i = [R^-1]_ii, SS IV-D2 of the paper);
// Cholesky is the cheap, stable route for that symmetric positive-definite
// solve. Polynomial least-squares fitting (knee-point curve smoothing)
// also solves its normal equations through this factorization.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace dpz {

/// Lower-triangular Cholesky factor of an SPD matrix.
class Cholesky {
 public:
  /// Factors `a` (symmetric positive definite; only the lower triangle is
  /// read). Returns std::nullopt when `a` is not positive definite.
  static std::optional<Cholesky> factor(const Matrix& a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Full inverse A^-1 (symmetric).
  [[nodiscard]] Matrix inverse() const;

  /// Diagonal of A^-1 without forming the full inverse elsewhere; this is
  /// exactly the VIF vector when A is a correlation matrix.
  [[nodiscard]] std::vector<double> inverse_diagonal() const;

  [[nodiscard]] const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace dpz
