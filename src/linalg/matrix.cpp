#include "linalg/matrix.h"

#include <cmath>

#include "util/thread_pool.h"

namespace dpz {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  DPZ_REQUIRE(cols_ == other.rows_, "matrix multiply dimension mismatch");
  Matrix out(rows_, other.cols_);
  const std::size_t n = other.cols_;
  // ikj order: the inner loop streams one row of `other` and one row of
  // `out`, both contiguous.
  parallel_for(0, rows_, [&](std::size_t i) {
    double* out_row = out.row(i).data();
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* other_row = other.row(k).data();
      for (std::size_t j = 0; j < n; ++j) out_row[j] += a * other_row[j];
    }
  });
  return out;
}

Matrix Matrix::transpose_multiply(const Matrix& other) const {
  DPZ_REQUIRE(rows_ == other.rows_,
              "transpose_multiply dimension mismatch");
  Matrix out(cols_, other.cols_);
  const std::size_t n = other.cols_;
  // out(i,j) = sum_k this(k,i) * other(k,j): accumulate rank-1 updates row
  // by row of the inputs so all accesses stay contiguous. Each worker owns
  // a contiguous band of output rows i; every band accumulates its rows
  // in the same k order, so the result does not depend on the band count.
  const unsigned workers = PoolScope::current().thread_count();
  const std::size_t band =
      (cols_ + workers - 1) / std::max<std::size_t>(workers, 1);
  parallel_for(0, workers, [&](std::size_t w) {
    const std::size_t lo = w * band;
    const std::size_t hi = std::min(cols_, lo + band);
    for (std::size_t k = 0; k < rows_; ++k) {
      const double* a_row = row(k).data();
      const double* b_row = other.row(k).data();
      for (std::size_t i = lo; i < hi; ++i) {
        const double a = a_row[i];
        if (a == 0.0) continue;
        double* out_row = out.row(i).data();
        for (std::size_t j = 0; j < n; ++j) out_row[j] += a * b_row[j];
      }
    }
  });
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  DPZ_REQUIRE(v.size() == cols_, "matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a_row = row(r).data();
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += a_row[c] * v[c];
    out[r] = sum;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  DPZ_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
              "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

}  // namespace dpz
