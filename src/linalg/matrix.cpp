#include "linalg/matrix.h"

#include <cmath>

#include "simd/simd.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

/// Tile edge (in rows / columns) for the cache-blocked loops below. 64
/// rows of a 720-wide matrix is ~360 KiB — a band of output rows plus
/// the streamed input panel stay L2-resident on every target we bench.
constexpr std::size_t kTile = 64;

/// Below this right-hand-side width the axpy-per-row form degenerates
/// into per-call overhead and short vector bodies (subspace iteration
/// multiplies by M x (k+8) blocks), so products switch to long dots
/// against the transposed operand instead. Dots also skip the output
/// read-modify-write stream, so the crossover sits well above the call
/// overhead break-even.
constexpr std::size_t kNarrow = 128;

}  // namespace

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Blocked so both the read and the write side touch kTile consecutive
  // cache lines per pass instead of striding a full row apart.
  for (std::size_t rr = 0; rr < rows_; rr += kTile) {
    const std::size_t rend = std::min(rows_, rr + kTile);
    for (std::size_t cc = 0; cc < cols_; cc += kTile) {
      const std::size_t cend = std::min(cols_, cc + kTile);
      for (std::size_t r = rr; r < rend; ++r)
        for (std::size_t c = cc; c < cend; ++c) t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  DPZ_REQUIRE(cols_ == other.rows_, "matrix multiply dimension mismatch");
  Matrix out(rows_, other.cols_);
  const std::size_t n = other.cols_;
  const simd::KernelTable& ops = simd::kernels();
  if (n < kNarrow) {
    // Narrow right-hand side: one long dot per output element against
    // the transposed operand beats n-wide axpy calls by a wide margin.
    // Blocks of four left rows reuse each streamed bt row out of L1.
    constexpr std::size_t kRowBlock = 4;
    const Matrix bt = other.transposed();
    parallel_for(0, (rows_ + kRowBlock - 1) / kRowBlock,
                 [&](std::size_t bi) {
                   const std::size_t i0 = bi * kRowBlock;
                   const std::size_t i1 = std::min(rows_, i0 + kRowBlock);
                   for (std::size_t j = 0; j < n; ++j) {
                     const double* bt_row = bt.row(j).data();
                     for (std::size_t i = i0; i < i1; ++i)
                       out(i, j) = ops.dot(row(i).data(), bt_row, cols_);
                   }
                 });
    return out;
  }
  // ikj order with a k-tile: the axpy kernel streams one row of `other`
  // into one row of `out` (both contiguous), and the tile keeps a panel
  // of `other` cache-resident while a band of output rows reuses it.
  // Every output row still accumulates its k terms in ascending order,
  // so the result is bit-identical to the untiled scalar loop.
  const unsigned workers = PoolScope::current().thread_count();
  const std::size_t band =
      (rows_ + workers - 1) / std::max<std::size_t>(workers, 1);
  parallel_for(0, workers, [&](std::size_t w) {
    const std::size_t lo = w * band;
    const std::size_t hi = std::min(rows_, lo + band);
    for (std::size_t i = lo; i < hi; i += kTile) {
      const std::size_t iend = std::min(hi, i + kTile);
      for (std::size_t kk = 0; kk < cols_; kk += kTile) {
        const std::size_t kend = std::min(cols_, kk + kTile);
        for (std::size_t r = i; r < iend; ++r) {
          double* out_row = out.row(r).data();
          for (std::size_t k = kk; k < kend; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            ops.axpy(a, other.row(k).data(), out_row, n);
          }
        }
      }
    }
  });
  return out;
}

Matrix Matrix::transpose_multiply(const Matrix& other) const {
  DPZ_REQUIRE(rows_ == other.rows_,
              "transpose_multiply dimension mismatch");
  Matrix out(cols_, other.cols_);
  const std::size_t n = other.cols_;
  const simd::KernelTable& ops = simd::kernels();
  if (cols_ < kNarrow && n < kNarrow) {
    // Both operands narrow (the Rayleigh-Ritz Q^T Z products): transpose
    // each once and take long contiguous dots.
    const Matrix at = transposed();
    const Matrix bt = other.transposed();
    for (std::size_t i = 0; i < cols_; ++i) {
      double* out_row = out.row(i).data();
      for (std::size_t j = 0; j < n; ++j)
        out_row[j] = ops.dot(at.row(i).data(), bt.row(j).data(), rows_);
    }
    return out;
  }
  // out(i,j) = sum_k this(k,i) * other(k,j): accumulate rank-1 updates row
  // by row of the inputs so all accesses stay contiguous. Each worker owns
  // a contiguous band of output rows i; every band accumulates its rows
  // in the same k order, so the result does not depend on the band count.
  // The i-tile bounds the set of output rows touched per k sweep, keeping
  // them cache-resident instead of streaming the whole output each k.
  const unsigned workers = PoolScope::current().thread_count();
  const std::size_t band =
      (cols_ + workers - 1) / std::max<std::size_t>(workers, 1);
  parallel_for(0, workers, [&](std::size_t w) {
    const std::size_t lo = w * band;
    const std::size_t hi = std::min(cols_, lo + band);
    for (std::size_t ii = lo; ii < hi; ii += kTile) {
      const std::size_t iend = std::min(hi, ii + kTile);
      for (std::size_t k = 0; k < rows_; ++k) {
        const double* a_row = row(k).data();
        const double* b_row = other.row(k).data();
        for (std::size_t i = ii; i < iend; ++i) {
          const double a = a_row[i];
          if (a == 0.0) continue;
          ops.axpy(a, b_row, out.row(i).data(), n);
        }
      }
    }
  });
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  DPZ_REQUIRE(v.size() == cols_, "matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  const simd::KernelTable& ops = simd::kernels();
  for (std::size_t r = 0; r < rows_; ++r)
    out[r] = ops.dot(row(r).data(), v.data(), cols_);
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  DPZ_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
              "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

}  // namespace dpz
