#include "linalg/cholesky.h"

#include <cmath>

namespace dpz {

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  DPZ_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0)) return std::nullopt;  // also rejects NaN
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return Cholesky(std::move(l));
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  DPZ_REQUIRE(b.size() == n, "Cholesky solve dimension mismatch");

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::inverse() const {
  const std::size_t n = l_.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const std::vector<double> col = solve(e);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

std::vector<double> Cholesky::inverse_diagonal() const {
  // [A^-1]_jj = e_j^T A^-1 e_j = || L^-1 e_j ||^2: one forward
  // substitution per column, no back substitution needed.
  const std::size_t n = l_.rows();
  std::vector<double> diag(n, 0.0);
  std::vector<double> y(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) y[i] = 0.0;
    y[j] = 1.0 / l_(j, j);
    double acc = y[j] * y[j];
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t k = j; k < i; ++k) sum -= l_(i, k) * y[k];
      y[i] = sum / l_(i, i);
      acc += y[i] * y[i];
    }
    diag[j] = acc;
  }
  return diag;
}

}  // namespace dpz
