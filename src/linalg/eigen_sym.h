// Symmetric eigendecomposition (the numerical heart of Stage 2).
//
// DPZ acquires its PCA projection by eigenanalysis of the M x M covariance
// matrix of block-DCT coefficients (Eq. 3-5 in the paper). We provide two
// solvers:
//  * eigen_sym        — Householder tridiagonalization followed by the
//                       implicit-shift QL iteration: O(n^3) with a small
//                       constant, the production path;
//  * eigen_sym_jacobi — cyclic Jacobi rotations: slower but transparently
//                       correct, kept as the cross-validation oracle.
// Both return eigenvalues sorted descending (PCA convention: the first
// component explains the most variance) with matching eigenvector columns.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace dpz {

struct SymmetricEigen {
  /// Eigenvalues sorted descending.
  std::vector<double> values;
  /// Orthonormal eigenvectors; column j corresponds to values[j].
  Matrix vectors;
};

/// Householder + implicit-shift QL. `a` must be symmetric (only the lower
/// triangle is read). Throws NumericalError if the QL sweep fails to
/// converge (pathological only; the iteration cap is generous).
SymmetricEigen eigen_sym(const Matrix& a);

/// Cyclic Jacobi reference solver (O(n^3) per sweep, ~6-10 sweeps).
SymmetricEigen eigen_sym_jacobi(const Matrix& a);

}  // namespace dpz
