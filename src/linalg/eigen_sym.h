// Symmetric eigendecomposition (the numerical heart of Stage 2).
//
// DPZ acquires its PCA projection by eigenanalysis of the M x M covariance
// matrix of block-DCT coefficients (Eq. 3-5 in the paper). We provide two
// solvers:
//  * eigen_sym        — Householder tridiagonalization followed by the
//                       implicit-shift QL iteration: O(n^3) with a small
//                       constant, the production path;
//  * eigen_sym_jacobi — cyclic Jacobi rotations: slower but transparently
//                       correct, kept as the cross-validation oracle.
// Both return eigenvalues sorted descending (PCA convention: the first
// component explains the most variance) with matching eigenvector columns.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace dpz {

struct SymmetricEigen {
  /// Eigenvalues sorted descending.
  std::vector<double> values;
  /// Orthonormal eigenvectors; column j corresponds to values[j].
  Matrix vectors;
};

/// The Householder reduction of a symmetric matrix to tridiagonal form.
/// This is the O(n^3) half of both eigensolves; keeping it around lets a
/// caller pay for it once, read the eigenvalues (cheap QL recurrence on
/// diag/subdiag), and only later decide whether the eigenvectors are
/// worth accumulating — exactly the shape of Stage 2's k-selection.
struct TridiagonalReduction {
  Matrix reflectors;            ///< rows = scaled Householder vectors
  std::vector<double> diag;     ///< tridiagonal diagonal
  std::vector<double> subdiag;  ///< subdiagonal; subdiag[0] == 0
  std::vector<double> norm2;    ///< squared reflector norms (0 = skipped)
};

/// Householder reduction of `a` (symmetric; only the lower triangle is
/// read) to tridiagonal form.
TridiagonalReduction tridiagonalize(const Matrix& a);

/// Eigenvalues of a reduced matrix, sorted descending (values-only QL
/// recurrence — no orthogonal-transform accumulation).
std::vector<double> eigen_values_from(const TridiagonalReduction& r);

/// Full eigenpairs of a reduced matrix: accumulates the Householder
/// transform, runs QL with rotations, sorts descending. Together with
/// tridiagonalize this IS eigen_sym, split so the reduction can be
/// shared with a preceding eigen_values_from call.
SymmetricEigen eigen_sym_from(const TridiagonalReduction& r);

/// The k leading eigenpairs of a reduced matrix: values from the QL
/// recurrence, vectors by inverse iteration on the tridiagonal (each a
/// handful of O(M) band solves) followed by one Householder
/// back-transform per vector. Deterministic — fixed start vectors,
/// fixed iteration counts — and O(M^2 k) total, which beats both the
/// dense accumulation (O(M^3)) and subspace iteration on the original
/// matrix (O(M^2 b) PER SWEEP) whenever the reduction is already paid
/// for. Vectors are re-orthonormalized, so clustered eigenvalues yield
/// an orthonormal basis of the cluster's eigenspace rather than k
/// copies of one direction.
SymmetricEigen eigen_topk_from(const TridiagonalReduction& r,
                               std::size_t k);

/// Householder + implicit-shift QL. `a` must be symmetric (only the lower
/// triangle is read). Throws NumericalError if the QL sweep fails to
/// converge (pathological only; the iteration cap is generous).
SymmetricEigen eigen_sym(const Matrix& a);

/// Eigenvalues only, sorted descending: Householder reduction without
/// orthogonal-transform accumulation followed by the values-only QL
/// recurrence. Roughly 3x cheaper than eigen_sym — the fast path for
/// k-selection over the full TVE curve before solving for just the top-k
/// eigenvectors (eigen_sym_topk).
std::vector<double> eigen_sym_values(const Matrix& a);

/// Cyclic Jacobi reference solver (O(n^3) per sweep, ~6-10 sweeps).
SymmetricEigen eigen_sym_jacobi(const Matrix& a);

}  // namespace dpz
