#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace dpz {

namespace {

// Copies sign of b onto |a| (Fortran SIGN intrinsic).
double sign_of(double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); }

// Householder reduction of a symmetric matrix to tridiagonal form with
// accumulation of the orthogonal transform (EISPACK TRED2 lineage).
// On exit `z` holds the accumulated orthogonal matrix Q such that
// Q^T A Q = tridiag(d, e); d is the diagonal, e the subdiagonal (e[0]=0).
void tridiagonalize(Matrix& z, std::vector<double>& d,
                    std::vector<double>& e) {
  const std::size_t n = z.rows();
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (std::size_t k = 0; k <= j; ++k)
            z(j, k) -= f * e[k] + g * z(i, k);
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }

  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal (d, e), rotations applied
// to the columns of z so that z ends up holding the eigenvectors of the
// original matrix. Classic TQL2 lineage.
void ql_implicit(Matrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  if (n == 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  constexpr int kMaxIterations = 64;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m = l;
    for (;;) {
      // Find the first negligible subdiagonal element at or after l.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= std::numeric_limits<double>::epsilon() * dd)
          break;
      }
      if (m == l) break;
      if (iter++ == kMaxIterations)
        throw NumericalError("QL iteration failed to converge");

      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
      double s = 1.0, c = 1.0, p = 0.0;
      bool underflow = false;
      for (std::size_t ii = m; ii-- > l;) {
        const std::size_t i = ii;
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[m] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        for (std::size_t k = 0; k < n; ++k) {
          f = z(k, i + 1);
          z(k, i + 1) = s * z(k, i) + c * f;
          z(k, i) = c * z(k, i) - s * f;
        }
      }
      if (underflow) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
}

// Sorts eigenpairs descending by eigenvalue, permuting vector columns.
SymmetricEigen sort_descending(std::vector<double> d, Matrix z) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return d[a] > d[b]; });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      out.vectors(i, j) = z(i, order[j]);
  }
  return out;
}

}  // namespace

SymmetricEigen eigen_sym(const Matrix& a) {
  DPZ_REQUIRE(a.rows() == a.cols(), "eigen_sym requires a square matrix");
  const std::size_t n = a.rows();
  Matrix z = a;  // overwritten with eigenvectors
  std::vector<double> d(n, 0.0), e(n, 0.0);
  if (n == 1) {
    d[0] = a(0, 0);
    z(0, 0) = 1.0;
    return sort_descending(std::move(d), std::move(z));
  }
  tridiagonalize(z, d, e);
  ql_implicit(z, d, e);
  return sort_descending(std::move(d), std::move(z));
}

SymmetricEigen eigen_sym_jacobi(const Matrix& input) {
  DPZ_REQUIRE(input.rows() == input.cols(),
              "eigen_sym_jacobi requires a square matrix");
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (off < 1e-300) break;

    bool rotated = false;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        const double threshold =
            1e-15 * std::sqrt(std::abs(a(p, p) * a(q, q))) + 1e-300;
        if (std::abs(apq) <= threshold) continue;
        rotated = true;

        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = sign_of(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    if (!rotated) break;
  }

  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
  return sort_descending(std::move(d), std::move(v));
}

}  // namespace dpz
