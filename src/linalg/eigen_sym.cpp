#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "simd/simd.h"
#include "util/error.h"

namespace dpz {

namespace {

// Copies sign of b onto |a| (Fortran SIGN intrinsic).
double sign_of(double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); }

// Householder reduction of a symmetric matrix to tridiagonal form
// (EISPACK TRED2/TRED1 lineage, restructured so every inner loop runs
// over contiguous rows and maps onto the simd kernel table).
//
// On exit d is the tridiagonal diagonal, e the subdiagonal (e[0] = 0),
// h[i] the squared reflector norm of step i (h[i] == 0 marks a skipped
// step), and z's rows still hold the scaled Householder vectors — which
// is everything accumulate_q_transposed needs, so one reduction serves
// both the values-only and the full eigensolve.
void householder_reduce(Matrix& z, std::vector<double>& d,
                        std::vector<double>& e, std::vector<double>& h) {
  const std::size_t n = z.rows();
  const simd::KernelTable& ops = simd::kernels();
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double hi = 0.0;
    if (l > 0) {
      double* row_i = z.row(i).data();
      double scale = 0.0;
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(row_i[k]);
      if (scale == 0.0) {
        e[i] = row_i[l];
      } else {
        ops.divide(scale, row_i, l + 1);
        hi = ops.dot(row_i, row_i, l + 1);
        double f = row_i[l];
        double g = f >= 0.0 ? -std::sqrt(hi) : std::sqrt(hi);
        e[i] = scale * g;
        hi -= f * g;
        row_i[l] = f - g;
        // e[j] <- (A v)_j in one fused pass over the lower triangle:
        // the dot covers A(j, 0..j), and the trailing axpy scatters row
        // j's A(j, k) terms into e[0..j) — each earlier slot still
        // receives its k > j contributions in ascending-k order, exactly
        // as the classic column walk did, but every z row is now read
        // once (dot + axpy back to back out of L1) instead of streamed
        // twice.
        for (std::size_t j = 0; j <= l; ++j) {
          e[j] = ops.dot(z.row(j).data(), row_i, j + 1);
          if (j >= 1) ops.axpy(row_i[j], z.row(j).data(), e.data(), j);
        }
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          e[j] /= hi;
          f += e[j] * row_i[j];
        }
        const double hh = f / (hi + hi);
        // The classic loop updates e[j] immediately before row j's
        // rank-2 update and never reads e[j] from a later row, so the
        // whole e update hoists in front of the row sweep.
        for (std::size_t j = 0; j <= l; ++j) e[j] -= hh * row_i[j];
        for (std::size_t j = 0; j <= l; ++j)
          ops.rank2_update(row_i[j], e.data(), e[j], row_i,
                           z.row(j).data(), j + 1);
      }
    } else {
      e[i] = z(i, l);
    }
    h[i] = hi;
  }
  h[0] = 0.0;
  e[0] = 0.0;
  // The rank-2 sweeps left the tridiagonal diagonal on z's diagonal.
  for (std::size_t i = 0; i < n; ++i) d[i] = z(i, i);
}

// Accumulates the orthogonal transform Q of householder_reduce, stored
// TRANSPOSED: row j of the result is column j of Q. In that layout both
// the projection (a dot against row i of z) and the reflector update
// (an axpy along row j) run over contiguous memory, as do the QL
// rotations and the final column gather downstream. z is the reduced
// matrix (rows = scaled reflectors) and is not modified; v/h is derived
// from row i and h[i] on the fly, so the reduction itself never has to
// store it.
Matrix accumulate_q_transposed(const Matrix& z,
                               const std::vector<double>& h) {
  const std::size_t n = z.rows();
  const simd::KernelTable& ops = simd::kernels();
  Matrix qt(n, n);
  for (std::size_t i = 0; i < n; ++i) qt(i, i) = 1.0;
  std::vector<double> w2(n);
  for (std::size_t i = 1; i < n; ++i) {
    if (h[i] == 0.0) continue;
    const double* v = z.row(i).data();
    for (std::size_t k = 0; k < i; ++k) w2[k] = v[k] / h[i];
    for (std::size_t j = 0; j < i; ++j) {
      double* q_row = qt.row(j).data();
      const double g = ops.dot(v, q_row, i);
      ops.axpy(-g, w2.data(), q_row, i);
    }
  }
  return qt;
}

// Implicit-shift QL iteration on the tridiagonal (d, e). When `qt` is
// non-null the rotations are applied to its rows (transposed layout:
// one rot2 kernel call per rotation instead of a strided column walk),
// so qt ends up holding the eigenvectors of the original matrix as
// rows. With qt null only the eigenvalues are computed — the d/e
// recurrence does not depend on the rotations. Classic TQL2/TQL1.
void ql_iterate(std::vector<double>& d, std::vector<double>& e,
                Matrix* qt) {
  const std::size_t n = d.size();
  if (n == 1) return;
  const simd::KernelTable& ops = simd::kernels();
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  constexpr int kMaxIterations = 64;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m = l;
    for (;;) {
      // Find the first negligible subdiagonal element at or after l.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= std::numeric_limits<double>::epsilon() * dd)
          break;
      }
      if (m == l) break;
      if (iter++ == kMaxIterations)
        throw NumericalError("QL iteration failed to converge");

      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
      double s = 1.0, c = 1.0, p = 0.0;
      bool underflow = false;
      for (std::size_t ii = m; ii-- > l;) {
        const std::size_t i = ii;
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[m] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        if (qt != nullptr)
          ops.rot2(c, s, qt->row(i).data(), qt->row(i + 1).data(), n);
      }
      if (underflow) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
}

// Sorts eigenpairs descending by eigenvalue. `qt` holds eigenvectors as
// ROWS; the output keeps the public column convention, produced by a
// permuted row copy followed by one blocked transpose.
SymmetricEigen sort_descending_rows(std::vector<double> d, Matrix qt) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return d[a] > d[b]; });

  SymmetricEigen out;
  out.values.resize(n);
  Matrix perm(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    const auto src = qt.row(order[j]);
    std::copy(src.begin(), src.end(), perm.row(j).begin());
  }
  out.vectors = perm.transposed();
  return out;
}

// Column-layout variant kept for the Jacobi oracle, which still
// accumulates its rotations in classic column order.
SymmetricEigen sort_descending(std::vector<double> d, Matrix z) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return d[a] > d[b]; });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      out.vectors(i, j) = z(i, order[j]);
  }
  return out;
}

}  // namespace

TridiagonalReduction tridiagonalize(const Matrix& a) {
  DPZ_REQUIRE(a.rows() == a.cols(),
              "tridiagonalize requires a square matrix");
  const std::size_t n = a.rows();
  TridiagonalReduction r;
  r.reflectors = a;  // working copy: reduced in place
  r.diag.assign(n, 0.0);
  r.subdiag.assign(n, 0.0);
  r.norm2.assign(n, 0.0);
  if (n >= 2) householder_reduce(r.reflectors, r.diag, r.subdiag, r.norm2);
  if (n == 1) r.diag[0] = a(0, 0);
  return r;
}

std::vector<double> eigen_values_from(const TridiagonalReduction& r) {
  std::vector<double> d = r.diag;
  std::vector<double> e = r.subdiag;
  ql_iterate(d, e, nullptr);
  std::sort(d.begin(), d.end(), std::greater<double>());
  return d;
}

SymmetricEigen eigen_sym_from(const TridiagonalReduction& r) {
  std::vector<double> d = r.diag;
  std::vector<double> e = r.subdiag;
  Matrix qt = accumulate_q_transposed(r.reflectors, r.norm2);
  ql_iterate(d, e, &qt);
  return sort_descending_rows(std::move(d), std::move(qt));
}

namespace {

// One solve of (T - lambda I) x = y in place (partial-pivot band LU,
// O(n)). T is the tridiagonal (diag, subdiag); zero pivots are nudged
// to `tiny` so a dead-on eigenvalue cannot divide by zero — inverse
// iteration WANTS the system nearly singular.
void solve_shifted_tridiagonal(const std::vector<double>& diag,
                               const std::vector<double>& subdiag,
                               double lambda, double tiny,
                               std::vector<double>& y,
                               std::vector<double>& dg,
                               std::vector<double>& up1,
                               std::vector<double>& up2) {
  const std::size_t n = diag.size();
  for (std::size_t i = 0; i < n; ++i) {
    dg[i] = diag[i] - lambda;
    up1[i] = i + 1 < n ? subdiag[i + 1] : 0.0;
    up2[i] = 0.0;
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double bl = subdiag[i + 1];  // T(i+1, i)
    if (std::abs(dg[i]) >= std::abs(bl)) {
      if (dg[i] == 0.0) dg[i] = tiny;
      const double mult = bl / dg[i];
      dg[i + 1] -= mult * up1[i];
      y[i + 1] -= mult * y[i];
    } else {
      // Swap rows i and i+1, then eliminate. The swapped-in row brings
      // its superdiagonal along, creating the up2 fill-in.
      const double mult = dg[i] / bl;
      const double next_d = dg[i + 1];
      const double next_u = up1[i + 1];
      dg[i] = bl;
      dg[i + 1] = up1[i] - mult * next_d;
      up1[i] = next_d;
      up1[i + 1] = -mult * next_u;
      up2[i] = next_u;
      std::swap(y[i], y[i + 1]);
      y[i + 1] -= mult * y[i];
    }
  }
  if (dg[n - 1] == 0.0) dg[n - 1] = tiny;
  y[n - 1] /= dg[n - 1];
  if (n >= 2) {
    if (dg[n - 2] == 0.0) dg[n - 2] = tiny;
    y[n - 2] = (y[n - 2] - up1[n - 2] * y[n - 1]) / dg[n - 2];
    if (n >= 3) {
      for (std::size_t r = n - 2; r-- > 0;) {
        if (dg[r] == 0.0) dg[r] = tiny;
        y[r] = (y[r] - up1[r] * y[r + 1] - up2[r] * y[r + 2]) / dg[r];
      }
    }
  }
}

// Deterministic start vector for eigenvector slot j (splitmix-style
// bit mix — no global state, identical on every platform and run).
void fill_start_vector(std::size_t j, unsigned attempt,
                       std::vector<double>& y) {
  std::uint64_t s =
      0x9E3779B97F4A7C15ULL * (j + 1) + 0xBF58476D1CE4E5B9ULL * attempt;
  for (double& v : y) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    v = 0.5 + static_cast<double>(s >> 40) /
                  static_cast<double>(std::uint64_t{1} << 25);
  }
}

}  // namespace

SymmetricEigen eigen_topk_from(const TridiagonalReduction& r,
                               std::size_t k) {
  const std::size_t m = r.diag.size();
  DPZ_REQUIRE(k >= 1 && k <= m, "k must be in [1, M]");
  const simd::KernelTable& ops = simd::kernels();

  std::vector<double> values = eigen_values_from(r);
  values.resize(k);

  double anorm = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    anorm = std::max(anorm,
                     std::abs(r.diag[i]) + std::abs(r.subdiag[i]) +
                         (i + 1 < m ? std::abs(r.subdiag[i + 1]) : 0.0));
  const double tiny =
      std::max(anorm, 1.0) * std::numeric_limits<double>::epsilon();

  // Tridiagonal-basis eigenvectors as rows. Each slot runs a fixed
  // number of inverse-iteration solves, re-orthogonalized against the
  // finished rows every pass so clustered eigenvalues fan out across
  // their shared eigenspace instead of collapsing onto one direction.
  Matrix yt(k, m);
  std::vector<double> y(m), dg(m), up1(m), up2(m);
  for (std::size_t j = 0; j < k; ++j) {
    constexpr unsigned kMaxRestarts = 4;
    for (unsigned attempt = 0; attempt < kMaxRestarts; ++attempt) {
      fill_start_vector(j, attempt, y);
      bool ok = true;
      for (int iter = 0; iter < 3 && ok; ++iter) {
        for (std::size_t p = 0; p < j; ++p) {
          const double* row_p = yt.row(p).data();
          ops.axpy(-ops.dot(row_p, y.data(), m), row_p, y.data(), m);
        }
        solve_shifted_tridiagonal(r.diag, r.subdiag, values[j], tiny, y,
                                  dg, up1, up2);
        const double norm2 = ops.dot(y.data(), y.data(), m);
        if (!(norm2 > 0.0) || !std::isfinite(norm2)) {
          ok = false;
          break;
        }
        ops.scale(1.0 / std::sqrt(norm2), y.data(), m);
      }
      if (!ok) continue;
      for (std::size_t p = 0; p < j; ++p) {
        const double* row_p = yt.row(p).data();
        ops.axpy(-ops.dot(row_p, y.data(), m), row_p, y.data(), m);
      }
      const double norm2 = ops.dot(y.data(), y.data(), m);
      if (!(norm2 > 1e-12) || !std::isfinite(norm2)) continue;
      ops.scale(1.0 / std::sqrt(norm2), y.data(), m);
      break;
    }
    double* row_j = yt.row(j).data();
    for (std::size_t i = 0; i < m; ++i) row_j[i] = y[i];
  }

  // Back-transform through the Householder reflectors (x = Q y with
  // Q = P_{m-1} ... P_1, exactly the product accumulate_q_transposed
  // forms): i ascending, each reflector applied to every vector while
  // its v/h row is hot.
  std::vector<double> w2(m);
  for (std::size_t i = 1; i < m; ++i) {
    if (r.norm2[i] == 0.0) continue;
    const double* v = r.reflectors.row(i).data();
    for (std::size_t t = 0; t < i; ++t) w2[t] = v[t] / r.norm2[i];
    for (std::size_t j = 0; j < k; ++j) {
      double* row_j = yt.row(j).data();
      const double g = ops.dot(v, row_j, i);
      ops.axpy(-g, w2.data(), row_j, i);
    }
  }

  SymmetricEigen out;
  out.values = std::move(values);
  out.vectors = Matrix(m, k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < m; ++i) out.vectors(i, j) = yt(j, i);
  return out;
}

SymmetricEigen eigen_sym(const Matrix& a) {
  return eigen_sym_from(tridiagonalize(a));
}

std::vector<double> eigen_sym_values(const Matrix& a) {
  return eigen_values_from(tridiagonalize(a));
}

SymmetricEigen eigen_sym_jacobi(const Matrix& input) {
  DPZ_REQUIRE(input.rows() == input.cols(),
              "eigen_sym_jacobi requires a square matrix");
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (off < 1e-300) break;

    bool rotated = false;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        const double threshold =
            1e-15 * std::sqrt(std::abs(a(p, p) * a(q, q))) + 1e-300;
        if (std::abs(apq) <= threshold) continue;
        rotated = true;

        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = sign_of(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    if (!rotated) break;
  }

  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
  return sort_descending(std::move(d), std::move(v));
}

}  // namespace dpz
