// Dense row-major double-precision matrix.
//
// Eigen is not available in this environment; this is the self-contained
// matrix type the PCA stage (Stage 2 of DPZ) and the statistics substrate
// are built on. Operations are deliberately simple and cache-aware (ikj
// multiply loops, contiguous row access) rather than clever — M rarely
// exceeds a few thousand in the paper's workloads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.h"
#include "util/resource.h"

namespace dpz {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        charge_(rows * cols * sizeof(double)),
        data_(rows * cols, 0.0) {
    DPZ_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  }

  /// Wraps existing data (row-major; size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows),
        cols_(cols),
        charge_(data.size() * sizeof(double)),
        data_(std::move(data)) {
    DPZ_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
    DPZ_REQUIRE(data_.size() == rows * cols,
                "matrix data size does not match dimensions");
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  [[nodiscard]] std::span<double> row(std::size_t r) {
    DPZ_REQUIRE(r < rows_, "row index out of range");
    return std::span<double>(data_).subspan(r * cols_, cols_);
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    DPZ_REQUIRE(r < rows_, "row index out of range");
    return std::span<const double>(data_).subspan(r * cols_, cols_);
  }

  [[nodiscard]] std::span<double> flat() { return std::span<double>(data_); }
  [[nodiscard]] std::span<const double> flat() const {
    return std::span<const double>(data_);
  }

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  [[nodiscard]] Matrix transposed() const;

  /// this * other (dimensions must be compatible). Parallelized over rows.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// this^T * other without materializing the transpose.
  [[nodiscard]] Matrix transpose_multiply(const Matrix& other) const;

  /// Matrix-vector product this * v.
  [[nodiscard]] std::vector<double> multiply(
      std::span<const double> v) const;

  /// Max |a_ij - b_ij| between two equal-shaped matrices.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Governed memory accounting for the buffer below. Declared before
  // data_ so the budget check precedes the allocation on construction
  // (and the release follows the free on destruction); copies re-charge,
  // moves transfer (util/resource.h). No-op outside governed scopes.
  ScopedCharge charge_;
  std::vector<double> data_;
};

}  // namespace dpz
