// NEON (aarch64 Advanced SIMD) kernels. float64x2_t carries two lanes,
// so the sixteen-lane reduction tree uses eight vector accumulators:
// acc_j holds lanes {2j, 2j+1}, and the fold below reproduces the
// contract's a_l = (s_l + s_{l+8}) + (s_{l+4} + s_{l+12}) partials and
// their (a0 + a2) + (a1 + a3) combination exactly. Like the AVX2 TU this
// file builds with -ffp-contract=off and never uses fused multiply-add —
// vfmaq would round differently from the scalar reference.
#include "simd/kernel_tables.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "simd/scalar_ops.h"

namespace dpz::simd {

namespace {

// Folds the eight accumulators (lanes {2j, 2j+1} in acc[j]) in contract
// order: even-indexed regs carry lanes l with (l mod 4) < 2, so
// (acc0+acc4)+(acc2+acc6) holds partials (a0, a1) and
// (acc1+acc5)+(acc3+acc7) holds (a2, a3); their vector sum gives
// (a0+a2, a1+a3), summed left to right.
inline double reduce_lanes_neon(const float64x2_t acc[8]) {
  const float64x2_t even = vaddq_f64(vaddq_f64(acc[0], acc[4]),
                                     vaddq_f64(acc[2], acc[6]));
  const float64x2_t odd = vaddq_f64(vaddq_f64(acc[1], acc[5]),
                                    vaddq_f64(acc[3], acc[7]));
  const float64x2_t pair = vaddq_f64(even, odd);
  return vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
}

double dot_neon(const double* x, const double* y, std::size_t n) {
  const std::size_t n16 = n & ~std::size_t{15};
  float64x2_t acc[8];
  for (auto& a : acc) a = vdupq_n_f64(0.0);
  for (std::size_t i = 0; i < n16; i += 16)
    for (std::size_t j = 0; j < 8; ++j)
      acc[j] = vaddq_f64(acc[j], vmulq_f64(vld1q_f64(x + i + 2 * j),
                                           vld1q_f64(y + i + 2 * j)));
  return detail::dot_tail(reduce_lanes_neon(acc), x, y, n16, n);
}

double dot_centered_neon(const double* x, double mx, const double* y,
                         double my, std::size_t n) {
  const std::size_t n16 = n & ~std::size_t{15};
  const float64x2_t vmx = vdupq_n_f64(mx);
  const float64x2_t vmy = vdupq_n_f64(my);
  float64x2_t acc[8];
  for (auto& a : acc) a = vdupq_n_f64(0.0);
  for (std::size_t i = 0; i < n16; i += 16)
    for (std::size_t j = 0; j < 8; ++j)
      acc[j] = vaddq_f64(
          acc[j], vmulq_f64(vsubq_f64(vld1q_f64(x + i + 2 * j), vmx),
                            vsubq_f64(vld1q_f64(y + i + 2 * j), vmy)));
  return detail::dot_centered_tail(reduce_lanes_neon(acc), x, mx, y, my,
                                   n16, n);
}

void axpy_neon(double a, const double* x, double* y, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const float64x2_t va = vdupq_n_f64(a);
  for (std::size_t i = 0; i < n2; i += 2)
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i),
                               vmulq_f64(va, vld1q_f64(x + i))));
  for (std::size_t i = n2; i < n; ++i) detail::axpy_one(a, x[i], &y[i]);
}

void rank2_neon(double f, const double* e, double g, const double* w,
                double* row, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const float64x2_t vf = vdupq_n_f64(f);
  const float64x2_t vg = vdupq_n_f64(g);
  for (std::size_t i = 0; i < n2; i += 2) {
    const float64x2_t t = vaddq_f64(vmulq_f64(vf, vld1q_f64(e + i)),
                                    vmulq_f64(vg, vld1q_f64(w + i)));
    vst1q_f64(row + i, vsubq_f64(vld1q_f64(row + i), t));
  }
  for (std::size_t i = n2; i < n; ++i)
    detail::rank2_one(f, e[i], g, w[i], &row[i]);
}

void accum_centered_neon(double d, const double* x, double mu,
                         double* out, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const float64x2_t vd = vdupq_n_f64(d);
  const float64x2_t vmu = vdupq_n_f64(mu);
  for (std::size_t i = 0; i < n2; i += 2) {
    const float64x2_t t =
        vmulq_f64(vd, vsubq_f64(vld1q_f64(x + i), vmu));
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(out + i), t));
  }
  for (std::size_t i = n2; i < n; ++i)
    detail::accum_centered_one(d, x[i], mu, &out[i]);
}

void center_scale_neon(const double* x, double mu, double inv_s,
                       double* out, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const float64x2_t vmu = vdupq_n_f64(mu);
  const float64x2_t vs = vdupq_n_f64(inv_s);
  for (std::size_t i = 0; i < n2; i += 2)
    vst1q_f64(out + i,
              vmulq_f64(vsubq_f64(vld1q_f64(x + i), vmu), vs));
  for (std::size_t i = n2; i < n; ++i)
    detail::center_scale_one(x[i], mu, inv_s, &out[i]);
}

void scale_shift_neon(double s, double mu, double* x, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const float64x2_t vs = vdupq_n_f64(s);
  const float64x2_t vmu = vdupq_n_f64(mu);
  for (std::size_t i = 0; i < n2; i += 2)
    vst1q_f64(x + i, vaddq_f64(vmulq_f64(vld1q_f64(x + i), vs), vmu));
  for (std::size_t i = n2; i < n; ++i) detail::scale_shift_one(s, mu, &x[i]);
}

void scale_neon(double a, double* x, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const float64x2_t va = vdupq_n_f64(a);
  for (std::size_t i = 0; i < n2; i += 2)
    vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), va));
  for (std::size_t i = n2; i < n; ++i) x[i] *= a;
}

void divide_neon(double s, double* x, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const float64x2_t vs = vdupq_n_f64(s);
  for (std::size_t i = 0; i < n2; i += 2)
    vst1q_f64(x + i, vdivq_f64(vld1q_f64(x + i), vs));
  for (std::size_t i = n2; i < n; ++i) x[i] /= s;
}

void rot2_neon(double c, double s, double* u, double* v, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  const float64x2_t vc = vdupq_n_f64(c);
  const float64x2_t vs = vdupq_n_f64(s);
  for (std::size_t i = 0; i < n2; i += 2) {
    const float64x2_t f = vld1q_f64(v + i);
    const float64x2_t uu = vld1q_f64(u + i);
    vst1q_f64(v + i, vaddq_f64(vmulq_f64(vs, uu), vmulq_f64(vc, f)));
    vst1q_f64(u + i, vsubq_f64(vmulq_f64(vc, uu), vmulq_f64(vs, f)));
  }
  for (std::size_t i = n2; i < n; ++i) detail::rot2_one(c, s, &u[i], &v[i]);
}

// One packed complex value per 128-bit vector: [re, im].
inline float64x2_t cmul1(float64x2_t a, float64x2_t w) {
  const float64x2_t wr = vdupq_laneq_f64(w, 0);
  const float64x2_t wi = vdupq_laneq_f64(w, 1);
  const float64x2_t swapped = vextq_f64(a, a, 1);  // [im, re]
  const float64x2_t prod = vmulq_f64(swapped, wi); // [im*wi, re*wi]
  // (re*wr - im*wi, im*wr + re*wi): negate lane 0 of prod, then add.
  const float64x2_t signed_prod =
      vsetq_lane_f64(-vgetq_lane_f64(prod, 0), prod, 0);
  return vaddq_f64(vmulq_f64(a, wr), signed_prod);
}

void cmul_neon(const double* a, const double* b, double* out,
               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    vst1q_f64(out + 2 * i,
              cmul1(vld1q_f64(a + 2 * i), vld1q_f64(b + 2 * i)));
}

void radix2_stage_neon(double* a, std::size_t n, std::size_t len,
                       const double* w, bool conj) {
  const std::size_t half = len / 2;
  for (std::size_t start = 0; start < n; start += len) {
    double* u_base = a + 2 * start;
    double* v_base = a + 2 * (start + half);
    for (std::size_t k = 0; k < half; ++k) {
      float64x2_t wv = vld1q_f64(w + 2 * k);
      if (conj)
        wv = vsetq_lane_f64(-vgetq_lane_f64(wv, 1), wv, 1);
      const float64x2_t v = vld1q_f64(v_base + 2 * k);
      const float64x2_t u = vld1q_f64(u_base + 2 * k);
      const float64x2_t t = cmul1(v, wv);
      vst1q_f64(u_base + 2 * k, vaddq_f64(u, t));
      vst1q_f64(v_base + 2 * k, vsubq_f64(u, t));
    }
  }
}

void cmul_real_scale_neon(const double* w, const double* v, double s,
                          double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = (w[2 * i] * v[2 * i] - w[2 * i + 1] * v[2 * i + 1]) * s;
}

void quantize_codes_neon(const double* v, std::size_t n, double half,
                         double p, std::uint32_t bins, bool wide,
                         std::uint8_t* codes) {
  // The division + truncation path is already the cost here; keep the
  // element helper so NaN handling matches the scalar reference exactly.
  for (std::size_t i = 0; i < n; ++i)
    detail::store_code(codes, i, wide,
                       detail::quantize_one(v[i], half, p, bins));
}

void dequantize_codes_neon(const std::uint8_t* codes, std::size_t n,
                           double p, double half, bool wide,
                           double* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] =
        detail::dequantize_one(detail::load_code(codes, i, wide), p, half);
}

}  // namespace

const KernelTable* neon_table() {
  static constexpr KernelTable kTable = {
      dot_neon,
      dot_centered_neon,
      axpy_neon,
      rank2_neon,
      accum_centered_neon,
      center_scale_neon,
      scale_shift_neon,
      scale_neon,
      divide_neon,
      rot2_neon,
      cmul_neon,
      radix2_stage_neon,
      cmul_real_scale_neon,
      quantize_codes_neon,
      dequantize_codes_neon,
  };
  return &kTable;
}

}  // namespace dpz::simd

#else  // !defined(__aarch64__)

namespace dpz::simd {
const KernelTable* neon_table() { return nullptr; }
}  // namespace dpz::simd

#endif
