// AVX2 kernels. This TU is the only x86-vector code in the tree (the
// dpz_analyze simd-isolated rule pins intrinsics to src/simd/) and is
// compiled with -mavx2 -ffp-contract=off while the rest of the build
// stays baseline-ISA. No FMA anywhere: the bit-exactness contract
// requires multiply and add to round separately, exactly like the
// scalar reference. Reductions run the documented sixteen-lane tree as
// four vector accumulators (acc_j carries lanes 4j..4j+3); four
// independent chains hide the add latency that a single accumulator
// serializes on.
#include "simd/kernel_tables.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "simd/scalar_ops.h"

namespace dpz::simd {

namespace {

// Folds the four accumulators (lanes 4j..4j+3 in acc_j) in contract
// order: vector add gives a_l = (s_l + s_{l+8}) + (s_{l+4} + s_{l+12})
// per lane, then the horizontal sum (a0+a2)+(a1+a3).
inline double reduce_lanes(__m256d acc0, __m256d acc1, __m256d acc2,
                           __m256d acc3) {
  const __m256d a = _mm256_add_pd(_mm256_add_pd(acc0, acc2),
                                  _mm256_add_pd(acc1, acc3));
  const __m128d lo = _mm256_castpd256_pd128(a);     // [a0, a1]
  const __m128d hi = _mm256_extractf128_pd(a, 1);   // [a2, a3]
  const __m128d pair = _mm_add_pd(lo, hi);          // [a0+a2, a1+a3]
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

double dot_avx2(const double* x, const double* y, std::size_t n) {
  const std::size_t n16 = n & ~std::size_t{15};
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n16; i += 16) {
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(x + i),
                                             _mm256_loadu_pd(y + i)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                                             _mm256_loadu_pd(y + i + 4)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_loadu_pd(x + i + 8),
                                             _mm256_loadu_pd(y + i + 8)));
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(_mm256_loadu_pd(x + i + 12),
                                             _mm256_loadu_pd(y + i + 12)));
  }
  return detail::dot_tail(reduce_lanes(acc0, acc1, acc2, acc3), x, y, n16,
                          n);
}

double dot_centered_avx2(const double* x, double mx, const double* y,
                         double my, std::size_t n) {
  const std::size_t n16 = n & ~std::size_t{15};
  const __m256d vmx = _mm256_set1_pd(mx);
  const __m256d vmy = _mm256_set1_pd(my);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n16; i += 16) {
    const __m256d d0 =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i), vmx),
                      _mm256_sub_pd(_mm256_loadu_pd(y + i), vmy));
    const __m256d d1 =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i + 4), vmx),
                      _mm256_sub_pd(_mm256_loadu_pd(y + i + 4), vmy));
    const __m256d d2 =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i + 8), vmx),
                      _mm256_sub_pd(_mm256_loadu_pd(y + i + 8), vmy));
    const __m256d d3 =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i + 12), vmx),
                      _mm256_sub_pd(_mm256_loadu_pd(y + i + 12), vmy));
    acc0 = _mm256_add_pd(acc0, d0);
    acc1 = _mm256_add_pd(acc1, d1);
    acc2 = _mm256_add_pd(acc2, d2);
    acc3 = _mm256_add_pd(acc3, d3);
  }
  return detail::dot_centered_tail(reduce_lanes(acc0, acc1, acc2, acc3), x,
                                   mx, y, my, n16, n);
}

void axpy_avx2(double a, const double* x, double* y, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d va = _mm256_set1_pd(a);
  for (std::size_t i = 0; i < n4; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  for (std::size_t i = n4; i < n; ++i) detail::axpy_one(a, x[i], &y[i]);
}

void rank2_avx2(double f, const double* e, double g, const double* w,
                double* row, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vf = _mm256_set1_pd(f);
  const __m256d vg = _mm256_set1_pd(g);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d t = _mm256_add_pd(
        _mm256_mul_pd(vf, _mm256_loadu_pd(e + i)),
        _mm256_mul_pd(vg, _mm256_loadu_pd(w + i)));
    _mm256_storeu_pd(row + i,
                     _mm256_sub_pd(_mm256_loadu_pd(row + i), t));
  }
  for (std::size_t i = n4; i < n; ++i)
    detail::rank2_one(f, e[i], g, w[i], &row[i]);
}

void accum_centered_avx2(double d, const double* x, double mu,
                         double* out, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vd = _mm256_set1_pd(d);
  const __m256d vmu = _mm256_set1_pd(mu);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d t =
        _mm256_mul_pd(vd, _mm256_sub_pd(_mm256_loadu_pd(x + i), vmu));
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(_mm256_loadu_pd(out + i), t));
  }
  for (std::size_t i = n4; i < n; ++i)
    detail::accum_centered_one(d, x[i], mu, &out[i]);
}

void center_scale_avx2(const double* x, double mu, double inv_s,
                       double* out, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vs = _mm256_set1_pd(inv_s);
  for (std::size_t i = 0; i < n4; i += 4)
    _mm256_storeu_pd(
        out + i,
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i), vmu), vs));
  for (std::size_t i = n4; i < n; ++i)
    detail::center_scale_one(x[i], mu, inv_s, &out[i]);
}

void scale_shift_avx2(double s, double mu, double* x, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d vmu = _mm256_set1_pd(mu);
  for (std::size_t i = 0; i < n4; i += 4)
    _mm256_storeu_pd(
        x + i,
        _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i), vs), vmu));
  for (std::size_t i = n4; i < n; ++i) detail::scale_shift_one(s, mu, &x[i]);
}

void scale_avx2(double a, double* x, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d va = _mm256_set1_pd(a);
  for (std::size_t i = 0; i < n4; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  for (std::size_t i = n4; i < n; ++i) x[i] *= a;
}

void divide_avx2(double s, double* x, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vs = _mm256_set1_pd(s);
  for (std::size_t i = 0; i < n4; i += 4)
    _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(x + i), vs));
  for (std::size_t i = n4; i < n; ++i) x[i] /= s;
}

void rot2_avx2(double c, double s, double* u, double* v, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d f = _mm256_loadu_pd(v + i);
    const __m256d uu = _mm256_loadu_pd(u + i);
    _mm256_storeu_pd(v + i, _mm256_add_pd(_mm256_mul_pd(vs, uu),
                                          _mm256_mul_pd(vc, f)));
    _mm256_storeu_pd(u + i, _mm256_sub_pd(_mm256_mul_pd(vc, uu),
                                          _mm256_mul_pd(vs, f)));
  }
  for (std::size_t i = n4; i < n; ++i) detail::rot2_one(c, s, &u[i], &v[i]);
}

// Complex product of two packed pairs: [ar,ai,br,bi] lanes, with w in
// the same layout. addsub gives (ar*wr - ai*wi, ai*wr + ar*wi) with one
// rounding per part, exactly the scalar formula.
inline __m256d cmul2(__m256d a, __m256d w) {
  const __m256d wr = _mm256_movedup_pd(w);        // [wr,wr,...]
  const __m256d wi = _mm256_permute_pd(w, 0xF);   // [wi,wi,...]
  const __m256d swapped = _mm256_permute_pd(a, 0x5);
  return _mm256_addsub_pd(_mm256_mul_pd(a, wr),
                          _mm256_mul_pd(swapped, wi));
}

void cmul_avx2(const double* a, const double* b, double* out,
               std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2)
    _mm256_storeu_pd(out + 2 * i, cmul2(_mm256_loadu_pd(a + 2 * i),
                                        _mm256_loadu_pd(b + 2 * i)));
  for (std::size_t i = n2; i < n; ++i)
    detail::cmul_one(a[2 * i], a[2 * i + 1], b[2 * i], b[2 * i + 1],
                     &out[2 * i], &out[2 * i + 1]);
}

void radix2_stage_avx2(double* a, std::size_t n, std::size_t len,
                       const double* w, bool conj) {
  const std::size_t half = len / 2;
  const __m256d conj_mask =
      conj ? _mm256_set_pd(-0.0, 0.0, -0.0, 0.0) : _mm256_setzero_pd();
  if (half == 1) {
    // len == 2: w[0] is 1+0i; butterfly adjacent complex pairs, two
    // groups per iteration ([u0,v0],[u1,v1] -> [u0,u1],[v0,v1]).
    const __m256d wv = _mm256_xor_pd(
        _mm256_setr_pd(w[0], w[1], w[0], w[1]), conj_mask);
    std::size_t start = 0;
    for (; start + 4 <= n; start += 4) {
      const __m256d g0 = _mm256_loadu_pd(a + 2 * start);
      const __m256d g1 = _mm256_loadu_pd(a + 2 * start + 4);
      const __m256d u = _mm256_permute2f128_pd(g0, g1, 0x20);
      const __m256d v = _mm256_permute2f128_pd(g0, g1, 0x31);
      const __m256d t = cmul2(v, wv);
      const __m256d sum = _mm256_add_pd(u, t);
      const __m256d diff = _mm256_sub_pd(u, t);
      _mm256_storeu_pd(a + 2 * start,
                       _mm256_permute2f128_pd(sum, diff, 0x20));
      _mm256_storeu_pd(a + 2 * start + 4,
                       _mm256_permute2f128_pd(sum, diff, 0x31));
    }
    for (; start < n; start += 2)
      detail::butterfly_one(a + 2 * start, a + 2 * start + 2, w[0], w[1],
                            conj);
    return;
  }
  const std::size_t half2 = half & ~std::size_t{1};
  for (std::size_t start = 0; start < n; start += len) {
    double* u_base = a + 2 * start;
    double* v_base = a + 2 * (start + half);
    for (std::size_t k = 0; k < half2; k += 2) {
      const __m256d wv =
          _mm256_xor_pd(_mm256_loadu_pd(w + 2 * k), conj_mask);
      const __m256d v = _mm256_loadu_pd(v_base + 2 * k);
      const __m256d u = _mm256_loadu_pd(u_base + 2 * k);
      const __m256d t = cmul2(v, wv);
      _mm256_storeu_pd(u_base + 2 * k, _mm256_add_pd(u, t));
      _mm256_storeu_pd(v_base + 2 * k, _mm256_sub_pd(u, t));
    }
    for (std::size_t k = half2; k < half; ++k)
      detail::butterfly_one(u_base + 2 * k, v_base + 2 * k, w[2 * k],
                            w[2 * k + 1], conj);
  }
}

void cmul_real_scale_avx2(const double* w, const double* v, double s,
                          double* out, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vs = _mm256_set1_pd(s);
  for (std::size_t i = 0; i < n4; i += 4) {
    // Two packed complex pairs per input vector; gather the even/odd
    // (re/im) components of four consecutive values.
    const __m256d w01 = _mm256_loadu_pd(w + 2 * i);
    const __m256d w23 = _mm256_loadu_pd(w + 2 * i + 4);
    const __m256d v01 = _mm256_loadu_pd(v + 2 * i);
    const __m256d v23 = _mm256_loadu_pd(v + 2 * i + 4);
    const __m256d wre = _mm256_unpacklo_pd(w01, w23);  // [w0r,w2r,w1r,w3r]
    const __m256d wim = _mm256_unpackhi_pd(w01, w23);
    const __m256d vre = _mm256_unpacklo_pd(v01, v23);
    const __m256d vim = _mm256_unpackhi_pd(v01, v23);
    const __m256d re = _mm256_sub_pd(_mm256_mul_pd(wre, vre),
                                     _mm256_mul_pd(wim, vim));
    const __m256d scaled = _mm256_mul_pd(re, vs);  // [o0,o2,o1,o3]
    _mm256_storeu_pd(out + i,
                     _mm256_permute4x64_pd(scaled, 0b11011000));
  }
  for (std::size_t i = n4; i < n; ++i)
    out[i] = (w[2 * i] * v[2 * i] - w[2 * i + 1] * v[2 * i + 1]) * s;
}

void quantize_codes_avx2(const double* v, std::size_t n, double half,
                         double p, std::uint32_t bins, bool wide,
                         std::uint8_t* codes) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vlo = _mm256_set1_pd(-half);
  const __m256d vhi = _mm256_set1_pd(half);
  const __m256d vtwop = _mm256_set1_pd(2.0 * p);
  const __m128i vescape = _mm_set1_epi32(static_cast<int>(bins));
  const __m128i vmaxbin = _mm_set1_epi32(static_cast<int>(bins - 1));
  const __m256i lane_pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m128i pack_u8 = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1,
                                        -1, -1, -1, -1, -1, -1, -1);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    const __m256d in_range =
        _mm256_and_pd(_mm256_cmp_pd(x, vlo, _CMP_GE_OQ),
                      _mm256_cmp_pd(x, vhi, _CMP_LE_OQ));
    // Same arithmetic as the scalar path: (v+half)/(2p), truncated.
    // Out-of-range/NaN lanes produce garbage here and are blended away.
    const __m128i bin = _mm_min_epi32(
        _mm256_cvttpd_epi32(
            _mm256_div_pd(_mm256_add_pd(x, vhi), vtwop)),
        vmaxbin);
    const __m128i mask = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        _mm256_castpd_si256(in_range), lane_pick));
    const __m128i code = _mm_blendv_epi8(vescape, bin, mask);
    if (wide) {
      const __m128i packed = _mm_packus_epi32(code, code);
      std::memcpy(codes + 2 * i, &packed, 8);
    } else {
      const __m128i packed = _mm_shuffle_epi8(code, pack_u8);
      const int four = _mm_cvtsi128_si32(packed);
      std::memcpy(codes + i, &four, 4);
    }
  }
  for (std::size_t i = n4; i < n; ++i)
    detail::store_code(codes, i, wide,
                       detail::quantize_one(v[i], half, p, bins));
}

void dequantize_codes_avx2(const std::uint8_t* codes, std::size_t n,
                           double p, double half, bool wide,
                           double* out) {
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d vp = _mm256_set1_pd(p);
  const __m256d vneg_half = _mm256_set1_pd(-half);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  const __m256d vone = _mm256_set1_pd(1.0);
  for (std::size_t i = 0; i < n4; i += 4) {
    __m128i raw;
    if (wide) {
      std::int64_t bits;
      std::memcpy(&bits, codes + 2 * i, 8);
      raw = _mm_cvtepu16_epi32(_mm_cvtsi64_si128(bits));
    } else {
      std::int32_t bits;
      std::memcpy(&bits, codes + i, 4);
      raw = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(bits));
    }
    const __m256d c = _mm256_cvtepi32_pd(raw);
    // -half + p*(2c+1), multiply/add order matching the scalar path
    // (2c and 2c+1 are exact; one rounding each for the mul and add).
    const __m256d t = _mm256_add_pd(_mm256_mul_pd(c, vtwo), vone);
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(vneg_half, _mm256_mul_pd(vp, t)));
  }
  for (std::size_t i = n4; i < n; ++i)
    out[i] =
        detail::dequantize_one(detail::load_code(codes, i, wide), p, half);
}

}  // namespace

const KernelTable* avx2_table() {
  static constexpr KernelTable kTable = {
      dot_avx2,
      dot_centered_avx2,
      axpy_avx2,
      rank2_avx2,
      accum_centered_avx2,
      center_scale_avx2,
      scale_shift_avx2,
      scale_avx2,
      divide_avx2,
      rot2_avx2,
      cmul_avx2,
      radix2_stage_avx2,
      cmul_real_scale_avx2,
      quantize_codes_avx2,
      dequantize_codes_avx2,
  };
  return &kTable;
}

}  // namespace dpz::simd

#else  // !defined(__AVX2__)

namespace dpz::simd {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace dpz::simd

#endif
