// Runtime CPU-feature detection and kernel-table dispatch.
//
// Detection runs once (CPUID leaf 7 + XGETBV on x86-64, AT_HWCAP on
// aarch64) under a magic-static; the selected table is then a single
// acquire load per kernels() call. DPZ_FORCE_ISA (or set_force_isa,
// which the CLI's --isa flag calls) pins the choice; forcing an ISA the
// CPU or binary cannot execute throws InvalidArgument instead of
// crashing on an illegal instruction.
#include <atomic>
#include <cstdlib>

#include "obs/names.h"
#include "obs/trace.h"
#include "simd/kernel_tables.h"
#include "simd/simd.h"
#include "util/error.h"

#if defined(__x86_64__)
#include <cpuid.h>
#endif
#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#endif

namespace dpz::simd {

namespace {

#if defined(__x86_64__)
std::uint64_t xgetbv0() {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0U));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}
#endif

/// The table an ISA dispatches to, or null when this binary has no
/// implementation for it (e.g. NEON in an x86 build).
const KernelTable* table_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &scalar_table();
    case Isa::kAvx2:
      return avx2_table();
    case Isa::kNeon:
      return neon_table();
  }
  return nullptr;
}

struct Dispatch {
  CpuFeatures features;           // CPU caps masked by the binary
  std::optional<Isa> env_forced;  // DPZ_FORCE_ISA at first use
  std::atomic<const KernelTable*> table{nullptr};
  std::atomic<std::uint8_t> isa{0};

  // Runs once under the magic-static; a throw (bad DPZ_FORCE_ISA value
  // or unsupported forced ISA) propagates to the caller and the next
  // kernels() call retries.
  Dispatch() {
    const std::uint64_t start = obs::TraceRecorder::now_ns();
    features = detect_cpu_features();
    // An ISA the binary cannot execute is indistinguishable from a CPU
    // that lacks it: mask it out before selection.
    if (avx2_table() == nullptr) features.avx2 = false;
    if (neon_table() == nullptr) features.neon = false;

    if (const char* env = std::getenv("DPZ_FORCE_ISA")) {
      const std::optional<Isa> parsed = parse_isa(env);
      if (!parsed.has_value())
        throw InvalidArgument(std::string("DPZ_FORCE_ISA: unknown ISA '") +
                              env + "' (want scalar, avx2, or neon)");
      env_forced = parsed;
    }
    const Isa selected = select_isa(features, env_forced);
    table.store(table_for(selected), std::memory_order_release);
    isa.store(static_cast<std::uint8_t>(selected),
              std::memory_order_release);
    obs::TraceRecorder::instance().record(
        obs::Span::kSimdDispatch, start,
        obs::TraceRecorder::now_ns() - start);
  }
};

Dispatch& dispatch_state() {
  static Dispatch d;
  return d;
}

}  // namespace

CpuFeatures detect_cpu_features() {
  CpuFeatures f;
#if defined(__x86_64__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    const bool osxsave = (ecx & (1U << 27)) != 0;
    const bool avx = (ecx & (1U << 28)) != 0;
    // YMM state must be OS-enabled (XCR0 bits 1 and 2) before any
    // 256-bit instruction is legal to issue.
    const bool ymm_enabled = osxsave && (xgetbv0() & 0x6U) == 0x6U;
    unsigned eax7 = 0;
    unsigned ebx7 = 0;
    unsigned ecx7 = 0;
    unsigned edx7 = 0;
    if (avx && ymm_enabled &&
        __get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0)
      f.avx2 = (ebx7 & (1U << 5)) != 0;
  }
#elif defined(__aarch64__)
#if defined(__linux__) && defined(HWCAP_ASIMD)
  f.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  f.neon = true;  // Advanced SIMD is architecturally mandatory
#endif
#endif
  return f;
}

Isa select_isa(const CpuFeatures& features, std::optional<Isa> forced) {
  if (forced.has_value()) {
    switch (*forced) {
      case Isa::kScalar:
        return Isa::kScalar;
      case Isa::kAvx2:
        if (!features.avx2)
          throw InvalidArgument(
              "forced ISA 'avx2' is not supported on this CPU/binary");
        return Isa::kAvx2;
      case Isa::kNeon:
        if (!features.neon)
          throw InvalidArgument(
              "forced ISA 'neon' is not supported on this CPU/binary");
        return Isa::kNeon;
    }
    throw InvalidArgument("forced ISA value is out of range");
  }
  if (features.avx2) return Isa::kAvx2;
  if (features.neon) return Isa::kNeon;
  return Isa::kScalar;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(const std::string& name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "neon") return Isa::kNeon;
  return std::nullopt;
}

std::vector<Isa> available_isas() {
  Dispatch& d = dispatch_state();
  std::vector<Isa> out{Isa::kScalar};
  if (d.features.avx2) out.push_back(Isa::kAvx2);
  if (d.features.neon) out.push_back(Isa::kNeon);
  return out;
}

Isa active_isa() {
  return static_cast<Isa>(
      dispatch_state().isa.load(std::memory_order_acquire));
}

void set_force_isa(std::optional<Isa> isa) {
  Dispatch& d = dispatch_state();
  // Validate (and resolve the effective choice) before publishing.
  const std::optional<Isa> effective =
      isa.has_value() ? isa : d.env_forced;
  const Isa selected = select_isa(d.features, effective);
  d.table.store(table_for(selected), std::memory_order_release);
  d.isa.store(static_cast<std::uint8_t>(selected),
              std::memory_order_release);
}

const KernelTable& kernels() {
  return *dispatch_state().table.load(std::memory_order_acquire);
}

const KernelTable& kernel_table(Isa isa) {
  Dispatch& d = dispatch_state();
  const Isa selected = select_isa(d.features, isa);
  return *table_for(selected);
}

}  // namespace dpz::simd
