// Internal: the per-element operations every kernel implementation is
// measured against. Vector kernels use these for their tails, so a tail
// element takes exactly the scalar path. This header is only included
// from kernel TUs, which all build with -ffp-contract=off — the contract
// depends on multiply and add rounding separately.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dpz::simd::detail {

inline double mul_add_term(double x, double y) { return x * y; }

/// Serial tail of the sixteen-lane tree reduction: acc + sum of
/// remaining x[i]*y[i] terms, folded left to right.
inline double dot_tail(double acc, const double* x, const double* y,
                       std::size_t begin, std::size_t n) {
  for (std::size_t i = begin; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

inline double dot_centered_tail(double acc, const double* x, double mx,
                                const double* y, double my,
                                std::size_t begin, std::size_t n) {
  for (std::size_t i = begin; i < n; ++i)
    acc += (x[i] - mx) * (y[i] - my);
  return acc;
}

inline void axpy_one(double a, double x, double* y) { *y += a * x; }

inline void rank2_one(double f, double e, double g, double w,
                      double* row) {
  *row -= f * e + g * w;
}

inline void accum_centered_one(double d, double x, double mu,
                               double* out) {
  *out += d * (x - mu);
}

inline void center_scale_one(double x, double mu, double inv_s,
                             double* out) {
  *out = (x - mu) * inv_s;
}

inline void scale_shift_one(double s, double mu, double* x) {
  *x = *x * s + mu;
}

inline void rot2_one(double c, double s, double* u, double* v) {
  const double f = *v;
  *v = s * *u + c * f;
  *u = c * *u - s * f;
}

/// (ar,ai)*(br,bi) with one rounding per part — matches libstdc++'s
/// std::complex product for finite operands.
inline void cmul_one(double ar, double ai, double br, double bi,
                     double* out_r, double* out_i) {
  *out_r = ar * br - ai * bi;
  *out_i = ar * bi + ai * br;
}

/// One radix-2 butterfly: u, v*w -> u+vw, u-vw (w conjugated when conj).
inline void butterfly_one(double* u, double* v, double wr, double wi,
                          bool conj) {
  if (conj) wi = -wi;
  double tr;
  double ti;
  cmul_one(v[0], v[1], wr, wi, &tr, &ti);
  const double ur = u[0];
  const double ui = u[1];
  u[0] = ur + tr;
  u[1] = ui + ti;
  v[0] = ur - tr;
  v[1] = ui - ti;
}

inline std::uint32_t quantize_one(double v, double half, double p,
                                  std::uint32_t bins) {
  if (!(v >= -half && v <= half)) return bins;  // escape; NaN lands here
  auto bin = static_cast<std::uint32_t>((v + half) / (2.0 * p));
  if (bin >= bins) bin = bins - 1;  // v == +half lands past the end
  return bin;
}

inline double dequantize_one(std::uint32_t code, double p, double half) {
  return -half + p * (2.0 * static_cast<double>(code) + 1.0);
}

inline std::uint32_t load_code(const std::uint8_t* codes, std::size_t i,
                               bool wide) {
  std::uint32_t code = codes[i * (wide ? 2 : 1)];
  if (wide) code |= static_cast<std::uint32_t>(codes[i * 2 + 1]) << 8;
  return code;
}

inline void store_code(std::uint8_t* codes, std::size_t i, bool wide,
                       std::uint32_t code) {
  codes[i * (wide ? 2 : 1)] = static_cast<std::uint8_t>(code & 0xFFU);
  if (wide)
    codes[i * 2 + 1] = static_cast<std::uint8_t>((code >> 8) & 0xFFU);
}

}  // namespace dpz::simd::detail
