// Internal: per-ISA kernel tables assembled by the kernel TUs.
//
// Each kernels_<isa>.cpp defines its table; an ISA that cannot be
// compiled on this target (e.g. NEON on x86) exposes a null pointer and
// dispatch treats it as unavailable. Only dispatch.cpp and the
// equivalence tests include this header.
#pragma once

#include "simd/simd.h"

namespace dpz::simd {

/// Always present.
const KernelTable& scalar_table();

/// Null when the TU was built without AVX2 support.
const KernelTable* avx2_table();

/// Null when the TU was built without NEON support.
const KernelTable* neon_table();

}  // namespace dpz::simd
