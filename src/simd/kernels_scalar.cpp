// Portable reference kernels. These define the bit patterns every other
// ISA must reproduce: the sixteen-lane reduction tree and the
// per-element operation orders live here as plain C++ (see simd.h for
// the contract).
#include "simd/kernel_tables.h"
#include "simd/scalar_ops.h"

namespace dpz::simd {

namespace {

/// Folds the sixteen lane sums per the contract: four partials
/// a_l = (s_l + s_{l+8}) + (s_{l+4} + s_{l+12}), combined as
/// (a0 + a2) + (a1 + a3).
inline double combine_lanes(const double* s) {
  double a[4];
  for (std::size_t l = 0; l < 4; ++l)
    a[l] = (s[l] + s[l + 8]) + (s[l + 4] + s[l + 12]);
  return (a[0] + a[2]) + (a[1] + a[3]);
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  const std::size_t n16 = n & ~std::size_t{15};
  double s[16] = {};
  for (std::size_t i = 0; i < n16; i += 16)
    for (std::size_t l = 0; l < 16; ++l) s[l] += x[i + l] * y[i + l];
  return detail::dot_tail(combine_lanes(s), x, y, n16, n);
}

double dot_centered_scalar(const double* x, double mx, const double* y,
                           double my, std::size_t n) {
  const std::size_t n16 = n & ~std::size_t{15};
  double s[16] = {};
  for (std::size_t i = 0; i < n16; i += 16)
    for (std::size_t l = 0; l < 16; ++l)
      s[l] += (x[i + l] - mx) * (y[i + l] - my);
  return detail::dot_centered_tail(combine_lanes(s), x, mx, y, my, n16, n);
}

void axpy_scalar(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) detail::axpy_one(a, x[i], &y[i]);
}

void rank2_scalar(double f, const double* e, double g, const double* w,
                  double* row, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    detail::rank2_one(f, e[i], g, w[i], &row[i]);
}

void accum_centered_scalar(double d, const double* x, double mu,
                           double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    detail::accum_centered_one(d, x[i], mu, &out[i]);
}

void center_scale_scalar(const double* x, double mu, double inv_s,
                         double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    detail::center_scale_one(x[i], mu, inv_s, &out[i]);
}

void scale_shift_scalar(double s, double mu, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) detail::scale_shift_one(s, mu, &x[i]);
}

void scale_scalar(double a, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void divide_scalar(double s, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] /= s;
}

void rot2_scalar(double c, double s, double* u, double* v,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) detail::rot2_one(c, s, &u[i], &v[i]);
}

void cmul_scalar(const double* a, const double* b, double* out,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    detail::cmul_one(a[2 * i], a[2 * i + 1], b[2 * i], b[2 * i + 1],
                     &out[2 * i], &out[2 * i + 1]);
}

void radix2_stage_scalar(double* a, std::size_t n, std::size_t len,
                         const double* w, bool conj) {
  const std::size_t half = len / 2;
  for (std::size_t start = 0; start < n; start += len)
    for (std::size_t k = 0; k < half; ++k)
      detail::butterfly_one(a + 2 * (start + k),
                            a + 2 * (start + k + half), w[2 * k],
                            w[2 * k + 1], conj);
}

void cmul_real_scale_scalar(const double* w, const double* v, double s,
                            double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = (w[2 * i] * v[2 * i] - w[2 * i + 1] * v[2 * i + 1]) * s;
}

void quantize_codes_scalar(const double* v, std::size_t n, double half,
                           double p, std::uint32_t bins, bool wide,
                           std::uint8_t* codes) {
  for (std::size_t i = 0; i < n; ++i)
    detail::store_code(codes, i, wide,
                       detail::quantize_one(v[i], half, p, bins));
}

void dequantize_codes_scalar(const std::uint8_t* codes, std::size_t n,
                             double p, double half, bool wide,
                             double* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] =
        detail::dequantize_one(detail::load_code(codes, i, wide), p, half);
}

}  // namespace

const KernelTable& scalar_table() {
  static constexpr KernelTable kTable = {
      dot_scalar,
      dot_centered_scalar,
      axpy_scalar,
      rank2_scalar,
      accum_centered_scalar,
      center_scale_scalar,
      scale_shift_scalar,
      scale_scalar,
      divide_scalar,
      rot2_scalar,
      cmul_scalar,
      radix2_stage_scalar,
      cmul_real_scale_scalar,
      quantize_codes_scalar,
      dequantize_codes_scalar,
  };
  return kTable;
}

}  // namespace dpz::simd
