// Runtime-dispatched SIMD kernels for the Stage-1/Stage-2 hot loops.
//
// One dispatch table (KernelTable) holds every vectorizable primitive the
// pipeline needs: dot-product reductions for covariance/Householder work,
// elementwise axpy/scale families for PCA projection and back-projection,
// Givens-pair rotations for the QL sweep, complex butterflies for the FFT
// behind the DCT, and the 64Ki-value quantize/dequantize strip codecs.
// The active implementation is chosen once at runtime from CPUID (x86) or
// AT_HWCAP (aarch64): AVX2, NEON, or the portable scalar reference.
//
// Bit-exactness contract (docs/SIMD.md): every implementation of a kernel
// produces bit-identical output to the scalar reference in this table for
// the same inputs.
//  * Elementwise kernels perform the documented operation order per
//    element (multiply then add, never fused) so lanes round exactly like
//    the scalar loop; kernel TUs build with -ffp-contract=off.
//  * Reduction kernels (dot, dot_centered) use a fixed sixteen-lane
//    decomposition regardless of ISA (wide enough to hide the add
//    latency of four AVX2 accumulators): lane l in [0, 16) accumulates
//    terms l, l+16, l+32, ... serially; the lanes fold to four partials
//    a_l = (s_l + s_{l+8}) + (s_{l+4} + s_{l+12}) for l in [0, 4), those
//    combine as (a0 + a2) + (a1 + a3), and the remaining tail terms are
//    folded in serially afterwards. The scalar reference implements this
//    same tree, so the reduction order is a property of the kernel
//    contract, not of the CPU the archive was written on.
//  * Complex kernels use the finite-operand product
//    (ar*br - ai*bi, ar*bi + ai*br) with one rounding per part; callers
//    only pass finite data (DCT/FFT intermediates).
// The kernel-equivalence harness (tests/test_simd_kernels.cpp) enforces
// the contract for every ISA reachable on the build machine, including
// unaligned pointers and non-multiple-of-width tails.
//
// Forcing a path: the DPZ_FORCE_ISA environment variable (or the CLI's
// --isa flag, which routes here through set_force_isa) pins dispatch to
// "scalar", "avx2", or "neon". Forcing an ISA the CPU cannot execute
// fails with InvalidArgument at dispatch time rather than crashing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dpz::simd {

enum class Isa : std::uint8_t {
  kScalar = 0,  ///< portable reference, always available
  kAvx2,        ///< x86-64 AVX2 (no FMA: the contract forbids fusing)
  kNeon,        ///< aarch64 Advanced SIMD
};

/// CPU capability bits, decoupled from detection so selection logic can
/// be unit-tested with faked features.
struct CpuFeatures {
  bool avx2 = false;
  bool neon = false;
};

/// Queries the running CPU: CPUID leaf 7 + XGETBV on x86-64 (AVX2 needs
/// OS-enabled YMM state), getauxval(AT_HWCAP) on aarch64.
CpuFeatures detect_cpu_features();

/// Pure selection logic: highest available ISA, or `forced` when set.
/// Throws InvalidArgument when the forced ISA is not executable on
/// `features` (the "clean error, not crash" contract).
Isa select_isa(const CpuFeatures& features, std::optional<Isa> forced);

/// "scalar" / "avx2" / "neon".
const char* isa_name(Isa isa);

/// Parses an ISA name as spelled by isa_name; nullopt for anything else.
std::optional<Isa> parse_isa(const std::string& name);

/// Every ISA the current CPU can execute (always includes kScalar).
std::vector<Isa> available_isas();

/// The ISA dispatch currently resolves to (forcing included).
Isa active_isa();

/// Pins (or, with nullopt, unpins) dispatch to one ISA. Overrides the
/// DPZ_FORCE_ISA environment variable. Throws InvalidArgument if the
/// requested ISA is unavailable on this CPU. Not meant for concurrent
/// use against in-flight kernels; call it between pipeline runs (tests,
/// CLI startup).
void set_force_isa(std::optional<Isa> isa);

/// One entry per vectorized primitive. All pointers may be unaligned;
/// every size argument counts elements (doubles, or complex values where
/// noted), and n == 0 is a no-op for the void kernels.
struct KernelTable {
  // ---- reductions (fixed sixteen-lane tree, see header comment) -------
  /// sum_i x[i]*y[i]
  double (*dot)(const double* x, const double* y, std::size_t n);
  /// sum_i (x[i]-mx)*(y[i]-my) — the covariance inner loop
  double (*dot_centered)(const double* x, double mx, const double* y,
                         double my, std::size_t n);

  // ---- elementwise (per-element order identical to the scalar loop) ---
  /// y[i] += a*x[i]
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  /// row[i] -= f*e[i] + g*w[i] — the Householder rank-2 row update
  void (*rank2_update)(double f, const double* e, double g, const double* w,
                       double* row, std::size_t n);
  /// out[i] += d*(x[i]-mu) — the PCA projection inner loop
  void (*accum_centered)(double d, const double* x, double mu, double* out,
                         std::size_t n);
  /// out[i] = (x[i]-mu)*inv_s — centering/standardization
  void (*center_scale)(const double* x, double mu, double inv_s,
                       double* out, std::size_t n);
  /// x[i] = x[i]*s + mu — PCA back-projection epilogue
  void (*scale_shift)(double s, double mu, double* x, std::size_t n);
  /// x[i] *= a
  void (*scale)(double a, double* x, std::size_t n);
  /// x[i] /= s (true division: rounding differs from *1/s)
  void (*divide)(double s, double* x, std::size_t n);
  /// Givens pair: f=v[i]; v[i]=s*u[i]+c*f; u[i]=c*u[i]-s*f — QL rotation
  void (*rot2)(double c, double s, double* u, double* v, std::size_t n);

  // ---- complex (interleaved re,im; n counts complex values) -----------
  /// out[i] = a[i]*b[i] (complex); out may alias a
  void (*cmul)(const double* a, const double* b, double* out,
               std::size_t n);
  /// One radix-2 butterfly stage over a[0..n): for each group of `len`
  /// and k in [0, len/2): v = a[g+k+len/2] * w[k] (conjugated when
  /// `conj`), a[g+k] = u+v, a[g+k+len/2] = u-v.
  void (*radix2_stage)(double* a, std::size_t n, std::size_t len,
                       const double* w, bool conj);
  /// out[i] = (w[i]*v[i]).real() * s — the DCT-II twiddle epilogue
  void (*cmul_real_scale)(const double* w, const double* v, double s,
                          double* out, std::size_t n);

  // ---- quantizer strips (64Ki-value units; see codec/quantizer.cpp) ---
  /// Writes n codes at stride (wide ? 2 : 1) bytes, little-endian:
  /// in-range values get min((v+half)/(2p), bins-1), anything else
  /// (including NaN) gets the escape code == bins.
  void (*quantize_codes)(const double* v, std::size_t n, double half,
                         double p, std::uint32_t bins, bool wide,
                         std::uint8_t* codes);
  /// out[i] = -half + p*(2*code[i]+1) for every code, escapes included
  /// (the caller overwrites escape slots from the outlier list).
  void (*dequantize_codes)(const std::uint8_t* codes, std::size_t n,
                           double p, double half, bool wide, double* out);
};

/// The dispatched table (detection + DPZ_FORCE_ISA resolved on first
/// use). Hot loops grab this once per call site and invoke members.
const KernelTable& kernels();

/// Direct access to one ISA's table for tests and microbenches. Throws
/// InvalidArgument when `isa` cannot execute on this CPU.
const KernelTable& kernel_table(Isa isa);

}  // namespace dpz::simd
