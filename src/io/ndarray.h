// NdArray<T>: the dense row-major n-dimensional container every dataset in
// this repository lives in. Scientific fields from the paper's Table I map
// onto it directly: HACC is 1-D, CESM-ATM is 2-D (1800 x 3600), JHTDB is
// 3-D (128 x 128 x 128). DPZ itself flattens any shape to 1-D before block
// decomposition, so the container keeps shape metadata alongside flat
// storage.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <vector>

#include "util/error.h"
#include "util/resource.h"

namespace dpz {

/// Dense row-major n-dimensional array (last index varies fastest).
template <typename T>
class NdArray {
 public:
  NdArray() = default;

  /// Allocates a zero-initialized array of the given shape.
  explicit NdArray(std::vector<std::size_t> shape)
      : shape_(std::move(shape)),
        charge_(checked_size(shape_) * sizeof(T)),
        data_(checked_size(shape_), T{}) {}

  NdArray(std::initializer_list<std::size_t> shape)
      : NdArray(std::vector<std::size_t>(shape)) {}

  /// Wraps existing data; `data.size()` must match the shape's element count.
  NdArray(std::vector<std::size_t> shape, std::vector<T> data)
      : shape_(std::move(shape)),
        charge_(data.size() * sizeof(T)),
        data_(std::move(data)) {
    DPZ_REQUIRE(data_.size() == checked_size(shape_),
                "data size does not match shape");
  }

  [[nodiscard]] const std::vector<std::size_t>& shape() const {
    return shape_;
  }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Extent along dimension `d`.
  [[nodiscard]] std::size_t extent(std::size_t d) const {
    DPZ_REQUIRE(d < shape_.size(), "dimension out of range");
    return shape_[d];
  }

  [[nodiscard]] std::span<T> flat() { return std::span<T>(data_); }
  [[nodiscard]] std::span<const T> flat() const {
    return std::span<const T>(data_);
  }
  [[nodiscard]] std::vector<T>& storage() { return data_; }
  [[nodiscard]] const std::vector<T>& storage() const { return data_; }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

  /// 1-D element access with bounds checking.
  [[nodiscard]] T& at(std::size_t i) {
    DPZ_REQUIRE(i < data_.size(), "flat index out of range");
    return data_[i];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    DPZ_REQUIRE(i < data_.size(), "flat index out of range");
    return data_[i];
  }

  /// 2-D element access (row-major).
  [[nodiscard]] T& operator()(std::size_t i, std::size_t j) {
    return data_[i * shape_[1] + j];
  }
  [[nodiscard]] const T& operator()(std::size_t i, std::size_t j) const {
    return data_[i * shape_[1] + j];
  }

  /// 3-D element access (row-major).
  [[nodiscard]] T& operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  [[nodiscard]] const T& operator()(std::size_t i, std::size_t j,
                                    std::size_t k) const {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Returns a copy reshaped to `shape` (element count must match).
  [[nodiscard]] NdArray reshaped(std::vector<std::size_t> shape) const {
    DPZ_REQUIRE(checked_size(shape) == data_.size(),
                "reshape must preserve element count");
    return NdArray(std::move(shape), data_);
  }

  /// Minimum and maximum over all elements (requires non-empty array).
  [[nodiscard]] std::pair<T, T> min_max() const {
    DPZ_REQUIRE(!data_.empty(), "min_max of empty array");
    T lo = data_[0], hi = data_[0];
    for (const T v : data_) {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    return {lo, hi};
  }

  /// Value range (max - min), the denominator of PSNR and relative error.
  [[nodiscard]] double value_range() const {
    const auto [lo, hi] = min_max();
    return static_cast<double>(hi) - static_cast<double>(lo);
  }

 private:
  static std::size_t checked_size(const std::vector<std::size_t>& shape) {
    DPZ_REQUIRE(!shape.empty(), "shape must have at least one dimension");
    std::size_t n = 1;
    for (const std::size_t e : shape) {
      DPZ_REQUIRE(e > 0, "shape extents must be positive");
      DPZ_REQUIRE(n <= SIZE_MAX / e, "shape overflows size_t");
      n *= e;
    }
    return n;
  }

  std::vector<std::size_t> shape_;
  // Governed memory accounting for data_ (declared first: charge before
  // the allocation, release after the free). See util/resource.h.
  ScopedCharge charge_;
  std::vector<T> data_;
};

using FloatArray = NdArray<float>;
using DoubleArray = NdArray<double>;

/// Converts between element types (e.g. float dataset -> double pipeline).
template <typename Out, typename In>
NdArray<Out> convert(const NdArray<In>& in) {
  std::vector<Out> data(in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    data[i] = static_cast<Out>(in[i]);
  return NdArray<Out>(in.shape(), std::move(data));
}

}  // namespace dpz
