#include "io/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

namespace dpz {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

std::unique_ptr<std::FILE, FileCloser> open_for_write(
    const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) throw IoError("cannot open image file for writing: " + path);
  return f;
}

unsigned char to_byte(double v) {
  return static_cast<unsigned char>(
      std::clamp(std::lround(v * 255.0), 0L, 255L));
}

}  // namespace

void write_pgm(const std::string& path, const FloatArray& field, float lo,
               float hi) {
  DPZ_REQUIRE(field.rank() == 2, "write_pgm expects a 2-D field");
  if (lo >= hi) {
    const auto [mn, mx] = field.min_max();
    lo = mn;
    hi = mx;
  }
  const double span = (hi > lo) ? static_cast<double>(hi) - lo : 1.0;

  const std::size_t rows = field.extent(0), cols = field.extent(1);
  auto f = open_for_write(path);
  std::fprintf(f.get(), "P5\n%zu %zu\n255\n", cols, rows);
  std::vector<unsigned char> row(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j)
      row[j] = to_byte((static_cast<double>(field(i, j)) - lo) / span);
    if (std::fwrite(row.data(), 1, cols, f.get()) != cols)
      throw IoError("short write to " + path);
  }
}

void write_error_ppm(const std::string& path, const FloatArray& field) {
  DPZ_REQUIRE(field.rank() == 2, "write_error_ppm expects a 2-D field");
  double max_abs = 0.0;
  for (const float v : field.flat())
    max_abs = std::max(max_abs, std::abs(static_cast<double>(v)));
  if (max_abs == 0.0) max_abs = 1.0;

  const std::size_t rows = field.extent(0), cols = field.extent(1);
  auto f = open_for_write(path);
  std::fprintf(f.get(), "P6\n%zu %zu\n255\n", cols, rows);
  std::vector<unsigned char> row(cols * 3);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      // t in [-1, 1]: negative -> blue, zero -> white, positive -> red.
      const double t =
          std::clamp(static_cast<double>(field(i, j)) / max_abs, -1.0, 1.0);
      const double mag = std::abs(t);
      const double r = t >= 0 ? 1.0 : 1.0 - mag;
      const double g = 1.0 - mag;
      const double b = t <= 0 ? 1.0 : 1.0 - mag;
      row[3 * j + 0] = to_byte(r);
      row[3 * j + 1] = to_byte(g);
      row[3 * j + 2] = to_byte(b);
    }
    if (std::fwrite(row.data(), 1, row.size(), f.get()) != row.size())
      throw IoError("short write to " + path);
  }
}

}  // namespace dpz
