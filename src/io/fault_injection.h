// Deterministic I/O fault injection for the file_io syscall wrappers.
//
// Production storage fails in ways unit tests never exercise: signals
// interrupt read()/write() mid-transfer, transfers come back short,
// disks flip bits, and files arrive truncated. The full-read/full-write
// loops in file_io.cpp are written to survive all of these — this hook
// lets the test suite prove it, by injecting each failure class at a
// seeded offset and asserting the outcome is either a byte-exact
// recovery or a clean IoError/FormatError (tests/test_fault_injection.cpp).
//
// The plan applies to the calling thread only and describes faults in
// terms of the byte stream of one whole-file operation (read_bytes,
// write_bytes, read_f32, ...): offsets are relative to the start of
// that operation. Counters (EINTR, short transfers) are consumed as
// the faults fire. Not compiled out in release builds — the branch per
// syscall is negligible next to the syscall itself.
#pragma once

#include <cstdint>

namespace dpz::io {

struct FaultPlan {
  /// Sentinel for "this fault is disabled".
  static constexpr std::uint64_t kNoFault = ~0ULL;

  // -- read-side faults --------------------------------------------------
  int read_eintr = 0;       ///< first N read() calls fail once with EINTR
  int short_reads = 0;      ///< first N read() calls transfer <= 7 bytes
  /// Simulated truncation: read() reports end-of-file at this offset.
  std::uint64_t read_truncate_at = kNoFault;
  /// Bit corruption: XOR `read_flip_mask` into the byte at this offset
  /// as it is read (models storage rot under an unwitting reader).
  std::uint64_t read_flip_offset = kNoFault;
  std::uint8_t read_flip_mask = 0;

  // -- write-side faults -------------------------------------------------
  int write_eintr = 0;      ///< first N write() calls fail once with EINTR
  int short_writes = 0;     ///< first N write() calls transfer <= 7 bytes
  /// Hard failure: write() fails with ENOSPC at this offset.
  std::uint64_t write_fail_at = kNoFault;
  /// Bit corruption: the byte at this offset lands flipped on disk.
  std::uint64_t write_flip_offset = kNoFault;
  std::uint8_t write_flip_mask = 0;

  // -- allocation faults -------------------------------------------------
  /// Fail the Nth (1-based) *charged* allocation on this thread with
  /// std::bad_alloc; 0 disables. Charged allocations are the governed
  /// Matrix / NdArray / zlib-buffer sites (util/resource.h ScopedCharge),
  /// so a sweep over N proves every pipeline either completes or fails
  /// clean at each of its allocation points. Charges only flow when a
  /// governor is installed (enable ResourceLimits, e.g. a large
  /// max_memory_bytes) and, like the other counters, only on the calling
  /// thread — run sweeps with threads = 1.
  std::uint64_t alloc_fail_at = 0;
};

/// Installs a copy of `plan` for this thread's subsequent file_io
/// operations; counters are consumed in place. Passing nullptr clears
/// the active plan.
void install_fault_plan(const FaultPlan* plan);

/// RAII installer: active for the scope's lifetime, cleared on exit.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    install_fault_plan(&plan);
  }
  ~ScopedFaultPlan() { install_fault_plan(nullptr); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

namespace detail {
/// The calling thread's active plan (mutable: counters tick down), or
/// nullptr. For the file_io syscall wrappers only.
FaultPlan* active_fault_plan();
}  // namespace detail

}  // namespace dpz::io
