#include "io/file_io.h"

#include <cstdio>
#include <filesystem>

namespace dpz {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw IoError("cannot open file: " + path);
  return f;
}

}  // namespace

FloatArray read_f32(const std::string& path,
                    std::vector<std::size_t> shape) {
  FloatArray array(std::move(shape));
  const std::uint64_t expected =
      static_cast<std::uint64_t>(array.size()) * sizeof(float);
  if (file_size(path) != expected) {
    throw IoError("file " + path + " has unexpected size (expected " +
                  std::to_string(expected) + " bytes)");
  }
  FilePtr f = open_file(path, "rb");
  const std::size_t read =
      std::fread(array.flat().data(), sizeof(float), array.size(), f.get());
  if (read != array.size()) throw IoError("short read from " + path);
  return array;
}

void write_f32(const std::string& path, const FloatArray& array) {
  FilePtr f = open_file(path, "wb");
  const std::size_t written = std::fwrite(
      array.flat().data(), sizeof(float), array.size(), f.get());
  if (written != array.size()) throw IoError("short write to " + path);
}

DoubleArray read_f64(const std::string& path,
                     std::vector<std::size_t> shape) {
  DoubleArray array(std::move(shape));
  const std::uint64_t expected =
      static_cast<std::uint64_t>(array.size()) * sizeof(double);
  if (file_size(path) != expected) {
    throw IoError("file " + path + " has unexpected size (expected " +
                  std::to_string(expected) + " bytes)");
  }
  FilePtr f = open_file(path, "rb");
  const std::size_t read =
      std::fread(array.flat().data(), sizeof(double), array.size(), f.get());
  if (read != array.size()) throw IoError("short read from " + path);
  return array;
}

void write_f64(const std::string& path, const DoubleArray& array) {
  FilePtr f = open_file(path, "wb");
  const std::size_t written = std::fwrite(
      array.flat().data(), sizeof(double), array.size(), f.get());
  if (written != array.size()) throw IoError("short write to " + path);
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  const std::uint64_t n = file_size(path);
  std::vector<std::uint8_t> bytes(n);
  FilePtr f = open_file(path, "rb");
  if (n != 0 && std::fread(bytes.data(), 1, n, f.get()) != n)
    throw IoError("short read from " + path);
  return bytes;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  FilePtr f = open_file(path, "wb");
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size())
    throw IoError("short write to " + path);
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("cannot stat file: " + path + " (" + ec.message() +
                        ")");
  return static_cast<std::uint64_t>(size);
}

}  // namespace dpz
