#include "io/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "io/fault_injection.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dpz {

namespace {

// POSIX-level I/O with two robustness guarantees the old stdio
// implementation lacked:
//
//  * full_read / full_write loop until the transfer completes, retrying
//    EINTR (a signal mid-syscall) and continuing after short transfers —
//    both are legal POSIX behavior that a single fread/fwrite call turns
//    into a spurious failure;
//  * every write lands via a temp file + fsync + rename, so a crash,
//    ENOSPC, or injected fault mid-write can never leave a torn file at
//    the destination — the old contents (or absence) survive intact.
//
// Both paths consult the thread's io::FaultPlan (io/fault_injection.h)
// so the fault-injection suite can drive them through each failure mode.

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    const int f = fd;
    fd = -1;
    return f;
  }
};

[[noreturn]] void throw_errno(const std::string& op,
                              const std::string& path) {
  throw IoError(op + " " + path + " (" + std::strerror(errno) + ")");
}

// read(2) with the thread's fault plan applied. `off` is the operation
// offset, used to place flips and truncation deterministically.
// One kIoFault breadcrumb per injected fault, offset = operation byte
// offset. kWarn for faults the retry loops absorb (EINTR, short
// transfers); kError for ones that surface to the caller.
void log_io_fault(obs::LogLevel level, std::uint64_t off,
                  const char* kind) {
  obs::LogContext ctx;
  ctx.offset = off;
  obs::log_event(obs::Event::kIoFault, level, StatusCode::kIo, ctx, kind);
}

ssize_t faulty_read(int fd, std::uint8_t* buf, std::size_t count,
                    std::uint64_t off) {
  io::FaultPlan* plan = io::detail::active_fault_plan();
  if (plan != nullptr) {
    if (plan->read_eintr > 0) {
      --plan->read_eintr;
      log_io_fault(obs::LogLevel::kWarn, off, "read EINTR");
      errno = EINTR;
      return -1;
    }
    if (plan->read_truncate_at != io::FaultPlan::kNoFault) {
      if (off >= plan->read_truncate_at) {
        log_io_fault(obs::LogLevel::kError, off, "read truncated");
        return 0;  // premature EOF
      }
      count = std::min<std::uint64_t>(count, plan->read_truncate_at - off);
    }
    if (plan->short_reads > 0) {
      --plan->short_reads;
      log_io_fault(obs::LogLevel::kWarn, off, "short read");
      count = std::min<std::size_t>(count, 7);
    }
  }
  const ssize_t got = ::read(fd, buf, count);
  if (plan != nullptr && got > 0 &&
      plan->read_flip_offset != io::FaultPlan::kNoFault &&
      plan->read_flip_offset >= off &&
      plan->read_flip_offset < off + static_cast<std::uint64_t>(got)) {
    log_io_fault(obs::LogLevel::kWarn, plan->read_flip_offset,
                 "read bit flip");
    buf[plan->read_flip_offset - off] ^= plan->read_flip_mask;
  }
  return got;
}

// write(2) with the thread's fault plan applied.
ssize_t faulty_write(int fd, const std::uint8_t* buf, std::size_t count,
                     std::uint64_t off) {
  io::FaultPlan* plan = io::detail::active_fault_plan();
  if (plan != nullptr) {
    if (plan->write_eintr > 0) {
      --plan->write_eintr;
      log_io_fault(obs::LogLevel::kWarn, off, "write EINTR");
      errno = EINTR;
      return -1;
    }
    if (plan->write_fail_at != io::FaultPlan::kNoFault &&
        off + count > plan->write_fail_at) {
      if (off >= plan->write_fail_at) {
        log_io_fault(obs::LogLevel::kError, off, "write ENOSPC");
        errno = ENOSPC;
        return -1;
      }
      count = static_cast<std::size_t>(plan->write_fail_at - off);
    }
    if (plan->short_writes > 0) {
      --plan->short_writes;
      log_io_fault(obs::LogLevel::kWarn, off, "short write");
      count = std::min<std::size_t>(count, 7);
    }
    if (plan->write_flip_offset != io::FaultPlan::kNoFault &&
        plan->write_flip_offset >= off &&
        plan->write_flip_offset < off + count) {
      // Corrupt the byte that lands on disk without touching the
      // caller's buffer.
      log_io_fault(obs::LogLevel::kWarn, plan->write_flip_offset,
                   "write bit flip");
      std::vector<std::uint8_t> copy(buf, buf + count);
      copy[plan->write_flip_offset - off] ^= plan->write_flip_mask;
      return ::write(fd, copy.data(), copy.size());
    }
  }
  return ::write(fd, buf, count);
}

// Reads exactly `n` bytes or throws IoError; EINTR retries, short reads
// continue where they left off, early EOF is a clean failure.
void full_read(int fd, void* out, std::size_t n, const std::string& path) {
  auto* buf = static_cast<std::uint8_t*>(out);
  std::uint64_t off = 0;
  while (off < n) {
    const ssize_t got = faulty_read(fd, buf + off, n - off, off);
    if (got < 0) {
      if (errno == EINTR) {
        obs::count(obs::Counter::kIoReadEintr);
        continue;
      }
      throw_errno("cannot read", path);
    }
    if (got == 0)
      throw IoError("short read from " + path + " (got " +
                    std::to_string(off) + " of " + std::to_string(n) +
                    " bytes)");
    if (static_cast<std::size_t>(got) < n - off)
      obs::count(obs::Counter::kIoShortReads);
    off += static_cast<std::uint64_t>(got);
  }
}

// Writes exactly `n` bytes or throws IoError, with the same retry rules.
void full_write(int fd, const void* data, std::size_t n,
                const std::string& path) {
  const auto* buf = static_cast<const std::uint8_t*>(data);
  std::uint64_t off = 0;
  while (off < n) {
    const ssize_t put = faulty_write(fd, buf + off, n - off, off);
    if (put < 0) {
      if (errno == EINTR) {
        obs::count(obs::Counter::kIoWriteEintr);
        continue;
      }
      throw_errno("cannot write", path);
    }
    if (static_cast<std::size_t>(put) < n - off)
      obs::count(obs::Counter::kIoShortWrites);
    off += static_cast<std::uint64_t>(put);
  }
}

int open_for_read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) throw IoError("cannot open file: " + path);
  return fd;
}

// Atomic whole-file write: the destination either keeps its previous
// state or holds the complete new contents — never a torn mix. The data
// is durable (fsync) before the rename publishes it.
void atomic_write(const std::string& path, const void* data,
                  std::size_t n) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  FdCloser f{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)};  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (f.fd < 0) throw IoError("cannot open file: " + tmp);
  try {
    full_write(f.fd, data, n, tmp);
    if (::fsync(f.fd) != 0) throw_errno("cannot fsync", tmp);
  } catch (...) {
    ::close(f.release());
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(f.release()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("cannot close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("cannot rename into", path);
  }
}

}  // namespace

FloatArray read_f32(const std::string& path,
                    std::vector<std::size_t> shape) {
  FloatArray array(std::move(shape));
  const std::uint64_t expected =
      static_cast<std::uint64_t>(array.size()) * sizeof(float);
  if (file_size(path) != expected) {
    throw IoError("file " + path + " has unexpected size (expected " +
                  std::to_string(expected) + " bytes)");
  }
  FdCloser f{open_for_read(path)};
  full_read(f.fd, array.flat().data(), array.size() * sizeof(float), path);
  return array;
}

void write_f32(const std::string& path, const FloatArray& array) {
  atomic_write(path, array.flat().data(), array.size() * sizeof(float));
}

DoubleArray read_f64(const std::string& path,
                     std::vector<std::size_t> shape) {
  DoubleArray array(std::move(shape));
  const std::uint64_t expected =
      static_cast<std::uint64_t>(array.size()) * sizeof(double);
  if (file_size(path) != expected) {
    throw IoError("file " + path + " has unexpected size (expected " +
                  std::to_string(expected) + " bytes)");
  }
  FdCloser f{open_for_read(path)};
  full_read(f.fd, array.flat().data(), array.size() * sizeof(double),
            path);
  return array;
}

void write_f64(const std::string& path, const DoubleArray& array) {
  atomic_write(path, array.flat().data(), array.size() * sizeof(double));
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  const std::uint64_t n = file_size(path);
  std::vector<std::uint8_t> bytes(n);
  FdCloser f{open_for_read(path)};
  full_read(f.fd, bytes.data(), bytes.size(), path);
  return bytes;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  atomic_write(path, bytes.data(), bytes.size());
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("cannot stat file: " + path + " (" + ec.message() +
                        ")");
  return static_cast<std::uint64_t>(size);
}

}  // namespace dpz
