// Raw binary dataset I/O in the SDRBench convention: a flat stream of
// little-endian IEEE-754 values with the shape supplied out of band. This
// is the format the paper's datasets (JHTDB / CESM-ATM / HACC) ship in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/ndarray.h"

namespace dpz {

/// Reads a flat binary file of `float` into an array of the given shape.
/// Throws IoError when the file is missing or its size does not match.
FloatArray read_f32(const std::string& path, std::vector<std::size_t> shape);

/// Writes the array as a flat binary stream of float32.
void write_f32(const std::string& path, const FloatArray& array);

/// Reads a flat binary file of `double` into an array of the given shape.
DoubleArray read_f64(const std::string& path, std::vector<std::size_t> shape);

/// Writes the array as a flat binary stream of float64.
void write_f64(const std::string& path, const DoubleArray& array);

/// Reads the whole file into a byte buffer.
std::vector<std::uint8_t> read_bytes(const std::string& path);

/// Writes a byte buffer to a file (truncating).
void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes);

/// Size of the file in bytes; throws IoError when it cannot be stat'ed.
std::uint64_t file_size(const std::string& path);

}  // namespace dpz
