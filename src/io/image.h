// Grayscale / false-color image output for the paper's visual artifacts:
// Figure 4 (absolute-error maps) and Figure 7 (decompressed CLDHGH renders).
// PGM/PPM are chosen because they need no external codec and every common
// viewer opens them.
#pragma once

#include <string>

#include "io/ndarray.h"

namespace dpz {

/// Writes a 2-D field as an 8-bit PGM, linearly mapping [lo, hi] -> [0,255].
/// Pass lo >= hi to auto-scale to the field's own min/max.
void write_pgm(const std::string& path, const FloatArray& field,
               float lo = 0.0F, float hi = -1.0F);

/// Writes a 2-D field as a PPM with a blue-white-red diverging colormap
/// centered on zero — the conventional rendering for signed error maps.
void write_error_ppm(const std::string& path, const FloatArray& field);

}  // namespace dpz
