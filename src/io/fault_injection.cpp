#include "io/fault_injection.h"

#include "util/resource.h"

namespace dpz::io {

namespace {
thread_local FaultPlan g_plan;
thread_local bool g_active = false;
}  // namespace

void install_fault_plan(const FaultPlan* plan) {
  if (plan != nullptr) {
    g_plan = *plan;
    g_active = true;
  } else {
    g_active = false;
  }
  // The allocation-fault countdown lives in util (the charge sites are
  // below this library in the link order); arm/disarm it alongside the
  // I/O plan so ScopedFaultPlan covers both fault classes.
  dpz::detail::set_alloc_fault(plan != nullptr ? plan->alloc_fail_at : 0);
}

namespace detail {
FaultPlan* active_fault_plan() { return g_active ? &g_plan : nullptr; }
}  // namespace detail

}  // namespace dpz::io
