#include "io/fault_injection.h"

namespace dpz::io {

namespace {
thread_local FaultPlan g_plan;
thread_local bool g_active = false;
}  // namespace

void install_fault_plan(const FaultPlan* plan) {
  if (plan != nullptr) {
    g_plan = *plan;
    g_active = true;
  } else {
    g_active = false;
  }
}

namespace detail {
FaultPlan* active_fault_plan() { return g_active ? &g_plan : nullptr; }
}  // namespace detail

}  // namespace dpz::io
