// Synthetic stand-ins for the paper's Table I datasets.
//
// Three applications, nine fields (SS V-B):
//   JHTDB   — "Isotropic1024-coarse", "Channel": 3-D turbulence, 128^3
//   CESM-ATM — "CLDHGH","CLDLOW","PHIS","FREQSH","FLDSC": 2-D climate,
//              1800 x 3600
//   HACC    — "x","vx": 1-D cosmology particles, 2097152 values
//
// Each generator reproduces the *compressibility class* of its original
// (DESIGN.md SS2): smooth high-linearity 2-D fields for CESM, band-limited
// turbulence for JHTDB, clustered-but-ordered positions for HACC-x and
// near-white velocities for HACC-vx. All generators are deterministic in
// their seed and support a `scale` factor that shrinks the grid for quick
// runs (scale 1.0 = paper-size).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/ndarray.h"

namespace dpz {

struct Dataset {
  std::string name;    ///< paper's field name, e.g. "CLDHGH"
  std::string source;  ///< application family: "JHTDB", "CESM", "HACC"
  FloatArray data;
};

/// Names accepted by make_dataset, in the paper's Table I order.
std::vector<std::string> dataset_names();

/// Generates the named dataset. `scale` in (0, 1] shrinks each dimension
/// (e.g. scale 0.5 turns 1800x3600 into 900x1800); the default seed matches
/// the figures in EXPERIMENTS.md. Throws InvalidArgument for unknown names.
Dataset make_dataset(const std::string& name, double scale = 1.0,
                     std::uint64_t seed = 2021);

}  // namespace dpz
