#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "data/spectral_field.h"
#include "util/error.h"
#include "util/rng.h"

namespace dpz {

namespace {

std::uint64_t field_seed(std::uint64_t base, const std::string& name) {
  // FNV-1a over the field name, mixed with the user seed.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h ^ (base * 0x9E3779B97F4A7C15ULL);
}

std::size_t scaled(std::size_t full, double scale, std::size_t floor_to) {
  const auto s = static_cast<std::size_t>(
      std::llround(static_cast<double>(full) * scale));
  return std::max(floor_to, s);
}

double logistic(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// --- CESM-ATM 2-D climate analogues (1800 x 3600 at scale 1) -----------

FloatArray make_cloud_fraction(std::vector<std::size_t> shape,
                               std::uint64_t seed, double beta,
                               double gain) {
  // Cloud-fraction fields live in [0, 1] with broad saturated patches —
  // a squashed band-limited field reproduces that patchy, highly linear
  // look (and the low intrinsic rank CESM shows in Stage 2).
  SpectralOptions opt;
  opt.beta = beta;
  opt.cutoff = 0.08;
  opt.noise = 1e-3;
  FloatArray g = gaussian_random_field(std::move(shape), opt, seed);
  for (float& v : g.flat())
    v = static_cast<float>(logistic(gain * static_cast<double>(v)));
  return g;
}

FloatArray make_fldsc(std::vector<std::size_t> shape, std::uint64_t seed) {
  // Downwelling solar flux: smooth positive field with a strong meridional
  // (row-wise) trend, like insolation varying with latitude.
  SpectralOptions opt;
  opt.beta = 3.6;
  opt.cutoff = 0.06;
  opt.noise = 5e-4;
  FloatArray g = gaussian_random_field(shape, opt, seed);
  const std::size_t rows = shape[0], cols = shape[1];
  FloatArray out(shape);
  for (std::size_t i = 0; i < rows; ++i) {
    const double lat = (static_cast<double>(i) / static_cast<double>(rows) -
                        0.5) *
                       3.141592653589793;
    const double base = 180.0 * std::cos(lat) + 40.0;
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = base + 45.0 * static_cast<double>(g(i, j));
      out(i, j) = static_cast<float>(std::max(0.0, v));
    }
  }
  return out;
}

FloatArray make_phis(std::vector<std::size_t> shape, std::uint64_t seed) {
  // Surface geopotential: mostly smooth lowlands with ridged mountain
  // chains; the |.|^1.4 fold sharpens the ridges the way orography does.
  SpectralOptions broad_opt;
  broad_opt.beta = 3.8;
  broad_opt.cutoff = 0.05;
  SpectralOptions fine_opt;
  fine_opt.beta = 3.0;
  fine_opt.cutoff = 0.15;
  fine_opt.noise = 1e-3;
  const FloatArray broad = gaussian_random_field(shape, broad_opt, seed);
  const FloatArray fine = gaussian_random_field(shape, fine_opt, seed + 17);
  FloatArray out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double b = static_cast<double>(broad[i]);
    const double ridged =
        std::pow(std::abs(b), 1.4) * (b > 0 ? 1.0 : 0.15);
    const double v =
        9.80665 * (2200.0 * ridged + 120.0 * static_cast<double>(fine[i]));
    out[i] = static_cast<float>(std::max(-500.0, v));
  }
  return out;
}

// --- JHTDB 3-D turbulence analogues (128^3 at scale 1) -----------------

FloatArray make_isotropic(std::vector<std::size_t> shape,
                          std::uint64_t seed) {
  // Kolmogorov cascade: E(k) ~ k^-5/3 means a 3-D power spectral density
  // ~ k^-11/3, plus the energy-containing large-scale structures real
  // isotropic turbulence carries (the coherent component is what gives
  // JHTDB blocks their moderate-but-real collinearity in the paper's VIF
  // probe; pure random-phase noise would have almost none at bench-scale
  // grids). Velocities are O(1) m/s.
  const FloatArray fine =
      gaussian_random_field(shape, 11.0 / 3.0, seed);
  SpectralOptions large_opt;
  large_opt.beta = 11.0 / 3.0;
  large_opt.cutoff = 0.12;
  const FloatArray large =
      gaussian_random_field(shape, large_opt, seed + 31);
  FloatArray out(shape);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<float>(2.4 * static_cast<double>(large[i]) +
                                0.7 * static_cast<double>(fine[i]));
  return out;
}

FloatArray make_channel(std::vector<std::size_t> shape, std::uint64_t seed) {
  // Channel flow: parabolic streamwise mean profile across the
  // wall-normal axis plus anisotropic fluctuations that weaken at the
  // walls (with a coherent large-scale part, as in make_isotropic).
  // Axis 1 is wall-normal.
  const FloatArray fine = gaussian_random_field(shape, 3.4, seed);
  SpectralOptions large_opt;
  large_opt.beta = 3.4;
  large_opt.cutoff = 0.15;
  const FloatArray large = gaussian_random_field(shape, large_opt, seed + 41);
  FloatArray g(shape);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<float>(1.2 * static_cast<double>(large[i]) +
                              0.7 * static_cast<double>(fine[i]));
  const std::size_t nx = shape[0], ny = shape[1], nz = shape[2];
  FloatArray out(shape);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) {
      const double eta =
          2.0 * static_cast<double>(y) / static_cast<double>(ny - 1) - 1.0;
      const double mean_u = 18.0 * (1.0 - eta * eta);
      const double intensity = 1.8 * (1.0 - 0.75 * eta * eta) + 0.2;
      for (std::size_t z = 0; z < nz; ++z) {
        out(x, y, z) = static_cast<float>(
            mean_u + intensity * static_cast<double>(g(x, y, z)));
      }
    }
  }
  return out;
}

// --- HACC 1-D particle analogues (2097152 values at scale 1) -----------

FloatArray make_hacc_x(std::size_t n, std::uint64_t seed) {
  // Positions in a 256 Mpc box, ordered by the simulation's spatial
  // traversal: long quasi-linear sweeps with cluster-scale jitter, which
  // gives blocks the moderate linearity the paper measures for "x".
  Rng rng(seed);
  FloatArray out({n});
  double x = rng.uniform(0.0, 256.0);
  double drift = 0.02;
  for (std::size_t i = 0; i < n; ++i) {
    // Occasionally re-seat the sweep (new cluster / new rank block).
    if (rng.uniform() < 2e-5) {
      x = rng.uniform(0.0, 256.0);
      drift = rng.uniform(0.005, 0.05);
    }
    x += drift + 0.01 * rng.normal();
    if (x >= 256.0) x -= 256.0;
    if (x < 0.0) x += 256.0;
    out[i] = static_cast<float>(x);
  }
  return out;
}

FloatArray make_hacc_vx(std::size_t n, std::uint64_t seed) {
  // Velocities: nearly white Gaussian mixture (bulk + hot cluster tail).
  // Neighboring particles share almost no signal, so block-features are
  // close to independent — the low-VIF, hard-to-compress case.
  Rng rng(seed);
  FloatArray out({n});
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma = rng.uniform() < 0.07 ? 900.0 : 300.0;
    out[i] = static_cast<float>(rng.normal(0.0, sigma));
  }
  return out;
}

}  // namespace

std::vector<std::string> dataset_names() {
  return {"Isotropic", "Channel", "CLDHGH", "CLDLOW", "PHIS",
          "FREQSH",    "FLDSC",   "HACC-x", "HACC-vx"};
}

Dataset make_dataset(const std::string& name, double scale,
                     std::uint64_t seed) {
  DPZ_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  const std::uint64_t s = field_seed(seed, name);

  const std::vector<std::size_t> cesm_shape{scaled(1800, scale, 32),
                                            scaled(3600, scale, 64)};
  const std::size_t jh = scaled(128, scale, 16);
  const std::vector<std::size_t> jhtdb_shape{jh, jh, jh};
  const std::size_t hacc_n = scaled(2097152, scale, 4096);

  if (name == "Isotropic")
    return {name, "JHTDB", make_isotropic(jhtdb_shape, s)};
  if (name == "Channel") return {name, "JHTDB", make_channel(jhtdb_shape, s)};
  if (name == "CLDHGH")
    return {name, "CESM", make_cloud_fraction(cesm_shape, s, 3.2, 2.6)};
  if (name == "CLDLOW")
    return {name, "CESM", make_cloud_fraction(cesm_shape, s, 3.0, 2.2)};
  if (name == "PHIS") return {name, "CESM", make_phis(cesm_shape, s)};
  if (name == "FREQSH")
    return {name, "CESM", make_cloud_fraction(cesm_shape, s, 2.8, 1.8)};
  if (name == "FLDSC") return {name, "CESM", make_fldsc(cesm_shape, s)};
  if (name == "HACC-x") return {name, "HACC", make_hacc_x(hacc_n, s)};
  if (name == "HACC-vx") return {name, "HACC", make_hacc_vx(hacc_n, s)};

  throw InvalidArgument("unknown dataset name: " + name);
}

}  // namespace dpz
