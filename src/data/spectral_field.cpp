#include "data/spectral_field.h"

#include <cmath>
#include <complex>

#include "dsp/fft.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

// Signed frequency index for bin i of an n-point DFT, in cycles per grid.
double freq_index(std::size_t i, std::size_t n) {
  const auto ii = static_cast<double>(i);
  const auto nn = static_cast<double>(n);
  return (ii <= nn / 2.0) ? ii : ii - nn;
}

// In-place FFT along one axis of a (possibly) multi-dimensional complex
// grid stored row-major. `stride` is the element stride along the axis,
// `count` the axis length, and `lines` enumerates the 1-D lines.
void fft_axis(std::vector<std::complex<double>>& grid,
              const std::vector<std::size_t>& line_starts, std::size_t count,
              std::size_t stride, bool inverse) {
  const FftPlan plan(count);
  parallel_for(0, line_starts.size(), [&](std::size_t li) {
    std::vector<std::complex<double>> line(count);
    const std::size_t base = line_starts[li];
    for (std::size_t i = 0; i < count; ++i) line[i] = grid[base + i * stride];
    plan.execute(line, inverse);
    for (std::size_t i = 0; i < count; ++i) grid[base + i * stride] = line[i];
  });
}

// Enumerates the starting offsets of every 1-D line along `axis` of a grid
// with the given shape (row-major).
std::vector<std::size_t> axis_lines(const std::vector<std::size_t>& shape,
                                    std::size_t axis) {
  std::size_t total = 1;
  for (const std::size_t e : shape) total *= e;
  const std::size_t count = shape[axis];

  // Row-major strides.
  std::vector<std::size_t> strides(shape.size(), 1);
  for (std::size_t d = shape.size() - 1; d-- > 0;)
    strides[d] = strides[d + 1] * shape[d + 1];

  std::vector<std::size_t> starts;
  starts.reserve(total / count);
  std::vector<std::size_t> idx(shape.size(), 0);
  for (;;) {
    std::size_t off = 0;
    for (std::size_t d = 0; d < shape.size(); ++d)
      off += idx[d] * strides[d];
    starts.push_back(off);

    // Odometer over all dimensions except `axis`.
    std::size_t d = shape.size();
    bool done = true;
    while (d-- > 0) {
      if (d == axis) continue;
      if (++idx[d] < shape[d]) {
        done = false;
        break;
      }
      idx[d] = 0;
    }
    if (done) break;
  }
  return starts;
}

}  // namespace

FloatArray gaussian_random_field(std::vector<std::size_t> shape, double beta,
                                 std::uint64_t seed) {
  SpectralOptions options;
  options.beta = beta;
  return gaussian_random_field(std::move(shape), options, seed);
}

FloatArray gaussian_random_field(std::vector<std::size_t> shape,
                                 const SpectralOptions& options,
                                 std::uint64_t seed) {
  DPZ_REQUIRE(!shape.empty() && shape.size() <= 3,
              "spectral synthesis supports 1-D to 3-D shapes");
  DPZ_REQUIRE(options.cutoff > 0.0 && options.cutoff <= 1.0,
              "cutoff must be in (0, 1]");
  DPZ_REQUIRE(options.noise >= 0.0, "noise level must be non-negative");
  const double beta = options.beta;
  std::size_t total = 1;
  for (const std::size_t e : shape) total *= e;

  // Complex white noise shaped by the isotropic power-law filter.
  Rng rng(seed);
  std::vector<std::complex<double>> grid(total);
  std::vector<double> inv_extent(shape.size());
  for (std::size_t d = 0; d < shape.size(); ++d)
    inv_extent[d] = 1.0 / static_cast<double>(shape[d]);

  std::vector<std::size_t> idx(shape.size(), 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    double k2 = 0.0;
    for (std::size_t d = 0; d < shape.size(); ++d) {
      const double f = freq_index(idx[d], shape[d]) * inv_extent[d];
      k2 += f * f;
    }
    const double re = rng.normal();
    const double im = rng.normal();
    // freq_index is in cycles/grid scaled by 1/extent, so the Nyquist
    // radius is 0.5 along each axis.
    const double cutoff2 = 0.25 * options.cutoff * options.cutoff;
    if (k2 == 0.0 || k2 > cutoff2) {
      grid[flat] = {0.0, 0.0};  // DC suppressed; passband low-passed
    } else {
      const double amp = std::pow(k2, -beta / 4.0);  // |k|^(-beta/2)
      grid[flat] = {re * amp, im * amp};
    }

    // Row-major odometer.
    std::size_t d = shape.size();
    while (d-- > 0) {
      if (++idx[d] < shape[d]) break;
      idx[d] = 0;
    }
  }

  // Inverse FFT along every axis; the real part is the synthesized field.
  for (std::size_t axis = 0; axis < shape.size(); ++axis) {
    std::vector<std::size_t> strides(shape.size(), 1);
    for (std::size_t d = shape.size() - 1; d-- > 0;)
      strides[d] = strides[d + 1] * shape[d + 1];
    fft_axis(grid, axis_lines(shape, axis), shape[axis], strides[axis],
             /*inverse=*/true);
  }

  FloatArray out(shape);
  for (std::size_t i = 0; i < total; ++i)
    out[i] = static_cast<float>(grid[i].real());
  normalize_field(out);

  if (options.noise > 0.0) {
    for (float& v : out.flat())
      v += static_cast<float>(options.noise * rng.normal());
    normalize_field(out);
  }
  return out;
}

void normalize_field(FloatArray& field) {
  const std::size_t n = field.size();
  if (n == 0) return;
  double mean = 0.0;
  for (const float v : field.flat()) mean += static_cast<double>(v);
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const float v : field.flat()) {
    const double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  const double inv_std = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  for (float& v : field.flat())
    v = static_cast<float>((static_cast<double>(v) - mean) * inv_std);
}

}  // namespace dpz
