// Gaussian random fields by spectral synthesis.
//
// SDRBench's real datasets are not downloadable in this offline
// environment, so the repository simulates each application's field class
// (see DESIGN.md SS2). The core tool is the classic spectral method:
// fill a Fourier grid with complex white noise, shape its amplitude by a
// power-law |k|^(-beta/2) (power spectrum ~ k^-beta), inverse-FFT and take
// the real part. beta controls smoothness: ~3-4 gives smooth climate-like
// fields; 11/3 along the energy-spectrum convention reproduces a
// Kolmogorov turbulence cascade in 3-D.
#pragma once

#include <cstdint>
#include <vector>

#include "io/ndarray.h"
#include "util/rng.h"

namespace dpz {

struct SpectralOptions {
  /// Power-spectrum slope: P(k) ~ |k|^-beta inside the passband.
  double beta = 3.0;
  /// Low-pass cutoff as a fraction of the Nyquist frequency (1.0 = full
  /// band). Climate-class fields are strongly band-limited: their large-
  /// scale structure lives far below the grid Nyquist, which is exactly
  /// what gives CESM datasets their low intrinsic rank (small k at tight
  /// TVE) in the paper's Stage 2.
  double cutoff = 1.0;
  /// White-noise floor added after synthesis (relative to the field's unit
  /// standard deviation). Models instrument/solver noise; keeps covariance
  /// matrices full-rank.
  double noise = 0.0;
};

/// Synthesizes a zero-mean, unit-variance random field of the given shape
/// (1-D, 2-D or 3-D) with isotropic power spectrum ~ |k|^-beta inside the
/// cutoff. Deterministic in `seed`.
FloatArray gaussian_random_field(std::vector<std::size_t> shape,
                                 const SpectralOptions& options,
                                 std::uint64_t seed);

/// Full-band convenience overload (cutoff 1, no noise floor).
FloatArray gaussian_random_field(std::vector<std::size_t> shape, double beta,
                                 std::uint64_t seed);

/// Normalizes a field in place to zero mean and unit standard deviation
/// (no-op for constant fields).
void normalize_field(FloatArray& field);

}  // namespace dpz
