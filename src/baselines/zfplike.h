// ZFP-like baseline: a from-scratch reimplementation of ZFP 0.5.x's
// single-precision compression path (ZFP binaries are not available
// offline; see DESIGN.md SS2).
//
// Per 4^d block (d = rank 1-3): block-floating-point alignment to the
// block's maximum exponent -> ZFP's reversible integer lifting transform
// along each dimension -> total-sequency coefficient reordering ->
// negabinary mapping -> embedded bit-plane coding with group testing,
// MSB plane first.
//
// Two rate-control modes mirror ZFP's:
//  * fixed-precision: every block stores exactly `precision` bit planes
//    (the knob swept for rate-distortion curves);
//  * fixed-accuracy: the plane count per block derives from an absolute
//    error tolerance, like ZFP's accuracy mode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.h"

namespace dpz {

struct ZfpLikeConfig {
  enum class Mode {
    kFixedPrecision,
    kFixedAccuracy,
  };
  Mode mode = Mode::kFixedPrecision;
  /// Bit planes kept per block in fixed-precision mode (1..32).
  unsigned precision = 16;
  /// Absolute error tolerance in fixed-accuracy mode.
  double tolerance = 1e-3;
};

std::vector<std::uint8_t> zfplike_compress(const FloatArray& data,
                                           const ZfpLikeConfig& config);

FloatArray zfplike_decompress(std::span<const std::uint8_t> archive);

/// Compressor-interface adapter.
class ZfpLikeCompressor final : public Compressor {
 public:
  explicit ZfpLikeCompressor(ZfpLikeConfig config = {}) : config_(config) {}

  std::vector<std::uint8_t> compress(const FloatArray& data) override {
    return zfplike_compress(data, config_);
  }
  FloatArray decompress(std::span<const std::uint8_t> archive) override {
    return zfplike_decompress(archive);
  }
  [[nodiscard]] std::string name() const override { return "ZFP-like"; }

  [[nodiscard]] ZfpLikeConfig& config() { return config_; }

 private:
  ZfpLikeConfig config_;
};

}  // namespace dpz
