// TTHRESH-like baseline: a from-scratch reimplementation of the core of
// TTHRESH (Ballester-Ripoll, Lindstrom, Pajarola — TVCG'20), the tensor
// decomposition compressor the paper's related work (SS VI) describes for
// high-dimensional visual data.
//
// Pipeline: HOSVD (Tucker) — factor matrices from the eigendecomposition
// of each mode's Gram matrix, orthonormal core C = X x1 U1^T x2 U2^T x3
// U3^T — then energy thresholding of the core (orthonormality makes the
// discarded core energy exactly the squared reconstruction error, so the
// `energy` knob is an exact rate-distortion control), a presence bitmask,
// and the kept coefficients + factors behind byte-shuffle + zlib.
//
// TTHRESH proper bit-plane-codes the sorted core; this reimplementation
// keeps the decomposition and the energy-driven truncation — the parts
// that give tensor methods their characteristic rate-distortion shape on
// 3-D data — with a simpler entropy stage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.h"

namespace dpz {

struct TthreshLikeConfig {
  /// Fraction of total core energy to preserve, in (0, 1]. The achieved
  /// PSNR follows directly: MSE = (1 - energy) * field variance-ish.
  double energy = 0.999999;
  int zlib_level = 6;
};

/// Compresses a rank-2 or rank-3 tensor. Rank-1 inputs are rejected
/// (tensor decomposition needs at least two modes).
std::vector<std::uint8_t> tthresh_like_compress(
    const FloatArray& data, const TthreshLikeConfig& config);

FloatArray tthresh_like_decompress(std::span<const std::uint8_t> archive);

/// Compressor-interface adapter.
class TthreshLikeCompressor final : public Compressor {
 public:
  explicit TthreshLikeCompressor(TthreshLikeConfig config = {})
      : config_(config) {}

  std::vector<std::uint8_t> compress(const FloatArray& data) override {
    return tthresh_like_compress(data, config_);
  }
  FloatArray decompress(std::span<const std::uint8_t> archive) override {
    return tthresh_like_decompress(archive);
  }
  [[nodiscard]] std::string name() const override { return "TTHRESH-like"; }

  [[nodiscard]] TthreshLikeConfig& config() { return config_; }

 private:
  TthreshLikeConfig config_;
};

}  // namespace dpz
