// MGARD-like baseline: a from-scratch reimplementation of the multilevel
// decomposition idea behind MGARD (Ainsworth, Tugluk, Whitney, Klasky),
// the multigrid compressor family the paper's taxonomy (SS I, SS VI)
// lists as its third class alongside prediction (SZ) and transform
// (ZFP/DCTZ/DPZ) methods.
//
// Pipeline: a separable hierarchical-basis transform — per axis, fine
// nodes are replaced by their residual against linear interpolation of
// the coarser grid, recursively through log2(n) levels — followed by
// error-bounded uniform quantization of the multilevel coefficients,
// canonical Huffman, and zlib. Quantizing each coefficient to
// eb / (total levels) yields a guaranteed pointwise bound
// |x - x_hat| <= eb (errors accumulate at most once per level per axis).
//
// MGARD proper projects onto the coarse space in the L2 sense and offers
// a family of s-norms; this reimplementation keeps the multilevel
// structure and the hard error guarantee, which is what gives the family
// its rate-distortion character.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.h"

namespace dpz {

struct MgardLikeConfig {
  /// Absolute pointwise error bound. Ignored when relative_bound > 0.
  double error_bound = 1e-3;
  /// Value-range-relative bound: eb = relative_bound * (max - min).
  double relative_bound = 0.0;
  int zlib_level = 6;

  [[nodiscard]] double resolve_bound(double value_range) const {
    if (relative_bound > 0.0) {
      const double r = value_range > 0.0 ? value_range : 1.0;
      return relative_bound * r;
    }
    return error_bound;
  }
};

std::vector<std::uint8_t> mgard_like_compress(const FloatArray& data,
                                              const MgardLikeConfig& config);

FloatArray mgard_like_decompress(std::span<const std::uint8_t> archive);

/// Exposed for tests: the in-place 1-D hierarchical transform along a
/// strided axis (`n` nodes, `stride` elements apart). forward and inverse
/// are exact inverses in exact arithmetic.
void hierarchical_forward_1d(std::span<double> data, std::size_t n,
                             std::size_t stride);
void hierarchical_inverse_1d(std::span<double> data, std::size_t n,
                             std::size_t stride);

/// Compressor-interface adapter.
class MgardLikeCompressor final : public Compressor {
 public:
  explicit MgardLikeCompressor(MgardLikeConfig config = {})
      : config_(config) {}

  std::vector<std::uint8_t> compress(const FloatArray& data) override {
    return mgard_like_compress(data, config_);
  }
  FloatArray decompress(std::span<const std::uint8_t> archive) override {
    return mgard_like_decompress(archive);
  }
  [[nodiscard]] std::string name() const override { return "MGARD-like"; }

  [[nodiscard]] MgardLikeConfig& config() { return config_; }

 private:
  MgardLikeConfig config_;
};

}  // namespace dpz
