// DCTZ-like baseline: a from-scratch reimplementation of the single-stage
// transform compressor that preceded DPZ (Zhang et al., MSST'19 / HPEC'20
// — cited as DPZ's predecessor in SS VI).
//
// Pipeline: block decomposition -> per-block orthonormal DCT-II ->
// uniform quantization of the coefficients against one absolute bound
// (bin width 2*eb, escape for out-of-range) -> zlib. Because the DCT is
// orthonormal, a per-coefficient error e yields a reconstruction RMS
// error of e/sqrt(3) (Parseval), so the bound maps predictably to PSNR.
//
// This is exactly DPZ minus Stage 2: comparing the two isolates what the
// PCA stage contributes (the paper's core claim).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.h"

namespace dpz {

struct DctzLikeConfig {
  /// Absolute per-coefficient error bound. Ignored when relative_bound>0.
  double error_bound = 1e-3;
  /// Value-range-relative bound: eb = relative_bound * (max - min).
  double relative_bound = 0.0;
  /// 1-byte or 2-byte bin codes (like DPZ's two schemes).
  bool wide_codes = true;
  int zlib_level = 6;

  [[nodiscard]] double resolve_bound(double value_range) const {
    if (relative_bound > 0.0) {
      const double r = value_range > 0.0 ? value_range : 1.0;
      return relative_bound * r;
    }
    return error_bound;
  }
};

std::vector<std::uint8_t> dctzlike_compress(const FloatArray& data,
                                            const DctzLikeConfig& config);

FloatArray dctzlike_decompress(std::span<const std::uint8_t> archive);

/// Compressor-interface adapter.
class DctzLikeCompressor final : public Compressor {
 public:
  explicit DctzLikeCompressor(DctzLikeConfig config = {})
      : config_(config) {}

  std::vector<std::uint8_t> compress(const FloatArray& data) override {
    return dctzlike_compress(data, config_);
  }
  FloatArray decompress(std::span<const std::uint8_t> archive) override {
    return dctzlike_decompress(archive);
  }
  [[nodiscard]] std::string name() const override { return "DCTZ-like"; }

  [[nodiscard]] DctzLikeConfig& config() { return config_; }

 private:
  DctzLikeConfig config_;
};

}  // namespace dpz
