#include "baselines/zfplike.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "codec/bitstream.h"
#include "codec/bytes.h"
#include "util/error.h"

namespace dpz {

namespace {

constexpr std::uint32_t kMagic = 0x315A4658;  // "XFZ1"
constexpr unsigned kIntPrec = 32;             // bits of the integer domain
constexpr int kEmaxBias = 16384;
constexpr std::uint32_t kNbMask = 0xAAAAAAAAu;  // negabinary mask

using Int = std::int32_t;
using UInt = std::uint32_t;

// ---- ZFP's reversible lifting transform --------------------------------
//
// fwd:        ( 4  4  4  4)        inv:        ( 4  6 -4 -1)
//      1/16 * ( 5  1 -1 -5)              1/4 * ( 4  2  4  5)
//             (-4  4  4 -4)                    ( 4 -2  4 -5)
//             (-2  6 -6  2)                    ( 4 -6 -4  1)

// Lifting arithmetic runs on wrapping two's-complement values: a corrupt
// bit stream decodes to arbitrary 32-bit coefficients, so the adds,
// subtracts, and up-shifts below must be well-defined at every input.
// Signed overflow is UB even in C++20, so the wheel-work happens in UInt
// and only the value-preserving arithmetic right shift stays signed.
Int wrap_add(Int a, Int b) {
  return static_cast<Int>(static_cast<UInt>(a) + static_cast<UInt>(b));
}
Int wrap_sub(Int a, Int b) {
  return static_cast<Int>(static_cast<UInt>(a) - static_cast<UInt>(b));
}
Int wrap_shl(Int a) { return static_cast<Int>(static_cast<UInt>(a) << 1); }

void fwd_lift(Int* p, std::size_t s) {
  Int x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x = wrap_add(x, w); x >>= 1; w = wrap_sub(w, x);
  z = wrap_add(z, y); z >>= 1; y = wrap_sub(y, z);
  x = wrap_add(x, z); x >>= 1; z = wrap_sub(z, x);
  w = wrap_add(w, y); w >>= 1; y = wrap_sub(y, w);
  w = wrap_add(w, y >> 1); y = wrap_sub(y, w >> 1);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

void inv_lift(Int* p, std::size_t s) {
  Int x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y = wrap_add(y, w >> 1); w = wrap_sub(w, y >> 1);
  y = wrap_add(y, w); w = wrap_shl(w); w = wrap_sub(w, y);
  z = wrap_add(z, x); x = wrap_shl(x); x = wrap_sub(x, z);
  y = wrap_add(y, z); z = wrap_shl(z); z = wrap_sub(z, y);
  w = wrap_add(w, x); x = wrap_shl(x); x = wrap_sub(x, w);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

// Applies the lifting along every dimension of a 4^d block (x fastest).
void fwd_transform(Int* block, std::size_t d) {
  if (d == 1) {
    fwd_lift(block, 1);
    return;
  }
  if (d == 2) {
    for (std::size_t y = 0; y < 4; ++y) fwd_lift(block + 4 * y, 1);
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(block + x, 4);
    return;
  }
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      fwd_lift(block + 16 * z + 4 * y, 1);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(block + 16 * z + x, 4);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(block + 4 * y + x, 16);
}

void inv_transform(Int* block, std::size_t d) {
  if (d == 1) {
    inv_lift(block, 1);
    return;
  }
  if (d == 2) {
    for (std::size_t x = 0; x < 4; ++x) inv_lift(block + x, 4);
    for (std::size_t y = 0; y < 4; ++y) inv_lift(block + 4 * y, 1);
    return;
  }
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) inv_lift(block + 4 * y + x, 16);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) inv_lift(block + 16 * z + x, 4);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      inv_lift(block + 16 * z + 4 * y, 1);
}

// Total-sequency permutation: coefficients ordered by i+j+k (low to high),
// ties broken by flat index — the deterministic equivalent of ZFP's
// hand-rolled perm tables.
std::vector<std::size_t> sequency_order(std::size_t d) {
  const std::size_t size = std::size_t{1} << (2 * d);
  std::vector<std::size_t> order(size);
  std::iota(order.begin(), order.end(), 0);
  auto degree = [d](std::size_t flat) {
    std::size_t sum = 0;
    for (std::size_t dim = 0; dim < d; ++dim) {
      sum += flat & 3;
      flat >>= 2;
    }
    return sum;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return degree(a) < degree(b);
                   });
  return order;
}

UInt int_to_negabinary(Int x) {
  return (static_cast<UInt>(x) + kNbMask) ^ kNbMask;
}

Int negabinary_to_int(UInt u) {
  return static_cast<Int>((u ^ kNbMask) - kNbMask);
}

// Embedded coding of `size` negabinary coefficients, `maxprec` planes,
// MSB plane first, with ZFP's group-testing scheme.
void encode_planes(BitWriter& w, const UInt* data, std::size_t size,
                   unsigned maxprec) {
  std::size_t n = 0;
  for (unsigned k = kIntPrec; k-- > kIntPrec - maxprec;) {
    // Gather plane k (bit i of x = coefficient i's k-th bit).
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < size; ++i)
      x += static_cast<std::uint64_t>((data[i] >> k) & 1U) << i;

    // First n coefficients are already significant: verbatim bits.
    for (std::size_t i = 0; i < n; ++i) w.put_bit((x >> i) & 1U);
    // n reaches 64 once every coefficient is significant (a full 4x4x4
    // block); a 64-bit shift is UB, and the remainder is empty anyway.
    x = n < 64 ? x >> n : 0;

    // Group-test the remainder: one "any left?" bit, then a unary scan to
    // the next newly-significant coefficient.
    for (; n < size; x >>= 1, ++n) {
      w.put_bit(x != 0 ? 1U : 0U);
      if (x == 0) break;
      for (; n < size - 1; x >>= 1, ++n) {
        const unsigned bit = static_cast<unsigned>(x & 1U);
        w.put_bit(bit);
        if (bit != 0) break;
      }
    }
  }
}

void decode_planes(BitReader& r, UInt* data, std::size_t size,
                   unsigned maxprec) {
  std::fill_n(data, size, 0U);
  std::size_t n = 0;
  for (unsigned k = kIntPrec; k-- > kIntPrec - maxprec;) {
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < n; ++i)
      x += static_cast<std::uint64_t>(r.get_bit()) << i;

    for (; n < size; ++n) {
      if (r.get_bit() == 0) break;  // no significant coefficients left
      for (; n < size - 1; ++n) {
        if (r.get_bit() != 0) break;  // unary scan found the next one
      }
      x += std::uint64_t{1} << n;
    }

    for (std::size_t i = 0; x != 0; ++i, x >>= 1)
      data[i] += static_cast<UInt>(x & 1U) << k;
  }
}

// Exponent of |v| in the frexp sense: v = f * 2^e with 0.5 <= |f| < 1.
int float_exponent(float v) {
  int e = 0;
  std::frexp(v, &e);
  return e;
}

unsigned block_precision(const ZfpLikeConfig& config, int emax,
                         std::size_t d) {
  if (config.mode == ZfpLikeConfig::Mode::kFixedPrecision)
    return std::clamp(config.precision, 1U, kIntPrec);
  // Fixed accuracy: keep planes down to the tolerance's exponent, plus the
  // headroom the d-dimensional transform needs (ZFP's 2*(d+1) margin).
  const int minexp = float_exponent(static_cast<float>(config.tolerance));
  const int prec = emax - minexp + 2 * (static_cast<int>(d) + 1);
  return static_cast<unsigned>(std::clamp(prec, 0, static_cast<int>(kIntPrec)));
}

// Gathers a 4^d block at the given origin, clamping out-of-range indices
// to the last valid sample (ZFP-style edge replication for partial blocks).
void gather_block(const FloatArray& data, const std::size_t origin[3],
                  std::size_t d, float* block) {
  const auto& shape = data.shape();
  const std::size_t ext[3] = {shape[0], d >= 2 ? shape[1] : 1,
                              d >= 3 ? shape[2] : 1};
  std::size_t strides[3] = {1, 1, 1};
  if (d >= 2) strides[0] = ext[1] * (d >= 3 ? ext[2] : 1);
  if (d == 2) strides[1] = 1;
  if (d >= 3) {
    strides[1] = ext[2];
    strides[2] = 1;
  }

  const std::size_t nx = d >= 1 ? 4 : 1;
  const std::size_t ny = d >= 2 ? 4 : 1;
  const std::size_t nz = d >= 3 ? 4 : 1;
  std::size_t slot = 0;
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x, ++slot) {
        const std::size_t i0 = std::min(origin[0] + x, ext[0] - 1);
        const std::size_t i1 = d >= 2 ? std::min(origin[1] + y, ext[1] - 1) : 0;
        const std::size_t i2 = d >= 3 ? std::min(origin[2] + z, ext[2] - 1) : 0;
        block[slot] =
            data[i0 * strides[0] + i1 * strides[1] + i2 * strides[2]];
      }
}

void scatter_block(FloatArray& data, const std::size_t origin[3],
                   std::size_t d, const float* block) {
  const auto& shape = data.shape();
  const std::size_t ext[3] = {shape[0], d >= 2 ? shape[1] : 1,
                              d >= 3 ? shape[2] : 1};
  std::size_t strides[3] = {1, 1, 1};
  if (d >= 2) strides[0] = ext[1] * (d >= 3 ? ext[2] : 1);
  if (d == 2) strides[1] = 1;
  if (d >= 3) {
    strides[1] = ext[2];
    strides[2] = 1;
  }

  const std::size_t nx = d >= 1 ? 4 : 1;
  const std::size_t ny = d >= 2 ? 4 : 1;
  const std::size_t nz = d >= 3 ? 4 : 1;
  std::size_t slot = 0;
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x, ++slot) {
        const std::size_t i0 = origin[0] + x;
        const std::size_t i1 = d >= 2 ? origin[1] + y : 0;
        const std::size_t i2 = d >= 3 ? origin[2] + z : 0;
        if (i0 >= ext[0] || i1 >= ext[1] || i2 >= ext[2]) continue;
        data[i0 * strides[0] + i1 * strides[1] + i2 * strides[2]] =
            block[slot];
      }
}

}  // namespace

std::vector<std::uint8_t> zfplike_compress(const FloatArray& data,
                                           const ZfpLikeConfig& config) {
  const std::size_t d = data.rank();
  DPZ_REQUIRE(d >= 1 && d <= 3, "ZFP-like supports rank 1-3 data");
  DPZ_REQUIRE(!data.empty(), "cannot compress empty data");
  if (config.mode == ZfpLikeConfig::Mode::kFixedAccuracy)
    DPZ_REQUIRE(config.tolerance > 0.0, "tolerance must be positive");

  const std::size_t size = std::size_t{1} << (2 * d);
  const std::vector<std::size_t> order = sequency_order(d);

  const auto& shape = data.shape();
  const std::size_t bx = (shape[0] + 3) / 4;
  const std::size_t by = d >= 2 ? (shape[1] + 3) / 4 : 1;
  const std::size_t bz = d >= 3 ? (shape[2] + 3) / 4 : 1;

  BitWriter bits;
  float block[64];
  Int iblock[64];
  UInt ublock[64];
  UInt reordered[64];

  for (std::size_t z = 0; z < bz; ++z) {
    for (std::size_t y = 0; y < by; ++y) {
      for (std::size_t x = 0; x < bx; ++x) {
        const std::size_t origin[3] = {x * 4, y * 4, z * 4};
        gather_block(data, origin, d, block);

        float peak = 0.0F;
        for (std::size_t i = 0; i < size; ++i)
          peak = std::max(peak, std::abs(block[i]));
        if (peak == 0.0F || !std::isfinite(peak)) {
          bits.put_bit(0);  // empty (or non-finite, clamped-to-zero) block
          continue;
        }
        bits.put_bit(1);

        const int emax = float_exponent(peak);
        bits.put_bits(static_cast<std::uint64_t>(emax + kEmaxBias), 16);

        // Block-floating-point: v * 2^(intprec - 2 - emax).
        const double scale =
            std::ldexp(1.0, static_cast<int>(kIntPrec) - 2 - emax);
        for (std::size_t i = 0; i < size; ++i)
          iblock[i] = static_cast<Int>(static_cast<double>(block[i]) * scale);

        fwd_transform(iblock, d);
        for (std::size_t i = 0; i < size; ++i)
          ublock[i] = int_to_negabinary(iblock[i]);
        for (std::size_t i = 0; i < size; ++i)
          reordered[i] = ublock[order[i]];

        encode_planes(bits, reordered, size,
                      block_precision(config, emax, d));
      }
    }
  }

  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u8(config.mode == ZfpLikeConfig::Mode::kFixedPrecision ? 0 : 1);
  w.put_u32(config.precision);
  w.put_f64(config.tolerance);
  w.put_u8(static_cast<std::uint8_t>(d));
  for (const std::size_t e : shape) w.put_u64(e);
  w.put_blob(bits.take());
  return w.take();
}

FloatArray zfplike_decompress(std::span<const std::uint8_t> archive) {
  ByteReader r(archive);
  if (r.get_u32() != kMagic) throw FormatError("not a ZFP-like archive");
  ZfpLikeConfig config;
  config.mode = r.get_u8() == 0 ? ZfpLikeConfig::Mode::kFixedPrecision
                                : ZfpLikeConfig::Mode::kFixedAccuracy;
  config.precision = r.get_u32();
  config.tolerance = r.get_f64();
  const std::size_t d = r.get_u8();
  if (d < 1 || d > 3) throw FormatError("ZFP-like archive: bad rank");
  std::vector<std::size_t> shape(d);
  std::uint64_t total = 1;
  constexpr std::uint64_t kMaxElements = 1ULL << 40;
  for (auto& e : shape) {
    const std::uint64_t v = r.get_u64();
    if (v == 0 || v > kMaxElements)
      throw FormatError("ZFP-like archive: implausible extent");
    total *= v;
    if (total > kMaxElements)
      throw FormatError("ZFP-like archive: implausible total");
    e = static_cast<std::size_t>(v);
  }
  const std::vector<std::uint8_t> payload = r.get_blob();
  // Every 4^d block emits at least its one occupancy bit, so the claimed
  // shape can cover at most 64 values per payload bit. Anything larger is
  // a forged header that must not size the output allocation.
  if (total > static_cast<std::uint64_t>(payload.size()) * 512)
    throw FormatError("ZFP-like archive: shape exceeds payload capacity");

  const std::size_t size = std::size_t{1} << (2 * d);
  const std::vector<std::size_t> order = sequency_order(d);

  FloatArray out(shape);
  const std::size_t bx = (shape[0] + 3) / 4;
  const std::size_t by = d >= 2 ? (shape[1] + 3) / 4 : 1;
  const std::size_t bz = d >= 3 ? (shape[2] + 3) / 4 : 1;

  BitReader bits(payload);
  float block[64];
  Int iblock[64];
  UInt ublock[64];
  UInt reordered[64];

  for (std::size_t z = 0; z < bz; ++z) {
    for (std::size_t y = 0; y < by; ++y) {
      for (std::size_t x = 0; x < bx; ++x) {
        const std::size_t origin[3] = {x * 4, y * 4, z * 4};
        if (bits.get_bit() == 0) {
          std::fill_n(block, size, 0.0F);
          scatter_block(out, origin, d, block);
          continue;
        }
        const int emax =
            static_cast<int>(bits.get_bits(16)) - kEmaxBias;

        decode_planes(bits, reordered, size,
                      block_precision(config, emax, d));
        for (std::size_t i = 0; i < size; ++i)
          ublock[order[i]] = reordered[i];
        for (std::size_t i = 0; i < size; ++i)
          iblock[i] = negabinary_to_int(ublock[i]);
        inv_transform(iblock, d);

        const double scale =
            std::ldexp(1.0, emax + 2 - static_cast<int>(kIntPrec));
        for (std::size_t i = 0; i < size; ++i)
          block[i] =
              static_cast<float>(static_cast<double>(iblock[i]) * scale);
        scatter_block(out, origin, d, block);
      }
    }
  }
  return out;
}

}  // namespace dpz
