#include "baselines/dctzlike.h"

#include "codec/bytes.h"
#include "codec/quantizer.h"
#include "codec/zlib_codec.h"
#include "core/blocking.h"
#include "dsp/dct.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

constexpr std::uint32_t kMagic = 0x315A4344;  // "DCZ1"

}  // namespace

std::vector<std::uint8_t> dctzlike_compress(const FloatArray& data,
                                            const DctzLikeConfig& config) {
  DPZ_REQUIRE(data.rank() >= 1 && data.rank() <= 4,
              "DCTZ-like supports rank 1-4 data");
  DPZ_REQUIRE(data.size() >= 8, "DCTZ-like needs at least 8 values");

  const double eb = config.resolve_bound(data.value_range());
  DPZ_REQUIRE(eb > 0.0, "error bound must resolve to a positive value");

  const BlockLayout layout = choose_block_layout(data.size());
  Matrix blocks = to_blocks(data.flat(), layout);
  const DctPlan plan(layout.n);
  parallel_for(0, layout.m, [&](std::size_t i) {
    auto row = blocks.row(i);
    plan.forward(row, row);
  });

  QuantizerConfig qcfg;
  qcfg.error_bound = eb;
  qcfg.wide_codes = config.wide_codes;
  const QuantizedStream qs = quantize(blocks.flat(), qcfg);

  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u8(config.wide_codes ? 1 : 0);
  w.put_f64(eb);
  w.put_u8(static_cast<std::uint8_t>(data.rank()));
  for (const std::size_t d : data.shape()) w.put_u64(d);
  w.put_u64(layout.m);
  w.put_u64(layout.n);
  w.put_u64(layout.original_total);
  w.put_u64(qs.outliers.size());

  w.put_u64(qs.codes.size());
  w.put_blob(zlib_compress(qs.codes, config.zlib_level));
  ByteWriter outlier_bytes;
  for (const double v : qs.outliers)
    outlier_bytes.put_f32(static_cast<float>(v));
  w.put_u64(outlier_bytes.size());
  w.put_blob(zlib_compress(outlier_bytes.bytes(), config.zlib_level));
  return w.take();
}

FloatArray dctzlike_decompress(std::span<const std::uint8_t> archive) {
  ByteReader r(archive);
  if (r.get_u32() != kMagic) throw FormatError("not a DCTZ-like archive");
  QuantizerConfig qcfg;
  qcfg.wide_codes = r.get_u8() != 0;
  qcfg.error_bound = r.get_f64();
  if (!(qcfg.error_bound > 0.0))
    throw FormatError("DCTZ-like archive: bad error bound");

  const std::uint8_t rank = r.get_u8();
  if (rank < 1 || rank > 4) throw FormatError("DCTZ-like archive: bad rank");
  std::vector<std::size_t> shape(rank);
  std::uint64_t total = 1;
  constexpr std::uint64_t kMaxElements = 1ULL << 40;
  for (auto& d : shape) {
    const std::uint64_t e = r.get_u64();
    if (e == 0 || e > kMaxElements)
      throw FormatError("DCTZ-like archive: implausible extent");
    total *= e;
    if (total > kMaxElements)
      throw FormatError("DCTZ-like archive: implausible total");
    d = static_cast<std::size_t>(e);
  }

  BlockLayout layout;
  layout.m = static_cast<std::size_t>(r.get_u64());
  layout.n = static_cast<std::size_t>(r.get_u64());
  layout.original_total = static_cast<std::size_t>(r.get_u64());
  layout.padded = layout.m * layout.n != layout.original_total;
  if (total != layout.original_total || layout.m == 0 || layout.n == 0 ||
      layout.m > kMaxElements / layout.n ||
      layout.padded_total() < layout.original_total ||
      layout.padded_total() > 4 * layout.original_total + 16)
    throw FormatError("DCTZ-like archive: inconsistent geometry");

  const std::uint64_t outlier_count = r.get_u64();
  if (outlier_count > layout.padded_total())
    throw FormatError("DCTZ-like archive: implausible outlier count");
  const std::uint64_t code_size = r.get_u64();
  QuantizedStream qs;
  qs.count = layout.m * layout.n;
  qs.codes =
      zlib_decompress(r.get_blob(), static_cast<std::size_t>(code_size));
  if (qs.codes.size() != qs.count * qcfg.code_bytes())
    throw FormatError("DCTZ-like archive: code section size mismatch");
  const std::uint64_t outlier_bytes = r.get_u64();
  const std::vector<std::uint8_t> outlier_raw =
      zlib_decompress(r.get_blob(), static_cast<std::size_t>(outlier_bytes));
  if (outlier_raw.size() != outlier_count * sizeof(float))
    throw FormatError("DCTZ-like archive: outlier size mismatch");
  ByteReader outlier_reader(outlier_raw);
  qs.outliers.resize(static_cast<std::size_t>(outlier_count));
  for (double& v : qs.outliers)
    v = static_cast<double>(outlier_reader.get_f32());

  Matrix blocks(layout.m, layout.n);
  dequantize(qs, qcfg, blocks.flat());

  const DctPlan plan(layout.n);
  parallel_for(0, layout.m, [&](std::size_t i) {
    auto row = blocks.row(i);
    plan.inverse(row, row);
  });

  FloatArray out(shape);
  from_blocks(blocks, layout, out.flat());
  return out;
}

}  // namespace dpz
