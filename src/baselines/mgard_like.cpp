#include "baselines/mgard_like.h"

#include <cmath>

#include "codec/bytes.h"
#include "codec/huffman.h"
#include "codec/zlib_codec.h"
#include "util/error.h"

namespace dpz {

namespace {

constexpr std::uint32_t kMagic = 0x3147474D;  // "MGG1"
constexpr std::uint32_t kRadius = 32768;
constexpr std::uint32_t kAlphabet = 65536;
constexpr std::uint32_t kUnpredictable = 0;

// Levels of the hierarchical transform on an n-node axis: spacings
// 1, 2, 4, ... while 2*spacing < n contribute one level each.
std::size_t level_count(std::size_t n) {
  std::size_t levels = 0;
  for (std::size_t s = 1; 2 * s < n; s *= 2) ++levels;
  return levels;
}

}  // namespace

void hierarchical_forward_1d(std::span<double> data, std::size_t n,
                             std::size_t stride) {
  // At spacing s, nodes at odd multiples of s are "fine": replace each by
  // its residual against linear interpolation of its spacing-2s coarse
  // neighbors. Coarse nodes (even multiples of 2s) pass through to the
  // next level.
  for (std::size_t s = 1; 2 * s < n; s *= 2) {
    for (std::size_t i = s; i < n; i += 2 * s) {
      const double left = data[(i - s) * stride];
      const double pred = (i + s < n)
                              ? 0.5 * (left + data[(i + s) * stride])
                              : left;
      data[i * stride] -= pred;
    }
  }
}

void hierarchical_inverse_1d(std::span<double> data, std::size_t n,
                             std::size_t stride) {
  if (n < 3) return;  // the forward pass had no levels either
  // Undo the levels coarse-to-fine: the forward spacings were
  // 1, 2, 4, ... while 2*s < n; replay them in reverse.
  std::size_t top = 1;
  while (2 * (2 * top) < n) top *= 2;
  for (std::size_t s = top;; s /= 2) {
    for (std::size_t i = s; i < n; i += 2 * s) {
      const double left = data[(i - s) * stride];
      const double pred = (i + s < n)
                              ? 0.5 * (left + data[(i + s) * stride])
                              : left;
      data[i * stride] += pred;
    }
    if (s == 1) break;
  }
}

namespace {

// Applies the 1-D transform along every axis of a rank-1..3 tensor.
void transform_all_axes(std::vector<double>& tensor,
                        const std::vector<std::size_t>& dims, bool forward) {
  std::vector<std::size_t> strides(dims.size(), 1);
  for (std::size_t d = dims.size() - 1; d-- > 0;)
    strides[d] = strides[d + 1] * dims[d + 1];
  std::size_t total = 1;
  for (const std::size_t d : dims) total *= d;

  for (std::size_t axis = 0; axis < dims.size(); ++axis) {
    const std::size_t n = dims[axis];
    if (n < 2) continue;
    const std::size_t stride = strides[axis];
    const std::size_t lines = total / n;

    // Enumerate line starts: all index combinations with axis index 0.
    std::vector<std::size_t> idx(dims.size(), 0);
    for (std::size_t li = 0; li < lines; ++li) {
      std::size_t start = 0;
      for (std::size_t d = 0; d < dims.size(); ++d)
        start += idx[d] * strides[d];

      const std::span<double> whole(tensor);
      if (forward) {
        hierarchical_forward_1d(whole.subspan(start), n, stride);
      } else {
        hierarchical_inverse_1d(whole.subspan(start), n, stride);
      }

      for (std::size_t d = dims.size(); d-- > 0;) {
        if (d == axis) continue;
        if (++idx[d] < dims[d]) break;
        idx[d] = 0;
      }
    }
  }
}

std::size_t total_levels(const std::vector<std::size_t>& dims) {
  std::size_t levels = 0;
  for (const std::size_t n : dims) levels += level_count(n);
  return std::max<std::size_t>(levels, 1);
}

}  // namespace

std::vector<std::uint8_t> mgard_like_compress(
    const FloatArray& data, const MgardLikeConfig& config) {
  DPZ_REQUIRE(data.rank() >= 1 && data.rank() <= 3,
              "MGARD-like supports rank 1-3 data");
  DPZ_REQUIRE(!data.empty(), "cannot compress empty data");

  const double eb = config.resolve_bound(data.value_range());
  DPZ_REQUIRE(eb > 0.0, "error bound must resolve to a positive value");

  const std::vector<std::size_t> dims = data.shape();
  std::vector<double> tensor(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    tensor[i] = static_cast<double>(data[i]);
  transform_all_axes(tensor, dims, /*forward=*/true);

  // Error accumulates at most once per level per axis on the inverse
  // path, so a per-coefficient budget of eb / total_levels guarantees the
  // pointwise bound.
  const double q = eb / static_cast<double>(total_levels(dims) + 1);
  const double inv_step = 1.0 / (2.0 * q);

  std::vector<std::uint32_t> codes(tensor.size(), kUnpredictable);
  std::vector<double> raw_values;  // f64: outliers keep the exact bound
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    const double scaled = tensor[i] * inv_step;
    if (std::abs(scaled) < static_cast<double>(kRadius) - 1) {
      const long long bin = std::llround(scaled);
      codes[i] = static_cast<std::uint32_t>(bin +
                                            static_cast<long long>(kRadius));
      tensor[i] = static_cast<double>(bin) * 2.0 * q;  // reconstructed coeff
    } else {
      codes[i] = kUnpredictable;
      raw_values.push_back(tensor[i]);
    }
  }

  const std::vector<std::uint8_t> huffman = huffman_encode(codes, kAlphabet);
  ByteWriter raw_bytes;
  for (const double v : raw_values) raw_bytes.put_f64(v);

  ByteWriter w;
  w.put_u32(kMagic);
  w.put_f64(eb);
  w.put_f64(q);
  w.put_u8(static_cast<std::uint8_t>(data.rank()));
  for (const std::size_t d : dims) w.put_u64(d);
  w.put_u64(raw_values.size());
  w.put_u64(huffman.size());
  w.put_blob(zlib_compress(huffman, config.zlib_level));
  w.put_u64(raw_bytes.size());
  w.put_blob(zlib_compress(raw_bytes.bytes(), config.zlib_level));
  return w.take();
}

FloatArray mgard_like_decompress(std::span<const std::uint8_t> archive) {
  ByteReader r(archive);
  if (r.get_u32() != kMagic) throw FormatError("not an MGARD-like archive");
  const double eb = r.get_f64();
  const double q = r.get_f64();
  if (!(eb > 0.0) || !(q > 0.0))
    throw FormatError("MGARD-like archive: bad bounds");

  const std::uint8_t rank = r.get_u8();
  if (rank < 1 || rank > 3)
    throw FormatError("MGARD-like archive: bad rank");
  std::vector<std::size_t> dims(rank);
  std::size_t total = 1;
  for (auto& d : dims) {
    d = static_cast<std::size_t>(r.get_u64());
    if (d == 0 || d > (1ULL << 32))
      throw FormatError("MGARD-like archive: implausible extent");
    total *= d;
    if (total > (1ULL << 40))
      throw FormatError("MGARD-like archive: implausible total");
  }

  const std::uint64_t raw_count = r.get_u64();
  if (raw_count > total)
    throw FormatError("MGARD-like archive: implausible raw-value count");
  const std::uint64_t huffman_size = r.get_u64();
  const std::vector<std::uint8_t> huffman =
      zlib_decompress(r.get_blob(), static_cast<std::size_t>(huffman_size));
  const std::uint64_t raw_bytes_size = r.get_u64();
  if (raw_bytes_size != raw_count * sizeof(double))
    throw FormatError("MGARD-like archive: raw section size mismatch");
  const std::vector<std::uint8_t> raw_bytes = zlib_decompress(
      r.get_blob(), static_cast<std::size_t>(raw_bytes_size));

  const std::vector<std::uint32_t> codes = huffman_decode(huffman);
  if (codes.size() != total)
    throw FormatError("MGARD-like archive: code count mismatch");

  ByteReader raw_reader(raw_bytes);
  std::vector<double> tensor(total);
  for (std::size_t i = 0; i < total; ++i) {
    if (codes[i] == kUnpredictable) {
      tensor[i] = raw_reader.get_f64();
    } else {
      const long long bin = static_cast<long long>(codes[i]) -
                            static_cast<long long>(kRadius);
      tensor[i] = static_cast<double>(bin) * 2.0 * q;
    }
  }

  transform_all_axes(tensor, dims, /*forward=*/false);

  FloatArray out(dims);
  for (std::size_t i = 0; i < total; ++i)
    out[i] = static_cast<float>(tensor[i]);
  return out;
}

}  // namespace dpz
