#include "baselines/szlike.h"

#include <cmath>

#include "codec/bytes.h"
#include "codec/huffman.h"
#include "codec/zlib_codec.h"
#include "util/error.h"

namespace dpz {

namespace {

constexpr std::uint32_t kMagic = 0x315A4C53;  // "SLZ1"
constexpr std::uint32_t kRadius = 32768;      // quantization center
constexpr std::uint32_t kAlphabet = 65536;    // 2^16 bins incl. marker
constexpr std::uint32_t kUnpredictable = 0;   // reserved bin code

// Order-1 Lorenzo predictor over the reconstructed field. dims has rank
// 1-3 (trailing dimension fastest). Out-of-range neighbors read as 0.
class Lorenzo {
 public:
  Lorenzo(std::span<const std::size_t> dims, std::span<const double> field)
      : rank_(dims.size()), field_(field) {
    std::size_t stride = 1;
    for (std::size_t d = rank_; d-- > 0;) {
      strides_[d] = stride;
      stride *= dims[d];
    }
    for (std::size_t d = 0; d < rank_; ++d) dims_[d] = dims[d];
  }

  [[nodiscard]] double predict(std::size_t flat,
                               const std::size_t idx[3]) const {
    switch (rank_) {
      case 1:
        return at(idx[0] >= 1, flat - strides_[0]);
      case 2: {
        const bool i = idx[0] >= 1, j = idx[1] >= 1;
        return at(i, flat - strides_[0]) + at(j, flat - strides_[1]) -
               at(i && j, flat - strides_[0] - strides_[1]);
      }
      default: {  // rank 3: inclusion-exclusion over the 7 back neighbors
        const bool i = idx[0] >= 1, j = idx[1] >= 1, k = idx[2] >= 1;
        const std::size_t si = strides_[0], sj = strides_[1],
                          sk = strides_[2];
        return at(i, flat - si) + at(j, flat - sj) + at(k, flat - sk) -
               at(i && j, flat - si - sj) - at(i && k, flat - si - sk) -
               at(j && k, flat - sj - sk) +
               at(i && j && k, flat - si - sj - sk);
      }
    }
  }

 private:
  [[nodiscard]] double at(bool in_range, std::size_t flat) const {
    return in_range ? field_[flat] : 0.0;
  }

  std::size_t rank_;
  std::span<const double> field_;
  std::size_t strides_[3] = {0, 0, 0};
  std::size_t dims_[3] = {1, 1, 1};
};

// Advances a rank-1..3 odometer (trailing index fastest).
void advance_odometer(std::size_t idx[3], std::span<const std::size_t> dims) {
  for (std::size_t d = dims.size(); d-- > 0;) {
    if (++idx[d] < dims[d]) return;
    idx[d] = 0;
  }
}

}  // namespace

std::vector<std::uint8_t> szlike_compress(const FloatArray& data,
                                          const SzLikeConfig& config) {
  DPZ_REQUIRE(data.rank() >= 1 && data.rank() <= 3,
              "SZ-like supports rank 1-3 data");
  DPZ_REQUIRE(!data.empty(), "cannot compress empty data");

  const double eb = config.resolve_bound(data.value_range());
  DPZ_REQUIRE(eb > 0.0, "error bound must resolve to a positive value");
  const double inv_step = 1.0 / (2.0 * eb);

  const std::size_t n = data.size();
  std::vector<double> reconstructed(n, 0.0);
  std::vector<std::uint32_t> codes(n, kUnpredictable);
  std::vector<float> raw_values;

  const Lorenzo predictor(data.shape(), reconstructed);
  std::size_t idx[3] = {0, 0, 0};
  for (std::size_t flat = 0; flat < n; ++flat) {
    const double v = static_cast<double>(data[flat]);
    const double pred = predictor.predict(flat, idx);
    const double diff = v - pred;
    // Pre-check the magnitude before rounding: llround on a huge quotient
    // (tiny bound, wild residual) would overflow into undefined behavior.
    const double scaled = diff * inv_step;
    const bool in_band = std::abs(scaled) < static_cast<double>(kRadius) - 1;
    const long long q = in_band ? std::llround(scaled) : 0;

    // The decompressor emits float32, so validate the bound on the
    // float-cast reconstruction; both sides keep the float-rounded value
    // in the prediction field to stay in lockstep.
    const float rec = static_cast<float>(
        pred + static_cast<double>(q) * 2.0 * eb);
    if (in_band && q > -static_cast<long long>(kRadius) &&
        q < static_cast<long long>(kRadius) - 1 &&
        std::abs(static_cast<double>(rec) - v) <= eb) {
      const std::uint32_t code =
          static_cast<std::uint32_t>(q + static_cast<long long>(kRadius));
      codes[flat] = code;
      reconstructed[flat] = static_cast<double>(rec);
    } else {
      codes[flat] = kUnpredictable;
      raw_values.push_back(data[flat]);
      reconstructed[flat] = static_cast<double>(data[flat]);
    }
    advance_odometer(idx, data.shape());
  }

  const std::vector<std::uint8_t> huffman =
      huffman_encode(codes, kAlphabet);
  const std::vector<std::uint8_t> huffman_z =
      zlib_compress(huffman, config.zlib_level);

  ByteWriter raw_bytes;
  for (const float v : raw_values) raw_bytes.put_f32(v);
  const std::vector<std::uint8_t> raw_z =
      zlib_compress(raw_bytes.bytes(), config.zlib_level);

  ByteWriter w;
  w.put_u32(kMagic);
  w.put_f64(eb);
  w.put_u8(static_cast<std::uint8_t>(data.rank()));
  for (const std::size_t d : data.shape()) w.put_u64(d);
  w.put_u64(raw_values.size());
  w.put_u64(huffman.size());
  w.put_blob(huffman_z);
  w.put_blob(raw_z);
  return w.take();
}

FloatArray szlike_decompress(std::span<const std::uint8_t> archive) {
  ByteReader r(archive);
  if (r.get_u32() != kMagic) throw FormatError("not an SZ-like archive");
  const double eb = r.get_f64();
  if (!(eb > 0.0)) throw FormatError("SZ-like archive: bad error bound");
  const std::uint8_t rank = r.get_u8();
  if (rank < 1 || rank > 3) throw FormatError("SZ-like archive: bad rank");
  std::vector<std::size_t> shape(rank);
  std::uint64_t n = 1;
  constexpr std::uint64_t kMaxElements = 1ULL << 40;
  for (auto& d : shape) {
    const std::uint64_t e = r.get_u64();
    if (e == 0 || e > kMaxElements)
      throw FormatError("SZ-like archive: implausible extent");
    n *= e;
    if (n > kMaxElements)
      throw FormatError("SZ-like archive: implausible total");
    d = static_cast<std::size_t>(e);
  }
  const std::uint64_t raw_count = r.get_u64();
  if (raw_count > n)
    throw FormatError("SZ-like archive: implausible raw-value count");
  const std::uint64_t huffman_size = r.get_u64();
  const std::vector<std::uint8_t> huffman =
      zlib_decompress(r.get_blob(), static_cast<std::size_t>(huffman_size));
  const std::vector<std::uint8_t> raw_bytes = zlib_decompress(
      r.get_blob(), static_cast<std::size_t>(raw_count) * sizeof(float));

  const std::vector<std::uint32_t> codes = huffman_decode(huffman);
  if (codes.size() != n)
    throw FormatError("SZ-like archive: code count mismatch");

  ByteReader raw_reader(raw_bytes);
  std::vector<double> reconstructed(n, 0.0);
  const Lorenzo predictor(shape, reconstructed);
  std::size_t idx[3] = {0, 0, 0};
  for (std::size_t flat = 0; flat < n; ++flat) {
    if (codes[flat] == kUnpredictable) {
      reconstructed[flat] = static_cast<double>(raw_reader.get_f32());
    } else {
      const double pred = predictor.predict(flat, idx);
      const long long q = static_cast<long long>(codes[flat]) -
                          static_cast<long long>(kRadius);
      // Match the compressor's float-rounded reconstruction exactly.
      reconstructed[flat] = static_cast<double>(static_cast<float>(
          pred + static_cast<double>(q) * 2.0 * eb));
    }
    advance_odometer(idx, shape);
  }

  FloatArray out(shape);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<float>(reconstructed[i]);
  return out;
}

}  // namespace dpz
