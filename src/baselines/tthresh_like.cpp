#include "baselines/tthresh_like.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "codec/bytes.h"
#include "codec/shuffle.h"
#include "codec/zlib_codec.h"
#include "linalg/eigen_sym.h"
#include "util/error.h"

namespace dpz {

namespace {

constexpr std::uint32_t kMagic = 0x31485454;  // "TTH1"

// Row-major strides for up to rank-3 dims.
std::vector<std::size_t> strides_of(const std::vector<std::size_t>& dims) {
  std::vector<std::size_t> strides(dims.size(), 1);
  for (std::size_t d = dims.size() - 1; d-- > 0;)
    strides[d] = strides[d + 1] * dims[d + 1];
  return strides;
}

// Mode-n unfolding: rows indexed by the mode-n coordinate, columns by the
// remaining coordinates in row-major order of the other modes.
Matrix unfold(const std::vector<double>& tensor,
              const std::vector<std::size_t>& dims, std::size_t mode) {
  const std::size_t total = tensor.size();
  const std::size_t rows = dims[mode];
  const std::size_t cols = total / rows;
  const std::vector<std::size_t> strides = strides_of(dims);

  Matrix out(rows, cols);
  std::vector<std::size_t> idx(dims.size(), 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    std::size_t col = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (d == mode) continue;
      col = col * dims[d] + idx[d];
    }
    out(idx[mode], col) = tensor[flat];

    for (std::size_t d = dims.size(); d-- > 0;) {
      if (++idx[d] < dims[d]) break;
      idx[d] = 0;
    }
  }
  return out;
}

// Inverse of unfold with the same (dims, mode) convention. `rows` may
// differ from dims[mode] when a mode has been projected; the caller
// passes the output dims.
std::vector<double> fold(const Matrix& m,
                         const std::vector<std::size_t>& dims,
                         std::size_t mode) {
  std::size_t total = 1;
  for (const std::size_t d : dims) total *= d;
  DPZ_REQUIRE(m.rows() == dims[mode] && m.rows() * m.cols() == total,
              "fold dimension mismatch");

  std::vector<double> tensor(total);
  std::vector<std::size_t> idx(dims.size(), 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    std::size_t col = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (d == mode) continue;
      col = col * dims[d] + idx[d];
    }
    tensor[flat] = m(idx[mode], col);

    for (std::size_t d = dims.size(); d-- > 0;) {
      if (++idx[d] < dims[d]) break;
      idx[d] = 0;
    }
  }
  return tensor;
}

// Tensor-times-matrix along `mode`: result = op(U) applied to the mode-n
// fibers. transpose=true applies U^T (projection: mode size becomes
// u.cols()), transpose=false applies U (back-projection: mode size
// becomes u.rows()). `dims` is updated to the output shape.
std::vector<double> ttm(const std::vector<double>& tensor,
                        std::vector<std::size_t>& dims, std::size_t mode,
                        const Matrix& u, bool transpose) {
  const Matrix unfolded = unfold(tensor, dims, mode);
  const Matrix projected =
      transpose ? u.transpose_multiply(unfolded) : u.multiply(unfolded);
  dims[mode] = transpose ? u.cols() : u.rows();
  return fold(projected, dims, mode);
}

void put_f32_section(ByteWriter& w, std::span<const double> values,
                     int level) {
  ByteWriter raw;
  for (const double v : values) raw.put_f32(static_cast<float>(v));
  const auto shuffled = shuffle_bytes(raw.bytes(), sizeof(float));
  w.put_u64(shuffled.size());
  w.put_blob(zlib_compress(shuffled, level));
}

std::vector<double> get_f32_section(ByteReader& r, std::size_t count) {
  const std::uint64_t raw_size = r.get_u64();
  if (raw_size != count * sizeof(float))
    throw FormatError("TTHRESH-like: section size mismatch");
  const auto shuffled =
      zlib_decompress(r.get_blob(), static_cast<std::size_t>(raw_size));
  const auto raw = unshuffle_bytes(shuffled, sizeof(float));
  ByteReader reader(raw);
  std::vector<double> out(count);
  for (double& v : out) v = static_cast<double>(reader.get_f32());
  return out;
}

}  // namespace

std::vector<std::uint8_t> tthresh_like_compress(
    const FloatArray& data, const TthreshLikeConfig& config) {
  DPZ_REQUIRE(data.rank() >= 2 && data.rank() <= 3,
              "TTHRESH-like supports rank 2-3 tensors");
  DPZ_REQUIRE(config.energy > 0.0 && config.energy <= 1.0,
              "energy must be in (0, 1]");
  for (const std::size_t d : data.shape())
    DPZ_REQUIRE(d >= 2, "every tensor mode needs at least 2 entries");

  const std::vector<std::size_t> dims = data.shape();
  std::vector<double> tensor(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    tensor[i] = static_cast<double>(data[i]);

  // HOSVD factors: eigenvectors of each mode's Gram matrix.
  std::vector<Matrix> factors;
  for (std::size_t mode = 0; mode < dims.size(); ++mode) {
    const Matrix unfolded = unfold(tensor, dims, mode);
    const Matrix gram = unfolded.multiply(unfolded.transposed());
    factors.push_back(eigen_sym(gram).vectors);
  }

  // Core: project every mode.
  std::vector<double> core = tensor;
  std::vector<std::size_t> core_dims = dims;
  for (std::size_t mode = 0; mode < dims.size(); ++mode)
    core = ttm(core, core_dims, mode, factors[mode], /*transpose=*/true);

  // Energy thresholding: keep the largest-magnitude coefficients until
  // `energy` of the total is covered. Orthonormality of the HOSVD makes
  // the discarded energy equal the squared Frobenius error.
  std::vector<std::size_t> order(core.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(core[a]) > std::abs(core[b]);
  });
  double total_energy = 0.0;
  for (const double c : core) total_energy += c * c;

  std::vector<bool> keep(core.size(), false);
  double kept_energy = 0.0;
  std::size_t kept_count = 0;
  for (const std::size_t i : order) {
    if (kept_energy >= config.energy * total_energy && kept_count > 0)
      break;
    keep[i] = true;
    kept_energy += core[i] * core[i];
    ++kept_count;
  }

  // Tucker rank truncation: the kept coefficients cluster in the leading
  // corner of the core (factors are sorted by eigenvalue), so only the
  // leading r_n columns of each factor and the leading r-box of the core
  // need to be stored. This is what makes the tensor format pay off —
  // full square factors would exceed a 2-D input's own size.
  std::vector<std::size_t> ranks(dims.size(), 1);
  {
    std::vector<std::size_t> idx(dims.size(), 0);
    for (std::size_t flat = 0; flat < core.size(); ++flat) {
      if (keep[flat]) {
        for (std::size_t d = 0; d < dims.size(); ++d)
          ranks[d] = std::max(ranks[d], idx[d] + 1);
      }
      for (std::size_t d = dims.size(); d-- > 0;) {
        if (++idx[d] < core_dims[d]) break;
        idx[d] = 0;
      }
    }
  }

  // Crop the core and the mask to the rank box.
  std::size_t box_total = 1;
  for (const std::size_t r : ranks) box_total *= r;
  std::vector<double> kept_values;
  kept_values.reserve(kept_count);
  std::vector<std::uint8_t> mask((box_total + 7) / 8, 0);
  {
    std::vector<std::size_t> idx(dims.size(), 0);
    for (std::size_t flat = 0; flat < core.size(); ++flat) {
      bool inside = true;
      for (std::size_t d = 0; d < dims.size(); ++d)
        if (idx[d] >= ranks[d]) inside = false;
      if (inside && keep[flat]) {
        std::size_t box_flat = 0;
        for (std::size_t d = 0; d < dims.size(); ++d)
          box_flat = box_flat * ranks[d] + idx[d];
        mask[box_flat >> 3] |=
            static_cast<std::uint8_t>(1U << (box_flat & 7U));
        kept_values.push_back(core[flat]);
      }
      for (std::size_t d = dims.size(); d-- > 0;) {
        if (++idx[d] < core_dims[d]) break;
        idx[d] = 0;
      }
    }
  }

  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u8(static_cast<std::uint8_t>(dims.size()));
  for (const std::size_t d : dims) w.put_u64(d);
  for (const std::size_t r : ranks) w.put_u64(r);
  w.put_f64(config.energy);
  w.put_u64(kept_values.size());

  for (std::size_t mode = 0; mode < dims.size(); ++mode) {
    // Leading ranks[mode] columns only.
    std::vector<double> flat;
    flat.reserve(dims[mode] * ranks[mode]);
    for (std::size_t i = 0; i < dims[mode]; ++i)
      for (std::size_t j = 0; j < ranks[mode]; ++j)
        flat.push_back(factors[mode](i, j));
    put_f32_section(w, flat, config.zlib_level);
  }
  w.put_u64(mask.size());
  w.put_blob(zlib_compress(mask, config.zlib_level));
  put_f32_section(w, kept_values, config.zlib_level);
  return w.take();
}

FloatArray tthresh_like_decompress(std::span<const std::uint8_t> archive) {
  ByteReader r(archive);
  if (r.get_u32() != kMagic) throw FormatError("not a TTHRESH-like archive");
  const std::uint8_t rank = r.get_u8();
  if (rank < 2 || rank > 3)
    throw FormatError("TTHRESH-like archive: bad rank");
  std::vector<std::size_t> dims(rank);
  std::size_t total = 1;
  for (auto& d : dims) {
    d = static_cast<std::size_t>(r.get_u64());
    if (d < 2 || d > (1ULL << 24))
      throw FormatError("TTHRESH-like archive: implausible extent");
    total *= d;
    if (total > (1ULL << 40))
      throw FormatError("TTHRESH-like archive: implausible total");
  }
  std::vector<std::size_t> ranks(rank);
  std::size_t box_total = 1;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    ranks[d] = static_cast<std::size_t>(r.get_u64());
    if (ranks[d] == 0 || ranks[d] > dims[d])
      throw FormatError("TTHRESH-like archive: bad rank box");
    box_total *= ranks[d];
  }
  r.get_f64();  // recorded energy target (informational)
  const std::uint64_t kept_count = r.get_u64();
  if (kept_count > box_total)
    throw FormatError("TTHRESH-like archive: kept count exceeds core");

  std::vector<Matrix> factors;
  for (std::size_t mode = 0; mode < dims.size(); ++mode) {
    const std::vector<double> flat =
        get_f32_section(r, dims[mode] * ranks[mode]);
    factors.emplace_back(dims[mode], ranks[mode], flat);
  }

  const std::uint64_t mask_size = r.get_u64();
  if (mask_size != (box_total + 7) / 8)
    throw FormatError("TTHRESH-like archive: mask size mismatch");
  const std::vector<std::uint8_t> mask =
      zlib_decompress(r.get_blob(), static_cast<std::size_t>(mask_size));
  const std::vector<double> kept_values =
      get_f32_section(r, static_cast<std::size_t>(kept_count));

  std::vector<double> core(box_total, 0.0);
  std::size_t next = 0;
  for (std::size_t i = 0; i < box_total; ++i) {
    if ((mask[i >> 3] >> (i & 7U)) & 1U) {
      if (next >= kept_values.size())
        throw FormatError("TTHRESH-like archive: mask/values mismatch");
      core[i] = kept_values[next++];
    }
  }
  if (next != kept_values.size())
    throw FormatError("TTHRESH-like archive: unconsumed kept values");

  // Back-project every mode (each TTM expands mode d from ranks[d] back
  // to dims[d]).
  std::vector<double> tensor = core;
  std::vector<std::size_t> cur_dims = ranks;
  for (std::size_t mode = 0; mode < dims.size(); ++mode)
    tensor = ttm(tensor, cur_dims, mode, factors[mode],
                 /*transpose=*/false);

  FloatArray out(dims);
  for (std::size_t i = 0; i < total; ++i)
    out[i] = static_cast<float>(tensor[i]);
  return out;
}

}  // namespace dpz
