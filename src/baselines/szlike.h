// SZ-like baseline: a from-scratch reimplementation of the SZ 1.4/2.0
// core pipeline the paper compares against (SZ binaries are not available
// offline; see DESIGN.md SS2).
//
// Pipeline: Lorenzo prediction (order-1, dimension-matched) -> linear
// error-bounded quantization of the prediction residual into 2^16 bins
// (bin 0 reserved for unpredictable points, which are stored verbatim) ->
// canonical Huffman over the bin codes -> zlib. Prediction runs on
// *reconstructed* values so compressor and decompressor stay in lockstep
// and the absolute error bound holds pointwise:
// |decompressed - original| <= eb for every point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.h"

namespace dpz {

struct SzLikeConfig {
  /// Absolute error bound. Ignored when relative_bound > 0.
  double error_bound = 1e-3;
  /// Value-range-relative bound: eb = relative_bound * (max - min).
  double relative_bound = 0.0;
  int zlib_level = 6;

  [[nodiscard]] double resolve_bound(double value_range) const {
    if (relative_bound > 0.0) {
      const double r = value_range > 0.0 ? value_range : 1.0;
      return relative_bound * r;
    }
    return error_bound;
  }
};

/// Compresses `data` (rank 1-3) with the SZ-like pipeline.
std::vector<std::uint8_t> szlike_compress(const FloatArray& data,
                                          const SzLikeConfig& config);

/// Decompresses an SZ-like archive.
FloatArray szlike_decompress(std::span<const std::uint8_t> archive);

/// Compressor-interface adapter.
class SzLikeCompressor final : public Compressor {
 public:
  explicit SzLikeCompressor(SzLikeConfig config = {}) : config_(config) {}

  std::vector<std::uint8_t> compress(const FloatArray& data) override {
    return szlike_compress(data, config_);
  }
  FloatArray decompress(std::span<const std::uint8_t> archive) override {
    return szlike_decompress(archive);
  }
  [[nodiscard]] std::string name() const override { return "SZ-like"; }

  [[nodiscard]] SzLikeConfig& config() { return config_; }

 private:
  SzLikeConfig config_;
};

}  // namespace dpz
