/* C API for the DPZ compressor.
 *
 * Mirrors the embedding surface real scientific compressors (SZ, ZFP)
 * expose so DPZ can be called from C, Fortran (via ISO_C_BINDING), or an
 * I/O-library filter. The API is a thin shim over the C++ core: no
 * exceptions cross the boundary (errors become status codes + a
 * per-thread message), and all buffers are caller-visible malloc'd
 * memory released with dpz_free().
 *
 * Usage:
 *   dpz_options opt;
 *   dpz_options_default(&opt);
 *   opt.tve = 0.99999;
 *   unsigned char* archive = NULL; size_t archive_size = 0;
 *   size_t dims[2] = {1800, 3600};
 *   int rc = dpz_compress_float(data, dims, 2, &opt,
 *                               &archive, &archive_size);
 *   ...
 *   float* out = NULL; size_t out_count = 0;
 *   rc = dpz_decompress_float(archive, archive_size, &out, &out_count);
 *   dpz_free(archive); dpz_free(out);
 */
#ifndef DPZ_C_H_
#define DPZ_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Status codes. Values mirror dpz::StatusCode (util/error.h) so a status
 * survives the C boundary unchanged. DPZ_ERR_FORMAT is the recoverable
 * "malformed archive" status: decoding untrusted bytes either succeeds or
 * returns it — never crashes. DPZ_ERR_CHECKSUM is its format-v2
 * refinement (a stored CRC32C did not match the bytes). DPZ_PARTIAL is
 * not an error: a best-effort chunked decode completed but lost frames —
 * the output is valid, with lost frames holding the fill value.
 * DPZ_ERR_RESOURCE, DPZ_ERR_DEADLINE, and DPZ_ERR_CANCELLED report
 * resource-governance outcomes (options max_memory_bytes / deadline_ms /
 * cancel): the operation was refused or aborted cleanly, no output was
 * produced, and retrying with a larger budget / later deadline is
 * legitimate — the input bytes are not the problem. */
enum {
  DPZ_OK = 0,
  DPZ_ERR_INVALID_ARGUMENT = 1,
  DPZ_ERR_FORMAT = 2,
  DPZ_ERR_INTERNAL = 3,
  DPZ_ERR_IO = 4,
  DPZ_ERR_NUMERICAL = 5,
  DPZ_ERR_CHECKSUM = 6,
  DPZ_PARTIAL = 7,
  DPZ_ERR_RESOURCE = 8,
  DPZ_ERR_DEADLINE = 9,
  DPZ_ERR_CANCELLED = 10
};

/* Short stable name for a status code ("ok", "format", ...). */
const char* dpz_status_name(int code);

/* Scheme selectors (paper SS V-A). */
enum {
  DPZ_SCHEME_LOOSE = 0,  /* DPZ-l: P = 1e-3, 1-byte codes */
  DPZ_SCHEME_STRICT = 1  /* DPZ-s: P = 1e-4, 2-byte codes */
};

/* k-selection methods (Algorithm 1). */
enum {
  DPZ_SELECT_TVE = 0,      /* explained-variance threshold */
  DPZ_SELECT_KNEE_1D = 1,  /* knee point, 1-D interpolation */
  DPZ_SELECT_KNEE_POLY = 2 /* knee point, polynomial fit */
};

/* ---- Cooperative cancellation -------------------------------------------
 *
 * A cancel token is shared between the thread driving a compression or
 * decompression and any thread that wants to stop it. Attach the token
 * to dpz_options.cancel, start the operation, and call dpz_cancel() from
 * anywhere: the operation observes the request at its next checkpoint
 * (stage boundaries and between loop strips — bounded latency) and
 * returns DPZ_ERR_CANCELLED with no output. Tokens are reusable across
 * calls until freed, but a cancelled token stays cancelled. */
typedef struct dpz_cancel_token dpz_cancel_token;

/* Creates a token (free with dpz_cancel_token_free; NULL on OOM). */
dpz_cancel_token* dpz_cancel_token_new(void);

/* Releases a token. Safe on NULL. Operations still running with this
 * token must not outlive it. */
void dpz_cancel_token_free(dpz_cancel_token* token);

/* Requests cancellation. Thread-safe, idempotent, safe on NULL. */
void dpz_cancel(dpz_cancel_token* token);

/* 1 when cancellation has been requested, else 0 (0 on NULL). */
int dpz_cancel_requested(const dpz_cancel_token* token);

/* Compression options.
 *
 * ABI note: this struct may grow at the end in future releases (the
 * `threads` field was appended this way), which changes sizeof(dpz_options)
 * and is an ABI break for clients holding the old layout. Always compile
 * against the header that matches the linked library, and ALWAYS initialize
 * the struct with dpz_options_default() before setting fields — never by
 * memset or field-by-field assignment — so newly appended fields get their
 * defaults instead of garbage. */
typedef struct dpz_options {
  int scheme;           /* DPZ_SCHEME_* */
  int selection;        /* DPZ_SELECT_* */
  double tve;           /* threshold for DPZ_SELECT_TVE */
  int use_sampling;     /* Algorithm 2 on/off */
  double error_bound;   /* 0 = scheme default */
  double dct_keep_fraction; /* 1.0 = no truncation */
  int zlib_level;       /* 1..9 */
  /* Worker threads for the hot loops; 0 = hardware concurrency.
   * Archives are bit-identical for every value — the thread count is a
   * wall-clock knob only, never a format parameter (the determinism
   * tests assert this). */
  int threads;
  /* Damage handling for dpz_chunked_decompress_float. 0 (strict): the
   * first damaged frame fails the whole decode. 1 (best effort): intact
   * frames decode normally, damaged frames are filled with `fill_value`
   * and reported via dpz_decode_report / DPZ_PARTIAL. */
  int best_effort;
  /* Value written into lost frames in best-effort mode (default 0.0). */
  double fill_value;
  /* When non-NULL: telemetry is enabled for the duration of the call and
   * the recorded spans are written to this path as Chrome trace-event
   * JSON (loadable in Perfetto) when the call completes. Tracing never
   * changes archive bytes. A failed trace write does NOT fail the call;
   * it leaves a note in dpz_last_error(). Appended per the ABI-growth
   * policy above — dpz_options_default() sets it to NULL. */
  const char* trace_path;
  /* ---- Resource governance (appended per the ABI-growth policy) ------
   *
   * Limits never change output bytes: a governed call either produces
   * the identical archive/reconstruction or fails with DPZ_ERR_RESOURCE
   * / DPZ_ERR_DEADLINE / DPZ_ERR_CANCELLED and no output. */
  /* Peak-memory budget in bytes for the call's working set (matrices,
   * section buffers, the output); 0 = unlimited. Decodes additionally
   * price the header-claimed geometry against the budget up front, so a
   * forged archive claiming terabytes is rejected before any large
   * allocation (DPZ_ERR_RESOURCE). */
  uint64_t max_memory_bytes;
  /* Wall-clock deadline in milliseconds from the start of the call;
   * 0 = none. Expiry is observed at the next checkpoint and returns
   * DPZ_ERR_DEADLINE. */
  double deadline_ms;
  /* Cooperative cancel token (see dpz_cancel_token_new); NULL = none.
   * The token must stay alive for the duration of the call. */
  const dpz_cancel_token* cancel;
  /* ---- Frame parity (appended per the ABI-growth policy) -------------
   *
   * Reed-Solomon erasure coding for dpz_chunked_compress_float: groups
   * of parity_k compressed frames get parity_m parity shards, so up to
   * parity_m lost frames per group reconstruct byte-exactly on decode
   * (reported in dpz_decode_report.frames_repaired). parity_m = 0
   * (default) disables parity and writes the v2 container byte
   * layout. Requires parity_k >= 1 and parity_k + parity_m <= 255 when
   * enabled. */
  int parity_k;
  int parity_m;
} dpz_options;

/* Fills `opt` with the library defaults (strict scheme, five-nine TVE). */
void dpz_options_default(dpz_options* opt);

/* Compresses `count(dims)` floats of rank `rank` (1..4). On success the
 * archive is malloc'd into *archive / *archive_size. Returns DPZ_OK or an
 * error code; on error the outputs are untouched. */
int dpz_compress_float(const float* data, const size_t* dims, size_t rank,
                       const dpz_options* opt, unsigned char** archive,
                       size_t* archive_size);

/* Double-precision variant. */
int dpz_compress_double(const double* data, const size_t* dims, size_t rank,
                        const dpz_options* opt, unsigned char** archive,
                        size_t* archive_size);

/* Decompresses a float archive. *out receives a malloc'd buffer of
 * *out_count floats (the flattened data); use dpz_archive_shape to
 * recover the dimensions. */
int dpz_decompress_float(const unsigned char* archive, size_t archive_size,
                         float** out, size_t* out_count);

/* Double-precision variant (archive must hold f64 data). */
int dpz_decompress_double(const unsigned char* archive, size_t archive_size,
                          double** out, size_t* out_count);

/* Decompression with an explicit worker-thread count (0 = hardware
 * concurrency). The reconstruction is bit-identical to the plain
 * variants for every thread count. */
int dpz_decompress_float_mt(const unsigned char* archive,
                            size_t archive_size, int threads, float** out,
                            size_t* out_count);
int dpz_decompress_double_mt(const unsigned char* archive,
                             size_t archive_size, int threads, double** out,
                             size_t* out_count);

/* Options-aware decompression: honors `threads`, `trace_path`, and the
 * resource-governance fields (max_memory_bytes / deadline_ms / cancel).
 * `opt` may be NULL, which is equivalent to the plain variants. The
 * reconstruction is bit-identical to every other variant. */
int dpz_decompress_float_ex(const unsigned char* archive,
                            size_t archive_size, const dpz_options* opt,
                            float** out, size_t* out_count);
int dpz_decompress_double_ex(const unsigned char* archive,
                             size_t archive_size, const dpz_options* opt,
                             double** out, size_t* out_count);

/* Per-frame outcome of a chunked decode (see dpz_chunked_decompress_float).
 * first_lost_frame is (size_t)-1 when no frame was lost.
 *
 * ABI note: like dpz_options, this struct may grow at the end; always
 * zero-populate it through the API, never by layout assumptions. */
typedef struct dpz_decode_report {
  size_t frames_total;
  size_t frames_recovered;
  size_t frames_lost;
  size_t first_lost_frame;
  /* Message of the first lost frame's error ("" when none), truncated. */
  char first_error[240];
  /* Damaged frames rebuilt byte-exactly from Reed-Solomon parity
   * (appended per the ABI-growth policy). Repaired frames also count in
   * frames_recovered; only losses beyond the parity budget appear in
   * frames_lost. */
  size_t frames_repaired;
} dpz_decode_report;

/* Compresses floats into a chunked container of `chunk_values`-sized
 * frames (format "DZC2", or "DZC3" when opt->parity_m > 0 adds
 * Reed-Solomon frame parity). `opt` is required (initialize with
 * dpz_options_default, as with dpz_compress_float); `threads`,
 * `parity_k`/`parity_m`, and the governance fields apply. */
int dpz_chunked_compress_float(const float* data, const size_t* dims,
                               size_t rank, size_t chunk_values,
                               const dpz_options* opt,
                               unsigned char** archive,
                               size_t* archive_size);

/* Decompresses a chunked container (format "DZCK"/"DZC2"/"DZC3"). `opt`
 * may be NULL for strict defaults; otherwise `threads`, `best_effort`,
 * and `fill_value` apply. `report` may be NULL. Returns DPZ_OK on a full
 * reconstruction, DPZ_PARTIAL when best-effort lost frames (the output
 * buffer is still produced, lost frames filled), or an error code with
 * the outputs untouched. Damaged frames covered by parity repair
 * transparently in both policies (report->frames_repaired). */
int dpz_chunked_decompress_float(const unsigned char* container,
                                 size_t container_size,
                                 const dpz_options* opt, float** out,
                                 size_t* out_count,
                                 dpz_decode_report* report);

/* Double-precision variant: identical semantics, output widened to
 * doubles (containers store f32 frames; fill_value is applied without
 * narrowing). */
int dpz_chunked_decompress_double(const unsigned char* container,
                                  size_t container_size,
                                  const dpz_options* opt, double** out,
                                  size_t* out_count,
                                  dpz_decode_report* report);

/* Reads the shape from an archive header. `dims` must hold at least 4
 * entries; *rank receives the actual rank. */
int dpz_archive_shape(const unsigned char* archive, size_t archive_size,
                      size_t* dims, size_t* rank);

/* 1 if the archive holds double-precision data, 0 for single, negative
 * error code on a malformed archive. */
int dpz_archive_is_double(const unsigned char* archive,
                          size_t archive_size);

/* ---- Telemetry -----------------------------------------------------------
 *
 * Process-wide switch over the span recorder and metrics registry
 * (src/obs). Off by default; when off every instrumented site costs a
 * single relaxed atomic load. Enabling telemetry never changes archive
 * bytes. See docs/OBSERVABILITY.md for the span/metric taxonomy. */

/* Turns telemetry recording on (non-zero) or off (0). */
void dpz_telemetry_enable(int enabled);

/* 1 when telemetry recording is currently on, else 0. */
int dpz_telemetry_enabled(void);

/* Counter snapshot of the process-wide metrics registry. Field names
 * mirror the registered counter names (docs/OBSERVABILITY.md).
 *
 * ABI note: like dpz_options, this struct may grow at the end in future
 * releases; always populate it with dpz_metrics_snapshot(). */
typedef struct dpz_metrics {
  uint64_t compress_calls;
  uint64_t decompress_calls;
  uint64_t bytes_in;
  uint64_t bytes_archive;
  uint64_t bytes_decoded;
  uint64_t bytes_stage12;
  uint64_t bytes_stage3;
  uint64_t bytes_zlib_payload;
  uint64_t bytes_side;
  uint64_t quantizer_values;
  uint64_t quantizer_saturated;
  uint64_t outlier_count;
  uint64_t stored_raw_fallbacks;
  uint64_t crc_checks;
  uint64_t crc_failures;
  uint64_t io_read_eintr;
  uint64_t io_write_eintr;
  uint64_t io_short_reads;
  uint64_t io_short_writes;
  uint64_t frames_encoded;
  uint64_t frames_decoded;
  uint64_t frames_recovered;
  uint64_t frames_lost;
  /* Resource-governance outcomes (appended per the ABI-growth policy):
   * decodes refused by the pre-flight admission check, operations
   * aborted by a cancel request, and operations aborted by deadline
   * expiry. */
  uint64_t admission_rejected;
  uint64_t cancelled;
  uint64_t deadline_exceeded;
  /* Frame-parity outcomes (appended per the ABI-growth policy): damaged
   * frames rebuilt byte-exactly from Reed-Solomon parity, and damaged
   * frames whose loss exceeded the parity budget. */
  uint64_t frames_repaired;
  uint64_t repair_failed;
} dpz_metrics;

/* Copies the current counter values into *out. Returns DPZ_OK, or
 * DPZ_ERR_INVALID_ARGUMENT when out is NULL. */
int dpz_metrics_snapshot(dpz_metrics* out);

/* Renders the full registry (counters AND histograms, including bucket
 * arrays and per-histogram sums) as one JSON object into a malloc'd
 * NUL-terminated string the caller frees with dpz_free(). Returns
 * DPZ_OK, DPZ_ERR_INVALID_ARGUMENT on NULL, DPZ_ERR_RESOURCE on OOM. */
int dpz_metrics_json(char** text);

/* Renders the registry in the Prometheus text exposition format:
 * counters as dpz_<name>_total, histograms as dpz_<name> with the
 * cumulative le-labeled bucket ladder plus _sum/_count, each family
 * preceded by # HELP and # TYPE lines. Same ownership contract as
 * dpz_metrics_json. */
int dpz_metrics_prometheus(char** text);

/* Zeroes every counter and histogram bucket in the registry. */
void dpz_metrics_reset(void);

/* Writes the spans recorded so far to `path` as Chrome trace-event JSON.
 * Returns DPZ_OK, DPZ_ERR_INVALID_ARGUMENT on NULL, DPZ_ERR_IO when the
 * file cannot be written. */
int dpz_trace_write(const char* path);

/* Drops every span recorded so far. */
void dpz_trace_clear(void);

/* Frees any buffer returned by this API. Safe on NULL. */
void dpz_free(void* ptr);

/* Message describing the most recent error on this thread ("" if none).
 * The pointer stays valid until the next API call on the same thread. */
const char* dpz_last_error(void);

/* Human-readable diagnostic report for the most recent error recorded by
 * the structured event log (process-wide, any thread): the failing
 * event with its archive offset, frame index, section name, and active
 * span stack, followed by the flight-recorder breadcrumbs that led up
 * to it. Returns "" when no error has been recorded. The pointer stays
 * valid until the next dpz_last_error_report() call on the same thread.
 * Always available — the flight recorder captures error events even
 * with telemetry off (see docs/OBSERVABILITY.md). */
const char* dpz_last_error_report(void);

#ifdef __cplusplus
}
#endif

#endif /* DPZ_C_H_ */
