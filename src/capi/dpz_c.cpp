#include "capi/dpz_c.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <span>
#include <string>

#include "core/chunked.h"
#include "core/dpz.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/resource.h"

/* Opaque cancel-token handle: a CancelSource whose token the options
 * translation hands to the pipeline (dpz_c.h). */
struct dpz_cancel_token {
  dpz::CancelSource source;
};

namespace {

thread_local std::string g_last_error;

int set_error(int code, const char* what) {
  g_last_error = what;
  return code;
}

int translate_exception() {
  try {
    throw;
  } catch (const dpz::Error& e) {
    // dpz::StatusCode values mirror the DPZ_* enum, so the classification
    // every dpz exception carries crosses the boundary unchanged. The
    // breadcrumb marks where the error left the library.
    dpz::obs::log_error(dpz::obs::Event::kErrorRaised, e.code(), {},
                        e.what());
    return set_error(static_cast<int>(e.code()), e.what());
  } catch (const std::bad_alloc&) {
    // The allocator gave out before (or without) a configured budget
    // tripping. Same caller remedy as an admission rejection — free
    // memory or lower the working set — so it maps to the same status
    // instead of aborting through an unhandled exception.
    return set_error(DPZ_ERR_RESOURCE, "allocation failed (out of memory)");
  } catch (const std::exception& e) {
    return set_error(DPZ_ERR_INTERNAL, e.what());
  } catch (...) {
    return set_error(DPZ_ERR_INTERNAL, "unknown error");
  }
}

// Honors opt->trace_path for the span of one API call: telemetry goes on
// for the call's duration and the trace is flushed to the file on the way
// out. A flush failure never fails the primary operation — the archive or
// reconstruction the caller asked for exists either way — it leaves a
// note in dpz_last_error() instead (documented in dpz_c.h).
class TraceScope {
 public:
  explicit TraceScope(const dpz_options* opt) {
    if (opt != nullptr && opt->trace_path != nullptr) {
      path_ = opt->trace_path;
      enabled_.emplace(true);
    }
  }
  ~TraceScope() {
    if (!path_.empty() &&
        !dpz::obs::TraceRecorder::instance().write_file(path_))
      g_last_error = "failed to write trace file: " + path_;
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::string path_;
  std::optional<dpz::obs::ScopedTelemetry> enabled_;
};

// Translates the options' governance fields. Called at the start of the
// API call, so deadline_ms is relative to now (the documented contract).
dpz::ResourceLimits to_limits(const dpz_options* opt) {
  dpz::ResourceLimits limits;
  if (opt == nullptr) return limits;
  limits.max_memory_bytes = opt->max_memory_bytes;
  if (opt->deadline_ms > 0.0)
    limits.deadline_ns =
        dpz::ResourceLimits::deadline_after_ms(opt->deadline_ms);
  if (opt->cancel != nullptr) limits.cancel = opt->cancel->source.token();
  return limits;
}

unsigned threads_of(const dpz_options* opt) {
  return opt != nullptr && opt->threads > 0
             ? static_cast<unsigned>(opt->threads)
             : 0;
}

dpz::DpzConfig to_config(const dpz_options* opt) {
  dpz::DpzConfig config = opt->scheme == DPZ_SCHEME_LOOSE
                              ? dpz::DpzConfig::loose()
                              : dpz::DpzConfig::strict();
  switch (opt->selection) {
    case DPZ_SELECT_KNEE_1D:
      config.selection = dpz::KSelectionMethod::kKneePoint;
      config.knee_fit = dpz::KneeFit::kFit1D;
      break;
    case DPZ_SELECT_KNEE_POLY:
      config.selection = dpz::KSelectionMethod::kKneePoint;
      config.knee_fit = dpz::KneeFit::kFitPolyn;
      break;
    default:
      config.selection = dpz::KSelectionMethod::kTveThreshold;
      break;
  }
  config.tve = opt->tve;
  config.use_sampling = opt->use_sampling != 0;
  config.error_bound = opt->error_bound;
  config.dct_keep_fraction = opt->dct_keep_fraction;
  config.zlib_level = opt->zlib_level;
  config.threads =
      opt->threads > 0 ? static_cast<unsigned>(opt->threads) : 0;
  config.limits = to_limits(opt);
  return config;
}

// Copies a byte vector into a malloc'd buffer the C caller owns.
int export_bytes(const std::vector<std::uint8_t>& bytes,
                 unsigned char** out, size_t* out_size) {
  auto* buffer = static_cast<unsigned char*>(std::malloc(
      bytes.empty() ? 1 : bytes.size()));
  if (buffer == nullptr)
    return set_error(DPZ_ERR_INTERNAL, "out of memory");
  std::memcpy(buffer, bytes.data(), bytes.size());
  *out = buffer;
  *out_size = bytes.size();
  return DPZ_OK;
}

template <typename T>
int export_values(const dpz::NdArray<T>& array, T** out,
                  size_t* out_count) {
  auto* buffer =
      static_cast<T*>(std::malloc(array.size() * sizeof(T)));
  if (buffer == nullptr)
    return set_error(DPZ_ERR_INTERNAL, "out of memory");
  std::memcpy(buffer, array.flat().data(), array.size() * sizeof(T));
  *out = buffer;
  *out_count = array.size();
  return DPZ_OK;
}

template <typename T, typename Decompress>
int decompress_impl(const unsigned char* archive, size_t archive_size,
                    T** out, size_t* out_count,
                    const Decompress& decompress) {
  if (archive == nullptr || out == nullptr || out_count == nullptr)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  try {
    const dpz::NdArray<T> array =
        decompress(std::span<const std::uint8_t>{archive, archive_size});
    g_last_error.clear();
    return export_values(array, out, out_count);
  } catch (...) {
    return translate_exception();
  }
}

template <typename T>
int compress_impl(const T* data, const size_t* dims, size_t rank,
                  const dpz_options* opt, unsigned char** archive,
                  size_t* archive_size) {
  if (data == nullptr || dims == nullptr || opt == nullptr ||
      archive == nullptr || archive_size == nullptr)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  if (rank == 0 || rank > 4)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "rank must be 1..4");
  try {
    const TraceScope trace(opt);
    std::vector<std::size_t> shape(dims, dims + rank);
    std::size_t total = 1;
    for (const std::size_t d : shape) total *= d;
    dpz::NdArray<T> array(shape, std::vector<T>(data, data + total));
    const std::vector<std::uint8_t> bytes =
        dpz::dpz_compress(array, to_config(opt));
    g_last_error.clear();
    return export_bytes(bytes, archive, archive_size);
  } catch (...) {
    return translate_exception();
  }
}

// Options translation for container-level calls. fill_value crosses the
// boundary unchanged now that ChunkedConfig stores it as double.
dpz::ChunkedConfig to_chunked_config(const dpz_options* opt) {
  dpz::ChunkedConfig config;
  if (opt == nullptr) return config;
  config.threads = threads_of(opt);
  config.decode_policy = opt->best_effort != 0
                             ? dpz::DecodePolicy::kBestEffort
                             : dpz::DecodePolicy::kStrict;
  config.fill_value = opt->fill_value;
  config.dpz.limits = to_limits(opt);
  return config;
}

template <typename T, typename Decompress>
int chunked_decompress_impl(const unsigned char* container,
                            size_t container_size, const dpz_options* opt,
                            T** out, size_t* out_count,
                            dpz_decode_report* report,
                            const Decompress& decompress) {
  if (container == nullptr || out == nullptr || out_count == nullptr)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  if (report != nullptr) {
    *report = dpz_decode_report{};
    report->first_lost_frame = static_cast<size_t>(-1);
  }
  try {
    const TraceScope trace(opt);
    const dpz::ChunkedConfig config = to_chunked_config(opt);
    dpz::DecodeReport cpp_report;
    const dpz::NdArray<T> array = decompress(
        std::span<const std::uint8_t>{container, container_size}, config,
        &cpp_report);
    if (report != nullptr) {
      report->frames_total = cpp_report.frames_total;
      report->frames_recovered = cpp_report.frames_recovered;
      report->frames_lost = cpp_report.lost.size();
      report->frames_repaired = cpp_report.frames_repaired;
      if (!cpp_report.lost.empty()) {
        report->first_lost_frame = cpp_report.lost.front().frame;
        const std::string& msg = cpp_report.lost.front().message;
        const size_t n =
            std::min(msg.size(), sizeof(report->first_error) - 1);
        msg.copy(report->first_error, n);
        report->first_error[n] = '\0';
      }
    }
    g_last_error.clear();
    const int rc = export_values(array, out, out_count);
    if (rc != DPZ_OK) return rc;
    return cpp_report.complete() ? DPZ_OK : DPZ_PARTIAL;
  } catch (...) {
    return translate_exception();
  }
}

}  // namespace

extern "C" {

void dpz_options_default(dpz_options* opt) {
  if (opt == nullptr) return;
  opt->scheme = DPZ_SCHEME_STRICT;
  opt->selection = DPZ_SELECT_TVE;
  opt->tve = 0.99999;
  opt->use_sampling = 0;
  opt->error_bound = 0.0;
  opt->dct_keep_fraction = 1.0;
  opt->zlib_level = 6;
  opt->threads = 0;
  opt->best_effort = 0;
  opt->fill_value = 0.0;
  opt->trace_path = nullptr;
  opt->max_memory_bytes = 0;
  opt->deadline_ms = 0.0;
  opt->cancel = nullptr;
  opt->parity_k = 16;
  opt->parity_m = 0;
}

dpz_cancel_token* dpz_cancel_token_new(void) {
  return new (std::nothrow) dpz_cancel_token();
}

void dpz_cancel_token_free(dpz_cancel_token* token) { delete token; }

void dpz_cancel(dpz_cancel_token* token) {
  if (token != nullptr) token->source.request_cancel();
}

int dpz_cancel_requested(const dpz_cancel_token* token) {
  return token != nullptr && token->source.token().cancel_requested() ? 1
                                                                      : 0;
}

void dpz_telemetry_enable(int enabled) {
  dpz::obs::set_telemetry_enabled(enabled != 0);
}

int dpz_telemetry_enabled(void) {
  return dpz::obs::telemetry_enabled() ? 1 : 0;
}

int dpz_metrics_snapshot(dpz_metrics* out) {
  if (out == nullptr)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  const dpz::obs::MetricsSnapshot snap =
      dpz::obs::MetricsRegistry::instance().snapshot();
  using dpz::obs::Counter;
  *out = dpz_metrics{};
  out->compress_calls = snap.counter(Counter::kCompressCalls);
  out->decompress_calls = snap.counter(Counter::kDecompressCalls);
  out->bytes_in = snap.counter(Counter::kBytesIn);
  out->bytes_archive = snap.counter(Counter::kBytesArchive);
  out->bytes_decoded = snap.counter(Counter::kBytesDecoded);
  out->bytes_stage12 = snap.counter(Counter::kBytesStage12);
  out->bytes_stage3 = snap.counter(Counter::kBytesStage3);
  out->bytes_zlib_payload = snap.counter(Counter::kBytesZlibPayload);
  out->bytes_side = snap.counter(Counter::kBytesSide);
  out->quantizer_values = snap.counter(Counter::kQuantValues);
  out->quantizer_saturated = snap.counter(Counter::kQuantSaturated);
  out->outlier_count = snap.counter(Counter::kOutliers);
  out->stored_raw_fallbacks = snap.counter(Counter::kStoredRawFallbacks);
  out->crc_checks = snap.counter(Counter::kCrcChecks);
  out->crc_failures = snap.counter(Counter::kCrcFailures);
  out->io_read_eintr = snap.counter(Counter::kIoReadEintr);
  out->io_write_eintr = snap.counter(Counter::kIoWriteEintr);
  out->io_short_reads = snap.counter(Counter::kIoShortReads);
  out->io_short_writes = snap.counter(Counter::kIoShortWrites);
  out->frames_encoded = snap.counter(Counter::kFramesEncoded);
  out->frames_decoded = snap.counter(Counter::kFramesDecoded);
  out->frames_recovered = snap.counter(Counter::kFramesRecovered);
  out->frames_lost = snap.counter(Counter::kFramesLost);
  out->admission_rejected = snap.counter(Counter::kAdmissionRejected);
  out->cancelled = snap.counter(Counter::kCancelledOps);
  out->deadline_exceeded = snap.counter(Counter::kDeadlineExceededOps);
  out->frames_repaired = snap.counter(Counter::kFramesRepaired);
  out->repair_failed = snap.counter(Counter::kRepairFailed);
  return DPZ_OK;
}

// Copies a rendered string into a malloc'd NUL-terminated buffer.
static int export_string(const std::string& text, char** out) {
  if (out == nullptr)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  auto* buffer = static_cast<char*>(std::malloc(text.size() + 1));
  if (buffer == nullptr)
    return set_error(DPZ_ERR_RESOURCE, "out of memory");
  std::memcpy(buffer, text.c_str(), text.size() + 1);
  *out = buffer;
  g_last_error.clear();
  return DPZ_OK;
}

int dpz_metrics_json(char** text) {
  return export_string(
      dpz::obs::MetricsRegistry::instance().snapshot().to_json(), text);
}

int dpz_metrics_prometheus(char** text) {
  return export_string(
      dpz::obs::MetricsRegistry::instance().snapshot().to_prometheus(),
      text);
}

void dpz_metrics_reset(void) {
  dpz::obs::MetricsRegistry::instance().reset();
}

int dpz_trace_write(const char* path) {
  if (path == nullptr)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  if (!dpz::obs::TraceRecorder::instance().write_file(path))
    return set_error(DPZ_ERR_IO,
                     "cannot write trace file");
  g_last_error.clear();
  return DPZ_OK;
}

void dpz_trace_clear(void) { dpz::obs::TraceRecorder::instance().clear(); }

int dpz_chunked_decompress_float(const unsigned char* container,
                                 size_t container_size,
                                 const dpz_options* opt, float** out,
                                 size_t* out_count,
                                 dpz_decode_report* report) {
  return chunked_decompress_impl<float>(
      container, container_size, opt, out, out_count, report,
      [](std::span<const std::uint8_t> bytes,
         const dpz::ChunkedConfig& config, dpz::DecodeReport* rep) {
        return dpz::chunked_decompress(bytes, config, rep);
      });
}

int dpz_chunked_decompress_double(const unsigned char* container,
                                  size_t container_size,
                                  const dpz_options* opt, double** out,
                                  size_t* out_count,
                                  dpz_decode_report* report) {
  return chunked_decompress_impl<double>(
      container, container_size, opt, out, out_count, report,
      [](std::span<const std::uint8_t> bytes,
         const dpz::ChunkedConfig& config, dpz::DecodeReport* rep) {
        return dpz::chunked_decompress_f64(bytes, config, rep);
      });
}

int dpz_chunked_compress_float(const float* data, const size_t* dims,
                               size_t rank, size_t chunk_values,
                               const dpz_options* opt,
                               unsigned char** archive,
                               size_t* archive_size) {
  if (data == nullptr || dims == nullptr || opt == nullptr ||
      archive == nullptr || archive_size == nullptr)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  if (rank == 0 || rank > 4)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "rank must be 1..4");
  try {
    const TraceScope trace(opt);
    std::vector<std::size_t> shape(dims, dims + rank);
    std::size_t total = 1;
    for (const std::size_t d : shape) total *= d;
    const dpz::FloatArray array(shape,
                                std::vector<float>(data, data + total));
    dpz::ChunkedConfig config;
    config.dpz = to_config(opt);
    config.chunk_values = chunk_values;
    config.threads = threads_of(opt);
    if (opt->parity_m > 0) {
      config.parity_k =
          opt->parity_k > 0 ? static_cast<unsigned>(opt->parity_k) : 0;
      config.parity_m = static_cast<unsigned>(opt->parity_m);
    }
    const std::vector<std::uint8_t> bytes =
        dpz::chunked_compress(array, config);
    g_last_error.clear();
    return export_bytes(bytes, archive, archive_size);
  } catch (...) {
    return translate_exception();
  }
}

int dpz_compress_float(const float* data, const size_t* dims, size_t rank,
                       const dpz_options* opt, unsigned char** archive,
                       size_t* archive_size) {
  return compress_impl(data, dims, rank, opt, archive, archive_size);
}

int dpz_compress_double(const double* data, const size_t* dims, size_t rank,
                        const dpz_options* opt, unsigned char** archive,
                        size_t* archive_size) {
  return compress_impl(data, dims, rank, opt, archive, archive_size);
}

int dpz_decompress_float(const unsigned char* archive, size_t archive_size,
                         float** out, size_t* out_count) {
  return decompress_impl<float>(
      archive, archive_size, out, out_count,
      [](std::span<const std::uint8_t> a) { return dpz::dpz_decompress(a); });
}

int dpz_decompress_double(const unsigned char* archive, size_t archive_size,
                          double** out, size_t* out_count) {
  return decompress_impl<double>(
      archive, archive_size, out, out_count,
      [](std::span<const std::uint8_t> a) {
        return dpz::dpz_decompress_f64(a);
      });
}

int dpz_decompress_float_mt(const unsigned char* archive,
                            size_t archive_size, int threads, float** out,
                            size_t* out_count) {
  const unsigned n = threads > 0 ? static_cast<unsigned>(threads) : 0;
  return decompress_impl<float>(
      archive, archive_size, out, out_count,
      [n](std::span<const std::uint8_t> a) {
        return dpz::dpz_decompress(a, 0, n);
      });
}

int dpz_decompress_double_mt(const unsigned char* archive,
                             size_t archive_size, int threads, double** out,
                             size_t* out_count) {
  const unsigned n = threads > 0 ? static_cast<unsigned>(threads) : 0;
  return decompress_impl<double>(
      archive, archive_size, out, out_count,
      [n](std::span<const std::uint8_t> a) {
        return dpz::dpz_decompress_f64(a, 0, n);
      });
}

int dpz_decompress_float_ex(const unsigned char* archive,
                            size_t archive_size, const dpz_options* opt,
                            float** out, size_t* out_count) {
  return decompress_impl<float>(
      archive, archive_size, out, out_count,
      [opt](std::span<const std::uint8_t> a) {
        const TraceScope trace(opt);
        return dpz::dpz_decompress(a, 0, threads_of(opt), to_limits(opt));
      });
}

int dpz_decompress_double_ex(const unsigned char* archive,
                             size_t archive_size, const dpz_options* opt,
                             double** out, size_t* out_count) {
  return decompress_impl<double>(
      archive, archive_size, out, out_count,
      [opt](std::span<const std::uint8_t> a) {
        const TraceScope trace(opt);
        return dpz::dpz_decompress_f64(a, 0, threads_of(opt),
                                       to_limits(opt));
      });
}

int dpz_archive_shape(const unsigned char* archive, size_t archive_size,
                      size_t* dims, size_t* rank) {
  if (archive == nullptr || dims == nullptr || rank == nullptr)
    return set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  try {
    const dpz::DpzArchiveInfo info =
        dpz::dpz_inspect({archive, archive_size});
    *rank = info.shape.size();
    for (std::size_t d = 0; d < info.shape.size(); ++d)
      dims[d] = info.shape[d];
    g_last_error.clear();
    return DPZ_OK;
  } catch (...) {
    return translate_exception();
  }
}

int dpz_archive_is_double(const unsigned char* archive,
                          size_t archive_size) {
  if (archive == nullptr)
    return -set_error(DPZ_ERR_INVALID_ARGUMENT, "null argument");
  try {
    const dpz::DpzArchiveInfo info =
        dpz::dpz_inspect({archive, archive_size});
    g_last_error.clear();
    return info.double_precision ? 1 : 0;
  } catch (...) {
    return -translate_exception();
  }
}

void dpz_free(void* ptr) { std::free(ptr); }

const char* dpz_last_error(void) { return g_last_error.c_str(); }

const char* dpz_last_error_report(void) {
  thread_local std::string report;
  report = dpz::obs::FlightRecorder::instance().last_error_report();
  return report.c_str();
}

const char* dpz_status_name(int code) {
  if (code < 0) code = -code;  // dpz_archive_is_double negates on error
  return dpz::status_code_name(static_cast<dpz::StatusCode>(code));
}

}  // extern "C"
