// DpzAnalysis: a cached DPZ pipeline for parameter sweeps.
//
// The evaluation harnesses sweep many (TVE, scheme) operating points per
// dataset (Fig 6's rate-distortion curves; Tables II-IV). Re-running the
// full pipeline per point would repeat the block DCT and the O(M^3)
// eigenanalysis dozens of times, so this class runs Stage 1 and the PCA
// fit once and lets callers evaluate any k / quantizer combination against
// the cached state. Byte sizes reported by evaluate() are computed exactly
// like dpz_compress's archive sections, so the accounting matches the real
// compressor bit for bit.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "codec/quantizer.h"
#include "core/blocking.h"
#include "core/dpz.h"
#include "linalg/pca.h"
#include "metrics/metrics.h"

namespace dpz {

class DpzAnalysis {
 public:
  /// Runs Stage 1 (blocking + DCT) and the full PCA fit on `data`.
  /// `forced_layout` overrides the automatic divisor-pair choice (used by
  /// the block-layout ablation bench); it must cover data.size().
  explicit DpzAnalysis(const FloatArray& data, bool standardize = false,
                       std::optional<BlockLayout> forced_layout = {});

  [[nodiscard]] const BlockLayout& layout() const { return layout_; }
  [[nodiscard]] const PcaModel& model() const { return model_; }
  [[nodiscard]] const Matrix& dct_blocks() const { return dct_blocks_; }
  [[nodiscard]] const std::vector<double>& tve_curve() const { return tve_; }

  [[nodiscard]] std::size_t k_for_tve(double threshold) const {
    return model_.k_for_tve(threshold);
  }
  [[nodiscard]] std::size_t k_for_knee(KneeFit fit) const;

  /// Knee detection on the compression-performance (PSNR) curve rather
  /// than the TVE curve — the variant SS IV-B notes "can be applied to
  /// the compression performance curve ... but it requires a
  /// time-consuming reconstruction step". PSNR is evaluated at
  /// `grid_points` k values spread geometrically over [1, M] (each point
  /// costs a full reconstruction), the curve is knee-detected, and the
  /// nearest evaluated k is returned.
  [[nodiscard]] std::size_t k_for_psnr_knee(const QuantizerConfig& qcfg,
                                            KneeFit fit = KneeFit::kFit1D,
                                            std::size_t grid_points = 12)
      const;

  /// Reconstruction with exact (unquantized) k scores — the "Stage 1&2"
  /// output whose PSNR Table IV compares against the quantized pipeline.
  [[nodiscard]] FloatArray reconstruct_exact(std::size_t k) const;

  /// One full operating point: quantized reconstruction plus paper-style
  /// and end-to-end accounting.
  struct Evaluation {
    std::size_t k = 0;
    ErrorStats stage12_error;  ///< exact-score reconstruction vs original
    ErrorStats stage3_error;   ///< quantized reconstruction vs original
    DpzStats accounting;       ///< sizes matching a real archive
    FloatArray reconstructed;  ///< the quantized reconstruction
  };
  /// `score_sigma_scale` overrides the global normalization calibration
  /// (detail::kScoreSigmaScale) for the quantizer-calibration ablation;
  /// 0 keeps the default.
  [[nodiscard]] Evaluation evaluate(std::size_t k,
                                    const QuantizerConfig& qcfg,
                                    int zlib_level = 6,
                                    double score_sigma_scale = 0.0) const;

 private:
  [[nodiscard]] FloatArray reconstruct_from_scores(
      const Matrix& scores) const;

  FloatArray original_;
  bool standardized_;
  BlockLayout layout_;
  Matrix dct_blocks_;
  PcaModel model_;
  std::vector<double> tve_;
};

}  // namespace dpz
