#include "core/verify.h"

#include "codec/bytes.h"
#include "core/archive_detail.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32c.h"
#include "util/error.h"

namespace dpz {

namespace {

using detail::kFormatVersion;
using detail::kFormatVersionLegacy;

// Records the fixed header (bytes [0, cursor) plus the v2 seal) as a
// pseudo-section. Reads the stored CRC for v2, so the cursor lands on
// the first section afterwards.
void walk_header(ByteReader& r, std::span<const std::uint8_t> bytes,
                 std::uint8_t version, VerifyReport& rep) {
  SectionStatus s;
  s.name = "header";
  s.offset = 0;
  if (version >= kFormatVersion) {
    const obs::ScopedSpan crc_span(obs::Span::kCrcCheck);
    obs::count(obs::Counter::kCrcChecks);
    s.has_crc = true;
    s.computed_crc = crc32c(bytes.first(r.position()));
    s.stored_crc = r.get_u32();
    s.crc_ok = s.stored_crc == s.computed_crc;
    if (!s.crc_ok) {
      obs::count(obs::Counter::kCrcFailures);
      rep.problems.push_back("header checksum mismatch");
    }
  }
  s.size = r.position();
  rep.sections.push_back(s);
}

// Walks one compressed section (v1 or v2 framing) without inflating it.
void walk_section(ByteReader& r, std::uint8_t version,
                  const std::string& name, VerifyReport& rep) {
  SectionStatus s;
  s.name = name;
  s.offset = r.position();
  s.raw_size = r.get_u64();
  if (version >= kFormatVersion) {
    s.has_crc = true;
    s.stored_crc = r.get_u32();
  }
  const std::vector<std::uint8_t> blob = r.get_blob();
  if (s.raw_size > blob.size() * 1100 + 4096)
    rep.problems.push_back("section '" + name +
                           "': raw size implausible for its payload");
  if (s.has_crc) {
    const obs::ScopedSpan crc_span(obs::Span::kCrcCheck);
    obs::count(obs::Counter::kCrcChecks);
    s.computed_crc = detail::section_crc(s.raw_size, blob);
    s.crc_ok = s.computed_crc == s.stored_crc;
    if (!s.crc_ok) {
      obs::count(obs::Counter::kCrcFailures);
      rep.problems.push_back("section '" + name + "' checksum mismatch");
    }
  }
  s.size = r.position() - s.offset;
  rep.sections.push_back(s);
}

// Shape fields shared by every header: rank byte + u64 extents. Returns
// the element count; throws FormatError on nonsense (caught by the
// top-level walker).
std::uint64_t walk_shape(ByteReader& r) {
  const std::uint8_t rank = r.get_u8();
  if (rank == 0 || rank > 4) throw FormatError("bad rank");
  std::uint64_t total = 1;
  for (std::uint8_t d = 0; d < rank; ++d) {
    const std::uint64_t e = r.get_u64();
    if (e == 0 || e > (1ULL << 40)) throw FormatError("implausible extent");
    total *= e;
    if (total > (1ULL << 40)) throw FormatError("implausible total");
  }
  return total;
}

void require_consumed(ByteReader& r, VerifyReport& rep) {
  if (r.remaining() != 0)
    rep.problems.push_back(std::to_string(r.remaining()) +
                           " trailing bytes after the last section");
}

void walk_dpz(ByteReader& r, std::span<const std::uint8_t> bytes,
              VerifyReport& rep) {
  const std::uint8_t version = r.get_u8();
  if (version != kFormatVersionLegacy && version != kFormatVersion)
    throw FormatError("unsupported version");
  rep.version = version;
  const std::uint8_t flags = r.get_u8();
  const bool stored_raw = (flags & 0x04) != 0;
  rep.kind = stored_raw ? "stored" : "dpz";
  r.get_f64();  // error bound
  walk_shape(r);
  if (stored_raw) {
    walk_header(r, bytes, version, rep);
    walk_section(r, version, "payload", rep);
  } else {
    r.get_u64();  // m
    r.get_u64();  // n
    r.get_u64();  // original total
    r.get_u32();  // k
    r.get_u64();  // outlier count
    walk_header(r, bytes, version, rep);
    walk_section(r, version, "side", rep);
    walk_section(r, version, "codes", rep);
    walk_section(r, version, "outliers", rep);
  }
  require_consumed(r, rep);
}

void walk_chunked(ByteReader& r, std::span<const std::uint8_t> bytes,
                  std::uint32_t magic, VerifyReport& rep) {
  rep.kind = "chunked";
  std::uint8_t version = kFormatVersionLegacy;
  if (magic == detail::kChunkedMagicV2) {
    version = r.get_u8();
    if (version != kFormatVersion) throw FormatError("unsupported version");
  } else if (magic == detail::kChunkedMagicV3) {
    version = r.get_u8();
    if (version != detail::kChunkedFormatVersion3)
      throw FormatError("unsupported version");
  }
  rep.version = version;
  walk_shape(r);
  const std::uint64_t chunk_values = r.get_u64();
  const std::uint64_t frame_count = r.get_u64();
  const std::size_t entry = version >= kFormatVersion ? 20 : 16;
  if (chunk_values < 8 || frame_count == 0 ||
      frame_count > r.remaining() / entry)
    throw FormatError("inconsistent chunking");

  std::vector<std::uint64_t> offsets(frame_count);
  std::vector<std::uint64_t> sizes(frame_count);
  std::vector<std::uint32_t> crcs(frame_count, 0);
  for (std::uint64_t f = 0; f < frame_count; ++f) {
    offsets[f] = r.get_u64();
    sizes[f] = r.get_u64();
    if (version >= kFormatVersion) crcs[f] = r.get_u32();
  }
  // v3: parity geometry rides in the sealed header after the frame
  // table — k, m, then each group's shard size and per-shard CRCs.
  std::uint64_t parity_k = 0;
  std::uint64_t parity_m = 0;
  std::uint64_t parity_bytes = 0;
  std::vector<std::uint64_t> shard_sizes;
  std::vector<std::uint32_t> parity_crcs;
  if (version >= detail::kChunkedFormatVersion3) {
    parity_k = r.get_u8();
    parity_m = r.get_u8();
    if (parity_k < 1 || parity_m < 1 || parity_k + parity_m > 255)
      throw FormatError("bad parity geometry");
    const std::uint64_t groups = (frame_count + parity_k - 1) / parity_k;
    if (groups > r.remaining() / 8)
      throw FormatError("bad parity geometry");
    shard_sizes.resize(groups);
    parity_crcs.resize(groups * parity_m);
    for (std::uint64_t g = 0; g < groups; ++g) {
      shard_sizes[g] = r.get_u64();
      if (shard_sizes[g] > (1ULL << 40))
        throw FormatError("implausible parity shard");
      // Archive data: the running total must not wrap 64 bits, or the
      // parity-vs-container bound below checks a wrapped sum.
      const std::uint64_t group_bytes = parity_m * shard_sizes[g];
      if (group_bytes > UINT64_MAX - parity_bytes)
        throw FormatError("parity exceeds the container");
      parity_bytes += group_bytes;
      for (std::uint64_t j = 0; j < parity_m; ++j)
        parity_crcs[g * parity_m + j] = r.get_u32();
    }
  }
  walk_header(r, bytes, version, rep);

  const std::size_t frames_begin = r.position();
  const std::uint64_t tail = bytes.size() - frames_begin;
  if (parity_bytes > tail)
    throw FormatError("parity exceeds the container");
  const std::uint64_t frame_area = tail - parity_bytes;
  std::uint64_t expected = 0;
  for (std::uint64_t f = 0; f < frame_count; ++f) {
    if (offsets[f] != expected)
      throw FormatError("non-contiguous frame table");
    if (sizes[f] > frame_area - expected)
      throw FormatError("frame exceeds the container");
    expected += sizes[f];

    SectionStatus s;
    s.name = "frame[" + std::to_string(f) + "]";
    s.offset = frames_begin + offsets[f];
    s.size = sizes[f];
    const auto frame =
        bytes.subspan(static_cast<std::size_t>(s.offset),
                      static_cast<std::size_t>(s.size));
    if (version >= kFormatVersion) {
      const obs::ScopedSpan crc_span(obs::Span::kCrcCheck);
      obs::count(obs::Counter::kCrcChecks);
      s.has_crc = true;
      s.stored_crc = crcs[f];
      s.computed_crc = crc32c(frame);
      s.crc_ok = s.computed_crc == s.stored_crc;
      if (!s.crc_ok) {
        obs::count(obs::Counter::kCrcFailures);
        rep.problems.push_back(s.name + " checksum mismatch");
      }
    }
    rep.sections.push_back(s);

    // Each frame is a self-contained DPZ archive; verify its structure
    // too so a v1 container (no CRCs) still gets a meaningful check.
    const VerifyReport inner = verify_archive(frame);
    if (!inner.ok)
      rep.problems.push_back(
          s.name + ": " +
          (inner.problems.empty() ? "malformed frame"
                                  : inner.problems.front()));
  }
  if (expected != frame_area)
    throw FormatError("frame area size mismatch");

  // Parity shards follow the frames; each carries a header-sealed CRC,
  // so a damaged shard is reported without touching any frame.
  std::uint64_t parity_off = frames_begin + frame_area;
  for (std::size_t g = 0; g < shard_sizes.size(); ++g) {
    for (std::uint64_t j = 0; j < parity_m; ++j) {
      SectionStatus s;
      s.name = "parity[" + std::to_string(g) + "." + std::to_string(j) +
               "]";
      s.offset = parity_off;
      s.size = shard_sizes[g];
      const auto shard =
          bytes.subspan(static_cast<std::size_t>(s.offset),
                        static_cast<std::size_t>(s.size));
      const obs::ScopedSpan crc_span(obs::Span::kCrcCheck);
      obs::count(obs::Counter::kCrcChecks);
      s.has_crc = true;
      s.stored_crc = parity_crcs[g * parity_m + j];
      s.computed_crc = crc32c(shard);
      s.crc_ok = s.computed_crc == s.stored_crc;
      if (!s.crc_ok) {
        obs::count(obs::Counter::kCrcFailures);
        rep.problems.push_back(s.name + " checksum mismatch");
      }
      rep.sections.push_back(s);
      parity_off += shard_sizes[g];
    }
  }
}

void walk_basis(ByteReader& r, std::span<const std::uint8_t> bytes,
                bool v2, VerifyReport& rep) {
  rep.kind = "shared-basis";
  std::uint8_t version = kFormatVersionLegacy;
  if (v2) {
    version = r.get_u8();
    if (version != kFormatVersion) throw FormatError("unsupported version");
  }
  rep.version = version;
  r.get_u8();   // wide codes
  r.get_f64();  // error bound
  walk_shape(r);
  r.get_u64();  // m
  r.get_u64();  // n
  r.get_u64();  // original total
  r.get_u32();  // k
  walk_header(r, bytes, version, rep);
  walk_section(r, version, "basis", rep);
  require_consumed(r, rep);
}

void walk_snapshot(ByteReader& r, std::span<const std::uint8_t> bytes,
                   bool v2, VerifyReport& rep) {
  rep.kind = "snapshot";
  std::uint8_t version = kFormatVersionLegacy;
  if (v2) {
    version = r.get_u8();
    if (version != kFormatVersion) throw FormatError("unsupported version");
  }
  rep.version = version;
  r.get_f64();  // score scale
  r.get_u64();  // outlier count
  walk_header(r, bytes, version, rep);
  walk_section(r, version, "mean", rep);
  walk_section(r, version, "codes", rep);
  walk_section(r, version, "outliers", rep);
  require_consumed(r, rep);
}

}  // namespace

VerifyReport verify_archive(std::span<const std::uint8_t> bytes) {
  VerifyReport rep;
  rep.kind = "unknown";
  try {
    ByteReader r(bytes);
    const std::uint32_t magic = r.get_u32();
    switch (magic) {
      case detail::kDpzMagic:
        walk_dpz(r, bytes, rep);
        break;
      case detail::kChunkedMagicV1:
      case detail::kChunkedMagicV2:
      case detail::kChunkedMagicV3:
        walk_chunked(r, bytes, magic, rep);
        break;
      case detail::kBasisMagicV1:
      case detail::kBasisMagicV2:
        walk_basis(r, bytes, magic == detail::kBasisMagicV2, rep);
        break;
      case detail::kSnapshotMagicV1:
      case detail::kSnapshotMagicV2:
        walk_snapshot(r, bytes, magic == detail::kSnapshotMagicV2, rep);
        break;
      default:
        throw FormatError("not a recognized DPZ container");
    }
  } catch (const Error& e) {
    rep.problems.push_back(e.what());
  }
  rep.ok = rep.problems.empty();
  return rep;
}

std::optional<DecodePreflight> decode_preflight(
    std::span<const std::uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    switch (r.get_u32()) {
      case detail::kDpzMagic:
        return dpz_decode_preflight(dpz_inspect(bytes));
      case detail::kChunkedMagicV1:
      case detail::kChunkedMagicV2:
      case detail::kChunkedMagicV3:
        return chunked_decode_preflight(bytes);
      default:
        return std::nullopt;
    }
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace dpz
