// Stage 1a: block decomposition (SS IV-A of the paper).
//
// DPZ flattens data of any dimensionality to 1-D (preserving the original
// order, which preserves spatial locality) and re-arranges it into an
// M x N matrix: M 1-D blocks ("features") of N datapoints ("samples").
// PCA requires M < N, and the paper's empirical rule is to make N/M the
// smallest divisor ratio greater than 1 — e.g. 128^3 -> M=1024, N=2048,
// and 1800x3600 CESM -> M=1800, N=3600.
//
// When the total has no balanced divisor pair (prime-ish sizes), we fall
// back to a power-of-two M near sqrt(total/2) and pad the tail with
// edge-replicated values; the layout records both sizes so decompression
// can strip the padding.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/matrix.h"

namespace dpz {

struct BlockLayout {
  std::size_t m = 0;               ///< number of blocks (PCA features)
  std::size_t n = 0;               ///< datapoints per block (PCA samples)
  std::size_t original_total = 0;  ///< flattened input size
  bool padded = false;             ///< m*n > original_total

  [[nodiscard]] std::size_t padded_total() const { return m * n; }
};

/// Picks the (M, N) pair for a flattened size following the paper's rule.
/// `max_ratio` bounds how unbalanced an exact divisor pair may be before
/// the padding fallback kicks in. Requires total >= 8.
BlockLayout choose_block_layout(std::size_t total, std::size_t max_ratio = 64);

/// Rearranges flat data into the M x N block matrix (row i = block i).
/// Padding slots replicate the last data value, keeping the tail block
/// smooth instead of introducing an artificial step edge. T is float or
/// double (the pipeline supports both element widths).
template <typename T>
Matrix to_blocks(std::span<const T> flat, const BlockLayout& layout) {
  DPZ_REQUIRE(flat.size() == layout.original_total,
              "input size does not match the layout");
  DPZ_REQUIRE(layout.padded_total() >= flat.size(),
              "layout smaller than the input");

  Matrix blocks(layout.m, layout.n);
  std::size_t idx = 0;
  const double pad_value =
      flat.empty() ? 0.0 : static_cast<double>(flat.back());
  for (std::size_t i = 0; i < layout.m; ++i) {
    double* row = blocks.row(i).data();
    for (std::size_t j = 0; j < layout.n; ++j, ++idx)
      row[j] = idx < flat.size() ? static_cast<double>(flat[idx])
                                 : pad_value;
  }
  return blocks;
}

/// Inverse of to_blocks: writes the first `layout.original_total` values.
template <typename T>
void from_blocks(const Matrix& blocks, const BlockLayout& layout,
                 std::span<T> out) {
  DPZ_REQUIRE(blocks.rows() == layout.m && blocks.cols() == layout.n,
              "block matrix does not match the layout");
  DPZ_REQUIRE(out.size() == layout.original_total,
              "output size does not match the layout");

  std::size_t idx = 0;
  for (std::size_t i = 0; i < layout.m && idx < out.size(); ++i) {
    const double* row = blocks.row(i).data();
    for (std::size_t j = 0; j < layout.n && idx < out.size(); ++j, ++idx)
      out[idx] = static_cast<T>(row[j]);
  }
}

}  // namespace dpz
