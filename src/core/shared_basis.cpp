#include "core/shared_basis.h"

#include <cmath>
#include <optional>

#include "codec/bytes.h"
#include "codec/shuffle.h"
#include "core/archive_detail.h"
#include "dsp/dct.h"
#include "obs/metrics.h"
#include "obs/stage_clock.h"
#include "obs/trace.h"
#include "simd/simd.h"
#include "stats/knee.h"
#include "util/resource.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

// Reads the version byte of a v2 blob/snapshot; v1 tags carry none, so
// the magic alone selects the legacy parse.
std::uint8_t read_shared_version(ByteReader& r, std::uint32_t magic,
                                 std::uint32_t v2_magic) {
  if (magic != v2_magic) return detail::kFormatVersionLegacy;
  const std::uint8_t version = r.get_u8();
  if (version != detail::kFormatVersion)
    throw FormatError("unsupported shared-basis format version");
  return version;
}

// Stage 1 helper shared by train/compress.
Matrix dct_blocks_of(const FloatArray& data, const BlockLayout& layout,
                     const DctPlan& plan) {
  Matrix blocks = to_blocks(data.flat(), layout);
  parallel_for(0, layout.m, [&](std::size_t i) {
    auto row = blocks.row(i);
    plan.forward(row, row);
  });
  return blocks;
}

// Row means of a block matrix (the per-snapshot centering vector).
std::vector<double> row_means(const Matrix& blocks) {
  std::vector<double> mean(blocks.rows());
  for (std::size_t i = 0; i < blocks.rows(); ++i) {
    double sum = 0.0;
    for (const double v : blocks.row(i)) sum += v;
    mean[i] = sum / static_cast<double>(blocks.cols());
  }
  return mean;
}

}  // namespace

SharedBasisCodec SharedBasisCodec::train(const FloatArray& reference,
                                         const DpzConfig& config) {
  DPZ_REQUIRE(reference.size() >= 8, "training snapshot too small");
  const ScopedThreads pool_scope(config.threads);
  const GovernorScope governor_scope(config.limits);
  governed_poll();
  SharedBasisCodec codec;
  codec.threads_ = config.threads;
  codec.limits_ = config.limits;
  codec.layout_ = choose_block_layout(reference.size());
  codec.shape_ = reference.shape();
  codec.qcfg_.error_bound = config.effective_error_bound();
  codec.qcfg_.wide_codes = config.effective_wide_codes();
  codec.zlib_level_ = config.zlib_level;

  codec.plan_.emplace(codec.layout_.n);
  const Matrix blocks = dct_blocks_of(reference, codec.layout_, *codec.plan_);
  // Spectrum-first fit: the full eigenvalue curve drives k selection, and
  // only the k leading eigenvectors are ever solved for (the trailing
  // M - k columns a dense solve would produce are discarded anyway).
  PcaSpectrum spec = fit_pca_spectrum(blocks, config.standardize > 0);
  std::size_t k;
  if (config.selection == KSelectionMethod::kKneePoint) {
    k = detect_knee(spec.model.tve_curve(), config.knee_fit).k;
  } else {
    k = spec.model.k_for_tve(config.tve);
  }
  const PcaModel model = attach_top_components(std::move(spec), k);

  // Campaign drift guard: a global offset in a later snapshot lands in
  // the DC coefficient of every block, i.e. along the all-ones feature
  // direction — which a reference without offset variance never puts in
  // its eigenbasis. Append that direction (orthogonalized against the
  // selected components) so uniform drift stays representable.
  const std::size_t m = codec.layout_.m;
  std::vector<double> dc(m, 1.0 / std::sqrt(static_cast<double>(m)));
  for (std::size_t j = 0; j < k; ++j) {
    double dot = 0.0;
    for (std::size_t i = 0; i < m; ++i) dot += dc[i] * model.components(i, j);
    for (std::size_t i = 0; i < m; ++i) dc[i] -= dot * model.components(i, j);
  }
  double dc_norm2 = 0.0;
  for (const double v : dc) dc_norm2 += v * v;
  const bool add_dc = dc_norm2 > 1e-12;
  if (add_dc) {
    const double inv = 1.0 / std::sqrt(dc_norm2);
    for (double& v : dc) v *= inv;
  }

  // Round the basis through f32 immediately: the serialized blob stores
  // f32 columns, and the encoder must use exactly the basis a restored
  // reader will hold, or reconstructions would differ across the wire.
  const std::size_t cols = k + (add_dc ? 1 : 0);
  codec.basis_ = Matrix(m, cols);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j)
      codec.basis_(i, j) = static_cast<double>(
          static_cast<float>(model.components(i, j)));
    if (add_dc)
      codec.basis_(i, k) =
          static_cast<double>(static_cast<float>(dc[i]));
  }
  return codec;
}

std::vector<std::uint8_t> SharedBasisCodec::serialize() const {
  ByteWriter w;
  w.put_u32(detail::kBasisMagicV2);
  w.put_u8(detail::kFormatVersion);
  w.put_u8(qcfg_.wide_codes ? 1 : 0);
  w.put_f64(qcfg_.error_bound);
  w.put_u8(static_cast<std::uint8_t>(shape_.size()));
  for (const std::size_t d : shape_) w.put_u64(d);
  w.put_u64(layout_.m);
  w.put_u64(layout_.n);
  w.put_u64(layout_.original_total);
  w.put_u32(static_cast<std::uint32_t>(basis_.cols()));
  detail::put_header_crc(w);

  ByteWriter basis_bytes;
  for (std::size_t i = 0; i < basis_.rows(); ++i)
    for (std::size_t j = 0; j < basis_.cols(); ++j)
      basis_bytes.put_f32(static_cast<float>(basis_(i, j)));
  const auto shuffled = shuffle_bytes(basis_bytes.bytes(), sizeof(float));
  detail::put_section(w, shuffled, zlib_level_);
  return w.take();
}

SharedBasisCodec SharedBasisCodec::deserialize(
    std::span<const std::uint8_t> blob) {
  ByteReader r(blob);
  const std::uint32_t magic = r.get_u32();
  if (magic != detail::kBasisMagicV1 && magic != detail::kBasisMagicV2)
    throw FormatError("not a shared-basis blob");
  SharedBasisCodec codec;
  const std::uint8_t version =
      read_shared_version(r, magic, detail::kBasisMagicV2);
  codec.qcfg_.wide_codes = r.get_u8() != 0;
  codec.qcfg_.error_bound = r.get_f64();
  if (!(codec.qcfg_.error_bound > 0.0))
    throw FormatError("shared-basis blob: bad error bound");

  const std::uint8_t rank = r.get_u8();
  if (rank == 0 || rank > 4)
    throw FormatError("shared-basis blob: bad rank");
  codec.shape_.resize(rank);
  std::uint64_t total = 1;
  constexpr std::uint64_t kMaxElements = 1ULL << 40;
  for (auto& d : codec.shape_) {
    const std::uint64_t e = r.get_u64();
    if (e == 0 || e > kMaxElements)
      throw FormatError("shared-basis blob: implausible extent");
    total *= e;
    if (total > kMaxElements)
      throw FormatError("shared-basis blob: implausible total");
    d = static_cast<std::size_t>(e);
  }
  codec.layout_.m = static_cast<std::size_t>(r.get_u64());
  codec.layout_.n = static_cast<std::size_t>(r.get_u64());
  codec.layout_.original_total = static_cast<std::size_t>(r.get_u64());
  codec.layout_.padded =
      codec.layout_.m * codec.layout_.n != codec.layout_.original_total;
  const std::size_t k = r.get_u32();
  if (version >= detail::kFormatVersion)
    detail::check_header_crc(r, blob, "shared-basis blob");
  // Same geometry envelope the DPZ decoder enforces: m < n keeps m (and
  // with it every m*k product below) far from overflow, and the padded
  // total must stay within the layout chooser's worst case.
  const BlockLayout& lay = codec.layout_;
  if (total != lay.original_total || lay.m == 0 || lay.n == 0 ||
      lay.m >= lay.n || lay.m > kMaxElements / lay.n ||
      lay.padded_total() < lay.original_total ||
      lay.padded_total() > 4 * lay.original_total + 16 || k == 0 ||
      k > lay.m)
    throw FormatError("shared-basis blob: inconsistent geometry");

  const std::vector<std::uint8_t> shuffled =
      detail::get_section(r, version, "shared basis");
  if (shuffled.size() != codec.layout_.m * k * sizeof(float))
    throw FormatError("shared-basis blob: basis size mismatch");
  const std::vector<std::uint8_t> raw =
      unshuffle_bytes(shuffled, sizeof(float));
  ByteReader basis_reader(raw);
  codec.basis_ = Matrix(codec.layout_.m, k);
  for (std::size_t i = 0; i < codec.layout_.m; ++i)
    for (std::size_t j = 0; j < k; ++j)
      codec.basis_(i, j) = static_cast<double>(basis_reader.get_f32());
  codec.plan_.emplace(codec.layout_.n);
  return codec;
}

std::vector<std::uint8_t> SharedBasisCodec::compress(
    const FloatArray& snapshot, DpzStats* stats) const {
  DPZ_REQUIRE(snapshot.shape() == shape_,
              "snapshot shape differs from the training snapshot");
  const ScopedThreads pool_scope(threads_);
  const GovernorScope governor_scope(limits_);
  governed_poll();
  DpzStats local;
  DpzStats& st = stats != nullptr ? *stats : local;
  st = DpzStats{};
  st.layout = layout_;
  st.k = basis_.cols();
  st.original_bytes = snapshot.size() * sizeof(float);
  st.stage12_bytes =
      static_cast<std::uint64_t>(st.k) * layout_.n * sizeof(float);
  obs::count(obs::Counter::kCompressCalls);
  obs::count(obs::Counter::kBytesIn, st.original_bytes);
  obs::StageAccumulator acc;

  std::optional<obs::StageSpan> stage;
  stage.emplace(acc, obs::Span::kStage1Dct);
  const Matrix blocks = dct_blocks_of(snapshot, layout_, *plan_);
  const std::vector<double> mean = row_means(blocks);

  // Scores against the frozen basis: Y = D_k^T (Z - mean).
  stage.emplace(acc, obs::Span::kStage2Pca);
  governed_poll();
  const std::size_t k = basis_.cols();
  const simd::KernelTable& ops = simd::kernels();
  Matrix scores(k, layout_.n);
  parallel_for(0, k, [&](std::size_t j) {
    double* out = scores.row(j).data();
    for (std::size_t i = 0; i < layout_.m; ++i) {
      const double d = basis_(i, j);
      if (d == 0.0) continue;
      ops.accum_centered(d, blocks.row(i).data(), mean[i], out, layout_.n);
    }
  });

  stage.emplace(acc, obs::Span::kStage3Quantize);
  governed_poll();
  const double score_scale = detail::component_scale(scores.row(0));
  const double inv = 1.0 / score_scale;
  for (double& v : scores.flat()) v *= inv;
  const QuantizedStream qs = quantize(scores.flat(), qcfg_);
  st.outlier_count = qs.outliers.size();
  st.stage3_bytes = qs.codes.size() + qs.outliers.size() * sizeof(float);

  stage.emplace(acc, obs::Span::kZlibEncode);
  governed_poll();
  ByteWriter w;
  w.put_u32(detail::kSnapshotMagicV2);
  w.put_u8(detail::kFormatVersion);
  w.put_f64(score_scale);
  w.put_u64(qs.outliers.size());
  detail::put_header_crc(w);

  ByteWriter mean_bytes;
  for (const double v : mean) mean_bytes.put_f64(v);
  detail::put_section(w, mean_bytes.bytes(), zlib_level_);

  const std::size_t before_payload = w.size();
  detail::put_section(w, qs.codes, zlib_level_);
  ByteWriter outlier_bytes;
  for (const double v : qs.outliers)
    outlier_bytes.put_f32(static_cast<float>(v));
  detail::put_section(w, outlier_bytes.bytes(), zlib_level_);
  st.zlib_payload_bytes = w.size() - before_payload;
  stage.reset();

  std::vector<std::uint8_t> archive = w.take();
  st.archive_bytes = archive.size();
  for (const auto& [name, secs] : acc.buckets()) st.timers.add(name, secs);
  obs::count(obs::Counter::kBytesArchive, st.archive_bytes);
  obs::count(obs::Counter::kBytesStage3, st.stage3_bytes);
  obs::count(obs::Counter::kBytesZlibPayload, st.zlib_payload_bytes);
  obs::count(obs::Counter::kOutliers, st.outlier_count);
  obs::observe(obs::Hist::kSelectedK, st.k);
  return archive;
}

FloatArray SharedBasisCodec::decompress(
    std::span<const std::uint8_t> archive) const {
  const ScopedThreads pool_scope(threads_);
  const GovernorScope governor_scope(limits_);
  governed_poll();
  obs::count(obs::Counter::kDecompressCalls);
  std::optional<obs::ScopedSpan> span;
  span.emplace(obs::Span::kDecodeSections);
  ByteReader r(archive);
  const std::uint32_t magic = r.get_u32();
  if (magic != detail::kSnapshotMagicV1 && magic != detail::kSnapshotMagicV2)
    throw FormatError("not a shared-basis snapshot archive");
  const std::uint8_t version =
      read_shared_version(r, magic, detail::kSnapshotMagicV2);
  const double score_scale = r.get_f64();
  if (!(score_scale > 0.0))
    throw FormatError("snapshot archive: bad score scale");
  const std::uint64_t outlier_count = r.get_u64();
  if (version >= detail::kFormatVersion)
    detail::check_header_crc(r, archive, "snapshot archive");
  if (outlier_count > basis_.cols() * layout_.n)
    throw FormatError("snapshot archive: implausible outlier count");

  // Pre-flight admission. The codec's own (already validated) geometry
  // prices the decode — a snapshot archive claims only the outlier count
  // — so the budget is checked before any section inflates. The resident
  // basis is not part of this operation's working set.
  if (const ResourceGovernor* g = current_governor()) {
    const auto m = static_cast<std::uint64_t>(layout_.m);
    const auto n = static_cast<std::uint64_t>(layout_.n);
    const auto kc = static_cast<std::uint64_t>(basis_.cols());
    const std::uint64_t peak =
        static_cast<std::uint64_t>(layout_.original_total) *
            sizeof(float) +                      // output array
        m * n * sizeof(double) +                 // block matrix
        kc * n * sizeof(double) +                // score matrix
        m * sizeof(double) +                     // means
        kc * n * qcfg_.code_bytes() +            // inflated codes
        outlier_count * (sizeof(double) + 4);    // outlier stream
    g->admit(peak, "shared-basis snapshot");
  }

  const std::vector<std::uint8_t> mean_raw =
      detail::get_section(r, version, "means");
  if (mean_raw.size() != layout_.m * sizeof(double))
    throw FormatError("snapshot archive: mean size mismatch");
  ByteReader mean_reader(mean_raw);
  std::vector<double> mean(layout_.m);
  for (double& v : mean) v = mean_reader.get_f64();

  const std::size_t k = basis_.cols();
  QuantizedStream qs;
  qs.count = k * layout_.n;
  qs.codes = detail::get_section(r, version, "codes");
  // Check the section against the codec's geometry before dequantize()
  // sees it: its size contract is for callers, not for archive bytes.
  if (qs.codes.size() != qs.count * qcfg_.code_bytes())
    throw FormatError("snapshot archive: code section size mismatch");
  const std::vector<std::uint8_t> outlier_raw =
      detail::get_section(r, version, "outliers");
  if (outlier_raw.size() != outlier_count * sizeof(float))
    throw FormatError("snapshot archive: outlier size mismatch");
  ByteReader outlier_reader(outlier_raw);
  qs.outliers.resize(static_cast<std::size_t>(outlier_count));
  for (double& v : qs.outliers)
    v = static_cast<double>(outlier_reader.get_f32());

  span.emplace(obs::Span::kDecodeDequantize);
  governed_poll();
  Matrix scores(k, layout_.n);
  dequantize(qs, qcfg_, scores.flat());
  for (double& v : scores.flat()) v *= score_scale;

  // Back-project: Z = D_k Y + mean, then inverse DCT + de-block.
  span.emplace(obs::Span::kDecodeBackproject);
  governed_poll();
  Matrix blocks(layout_.m, layout_.n);
  parallel_for(0, layout_.m, [&](std::size_t i) {
    double* out = blocks.row(i).data();
    for (std::size_t j = 0; j < k; ++j) {
      const double d = basis_(i, j);
      if (d == 0.0) continue;
      const double* y = scores.row(j).data();
      for (std::size_t c = 0; c < layout_.n; ++c) out[c] += d * y[c];
    }
    const double mu = mean[i];
    for (std::size_t c = 0; c < layout_.n; ++c) out[c] += mu;
  });

  span.emplace(obs::Span::kDecodeIdct);
  governed_poll();
  parallel_for(0, layout_.m, [&](std::size_t i) {
    auto row = blocks.row(i);
    plan_->inverse(row, row);
  });

  FloatArray out(shape_);
  from_blocks(blocks, layout_, out.flat());
  span.reset();
  obs::count(obs::Counter::kBytesDecoded, out.size() * sizeof(float));
  return out;
}

std::uint64_t SharedBasisCodec::basis_bytes() const {
  return serialize().size();
}

}  // namespace dpz
