#include "core/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "codec/bytes.h"
#include "codec/quantizer.h"
#include "codec/zlib_codec.h"
#include "core/archive_detail.h"
#include "linalg/pca.h"
#include "stats/descriptive.h"
#include "stats/vif.h"
#include "util/error.h"
#include "util/rng.h"

namespace dpz {

namespace {

// Paper's empirical per-stage factors (SS IV-D2).
constexpr double kStage3Low = 1.9;
constexpr double kStage3High = 2.5;
constexpr double kZlibFactor = 1.25;

// Copies subset rows [lo, hi) of `x` into their own matrix.
Matrix slice_rows(const Matrix& x, std::size_t lo, std::size_t hi) {
  Matrix out(hi - lo, x.cols());
  for (std::size_t i = lo; i < hi; ++i) {
    const auto src = x.row(i);
    std::copy(src.begin(), src.end(), out.row(i - lo).begin());
  }
  return out;
}

}  // namespace

SamplingReport run_sampling(const Matrix& dct_blocks,
                            const SamplingConfig& config) {
  const std::size_t m = dct_blocks.rows();
  DPZ_REQUIRE(config.subset_count >= 1, "subset count must be >= 1");
  DPZ_REQUIRE(config.sample_subset_count >= 1 &&
                  config.sample_subset_count <= config.subset_count,
              "sample subset count must be in [1, S]");
  DPZ_REQUIRE(m >= 2 * config.subset_count,
              "need at least two features per subset");

  SamplingReport report;
  Rng rng(config.seed);

  // Step 1-2: VIF compressibility probe on a random feature sample (the
  // caller probes the spatial block matrix and passes the result in;
  // otherwise probe whatever matrix we were given).
  if (!config.precomputed_vifs.empty()) {
    report.vifs = config.precomputed_vifs;
  } else {
    report.vifs = sampled_vif(dct_blocks, config.vif_sampling_rate,
                              config.vif_sample_cols, rng);
  }
  report.vif_median = quantile_of(report.vifs, 0.5);
  report.low_linearity = report.vif_median < kVifCutoff;

  // Step 3: choose the T subsets.
  const std::size_t s = config.subset_count;
  const std::size_t t = config.sample_subset_count;
  if (config.deterministic_picks) {
    // First, middle, last (then spread further picks evenly).
    for (std::size_t i = 0; i < t; ++i) {
      const std::size_t pick =
          t == 1 ? 0 : i * (s - 1) / (t - 1);
      report.picked_subsets.push_back(pick);
    }
  } else {
    std::vector<std::size_t> all(s);
    std::iota(all.begin(), all.end(), 0);
    rng.shuffle(all.begin(), all.end());
    report.picked_subsets.assign(all.begin(),
                                 all.begin() + static_cast<std::ptrdiff_t>(t));
    std::sort(report.picked_subsets.begin(), report.picked_subsets.end());
  }
  report.picked_subsets.erase(
      std::unique(report.picked_subsets.begin(), report.picked_subsets.end()),
      report.picked_subsets.end());

  // Step 4: per-subset PCA and k selection, plus (optionally) a
  // calibration pass that measures the actual stage-3 and zlib factors on
  // each subset's quantized score streams.
  std::vector<double> cr3_samples;
  std::vector<std::uint8_t> calib_codes;   // concatenated across subsets
  std::vector<std::uint8_t> calib_outliers;
  double calib_stage3_bytes = 0.0;
  const std::size_t base = m / s;
  for (const std::size_t subset : report.picked_subsets) {
    const std::size_t lo = subset * base;
    const std::size_t hi = (subset + 1 == s) ? m : lo + base;
    const Matrix sub = slice_rows(dct_blocks, lo, hi);
    const PcaModel model = fit_pca(sub, report.low_linearity);
    std::size_t k;
    if (config.use_knee) {
      k = detect_knee(model.tve_curve(), config.knee_fit).k;
    } else {
      k = model.k_for_tve(config.tve);
    }
    report.subset_ks.push_back(k);

    if (config.calibrate_factors) {
      Matrix scores = model.transform(sub, k);
      const double scale = detail::component_scale(scores.row(0));
      const double inv = 1.0 / scale;
      for (double& v : scores.flat()) v *= inv;

      QuantizerConfig qcfg;
      qcfg.error_bound = config.quant_error_bound;
      qcfg.wide_codes = config.wide_codes;
      const QuantizedStream qs = quantize(scores.flat(), qcfg);

      const double stage12_bytes =
          static_cast<double>(k) * static_cast<double>(sub.cols()) *
          sizeof(float);
      const double stage3_bytes = static_cast<double>(
          qs.codes.size() + qs.outliers.size() * sizeof(float));
      cr3_samples.push_back(stage12_bytes / stage3_bytes);

      // Accumulate the streams: deflate ratios measured on tiny buffers
      // are systematically pessimistic (cold dictionary, fixed overhead),
      // so the zlib factor is calibrated once on the concatenation.
      calib_codes.insert(calib_codes.end(), qs.codes.begin(),
                         qs.codes.end());
      for (const double v : qs.outliers) {
        ByteWriter b;
        b.put_f32(static_cast<float>(v));
        calib_outliers.insert(calib_outliers.end(), b.bytes().begin(),
                              b.bytes().end());
      }
      calib_stage3_bytes += stage3_bytes;
    }
  }

  // Step 5: k_e and its full-matrix equivalent.
  double sum = 0.0;
  for (const std::size_t k : report.subset_ks)
    sum += static_cast<double>(k);
  report.k_estimate = sum / static_cast<double>(report.subset_ks.size());
  report.full_k = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::lround(report.k_estimate * static_cast<double>(s))),
      1, m);

  // Step 6: preliminary CR band.
  const double cr12 =
      static_cast<double>(m) / static_cast<double>(report.full_k);
  if (config.calibrate_factors && !cr3_samples.empty()) {
    report.stage3_factor = mean_of(cr3_samples);
    const double zipped = static_cast<double>(
        zlib_compress(calib_codes).size() +
        zlib_compress(calib_outliers).size());
    report.zlib_factor = calib_stage3_bytes / std::max(zipped, 1.0);
    double lo3 = cr3_samples[0], hi3 = cr3_samples[0];
    for (std::size_t i = 1; i < cr3_samples.size(); ++i) {
      lo3 = std::min(lo3, cr3_samples[i]);
      hi3 = std::max(hi3, cr3_samples[i]);
    }
    // Prediction band: the subset spread on the stage-3 factor, widened
    // asymmetrically — sample-deflate still understates the full stream's
    // ratio (a longer stream warms the dictionary further), so the high
    // side carries most of the allowance.
    report.cr_estimate_low = cr12 * lo3 * report.zlib_factor * 0.85;
    report.cr_estimate_high = cr12 * hi3 * report.zlib_factor * 1.9;
  } else {
    report.cr_estimate_low = cr12 * kStage3Low * kZlibFactor;
    report.cr_estimate_high = cr12 * kStage3High * kZlibFactor;
  }
  return report;
}

}  // namespace dpz
