// Shared-basis campaign compression.
//
// Simulation campaigns emit many snapshots of the same field whose
// spatial correlation structure drifts slowly. DPZ's dominant archive
// overhead — the PCA basis — is then nearly identical across snapshots,
// so a codec trained once on a representative snapshot can compress the
// whole series while storing the basis a single time:
//
//   SharedBasisCodec codec = SharedBasisCodec::train(snapshot0, config);
//   auto basis_blob = codec.serialize();          // once per campaign
//   auto a1 = codec.compress(snapshot1);          // no basis inside
//   auto a2 = codec.compress(snapshot2);
//   ...
//   SharedBasisCodec reader = SharedBasisCodec::deserialize(basis_blob);
//   FloatArray s1 = reader.decompress(a1);
//
// Per-snapshot archives carry only the block means, the score scale, the
// quantization codes, and the outliers; everything else lives in the
// shared blob. This is an extension of the paper's design (its
// information-oriented framing makes the basis a reusable "retrieval
// model"), not something it evaluates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "codec/quantizer.h"
#include "core/blocking.h"
#include "core/dpz.h"
#include "dsp/dct.h"
#include "linalg/pca.h"

namespace dpz {

class SharedBasisCodec {
 public:
  /// Fits the basis on a representative snapshot: Stage 1 + full PCA +
  /// the config's k selection. The codec then freezes (layout, k, basis,
  /// quantizer scheme).
  static SharedBasisCodec train(const FloatArray& reference,
                                const DpzConfig& config);

  /// Serializes the frozen state (layout, quantizer, k, basis columns).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Restores a codec from serialize()'s output.
  static SharedBasisCodec deserialize(std::span<const std::uint8_t> blob);

  /// Compresses one snapshot; its shape must match the training snapshot.
  /// The returned archive contains no basis and can only be opened by a
  /// codec holding the same basis.
  [[nodiscard]] std::vector<std::uint8_t> compress(
      const FloatArray& snapshot, DpzStats* stats = nullptr) const;

  /// Reconstructs a snapshot compressed by this codec (or one restored
  /// from the same serialized basis).
  [[nodiscard]] FloatArray decompress(
      std::span<const std::uint8_t> archive) const;

  [[nodiscard]] const BlockLayout& layout() const { return layout_; }
  [[nodiscard]] std::size_t k() const { return basis_.cols(); }
  [[nodiscard]] std::uint64_t basis_bytes() const;

  /// Worker threads for compress/decompress (0 = ambient pool). Train
  /// adopts DpzConfig::threads; restored codecs default to 0 — the knob
  /// is a runtime setting, not part of the serialized format. Output is
  /// bit-identical for every value.
  void set_threads(unsigned threads) { threads_ = threads; }
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Resource limits for compress/decompress (memory budget, deadline,
  /// cancel token; util/resource.h). Train adopts DpzConfig::limits;
  /// restored codecs default to ungoverned — like `threads`, this is a
  /// runtime setting, not part of the serialized format, and it never
  /// changes output bytes.
  void set_limits(const ResourceLimits& limits) { limits_ = limits; }
  [[nodiscard]] const ResourceLimits& limits() const { return limits_; }

 private:
  SharedBasisCodec() = default;

  BlockLayout layout_;
  std::vector<std::size_t> shape_;
  QuantizerConfig qcfg_;
  int zlib_level_ = 6;
  unsigned threads_ = 0;
  ResourceLimits limits_;
  Matrix basis_;  // M x k
  // Stage-1 plan, built once per codec: snapshots share the layout, so
  // rebuilding the twiddle/chirp tables per compress() call is pure waste.
  std::optional<DctPlan> plan_;
};

}  // namespace dpz
