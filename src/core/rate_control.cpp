#include "core/rate_control.h"

#include "core/analysis.h"
#include "metrics/metrics.h"

namespace dpz {

namespace {

// Emits the real archive at the chosen k and fills the result.
RateTargetResult finalize(const FloatArray& data, const DpzConfig& base,
                          std::size_t k, bool target_met) {
  DpzConfig config = base;
  config.use_sampling = false;  // k is already decided
  config.fixed_k = k;

  RateTargetResult result;
  result.archive = dpz_compress(data, config, &result.stats);
  result.k = result.stats.k;
  result.achieved_cr = result.stats.cr_archive();
  const FloatArray back = dpz_decompress(result.archive);
  result.achieved_psnr_db =
      compute_error_stats(data.flat(), back.flat()).psnr_db;
  result.target_met = target_met;
  return result;
}

QuantizerConfig quantizer_of(const DpzConfig& base) {
  QuantizerConfig qcfg;
  qcfg.error_bound = base.effective_error_bound();
  qcfg.wide_codes = base.effective_wide_codes();
  return qcfg;
}

}  // namespace

RateTargetResult dpz_compress_target_ratio(const FloatArray& data,
                                           double target_cr,
                                           const DpzConfig& base) {
  DPZ_REQUIRE(target_cr > 1.0, "target ratio must exceed 1");
  const DpzAnalysis analysis(data, base.standardize > 0);
  const QuantizerConfig qcfg = quantizer_of(base);
  const std::uint64_t original_bytes = data.size() * sizeof(float);

  auto cr_at = [&](std::size_t k) {
    const auto ev = analysis.evaluate(k, qcfg, base.zlib_level);
    return compression_ratio(original_bytes, ev.accounting.archive_bytes);
  };

  // Archive size grows with k, so CR falls with k: find the largest k
  // whose CR still meets the target.
  std::size_t lo = 1, hi = analysis.layout().m;
  if (cr_at(lo) < target_cr) return finalize(data, base, lo, false);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (cr_at(mid) >= target_cr) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return finalize(data, base, lo, true);
}

RateTargetResult dpz_compress_target_psnr(const FloatArray& data,
                                          double target_db,
                                          const DpzConfig& base) {
  const DpzAnalysis analysis(data, base.standardize > 0);
  const QuantizerConfig qcfg = quantizer_of(base);

  auto psnr_at = [&](std::size_t k) {
    return analysis.evaluate(k, qcfg, base.zlib_level)
        .stage3_error.psnr_db;
  };

  // PSNR rises with k until the quantizer caps it; find the smallest k
  // meeting the target. Saturation can make the curve flat at the top,
  // which bisection handles as "not met" when even k = M falls short.
  std::size_t lo = 1, hi = analysis.layout().m;
  if (psnr_at(hi) < target_db) return finalize(data, base, hi, false);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (psnr_at(mid) >= target_db) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return finalize(data, base, lo, true);
}

}  // namespace dpz
