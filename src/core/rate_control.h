// Rate and quality targeting for DPZ.
//
// The paper's knobs (TVE threshold, knee point) are information-centric;
// practitioners usually start from a budget ("fit this in 50X") or a
// fidelity floor ("at least 60 dB"). These helpers search the component
// count k directly against the cached DpzAnalysis state — both the
// end-to-end archive size and the reconstruction PSNR are monotone
// enough in k for a bracketed search — and then emit a real archive at
// the chosen k via DpzConfig::fixed_k.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dpz.h"

namespace dpz {

struct RateTargetResult {
  std::vector<std::uint8_t> archive;
  DpzStats stats;
  std::size_t k = 0;
  double achieved_cr = 0.0;
  double achieved_psnr_db = 0.0;
  /// False when even the extreme k (1 or M) cannot meet the target; the
  /// result then holds the closest achievable operating point.
  bool target_met = false;
};

/// Smallest archive whose end-to-end compression ratio is still at least
/// `target_cr` while keeping as many components (as much fidelity) as
/// that budget allows. `base` supplies scheme/quantizer settings; its k
/// selection fields are ignored.
RateTargetResult dpz_compress_target_ratio(const FloatArray& data,
                                           double target_cr,
                                           const DpzConfig& base = {});

/// Cheapest archive whose reconstruction PSNR reaches `target_db`
/// (smallest k meeting the target). When the quantizer caps the PSNR
/// below the target, returns the best achievable point with
/// target_met = false.
RateTargetResult dpz_compress_target_psnr(const FloatArray& data,
                                          double target_db,
                                          const DpzConfig& base = {});

}  // namespace dpz
