#include "core/dpz.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>

#include "codec/bytes.h"
#include "codec/quantizer.h"
#include "codec/shuffle.h"
#include "codec/zlib_codec.h"
#include "core/archive_detail.h"
#include "core/sampling.h"
#include "dsp/dct.h"
#include "linalg/pca.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/stage_clock.h"
#include "obs/trace.h"
#include "simd/simd.h"
#include "stats/descriptive.h"
#include "stats/vif.h"
#include "util/crc32c.h"
#include "util/thread_pool.h"

namespace dpz {

namespace detail {

std::vector<std::uint8_t> serialize_side(const SideData& side,
                                         bool standardized) {
  ByteWriter w;
  for (const double v : side.mean) w.put_f64(v);
  if (standardized)
    for (const double v : side.scale) w.put_f64(v);
  w.put_f64(side.score_scale);

  // Basis as byte-shuffled f32: the shuffle groups sign/exponent bytes of
  // neighboring basis entries together so the section-level zlib pass can
  // actually compress them (raw float soup is nearly incompressible).
  ByteWriter basis_bytes;
  for (std::size_t i = 0; i < side.basis.rows(); ++i)
    for (std::size_t j = 0; j < side.basis.cols(); ++j)
      basis_bytes.put_f32(static_cast<float>(side.basis(i, j)));
  w.put_bytes(shuffle_bytes(basis_bytes.bytes(), sizeof(float)));
  return w.take();
}

SideData deserialize_side(std::span<const std::uint8_t> bytes,
                          std::size_t m, std::size_t k, bool standardized) {
  // The side section's layout is fully determined by (m, k, standardized):
  // means, optional scales, the global score scale, and the f32 basis.
  // Check the exact size up front so an inconsistent header cannot make a
  // truncated payload partially parse or size an allocation it cannot
  // back. m and k are validated by the caller (m < n, m*n bounded), so
  // these products cannot overflow 64 bits.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(m) * sizeof(double) *
          (standardized ? 2 : 1) +
      sizeof(double) + static_cast<std::uint64_t>(m) * k * sizeof(float);
  if (bytes.size() != expected)
    throw FormatError("DPZ side section size does not match m/k (have " +
                      std::to_string(bytes.size()) + ", expected " +
                      std::to_string(expected) + ")");
  ByteReader r(bytes);
  SideData side;
  side.mean.resize(m);
  for (double& v : side.mean) v = r.get_f64();
  side.scale.assign(m, 1.0);
  if (standardized)
    for (double& v : side.scale) v = r.get_f64();
  side.score_scale = r.get_f64();
  if (!(side.score_scale > 0.0))
    throw FormatError("DPZ side section: invalid score scale");

  const std::vector<std::uint8_t> shuffled =
      r.get_bytes(m * k * sizeof(float));
  const std::vector<std::uint8_t> raw =
      unshuffle_bytes(shuffled, sizeof(float));
  ByteReader basis_reader(raw);
  side.basis = Matrix(m, k);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j)
      side.basis(i, j) = static_cast<double>(basis_reader.get_f32());
  if (r.remaining() != 0)
    throw FormatError("DPZ side section has trailing bytes");
  return side;
}

double component_scale(std::span<const double> scores) {
  double mean = 0.0;
  for (const double v : scores) mean += v;
  mean /= static_cast<double>(scores.size());
  double var = 0.0;
  double peak = 0.0;
  for (const double v : scores) {
    var += (v - mean) * (v - mean);
    peak = std::max(peak, std::abs(v));
  }
  var /= static_cast<double>(scores.size());
  if (var > 0.0) return kScoreSigmaScale * std::sqrt(var);
  return peak > 0.0 ? peak : 1.0;
}

std::uint32_t section_crc(std::uint64_t raw_size,
                          std::span<const std::uint8_t> blob) {
  std::array<std::uint8_t, 8> size_bytes{};
  for (std::size_t i = 0; i < 8; ++i)
    size_bytes[i] = static_cast<std::uint8_t>(raw_size >> (8 * i));
  return crc32c(blob, crc32c(size_bytes));
}

void put_section(ByteWriter& w, std::span<const std::uint8_t> raw,
                 int level) {
  w.put_u64(raw.size());
  const std::vector<std::uint8_t> z = zlib_compress(raw, level);
  w.put_u32(section_crc(raw.size(), z));
  w.put_blob(z);
}

std::vector<std::uint8_t> get_section(ByteReader& r, std::uint8_t version,
                                      const char* what) {
  const std::size_t section_start = r.position();
  const std::uint64_t raw_size = r.get_u64();
  const std::uint32_t stored_crc =
      version >= kFormatVersion ? r.get_u32() : 0;
  const std::vector<std::uint8_t> z = r.get_blob();
  // A corrupted raw-size field must not drive the output allocation:
  // deflate expands at most ~1032:1, so anything beyond that bound (plus
  // slack for tiny sections) is a forged header.
  if (raw_size > z.size() * 1100 + 4096)
    throw FormatError("section raw size implausible for its payload");
  // Verify-before-inflate: a damaged blob must never reach zlib (whose
  // failure modes on corrupt streams are a generic error at best) or
  // drive the quantizer. tools/lint.sh rule 5 keeps every core section
  // read on this path.
  if (version >= kFormatVersion) {
    const obs::ScopedSpan crc_span(obs::Span::kCrcCheck);
    obs::count(obs::Counter::kCrcChecks);
    if (section_crc(raw_size, z) != stored_crc) {
      obs::count(obs::Counter::kCrcFailures);
      obs::LogContext ctx;
      ctx.offset = section_start;
      ctx.section = what;
      obs::log_error(obs::Event::kChecksumMismatch, StatusCode::kChecksum,
                     ctx, "corrupted section blob");
      throw ChecksumError("section checksum mismatch (corrupted blob)");
    }
  }
  return zlib_decompress(z, static_cast<std::size_t>(raw_size));
}

void put_header_crc(ByteWriter& w) { w.put_u32(crc32c(w.bytes())); }

void check_header_crc(ByteReader& r, std::span<const std::uint8_t> archive,
                      const char* what) {
  const obs::ScopedSpan crc_span(obs::Span::kCrcCheck);
  obs::count(obs::Counter::kCrcChecks);
  const std::size_t header_end = r.position();
  const std::uint32_t computed = crc32c(archive.first(header_end));
  if (r.get_u32() != computed) {
    obs::count(obs::Counter::kCrcFailures);
    obs::LogContext ctx;
    ctx.offset = header_end;
    ctx.section = "header";
    obs::log_error(obs::Event::kChecksumMismatch, StatusCode::kChecksum,
                   ctx, what);
    throw ChecksumError(std::string(what) + ": header checksum mismatch");
  }
}

}  // namespace detail

namespace {

using detail::SideData;
using detail::check_header_crc;
using detail::deserialize_side;
using detail::get_section;
using detail::put_header_crc;
using detail::put_section;
using detail::serialize_side;

constexpr std::uint32_t kMagic = detail::kDpzMagic;
constexpr std::uint8_t kVersion = detail::kFormatVersion;

// Reads and validates the version byte: v1 (legacy, no checksums) and v2
// (checksummed) archives both decode; anything else is from the future.
std::uint8_t read_version(ByteReader& r) {
  const std::uint8_t version = r.get_u8();
  if (version != detail::kFormatVersionLegacy &&
      version != detail::kFormatVersion)
    throw FormatError("unsupported DPZ archive version");
  return version;
}

constexpr std::uint8_t kFlagWideCodes = 0x01;
constexpr std::uint8_t kFlagStandardized = 0x02;
constexpr std::uint8_t kFlagStoredRaw = 0x04;
constexpr std::uint8_t kFlagDouble = 0x08;

// Upper bound on the element count an archive may claim. Prevents a
// corrupted header from triggering a runaway allocation before any
// payload validation can run (2^40 elements = 4 TiB of f32).
constexpr std::uint64_t kMaxArchiveElements = 1ULL << 40;

// Reads and validates a shape header; throws FormatError on nonsense.
std::vector<std::size_t> read_shape(ByteReader& r) {
  const std::uint8_t rank = r.get_u8();
  if (rank == 0 || rank > 4) throw FormatError("unsupported data rank");
  std::vector<std::size_t> shape(rank);
  std::uint64_t total = 1;
  for (auto& d : shape) {
    const std::uint64_t e = r.get_u64();
    if (e == 0 || e > kMaxArchiveElements)
      throw FormatError("implausible extent in DPZ archive");
    total *= e;
    if (total > kMaxArchiveElements)
      throw FormatError("implausible total size in DPZ archive");
    d = static_cast<std::size_t>(e);
  }
  return shape;
}

template <typename T>
void put_element(ByteWriter& w, double v) {
  if constexpr (sizeof(T) == 8) {
    w.put_f64(v);
  } else {
    w.put_f32(static_cast<float>(v));
  }
}

template <typename T>
double get_element(ByteReader& r) {
  if constexpr (sizeof(T) == 8) {
    return r.get_f64();
  } else {
    return static_cast<double>(r.get_f32());
  }
}

// Incompressible-input fallback: when the pipeline's archive would exceed
// the input size (low-linearity data where k ~ M and the basis dominates),
// emit a stored archive instead — header + zlib of the raw floats. The
// paper's accounting ignores the PCA basis so it never sees this case; a
// real codec must never expand its input unboundedly.
template <typename T>
std::vector<std::uint8_t> make_stored_archive(const NdArray<T>& data,
                                              int zlib_level) {
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u8(kVersion);
  w.put_u8(static_cast<std::uint8_t>(
      kFlagStoredRaw | (sizeof(T) == 8 ? kFlagDouble : 0)));
  w.put_f64(1.0);  // error bound slot (unused for stored archives)
  w.put_u8(static_cast<std::uint8_t>(data.shape().size()));
  for (const std::size_t d : data.shape()) w.put_u64(d);
  put_header_crc(w);

  ByteWriter raw;
  for (const T v : data.flat())
    put_element<T>(raw, static_cast<double>(v));
  put_section(w, raw.bytes(), zlib_level);
  return w.take();
}

template <typename T>
std::vector<std::uint8_t> compress_impl(const NdArray<T>& data,
                                        const DpzConfig& config,
                                        DpzStats* stats) {
  DPZ_REQUIRE(data.size() >= 8, "DPZ needs at least 8 values");
  // All parallel loops below (and inside PCA/matmul/quantize) run on the
  // pool this scope resolves; the archive bytes do not depend on it.
  const ScopedThreads pool_scope(config.threads);
  // Resource governance for the whole compression: every Matrix/NdArray/
  // zlib allocation below charges the budget, parallel_for propagates the
  // governor to workers, and each stage boundary polls for cancellation
  // and deadline expiry. Limits never change the archive bytes.
  const GovernorScope governor_scope(config.limits);
  governed_poll();
  DpzStats local_stats;
  DpzStats& st = stats != nullptr ? *stats : local_stats;
  st = DpzStats{};
  st.original_bytes = data.size() * sizeof(T);
  obs::count(obs::Counter::kCompressCalls);
  obs::count(obs::Counter::kBytesIn, st.original_bytes);
  // Stage accounting accumulates here (thread-safe) and is copied into
  // st.timers once at the end — StageTimer itself is not synchronized.
  obs::StageAccumulator acc;

  // ---- Stage 1: block decomposition + per-block DCT -------------------
  Matrix blocks;
  BlockLayout layout;
  std::vector<double> spatial_vifs;
  {
    const obs::StageSpan stage(acc, obs::Span::kStage1Dct);
    governed_poll();
    layout = choose_block_layout(data.size());
    blocks = to_blocks(data.flat(), layout);

    // Algorithm 2 probes collinearity on the raw block-data, so sample
    // the VIFs before the DCT rearranges the correlation structure.
    if (config.use_sampling && layout.m >= 2 * config.subset_count) {
      Rng vif_rng(config.sampling_seed);
      spatial_vifs = sampled_vif(blocks, config.vif_sampling_rate, 256,
                                 vif_rng);
    }

    const DctPlan plan(layout.n);
    parallel_for(0, layout.m, [&](std::size_t i) {
      auto row = blocks.row(i);
      plan.forward(row, row);
    });

    // Optional future-work pre-filter: truncate each block's trailing
    // (high-frequency) DCT coefficients before PCA sees them.
    DPZ_REQUIRE(config.dct_keep_fraction > 0.0 &&
                    config.dct_keep_fraction <= 1.0,
                "dct_keep_fraction must be in (0, 1]");
    if (config.dct_keep_fraction < 1.0) {
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(config.dct_keep_fraction *
                              static_cast<double>(layout.n))));
      parallel_for(0, layout.m, [&](std::size_t i) {
        auto row = blocks.row(i);
        std::fill(row.begin() + static_cast<std::ptrdiff_t>(keep),
                  row.end(), 0.0);
      });
    }
  }
  st.layout = layout;

  // ---- Stage 2: PCA in the DCT domain + k selection -------------------
  PcaModel model;
  std::size_t k = 1;
  bool standardized = config.standardize > 0;
  {
    const obs::StageSpan stage(acc, obs::Span::kStage2Pca);
    governed_poll();
    if (config.use_sampling && layout.m >= 2 * config.subset_count) {
      SamplingConfig scfg;
      scfg.subset_count = config.subset_count;
      scfg.sample_subset_count = config.sample_subset_count;
      scfg.tve = config.tve;
      scfg.use_knee = config.selection == KSelectionMethod::kKneePoint;
      scfg.knee_fit = config.knee_fit;
      scfg.vif_sampling_rate = config.vif_sampling_rate;
      scfg.seed = config.sampling_seed;
      scfg.quant_error_bound = config.effective_error_bound();
      scfg.wide_codes = config.effective_wide_codes();
      scfg.precomputed_vifs = spatial_vifs;
      const SamplingReport report = run_sampling(blocks, scfg);

      st.vif_median = report.vif_median;
      if (config.standardize < 0) standardized = report.low_linearity;
      k = config.fixed_k != 0
              ? std::clamp<std::size_t>(config.fixed_k, 1, layout.m)
              : report.full_k;
      model = fit_pca_topk(blocks, k, standardized);
    } else {
      // Two-phase fit: the values-only spectrum is enough for every
      // k-selection method (they all read the TVE curve), so the dense
      // eigenvector solve is deferred and replaced by a top-k solve on
      // the cached covariance once k is known.
      PcaSpectrum spec = fit_pca_spectrum(blocks, standardized);
      if (config.fixed_k != 0) {
        k = std::clamp<std::size_t>(config.fixed_k, 1, layout.m);
      } else if (config.selection == KSelectionMethod::kKneePoint) {
        k = detect_knee(spec.model.tve_curve(), config.knee_fit).k;
      } else {
        k = spec.model.k_for_tve(config.tve);
      }
      model = attach_top_components(std::move(spec), k);
    }
  }
  st.k = k;
  st.standardized = standardized;
  st.stage12_bytes = static_cast<std::uint64_t>(k) * layout.n * sizeof(T);

  // ---- Stage 3: per-component normalization + quantization ------------
  QuantizerConfig qcfg;
  qcfg.error_bound = config.effective_error_bound();
  qcfg.wide_codes = config.effective_wide_codes();

  Matrix scores = model.transform(blocks, k);
  SideData side;
  side.mean = model.mean;
  side.scale = model.scale;
  QuantizedStream qs;
  {
    const obs::StageSpan stage(acc, obs::Span::kStage3Quantize);
    governed_poll();
    side.score_scale = detail::component_scale(scores.row(0));
    const double inv = 1.0 / side.score_scale;
    parallel_for(0, scores.rows(), [&](std::size_t j) {
      auto row = scores.row(j);
      simd::kernels().scale(inv, row.data(), row.size());
    });
    qs = quantize(scores.flat(), qcfg);
  }
  st.outlier_count = qs.outliers.size();
  st.stage3_bytes = qs.codes.size() + qs.outliers.size() * sizeof(T);

  side.basis = Matrix(layout.m, k);
  for (std::size_t i = 0; i < layout.m; ++i)
    for (std::size_t j = 0; j < k; ++j)
      side.basis(i, j) = model.components(i, j);

  // ---- Serialization + zlib add-on -------------------------------------
  ByteWriter w;
  {
    const obs::StageSpan stage(acc, obs::Span::kZlibEncode);
    governed_poll();
    w.put_u32(kMagic);
    w.put_u8(kVersion);
    std::uint8_t flags = 0;
    if (qcfg.wide_codes) flags |= kFlagWideCodes;
    if (standardized) flags |= kFlagStandardized;
    if (sizeof(T) == 8) flags |= kFlagDouble;
    w.put_u8(flags);
    w.put_f64(qcfg.error_bound);

    w.put_u8(static_cast<std::uint8_t>(data.shape().size()));
    for (const std::size_t d : data.shape()) w.put_u64(d);
    w.put_u64(layout.m);
    w.put_u64(layout.n);
    w.put_u64(layout.original_total);
    w.put_u32(static_cast<std::uint32_t>(k));
    w.put_u64(qs.outliers.size());
    put_header_crc(w);

    const std::size_t before_side = w.size();
    put_section(w, serialize_side(side, standardized), config.zlib_level);
    st.side_bytes = w.size() - before_side;

    const std::size_t before_payload = w.size();
    put_section(w, qs.codes, config.zlib_level);
    ByteWriter outlier_bytes;
    for (const double v : qs.outliers) put_element<T>(outlier_bytes, v);
    put_section(w, outlier_bytes.bytes(), config.zlib_level);
    st.zlib_payload_bytes = w.size() - before_payload;
  }

  std::vector<std::uint8_t> archive = w.take();

  // Never expand the input: fall back to a stored archive when the
  // pipeline loses to plain zlib (see make_stored_archive).
  if (archive.size() >= st.original_bytes) {
    archive = make_stored_archive(data, config.zlib_level);
    st.stored_raw = true;
    obs::count(obs::Counter::kStoredRawFallbacks);
  }
  st.archive_bytes = archive.size();

  for (const auto& [name, secs] : acc.buckets()) st.timers.add(name, secs);
  obs::count(obs::Counter::kBytesArchive, st.archive_bytes);
  obs::count(obs::Counter::kBytesStage12, st.stage12_bytes);
  obs::count(obs::Counter::kBytesStage3, st.stage3_bytes);
  obs::count(obs::Counter::kBytesZlibPayload, st.zlib_payload_bytes);
  obs::count(obs::Counter::kBytesSide, st.side_bytes);
  obs::count(obs::Counter::kOutliers, st.outlier_count);
  obs::observe(obs::Hist::kSelectedK, st.k);
  return archive;
}

template <typename T>
NdArray<T> decompress_impl(std::span<const std::uint8_t> archive,
                           std::size_t max_components, unsigned threads,
                           const ResourceLimits& limits) {
  const ScopedThreads pool_scope(threads);
  // Decode governance mirrors compress_impl; additionally the header's
  // claimed geometry is admitted against the memory budget below, before
  // any payload-sized allocation (the zip-bomb gate).
  const GovernorScope governor_scope(limits);
  governed_poll();
  obs::count(obs::Counter::kDecompressCalls);
  ByteReader r(archive);
  if (r.get_u32() != kMagic) throw FormatError("not a DPZ archive");
  const std::uint8_t version = read_version(r);
  const std::uint8_t flags = r.get_u8();
  const bool wide_codes = (flags & kFlagWideCodes) != 0;
  const bool standardized = (flags & kFlagStandardized) != 0;
  const bool is_double = (flags & kFlagDouble) != 0;
  if (is_double != (sizeof(T) == 8))
    throw FormatError(is_double
                          ? "archive holds double-precision data; use "
                            "dpz_decompress_f64"
                          : "archive holds single-precision data; use "
                            "dpz_decompress");

  if ((flags & kFlagStoredRaw) != 0) {
    r.get_f64();  // unused error-bound slot
    const std::vector<std::size_t> shape = read_shape(r);
    if (version >= kVersion)
      check_header_crc(r, archive, "stored DPZ archive");
    std::size_t total = 1;
    for (const std::size_t d : shape) total *= d;
    if (const ResourceGovernor* g = current_governor()) {
      DpzArchiveInfo claim;
      claim.stored_raw = true;
      claim.double_precision = is_double;
      claim.shape = shape;
      g->admit(dpz_decode_preflight(claim).peak_bytes,
               "stored DPZ archive");
    }
    const std::vector<std::uint8_t> raw =
        get_section(r, version, "stored raw");
    if (raw.size() != total * sizeof(T))
      throw FormatError("stored DPZ archive size mismatch");
    ByteReader raw_reader(raw);
    NdArray<T> out(shape);
    for (T& v : out.flat()) v = static_cast<T>(get_element<T>(raw_reader));
    obs::count(obs::Counter::kBytesDecoded, out.size() * sizeof(T));
    return out;
  }

  // One trace span per decode stage; emplace() closes the previous stage
  // and opens the next (optional<> because the stages share scope).
  std::optional<obs::ScopedSpan> span;
  span.emplace(obs::Span::kDecodeSections);

  QuantizerConfig qcfg;
  qcfg.error_bound = r.get_f64();
  qcfg.wide_codes = wide_codes;
  if (!(qcfg.error_bound > 0.0) || !std::isfinite(qcfg.error_bound))
    throw FormatError("DPZ archive has an invalid error bound");

  const std::vector<std::size_t> shape = read_shape(r);

  BlockLayout layout;
  layout.m = static_cast<std::size_t>(r.get_u64());
  layout.n = static_cast<std::size_t>(r.get_u64());
  layout.original_total = static_cast<std::size_t>(r.get_u64());
  layout.padded = layout.m * layout.n != layout.original_total;
  const std::size_t k = r.get_u32();
  const std::uint64_t outlier_count = r.get_u64();
  // The header seal comes first: a flipped bit in any fixed field is
  // reported as corruption, not as whichever geometry invariant it
  // happens to break. (Forged-but-resealed headers still hit the checks
  // below — the CRC authenticates bytes, not semantics.)
  if (version >= kVersion) check_header_crc(r, archive, "DPZ archive");

  std::size_t shape_total = 1;
  for (const std::size_t d : shape) shape_total *= d;
  // Geometry invariants the compressor always satisfies; anything else is
  // a corrupted header (and would otherwise size downstream allocations).
  if (shape_total != layout.original_total || layout.m == 0 ||
      layout.n == 0 || layout.m >= layout.n || k == 0 || k > layout.m ||
      layout.m > kMaxArchiveElements / layout.n ||
      layout.padded_total() < layout.original_total ||
      layout.padded_total() > 4 * layout.original_total + 16 ||
      outlier_count > static_cast<std::uint64_t>(k) * layout.n)
    throw FormatError("inconsistent DPZ archive geometry");

  // Pre-flight admission: price the header-claimed decode and reject it
  // against the governing memory budget before get_section sizes the
  // first payload allocation from these (validated-but-untrusted) fields.
  // An archive claiming terabytes therefore fails with ResourceExhausted
  // here, never by attempting the allocation.
  if (const ResourceGovernor* g = current_governor()) {
    DpzArchiveInfo claim;
    claim.wide_codes = wide_codes;
    claim.standardized = standardized;
    claim.double_precision = is_double;
    claim.shape = shape;
    claim.layout = layout;
    claim.k = k;
    claim.outlier_count = outlier_count;
    g->admit(dpz_decode_preflight(claim).peak_bytes, "DPZ archive");
  }

  const std::vector<std::uint8_t> side_bytes =
      get_section(r, version, "side data");
  const SideData side =
      deserialize_side(side_bytes, layout.m, k, standardized);

  QuantizedStream qs;
  qs.count = k * layout.n;
  qs.codes = get_section(r, version, "codes");
  // Validate the code-section size against the claimed geometry *before*
  // anything downstream (score matrices, outlier buffers) is sized from
  // k*n — dequantize()'s size contract must never see archive data.
  if (qs.codes.size() != qs.count * qcfg.code_bytes())
    throw FormatError("DPZ code section size mismatch");
  const std::vector<std::uint8_t> outlier_raw =
      get_section(r, version, "outliers");
  if (outlier_raw.size() != outlier_count * sizeof(T))
    throw FormatError("DPZ outlier section size mismatch");
  ByteReader outlier_reader(outlier_raw);
  qs.outliers.resize(static_cast<std::size_t>(outlier_count));
  for (double& v : qs.outliers) v = get_element<T>(outlier_reader);

  // Progressive reconstruction: score streams are stored in component
  // order, so truncating the code stream after use_k components (and the
  // outlier list after the escapes that prefix contains) yields a valid
  // lower-rank archive view.
  const std::size_t use_k =
      max_components == 0 ? k : std::min(max_components, k);
  if (use_k < k) {
    const std::size_t code_bytes = qcfg.code_bytes();
    qs.count = use_k * layout.n;
    qs.codes.resize(qs.count * code_bytes);

    const std::uint32_t escape = qcfg.bin_count();
    std::size_t escapes = 0;
    for (std::size_t i = 0; i < qs.count; ++i) {
      std::uint32_t code = qs.codes[i * code_bytes];
      if (qcfg.wide_codes)
        code |= static_cast<std::uint32_t>(qs.codes[i * code_bytes + 1])
                << 8;
      if (code == escape) ++escapes;
    }
    if (escapes > qs.outliers.size())
      throw FormatError("DPZ outlier count inconsistent with codes");
    qs.outliers.resize(escapes);
  }

  // Stage 3 inverse: codes -> normalized scores -> scores.
  span.emplace(obs::Span::kDecodeDequantize);
  governed_poll();
  Matrix scores(use_k, layout.n);
  dequantize(qs, qcfg, scores.flat());
  parallel_for(0, scores.rows(), [&](std::size_t j) {
    for (double& v : scores.row(j)) v *= side.score_scale;
  });

  // Stage 2 inverse: back-project through the stored basis (leading use_k
  // columns only).
  span.emplace(obs::Span::kDecodeBackproject);
  governed_poll();
  PcaModel model;
  model.mean = side.mean;
  model.scale = side.scale;
  model.eigenvalues.assign(use_k, 0.0);  // not needed for reconstruction
  if (use_k < k) {
    Matrix truncated(layout.m, use_k);
    for (std::size_t i = 0; i < layout.m; ++i)
      for (std::size_t j = 0; j < use_k; ++j)
        truncated(i, j) = side.basis(i, j);
    model.components = std::move(truncated);
  } else {
    model.components = side.basis;
  }
  Matrix blocks = model.inverse_transform(scores);

  // Stage 1 inverse: inverse DCT per block, then de-block.
  span.emplace(obs::Span::kDecodeIdct);
  governed_poll();
  const DctPlan plan(layout.n);
  parallel_for(0, layout.m, [&](std::size_t i) {
    auto row = blocks.row(i);
    plan.inverse(row, row);
  });

  NdArray<T> out(shape);
  from_blocks(blocks, layout, out.flat());
  span.reset();
  obs::count(obs::Counter::kBytesDecoded, out.size() * sizeof(T));
  return out;
}

}  // namespace

std::vector<std::uint8_t> dpz_compress(const FloatArray& data,
                                       const DpzConfig& config,
                                       DpzStats* stats) {
  return compress_impl(data, config, stats);
}

std::vector<std::uint8_t> dpz_compress(const DoubleArray& data,
                                       const DpzConfig& config,
                                       DpzStats* stats) {
  return compress_impl(data, config, stats);
}

FloatArray dpz_decompress(std::span<const std::uint8_t> archive,
                          std::size_t max_components, unsigned threads,
                          const ResourceLimits& limits) {
  return decompress_impl<float>(archive, max_components, threads, limits);
}

DoubleArray dpz_decompress_f64(std::span<const std::uint8_t> archive,
                               std::size_t max_components, unsigned threads,
                               const ResourceLimits& limits) {
  return decompress_impl<double>(archive, max_components, threads, limits);
}

DecodePreflight dpz_decode_preflight(const DpzArchiveInfo& info) {
  // Saturating arithmetic throughout: the header is untrusted, so a
  // claimed geometry must never wrap the estimate back below the budget.
  const auto sat_add = [](std::uint64_t a, std::uint64_t b) {
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
  };
  const auto sat_mul = [](std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) return std::uint64_t{0};
    return a > UINT64_MAX / b ? UINT64_MAX : a * b;
  };

  const std::uint64_t elem = info.double_precision ? 8 : 4;
  std::uint64_t total = 1;
  for (const std::size_t d : info.shape) total = sat_mul(total, d);

  DecodePreflight pf;
  pf.decoded_bytes = sat_mul(total, elem);
  if (info.stored_raw) {
    // Stored archives inflate the raw element stream (one charged
    // buffer) and materialize the output array next to it.
    pf.peak_bytes = sat_add(pf.decoded_bytes, pf.decoded_bytes);
    return pf;
  }

  const std::uint64_t m = info.layout.m;
  const std::uint64_t n = info.layout.n;
  const std::uint64_t k = info.k;
  // Dominant charged allocations live concurrently near the end of the
  // decode: the output array, the back-projected block matrix (m x n
  // doubles), the score matrix (k x n doubles), the basis (m x k doubles
  // plus its serialized f32 image), per-feature means/scales, the
  // inflated code stream, and the outlier stream (raw section + doubles).
  std::uint64_t peak = pf.decoded_bytes;
  peak = sat_add(peak, sat_mul(sat_mul(m, n), 8));
  peak = sat_add(peak, sat_mul(sat_mul(k, n), 8));
  peak = sat_add(peak, sat_mul(sat_mul(m, k), 12));
  peak = sat_add(peak, sat_mul(m, 24));
  peak = sat_add(peak, sat_mul(sat_mul(k, n), info.wide_codes ? 2 : 1));
  peak = sat_add(peak, sat_mul(info.outlier_count, 8 + elem));
  pf.peak_bytes = peak;
  return pf;
}

DpzArchiveInfo dpz_inspect(std::span<const std::uint8_t> archive) {
  ByteReader r(archive);
  if (r.get_u32() != kMagic) throw FormatError("not a DPZ archive");
  const std::uint8_t version = read_version(r);
  const std::uint8_t flags = r.get_u8();

  DpzArchiveInfo info;
  info.version = version;
  info.archive_bytes = archive.size();
  info.stored_raw = (flags & kFlagStoredRaw) != 0;
  info.wide_codes = (flags & kFlagWideCodes) != 0;
  info.standardized = (flags & kFlagStandardized) != 0;
  info.double_precision = (flags & kFlagDouble) != 0;
  info.error_bound = r.get_f64();

  info.shape = read_shape(r);
  if (info.stored_raw) {
    if (version >= kVersion)
      check_header_crc(r, archive, "stored DPZ archive");
    return info;
  }

  info.layout.m = static_cast<std::size_t>(r.get_u64());
  info.layout.n = static_cast<std::size_t>(r.get_u64());
  info.layout.original_total = static_cast<std::size_t>(r.get_u64());
  info.layout.padded =
      info.layout.m * info.layout.n != info.layout.original_total;
  info.k = r.get_u32();
  info.outlier_count = r.get_u64();
  if (version >= kVersion) check_header_crc(r, archive, "DPZ archive");
  return info;
}

}  // namespace dpz
