#include "core/chunked.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "codec/bytes.h"
#include "core/archive_detail.h"
#include "ecc/reed_solomon.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32c.h"
#include "util/error.h"
#include "util/resource.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

struct ContainerHeader {
  std::uint8_t version = detail::kFormatVersionLegacy;
  std::vector<std::size_t> shape;
  std::size_t total = 0;
  std::size_t chunk_values = 0;
  std::size_t frame_count = 0;
  std::vector<std::uint64_t> frame_offsets;  // relative to frame area
  std::vector<std::uint64_t> frame_sizes;
  std::vector<std::uint32_t> frame_crcs;  // empty for v1 containers
  std::size_t frames_begin = 0;  // byte offset of the frame area
  // v3 parity geometry; parity_m == 0 when the container carries none.
  std::size_t parity_k = 0;
  std::size_t parity_m = 0;
  std::vector<std::uint64_t> shard_sizes;     // per group
  std::vector<std::uint64_t> parity_offsets;  // per group, in parity area
  std::vector<std::uint32_t> parity_crcs;     // group-major, m per group
  std::size_t parity_begin = 0;  // byte offset of the parity area
};

// Number of frames the compressor emits for (total, chunk_values): one
// per full chunk, the tail merged into the previous frame when it would
// fall below the pipeline minimum of 8 values. Computed arithmetically —
// never by materializing the boundary list — so a forged header cannot
// drive an allocation before this check runs.
std::size_t expected_frame_count(std::size_t total,
                                 std::size_t chunk_values) {
  std::size_t n = (total + chunk_values - 1) / chunk_values;
  if (n > 1 && total - (n - 1) * chunk_values < 8) --n;
  return n;
}

// Parity groups the geometry implies (0 when the container has none).
std::size_t parity_group_count(const ContainerHeader& h) {
  return h.parity_m == 0 ? 0
                         : (h.frame_count + h.parity_k - 1) / h.parity_k;
}

// Flat value range frame `f` covers. Well-defined once the frame count
// matches expected_frame_count: every frame holds chunk_values values
// except the last, which runs to the end of the data.
std::pair<std::size_t, std::size_t> frame_slot(const ContainerHeader& h,
                                               std::size_t f) {
  const std::size_t begin = f * h.chunk_values;
  const std::size_t end =
      f + 1 < h.frame_count ? begin + h.chunk_values : h.total;
  return {begin, end};
}

ContainerHeader parse_header(std::span<const std::uint8_t> container) {
  ByteReader r(container);
  const std::uint32_t magic = r.get_u32();
  if (magic != detail::kChunkedMagicV1 &&
      magic != detail::kChunkedMagicV2 && magic != detail::kChunkedMagicV3)
    throw FormatError("not a chunked DPZ container");

  ContainerHeader h;
  if (magic == detail::kChunkedMagicV2) {
    h.version = r.get_u8();
    if (h.version != detail::kFormatVersion)
      throw FormatError("unsupported chunked container version");
  } else if (magic == detail::kChunkedMagicV3) {
    h.version = r.get_u8();
    if (h.version != detail::kChunkedFormatVersion3)
      throw FormatError("unsupported chunked container version");
  }
  const std::uint8_t rank = r.get_u8();
  if (rank == 0 || rank > 4)
    throw FormatError("chunked container: bad rank");
  h.shape.resize(rank);
  h.total = 1;
  for (auto& d : h.shape) {
    d = static_cast<std::size_t>(r.get_u64());
    if (d == 0 || d > (1ULL << 40))
      throw FormatError("chunked container: implausible extent");
    h.total *= d;
    if (h.total > (1ULL << 40))
      throw FormatError("chunked container: implausible total");
  }
  h.chunk_values = static_cast<std::size_t>(r.get_u64());
  h.frame_count = static_cast<std::size_t>(r.get_u64());
  // The chunk geometry fully determines the frame count, so demand the
  // exact value instead of a plausibility envelope: best-effort recovery
  // needs every frame's slot to be computable from the header alone.
  if (h.chunk_values < 8 || h.chunk_values > (1ULL << 40) ||
      h.frame_count != expected_frame_count(h.total, h.chunk_values))
    throw FormatError("chunked container: inconsistent chunking");

  h.frame_offsets.resize(h.frame_count);
  h.frame_sizes.resize(h.frame_count);
  if (h.version >= detail::kFormatVersion)
    h.frame_crcs.resize(h.frame_count);
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    h.frame_offsets[f] = r.get_u64();
    h.frame_sizes[f] = r.get_u64();
    if (h.version >= detail::kFormatVersion) h.frame_crcs[f] = r.get_u32();
  }
  // v3 appends the parity geometry after the frame table (still inside
  // the sealed header): k, m, then per group its shard size and the
  // CRC32C of each of its m parity shards.
  std::uint64_t parity_bytes = 0;
  if (h.version >= detail::kChunkedFormatVersion3) {
    h.parity_k = r.get_u8();
    h.parity_m = r.get_u8();
    if (h.parity_k < 1 || h.parity_m < 1 ||
        h.parity_k + h.parity_m > 255)
      throw FormatError("chunked container: bad parity geometry");
    const std::size_t groups = parity_group_count(h);
    // Each group's table entry needs at least 8 bytes, so a claimed
    // group count beyond the remaining input is forged — reject before
    // sizing the tables off it.
    if (groups > r.remaining() / 8)
      throw FormatError("chunked container: bad parity geometry");
    h.shard_sizes.resize(groups);
    h.parity_offsets.resize(groups);
    h.parity_crcs.resize(groups * h.parity_m);
    for (std::size_t g = 0; g < groups; ++g) {
      h.parity_offsets[g] = parity_bytes;
      h.shard_sizes[g] = r.get_u64();
      if (h.shard_sizes[g] > (1ULL << 40))
        throw FormatError("chunked container: implausible parity shard");
      // Shard sizes are archive data: the running total must not wrap
      // 64 bits, or the parity-vs-container bound below checks a
      // wrapped sum and shard reads go out of bounds.
      const std::uint64_t group_bytes =
          static_cast<std::uint64_t>(h.parity_m) * h.shard_sizes[g];
      if (group_bytes > UINT64_MAX - parity_bytes)
        throw FormatError("chunked container: parity exceeds the container");
      parity_bytes += group_bytes;
      for (std::size_t j = 0; j < h.parity_m; ++j)
        h.parity_crcs[g * h.parity_m + j] = r.get_u32();
    }
  }
  // v2+ seals everything up to here — fields *and* tables — so a
  // flipped table byte is caught before any frame bytes are touched.
  if (h.version >= detail::kFormatVersion)
    detail::check_header_crc(r, container, "chunked container");
  h.frames_begin = r.position();

  // Frame table sanity: contiguous, in-bounds frames. Sizes are archive
  // data, so accumulate against the actual frame-area size instead of
  // trusting the sum not to wrap 64 bits. For v3 the frame area stops
  // where the parity area starts.
  const std::uint64_t tail = container.size() - h.frames_begin;
  if (parity_bytes > tail)
    throw FormatError("chunked container: parity exceeds the container");
  const std::uint64_t frame_area = tail - parity_bytes;
  std::uint64_t expected = 0;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    if (h.frame_offsets[f] != expected)
      throw FormatError("chunked container: non-contiguous frame table");
    if (h.frame_sizes[f] > frame_area - expected)
      throw FormatError("chunked container: frame exceeds the container");
    expected += h.frame_sizes[f];
  }
  if (expected != frame_area)
    throw FormatError("chunked container: frame area size mismatch");
  h.parity_begin = h.frames_begin + static_cast<std::size_t>(frame_area);
  // Every frame must fit its group's shard (parity runs over
  // zero-padded payloads, so a shorter shard cannot cover the frame).
  for (std::size_t f = 0; f < h.frame_count && h.parity_m != 0; ++f)
    if (h.frame_sizes[f] > h.shard_sizes[f / h.parity_k])
      throw FormatError("chunked container: frame exceeds its parity shard");
  return h;
}

std::span<const std::uint8_t> frame_bytes(
    std::span<const std::uint8_t> container, const ContainerHeader& h,
    std::size_t f) {
  return container.subspan(
      h.frames_begin + static_cast<std::size_t>(h.frame_offsets[f]),
      static_cast<std::size_t>(h.frame_sizes[f]));
}

std::span<const std::uint8_t> parity_shard_bytes(
    std::span<const std::uint8_t> container, const ContainerHeader& h,
    std::size_t g, std::size_t j) {
  return container.subspan(
      h.parity_begin + static_cast<std::size_t>(h.parity_offsets[g]) +
          j * static_cast<std::size_t>(h.shard_sizes[g]),
      static_cast<std::size_t>(h.shard_sizes[g]));
}

// v2 per-frame integrity: the frame's CRC32C must pass before its bytes
// reach the DPZ decoder (verify-before-inflate, docs/FORMAT.md).
bool frame_crc_ok(std::span<const std::uint8_t> frame,
                  const ContainerHeader& h, std::size_t f) {
  if (h.frame_crcs.empty()) return true;
  const obs::ScopedSpan crc_span(obs::Span::kCrcCheck);
  obs::count(obs::Counter::kCrcChecks);
  if (crc32c(frame) == h.frame_crcs[f]) return true;
  obs::count(obs::Counter::kCrcFailures);
  return false;
}

// Breadcrumb context for one frame: its index and absolute byte offset
// inside the container, so error reports can name the failing bytes.
obs::LogContext frame_log_ctx(const ContainerHeader& h, std::size_t f) {
  obs::LogContext ctx;
  ctx.offset = h.frames_begin + h.frame_offsets[f];
  ctx.frame = f;
  ctx.section = "frame";
  return ctx;
}

void check_frame_crc(std::span<const std::uint8_t> frame,
                     const ContainerHeader& h, std::size_t f) {
  if (!frame_crc_ok(frame, h, f)) {
    obs::log_error(obs::Event::kChecksumMismatch, StatusCode::kChecksum,
                   frame_log_ctx(h, f));
    throw ChecksumError("chunked container: frame " + std::to_string(f) +
                        " checksum mismatch");
  }
}

// Chunk boundaries over `total` values: every chunk has `chunk_values`
// values except the last, which absorbs the tail (and is merged into the
// previous chunk when the tail would fall below the pipeline minimum).
std::vector<std::size_t> chunk_starts(std::size_t total,
                                      std::size_t chunk_values) {
  std::vector<std::size_t> starts;
  for (std::size_t s = 0; s < total; s += chunk_values) starts.push_back(s);
  if (starts.size() > 1 && total - starts.back() < 8) starts.pop_back();
  return starts;
}

// Pre-flight admission for a container decode: the header-claimed output
// (h.total elements, sealed by the v2 header CRC) is priced against the
// governing memory budget before any frame is decoded, so a forged shape
// is rejected with ResourceExhausted instead of sizing the output buffer.
// Frame working sets are charged per allocation as frames decode.
void admit_container(const ContainerHeader& h, std::size_t elem_bytes) {
  if (const ResourceGovernor* g = current_governor())
    g->admit(static_cast<std::uint64_t>(h.total) * elem_bytes,
             "chunked container");
}

// Zero-padded data shards for parity group `g`: each stored frame
// payload padded to the group's shard size, absent frames of a short
// final group standing in as all-zero shards.
std::vector<std::vector<std::uint8_t>> padded_group_shards(
    std::span<const std::uint8_t> container, const ContainerHeader& h,
    std::size_t g) {
  const std::size_t shard_size =
      static_cast<std::size_t>(h.shard_sizes[g]);
  const ScopedCharge charge(static_cast<std::uint64_t>(h.parity_k) *
                            shard_size);
  std::vector<std::vector<std::uint8_t>> padded(h.parity_k);
  for (std::size_t i = 0; i < h.parity_k; ++i) {
    padded[i].assign(shard_size, 0);
    const std::size_t f = g * h.parity_k + i;
    if (f >= h.frame_count) continue;
    const std::span<const std::uint8_t> frame = frame_bytes(container, h, f);
    std::copy(frame.begin(), frame.end(), padded[i].begin());
  }
  return padded;
}

// A decode's parity-repair outcome: replacement bytes for every frame
// that reconstructed (and CRC-verified byte-exact), flags for the ones
// that did not. Empty vectors (parity-less containers, undamaged
// decodes) mean "no repairs".
struct RepairPlan {
  std::vector<std::vector<std::uint8_t>> replacement;  // per frame
  std::vector<std::uint8_t> repaired;      // per frame, 1 = replaced
  std::vector<std::uint8_t> unrecovered;   // per frame, 1 = beyond budget

  [[nodiscard]] bool frame_repaired(std::size_t f) const {
    return f < repaired.size() && repaired[f] != 0;
  }
  [[nodiscard]] bool frame_unrecovered(std::size_t f) const {
    return f < unrecovered.size() && unrecovered[f] != 0;
  }
};

// Reed-Solomon reconstruction of every damaged frame from its group's
// surviving shards. `damaged[f]` marks frames whose CRC failed. A
// rebuilt frame only counts as repaired once its bytes re-verify
// against the frame table's CRC32C — repair is byte-exact or it is a
// failure. Counts kFramesRepaired / kRepairFailed exactly once per
// damaged frame. Requires h.parity_m > 0.
RepairPlan attempt_repairs(std::span<const std::uint8_t> container,
                           const ContainerHeader& h,
                           std::span<const std::uint8_t> damaged) {
  RepairPlan plan;
  plan.replacement.resize(h.frame_count);
  plan.repaired.assign(h.frame_count, 0);
  plan.unrecovered.assign(h.frame_count, 0);
  const ecc::RsCodec codec(h.parity_k, h.parity_m);
  const std::size_t groups = parity_group_count(h);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t first = g * h.parity_k;
    const std::size_t last =
        std::min(first + h.parity_k, h.frame_count);
    bool any = false;
    for (std::size_t f = first; f < last; ++f) any |= damaged[f] != 0;
    if (!any) continue;
    governed_poll();
    const obs::ScopedSpan repair_span(obs::Span::kFrameRepair);
    const std::size_t shard_size =
        static_cast<std::size_t>(h.shard_sizes[g]);
    const std::vector<std::vector<std::uint8_t>> padded =
        padded_group_shards(container, h, g);
    std::vector<std::span<const std::uint8_t>> shards(h.parity_k +
                                                      h.parity_m);
    std::vector<std::uint8_t> present(h.parity_k + h.parity_m, 0);
    for (std::size_t i = 0; i < h.parity_k; ++i) {
      const std::size_t f = first + i;
      if (f < h.frame_count && damaged[f] != 0) continue;
      shards[i] = padded[i];
      present[i] = 1;
    }
    // Parity shards vouch for themselves through the header-sealed
    // CRCs: a damaged shard is simply absent from the reconstruction.
    for (std::size_t j = 0; j < h.parity_m; ++j) {
      const auto shard = parity_shard_bytes(container, h, g, j);
      if (crc32c(shard) != h.parity_crcs[g * h.parity_m + j]) continue;
      shards[h.parity_k + j] = shard;
      present[h.parity_k + j] = 1;
    }
    std::size_t surviving = 0;
    for (const std::uint8_t p : present) surviving += p;
    if (surviving < h.parity_k) {
      for (std::size_t f = first; f < last; ++f) {
        if (damaged[f] == 0) continue;
        const obs::ScopedSpan frame_span(obs::Span::kFrameRepair);
        plan.unrecovered[f] = 1;
        obs::count(obs::Counter::kRepairFailed);
        obs::log_error(obs::Event::kFrameRepairFailed,
                       StatusCode::kChecksum, frame_log_ctx(h, f),
                       "too few surviving shards");
      }
      continue;
    }
    const ScopedCharge charge(static_cast<std::uint64_t>(h.parity_k) *
                              shard_size);
    const std::vector<std::vector<std::uint8_t>> data =
        codec.reconstruct(shards, present);
    for (std::size_t f = first; f < last; ++f) {
      if (damaged[f] == 0) continue;
      const obs::ScopedSpan frame_span(obs::Span::kFrameRepair);
      const std::size_t i = f - first;
      std::vector<std::uint8_t> bytes(
          data[i].begin(),
          data[i].begin() +
              static_cast<std::ptrdiff_t>(h.frame_sizes[f]));
      if (crc32c(bytes) == h.frame_crcs[f]) {
        plan.replacement[f] = std::move(bytes);
        plan.repaired[f] = 1;
        obs::count(obs::Counter::kFramesRepaired);
        obs::log_event(obs::Event::kFrameRebuilt, obs::LogLevel::kInfo,
                       StatusCode::kOk, frame_log_ctx(h, f));
      } else {
        plan.unrecovered[f] = 1;
        obs::count(obs::Counter::kRepairFailed);
        obs::log_error(obs::Event::kFrameRepairFailed,
                       StatusCode::kChecksum, frame_log_ctx(h, f),
                       "reconstruction fails the stored checksum");
      }
    }
  }
  return plan;
}

// CRC-scans every frame and, when the container carries parity and any
// frame is damaged, attempts reconstruction. The returned plan is empty
// for parity-less containers (callers then keep the classic per-frame
// CRC handling).
RepairPlan scan_and_repair(std::span<const std::uint8_t> container,
                           const ContainerHeader& h) {
  RepairPlan plan;
  if (h.parity_m == 0) return plan;
  std::vector<std::uint8_t> damaged(h.frame_count, 0);
  bool any = false;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    damaged[f] = frame_crc_ok(frame_bytes(container, h, f), h, f) ? 0 : 1;
    any |= damaged[f] != 0;
  }
  if (!any) {
    plan.repaired.assign(h.frame_count, 0);
    plan.unrecovered.assign(h.frame_count, 0);
    plan.replacement.resize(h.frame_count);
    return plan;
  }
  return attempt_repairs(container, h, damaged);
}

// Frame payload as the decoder should see it: the parity-reconstructed
// replacement when one exists, the stored bytes otherwise.
std::span<const std::uint8_t> frame_view(
    std::span<const std::uint8_t> container, const ContainerHeader& h,
    const RepairPlan& plan, std::size_t f) {
  if (plan.frame_repaired(f)) return plan.replacement[f];
  return frame_bytes(container, h, f);
}

void fill_repair_report(const RepairPlan& plan, DecodeReport* report) {
  if (report == nullptr) return;
  for (std::size_t f = 0; f < plan.repaired.size(); ++f) {
    if (plan.repaired[f] == 0) continue;
    ++report->frames_repaired;
    report->repaired.push_back(f);
  }
}

template <typename T>
NdArray<T> decompress_strict(std::span<const std::uint8_t> container,
                             const ContainerHeader& h,
                             DecodeReport* report) {
  admit_container(h, sizeof(T));
  // Parity containers pre-scan every frame CRC so damage can be
  // repaired before the decode proper; a frame beyond the parity budget
  // keeps the strict contract and throws. The per-frame CRC check in
  // the decode loop is skipped afterwards — every surviving payload
  // (stored or reconstructed) has already verified.
  const RepairPlan plan = scan_and_repair(container, h);
  const bool prescanned = h.parity_m > 0;
  for (std::size_t f = 0; f < h.frame_count; ++f)
    if (plan.frame_unrecovered(f)) {
      obs::log_error(obs::Event::kChecksumMismatch, StatusCode::kChecksum,
                     frame_log_ctx(h, f), "beyond the parity budget");
      throw ChecksumError("chunked container: frame " + std::to_string(f) +
                          " checksum mismatch (beyond the parity budget)");
    }

  // Cheap header-only pre-pass: every frame claims its decoded size, and
  // the claims must exactly tile the container's shape *before* any frame
  // is decoded. This bounds transient memory by h.total — a forged
  // container cannot make us decode an arbitrary sum of frames and only
  // find out afterwards that they exceed the claimed shape.
  std::size_t claimed = 0;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    const DpzArchiveInfo info = dpz_inspect(frame_view(container, h, plan, f));
    std::size_t count = 1;
    for (const std::size_t d : info.shape) count *= d;
    if (count > h.total - claimed)
      throw FormatError("chunked container: frames exceed the shape");
    claimed += count;
  }
  if (claimed != h.total)
    throw FormatError("chunked container: frames do not cover the shape");

  // Decode the frames in parallel into per-frame buffers, then
  // concatenate in frame order. Nothing is allocated from the claimed
  // shape up front: the header's dims are archive data, and a forged
  // total must not size an allocation the frames cannot back — each
  // frame's own decode validates (and bounds) its output, and the sum is
  // re-checked against the shape before the final buffer is built.
  // Per-frame failures are collected rather than rethrown by the pool so
  // the error that surfaces is deterministically the lowest frame's.
  std::vector<FloatArray> chunks(h.frame_count);
  std::vector<std::exception_ptr> errors(h.frame_count);
  parallel_for(0, h.frame_count, [&](std::size_t f) {
    const obs::ScopedSpan frame_span(obs::Span::kFrameDecode);
    try {
      const auto frame = frame_view(container, h, plan, f);
      if (!prescanned) check_frame_crc(frame, h, f);
      chunks[f] = dpz_decompress(frame);
      obs::count(obs::Counter::kFramesDecoded);
    } catch (...) {
      errors[f] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  std::size_t total = 0;
  for (const FloatArray& chunk : chunks) {
    if (chunk.size() > h.total - total)
      throw FormatError("chunked container: frames exceed the shape");
    total += chunk.size();
  }
  if (total != h.total)
    throw FormatError("chunked container: frames do not cover the shape");

  if (report != nullptr) {
    *report = DecodeReport{};
    report->frames_total = h.frame_count;
    report->frames_recovered = h.frame_count;
    fill_repair_report(plan, report);
  }
  std::vector<T> values;
  values.reserve(h.total);
  for (const FloatArray& chunk : chunks)
    values.insert(values.end(), chunk.flat().begin(), chunk.flat().end());
  return NdArray<T>(h.shape, std::move(values));
}

template <typename T>
NdArray<T> decompress_best_effort(std::span<const std::uint8_t> container,
                                  const ContainerHeader& h, double fill,
                                  DecodeReport* report) {
  admit_container(h, sizeof(T));
  // Parity containers try reconstruction before the decode loop, so a
  // damaged frame only reaches the fill path once its loss exceeded the
  // parity budget.
  RepairPlan plan = scan_and_repair(container, h);
  const bool prescanned = h.parity_m > 0;

  // The output is sized from the header geometry (already validated and,
  // for v2, sealed by the header CRC) and pre-filled so lost frames are
  // visible as runs of the fill value. Each frame writes only its own
  // slot, so the parallel loop touches disjoint ranges.
  std::vector<T> values(h.total, static_cast<T>(fill));
  std::vector<std::string> frame_error(h.frame_count);
  std::vector<std::uint8_t> frame_lost(h.frame_count, 0);
  std::vector<std::exception_ptr> fatal(h.frame_count);
  parallel_for(0, h.frame_count, [&](std::size_t f) {
    const obs::ScopedSpan frame_span(obs::Span::kFrameDecode);
    const auto [begin, end] = frame_slot(h, f);
    if (plan.frame_unrecovered(f)) {
      frame_lost[f] = 1;
      frame_error[f] = "chunked container: frame " + std::to_string(f) +
                       " checksum mismatch (beyond the parity budget)";
      return;
    }
    try {
      const auto frame = frame_view(container, h, plan, f);
      if (!prescanned) check_frame_crc(frame, h, f);
      const FloatArray chunk = dpz_decompress(frame);
      if (chunk.size() != end - begin)
        throw FormatError("chunked container: frame " + std::to_string(f) +
                          " does not match its slot");
      std::copy(chunk.flat().begin(), chunk.flat().end(),
                values.begin() + static_cast<std::ptrdiff_t>(begin));
      obs::count(obs::Counter::kFramesDecoded);
    } catch (const Error& e) {
      // Governance aborts are not frame damage: cancellation, deadline
      // expiry, and budget exhaustion fail the whole decode (below)
      // instead of masquerading as a salvageable lost frame.
      if (e.code() == StatusCode::kCancelled ||
          e.code() == StatusCode::kDeadlineExceeded ||
          e.code() == StatusCode::kResourceExhausted) {
        fatal[f] = std::current_exception();
        return;
      }
      frame_lost[f] = 1;
      frame_error[f] = e.what();
    }
  });
  for (const std::exception_ptr& e : fatal)
    if (e) std::rethrow_exception(e);

  // A reconstructed frame whose bytes then failed to decode ends up
  // lost, not repaired (possible only when the original archive stored
  // an undecodable frame with a valid CRC).
  for (std::size_t f = 0; f < h.frame_count; ++f)
    if (frame_lost[f] != 0 && plan.frame_repaired(f)) plan.repaired[f] = 0;

  for (std::size_t f = 0; f < h.frame_count; ++f) {
    if (frame_lost[f] != 0) {
      obs::count(obs::Counter::kFramesLost);
      obs::log_event(obs::Event::kFrameLost, obs::LogLevel::kWarn,
                     StatusCode::kChecksum, frame_log_ctx(h, f),
                     frame_error[f]);
    } else {
      obs::count(obs::Counter::kFramesRecovered);
    }
  }

  if (report != nullptr) {
    *report = DecodeReport{};
    report->frames_total = h.frame_count;
    for (std::size_t f = 0; f < h.frame_count; ++f) {
      if (frame_lost[f] != 0) {
        report->lost.push_back({f, frame_error[f]});
      } else {
        ++report->frames_recovered;
      }
    }
    fill_repair_report(plan, report);
  }
  return NdArray<T>(h.shape, std::move(values));
}

template <typename T>
NdArray<T> decompress_with_policy(std::span<const std::uint8_t> container,
                                  const ChunkedConfig& config,
                                  DecodeReport* report) {
  // Install the governor before the header parse so even table-sized
  // allocations and the admission pre-flight run governed.
  const GovernorScope governor_scope(config.dpz.limits);
  governed_poll();
  const ContainerHeader h = parse_header(container);
  const ScopedThreads pool_scope(config.threads);
  if (config.decode_policy == DecodePolicy::kBestEffort)
    return decompress_best_effort<T>(container, h, config.fill_value,
                                     report);
  return decompress_strict<T>(container, h, report);
}

}  // namespace

std::vector<std::uint8_t> chunked_compress(const FloatArray& data,
                                           const ChunkedConfig& config,
                                           ChunkedStats* stats) {
  DPZ_REQUIRE(config.chunk_values >= 8, "chunk must hold at least 8 values");
  DPZ_REQUIRE(data.size() >= 8, "chunked DPZ needs at least 8 values");
  const bool parity = config.parity_m > 0;
  DPZ_REQUIRE(!parity || (config.parity_k >= 1 &&
                          config.parity_k + config.parity_m <= 255),
              "parity geometry must satisfy 1 <= k and k + m <= 255");

  // One governor for the whole container: frames inherit it through
  // parallel_for (workers adopt the publisher's governor), so budget,
  // deadline, and cancel cover every frame without per-frame re-scoping.
  const GovernorScope governor_scope(config.dpz.limits);
  governed_poll();

  ChunkedStats local;
  ChunkedStats& st = stats != nullptr ? *stats : local;
  st = ChunkedStats{};
  st.original_bytes = data.size() * sizeof(float);

  const std::vector<std::size_t> starts =
      chunk_starts(data.size(), config.chunk_values);

  // Frames are independent (no cross-chunk state), so they compress in
  // parallel into pre-sized slots; each frame's bytes depend only on its
  // chunk and the config, never on the worker count or finish order.
  // Inner pipeline loops run inline on the frame's worker (nested
  // parallel_for), so the frame config must not spin up its own pool.
  const ScopedThreads pool_scope(config.threads);
  DpzConfig frame_config = config.dpz;
  frame_config.threads = 0;
  // Cleared like `threads`: each frame runs under the container governor
  // installed above rather than nesting a fresh per-frame one.
  frame_config.limits = ResourceLimits{};
  std::vector<std::vector<std::uint8_t>> frames(starts.size());
  std::vector<std::uint8_t> frame_stored_raw(starts.size(), 0);
  parallel_for(0, starts.size(), [&](std::size_t f) {
    const obs::ScopedSpan frame_span(obs::Span::kFrameEncode);
    const std::size_t begin = starts[f];
    const std::size_t end =
        (f + 1 < starts.size()) ? starts[f + 1] : data.size();
    const std::span<const float> slice =
        data.flat().subspan(begin, end - begin);
    FloatArray chunk({slice.size()},
                     std::vector<float>(slice.begin(), slice.end()));
    DpzStats frame_stats;
    frames[f] = dpz_compress(chunk, frame_config, &frame_stats);
    frame_stored_raw[f] = frame_stats.stored_raw ? 1 : 0;
    obs::count(obs::Counter::kFramesEncoded);
    obs::observe(obs::Hist::kFrameBytes, frames[f].size());
  });
  for (const std::uint8_t raw : frame_stored_raw)
    if (raw != 0) ++st.stored_raw_frames;

  // Parity shards over the compressed payloads (format v3): groups of k
  // frames, each zero-padded to the group's largest frame; the shards
  // are deterministic functions of the frame bytes, so parity never
  // perturbs thread-count invariance.
  const std::size_t k = config.parity_k;
  const std::size_t m = config.parity_m;
  std::vector<std::uint64_t> shard_sizes;
  std::vector<std::vector<std::vector<std::uint8_t>>> parity_shards;
  if (parity) {
    const ecc::RsCodec codec(k, m);
    const std::size_t groups = (frames.size() + k - 1) / k;
    shard_sizes.resize(groups, 0);
    parity_shards.resize(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      governed_poll();
      const obs::ScopedSpan repair_span(obs::Span::kFrameRepair);
      const std::size_t first = g * k;
      const std::size_t last = std::min(first + k, frames.size());
      for (std::size_t f = first; f < last; ++f)
        shard_sizes[g] = std::max<std::uint64_t>(shard_sizes[g],
                                                 frames[f].size());
      const std::size_t shard_size =
          static_cast<std::size_t>(shard_sizes[g]);
      const ScopedCharge charge(static_cast<std::uint64_t>(k) *
                                shard_size);
      std::vector<std::vector<std::uint8_t>> padded(k);
      std::vector<std::span<const std::uint8_t>> spans(k);
      for (std::size_t i = 0; i < k; ++i) {
        padded[i].assign(shard_size, 0);
        const std::size_t f = first + i;
        if (f < frames.size())
          std::copy(frames[f].begin(), frames[f].end(),
                    padded[i].begin());
        spans[i] = padded[i];
      }
      parity_shards[g] = codec.encode(spans);
    }
  }

  ByteWriter w;
  w.put_u32(parity ? detail::kChunkedMagicV3 : detail::kChunkedMagicV2);
  w.put_u8(parity ? detail::kChunkedFormatVersion3
                  : detail::kFormatVersion);
  w.put_u8(static_cast<std::uint8_t>(data.shape().size()));
  for (const std::size_t d : data.shape()) w.put_u64(d);
  w.put_u64(config.chunk_values);
  w.put_u64(frames.size());
  std::uint64_t offset = 0;
  for (const auto& frame : frames) {
    w.put_u64(offset);
    w.put_u64(frame.size());
    w.put_u32(crc32c(frame));
    offset += frame.size();
  }
  if (parity) {
    w.put_u8(static_cast<std::uint8_t>(k));
    w.put_u8(static_cast<std::uint8_t>(m));
    for (std::size_t g = 0; g < parity_shards.size(); ++g) {
      w.put_u64(shard_sizes[g]);
      for (const auto& shard : parity_shards[g])
        w.put_u32(crc32c(shard));
    }
  }
  detail::put_header_crc(w);
  for (const auto& frame : frames) w.put_bytes(frame);
  for (const auto& group : parity_shards)
    for (const auto& shard : group) w.put_bytes(shard);

  std::vector<std::uint8_t> out = w.take();
  st.frame_count = frames.size();
  st.archive_bytes = out.size();
  return out;
}

FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              unsigned threads) {
  const ContainerHeader h = parse_header(container);
  const ScopedThreads pool_scope(threads);
  return decompress_strict<float>(container, h, nullptr);
}

FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              const ChunkedConfig& config,
                              DecodeReport* report) {
  return decompress_with_policy<float>(container, config, report);
}

DoubleArray chunked_decompress_f64(std::span<const std::uint8_t> container,
                                   const ChunkedConfig& config,
                                   DecodeReport* report) {
  return decompress_with_policy<double>(container, config, report);
}

ChunkView chunked_decompress_frame(std::span<const std::uint8_t> container,
                                   std::size_t frame_index) {
  const ContainerHeader h = parse_header(container);
  DPZ_REQUIRE(frame_index < h.frame_count, "frame index out of range");

  std::span<const std::uint8_t> frame = frame_bytes(container, h, frame_index);
  std::vector<std::uint8_t> rebuilt;
  if (!frame_crc_ok(frame, h, frame_index)) {
    // Same self-healing contract as whole-container decode: a damaged
    // frame in a parity-carrying container is reconstructed from its
    // group before the random-access path gives up on it.
    if (h.parity_m == 0) {
      obs::log_error(obs::Event::kChecksumMismatch, StatusCode::kChecksum,
                     frame_log_ctx(h, frame_index));
      throw ChecksumError("chunked container: frame " +
                          std::to_string(frame_index) +
                          " checksum mismatch");
    }
    std::vector<std::uint8_t> damaged(h.frame_count, 0);
    damaged[frame_index] = 1;
    const std::size_t first = (frame_index / h.parity_k) * h.parity_k;
    const std::size_t last = std::min(first + h.parity_k, h.frame_count);
    for (std::size_t f = first; f < last; ++f)
      if (f != frame_index)
        damaged[f] = frame_crc_ok(frame_bytes(container, h, f), h, f) ? 0 : 1;
    RepairPlan plan = attempt_repairs(container, h, damaged);
    if (!plan.frame_repaired(frame_index)) {
      obs::log_error(obs::Event::kChecksumMismatch, StatusCode::kChecksum,
                     frame_log_ctx(h, frame_index),
                     "beyond the parity budget");
      throw ChecksumError("chunked container: frame " +
                          std::to_string(frame_index) +
                          " is beyond the parity budget");
    }
    rebuilt = std::move(plan.replacement[frame_index]);
    frame = rebuilt;
  }
  const FloatArray chunk = dpz_decompress(frame);

  ChunkView view;
  view.frame_index = frame_index;
  view.value_offset = frame_index * h.chunk_values;
  view.values.assign(chunk.flat().begin(), chunk.flat().end());
  return view;
}

std::size_t chunked_frame_count(std::span<const std::uint8_t> container) {
  return parse_header(container).frame_count;
}

std::vector<std::uint8_t> chunked_repair(
    std::span<const std::uint8_t> container, RepairReport* report) {
  governed_poll();
  const obs::ScopedSpan archive_span(obs::Span::kArchiveRepair);
  const ContainerHeader h = parse_header(container);
  RepairReport local;
  RepairReport& rep = report != nullptr ? *report : local;
  rep = RepairReport{};
  rep.frames_total = h.frame_count;

  std::vector<std::uint8_t> damaged(h.frame_count, 0);
  bool any_frame = false;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    damaged[f] = frame_crc_ok(frame_bytes(container, h, f), h, f) ? 0 : 1;
    any_frame |= damaged[f] != 0;
  }
  const std::size_t groups = parity_group_count(h);
  std::vector<std::uint8_t> shard_damaged(groups * h.parity_m, 0);
  bool any_parity = false;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t j = 0; j < h.parity_m; ++j) {
      if (crc32c(parity_shard_bytes(container, h, g, j)) ==
          h.parity_crcs[g * h.parity_m + j])
        continue;
      shard_damaged[g * h.parity_m + j] = 1;
      any_parity = true;
    }
  }
  if (!any_frame && !any_parity)
    return {container.begin(), container.end()};
  if (h.parity_m == 0) {
    obs::log_error(obs::Event::kFrameRepairFailed, StatusCode::kChecksum,
                   {}, "no parity to repair from");
    throw ChecksumError(
        "chunked container: damaged frames and no parity to repair from");
  }

  RepairPlan plan;
  if (any_frame) {
    plan = attempt_repairs(container, h, damaged);
    for (std::size_t f = 0; f < h.frame_count; ++f)
      if (plan.unrecovered[f] != 0)
        throw ChecksumError("chunked container: frame " +
                            std::to_string(f) +
                            " is beyond the parity budget");
  }

  const ScopedCharge charge(container.size());
  std::vector<std::uint8_t> healed(container.begin(), container.end());
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    if (!plan.frame_repaired(f)) continue;
    std::copy(plan.replacement[f].begin(), plan.replacement[f].end(),
              healed.begin() +
                  static_cast<std::ptrdiff_t>(
                      h.frames_begin +
                      static_cast<std::size_t>(h.frame_offsets[f])));
    rep.frames_repaired.push_back(f);
  }

  // Rebuild damaged parity shards from the (now intact) frame payloads;
  // each must re-verify against its header-sealed CRC, proving the
  // healed archive is byte-identical to the pre-damage one.
  if (any_parity) {
    const ecc::RsCodec codec(h.parity_k, h.parity_m);
    for (std::size_t g = 0; g < groups; ++g) {
      bool group_damaged = false;
      for (std::size_t j = 0; j < h.parity_m; ++j)
        group_damaged |= shard_damaged[g * h.parity_m + j] != 0;
      if (!group_damaged) continue;
      governed_poll();
      const obs::ScopedSpan repair_span(obs::Span::kFrameRepair);
      const std::vector<std::vector<std::uint8_t>> padded =
          padded_group_shards(healed, h, g);
      std::vector<std::span<const std::uint8_t>> spans(h.parity_k);
      for (std::size_t i = 0; i < h.parity_k; ++i) spans[i] = padded[i];
      const std::vector<std::vector<std::uint8_t>> parity =
          codec.encode(spans);
      for (std::size_t j = 0; j < h.parity_m; ++j) {
        if (shard_damaged[g * h.parity_m + j] == 0) continue;
        if (crc32c(parity[j]) != h.parity_crcs[g * h.parity_m + j]) {
          obs::LogContext ctx;
          ctx.offset = h.parity_begin +
                       static_cast<std::size_t>(h.parity_offsets[g]) +
                       j * static_cast<std::size_t>(h.shard_sizes[g]);
          ctx.section = "parity";
          obs::log_error(obs::Event::kChecksumMismatch,
                         StatusCode::kChecksum, ctx,
                         "rebuilt parity shard fails its stored checksum");
          throw ChecksumError(
              "chunked container: rebuilt parity shard fails its stored "
              "checksum");
        }
        std::copy(
            parity[j].begin(), parity[j].end(),
            healed.begin() +
                static_cast<std::ptrdiff_t>(
                    h.parity_begin +
                    static_cast<std::size_t>(h.parity_offsets[g]) +
                    j * static_cast<std::size_t>(h.shard_sizes[g])));
        ++rep.parity_shards_repaired;
      }
    }
  }
  return healed;
}

ScrubReport chunked_scrub(std::span<const std::uint8_t> container) {
  governed_poll();
  const obs::ScopedSpan archive_span(obs::Span::kArchiveRepair);
  const ContainerHeader h = parse_header(container);
  ScrubReport s;
  s.frames_total = h.frame_count;
  s.parity_k = h.parity_k;
  s.parity_m = h.parity_m;
  s.groups = parity_group_count(h);

  std::vector<std::uint8_t> frame_ok(h.frame_count, 1);
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    if (frame_crc_ok(frame_bytes(container, h, f), h, f)) continue;
    frame_ok[f] = 0;
    ++s.frames_damaged;
  }
  if (h.parity_m == 0) return s;

  std::vector<std::uint8_t> shard_ok(s.groups * h.parity_m, 1);
  for (std::size_t g = 0; g < s.groups; ++g) {
    for (std::size_t j = 0; j < h.parity_m; ++j) {
      if (crc32c(parity_shard_bytes(container, h, g, j)) ==
          h.parity_crcs[g * h.parity_m + j])
        continue;
      shard_ok[g * h.parity_m + j] = 0;
      ++s.parity_shards_damaged;
    }
  }

  // Consistency audit: recompute each fully-intact group's parity from
  // the stored payloads and compare it to the intact stored shards —
  // no frame is ever decoded.
  const ecc::RsCodec codec(h.parity_k, h.parity_m);
  for (std::size_t g = 0; g < s.groups; ++g) {
    const std::size_t first = g * h.parity_k;
    const std::size_t last =
        std::min(first + h.parity_k, h.frame_count);
    bool inputs_ok = true;
    for (std::size_t f = first; f < last; ++f)
      inputs_ok &= frame_ok[f] != 0;
    if (!inputs_ok) continue;
    governed_poll();
    const obs::ScopedSpan group_span(obs::Span::kFrameRepair);
    const std::vector<std::vector<std::uint8_t>> padded =
        padded_group_shards(container, h, g);
    std::vector<std::span<const std::uint8_t>> spans(h.parity_k);
    for (std::size_t i = 0; i < h.parity_k; ++i) spans[i] = padded[i];
    const std::vector<std::vector<std::uint8_t>> parity =
        codec.encode(spans);
    for (std::size_t j = 0; j < h.parity_m; ++j) {
      if (shard_ok[g * h.parity_m + j] == 0) continue;
      const auto stored = parity_shard_bytes(container, h, g, j);
      if (!std::equal(parity[j].begin(), parity[j].end(),
                      stored.begin(), stored.end()))
        ++s.parity_mismatches;
    }
  }
  return s;
}

ParityInfo chunked_parity_info(std::span<const std::uint8_t> container) {
  const ContainerHeader h = parse_header(container);
  ParityInfo info;
  info.parity_k = h.parity_k;
  info.parity_m = h.parity_m;
  info.groups = parity_group_count(h);
  for (std::size_t g = 0; g < info.groups; ++g)
    info.parity_bytes += h.parity_m * h.shard_sizes[g];
  return info;
}

DecodePreflight chunked_decode_preflight(
    std::span<const std::uint8_t> container) {
  const ContainerHeader h = parse_header(container);
  DecodePreflight pf;
  pf.decoded_bytes =
      static_cast<std::uint64_t>(h.total) * sizeof(float);
  // Serial-decode peak: the output buffer plus the most expensive single
  // frame's transient working set (frames are decoded one slot at a
  // time; a parallel decode can hold up to `threads` frames in flight,
  // which the runtime per-allocation charges still bound exactly).
  std::uint64_t worst_frame = 0;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    const DpzArchiveInfo info = dpz_inspect(frame_bytes(container, h, f));
    worst_frame =
        std::max(worst_frame, dpz_decode_preflight(info).peak_bytes);
  }
  pf.peak_bytes = pf.decoded_bytes > UINT64_MAX - worst_frame
                      ? UINT64_MAX
                      : pf.decoded_bytes + worst_frame;
  return pf;
}

}  // namespace dpz
