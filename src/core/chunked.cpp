#include "core/chunked.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "codec/bytes.h"
#include "core/archive_detail.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32c.h"
#include "util/error.h"
#include "util/resource.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

struct ContainerHeader {
  std::uint8_t version = detail::kFormatVersionLegacy;
  std::vector<std::size_t> shape;
  std::size_t total = 0;
  std::size_t chunk_values = 0;
  std::size_t frame_count = 0;
  std::vector<std::uint64_t> frame_offsets;  // relative to frame area
  std::vector<std::uint64_t> frame_sizes;
  std::vector<std::uint32_t> frame_crcs;  // empty for v1 containers
  std::size_t frames_begin = 0;  // byte offset of the frame area
};

// Number of frames the compressor emits for (total, chunk_values): one
// per full chunk, the tail merged into the previous frame when it would
// fall below the pipeline minimum of 8 values. Computed arithmetically —
// never by materializing the boundary list — so a forged header cannot
// drive an allocation before this check runs.
std::size_t expected_frame_count(std::size_t total,
                                 std::size_t chunk_values) {
  std::size_t n = (total + chunk_values - 1) / chunk_values;
  if (n > 1 && total - (n - 1) * chunk_values < 8) --n;
  return n;
}

// Flat value range frame `f` covers. Well-defined once the frame count
// matches expected_frame_count: every frame holds chunk_values values
// except the last, which runs to the end of the data.
std::pair<std::size_t, std::size_t> frame_slot(const ContainerHeader& h,
                                               std::size_t f) {
  const std::size_t begin = f * h.chunk_values;
  const std::size_t end =
      f + 1 < h.frame_count ? begin + h.chunk_values : h.total;
  return {begin, end};
}

ContainerHeader parse_header(std::span<const std::uint8_t> container) {
  ByteReader r(container);
  const std::uint32_t magic = r.get_u32();
  if (magic != detail::kChunkedMagicV1 && magic != detail::kChunkedMagicV2)
    throw FormatError("not a chunked DPZ container");

  ContainerHeader h;
  if (magic == detail::kChunkedMagicV2) {
    h.version = r.get_u8();
    if (h.version != detail::kFormatVersion)
      throw FormatError("unsupported chunked container version");
  }
  const std::uint8_t rank = r.get_u8();
  if (rank == 0 || rank > 4)
    throw FormatError("chunked container: bad rank");
  h.shape.resize(rank);
  h.total = 1;
  for (auto& d : h.shape) {
    d = static_cast<std::size_t>(r.get_u64());
    if (d == 0 || d > (1ULL << 40))
      throw FormatError("chunked container: implausible extent");
    h.total *= d;
    if (h.total > (1ULL << 40))
      throw FormatError("chunked container: implausible total");
  }
  h.chunk_values = static_cast<std::size_t>(r.get_u64());
  h.frame_count = static_cast<std::size_t>(r.get_u64());
  // The chunk geometry fully determines the frame count, so demand the
  // exact value instead of a plausibility envelope: best-effort recovery
  // needs every frame's slot to be computable from the header alone.
  if (h.chunk_values < 8 || h.chunk_values > (1ULL << 40) ||
      h.frame_count != expected_frame_count(h.total, h.chunk_values))
    throw FormatError("chunked container: inconsistent chunking");

  h.frame_offsets.resize(h.frame_count);
  h.frame_sizes.resize(h.frame_count);
  if (h.version >= detail::kFormatVersion)
    h.frame_crcs.resize(h.frame_count);
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    h.frame_offsets[f] = r.get_u64();
    h.frame_sizes[f] = r.get_u64();
    if (h.version >= detail::kFormatVersion) h.frame_crcs[f] = r.get_u32();
  }
  // v2 seals everything up to here — fields *and* frame table — so a
  // flipped table byte is caught before any frame bytes are touched.
  if (h.version >= detail::kFormatVersion)
    detail::check_header_crc(r, container, "chunked container");
  h.frames_begin = r.position();

  // Frame table sanity: contiguous, in-bounds frames. Sizes are archive
  // data, so accumulate against the actual frame-area size instead of
  // trusting the sum not to wrap 64 bits.
  const std::uint64_t frame_area = container.size() - h.frames_begin;
  std::uint64_t expected = 0;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    if (h.frame_offsets[f] != expected)
      throw FormatError("chunked container: non-contiguous frame table");
    if (h.frame_sizes[f] > frame_area - expected)
      throw FormatError("chunked container: frame exceeds the container");
    expected += h.frame_sizes[f];
  }
  if (expected != frame_area)
    throw FormatError("chunked container: frame area size mismatch");
  return h;
}

std::span<const std::uint8_t> frame_bytes(
    std::span<const std::uint8_t> container, const ContainerHeader& h,
    std::size_t f) {
  return container.subspan(
      h.frames_begin + static_cast<std::size_t>(h.frame_offsets[f]),
      static_cast<std::size_t>(h.frame_sizes[f]));
}

// v2 per-frame integrity: verify the frame's CRC32C before its bytes
// reach the DPZ decoder (verify-before-inflate, docs/FORMAT.md).
void check_frame_crc(std::span<const std::uint8_t> frame,
                     const ContainerHeader& h, std::size_t f) {
  if (h.frame_crcs.empty()) return;
  const obs::ScopedSpan crc_span(obs::Span::kCrcCheck);
  obs::count(obs::Counter::kCrcChecks);
  if (crc32c(frame) != h.frame_crcs[f]) {
    obs::count(obs::Counter::kCrcFailures);
    throw ChecksumError("chunked container: frame " + std::to_string(f) +
                        " checksum mismatch");
  }
}

// Chunk boundaries over `total` values: every chunk has `chunk_values`
// values except the last, which absorbs the tail (and is merged into the
// previous chunk when the tail would fall below the pipeline minimum).
std::vector<std::size_t> chunk_starts(std::size_t total,
                                      std::size_t chunk_values) {
  std::vector<std::size_t> starts;
  for (std::size_t s = 0; s < total; s += chunk_values) starts.push_back(s);
  if (starts.size() > 1 && total - starts.back() < 8) starts.pop_back();
  return starts;
}

// Pre-flight admission for a container decode: the header-claimed output
// (h.total floats, sealed by the v2 header CRC) is priced against the
// governing memory budget before any frame is decoded, so a forged shape
// is rejected with ResourceExhausted instead of sizing the output buffer.
// Frame working sets are charged per allocation as frames decode.
void admit_container(const ContainerHeader& h) {
  if (const ResourceGovernor* g = current_governor())
    g->admit(static_cast<std::uint64_t>(h.total) * sizeof(float),
             "chunked container");
}

FloatArray decompress_strict(std::span<const std::uint8_t> container,
                             const ContainerHeader& h,
                             DecodeReport* report) {
  admit_container(h);
  // Cheap header-only pre-pass: every frame claims its decoded size, and
  // the claims must exactly tile the container's shape *before* any frame
  // is decoded. This bounds transient memory by h.total — a forged
  // container cannot make us decode an arbitrary sum of frames and only
  // find out afterwards that they exceed the claimed shape.
  std::size_t claimed = 0;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    const DpzArchiveInfo info = dpz_inspect(frame_bytes(container, h, f));
    std::size_t count = 1;
    for (const std::size_t d : info.shape) count *= d;
    if (count > h.total - claimed)
      throw FormatError("chunked container: frames exceed the shape");
    claimed += count;
  }
  if (claimed != h.total)
    throw FormatError("chunked container: frames do not cover the shape");

  // Decode the frames in parallel into per-frame buffers, then
  // concatenate in frame order. Nothing is allocated from the claimed
  // shape up front: the header's dims are archive data, and a forged
  // total must not size an allocation the frames cannot back — each
  // frame's own decode validates (and bounds) its output, and the sum is
  // re-checked against the shape before the final buffer is built.
  // Per-frame failures are collected rather than rethrown by the pool so
  // the error that surfaces is deterministically the lowest frame's.
  std::vector<FloatArray> chunks(h.frame_count);
  std::vector<std::exception_ptr> errors(h.frame_count);
  parallel_for(0, h.frame_count, [&](std::size_t f) {
    const obs::ScopedSpan frame_span(obs::Span::kFrameDecode);
    try {
      const auto frame = frame_bytes(container, h, f);
      check_frame_crc(frame, h, f);
      chunks[f] = dpz_decompress(frame);
      obs::count(obs::Counter::kFramesDecoded);
    } catch (...) {
      errors[f] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  std::size_t total = 0;
  for (const FloatArray& chunk : chunks) {
    if (chunk.size() > h.total - total)
      throw FormatError("chunked container: frames exceed the shape");
    total += chunk.size();
  }
  if (total != h.total)
    throw FormatError("chunked container: frames do not cover the shape");

  if (report != nullptr) {
    *report = DecodeReport{};
    report->frames_total = h.frame_count;
    report->frames_recovered = h.frame_count;
  }
  std::vector<float> values;
  values.reserve(h.total);
  for (const FloatArray& chunk : chunks)
    values.insert(values.end(), chunk.flat().begin(), chunk.flat().end());
  return FloatArray(h.shape, std::move(values));
}

FloatArray decompress_best_effort(std::span<const std::uint8_t> container,
                                  const ContainerHeader& h, float fill,
                                  DecodeReport* report) {
  admit_container(h);
  // The output is sized from the header geometry (already validated and,
  // for v2, sealed by the header CRC) and pre-filled so lost frames are
  // visible as runs of the fill value. Each frame writes only its own
  // slot, so the parallel loop touches disjoint ranges.
  std::vector<float> values(h.total, fill);
  std::vector<std::string> frame_error(h.frame_count);
  std::vector<std::uint8_t> frame_lost(h.frame_count, 0);
  std::vector<std::exception_ptr> fatal(h.frame_count);
  parallel_for(0, h.frame_count, [&](std::size_t f) {
    const obs::ScopedSpan frame_span(obs::Span::kFrameDecode);
    const auto [begin, end] = frame_slot(h, f);
    try {
      const auto frame = frame_bytes(container, h, f);
      check_frame_crc(frame, h, f);
      const FloatArray chunk = dpz_decompress(frame);
      if (chunk.size() != end - begin)
        throw FormatError("chunked container: frame " + std::to_string(f) +
                          " does not match its slot");
      std::copy(chunk.flat().begin(), chunk.flat().end(),
                values.begin() + static_cast<std::ptrdiff_t>(begin));
      obs::count(obs::Counter::kFramesDecoded);
    } catch (const Error& e) {
      // Governance aborts are not frame damage: cancellation, deadline
      // expiry, and budget exhaustion fail the whole decode (below)
      // instead of masquerading as a salvageable lost frame.
      if (e.code() == StatusCode::kCancelled ||
          e.code() == StatusCode::kDeadlineExceeded ||
          e.code() == StatusCode::kResourceExhausted) {
        fatal[f] = std::current_exception();
        return;
      }
      frame_lost[f] = 1;
      frame_error[f] = e.what();
    }
  });
  for (const std::exception_ptr& e : fatal)
    if (e) std::rethrow_exception(e);

  for (const std::uint8_t lost : frame_lost)
    obs::count(lost != 0 ? obs::Counter::kFramesLost
                         : obs::Counter::kFramesRecovered);

  if (report != nullptr) {
    *report = DecodeReport{};
    report->frames_total = h.frame_count;
    for (std::size_t f = 0; f < h.frame_count; ++f) {
      if (frame_lost[f] != 0) {
        report->lost.push_back({f, frame_error[f]});
      } else {
        ++report->frames_recovered;
      }
    }
  }
  return FloatArray(h.shape, std::move(values));
}

}  // namespace

std::vector<std::uint8_t> chunked_compress(const FloatArray& data,
                                           const ChunkedConfig& config,
                                           ChunkedStats* stats) {
  DPZ_REQUIRE(config.chunk_values >= 8, "chunk must hold at least 8 values");
  DPZ_REQUIRE(data.size() >= 8, "chunked DPZ needs at least 8 values");

  // One governor for the whole container: frames inherit it through
  // parallel_for (workers adopt the publisher's governor), so budget,
  // deadline, and cancel cover every frame without per-frame re-scoping.
  const GovernorScope governor_scope(config.dpz.limits);
  governed_poll();

  ChunkedStats local;
  ChunkedStats& st = stats != nullptr ? *stats : local;
  st = ChunkedStats{};
  st.original_bytes = data.size() * sizeof(float);

  const std::vector<std::size_t> starts =
      chunk_starts(data.size(), config.chunk_values);

  // Frames are independent (no cross-chunk state), so they compress in
  // parallel into pre-sized slots; each frame's bytes depend only on its
  // chunk and the config, never on the worker count or finish order.
  // Inner pipeline loops run inline on the frame's worker (nested
  // parallel_for), so the frame config must not spin up its own pool.
  const ScopedThreads pool_scope(config.threads);
  DpzConfig frame_config = config.dpz;
  frame_config.threads = 0;
  // Cleared like `threads`: each frame runs under the container governor
  // installed above rather than nesting a fresh per-frame one.
  frame_config.limits = ResourceLimits{};
  std::vector<std::vector<std::uint8_t>> frames(starts.size());
  std::vector<std::uint8_t> frame_stored_raw(starts.size(), 0);
  parallel_for(0, starts.size(), [&](std::size_t f) {
    const obs::ScopedSpan frame_span(obs::Span::kFrameEncode);
    const std::size_t begin = starts[f];
    const std::size_t end =
        (f + 1 < starts.size()) ? starts[f + 1] : data.size();
    const std::span<const float> slice =
        data.flat().subspan(begin, end - begin);
    FloatArray chunk({slice.size()},
                     std::vector<float>(slice.begin(), slice.end()));
    DpzStats frame_stats;
    frames[f] = dpz_compress(chunk, frame_config, &frame_stats);
    frame_stored_raw[f] = frame_stats.stored_raw ? 1 : 0;
    obs::count(obs::Counter::kFramesEncoded);
    obs::observe(obs::Hist::kFrameBytes, frames[f].size());
  });
  for (const std::uint8_t raw : frame_stored_raw)
    if (raw != 0) ++st.stored_raw_frames;

  ByteWriter w;
  w.put_u32(detail::kChunkedMagicV2);
  w.put_u8(detail::kFormatVersion);
  w.put_u8(static_cast<std::uint8_t>(data.shape().size()));
  for (const std::size_t d : data.shape()) w.put_u64(d);
  w.put_u64(config.chunk_values);
  w.put_u64(frames.size());
  std::uint64_t offset = 0;
  for (const auto& frame : frames) {
    w.put_u64(offset);
    w.put_u64(frame.size());
    w.put_u32(crc32c(frame));
    offset += frame.size();
  }
  detail::put_header_crc(w);
  for (const auto& frame : frames) w.put_bytes(frame);

  std::vector<std::uint8_t> out = w.take();
  st.frame_count = frames.size();
  st.archive_bytes = out.size();
  return out;
}

FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              unsigned threads) {
  const ContainerHeader h = parse_header(container);
  const ScopedThreads pool_scope(threads);
  return decompress_strict(container, h, nullptr);
}

FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              const ChunkedConfig& config,
                              DecodeReport* report) {
  // Install the governor before the header parse so even table-sized
  // allocations and the admission pre-flight run governed.
  const GovernorScope governor_scope(config.dpz.limits);
  governed_poll();
  const ContainerHeader h = parse_header(container);
  const ScopedThreads pool_scope(config.threads);
  if (config.decode_policy == DecodePolicy::kBestEffort)
    return decompress_best_effort(container, h, config.fill_value, report);
  return decompress_strict(container, h, report);
}

ChunkView chunked_decompress_frame(std::span<const std::uint8_t> container,
                                   std::size_t frame_index) {
  const ContainerHeader h = parse_header(container);
  DPZ_REQUIRE(frame_index < h.frame_count, "frame index out of range");

  const auto frame = frame_bytes(container, h, frame_index);
  check_frame_crc(frame, h, frame_index);
  const FloatArray chunk = dpz_decompress(frame);

  ChunkView view;
  view.frame_index = frame_index;
  view.value_offset = frame_index * h.chunk_values;
  view.values.assign(chunk.flat().begin(), chunk.flat().end());
  return view;
}

std::size_t chunked_frame_count(std::span<const std::uint8_t> container) {
  return parse_header(container).frame_count;
}

DecodePreflight chunked_decode_preflight(
    std::span<const std::uint8_t> container) {
  const ContainerHeader h = parse_header(container);
  DecodePreflight pf;
  pf.decoded_bytes =
      static_cast<std::uint64_t>(h.total) * sizeof(float);
  // Serial-decode peak: the output buffer plus the most expensive single
  // frame's transient working set (frames are decoded one slot at a
  // time; a parallel decode can hold up to `threads` frames in flight,
  // which the runtime per-allocation charges still bound exactly).
  std::uint64_t worst_frame = 0;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    const DpzArchiveInfo info = dpz_inspect(frame_bytes(container, h, f));
    worst_frame =
        std::max(worst_frame, dpz_decode_preflight(info).peak_bytes);
  }
  pf.peak_bytes = pf.decoded_bytes > UINT64_MAX - worst_frame
                      ? UINT64_MAX
                      : pf.decoded_bytes + worst_frame;
  return pf;
}

}  // namespace dpz
