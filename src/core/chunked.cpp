#include "core/chunked.h"

#include "codec/bytes.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

constexpr std::uint32_t kMagic = 0x4B435A44;  // "DZCK"

struct ContainerHeader {
  std::vector<std::size_t> shape;
  std::size_t total = 0;
  std::size_t chunk_values = 0;
  std::size_t frame_count = 0;
  std::vector<std::uint64_t> frame_offsets;  // relative to frame area
  std::vector<std::uint64_t> frame_sizes;
  std::size_t frames_begin = 0;  // byte offset of the frame area
};

ContainerHeader parse_header(std::span<const std::uint8_t> container) {
  ByteReader r(container);
  if (r.get_u32() != kMagic) throw FormatError("not a chunked DPZ container");

  ContainerHeader h;
  const std::uint8_t rank = r.get_u8();
  if (rank == 0 || rank > 4)
    throw FormatError("chunked container: bad rank");
  h.shape.resize(rank);
  h.total = 1;
  for (auto& d : h.shape) {
    d = static_cast<std::size_t>(r.get_u64());
    if (d == 0 || d > (1ULL << 40))
      throw FormatError("chunked container: implausible extent");
    h.total *= d;
    if (h.total > (1ULL << 40))
      throw FormatError("chunked container: implausible total");
  }
  h.chunk_values = static_cast<std::size_t>(r.get_u64());
  h.frame_count = static_cast<std::size_t>(r.get_u64());
  if (h.chunk_values < 8 || h.frame_count == 0 ||
      h.frame_count > h.total / 8 + 1)
    throw FormatError("chunked container: inconsistent chunking");

  h.frame_offsets.resize(h.frame_count);
  h.frame_sizes.resize(h.frame_count);
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    h.frame_offsets[f] = r.get_u64();
    h.frame_sizes[f] = r.get_u64();
  }
  h.frames_begin = r.position();

  // Frame table sanity: contiguous, in-bounds frames. Sizes are archive
  // data, so accumulate against the actual frame-area size instead of
  // trusting the sum not to wrap 64 bits.
  const std::uint64_t frame_area = container.size() - h.frames_begin;
  std::uint64_t expected = 0;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    if (h.frame_offsets[f] != expected)
      throw FormatError("chunked container: non-contiguous frame table");
    if (h.frame_sizes[f] > frame_area - expected)
      throw FormatError("chunked container: frame exceeds the container");
    expected += h.frame_sizes[f];
  }
  if (expected != frame_area)
    throw FormatError("chunked container: frame area size mismatch");
  return h;
}

// Chunk boundaries over `total` values: every chunk has `chunk_values`
// values except the last, which absorbs the tail (and is merged into the
// previous chunk when the tail would fall below the pipeline minimum).
std::vector<std::size_t> chunk_starts(std::size_t total,
                                      std::size_t chunk_values) {
  std::vector<std::size_t> starts;
  for (std::size_t s = 0; s < total; s += chunk_values) starts.push_back(s);
  if (starts.size() > 1 && total - starts.back() < 8) starts.pop_back();
  return starts;
}

}  // namespace

std::vector<std::uint8_t> chunked_compress(const FloatArray& data,
                                           const ChunkedConfig& config,
                                           ChunkedStats* stats) {
  DPZ_REQUIRE(config.chunk_values >= 8, "chunk must hold at least 8 values");
  DPZ_REQUIRE(data.size() >= 8, "chunked DPZ needs at least 8 values");

  ChunkedStats local;
  ChunkedStats& st = stats != nullptr ? *stats : local;
  st = ChunkedStats{};
  st.original_bytes = data.size() * sizeof(float);

  const std::vector<std::size_t> starts =
      chunk_starts(data.size(), config.chunk_values);

  // Frames are independent (no cross-chunk state), so they compress in
  // parallel into pre-sized slots; each frame's bytes depend only on its
  // chunk and the config, never on the worker count or finish order.
  // Inner pipeline loops run inline on the frame's worker (nested
  // parallel_for), so the frame config must not spin up its own pool.
  const ScopedThreads pool_scope(config.threads);
  DpzConfig frame_config = config.dpz;
  frame_config.threads = 0;
  std::vector<std::vector<std::uint8_t>> frames(starts.size());
  std::vector<std::uint8_t> frame_stored_raw(starts.size(), 0);
  parallel_for(0, starts.size(), [&](std::size_t f) {
    const std::size_t begin = starts[f];
    const std::size_t end =
        (f + 1 < starts.size()) ? starts[f + 1] : data.size();
    const std::span<const float> slice =
        data.flat().subspan(begin, end - begin);
    FloatArray chunk({slice.size()},
                     std::vector<float>(slice.begin(), slice.end()));
    DpzStats frame_stats;
    frames[f] = dpz_compress(chunk, frame_config, &frame_stats);
    frame_stored_raw[f] = frame_stats.stored_raw ? 1 : 0;
  });
  for (const std::uint8_t raw : frame_stored_raw)
    if (raw != 0) ++st.stored_raw_frames;

  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u8(static_cast<std::uint8_t>(data.shape().size()));
  for (const std::size_t d : data.shape()) w.put_u64(d);
  w.put_u64(config.chunk_values);
  w.put_u64(frames.size());
  std::uint64_t offset = 0;
  for (const auto& frame : frames) {
    w.put_u64(offset);
    w.put_u64(frame.size());
    offset += frame.size();
  }
  for (const auto& frame : frames) w.put_bytes(frame);

  std::vector<std::uint8_t> out = w.take();
  st.frame_count = frames.size();
  st.archive_bytes = out.size();
  return out;
}

FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              unsigned threads) {
  const ContainerHeader h = parse_header(container);

  // Cheap header-only pre-pass: every frame claims its decoded size, and
  // the claims must exactly tile the container's shape *before* any frame
  // is decoded. This bounds transient memory by h.total — a forged
  // container cannot make us decode an arbitrary sum of frames and only
  // find out afterwards that they exceed the claimed shape.
  std::size_t claimed = 0;
  for (std::size_t f = 0; f < h.frame_count; ++f) {
    const auto frame = container.subspan(
        h.frames_begin + static_cast<std::size_t>(h.frame_offsets[f]),
        static_cast<std::size_t>(h.frame_sizes[f]));
    const DpzArchiveInfo info = dpz_inspect(frame);
    std::size_t count = 1;
    for (const std::size_t d : info.shape) count *= d;
    if (count > h.total - claimed)
      throw FormatError("chunked container: frames exceed the shape");
    claimed += count;
  }
  if (claimed != h.total)
    throw FormatError("chunked container: frames do not cover the shape");

  // Decode the frames in parallel into per-frame buffers, then
  // concatenate in frame order. Nothing is allocated from the claimed
  // shape up front: the header's dims are archive data, and a forged
  // total must not size an allocation the frames cannot back — each
  // frame's own decode validates (and bounds) its output, and the sum is
  // re-checked against the shape before the final buffer is built.
  const ScopedThreads pool_scope(threads);
  std::vector<FloatArray> chunks(h.frame_count);
  parallel_for(0, h.frame_count, [&](std::size_t f) {
    const auto frame = container.subspan(
        h.frames_begin + static_cast<std::size_t>(h.frame_offsets[f]),
        static_cast<std::size_t>(h.frame_sizes[f]));
    chunks[f] = dpz_decompress(frame);
  });

  std::size_t total = 0;
  for (const FloatArray& chunk : chunks) {
    if (chunk.size() > h.total - total)
      throw FormatError("chunked container: frames exceed the shape");
    total += chunk.size();
  }
  if (total != h.total)
    throw FormatError("chunked container: frames do not cover the shape");

  std::vector<float> values;
  values.reserve(h.total);
  for (const FloatArray& chunk : chunks)
    values.insert(values.end(), chunk.flat().begin(), chunk.flat().end());
  return FloatArray(h.shape, std::move(values));
}

ChunkView chunked_decompress_frame(std::span<const std::uint8_t> container,
                                   std::size_t frame_index) {
  const ContainerHeader h = parse_header(container);
  DPZ_REQUIRE(frame_index < h.frame_count, "frame index out of range");

  const auto frame = container.subspan(
      h.frames_begin + static_cast<std::size_t>(h.frame_offsets[frame_index]),
      static_cast<std::size_t>(h.frame_sizes[frame_index]));
  const FloatArray chunk = dpz_decompress(frame);

  ChunkView view;
  view.frame_index = frame_index;
  view.value_offset = frame_index * h.chunk_values;
  view.values.assign(chunk.flat().begin(), chunk.flat().end());
  return view;
}

std::size_t chunked_frame_count(std::span<const std::uint8_t> container) {
  return parse_header(container).frame_count;
}

}  // namespace dpz
