#include "core/blocking.h"

#include <cmath>

#include "dsp/fft.h"
#include "util/error.h"

namespace dpz {

BlockLayout choose_block_layout(std::size_t total, std::size_t max_ratio) {
  DPZ_REQUIRE(total >= 8, "block decomposition needs at least 8 values");
  DPZ_REQUIRE(max_ratio >= 2, "max_ratio must be at least 2");

  BlockLayout layout;
  layout.original_total = total;

  // The paper's rule first: N/M equal to the smallest divisor p > 1 such
  // that M = sqrt(total/p) is an integer. This reproduces the published
  // examples exactly: 128^3 -> 1024 x 2048 (p=2) and 1800 x 3600 CESM
  // (p=2). Only small p keeps the pair balanced, so larger ratios fall
  // through to the balanced-divisor search below.
  for (const std::size_t p : {2, 3, 4}) {
    if (total % p != 0) continue;
    const std::size_t s = total / p;
    const auto r = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(s))));
    if (r >= 2 && r * r == s) {
      layout.m = r;
      layout.n = r * p;
      layout.padded = false;
      return layout;
    }
  }

  // Exact divisor pair with M < N, minimizing N/M (equivalently, the
  // largest divisor strictly below sqrt(total)).
  const auto root = static_cast<std::size_t>(std::sqrt(
      static_cast<double>(total)));
  for (std::size_t m = root; m >= 2; --m) {
    if (total % m != 0) continue;
    const std::size_t n = total / m;
    if (n <= m) continue;  // need strictly fewer features than samples
    if (n / m > max_ratio) break;  // only gets worse as m shrinks
    layout.m = m;
    layout.n = n;
    layout.padded = false;
    return layout;
  }

  // Fallback: power-of-two M near sqrt(total/2) (so N ~ 2M), pad the tail.
  std::size_t m = next_power_of_two(static_cast<std::size_t>(
      std::sqrt(static_cast<double>(total) / 2.0)));
  if (m < 2) m = 2;
  std::size_t n = (total + m - 1) / m;
  if (n <= m) n = m + 1;
  layout.m = m;
  layout.n = n;
  layout.padded = m * n != total;
  return layout;
}

}  // namespace dpz
