// Chunked container format: DPZ for datasets larger than memory.
//
// The core pipeline holds one M x N block matrix (plus its covariance)
// in memory, which caps practical input size. The chunked container
// splits the flattened input into fixed-size chunks, compresses each
// chunk as an independent DPZ archive frame, and concatenates the frames
// behind a container header. Properties:
//
//   * peak memory is O(chunk) regardless of input size;
//   * frames are independent — a corrupted frame loses only its chunk,
//     and frames can be decompressed selectively (random access at chunk
//     granularity);
//   * each chunk gets its own PCA basis, so slowly varying statistics
//     across a long file do not smear one global basis (the flip side:
//     per-chunk basis overhead — use SharedBasisCodec when the statistics
//     are stationary).
//
// Format v2 ("DZC2"): magic, version, shape, chunk size, frame count, a
// frame table of (offset, size, CRC32C) entries, a header checksum over
// everything before the frames, then the frames themselves. v1 ("DZCK")
// containers — same layout minus version byte and checksums — still
// decode. Format v3 ("DZC3") adds an optional Reed-Solomon parity
// section after the frames: groups of k frame payloads get m parity
// shards, so up to m lost frames per group reconstruct byte-exactly
// instead of falling back to fill_value. Parity-less archives always
// write v2 bytes. See docs/FORMAT.md.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/dpz.h"

namespace dpz {

/// What a decoder does when a frame inside an otherwise-parsable
/// container is damaged (bad CRC, malformed frame bytes).
enum class DecodePolicy {
  /// Throw on the first damaged frame (the classic contract: decode
  /// succeeds fully or fails with a FormatError).
  kStrict,
  /// Decode every intact frame, fill lost frames with
  /// ChunkedConfig::fill_value, and report the damage via DecodeReport
  /// instead of throwing. Container-level damage (header, frame table)
  /// still throws — without a trustworthy table there is nothing to
  /// salvage.
  kBestEffort,
};

/// Outcome of a best-effort chunked decode: which frames survived and
/// the first error observed for each lost frame. A damaged frame that
/// Reed-Solomon parity reconstructed byte-exactly counts as *repaired*
/// (and recovered) — only frames whose loss exceeded the parity budget
/// appear in `lost`.
struct DecodeReport {
  struct FrameError {
    std::size_t frame = 0;  ///< 0-based frame index
    std::string message;    ///< first error observed for this frame
  };
  std::size_t frames_total = 0;
  std::size_t frames_recovered = 0;  ///< decoded frames, repaired included
  std::size_t frames_repaired = 0;   ///< subset rebuilt from parity
  std::vector<std::size_t> repaired;  ///< ascending by frame index
  std::vector<FrameError> lost;       ///< ascending by frame index

  [[nodiscard]] bool complete() const { return lost.empty(); }
};

struct ChunkedConfig {
  DpzConfig dpz;
  /// Values per chunk (the last chunk may be smaller, but never below
  /// the pipeline minimum of 8 values — the tail merges into the
  /// previous chunk when needed).
  std::size_t chunk_values = 1 << 20;
  /// Worker threads for the per-frame fan-out (frames are independent by
  /// design, SS V-C5). 0 = ambient pool. The container bytes are
  /// bit-identical for every value; peak memory grows to O(threads *
  /// chunk) while frames are in flight. Inner pipeline loops run inline
  /// on their frame's worker, so `dpz.threads` is ignored here.
  unsigned threads = 0;
  /// Damage handling for chunked_decompress (see DecodePolicy).
  DecodePolicy decode_policy = DecodePolicy::kStrict;
  /// Value written into every position of a lost frame in best-effort
  /// mode — caller-visible, so "recovered with holes" is distinguishable
  /// from real data (NaN is a deliberate choice for float analysis).
  /// Double so the f64 decode path never narrows the caller's fill.
  double fill_value = 0.0;
  /// Reed-Solomon frame parity (format v3): groups of `parity_k` frames
  /// get `parity_m` parity shards over their compressed payloads, so up
  /// to parity_m lost frames per group reconstruct byte-exactly on
  /// decode. parity_m == 0 (default) disables parity and emits the v2
  /// byte-identical container. Requires 1 <= parity_k and
  /// parity_k + parity_m <= 255 when enabled.
  unsigned parity_k = 16;
  unsigned parity_m = 0;
};

/// Per-container accounting.
struct ChunkedStats {
  std::size_t frame_count = 0;
  std::uint64_t original_bytes = 0;
  std::uint64_t archive_bytes = 0;
  std::size_t stored_raw_frames = 0;  ///< frames that hit the fallback

  [[nodiscard]] double cr() const {
    return archive_bytes == 0 ? 0.0
                              : static_cast<double>(original_bytes) /
                                    static_cast<double>(archive_bytes);
  }
};

/// Compresses a flat f32 sequence chunk by chunk. The shape is recorded
/// for reconstruction but chunking operates on the flattened order.
std::vector<std::uint8_t> chunked_compress(const FloatArray& data,
                                           const ChunkedConfig& config,
                                           ChunkedStats* stats = nullptr);

/// Decompresses a whole chunked container; frames decode in parallel on
/// `threads` workers (0 = ambient pool) with bit-identical output.
FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              unsigned threads = 0);

/// Policy-aware variant: honors config.decode_policy / fill_value /
/// threads. When `report` is non-null it receives the per-frame outcome
/// (strict decodes that succeed report every frame recovered). In
/// best-effort mode frame damage never throws; intact frames still
/// decode in parallel and are byte-identical to a strict decode.
FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              const ChunkedConfig& config,
                              DecodeReport* report = nullptr);

/// Double-precision variant of the policy-aware decode: frames decode
/// through the same pipeline and widen into an f64 array (the container
/// stores f32 frames; this is an output-type convenience, not extra
/// precision). Honors decode_policy / fill_value / threads identically.
DoubleArray chunked_decompress_f64(std::span<const std::uint8_t> container,
                                   const ChunkedConfig& config,
                                   DecodeReport* report = nullptr);

/// Outcome of chunked_repair: which frames and parity shards were
/// rewritten. An intact archive repairs to a byte-identical copy with
/// an all-clean report.
struct RepairReport {
  std::size_t frames_total = 0;
  std::vector<std::size_t> frames_repaired;  ///< ascending frame indices
  std::size_t parity_shards_repaired = 0;

  [[nodiscard]] bool clean() const {
    return frames_repaired.empty() && parity_shards_repaired == 0;
  }
};

/// Reconstructs every damaged frame and parity shard of a v3 container
/// from the surviving shards and returns the healed archive — byte
/// identical to the pre-damage container (every rebuilt frame and shard
/// is verified against its stored CRC32C). Throws ChecksumError when
/// damage exceeds the parity budget (or the container has no parity to
/// repair from), FormatError when the header itself is unreadable.
std::vector<std::uint8_t> chunked_repair(
    std::span<const std::uint8_t> container,
    RepairReport* report = nullptr);

/// Outcome of chunked_scrub: parity-consistency audit without decoding.
struct ScrubReport {
  std::size_t frames_total = 0;
  std::size_t parity_k = 0;  ///< 0 when the container carries no parity
  std::size_t parity_m = 0;
  std::size_t groups = 0;
  std::size_t frames_damaged = 0;         ///< frame CRC mismatches
  std::size_t parity_shards_damaged = 0;  ///< parity shard CRC mismatches
  std::size_t parity_mismatches = 0;      ///< stored parity != recomputed

  [[nodiscard]] bool ok() const {
    return frames_damaged == 0 && parity_shards_damaged == 0 &&
           parity_mismatches == 0;
  }
};

/// Validates parity consistency without decoding any frame: checks every
/// frame and parity-shard CRC, then recomputes each fully-intact group's
/// parity from the stored payloads and compares it to the stored shards.
/// Parity-less containers scrub trivially ok (CRC sweep only).
ScrubReport chunked_scrub(std::span<const std::uint8_t> container);

/// Parity geometry from the header alone (for `dpz inspect`).
struct ParityInfo {
  std::size_t parity_k = 0;  ///< 0 when the container carries no parity
  std::size_t parity_m = 0;
  std::size_t groups = 0;
  std::uint64_t parity_bytes = 0;  ///< total parity-section payload

  [[nodiscard]] bool enabled() const { return parity_m != 0; }
};
ParityInfo chunked_parity_info(std::span<const std::uint8_t> container);

/// Decompresses a single frame (0-based). Returns the chunk's values in
/// flattened order along with its offset into the flat dataset. This is
/// the random-access path: only the requested frame is decoded. A
/// CRC-failed frame in a parity-carrying (DZC3) container is first
/// reconstructed from its group's surviving shards — the same
/// self-healing contract as whole-container decode — and only throws
/// ChecksumError when the damage exceeds the parity budget.
struct ChunkView {
  std::size_t frame_index = 0;
  std::size_t value_offset = 0;  ///< position in the flattened dataset
  std::vector<float> values;
};
ChunkView chunked_decompress_frame(std::span<const std::uint8_t> container,
                                   std::size_t frame_index);

/// Number of frames in a container (header-only parse).
std::size_t chunked_frame_count(std::span<const std::uint8_t> container);

/// Pre-flight resource estimate for decoding a whole container, from
/// header metadata alone (the container header plus each frame's DPZ
/// header — no payload is inflated). `decoded_bytes` is the
/// reconstructed array; `peak_bytes` adds the most expensive single
/// frame's working set, the serial-decode peak (a parallel decode holds
/// up to `threads` frames in flight; per-allocation charges still
/// enforce the budget exactly at runtime). Throws FormatError on a
/// malformed container or frame header.
DecodePreflight chunked_decode_preflight(
    std::span<const std::uint8_t> container);

}  // namespace dpz
