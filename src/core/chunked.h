// Chunked container format: DPZ for datasets larger than memory.
//
// The core pipeline holds one M x N block matrix (plus its covariance)
// in memory, which caps practical input size. The chunked container
// splits the flattened input into fixed-size chunks, compresses each
// chunk as an independent DPZ archive frame, and concatenates the frames
// behind a container header. Properties:
//
//   * peak memory is O(chunk) regardless of input size;
//   * frames are independent — a corrupted frame loses only its chunk,
//     and frames can be decompressed selectively (random access at chunk
//     granularity);
//   * each chunk gets its own PCA basis, so slowly varying statistics
//     across a long file do not smear one global basis (the flip side:
//     per-chunk basis overhead — use SharedBasisCodec when the statistics
//     are stationary).
//
// Format v2 ("DZC2"): magic, version, shape, chunk size, frame count, a
// frame table of (offset, size, CRC32C) entries, a header checksum over
// everything before the frames, then the frames themselves. v1 ("DZCK")
// containers — same layout minus version byte and checksums — still
// decode. See docs/FORMAT.md.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/dpz.h"

namespace dpz {

/// What a decoder does when a frame inside an otherwise-parsable
/// container is damaged (bad CRC, malformed frame bytes).
enum class DecodePolicy {
  /// Throw on the first damaged frame (the classic contract: decode
  /// succeeds fully or fails with a FormatError).
  kStrict,
  /// Decode every intact frame, fill lost frames with
  /// ChunkedConfig::fill_value, and report the damage via DecodeReport
  /// instead of throwing. Container-level damage (header, frame table)
  /// still throws — without a trustworthy table there is nothing to
  /// salvage.
  kBestEffort,
};

/// Outcome of a best-effort chunked decode: which frames survived and
/// the first error observed for each lost frame.
struct DecodeReport {
  struct FrameError {
    std::size_t frame = 0;  ///< 0-based frame index
    std::string message;    ///< first error observed for this frame
  };
  std::size_t frames_total = 0;
  std::size_t frames_recovered = 0;
  std::vector<FrameError> lost;  ///< ascending by frame index

  [[nodiscard]] bool complete() const { return lost.empty(); }
};

struct ChunkedConfig {
  DpzConfig dpz;
  /// Values per chunk (the last chunk may be smaller, but never below
  /// the pipeline minimum of 8 values — the tail merges into the
  /// previous chunk when needed).
  std::size_t chunk_values = 1 << 20;
  /// Worker threads for the per-frame fan-out (frames are independent by
  /// design, SS V-C5). 0 = ambient pool. The container bytes are
  /// bit-identical for every value; peak memory grows to O(threads *
  /// chunk) while frames are in flight. Inner pipeline loops run inline
  /// on their frame's worker, so `dpz.threads` is ignored here.
  unsigned threads = 0;
  /// Damage handling for chunked_decompress (see DecodePolicy).
  DecodePolicy decode_policy = DecodePolicy::kStrict;
  /// Value written into every position of a lost frame in best-effort
  /// mode — caller-visible, so "recovered with holes" is distinguishable
  /// from real data (NaN is a deliberate choice for float analysis).
  float fill_value = 0.0F;
};

/// Per-container accounting.
struct ChunkedStats {
  std::size_t frame_count = 0;
  std::uint64_t original_bytes = 0;
  std::uint64_t archive_bytes = 0;
  std::size_t stored_raw_frames = 0;  ///< frames that hit the fallback

  [[nodiscard]] double cr() const {
    return archive_bytes == 0 ? 0.0
                              : static_cast<double>(original_bytes) /
                                    static_cast<double>(archive_bytes);
  }
};

/// Compresses a flat f32 sequence chunk by chunk. The shape is recorded
/// for reconstruction but chunking operates on the flattened order.
std::vector<std::uint8_t> chunked_compress(const FloatArray& data,
                                           const ChunkedConfig& config,
                                           ChunkedStats* stats = nullptr);

/// Decompresses a whole chunked container; frames decode in parallel on
/// `threads` workers (0 = ambient pool) with bit-identical output.
FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              unsigned threads = 0);

/// Policy-aware variant: honors config.decode_policy / fill_value /
/// threads. When `report` is non-null it receives the per-frame outcome
/// (strict decodes that succeed report every frame recovered). In
/// best-effort mode frame damage never throws; intact frames still
/// decode in parallel and are byte-identical to a strict decode.
FloatArray chunked_decompress(std::span<const std::uint8_t> container,
                              const ChunkedConfig& config,
                              DecodeReport* report = nullptr);

/// Decompresses a single frame (0-based). Returns the chunk's values in
/// flattened order along with its offset into the flat dataset. This is
/// the random-access path: only the requested frame is decoded.
struct ChunkView {
  std::size_t frame_index = 0;
  std::size_t value_offset = 0;  ///< position in the flattened dataset
  std::vector<float> values;
};
ChunkView chunked_decompress_frame(std::span<const std::uint8_t> container,
                                   std::size_t frame_index);

/// Number of frames in a container (header-only parse).
std::size_t chunked_frame_count(std::span<const std::uint8_t> container);

/// Pre-flight resource estimate for decoding a whole container, from
/// header metadata alone (the container header plus each frame's DPZ
/// header — no payload is inflated). `decoded_bytes` is the
/// reconstructed array; `peak_bytes` adds the most expensive single
/// frame's working set, the serial-decode peak (a parallel decode holds
/// up to `threads` frames in flight; per-allocation charges still
/// enforce the budget exactly at runtime). Throws FormatError on a
/// malformed container or frame header.
DecodePreflight chunked_decode_preflight(
    std::span<const std::uint8_t> container);

}  // namespace dpz
