// Internal archive building blocks shared between the compressor
// (dpz.cpp) and the analysis evaluator (analysis.cpp). Not part of the
// public API; layouts here may change between archive versions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/bytes.h"
#include "linalg/matrix.h"

namespace dpz::detail {

/// Score-normalization calibration: every k-PCA score is divided by ONE
/// global scale — kScoreSigmaScale times the standard deviation of the
/// first (largest) component — before quantization, mirroring the paper's
/// single absolute error bound "designed only for approximation on k-PCA"
/// (SS IV-C). With the DPZ-l parameters (P = 1e-3, B = 255) the covered
/// band is ~2 sigma of the dominant component, so its near-normal stream
/// (the paper's normality argument) leaves only a small tail as verbatim
/// outliers, while later (smaller) components concentrate in the central
/// bins. That concentration is what makes the zlib factor RISE with TVE
/// (Table III) and the quantization loss of DPZ-l blow up at tight TVE
/// (Table IV).
inline constexpr double kScoreSigmaScale = 8.0;

/// Global normalization scale (see kScoreSigmaScale), computed from the
/// first component's scores. Zero-variance streams fall back to max-abs,
/// then to 1.
double component_scale(std::span<const double> scores);

/// Side data: everything reconstruction needs besides the quantized scores.
struct SideData {
  std::vector<double> mean;   ///< M
  std::vector<double> scale;  ///< M (meaningful when standardized)
  double score_scale = 1.0;   ///< global score normalization (see above)
  Matrix basis;               ///< M x k, serialized as byte-shuffled f32
};

std::vector<std::uint8_t> serialize_side(const SideData& side,
                                         bool standardized);
SideData deserialize_side(std::span<const std::uint8_t> bytes, std::size_t m,
                          std::size_t k, bool standardized);

/// Section framing: (u64 raw size, u64-length-prefixed zlib blob).
void put_section(ByteWriter& w, std::span<const std::uint8_t> raw,
                 int level);
std::vector<std::uint8_t> get_section(ByteReader& r);

}  // namespace dpz::detail
