// Internal archive building blocks shared between the compressor
// (dpz.cpp) and the analysis evaluator (analysis.cpp). Not part of the
// public API; layouts here may change between archive versions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/bytes.h"
#include "linalg/matrix.h"

namespace dpz::detail {

/// Archive format versions. Version 2 adds CRC32C integrity: a header
/// checksum sealing every fixed field and a per-section checksum that is
/// verified *before* the blob reaches zlib. Writers always emit
/// kFormatVersion; readers accept both (docs/FORMAT.md, "Format v2").
inline constexpr std::uint8_t kFormatVersionLegacy = 1;
inline constexpr std::uint8_t kFormatVersion = 2;
/// Chunked-container revision 3 ("DZC3"): v2 plus an optional
/// Reed-Solomon parity section after the frame area. Writers emit it
/// only when parity is requested, so parity-less containers stay
/// byte-identical v2 (docs/FORMAT.md, "DZC3").
inline constexpr std::uint8_t kChunkedFormatVersion3 = 3;

/// Container magics (little-endian u32 of the 4-byte tag). The v1 tags
/// carry no version byte, so v2 containers announce themselves with new
/// magics and readers accept either generation.
inline constexpr std::uint32_t kDpzMagic = 0x315A5044;         // "DPZ1"
inline constexpr std::uint32_t kChunkedMagicV1 = 0x4B435A44;   // "DZCK"
inline constexpr std::uint32_t kChunkedMagicV2 = 0x32435A44;   // "DZC2"
inline constexpr std::uint32_t kChunkedMagicV3 = 0x33435A44;   // "DZC3"
inline constexpr std::uint32_t kBasisMagicV1 = 0x42505A44;     // "DZPB"
inline constexpr std::uint32_t kBasisMagicV2 = 0x32425A44;     // "DZB2"
inline constexpr std::uint32_t kSnapshotMagicV1 = 0x53505A44;  // "DZPS"
inline constexpr std::uint32_t kSnapshotMagicV2 = 0x32535A44;  // "DZS2"

/// Score-normalization calibration: every k-PCA score is divided by ONE
/// global scale — kScoreSigmaScale times the standard deviation of the
/// first (largest) component — before quantization, mirroring the paper's
/// single absolute error bound "designed only for approximation on k-PCA"
/// (SS IV-C). With the DPZ-l parameters (P = 1e-3, B = 255) the covered
/// band is ~2 sigma of the dominant component, so its near-normal stream
/// (the paper's normality argument) leaves only a small tail as verbatim
/// outliers, while later (smaller) components concentrate in the central
/// bins. That concentration is what makes the zlib factor RISE with TVE
/// (Table III) and the quantization loss of DPZ-l blow up at tight TVE
/// (Table IV).
inline constexpr double kScoreSigmaScale = 8.0;

/// Global normalization scale (see kScoreSigmaScale), computed from the
/// first component's scores. Zero-variance streams fall back to max-abs,
/// then to 1.
double component_scale(std::span<const double> scores);

/// Side data: everything reconstruction needs besides the quantized scores.
struct SideData {
  std::vector<double> mean;   ///< M
  std::vector<double> scale;  ///< M (meaningful when standardized)
  double score_scale = 1.0;   ///< global score normalization (see above)
  Matrix basis;               ///< M x k, serialized as byte-shuffled f32
};

std::vector<std::uint8_t> serialize_side(const SideData& side,
                                         bool standardized);
SideData deserialize_side(std::span<const std::uint8_t> bytes, std::size_t m,
                          std::size_t k, bool standardized);

/// Section framing.
///   v1: raw_size:u64, blob:u64-length-prefixed zlib stream
///   v2: raw_size:u64, crc:u32, blob  — crc is CRC32C over the 8
///       little-endian raw-size bytes followed by the compressed blob.
/// put_section always writes v2; get_section parses the framing the
/// given version uses and, for v2, verifies the checksum *before* the
/// blob is handed to zlib (ChecksumError on mismatch), so corrupted
/// payloads never reach the inflater or size an allocation. `what`
/// (when given) names the section in the error-breadcrumb record the
/// failure leaves behind (obs/log.h); the byte offset recorded is the
/// section's start position in the archive.
void put_section(ByteWriter& w, std::span<const std::uint8_t> raw,
                 int level);
std::vector<std::uint8_t> get_section(ByteReader& r, std::uint8_t version,
                                      const char* what = nullptr);

/// CRC32C over the section's wire image (raw-size field + blob), i.e.
/// exactly what a v2 section checksum covers. Shared with verify.cpp.
std::uint32_t section_crc(std::uint64_t raw_size,
                          std::span<const std::uint8_t> blob);

/// Header seal: put_header_crc appends a CRC32C over every byte written
/// so far; check_header_crc recomputes it over archive[0, cursor) and
/// reads the stored value, throwing ChecksumError("<what>: ...") on
/// mismatch. Only meaningful for version >= 2 headers.
void put_header_crc(ByteWriter& w);
void check_header_crc(ByteReader& r, std::span<const std::uint8_t> archive,
                      const char* what);

}  // namespace dpz::detail
