// DPZ: the paper's multi-stage information-retrieval lossy compressor.
//
// Pipeline (Figure 5):
//   Stage 1  block decomposition (blocking.h) + per-block DCT-II (dsp/dct.h)
//   Stage 2  PCA in the DCT domain + k-PCA selection (Algorithm 1)
//   Stage 3  symmetric uniform quantization of the k score streams
//   add-on   zlib over the quantization codes and outliers
//
// Two schemes match the evaluation (SS V-A):
//   DPZ-l (loose):  P = 1e-3, 1-byte bin codes;
//   DPZ-s (strict): P = 1e-4, 2-byte bin codes.
// All scores are divided by one global scale (8 sigma of the first
// component; it travels in the archive) before quantization, so P is a
// bound on the *normalized* score values — exactly the "approximation on
// k-PCA" bound the paper describes, not an end-to-end pointwise bound.
// See detail::kScoreSigmaScale for the calibration rationale.
//
// The optional sampling strategy (Algorithm 2) estimates k from T of S
// feature subsets and then computes only the leading eigenpairs by
// subspace iteration, avoiding the full O(M^3) eigenanalysis.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/blocking.h"
#include "core/compressor.h"
#include "stats/knee.h"
#include "util/resource.h"
#include "util/timer.h"

namespace dpz {

enum class DpzScheme {
  kLoose,   ///< DPZ-l: P = 1e-3, 1-byte codes
  kStrict,  ///< DPZ-s: P = 1e-4, 2-byte codes
};

enum class KSelectionMethod {
  kKneePoint,     ///< Method 1: curvature knee of the TVE curve
  kTveThreshold,  ///< Method 2: smallest k reaching the TVE threshold
};

struct DpzConfig {
  DpzScheme scheme = DpzScheme::kStrict;
  KSelectionMethod selection = KSelectionMethod::kTveThreshold;
  /// TVE threshold for Method 2 ("three-nine" 0.999 ... "eight-nine").
  double tve = 0.99999;
  /// Curve fit for Method 1 (1-D interpolation or polynomial).
  KneeFit knee_fit = KneeFit::kFit1D;
  /// When non-zero, bypasses k selection entirely and keeps exactly this
  /// many components (clamped to [1, M]). Used by the rate-control
  /// helpers (core/rate_control.h), which search k directly.
  std::size_t fixed_k = 0;

  /// Enables the Algorithm 2 sampling strategy (subset k estimation +
  /// truncated eigensolver + VIF-gated standardization).
  bool use_sampling = false;
  std::size_t subset_count = 10;        ///< S
  std::size_t sample_subset_count = 3;  ///< T
  double vif_sampling_rate = 0.01;      ///< SR for the compressibility probe
  std::uint64_t sampling_seed = 2021;

  int zlib_level = 6;

  /// Worker threads for the hot loops (block DCT, PCA/matmul, quantize,
  /// chunked frames). 0 = the ambient pool (an enclosing ScopedThreads,
  /// or hardware concurrency). Archives are bit-identical for every
  /// value — the knob trades wall-clock only (see util/thread_pool.h).
  unsigned threads = 0;

  /// DCT-coefficient truncation before PCA (the paper's future-work
  /// ablation, SS VII): keep only this leading fraction of each block's
  /// DCT coefficients and zero the rest before Stage 2. 1.0 disables it.
  /// Truncation discards high-frequency energy up front, which lowers the
  /// k that a given TVE needs (the covariance no longer has to explain
  /// the tail) at the cost of a reconstruction-accuracy floor.
  double dct_keep_fraction = 1.0;

  /// Overrides; leave at the sentinel to use the scheme defaults.
  double error_bound = 0.0;  ///< 0 = scheme default (1e-3 / 1e-4)
  int wide_codes = -1;       ///< -1 = scheme default, else 0/1
  int standardize = -1;      ///< -1 = auto (VIF probe when sampling), else 0/1

  /// Resource governance for the whole call: a peak-memory budget, an
  /// absolute deadline, and a cooperative cancel token (util/resource.h).
  /// Defaults are "ungoverned". Limits never change archive bytes — a
  /// governed run either produces the identical output or throws
  /// ResourceExhausted / DeadlineExceeded / Cancelled.
  ResourceLimits limits;

  [[nodiscard]] double effective_error_bound() const {
    if (error_bound > 0.0) return error_bound;
    return scheme == DpzScheme::kLoose ? 1e-3 : 1e-4;
  }
  [[nodiscard]] bool effective_wide_codes() const {
    if (wide_codes >= 0) return wide_codes != 0;
    return scheme == DpzScheme::kStrict;
  }

  /// The paper's two evaluated schemes.
  static DpzConfig loose() {
    DpzConfig c;
    c.scheme = DpzScheme::kLoose;
    return c;
  }
  static DpzConfig strict() {
    DpzConfig c;
    c.scheme = DpzScheme::kStrict;
    return c;
  }
};

/// Per-compression accounting: the numbers behind Tables III/IV and Fig 9.
struct DpzStats {
  BlockLayout layout;
  std::size_t k = 0;            ///< selected components
  bool standardized = false;
  /// True when the incompressible-input fallback fired: the archive holds
  /// the raw floats behind zlib because the pipeline would have expanded
  /// the input (k ~ M data where the stored basis dominates).
  bool stored_raw = false;
  double vif_median = 0.0;      ///< 0 when the probe did not run
  std::size_t outlier_count = 0;

  std::uint64_t original_bytes = 0;
  /// Stage-1&2 output in the paper's accounting: k score streams kept as
  /// f32 (ignores the basis, like the paper's CR_stage1&2 = M/k).
  std::uint64_t stage12_bytes = 0;
  /// Stage-3 output before zlib: packed codes + escaped outliers.
  std::uint64_t stage3_bytes = 0;
  /// Same payload after zlib.
  std::uint64_t zlib_payload_bytes = 0;
  /// Basis + means + scales after zlib (the paper does not count these).
  std::uint64_t side_bytes = 0;
  /// Full archive size (header + side + payload).
  std::uint64_t archive_bytes = 0;

  StageTimer timers;

  /// Paper-style per-stage factors (Table III rows).
  [[nodiscard]] double cr_stage12() const {
    return k == 0 ? 0.0
                  : static_cast<double>(layout.m) / static_cast<double>(k);
  }
  [[nodiscard]] double cr_stage3() const {
    return stage3_bytes == 0 ? 0.0
                             : static_cast<double>(stage12_bytes) /
                                   static_cast<double>(stage3_bytes);
  }
  [[nodiscard]] double cr_zlib() const {
    return zlib_payload_bytes == 0
               ? 0.0
               : static_cast<double>(stage3_bytes) /
                     static_cast<double>(zlib_payload_bytes);
  }
  /// End-to-end archive compression ratio (includes all side data).
  [[nodiscard]] double cr_archive() const {
    return archive_bytes == 0 ? 0.0
                              : static_cast<double>(original_bytes) /
                                    static_cast<double>(archive_bytes);
  }
};

/// Compresses `data` with the given configuration. When `stats` is
/// non-null it receives the per-stage accounting. Single- and
/// double-precision inputs produce self-describing archives (the element
/// width travels in the header); DCTZ — DPZ's predecessor — targeted f64
/// checkpoints, and this implementation keeps that capability.
std::vector<std::uint8_t> dpz_compress(const FloatArray& data,
                                       const DpzConfig& config,
                                       DpzStats* stats = nullptr);
std::vector<std::uint8_t> dpz_compress(const DoubleArray& data,
                                       const DpzConfig& config,
                                       DpzStats* stats = nullptr);

/// Decompresses a DPZ archive; throws FormatError on malformed input.
///
/// `max_components` enables progressive reconstruction: when non-zero and
/// smaller than the stored k, only the leading components are used —
/// DPZ's information-oriented layout stores score streams in component
/// order, so any prefix yields a consistent (coarser) reconstruction
/// ("the reconstruction at any level shows consistency", SS IV-C).
/// `threads` sizes the decode worker pool exactly like DpzConfig::threads
/// does for compression (0 = ambient pool); the reconstruction is
/// bit-identical for every value. `limits` governs the decode: the
/// header-claimed geometry is priced and admitted against the memory
/// budget *before* any payload-sized allocation happens (so a forged
/// header claiming terabytes is rejected with ResourceExhausted up
/// front), and the deadline/cancel token are polled at every stage
/// boundary and between loop strips.
FloatArray dpz_decompress(std::span<const std::uint8_t> archive,
                          std::size_t max_components = 0,
                          unsigned threads = 0,
                          const ResourceLimits& limits = {});

/// Double-precision counterpart of dpz_decompress; throws FormatError when
/// the archive holds single-precision data (and vice versa).
DoubleArray dpz_decompress_f64(std::span<const std::uint8_t> archive,
                               std::size_t max_components = 0,
                               unsigned threads = 0,
                               const ResourceLimits& limits = {});

/// Header-level description of an archive (no payload decoding). For
/// format-v2 archives the header checksum is verified as part of the
/// parse, so a corrupted header throws rather than reporting garbage.
struct DpzArchiveInfo {
  int version = 0;  ///< archive format version (1 legacy, 2 checksummed)
  bool stored_raw = false;
  bool wide_codes = false;
  bool standardized = false;
  bool double_precision = false;
  double error_bound = 0.0;
  std::vector<std::size_t> shape;
  BlockLayout layout;      ///< meaningless when stored_raw
  std::size_t k = 0;       ///< 0 when stored_raw
  std::uint64_t outlier_count = 0;
  std::uint64_t archive_bytes = 0;
};

/// Parses an archive header; throws FormatError on malformed input.
DpzArchiveInfo dpz_inspect(std::span<const std::uint8_t> archive);

/// Pre-flight resource estimate for decoding an archive, computed from
/// header metadata alone with saturating arithmetic (the header is
/// untrusted input, so claimed extents must not wrap the estimate back
/// into an "affordable" range). `decoded_bytes` is the reconstructed
/// array; `peak_bytes` adds the dominant transient working set (block and
/// score matrices, basis, inflated sections). The decode path admits
/// `peak_bytes` against the governing memory budget before its first
/// payload-sized allocation.
struct DecodePreflight {
  std::uint64_t decoded_bytes = 0;
  std::uint64_t peak_bytes = 0;
};

/// Prices a decode from its parsed header (see DecodePreflight).
DecodePreflight dpz_decode_preflight(const DpzArchiveInfo& info);

/// Compressor-interface adapter for the benchmark harnesses.
class DpzCompressor final : public Compressor {
 public:
  explicit DpzCompressor(DpzConfig config, std::string label = "")
      : config_(config),
        label_(!label.empty()
                   ? std::move(label)
                   : (config.scheme == DpzScheme::kLoose ? "DPZ-l"
                                                         : "DPZ-s")) {}

  std::vector<std::uint8_t> compress(const FloatArray& data) override {
    return dpz_compress(data, config_, &last_stats_);
  }
  FloatArray decompress(std::span<const std::uint8_t> archive) override {
    return dpz_decompress(archive, 0, config_.threads, config_.limits);
  }
  [[nodiscard]] std::string name() const override { return label_; }

  /// Accounting from the most recent compress() call.
  [[nodiscard]] const DpzStats& last_stats() const { return last_stats_; }
  [[nodiscard]] DpzConfig& config() { return config_; }

 private:
  DpzConfig config_;
  std::string label_;
  DpzStats last_stats_;
};

}  // namespace dpz
