// Archive integrity verification: a structural walk over any DPZ
// container (monolithic, stored-raw, chunked, shared-basis blob or
// snapshot) that checks framing and — for format v2 — every CRC32C,
// without inflating a single payload byte.
//
// This is the read-only side of the v2 integrity layer: `dpz verify`
// prints the report, the fuzz truncation sweep derives section
// boundaries from it, and callers can pre-flight an archive fetched
// from unreliable storage before committing to a decode.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/chunked.h"
#include "core/dpz.h"

namespace dpz {

/// One checksummed unit of an archive: the fixed header, a compressed
/// section, or a chunked frame.
struct SectionStatus {
  std::string name;          ///< "header", "side", "frame[3]", ...
  std::uint64_t offset = 0;  ///< byte offset of the unit in the archive
  std::uint64_t size = 0;    ///< wire size including framing fields
  std::uint64_t raw_size = 0;  ///< claimed inflated size (sections only)
  bool has_crc = false;      ///< false for every v1 unit
  bool crc_ok = true;        ///< vacuously true when !has_crc
  std::uint32_t stored_crc = 0;
  std::uint32_t computed_crc = 0;
};

/// Outcome of verify_archive: the archive's kind and version, one row
/// per section, and a list of human-readable problems (empty iff ok).
struct VerifyReport {
  std::string kind;  ///< "dpz", "stored", "chunked", "shared-basis",
                     ///< "snapshot", or "unknown"
  int version = 0;   ///< 1 (legacy) or 2 (checksummed); 0 when unknown
  bool ok = false;
  std::vector<SectionStatus> sections;
  std::vector<std::string> problems;
};

/// Walks `bytes` and reports its integrity. Never throws: malformed or
/// truncated input produces ok == false with the failure described in
/// `problems`, and the sections walked up to that point are retained.
/// Chunked containers additionally verify each frame's own structure.
VerifyReport verify_archive(std::span<const std::uint8_t> bytes);

/// Pre-flight resource estimate for decoding `bytes`, dispatched on the
/// container magic (monolithic/stored DPZ archives and chunked
/// containers). Returns nullopt for kinds without a standalone decode
/// path (shared-basis blobs and snapshots decode through a codec that
/// holds the geometry) and for headers too malformed to price — pricing
/// never throws; an undecodable archive simply has no estimate.
std::optional<DecodePreflight> decode_preflight(
    std::span<const std::uint8_t> bytes);

}  // namespace dpz
