#include "core/analysis.h"

#include <cmath>

#include "codec/zlib_codec.h"
#include "core/archive_detail.h"
#include "dsp/dct.h"
#include "stats/knee.h"
#include "util/thread_pool.h"

namespace dpz {

DpzAnalysis::DpzAnalysis(const FloatArray& data, bool standardize,
                         std::optional<BlockLayout> forced_layout)
    : original_(data), standardized_(standardize) {
  DPZ_REQUIRE(data.size() >= 8, "DPZ needs at least 8 values");
  if (forced_layout.has_value()) {
    DPZ_REQUIRE(forced_layout->original_total == data.size() &&
                    forced_layout->padded_total() >= data.size() &&
                    forced_layout->m >= 2 && forced_layout->n >= 2,
                "forced layout does not cover the input");
    layout_ = *forced_layout;
  } else {
    layout_ = choose_block_layout(data.size());
  }
  dct_blocks_ = to_blocks(data.flat(), layout_);
  const DctPlan plan(layout_.n);
  parallel_for(0, layout_.m, [&](std::size_t i) {
    auto row = dct_blocks_.row(i);
    plan.forward(row, row);
  });
  model_ = fit_pca(dct_blocks_, standardize);
  tve_ = model_.tve_curve();
}

std::size_t DpzAnalysis::k_for_knee(KneeFit fit) const {
  return detect_knee(tve_, fit).k;
}

std::size_t DpzAnalysis::k_for_psnr_knee(const QuantizerConfig& qcfg,
                                         KneeFit fit,
                                         std::size_t grid_points) const {
  DPZ_REQUIRE(grid_points >= 4, "PSNR knee needs at least 4 grid points");
  const std::size_t m = layout_.m;

  // Geometric k grid over [1, M], deduplicated.
  std::vector<std::size_t> ks;
  const double ratio = std::pow(static_cast<double>(m),
                                1.0 / static_cast<double>(grid_points - 1));
  double value = 1.0;
  for (std::size_t i = 0; i < grid_points; ++i) {
    const auto k = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(value)), 1, m);
    if (ks.empty() || k != ks.back()) ks.push_back(k);
    value *= ratio;
  }
  if (ks.back() != m) ks.push_back(m);

  // The expensive part the paper warns about: one reconstruction per
  // grid point.
  std::vector<double> psnr(ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i)
    psnr[i] = evaluate(ks[i], qcfg).stage3_error.psnr_db;

  const std::size_t idx =
      std::clamp<std::size_t>(detect_knee(psnr, fit).k, 1, ks.size());
  return ks[idx - 1];
}

FloatArray DpzAnalysis::reconstruct_from_scores(const Matrix& scores) const {
  Matrix blocks = model_.inverse_transform(scores);
  const DctPlan plan(layout_.n);
  parallel_for(0, layout_.m, [&](std::size_t i) {
    auto row = blocks.row(i);
    plan.inverse(row, row);
  });
  FloatArray out(original_.shape());
  from_blocks(blocks, layout_, out.flat());
  return out;
}

FloatArray DpzAnalysis::reconstruct_exact(std::size_t k) const {
  const Matrix scores = model_.transform(dct_blocks_, k);
  return reconstruct_from_scores(scores);
}

DpzAnalysis::Evaluation DpzAnalysis::evaluate(std::size_t k,
                                              const QuantizerConfig& qcfg,
                                              int zlib_level,
                                              double score_sigma_scale) const {
  DPZ_REQUIRE(k >= 1 && k <= layout_.m, "k must be in [1, M]");
  Evaluation ev;
  ev.k = k;

  Matrix scores = model_.transform(dct_blocks_, k);

  // Stage 1&2 reference: exact scores.
  {
    const FloatArray exact = reconstruct_from_scores(scores);
    ev.stage12_error =
        compute_error_stats(original_.flat(), exact.flat());
  }

  // Stage 3: normalize per component, quantize, and round-trip.
  detail::SideData side;
  side.mean = model_.mean;
  side.scale = model_.scale;
  side.score_scale = detail::component_scale(scores.row(0));
  if (score_sigma_scale > 0.0)
    side.score_scale *=
        score_sigma_scale / detail::kScoreSigmaScale;
  const double inv_scale = 1.0 / side.score_scale;
  for (double& v : scores.flat()) v *= inv_scale;
  const QuantizedStream qs = quantize(scores.flat(), qcfg);

  Matrix restored(k, layout_.n);
  dequantize(qs, qcfg, restored.flat());
  for (double& v : restored.flat()) v *= side.score_scale;
  ev.reconstructed = reconstruct_from_scores(restored);
  ev.stage3_error =
      compute_error_stats(original_.flat(), ev.reconstructed.flat());

  // Accounting identical to dpz_compress's sections.
  side.basis = Matrix(layout_.m, k);
  for (std::size_t i = 0; i < layout_.m; ++i)
    for (std::size_t j = 0; j < k; ++j)
      side.basis(i, j) = model_.components(i, j);

  DpzStats& st = ev.accounting;
  st.layout = layout_;
  st.k = k;
  st.standardized = standardized_;
  st.outlier_count = qs.outliers.size();
  st.original_bytes = original_.size() * sizeof(float);
  st.stage12_bytes =
      static_cast<std::uint64_t>(k) * layout_.n * sizeof(float);
  st.stage3_bytes = qs.codes.size() + qs.outliers.size() * sizeof(float);

  const std::vector<std::uint8_t> side_raw =
      detail::serialize_side(side, standardized_);
  // v2 section framing adds 20 bytes per section: raw size (8), CRC32C
  // (4), and the blob length prefix (8).
  st.side_bytes = zlib_compress(side_raw, zlib_level).size() + 20;
  ByteWriter outlier_bytes;
  for (const float v : qs.outliers) outlier_bytes.put_f32(v);
  st.zlib_payload_bytes =
      zlib_compress(qs.codes, zlib_level).size() +
      zlib_compress(outlier_bytes.bytes(), zlib_level).size() + 40;
  // Header: magic/version/flags/P + shape + layout + k + outlier count
  // + the v2 header CRC32C.
  const std::uint64_t header_bytes =
      4 + 1 + 1 + 8 + 1 + 8 * original_.shape().size() + 8 * 3 + 4 + 8 + 4;
  st.archive_bytes = header_bytes + st.side_bytes + st.zlib_payload_bytes;
  return ev;
}

}  // namespace dpz
