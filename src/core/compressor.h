// Common interface every compressor in this repository implements (DPZ and
// the SZ-like / ZFP-like baselines), so the rate-distortion harnesses can
// sweep them uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/ndarray.h"

namespace dpz {

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Compresses a float array (any supported rank) into a self-describing
  /// archive buffer.
  virtual std::vector<std::uint8_t> compress(const FloatArray& data) = 0;

  /// Reconstructs the array (shape travels inside the archive).
  virtual FloatArray decompress(std::span<const std::uint8_t> archive) = 0;

  /// Human-readable name used in tables ("DPZ-l", "SZ-like", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace dpz
