// Algorithm 2: DPZ's sampling strategy.
//
// Goals (SS IV-D): (1) estimate the data's compressibility before paying
// for compression, via the VIF probe; (2) pick k from a few feature
// subsets instead of a full-matrix PCA, cutting the variance search cost;
// (3) predict the final compression ratio range CR_p ahead of time.
//
// Subsets partition the block-features into S contiguous groups (contiguous
// because the block decomposition preserves locality, which is what makes
// the first/middle/last picks representative). Each sampled subset gets its
// own small PCA; k_e is the mean of the per-subset k values, and the
// full-matrix equivalent is k_e * S.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "stats/knee.h"

namespace dpz {

enum class KSelectionMethod;  // defined in core/dpz.h

struct SamplingConfig {
  std::size_t subset_count = 10;        ///< S
  std::size_t sample_subset_count = 3;  ///< T
  double tve = 0.99999;                 ///< threshold for per-subset k
  bool use_knee = false;                ///< Method 1 instead of TVE
  KneeFit knee_fit = KneeFit::kFit1D;
  double vif_sampling_rate = 0.01;      ///< SR (fraction of features probed)
  std::size_t vif_sample_cols = 256;    ///< datapoints per probed feature
  std::uint64_t seed = 2021;
  /// true: pick the first/middle/last subsets (the paper's recommendation
  /// for high-linearity data); false: pick T subsets uniformly at random.
  bool deterministic_picks = true;
  /// Calibrate the stage-3 and zlib factors of the CR_p estimate by
  /// actually quantizing + deflating the sampled subsets' scores, instead
  /// of using the paper's fixed empirical constants (CR'3 in [1.9, 2.5],
  /// CR'z ~ 1.25). The constants were fitted to the paper's datasets and
  /// do not transfer; calibration keeps the estimate data-driven, which
  /// is the whole point of Algorithm 2. Disable to reproduce the paper's
  /// literal formula.
  bool calibrate_factors = true;
  /// Quantizer parameters used for calibration (match the compression
  /// scheme you intend to run).
  double quant_error_bound = 1e-4;
  bool wide_codes = true;
  /// Pre-computed VIF distribution (e.g. probed on the *spatial* block
  /// matrix before the DCT, which is where Algorithm 2 measures
  /// collinearity). When non-empty, steps 1-2 reuse it instead of probing
  /// the matrix passed to run_sampling.
  std::vector<double> precomputed_vifs;
};

struct SamplingReport {
  std::vector<double> vifs;        ///< probe VIF distribution
  double vif_median = 0.0;
  bool low_linearity = false;      ///< median VIF below the cutoff (5)

  std::vector<std::size_t> picked_subsets;
  std::vector<std::size_t> subset_ks;
  double k_estimate = 0.0;         ///< k_e: mean of subset_ks
  std::size_t full_k = 1;          ///< k_e scaled to the full feature count

  /// Preliminary compression-ratio band: CR_p = (M/full_k) * CR'3 * CR'z.
  /// With calibrate_factors the per-stage factors come from quantizing +
  /// deflating the sampled subsets (band = spread across subsets +-10%);
  /// otherwise the paper's constants CR'3 in [1.9, 2.5], CR'z ~ 1.25.
  double cr_estimate_low = 0.0;
  double cr_estimate_high = 0.0;
  /// Calibrated per-stage factors (means across sampled subsets); zero
  /// when calibration is off.
  double stage3_factor = 0.0;
  double zlib_factor = 0.0;
};

/// Runs the sampling strategy on the block-feature matrix (M x N, already
/// in the DCT domain). Requires M >= 2 * subset_count so every subset has
/// at least two features.
SamplingReport run_sampling(const Matrix& dct_blocks,
                            const SamplingConfig& config);

}  // namespace dpz
