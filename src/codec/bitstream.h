// MSB-first bit-level I/O.
//
// Used by the canonical Huffman coder (SZ-like baseline entropy stage) and
// by the ZFP-like baseline's embedded bit-plane coder, where variable-bit
// group tests and plane bits interleave freely.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace dpz {

/// Writes bits MSB-first into a growing byte buffer.
class BitWriter {
 public:
  /// Appends the low `count` bits of `value` (MSB of the field first).
  void put_bits(std::uint64_t value, unsigned count) {
    DPZ_REQUIRE(count <= 64, "bit count must be <= 64");
    for (unsigned i = count; i-- > 0;)
      put_bit(static_cast<unsigned>((value >> i) & 1U));
  }

  void put_bit(unsigned bit) {
    if (bit_pos_ == 0) bytes_.push_back(0);
    if (bit != 0)
      bytes_.back() |= static_cast<std::uint8_t>(0x80U >> bit_pos_);
    bit_pos_ = (bit_pos_ + 1) & 7U;
  }

  /// Total bits written so far.
  [[nodiscard]] std::size_t bit_count() const {
    return bytes_.empty() ? 0
                          : (bytes_.size() - 1) * 8 +
                                (bit_pos_ == 0 ? 8 : bit_pos_);
  }

  /// Finishes the stream (zero-pads the final byte) and returns the bytes.
  [[nodiscard]] std::vector<std::uint8_t> take() {
    bit_pos_ = 0;
    return std::move(bytes_);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  unsigned bit_pos_ = 0;  // next free bit within the last byte
};

/// Reads bits MSB-first; throws FormatError when reading past the end.
///
/// Decoders feed this reader counts that may be derived from archive
/// bytes (e.g. the ZFP-like per-block precision), so every failure —
/// exhaustion *and* an out-of-range count — is a recoverable FormatError,
/// never a DPZ_REQUIRE contract abort and never a shift past the
/// accumulator width.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  unsigned get_bit() {
    const std::size_t byte = pos_ >> 3;
    if (byte >= data_.size()) throw FormatError("bit stream exhausted");
    const unsigned bit =
        (data_[byte] >> (7U - (pos_ & 7U))) & 1U;
    ++pos_;
    return bit;
  }

  std::uint64_t get_bits(unsigned count) {
    if (count > 64)
      throw FormatError("bit field width " + std::to_string(count) +
                        " exceeds 64 bits");
    if (count > bits_remaining()) throw FormatError("bit stream exhausted");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < count; ++i) v = (v << 1) | get_bit();
    return v;
  }

  [[nodiscard]] std::size_t bit_position() const { return pos_; }
  [[nodiscard]] std::size_t bits_remaining() const {
    return data_.size() * 8 - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dpz
