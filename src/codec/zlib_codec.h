// Thin RAII wrapper around zlib — DPZ's lossless add-on stage.
//
// The paper compresses the quantization indices and the out-of-range
// values with zlib (SS IV-C), crediting it with a further ~1.25x on
// average (Table III's bottom band). These helpers operate on whole
// buffers; streaming is unnecessary at the archive sizes involved.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dpz {

/// Deflates `data` at the given zlib level (1 fastest .. 9 densest).
/// Throws Error on internal zlib failure.
std::vector<std::uint8_t> zlib_compress(std::span<const std::uint8_t> data,
                                        int level = 6);

/// Inflates a buffer produced by zlib_compress. `expected_size` must be
/// the exact original length (archives store it); a mismatch throws
/// FormatError.
std::vector<std::uint8_t> zlib_decompress(
    std::span<const std::uint8_t> data, std::size_t expected_size);

}  // namespace dpz
