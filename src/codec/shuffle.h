// Byte shuffle (HDF5-style "shuffle filter"): de-interleaves the bytes of
// fixed-width values into per-position planes so that a downstream
// byte-oriented compressor (zlib) sees long runs of similar bytes — the
// sign/exponent bytes of neighboring floats are highly repetitive even
// when their mantissas are not. DPZ applies it to the stored PCA basis
// before the zlib add-on. Lossless and self-inverse given the stride.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace dpz {

/// Rearranges [a0 a1 a2 a3 | b0 b1 b2 b3 | ...] (stride 4 example) into
/// [a0 b0 ... | a1 b1 ... | a2 b2 ... | a3 b3 ...].
/// `data.size()` must be a multiple of `stride`.
inline std::vector<std::uint8_t> shuffle_bytes(
    std::span<const std::uint8_t> data, std::size_t stride) {
  DPZ_REQUIRE(stride >= 1, "shuffle stride must be >= 1");
  DPZ_REQUIRE(data.size() % stride == 0,
              "shuffle input must be a whole number of elements");
  const std::size_t count = data.size() / stride;
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t b = 0; b < stride; ++b)
    for (std::size_t i = 0; i < count; ++i)
      out[b * count + i] = data[i * stride + b];
  return out;
}

/// Inverse of shuffle_bytes with the same stride.
inline std::vector<std::uint8_t> unshuffle_bytes(
    std::span<const std::uint8_t> data, std::size_t stride) {
  DPZ_REQUIRE(stride >= 1, "shuffle stride must be >= 1");
  DPZ_REQUIRE(data.size() % stride == 0,
              "unshuffle input must be a whole number of elements");
  const std::size_t count = data.size() / stride;
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t b = 0; b < stride; ++b)
    for (std::size_t i = 0; i < count; ++i)
      out[i * stride + b] = data[b * count + i];
  return out;
}

}  // namespace dpz
