#include "codec/quantizer.h"

#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "simd/simd.h"
#include "util/thread_pool.h"

namespace dpz {

namespace {

// Values per parallel strip. Strips are a fixed property of the stream
// length — never of the worker count — so the codes buffer and the
// strip-ordered outlier concatenation are bit-identical for every thread
// count (each index maps to the same code, and strip-order equals stream
// order because strips are contiguous and ascending).
constexpr std::size_t kStripValues = 1U << 16;

std::size_t strip_count(std::size_t n) {
  return (n + kStripValues - 1) / kStripValues;
}

inline std::uint32_t read_code(const std::uint8_t* codes, std::size_t i,
                               bool wide) {
  std::uint32_t code = codes[i * (wide ? 2 : 1)];
  if (wide) code |= static_cast<std::uint32_t>(codes[i * 2 + 1]) << 8;
  return code;
}

}  // namespace

QuantizedStream quantize(std::span<const double> values,
                         const QuantizerConfig& config) {
  DPZ_REQUIRE(config.error_bound > 0.0, "error bound must be positive");

  const double p = config.error_bound;
  const double half = config.half_range();
  const std::uint32_t bins = config.bin_count();
  const std::uint32_t escape = bins;  // == code_count() - 1
  const bool wide = config.wide_codes;
  const std::size_t stride = config.code_bytes();

  QuantizedStream out;
  out.count = values.size();
  out.codes.resize(values.size() * stride);

  // Each strip writes its disjoint slice of the code buffer and collects
  // its outliers locally; the locals are concatenated in strip order,
  // which reproduces the serial (stream-order) outlier list exactly.
  const std::size_t strips = strip_count(values.size());
  std::vector<std::vector<double>> strip_outliers(strips);
  const simd::KernelTable& ops = simd::kernels();
  parallel_for(0, strips, [&](std::size_t s) {
    const std::size_t lo = s * kStripValues;
    const std::size_t hi = std::min(values.size(), lo + kStripValues);
    // Vectorized code pass (out-of-range values, NaN included, get the
    // escape code == bins), then a scalar sweep over the fresh codes to
    // collect the outlier values in stream order.
    ops.quantize_codes(values.data() + lo, hi - lo, half, p, bins, wide,
                       out.codes.data() + lo * stride);
    std::vector<double>& outliers = strip_outliers[s];
    for (std::size_t i = lo; i < hi; ++i)
      if (read_code(out.codes.data(), i, wide) == escape)
        outliers.push_back(values[i]);
  });

  std::size_t total = 0;
  for (const auto& so : strip_outliers) total += so.size();
  out.outliers.reserve(total);
  for (const auto& so : strip_outliers)
    out.outliers.insert(out.outliers.end(), so.begin(), so.end());
  obs::count(obs::Counter::kQuantValues, values.size());
  obs::count(obs::Counter::kQuantSaturated, total);
  return out;
}

void dequantize(const QuantizedStream& stream, const QuantizerConfig& config,
                std::span<double> out) {
  DPZ_REQUIRE(out.size() == stream.count,
              "output span must match the quantized count");
  DPZ_REQUIRE(stream.codes.size() == stream.count * config.code_bytes(),
              "code buffer size mismatch");

  const double p = config.error_bound;
  const double half = config.half_range();
  const std::uint32_t escape = config.bin_count();
  const bool wide = config.wide_codes;

  // Pass 1: count escapes per strip, so pass 2 knows each strip's offset
  // into the stream-ordered outlier list without a sequential scan.
  const std::size_t strips = strip_count(stream.count);
  std::vector<std::size_t> escapes(strips, 0);
  parallel_for(0, strips, [&](std::size_t s) {
    const std::size_t lo = s * kStripValues;
    const std::size_t hi = std::min(stream.count, lo + kStripValues);
    std::size_t count = 0;
    for (std::size_t i = lo; i < hi; ++i)
      if (read_code(stream.codes.data(), i, wide) == escape) ++count;
    escapes[s] = count;
  });
  std::vector<std::size_t> offsets(strips, 0);
  std::exclusive_scan(escapes.begin(), escapes.end(), offsets.begin(),
                      std::size_t{0});
  const std::size_t total_escapes =
      strips == 0 ? 0 : offsets.back() + escapes.back();
  if (total_escapes > stream.outliers.size())
    throw FormatError("quantized stream: missing outlier value");
  if (total_escapes < stream.outliers.size())
    throw FormatError("quantized stream: unconsumed outlier values");

  // Pass 2: decode. Codes are biased bins below the escape by
  // construction (the escape is the largest representable code), so the
  // serial version's invalid-code path cannot trigger here. The kernel
  // writes a bin center (-half + P * (2*code + 1)) for EVERY code,
  // escapes included; the scalar sweep then patches the escape slots
  // from the stream-ordered outlier list.
  const simd::KernelTable& ops = simd::kernels();
  const std::size_t stride = config.code_bytes();
  parallel_for(0, strips, [&](std::size_t s) {
    const std::size_t lo = s * kStripValues;
    const std::size_t hi = std::min(stream.count, lo + kStripValues);
    ops.dequantize_codes(stream.codes.data() + lo * stride, hi - lo, p,
                         half, wide, out.data() + lo);
    std::size_t outlier_pos = offsets[s];
    for (std::size_t i = lo; i < hi; ++i)
      if (read_code(stream.codes.data(), i, wide) == escape)
        out[i] = stream.outliers[outlier_pos++];
  });
}

}  // namespace dpz
