#include "codec/quantizer.h"

#include <cmath>

namespace dpz {

QuantizedStream quantize(std::span<const double> values,
                         const QuantizerConfig& config) {
  DPZ_REQUIRE(config.error_bound > 0.0, "error bound must be positive");

  const double p = config.error_bound;
  const double half = config.half_range();
  const std::uint32_t bins = config.bin_count();
  const std::uint32_t escape = bins;  // == code_count() - 1

  QuantizedStream out;
  out.count = values.size();
  out.codes.reserve(values.size() * config.code_bytes());

  for (const double v : values) {
    std::uint32_t code;
    if (!(v >= -half && v <= half)) {  // NaN routes to the escape as well
      code = escape;
      out.outliers.push_back(v);
    } else {
      auto bin = static_cast<std::uint32_t>((v + half) / (2.0 * p));
      if (bin >= bins) bin = bins - 1;  // v == +half lands one past the end
      code = bin;
    }
    out.codes.push_back(static_cast<std::uint8_t>(code & 0xFFU));
    if (config.wide_codes)
      out.codes.push_back(static_cast<std::uint8_t>((code >> 8) & 0xFFU));
  }
  return out;
}

void dequantize(const QuantizedStream& stream, const QuantizerConfig& config,
                std::span<double> out) {
  DPZ_REQUIRE(out.size() == stream.count,
              "output span must match the quantized count");
  DPZ_REQUIRE(stream.codes.size() == stream.count * config.code_bytes(),
              "code buffer size mismatch");

  const double p = config.error_bound;
  const double half = config.half_range();
  const std::uint32_t escape = config.bin_count();

  std::size_t outlier_pos = 0;
  const std::size_t stride = config.code_bytes();
  for (std::size_t i = 0; i < stream.count; ++i) {
    std::uint32_t code = stream.codes[i * stride];
    if (config.wide_codes)
      code |= static_cast<std::uint32_t>(stream.codes[i * stride + 1]) << 8;

    if (code == escape) {
      if (outlier_pos >= stream.outliers.size())
        throw FormatError("quantized stream: missing outlier value");
      out[i] = stream.outliers[outlier_pos++];
    } else {
      if (code > escape)
        throw FormatError("quantized stream: invalid code value");
      // Bin center: -half + P * (2*code + 1).
      out[i] = -half + p * (2.0 * static_cast<double>(code) + 1.0);
    }
  }
  if (outlier_pos != stream.outliers.size())
    throw FormatError("quantized stream: unconsumed outlier values");
}

}  // namespace dpz
