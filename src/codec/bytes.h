// Little-endian byte-stream serialization used by every archive format in
// the repository (DPZ, the SZ-like and ZFP-like baselines). Integers are
// written LSB-first regardless of host endianness; floats go through
// bit_cast to the same-width integer.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace dpz {

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }

  void put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v));
    put_u8(static_cast<std::uint8_t>(v >> 8));
  }

  void put_u32(std::uint32_t v) {
    put_u16(static_cast<std::uint16_t>(v));
    put_u16(static_cast<std::uint16_t>(v >> 16));
  }

  void put_u64(std::uint64_t v) {
    put_u32(static_cast<std::uint32_t>(v));
    put_u32(static_cast<std::uint32_t>(v >> 32));
  }

  void put_f32(float v) { put_u32(std::bit_cast<std::uint32_t>(v)); }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  void put_bytes(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (u64) byte blob.
  void put_blob(std::span<const std::uint8_t> data) {
    put_u64(data.size());
    put_bytes(data);
  }

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() {
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a byte buffer.
///
/// Every out-of-range read throws dpz::FormatError — a recoverable status
/// the decode fault boundary catches — never DPZ_REQUIRE (which would
/// misclassify malformed *data* as a caller bug) and never undefined
/// behavior. The cursor never moves past the end of the buffer, so a
/// reader that has thrown is still in a consistent state.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint16_t get_u16() {
    const std::uint16_t lo = get_u8();
    const std::uint16_t hi = get_u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t get_u32() {
    const std::uint32_t lo = get_u16();
    const std::uint32_t hi = get_u16();
    return lo | (hi << 16);
  }

  std::uint64_t get_u64() {
    const std::uint64_t lo = get_u32();
    const std::uint64_t hi = get_u32();
    return lo | (hi << 32);
  }

  float get_f32() { return std::bit_cast<float>(get_u32()); }
  double get_f64() { return std::bit_cast<double>(get_u64()); }

  std::vector<std::uint8_t> get_bytes(std::size_t n) {
    require(n);
    std::vector<std::uint8_t> out(data_.begin() + pos_,
                                  data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

  /// Reads a blob written by ByteWriter::put_blob. The length field is
  /// archive data, so an oversized value is a FormatError (recoverable),
  /// not a precondition violation — and it is checked before any
  /// allocation is sized from it.
  std::vector<std::uint8_t> get_blob() {
    const std::uint64_t n = get_u64();
    if (n > remaining())
      throw FormatError("blob length " + std::to_string(n) +
                        " exceeds the remaining " +
                        std::to_string(remaining()) + " bytes");
    return get_bytes(static_cast<std::size_t>(n));
  }

  /// Advances the cursor without materializing the bytes.
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (data_.size() - pos_ < n)
      throw FormatError("byte stream truncated (need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()) + ")");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dpz
