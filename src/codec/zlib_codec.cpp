#include "codec/zlib_codec.h"

#include <zlib.h>

#include <string>

#include "util/error.h"
#include "util/resource.h"

namespace dpz {

std::vector<std::uint8_t> zlib_compress(std::span<const std::uint8_t> data,
                                        int level) {
  DPZ_REQUIRE(level >= 1 && level <= 9, "zlib level must be in [1, 9]");
  // Deflating a large buffer is one of the longest uninterruptible units
  // in the pipeline, so checkpoint before committing to it; the bound
  // buffer is a charged (budgeted) allocation.
  governed_poll();
  uLongf bound = compressBound(static_cast<uLong>(data.size()));
  const ScopedCharge charge(bound);
  std::vector<std::uint8_t> out(bound);
  const int rc =
      compress2(out.data(), &bound,
                data.empty() ? reinterpret_cast<const Bytef*>("")
                             : data.data(),
                static_cast<uLong>(data.size()), level);
  if (rc != Z_OK)
    throw Error("zlib compress2 failed with code " + std::to_string(rc));
  out.resize(bound);
  return out;
}

std::vector<std::uint8_t> zlib_decompress(
    std::span<const std::uint8_t> data, std::size_t expected_size) {
  // `expected_size` is usually read from an archive, so bound it by
  // deflate's maximum expansion (~1032:1, rounded up, plus slack for tiny
  // streams) before it sizes the output allocation. A claimed size beyond
  // that bound cannot inflate from `data` and is a forged length field.
  if (expected_size > data.size() * 1100 + 4096)
    throw FormatError("zlib expected size implausible for its payload");
  governed_poll();
  const ScopedCharge charge(expected_size);
  std::vector<std::uint8_t> out(expected_size);
  uLongf out_size = static_cast<uLongf>(expected_size);
  const int rc = uncompress(
      out.empty() ? reinterpret_cast<Bytef*>(&out_size) : out.data(),
      &out_size, data.data(), static_cast<uLong>(data.size()));
  if (rc != Z_OK)
    throw FormatError("zlib uncompress failed with code " +
                      std::to_string(rc));
  if (out_size != expected_size)
    throw FormatError("zlib output size mismatch: expected " +
                      std::to_string(expected_size) + ", got " +
                      std::to_string(out_size));
  return out;
}

}  // namespace dpz
