// Stage 3 of DPZ: symmetric uniform quantization with an outlier escape.
//
// The k-PCA scores are symmetric about zero (PCA on block-DCT coefficients
// is near-normal, SS IV-C), which is what makes a zero-centered uniform
// quantizer effective. The bounding range is +-(P * B) with bin width 2P,
// where P is the error bound and B the number of bins per half-range;
// in-range values are replaced by their bin's center (|error| <= P) and
// out-of-range values are stored verbatim behind an escape code.
//
// Two encodings match the paper's two schemes:
//   * 1-byte codes (DPZ-l): 255 usable bins + escape;
//   * 2-byte codes (DPZ-s): 65535 usable bins + escape.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace dpz {

struct QuantizerConfig {
  /// Error bound P: |dequantized - original| <= P for in-range values.
  double error_bound = 1e-3;
  /// false: 1-byte codes (DPZ-l); true: 2-byte codes (DPZ-s).
  bool wide_codes = false;

  /// Total distinct codes (including the escape code).
  [[nodiscard]] std::uint32_t code_count() const {
    return wide_codes ? 65536U : 256U;
  }
  /// Usable bins B (code_count - 1; the last code is the escape).
  [[nodiscard]] std::uint32_t bin_count() const { return code_count() - 1; }
  /// Half-range P*B covered by bins on each side of zero... the bins are
  /// centered on zero, so the covered interval is [-P*B, +P*B].
  [[nodiscard]] double half_range() const {
    return error_bound * static_cast<double>(bin_count());
  }
  [[nodiscard]] std::size_t code_bytes() const { return wide_codes ? 2 : 1; }
};

/// Output of the quantizer: packed codes plus the escape payload.
/// Outliers keep full double precision here; the archive serializer casts
/// them to the element width of the input data (f32 or f64).
struct QuantizedStream {
  std::size_t count = 0;               ///< number of quantized values
  std::vector<std::uint8_t> codes;     ///< count * code_bytes, little-endian
  std::vector<double> outliers;        ///< out-of-range values, in order
};

/// Quantizes `values`; in-range entries become bin codes, the rest go to
/// the outlier list (their slots hold the escape code).
QuantizedStream quantize(std::span<const double> values,
                         const QuantizerConfig& config);

/// Reconstructs values from a quantized stream into `out`
/// (out.size() must equal stream.count).
void dequantize(const QuantizedStream& stream, const QuantizerConfig& config,
                std::span<double> out);

}  // namespace dpz
