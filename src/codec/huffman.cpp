#include "codec/huffman.h"

#include <algorithm>
#include <queue>

#include "codec/bitstream.h"
#include "codec/bytes.h"
#include "util/error.h"

namespace dpz {

namespace {

constexpr unsigned kMaxCodeLength = 58;  // fits every code in a u64 field

struct Node {
  std::uint64_t weight;
  std::uint32_t order;  // tie-break for deterministic trees
  int left = -1;
  int right = -1;
  std::uint32_t symbol = 0;
};

// Assigns canonical codes from lengths: symbols sorted by (length, value).
// Returns codes indexed by symbol (undefined for length-0 symbols).
std::vector<std::uint64_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::vector<std::uint32_t> order;
  for (std::uint32_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] != 0) order.push_back(s);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
              return a < b;
            });

  std::vector<std::uint64_t> codes(lengths.size(), 0);
  std::uint64_t code = 0;
  unsigned prev_len = 0;
  for (const std::uint32_t s : order) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  return codes;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> counts) {
  std::vector<std::uint8_t> lengths(counts.size(), 0);

  std::vector<Node> nodes;
  auto cmp = [&](int a, int b) {
    if (nodes[a].weight != nodes[b].weight)
      return nodes[a].weight > nodes[b].weight;
    return nodes[a].order > nodes[b].order;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    nodes.push_back({counts[s], s, -1, -1, s});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[nodes[0].symbol] = 1;  // degenerate alphabet: one 1-bit code
    return lengths;
  }

  std::uint32_t order = static_cast<std::uint32_t>(counts.size());
  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back(
        {nodes[a].weight + nodes[b].weight, order++, a, b, 0});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first traversal assigning lengths.
  struct Frame {
    int node;
    unsigned depth;
  };
  std::vector<Frame> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[f.node];
    if (n.left < 0) {
      DPZ_REQUIRE(f.depth <= kMaxCodeLength,
                  "Huffman code length overflow (pathological counts)");
      lengths[n.symbol] = static_cast<std::uint8_t>(std::max(1U, f.depth));
    } else {
      stack.push_back({n.left, f.depth + 1});
      stack.push_back({n.right, f.depth + 1});
    }
  }
  return lengths;
}

std::vector<std::uint8_t> huffman_encode(
    std::span<const std::uint32_t> symbols, std::uint32_t alphabet_size) {
  DPZ_REQUIRE(alphabet_size >= 1, "alphabet must be non-empty");

  std::vector<std::uint64_t> counts(alphabet_size, 0);
  for (const std::uint32_t s : symbols) {
    DPZ_REQUIRE(s < alphabet_size, "symbol outside the declared alphabet");
    ++counts[s];
  }
  const std::vector<std::uint8_t> lengths = huffman_code_lengths(counts);
  const std::vector<std::uint64_t> codes = canonical_codes(lengths);

  ByteWriter header;
  header.put_u32(alphabet_size);
  header.put_u64(symbols.size());
  header.put_bytes(lengths);

  BitWriter bits;
  for (const std::uint32_t s : symbols) bits.put_bits(codes[s], lengths[s]);

  std::vector<std::uint8_t> out = header.take();
  const std::vector<std::uint8_t> payload = bits.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint32_t> huffman_decode(
    std::span<const std::uint8_t> data) {
  ByteReader reader(data);
  const std::uint32_t alphabet_size = reader.get_u32();
  const std::uint64_t count = reader.get_u64();
  if (alphabet_size == 0) throw FormatError("huffman: empty alphabet");
  const std::vector<std::uint8_t> lengths = reader.get_bytes(alphabet_size);
  for (const std::uint8_t len : lengths)
    if (len > kMaxCodeLength)
      throw FormatError("huffman: code length exceeds the encoder maximum");
  // Every symbol consumes at least one payload bit, so a symbol count
  // beyond the remaining bit capacity is a forged header — reject it
  // before it sizes the output allocation.
  const std::uint64_t max_symbols =
      static_cast<std::uint64_t>(data.size() - reader.position()) * 8;
  if (count > max_symbols)
    throw FormatError("huffman: symbol count exceeds the payload capacity");

  // Canonical decode tables: per length, the first code value and the
  // index of its first symbol in the sorted order.
  std::vector<std::uint32_t> order;
  for (std::uint32_t s = 0; s < alphabet_size; ++s)
    if (lengths[s] != 0) order.push_back(s);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
              return a < b;
            });
  if (order.empty()) {
    if (count != 0) throw FormatError("huffman: symbols without codes");
    return {};
  }

  const unsigned max_len = lengths[order.back()];
  std::vector<std::uint64_t> first_code(max_len + 2, 0);
  std::vector<std::uint32_t> first_index(max_len + 2, 0);
  std::vector<std::uint32_t> length_count(max_len + 2, 0);
  for (const std::uint32_t s : order) ++length_count[lengths[s]];

  std::uint64_t code = 0;
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= max_len; ++len) {
    first_code[len] = code;
    first_index[len] = index;
    // Kraft check: an over-subscribed length table (more codes at some
    // length than the binary tree has leaves) cannot come from the
    // encoder and would make the canonical ranges overlap.
    if (code + length_count[len] > (std::uint64_t{1} << len))
      throw FormatError("huffman: over-subscribed code length table");
    code = (code + length_count[len]) << 1;
    index += length_count[len];
  }

  BitReader bits(data.subspan(reader.position()));
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    unsigned len = 0;
    for (;;) {
      v = (v << 1) | bits.get_bit();
      ++len;
      if (len > max_len) throw FormatError("huffman: invalid code");
      if (length_count[len] != 0 &&
          v < first_code[len] + length_count[len] && v >= first_code[len]) {
        out.push_back(
            order[first_index[len] +
                  static_cast<std::uint32_t>(v - first_code[len])]);
        break;
      }
    }
  }
  return out;
}

}  // namespace dpz
