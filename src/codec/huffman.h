// Canonical Huffman coding.
//
// The SZ-like baseline entropy-codes its quantization bins with Huffman
// before the final zlib pass, mirroring SZ's own pipeline. The coder is
// canonical: only the per-symbol code lengths travel in the stream, and
// codes are reassigned deterministically on both sides.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dpz {

/// Encodes `symbols` (each < alphabet_size) into a self-describing buffer.
/// Layout: u32 alphabet_size, u64 symbol count, u8 code-length per symbol,
/// then the MSB-first bit stream. Works for empty input and for streams
/// with a single distinct symbol.
std::vector<std::uint8_t> huffman_encode(std::span<const std::uint32_t> symbols,
                                         std::uint32_t alphabet_size);

/// Decodes a buffer produced by huffman_encode. Throws FormatError on a
/// malformed stream.
std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> data);

/// Code lengths a Huffman tree would assign to the given symbol counts
/// (0 for absent symbols). Exposed for tests: lengths must satisfy Kraft's
/// inequality with equality when more than one symbol is present.
std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> counts);

}  // namespace dpz
