#include "util/crc32c.h"

#include <array>

namespace dpz {

namespace {

// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78U;

// Slice-by-8 lookup tables. table[0] is the classic byte-at-a-time
// table; table[s][b] extends it so eight input bytes can be folded into
// the running remainder with eight independent lookups per iteration.
struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables make_tables() {
  Tables tables{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 1U) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    tables.t[0][b] = crc;
  }
  for (std::uint32_t b = 0; b < 256; ++b)
    for (int s = 1; s < 8; ++s)
      tables.t[s][b] =
          (tables.t[s - 1][b] >> 8) ^ tables.t[0][tables.t[s - 1][b] & 0xFF];
  return tables;
}

constexpr Tables kTables = make_tables();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> bytes,
                     std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  std::size_t i = 0;

  // Eight bytes per iteration: fold the low word through slices 7..4 and
  // the following four bytes through slices 3..0. Bytes are assembled
  // explicitly (never type-punned) so the result is endian-independent.
  const auto& t = kTables.t;
  while (bytes.size() - i >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(bytes[i]) |
                                    static_cast<std::uint32_t>(bytes[i + 1])
                                        << 8 |
                                    static_cast<std::uint32_t>(bytes[i + 2])
                                        << 16 |
                                    static_cast<std::uint32_t>(bytes[i + 3])
                                        << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
          t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^ t[3][bytes[i + 4]] ^
          t[2][bytes[i + 5]] ^ t[1][bytes[i + 6]] ^ t[0][bytes[i + 7]];
    i += 8;
  }
  for (; i < bytes.size(); ++i)
    crc = (crc >> 8) ^ t[0][(crc ^ bytes[i]) & 0xFF];
  return ~crc;
}

}  // namespace dpz
