#include "util/resource.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"

namespace dpz {

namespace {

// The calling thread's innermost governor. A raw pointer (trivially
// destructible TLS, no guard overhead on the poll fast path): ownership
// lives in the GovernorScope on the installing thread's stack, or in the
// thread pool's published job for workers — both strictly outlive the
// scopes that read this.
thread_local const ResourceGovernor* t_governor = nullptr;

// Armed allocation fault: 1-based countdown to the charged allocation
// that throws std::bad_alloc (see io/fault_injection.h); 0 = disarmed.
thread_local std::uint64_t t_alloc_fault = 0;

std::string bytes_str(std::uint64_t bytes) {
  return std::to_string(bytes) + " bytes";
}

}  // namespace

std::int64_t ResourceLimits::now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t ResourceLimits::deadline_after_ms(double ms) noexcept {
  if (!(ms > 0.0)) return 0;
  return now_ns() + static_cast<std::int64_t>(std::llround(ms * 1e6));
}

void MemoryArena::charge(std::uint64_t bytes) {
  const MutexLock lock(m_);
  if (budget_ != 0 && bytes > budget_ - in_use_)
    throw ResourceExhausted(
        "memory budget exceeded: charge of " + bytes_str(bytes) +
        " with " + bytes_str(in_use_) + " in use against a budget of " +
        bytes_str(budget_));
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
}

void MemoryArena::release(std::uint64_t bytes) noexcept {
  const MutexLock lock(m_);
  in_use_ -= std::min(bytes, in_use_);
}

std::uint64_t MemoryArena::in_use() const {
  const MutexLock lock(m_);
  return in_use_;
}

std::uint64_t MemoryArena::peak() const {
  const MutexLock lock(m_);
  return peak_;
}

void ResourceGovernor::checkpoint() const {
  for (const ResourceGovernor* g = this; g != nullptr;
       g = g->parent_.get()) {
    if (g->limits_.cancel.cancel_requested()) {
      if (!g->reported_.exchange(true, std::memory_order_relaxed)) {
        obs::count(obs::Counter::kCancelledOps);
        obs::log_error(obs::Event::kOpCancelled, StatusCode::kCancelled);
      }
      throw Cancelled("operation cancelled by its CancelToken");
    }
    if (g->limits_.deadline_ns != 0 &&
        ResourceLimits::now_ns() >= g->limits_.deadline_ns) {
      if (!g->reported_.exchange(true, std::memory_order_relaxed)) {
        obs::count(obs::Counter::kDeadlineExceededOps);
        obs::log_error(obs::Event::kOpDeadline,
                       StatusCode::kDeadlineExceeded);
      }
      throw DeadlineExceeded("operation deadline exceeded");
    }
  }
}

void ResourceGovernor::admit(std::uint64_t estimated_peak_bytes,
                             const char* what) const {
  for (const ResourceGovernor* g = this; g != nullptr;
       g = g->parent_.get()) {
    if (g->limits_.max_memory_bytes == 0) continue;
    const std::uint64_t in_use = g->arena_.in_use();
    const std::uint64_t remaining =
        g->limits_.max_memory_bytes -
        std::min(in_use, g->limits_.max_memory_bytes);
    if (estimated_peak_bytes > remaining) {
      obs::count(obs::Counter::kAdmissionRejected);
      obs::LogContext ctx;
      ctx.section = what;
      obs::log_error(obs::Event::kAdmissionDenied,
                     StatusCode::kResourceExhausted, ctx,
                     "estimate " + bytes_str(estimated_peak_bytes) +
                         " over remaining " + bytes_str(remaining));
      throw ResourceExhausted(
          std::string(what) + ": pre-flight decode estimate of " +
          bytes_str(estimated_peak_bytes) +
          " exceeds the remaining memory budget of " +
          bytes_str(remaining));
    }
  }
}

void ResourceGovernor::charge(std::uint64_t bytes) const {
  const ResourceGovernor* g = this;
  while (g != nullptr) {
    try {
      g->arena_.charge(bytes);
    } catch (...) {
      for (const ResourceGovernor* undo = this; undo != g;
           undo = undo->parent_.get())
        undo->arena_.release(bytes);
      throw;
    }
    g = g->parent_.get();
  }
}

void ResourceGovernor::release(std::uint64_t bytes) const noexcept {
  for (const ResourceGovernor* g = this; g != nullptr;
       g = g->parent_.get())
    g->arena_.release(bytes);
}

const ResourceGovernor* current_governor() noexcept { return t_governor; }

std::shared_ptr<const ResourceGovernor> current_governor_shared() {
  return t_governor != nullptr ? t_governor->shared_from_this() : nullptr;
}

GovernorScope::GovernorScope(const ResourceLimits& limits) {
  if (!limits.enabled()) return;
  previous_ = t_governor;
  governor_ = std::make_shared<const ResourceGovernor>(
      limits, previous_ != nullptr ? previous_->shared_from_this()
                                   : nullptr);
  t_governor = governor_.get();
}

GovernorScope::~GovernorScope() {
  if (governor_ != nullptr) t_governor = previous_;
}

ScopedCharge::ScopedCharge(std::uint64_t bytes) : bytes_(bytes) {
  const ResourceGovernor* g = t_governor;
  if (g == nullptr || bytes == 0) return;
  if (detail::consume_alloc_fault()) {
    obs::log_error(obs::Event::kAllocFault, StatusCode::kResourceExhausted,
                   {}, "injected allocation fault");
    throw std::bad_alloc();
  }
  g->charge(bytes);
  governor_ = g->shared_from_this();
}

namespace detail {

GovernorAdopt::GovernorAdopt(const ResourceGovernor* governor) noexcept
    : previous_(t_governor) {
  t_governor = governor;
}

GovernorAdopt::~GovernorAdopt() { t_governor = previous_; }

void set_alloc_fault(std::uint64_t nth) noexcept { t_alloc_fault = nth; }

bool consume_alloc_fault() noexcept {
  if (t_alloc_fault == 0) return false;
  return --t_alloc_fault == 0;
}

}  // namespace detail

}  // namespace dpz
