// Wall-clock timing utilities used by the benchmark harnesses and by the
// per-stage accounting inside the compressor (Figure 8/9 of the paper).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace dpz {

/// Monotonic wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds so far.
  double reset() {
    const TimePoint now = Clock::now();
    const double s = seconds_between(start_, now);
    start_ = now;
    return s;
  }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double elapsed() const {
    return seconds_between(start_, Clock::now());
  }

 private:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  static double seconds_between(TimePoint a, TimePoint b) {
    return std::chrono::duration<double>(b - a).count();
  }

  TimePoint start_;
};

/// Copyable aggregation *result* of per-stage accounting: named duration
/// buckets, used to regenerate the paper's Figure 9 (compression-time
/// breakdown). Hot-path accumulation happens in the thread-safe
/// obs::StageAccumulator (src/obs/stage_clock.h); its buckets() output is
/// copied into a StageTimer once the parallel work has joined. Do not add
/// to a StageTimer from concurrent code — the map is unsynchronized.
class StageTimer {
 public:
  /// Adds `seconds` to the bucket named `stage`.
  void add(const std::string& stage, double seconds) {
    totals_[stage] += seconds;
  }

  /// Total seconds recorded for `stage` (0 when never recorded).
  [[nodiscard]] double total(const std::string& stage) const {
    const auto it = totals_.find(stage);
    return it == totals_.end() ? 0.0 : it->second;
  }

  /// Sum over every bucket.
  [[nodiscard]] double grand_total() const {
    double s = 0.0;
    for (const auto& [_, v] : totals_) s += v;
    return s;
  }

  [[nodiscard]] const std::map<std::string, double>& buckets() const {
    return totals_;
  }

  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

}  // namespace dpz
