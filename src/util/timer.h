// Wall-clock timing utilities used by the benchmark harnesses and by the
// per-stage accounting inside the compressor (Figure 8/9 of the paper).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace dpz {

/// Monotonic wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds so far.
  double reset() {
    const TimePoint now = Clock::now();
    const double s = seconds_between(start_, now);
    start_ = now;
    return s;
  }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double elapsed() const {
    return seconds_between(start_, Clock::now());
  }

 private:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  static double seconds_between(TimePoint a, TimePoint b) {
    return std::chrono::duration<double>(b - a).count();
  }

  TimePoint start_;
};

/// Accumulates named durations, e.g. one bucket per compression stage.
/// Used to regenerate the paper's Figure 9 (compression-time breakdown).
class StageTimer {
 public:
  /// Adds `seconds` to the bucket named `stage`.
  void add(const std::string& stage, double seconds) {
    totals_[stage] += seconds;
  }

  /// Total seconds recorded for `stage` (0 when never recorded).
  [[nodiscard]] double total(const std::string& stage) const {
    const auto it = totals_.find(stage);
    return it == totals_.end() ? 0.0 : it->second;
  }

  /// Sum over every bucket.
  [[nodiscard]] double grand_total() const {
    double s = 0.0;
    for (const auto& [_, v] : totals_) s += v;
    return s;
  }

  [[nodiscard]] const std::map<std::string, double>& buckets() const {
    return totals_;
  }

  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

/// RAII helper: measures the lifetime of a scope into a StageTimer bucket.
class ScopedStage {
 public:
  ScopedStage(StageTimer& sink, std::string stage)
      : sink_(sink), stage_(std::move(stage)) {}
  ~ScopedStage() { sink_.add(stage_, timer_.elapsed()); }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageTimer& sink_;
  std::string stage_;
  Timer timer_;
};

}  // namespace dpz
