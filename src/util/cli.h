// Minimal command-line flag parser for the bench harnesses and examples.
//
// Supports `--name=value`, `--name value`, and boolean `--name` forms.
// Unknown flags raise an error so typos in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dpz {

/// Parsed command line: typed accessors with defaults.
class CliArgs {
 public:
  /// Parses argv. `known_flags` lists every accepted flag name (without
  /// leading dashes); pass an empty list to accept anything.
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> known_flags = {});

  /// True when the flag was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program_name() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dpz
